// Tests for the model zoo: every registry model builds, runs forward on its
// target geometry, produces class logits, and is trainable (spot-checked).
#include <gtest/gtest.h>

#include "models/trainer.hpp"
#include "models/zoo.hpp"

namespace pfi::models {
namespace {

class ZooForward : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooForward, BuildsAndClassifiesCifarGeometry) {
  Rng rng(1);
  const ModelConfig cfg{.num_classes = 10, .in_channels = 3, .image_size = 32};
  auto model = make_model(GetParam(), cfg, rng);
  model->eval();
  Rng drng(2);
  const Tensor x = Tensor::rand({2, 3, 32, 32}, drng, -1.0f, 1.0f);
  const Tensor y = (*model)(x);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(ZooForward, BuildsAndClassifiesImageNetGeometry) {
  Rng rng(3);
  const ModelConfig cfg{.num_classes = 16, .in_channels = 3, .image_size = 64};
  auto model = make_model(GetParam(), cfg, rng);
  model->eval();
  Rng drng(4);
  const Tensor x = Tensor::rand({1, 3, 64, 64}, drng, -1.0f, 1.0f);
  const Tensor y = (*model)(x);
  EXPECT_EQ(y.shape(), (Shape{1, 16}));
}

TEST_P(ZooForward, HasConvLayersToInstrument) {
  Rng rng(5);
  auto model = make_model(GetParam(), {.num_classes = 10}, rng);
  int convs = 0;
  for (auto* m : model->modules()) convs += m->kind() == "Conv2d" ? 1 : 0;
  EXPECT_GE(convs, 3) << GetParam() << " should have at least 3 convolutions";
}

TEST_P(ZooForward, DeterministicGivenSeed) {
  const ModelConfig cfg{.num_classes = 10};
  Rng r1(7), r2(7);
  auto a = make_model(GetParam(), cfg, r1);
  auto b = make_model(GetParam(), cfg, r2);
  a->eval();
  b->eval();
  Rng drng(8);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  EXPECT_TRUE(allclose((*a)(x), (*b)(x), 0.0f));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooForward,
                         ::testing::ValuesIn(model_names()),
                         [](const auto& info) { return info.param; });

TEST(Zoo, UnknownModelThrowsWithHint) {
  Rng rng(1);
  try {
    make_model("resnet9000", {.num_classes = 10}, rng);
    FAIL() << "expected pfi::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("known models"), std::string::npos);
  }
}

TEST(Zoo, ConfigValidated) {
  Rng rng(1);
  EXPECT_THROW(make_model("alexnet", {.num_classes = 1}, rng), Error);
  EXPECT_THROW(
      make_model("alexnet", {.num_classes = 10, .image_size = 48}, rng),
      Error);
}

TEST(Zoo, Fig3ListMatchesPaper) {
  const auto entries = fig3_networks();
  EXPECT_EQ(entries.size(), 19u);  // "19 networks across three datasets"
  int cifar10 = 0, cifar100 = 0, imagenet = 0;
  Rng rng(1);
  for (const auto& e : entries) {
    if (e.dataset == "cifar10") ++cifar10;
    if (e.dataset == "cifar100") ++cifar100;
    if (e.dataset == "imagenet") ++imagenet;
    // Every entry must be constructible.
    EXPECT_NO_THROW(make_model(
        e.model,
        {.num_classes = 10, .image_size = e.dataset == "imagenet" ? 64 : 32},
        rng));
  }
  EXPECT_EQ(cifar10, 6);
  EXPECT_EQ(cifar100, 6);
  EXPECT_EQ(imagenet, 7);
}

TEST(Zoo, Fig4ListMatchesPaper) {
  const auto nets = fig4_networks();
  ASSERT_EQ(nets.size(), 6u);
  EXPECT_EQ(nets[0], "alexnet");
  EXPECT_EQ(nets[3], "shufflenet");
}

// ---------------------------------------------------------------- trainer ----

TEST(Trainer, ResNet18LearnsSyntheticCifar) {
  // The keystone integration test: the substrate must be able to train a
  // real (mini) network to well above chance, since every paper campaign
  // requires correctly-classifying models.
  Rng rng(42);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("resnet18", {.num_classes = 10}, rng);
  // 4 epochs (3 before PR 3): routing backward through pfi::kernels changed
  // gradient accumulation order, and this short synthetic trajectory needs
  // one more epoch to clear the same accuracy bar under the new rounding.
  const TrainConfig cfg{.epochs = 4,
                        .batches_per_epoch = 30,
                        .batch_size = 16,
                        .lr = 0.05f,
                        .seed = 7};
  const TrainResult r = train_classifier(*model, ds, cfg);
  EXPECT_GT(r.train_accuracy, 0.6);
  Rng eval_rng(99);
  const double acc = evaluate_accuracy(*model, ds, 10, 16, eval_rng);
  EXPECT_GT(acc, 0.6) << "eval accuracy " << acc;
}

TEST(Trainer, StepHooksFire) {
  Rng rng(1);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  std::int64_t before = 0, after = 0;
  train_classifier(
      *model, ds,
      {.epochs = 1, .batches_per_epoch = 3, .batch_size = 4},
      [&](std::int64_t) { ++before; }, [&](std::int64_t) { ++after; });
  EXPECT_EQ(before, 3);
  EXPECT_EQ(after, 3);
}

TEST(Trainer, FixedSetEvaluationIsDeterministicAndChunked) {
  Rng rng(50);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  Rng set_rng(51);
  const auto set = make_fixed_set(ds, 13, set_rng);  // odd size: last chunk short
  const double a = evaluate_on(*model, set, 4);
  const double b = evaluate_on(*model, set, 5);   // different chunking
  const double c = evaluate_on(*model, set, 13);  // single chunk
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(b, c);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

TEST(Trainer, FixedSetValidation) {
  Rng rng(52);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  Rng set_rng(53);
  EXPECT_THROW(make_fixed_set(ds, 0, set_rng), Error);
  const auto set = make_fixed_set(ds, 4, set_rng);
  EXPECT_THROW(evaluate_on(*model, set, 0), Error);
}

TEST(Trainer, EvalRestoresTrainingMode) {
  Rng rng(1);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("resnet18", {.num_classes = 10}, rng);
  model->train();
  Rng eval_rng(2);
  evaluate_accuracy(*model, ds, 1, 2, eval_rng);
  EXPECT_TRUE(model->is_training());
}

}  // namespace
}  // namespace pfi::models
