// Tests for boxes (IoU / NMS / diffing) and the mini-YOLO detector.
#include <gtest/gtest.h>

#include "core/fault_injector.hpp"
#include "detect/yolo.hpp"

namespace pfi::detect {
namespace {

Detection det(float cx, float cy, float w, float h, float conf = 1.0f,
              std::int64_t cls = 0) {
  return Detection{cx, cy, w, h, conf, cls};
}

// ------------------------------------------------------------------- IoU ----

TEST(Boxes, IouIdentityIsOne) {
  const auto a = det(0.5f, 0.5f, 0.2f, 0.2f);
  EXPECT_NEAR(iou(a, a), 1.0f, 1e-6f);
}

TEST(Boxes, IouDisjointIsZero) {
  EXPECT_EQ(iou(det(0.2f, 0.2f, 0.1f, 0.1f), det(0.8f, 0.8f, 0.1f, 0.1f)),
            0.0f);
}

TEST(Boxes, IouKnownOverlap) {
  // Two unit squares offset by half: intersection 0.5, union 1.5.
  const auto a = det(0.5f, 0.5f, 1.0f, 1.0f);
  const auto b = det(1.0f, 0.5f, 1.0f, 1.0f);
  EXPECT_NEAR(iou(a, b), 0.5f / 1.5f, 1e-6f);
}

TEST(Boxes, IouAgainstGroundTruth) {
  const auto a = det(0.5f, 0.5f, 0.2f, 0.2f);
  const data::GroundTruthBox gt{0.5f, 0.5f, 0.2f, 0.2f, 0};
  EXPECT_NEAR(iou(a, gt), 1.0f, 1e-6f);
}

// ------------------------------------------------------------------- NMS ----

TEST(Boxes, NmsKeepsHighestConfidence) {
  std::vector<Detection> dets{det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f),
                              det(0.51f, 0.5f, 0.2f, 0.2f, 0.8f),
                              det(0.2f, 0.2f, 0.1f, 0.1f, 0.7f)};
  const auto kept = nms(dets, 0.45f);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_FLOAT_EQ(kept[0].confidence, 0.9f);
  EXPECT_FLOAT_EQ(kept[1].confidence, 0.7f);
}

TEST(Boxes, NmsKeepsNonOverlapping) {
  std::vector<Detection> dets{det(0.2f, 0.2f, 0.1f, 0.1f, 0.9f),
                              det(0.8f, 0.8f, 0.1f, 0.1f, 0.8f)};
  EXPECT_EQ(nms(dets, 0.45f).size(), 2u);
}

TEST(Boxes, NmsEmptyInput) {
  EXPECT_TRUE(nms({}, 0.5f).empty());
}

// ------------------------------------------------------------------ diff ----

TEST(Boxes, DiffIdenticalSetsMatch) {
  const std::vector<Detection> g{det(0.5f, 0.5f, 0.2f, 0.2f)};
  const auto d = diff_detections(g, g);
  EXPECT_EQ(d.matched, 1);
  EXPECT_FALSE(d.corrupted());
}

TEST(Boxes, DiffDetectsPhantoms) {
  const std::vector<Detection> g{det(0.5f, 0.5f, 0.2f, 0.2f)};
  std::vector<Detection> f = g;
  f.push_back(det(0.1f, 0.1f, 0.1f, 0.1f));  // phantom
  const auto d = diff_detections(g, f);
  EXPECT_EQ(d.matched, 1);
  EXPECT_EQ(d.phantoms, 1);
  EXPECT_TRUE(d.corrupted());
}

TEST(Boxes, DiffDetectsMissedAndReclassified) {
  const std::vector<Detection> g{det(0.5f, 0.5f, 0.2f, 0.2f, 1.0f, 0),
                                 det(0.2f, 0.2f, 0.1f, 0.1f, 1.0f, 1)};
  const std::vector<Detection> f{det(0.5f, 0.5f, 0.2f, 0.2f, 1.0f, 1)};
  const auto d = diff_detections(g, f);
  EXPECT_EQ(d.reclassified, 1);
  EXPECT_EQ(d.missed, 1);
}

TEST(Boxes, MatchStatsPrecisionRecall) {
  const std::vector<data::GroundTruthBox> truth{{0.5f, 0.5f, 0.2f, 0.2f, 0},
                                                {0.2f, 0.2f, 0.1f, 0.1f, 1}};
  const std::vector<Detection> dets{det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 0),
                                    det(0.8f, 0.8f, 0.1f, 0.1f, 0.8f, 0)};
  const auto s = match_against_truth(dets, truth);
  EXPECT_EQ(s.true_positives, 1);
  EXPECT_EQ(s.false_positives, 1);
  EXPECT_EQ(s.false_negatives, 1);
  EXPECT_DOUBLE_EQ(s.precision(), 0.5);
  EXPECT_DOUBLE_EQ(s.recall(), 0.5);
  EXPECT_DOUBLE_EQ(s.f1(), 0.5);
}

TEST(Boxes, MatchIsClassAware) {
  const std::vector<data::GroundTruthBox> truth{{0.5f, 0.5f, 0.2f, 0.2f, 0}};
  const std::vector<Detection> dets{det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 1)};
  const auto s = match_against_truth(dets, truth);
  EXPECT_EQ(s.true_positives, 0);
  EXPECT_EQ(s.false_positives, 1);
}

// -------------------------------------------------------------------- AP ----

TEST(AveragePrecision, PerfectDetectionsGiveApOne) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}},
      {{0.3f, 0.3f, 0.2f, 0.2f, 0}, {0.7f, 0.7f, 0.2f, 0.2f, 0}}};
  std::vector<ScoredDetection> dets{
      {0, det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 0)},
      {1, det(0.3f, 0.3f, 0.2f, 0.2f, 0.8f, 0)},
      {1, det(0.7f, 0.7f, 0.2f, 0.2f, 0.7f, 0)}};
  EXPECT_DOUBLE_EQ(average_precision(dets, truth, 0), 1.0);
}

TEST(AveragePrecision, NoDetectionsGiveZero) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}}};
  EXPECT_EQ(average_precision({}, truth, 0), 0.0);
}

TEST(AveragePrecision, AbsentClassGivesZero) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}}};
  EXPECT_EQ(average_precision({}, truth, 1), 0.0);
}

TEST(AveragePrecision, FalsePositivesLowerAp) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}}};
  // A confident false positive ranked above the true positive:
  // PR points are (p=0, r=0) then (p=0.5, r=1.0) -> AP = 0.5.
  std::vector<ScoredDetection> dets{
      {0, det(0.1f, 0.1f, 0.05f, 0.05f, 0.9f, 0)},
      {0, det(0.5f, 0.5f, 0.2f, 0.2f, 0.8f, 0)}};
  EXPECT_DOUBLE_EQ(average_precision(dets, truth, 0), 0.5);
}

TEST(AveragePrecision, MissedGroundTruthCapsRecall) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}, {0.2f, 0.2f, 0.1f, 0.1f, 0}}};
  // One perfect detection of two ground truths: AP = 0.5 (precision 1 up
  // to recall 0.5, zero beyond).
  std::vector<ScoredDetection> dets{
      {0, det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 0)}};
  EXPECT_DOUBLE_EQ(average_precision(dets, truth, 0), 0.5);
}

TEST(AveragePrecision, DuplicateDetectionsCountAsFalsePositives) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}}};
  std::vector<ScoredDetection> dets{
      {0, det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 0)},
      {0, det(0.51f, 0.5f, 0.2f, 0.2f, 0.8f, 0)}};  // double-claims the GT
  // First claims the GT (tp), second is fp: AP still 1.0 because recall
  // saturates at the first point with precision 1.
  EXPECT_DOUBLE_EQ(average_precision(dets, truth, 0), 1.0);
}

TEST(AveragePrecision, MapAveragesOverPopulatedClasses) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}, {0.2f, 0.2f, 0.1f, 0.1f, 1}}};
  std::vector<ScoredDetection> dets{
      {0, det(0.5f, 0.5f, 0.2f, 0.2f, 0.9f, 0)}};  // class 0 perfect
  // class 1 undetected: AP 0. mAP = (1.0 + 0.0) / 2; class 2 has no GT and
  // is excluded from the average.
  EXPECT_DOUBLE_EQ(mean_average_precision(dets, truth, 3), 0.5);
  EXPECT_THROW(mean_average_precision(dets, truth, 0), Error);
}

TEST(AveragePrecision, SceneIndexValidated) {
  const std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.5f, 0.5f, 0.2f, 0.2f, 0}}};
  std::vector<ScoredDetection> dets{{5, det(0.5f, 0.5f, 0.2f, 0.2f)}};
  EXPECT_THROW(average_precision(dets, truth, 0), Error);
}

// ------------------------------------------------------------------ yolo ----

TEST(Yolo, BackboneProducesGridOutput) {
  Rng rng(1);
  const YoloConfig cfg;
  auto model = make_yolo(cfg, rng);
  model->eval();
  const Tensor raw = (*model)(Tensor({2, 3, 48, 48}));
  EXPECT_EQ(raw.shape(), (Shape{2, cfg.depth(), 6, 6}));
}

TEST(Yolo, ConfigValidated) {
  Rng rng(1);
  YoloConfig cfg;
  cfg.image_size = 50;  // not divisible by grid
  EXPECT_THROW(make_yolo(cfg, rng), Error);
}

TEST(Yolo, DecodeRespectsThresholdAndGeometry) {
  const YoloConfig cfg;
  Tensor raw({1, cfg.depth(), 6, 6}, -10.0f);  // all confidences ~0
  // One confident cell at (2, 3): centered box, class 1.
  raw.at(0, 4, 2, 3) = 10.0f;   // conf ~ 1
  raw.at(0, 0, 2, 3) = 0.0f;    // x offset = 0.5
  raw.at(0, 1, 2, 3) = 0.0f;    // y offset = 0.5
  raw.at(0, 2, 2, 3) = 0.0f;    // w = 0.5
  raw.at(0, 3, 2, 3) = 0.0f;    // h = 0.5
  raw.at(0, 6, 2, 3) = 5.0f;    // class 1 logit
  const auto dets = decode(raw, cfg, 0, 0.5f);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_NEAR(dets[0].cx, (3.0f + 0.5f) / 6.0f, 1e-5f);
  EXPECT_NEAR(dets[0].cy, (2.0f + 0.5f) / 6.0f, 1e-5f);
  EXPECT_NEAR(dets[0].w, 0.5f, 1e-5f);
  EXPECT_EQ(dets[0].cls, 1);
  EXPECT_GT(dets[0].confidence, 0.99f);
}

TEST(Yolo, DecodeValidatesShapes) {
  const YoloConfig cfg;
  EXPECT_THROW(decode(Tensor({1, 3, 6, 6}), cfg, 0), Error);
  EXPECT_THROW(decode(Tensor({1, cfg.depth(), 6, 6}), cfg, 1), Error);
}

TEST(Yolo, LossDecreasesTowardTarget) {
  // A raw tensor matching the target should have lower loss than a wrong one.
  const YoloConfig cfg;
  std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.25f, 0.25f, 0.3f, 0.3f, 0}}};
  Tensor good({1, cfg.depth(), 6, 6}, -6.0f);  // low conf everywhere
  // Ground truth center (0.25, 0.25) -> cell (1, 1), offset 0.5.
  good.at(0, 4, 1, 1) = 6.0f;
  good.at(0, 0, 1, 1) = 0.0f;
  good.at(0, 1, 1, 1) = 0.0f;
  good.at(0, 2, 1, 1) = std::log(0.3f / 0.7f);  // sigmoid^-1(0.3)
  good.at(0, 3, 1, 1) = std::log(0.3f / 0.7f);
  good.at(0, 5, 1, 1) = 8.0f;  // class 0

  Tensor bad({1, cfg.depth(), 6, 6}, 3.0f);  // confident everywhere, wrong
  const auto lg = yolo_loss(good, truth, cfg);
  const auto lb = yolo_loss(bad, truth, cfg);
  EXPECT_LT(lg.loss, lb.loss);
}

TEST(Yolo, LossGradientMatchesNumeric) {
  const YoloConfig cfg{.image_size = 48, .grid = 6, .num_classes = 2};
  Rng rng(2);
  Tensor raw = Tensor::rand({2, cfg.depth(), 6, 6}, rng, -1.0f, 1.0f);
  std::vector<std::vector<data::GroundTruthBox>> truth{
      {{0.3f, 0.4f, 0.2f, 0.2f, 0}},
      {{0.7f, 0.6f, 0.3f, 0.3f, 1}, {0.1f, 0.1f, 0.15f, 0.15f, 0}}};
  const auto res = yolo_loss(raw, truth, cfg);
  const float eps = 1e-3f;
  // Spot-check a sample of coordinates (full sweep would be slow).
  Rng pick(3);
  for (int trial = 0; trial < 40; ++trial) {
    const auto i = static_cast<std::int64_t>(pick.next_below(
        static_cast<std::uint64_t>(raw.numel())));
    const float orig = raw[i];
    raw[i] = orig + eps;
    const float lp = yolo_loss(raw, truth, cfg).loss;
    raw[i] = orig - eps;
    const float lm = yolo_loss(raw, truth, cfg).loss;
    raw[i] = orig;
    EXPECT_NEAR(res.grad_raw[i], (lp - lm) / (2.0f * eps), 2e-3f)
        << "coordinate " << i;
  }
}

TEST(Yolo, TrainsToDetectSyntheticShapes) {
  // Integration: the detector must reach a reasonable F1 on scenes, since
  // Fig. 5 contrasts correct golden detections with faulty ones.
  Rng rng(4);
  const YoloConfig cfg;
  const data::SceneSpec scenes;
  auto model = make_yolo(cfg, rng);
  const float loss = train_yolo(*model, scenes, cfg,
                                {.epochs = 6,
                                 .batches_per_epoch = 20,
                                 .batch_size = 8,
                                 .lr = 0.02f,
                                 .seed = 5});
  EXPECT_LT(loss, 1.0f);
  Rng eval_rng(6);
  const double f1 = evaluate_yolo(*model, scenes, cfg, 30, eval_rng);
  EXPECT_GT(f1, 0.5) << "detector F1 " << f1;
}

TEST(Yolo, InjectorInstrumentsDetectorConvs) {
  // The same FaultInjector drives classification and detection studies.
  Rng rng(7);
  const YoloConfig cfg;
  auto model = make_yolo(cfg, rng);
  core::FaultInjector fi(
      model, {.input_shape = {3, 48, 48}, .batch_size = 1});
  EXPECT_EQ(fi.num_layers(), 7);  // 6 backbone convs + head
  Rng lrng(8);
  core::declare_one_fault_per_layer(fi, core::random_value(), lrng);
  EXPECT_EQ(fi.active_neuron_faults(), 7u);
  model->eval();
  EXPECT_NO_THROW(fi.forward(Tensor({1, 3, 48, 48})));
}

}  // namespace
}  // namespace pfi::detect
