// Tests for the parallel campaign engine: the ThreadPool primitive,
// counter-based seed derivation, injector replication, and the headline
// guarantee — a campaign's CampaignResult counts are bit-identical for any
// thread count (ISSUE: threads=1 vs threads=4, and run-to-run at threads=4).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/campaign.hpp"
#include "core/fault_injector.hpp"
#include "models/zoo.hpp"
#include "util/thread_pool.hpp"

namespace pfi::core {
namespace {

using models::make_model;

// ------------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  util::ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.run(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    pool.run(7, [&](std::size_t) { ++count; });
  }
  EXPECT_EQ(count.load(), 35);
}

TEST(ThreadPool, PropagatesTaskException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("task 3 died");
                        }),
               std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> ok{0};
  pool.run(4, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1u);
}

// ------------------------------------------------------------ derive_seed ----

TEST(DeriveSeed, PureFunctionOfInputs) {
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
  EXPECT_EQ(derive_seed(7, 3, 1), derive_seed(7, 3, 1));
}

TEST(DeriveSeed, DistinctAcrossIndexSeedAndStream) {
  EXPECT_NE(derive_seed(7, 0), derive_seed(7, 1));
  EXPECT_NE(derive_seed(7, 0), derive_seed(8, 0));
  EXPECT_NE(derive_seed(7, 0, 0), derive_seed(7, 0, 1));
  // Nearby indices must not produce correlated low bits (counter mode).
  EXPECT_NE(derive_seed(7, 0) & 0xffff, derive_seed(7, 1) & 0xffff);
}

// -------------------------------------------------------------- replicate ----

FiConfig parallel_config() {
  return {.input_shape = {3, 32, 32}, .batch_size = 4};
}

data::SyntheticSpec campaign_spec() {
  // Untrained models are near-constant classifiers, so with k classes about
  // 1/k of uniformly drawn labels match by luck — enough eligible rows for a
  // short campaign. (Fewer classes do NOT help: a constant predictor can be
  // anti-correlated with 2-class labels and starve the campaign entirely.)
  return data::cifar10_like();
}

TEST(Replicate, CloneMatchesOriginalBitForBit) {
  Rng rng(80);
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, parallel_config());
  auto copy = fi.replicate();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->num_layers(), fi.num_layers());

  data::SyntheticDataset ds(campaign_spec());
  Rng draw(81);
  const auto batch = ds.sample_batch(4, draw);
  const Tensor a = fi.forward(batch.images).clone();
  const Tensor b = copy->forward(batch.images);
  EXPECT_TRUE(allclose(a, b, 0.0f));
}

TEST(Replicate, CloneIsIsolatedFromOriginal) {
  Rng rng(82);
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, parallel_config());
  auto copy = fi.replicate();

  data::SyntheticDataset ds(campaign_spec());
  Rng draw(83);
  const auto batch = ds.sample_batch(4, draw);
  const Tensor golden = fi.forward(batch.images).clone();

  // Corrupt the replica's weights; the original must be untouched.
  Rng pick(84);
  copy->declare_weight_fault(copy->random_weight_location(pick),
                             constant_value(1e6f));
  const Tensor original_after = fi.forward(batch.images);
  EXPECT_TRUE(allclose(golden, original_after, 0.0f));
}

TEST(Replicate, RequiresQuiescentInjector) {
  Rng rng(85);
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, parallel_config());
  Rng pick(86);
  fi.declare_weight_fault(fi.random_weight_location(pick), zero_value());
  EXPECT_THROW(fi.replicate(), Error);
  fi.clear();
  EXPECT_NE(fi.replicate(), nullptr);
}

// ------------------------------------------- thread-count invariance ----

bool same_result(const CampaignResult& a, const CampaignResult& b) {
  return a.trials == b.trials && a.skipped == b.skipped &&
         a.corruptions == b.corruptions && a.non_finite == b.non_finite;
}

// Each run builds its model from the same seed, so any count difference can
// only come from the execution schedule. single_bit_flip() with no fixed bit
// draws from the injector's internal RNG — the hardest case for determinism.
CampaignResult run_neuron(std::int64_t threads) {
  Rng rng(90);
  data::SyntheticDataset ds(campaign_spec());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, parallel_config());
  CampaignConfig cfg;
  cfg.trials = 24;
  cfg.error_model = single_bit_flip();
  cfg.seed = 91;
  cfg.batch_size = 4;
  cfg.injections_per_image = 2;
  cfg.threads = threads;
  return run_classification_campaign(fi, ds, cfg);
}

TEST(CampaignParallel, NeuronCampaignIdenticalForOneAndFourThreads) {
  const auto serial = run_neuron(1);
  const auto parallel = run_neuron(4);
  EXPECT_EQ(serial.trials, 24u);
  EXPECT_TRUE(same_result(serial, parallel))
      << "threads=1 {" << serial.trials << "," << serial.skipped << ","
      << serial.corruptions << "," << serial.non_finite << "} vs threads=4 {"
      << parallel.trials << "," << parallel.skipped << ","
      << parallel.corruptions << "," << parallel.non_finite << "}";
}

TEST(CampaignParallel, NeuronCampaignStableRunToRun) {
  EXPECT_TRUE(same_result(run_neuron(4), run_neuron(4)));
}

TEST(CampaignParallel, ThreadsZeroUsesHardwareConcurrency) {
  const auto r = run_neuron(0);
  EXPECT_TRUE(same_result(r, run_neuron(1)));
}

CampaignResult run_weight(std::int64_t threads) {
  Rng rng(92);
  data::SyntheticDataset ds(campaign_spec());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, parallel_config());
  WeightCampaignConfig cfg;
  cfg.faults = 24;
  cfg.images_per_fault = 4;
  cfg.error_model = single_bit_flip();
  cfg.seed = 93;
  cfg.threads = threads;
  return run_weight_campaign(fi, ds, cfg);
}

TEST(CampaignParallel, WeightCampaignIdenticalForOneAndFourThreads) {
  const auto serial = run_weight(1);
  const auto parallel = run_weight(4);
  EXPECT_EQ(serial.trials + serial.skipped, 24u * 4u);
  EXPECT_TRUE(same_result(serial, parallel));
  EXPECT_TRUE(same_result(parallel, run_weight(4)));
}

std::vector<CampaignResult> run_per_layer(std::int64_t threads) {
  // Model seed 90 is load-bearing: an untrained net maps each class texture
  // to one fixed (usually wrong) prediction, so golden accuracy — and with
  // it campaign speed — varies enormously with the weight seed. Seed 90
  // agrees with the labels ~15% of the time; some seeds produce a
  // derangement (0% agreement) and campaigns that crawl toward the attempt
  // cap. Reused from run_neuron, where it is verified fast.
  Rng rng(90);
  data::SyntheticDataset ds(campaign_spec());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, parallel_config());
  CampaignConfig cfg;
  cfg.trials = 8;
  cfg.error_model = random_value(-8.0f, 8.0f);
  cfg.seed = 95;
  cfg.batch_size = 4;
  cfg.injections_per_image = 2;
  cfg.threads = threads;
  return run_per_layer_campaign(fi, ds, cfg);
}

TEST(CampaignParallel, PerLayerCampaignIdenticalForOneAndFourThreads) {
  const auto serial = run_per_layer(1);
  const auto parallel = run_per_layer(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t l = 0; l < serial.size(); ++l) {
    EXPECT_TRUE(same_result(serial[l], parallel[l])) << "layer " << l;
  }
}

// --------------------------------------------- degenerate proportions ----

TEST(CampaignParallel, ZeroTrialsYieldsVacuousProportion) {
  CampaignResult r;  // trials == 0
  const auto p = r.corruption_probability();
  EXPECT_EQ(p.value, 0.0);
  EXPECT_EQ(p.lo, 0.0);
  EXPECT_EQ(p.hi, 1.0);
}

}  // namespace
}  // namespace pfi::core
