// Tests for parameter serialization (save / load / copy) and the Adam
// optimizer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/zoo.hpp"
#include "nn/nn.hpp"

namespace pfi::nn {
namespace {

std::string temp_path(const char* tag) {
  return std::string("/tmp/pfi_test_") + tag + ".pfiw";
}

TEST(Serialize, RoundTripRestoresExactOutputs) {
  Rng rng(1);
  auto a = models::make_model("resnet18", {.num_classes = 10}, rng);
  a->eval();
  Rng drng(2);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const Tensor before = (*a)(x).clone();

  const std::string path = temp_path("roundtrip");
  save_parameters(*a, path);

  // A differently initialized model of the same architecture.
  Rng rng2(99);
  auto b = models::make_model("resnet18", {.num_classes = 10}, rng2);
  b->eval();
  EXPECT_FALSE(allclose((*b)(x), before, 1e-3f));
  load_parameters(*b, path);
  EXPECT_TRUE(allclose((*b)(x), before, 0.0f));
  std::remove(path.c_str());
}

TEST(Serialize, PreservesBatchNormRunningStats) {
  Rng rng(3);
  BatchNorm2d bn(2);
  bn.running_mean()[0] = 5.0f;
  bn.running_var()[1] = 9.0f;
  const std::string path = temp_path("bn");
  save_parameters(bn, path);
  BatchNorm2d restored(2);
  load_parameters(restored, path);
  EXPECT_EQ(restored.running_mean()[0], 5.0f);
  EXPECT_EQ(restored.running_var()[1], 9.0f);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsStructuralMismatch) {
  Rng rng(4);
  auto a = models::make_model("squeezenet", {.num_classes = 10}, rng);
  const std::string path = temp_path("mismatch");
  save_parameters(*a, path);
  auto b = models::make_model("mobilenet", {.num_classes = 10}, rng);
  EXPECT_THROW(load_parameters(*b, path), Error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = temp_path("garbage");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a weight file at all";
  }
  Rng rng(5);
  auto m = models::make_model("squeezenet", {.num_classes = 10}, rng);
  EXPECT_THROW(load_parameters(*m, path), Error);
  EXPECT_THROW(load_parameters(*m, "/nonexistent/dir/x.pfiw"), Error);
  std::remove(path.c_str());
}

TEST(Serialize, CopyParametersForksIdenticalModels) {
  Rng rng(6);
  auto a = models::make_model("resnet18", {.num_classes = 10}, rng);
  Rng rng2(7);
  auto b = models::make_model("resnet18", {.num_classes = 10}, rng2);
  copy_parameters(*a, *b);
  a->eval();
  b->eval();
  Rng drng(8);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  EXPECT_TRUE(allclose((*a)(x), (*b)(x), 0.0f));
  // Independent storage: mutating one does not affect the other.
  a->parameters()[0]->value[0] += 1.0f;
  EXPECT_FALSE(allclose((*a)(x), (*b)(x), 1e-9f));
}

TEST(Serialize, CopyRejectsDifferentArchitectures) {
  Rng rng(9);
  auto a = models::make_model("squeezenet", {.num_classes = 10}, rng);
  auto b = models::make_model("vgg19", {.num_classes = 10}, rng);
  EXPECT_THROW(copy_parameters(*a, *b), Error);
}

// -------------------------------------------------------------------- Adam ----

TEST(Adam, ValidatesOptions) {
  Rng rng(10);
  Linear fc(1, 1, rng, false);
  EXPECT_THROW(Adam({&fc.weight()}, {.lr = 0.0f}), Error);
  EXPECT_THROW(Adam({&fc.weight()}, {.beta1 = 1.0f}), Error);
  EXPECT_THROW(Adam({}, {}), Error);
}

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Rng rng(11);
  Linear fc(1, 1, rng, false);
  fc.weight().value.fill(0.0f);
  fc.weight().grad.fill(0.5f);
  Adam opt({&fc.weight()}, {.lr = 0.1f});
  opt.step();
  EXPECT_NEAR(fc.weight().value[0], -0.1f, 1e-4f);
}

TEST(Adam, SolvesLinearRegression) {
  Rng rng(12);
  Linear fc(1, 1, rng, false);
  Adam opt({&fc.weight()}, {.lr = 0.05f});
  MSELoss mse;
  for (int i = 0; i < 300; ++i) {
    Tensor x = Tensor::rand({8, 1}, rng, -1.0f, 1.0f);
    Tensor target = x.clone();
    target.scale_(-3.0f);
    mse.forward(fc(x), target);
    opt.zero_grad();
    fc.backward(mse.backward());
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value[0], -3.0f, 0.05f);
}

TEST(Adam, AdaptsToGradientScale) {
  // Two parameters with wildly different gradient magnitudes move at
  // comparable speeds — Adam's defining property vs plain SGD.
  Rng rng(13);
  Linear a(1, 1, rng, false), b(1, 1, rng, false);
  a.weight().value.fill(0.0f);
  b.weight().value.fill(0.0f);
  Adam opt({&a.weight(), &b.weight()}, {.lr = 0.01f});
  for (int i = 0; i < 50; ++i) {
    a.weight().grad.fill(1000.0f);
    b.weight().grad.fill(0.001f);
    opt.step();
  }
  EXPECT_NEAR(a.weight().value[0] / b.weight().value[0], 1.0f, 0.1f);
}

}  // namespace
}  // namespace pfi::nn
