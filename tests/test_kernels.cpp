// Differential harness for pfi::kernels.
//
// The blocked kernel is validated three ways:
//  1. against a double-precision oracle with an error bound scaled by the
//     accumulation depth (ULP-tight: the bound is a few float ULPs of the
//     worst-case partial-sum magnitude),
//  2. against the retained naive reference kernel on a randomized shape
//     sweep (M/N/K 1..67, both transposes, every epilogue),
//  3. for bit-identity: the same problem must produce byte-identical output
//     at every thread count and every block configuration — the kernel-level
//     extension of the campaign engine's determinism guarantee.
//
// Also here: IEEE-faithfulness regressions for the zero-skip bug (0 * Inf
// must produce NaN; NaN must propagate), and the packed-weight-cache
// coherence tests for Conv2d/Linear (mutation through tensor aliases — the
// fault injector's mechanism — must never be served a stale pack).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "kernels/kernels.hpp"
#include "nn/nn.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace pfi::kernels {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kQNaN = std::numeric_limits<float>::quiet_NaN();

/// Restores the kernel configuration after every test.
class Kernels : public ::testing::Test {
 protected:
  void TearDown() override {
    set_impl(Impl::kBlocked);
    set_block_config(BlockConfig{});
    set_threads(1);
  }
};
using KernelsConv = Kernels;
using KernelsLinear = Kernels;
using KernelsCache = Kernels;
using KernelsIeee = Kernels;

std::vector<float> random_matrix(std::int64_t n, Rng& rng, float lo = -2.0f,
                                 float hi = 2.0f) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

float logical_a(const std::vector<float>& a, std::int64_t lda, bool trans,
                std::int64_t i, std::int64_t k) {
  return trans ? a[static_cast<std::size_t>(k * lda + i)]
               : a[static_cast<std::size_t>(i * lda + k)];
}

float logical_b(const std::vector<float>& b, std::int64_t ldb, bool trans,
                std::int64_t k, std::int64_t j) {
  return trans ? b[static_cast<std::size_t>(j * ldb + k)]
               : b[static_cast<std::size_t>(k * ldb + j)];
}

/// Double-precision oracle plus the per-element worst-case float error
/// bound: (K + 2) rounding steps of a chain whose partial sums are bounded
/// by sum_k |a_ik * b_kj| (+ |bias|).
void oracle(std::int64_t m, std::int64_t n, std::int64_t k,
            const std::vector<float>& a, std::int64_t lda, bool ta,
            const std::vector<float>& b, std::int64_t ldb, bool tb,
            Epilogue ep, const float* bias, const std::vector<float>& c0,
            std::vector<double>& ref, std::vector<double>& bound) {
  ref.assign(static_cast<std::size_t>(m * n), 0.0);
  bound.assign(static_cast<std::size_t>(m * n), 0.0);
  constexpr double eps = 1.19209290e-07;  // float machine epsilon
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0, mag = 0.0;
      switch (ep) {
        case Epilogue::kZero:
        case Epilogue::kReluZero: break;
        case Epilogue::kAccumulate:
          acc = c0[static_cast<std::size_t>(i * n + j)];
          break;
        case Epilogue::kBiasRow:
        case Epilogue::kReluBiasRow: acc = bias[i]; break;
        case Epilogue::kBiasCol: acc = bias[j]; break;
      }
      mag = std::abs(acc);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double av = logical_a(a, lda, ta, i, kk);
        const double bv = logical_b(b, ldb, tb, kk, j);
        acc += av * bv;
        mag += std::abs(av * bv);
      }
      ref[static_cast<std::size_t>(i * n + j)] = acc;
      bound[static_cast<std::size_t>(i * n + j)] =
          static_cast<double>(k + 2) * eps * mag + 1e-30;
    }
  }
}

void expect_within_bound(const std::vector<float>& got,
                         const std::vector<double>& ref,
                         const std::vector<double>& bound, const char* what) {
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<double>(got[i]) - ref[i]), bound[i])
        << what << " diverges from the double oracle at flat index " << i
        << ": got " << got[i] << ", want " << ref[i];
  }
}

// ------------------------------------------------------ differential sweep ----

TEST_F(Kernels, BlockedAndNaiveMatchOracleOnShapeSweep) {
  Rng rng(0x5eed);
  const std::int64_t dims[] = {1, 2, 3, 5, 8, 13, 31, 67};
  int case_index = 0;
  for (const auto m : dims) {
    for (const auto n : dims) {
      for (const auto k : dims) {
        // Rotate transposes and epilogues across the sweep so every
        // combination appears many times without an 8^3 x 16 blow-up.
        const bool ta = (case_index & 1) != 0;
        const bool tb = (case_index & 2) != 0;
        const Epilogue ep = static_cast<Epilogue>((case_index >> 2) & 3);
        ++case_index;
        const std::int64_t lda = ta ? m : k;
        const std::int64_t ldb = tb ? k : n;
        const auto a = random_matrix(m * k, rng);
        const auto b = random_matrix(k * n, rng);
        const auto bias = random_matrix(std::max(m, n), rng);
        const auto c0 = random_matrix(m * n, rng);

        std::vector<double> ref, bound;
        oracle(m, n, k, a, lda, ta, b, ldb, tb, ep, bias.data(), c0, ref,
               bound);

        auto c_naive = c0;
        naive_gemm(m, n, k, a.data(), lda, ta, b.data(), ldb, tb,
                   c_naive.data(), n, ep, bias.data());
        expect_within_bound(c_naive, ref, bound, "naive_gemm");

        auto c_blocked = c0;
        gemm_blocked(m, n, k, a.data(), lda, ta, b.data(), ldb, tb,
                     c_blocked.data(), n, ep, bias.data());
        expect_within_bound(c_blocked, ref, bound, "gemm_blocked");
      }
    }
  }
}

TEST_F(Kernels, DispatchHonorsSetImpl) {
  Rng rng(7);
  const std::int64_t m = 9, n = 11, k = 13;
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> via_naive_api(m * n), via_dispatch(m * n);
  naive_gemm(m, n, k, a.data(), k, false, b.data(), n, false,
             via_naive_api.data(), n);
  set_impl(Impl::kNaive);
  gemm(m, n, k, a.data(), k, false, b.data(), n, false, via_dispatch.data(),
       n);
  EXPECT_EQ(std::memcmp(via_naive_api.data(), via_dispatch.data(),
                        via_dispatch.size() * sizeof(float)),
            0)
      << "PFI_KERNEL=naive dispatch must be the reference kernel, bit for bit";
}

TEST_F(Kernels, ZeroDepthGemmAppliesEpilogueOnly) {
  const std::int64_t m = 3, n = 4;
  const std::vector<float> bias{10.0f, 20.0f, 30.0f, 40.0f};
  std::vector<float> c(m * n, 7.0f);
  PackedPanels a, b;
  pack_a(m, 0, nullptr, 0, false, 8, a);
  pack_b(0, n, nullptr, n, false, b);
  gemm_packed(m, n, 0, a, b, c.data(), n, Epilogue::kBiasCol, bias.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[static_cast<std::size_t>(i * n + j)],
                bias[static_cast<std::size_t>(j)]);
    }
  }
}

// --------------------------------------------------------- bit identity ----

std::vector<float> run_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                               const std::vector<float>& a,
                               const std::vector<float>& b,
                               const std::vector<float>& bias) {
  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm_blocked(m, n, k, a.data(), k, false, b.data(), n, false, c.data(), n,
               Epilogue::kBiasRow, bias.data());
  return c;
}

TEST_F(Kernels, BitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const std::int64_t m = 61, n = 53, k = 137;
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const auto bias = random_matrix(m, rng);
  // Force a multi-tile grid so > 1 worker actually participates.
  set_block_config({.mc = 16, .nc = 16, .kc = 32, .mr = 8});
  const auto baseline = run_blocked(m, n, k, a, b, bias);
  for (const int t : {2, 3, 4}) {
    set_threads(t);
    const auto c = run_blocked(m, n, k, a, b, bias);
    EXPECT_EQ(std::memcmp(baseline.data(), c.data(),
                          c.size() * sizeof(float)),
              0)
        << "thread count " << t << " changed output bits";
  }
}

TEST_F(Kernels, BitIdenticalAcrossBlockConfigurations) {
  Rng rng(12);
  const std::int64_t m = 67, n = 45, k = 129;
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const auto bias = random_matrix(m, rng);
  const auto baseline = run_blocked(m, n, k, a, b, bias);
  const BlockConfig configs[] = {
      {.mc = 8, .nc = 8, .kc = 8, .mr = 4},
      {.mc = 8, .nc = 16, .kc = 1, .mr = 8},
      {.mc = 16, .nc = 8, .kc = 7, .mr = 4},
      {.mc = 32, .nc = 24, .kc = 64, .mr = 8},
      {.mc = 256, .nc = 512, .kc = 1024, .mr = 8},  // one tile, one panel
      {.mc = 40, .nc = 40, .kc = 33, .mr = 4},
  };
  for (const auto& cfg : configs) {
    set_block_config(cfg);
    for (const int t : {1, 2, 4}) {
      set_threads(t);
      const auto c = run_blocked(m, n, k, a, b, bias);
      EXPECT_EQ(std::memcmp(baseline.data(), c.data(),
                            c.size() * sizeof(float)),
                0)
          << "block config mc=" << cfg.mc << " nc=" << cfg.nc
          << " kc=" << cfg.kc << " mr=" << cfg.mr << " threads=" << t
          << " changed output bits";
    }
  }
}

// ------------------------------------------------------- IEEE faithfulness ----

TEST_F(KernelsIeee, ZeroTimesInfProducesNaNInBothKernels) {
  // The old zero-skip dropped this term entirely and returned a finite
  // number — masking exactly the Inf an error model injected.
  const std::int64_t m = 2, n = 3, k = 4;
  std::vector<float> a(m * k, 1.0f);
  std::vector<float> b(k * n, 1.0f);
  a[0 * k + 2] = 0.0f;           // A(0,2) = 0
  for (std::int64_t j = 0; j < n; ++j) b[2 * n + j] = kInf;  // B(2,*) = Inf
  for (const bool blocked : {false, true}) {
    std::vector<float> c(m * n, 0.0f);
    if (blocked) {
      gemm_blocked(m, n, k, a.data(), k, false, b.data(), n, false, c.data(),
                   n);
    } else {
      naive_gemm(m, n, k, a.data(), k, false, b.data(), n, false, c.data(), n);
    }
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_TRUE(std::isnan(c[static_cast<std::size_t>(j)]))
          << (blocked ? "blocked" : "naive") << " kernel dropped 0 * Inf at j="
          << j;
      EXPECT_TRUE(std::isinf(c[static_cast<std::size_t>(n + j)]))
          << "row without the zero must see the Inf";
    }
  }
}

TEST_F(KernelsIeee, NaNOperandPropagatesThroughZeroPartner) {
  const std::int64_t m = 1, n = 2, k = 3;
  std::vector<float> a{0.0f, 0.0f, 0.0f};
  std::vector<float> b(k * n, 5.0f);
  b[1 * n + 0] = kQNaN;  // B(1,0) = NaN against a zero activation
  for (const bool blocked : {false, true}) {
    std::vector<float> c(m * n, 0.0f);
    if (blocked) {
      gemm_blocked(m, n, k, a.data(), k, false, b.data(), n, false, c.data(),
                   n);
    } else {
      naive_gemm(m, n, k, a.data(), k, false, b.data(), n, false, c.data(), n);
    }
    EXPECT_TRUE(std::isnan(c[0]));
    EXPECT_EQ(c[1], 0.0f);
  }
}

TEST_F(KernelsIeee, MatmulPropagatesInfAgainstZeroActivation) {
  // tensor::matmul regression: activation 0 times injected Inf weight.
  Tensor a({1, 2}, std::vector<float>{0.0f, 1.0f});
  Tensor b({2, 2}, std::vector<float>{kInf, 2.0f, 3.0f, 4.0f});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c[0])) << "0 * Inf must reach the matmul output";
  EXPECT_EQ(c[1], 4.0f);
}

TEST_F(KernelsIeee, ConvZeroWeightTimesInfActivationIsNaN) {
  // Conv2d regression: a weight injected to exactly 0.0 (stuck-at-zero
  // model) must still multiply an Inf activation and yield NaN; the old
  // `if (wv == 0.0f) continue;` silently produced a finite output.
  Rng rng(3);
  nn::Conv2d conv(
      nn::Conv2dOptions{.in_channels = 2, .out_channels = 1, .kernel = 1},
      rng);
  conv.weight().value.fill(0.0f);
  conv.invalidate_weight_packs();
  Tensor x({1, 2, 2, 2}, 1.0f);
  x.at(0, 0, 0, 0) = kInf;
  const Tensor y = conv(x);
  EXPECT_TRUE(std::isnan(y.at(0, 0, 0, 0)))
      << "zero weight x Inf activation must be NaN, not skipped";
  EXPECT_TRUE(std::isfinite(y.at(0, 0, 1, 1)))
      << "positions away from the Inf stay finite";
}

// ------------------------------------------------- module differentials ----

/// Largest |a - b| over two same-shaped tensors.
float tensor_max_diff(const Tensor& a, const Tensor& b) {
  return a.max_abs_diff(b);
}

/// Bit-compare two tensors.
bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

TEST_F(KernelsConv, ForwardMatchesNaiveAcrossConfigSweep) {
  struct Case {
    std::int64_t cin, cout, kernel, stride, padding, groups, h;
    bool bias;
  };
  const Case cases[] = {
      {2, 3, 1, 1, 0, 1, 5, true},    // 1x1
      {3, 4, 3, 1, 1, 1, 7, true},    // the workhorse 3x3
      {3, 2, 3, 2, 1, 1, 9, false},   // strided
      {4, 4, 2, 2, 0, 1, 8, true},    // even kernel, no pad
      {2, 2, 7, 1, 3, 1, 9, true},    // k=7 (AlexNet-style front)
      {4, 6, 3, 1, 1, 2, 6, true},    // grouped
      {3, 3, 3, 1, 1, 3, 6, false},   // depthwise
      {4, 8, 5, 2, 2, 2, 11, true},   // grouped + strided + k=5
  };
  Rng rng(21);
  for (const auto& cs : cases) {
    nn::Conv2d conv(
        nn::Conv2dOptions{.in_channels = cs.cin, .out_channels = cs.cout,
                          .kernel = cs.kernel, .stride = cs.stride,
                          .padding = cs.padding, .groups = cs.groups,
                          .bias = cs.bias},
        rng);
    const Tensor x = Tensor::rand({2, cs.cin, cs.h, cs.h}, rng, -1.0f, 1.0f);
    set_impl(Impl::kNaive);
    const Tensor y_ref = conv(x).clone();
    set_impl(Impl::kBlocked);
    const Tensor y_blk = conv(x).clone();
    // The blocked kernel runs the same bias + ascending-k fma chain the
    // reference compiles to; allow a few ULPs in case the reference was not
    // contracted.
    EXPECT_LE(tensor_max_diff(y_ref, y_blk),
              1e-5f * static_cast<float>(cs.cin * cs.kernel * cs.kernel))
        << "conv k=" << cs.kernel << " s=" << cs.stride << " p=" << cs.padding
        << " g=" << cs.groups;
    // And the blocked result is bit-stable across threads and block sizes.
    set_block_config({.mc = 8, .nc = 8, .kc = 8, .mr = 4});
    set_threads(4);
    const Tensor y_tiled = conv(x).clone();
    EXPECT_TRUE(bit_equal(y_blk, y_tiled))
        << "conv output bits changed with tiling/threads";
    set_block_config(BlockConfig{});
    set_threads(1);
  }
}

TEST_F(KernelsLinear, ForwardAndBackwardMatchNaive) {
  Rng rng(22);
  for (const bool bias : {true, false}) {
    nn::Linear fc(13, 9, rng, bias);
    const Tensor x = Tensor::rand({4, 13}, rng, -1.0f, 1.0f);
    const Tensor g = Tensor::rand({4, 9}, rng, -1.0f, 1.0f);

    set_impl(Impl::kNaive);
    const Tensor y_ref = fc(x).clone();
    fc.zero_grad();
    const Tensor gx_ref = fc.backward(g).clone();
    const Tensor gw_ref = fc.weight().grad.clone();

    set_impl(Impl::kBlocked);
    const Tensor y_blk = fc(x).clone();
    fc.zero_grad();
    const Tensor gx_blk = fc.backward(g).clone();
    const Tensor gw_blk = fc.weight().grad.clone();

    EXPECT_LE(tensor_max_diff(y_ref, y_blk), 1e-5f);
    EXPECT_LE(tensor_max_diff(gx_ref, gx_blk), 1e-5f);
    EXPECT_LE(tensor_max_diff(gw_ref, gw_blk), 1e-5f);
  }
}

TEST_F(KernelsConv, ModelForwardBitIdenticalAcrossThreads) {
  // End-to-end: a small conv stack through Module::operator() must produce
  // byte-identical activations at any intra-op thread count.
  Rng rng(23);
  auto seq = std::make_shared<nn::Sequential>();
  seq->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3,
                        .padding = 1},
      rng);
  seq->emplace<nn::ReLU>();
  seq->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 8, .out_channels = 4, .kernel = 3,
                        .stride = 2, .padding = 1},
      rng);
  const Tensor x = Tensor::rand({2, 3, 16, 16}, rng, -1.0f, 1.0f);
  set_block_config({.mc = 8, .nc = 16, .kc = 16, .mr = 8});
  const Tensor y1 = (*seq)(x).clone();
  for (const int t : {2, 4}) {
    set_threads(t);
    const Tensor yt = (*seq)(x).clone();
    EXPECT_TRUE(bit_equal(y1, yt)) << "threads=" << t;
  }
}

// ------------------------------------------------------ packed-weight cache ----

TEST_F(KernelsCache, AliasedWeightMutationIsNeverServedStale)
{
  // The fault injector mutates weights through tensor aliases; the pack
  // cache must catch that via the fingerprint even without an explicit
  // invalidate() call.
  Rng rng(31);
  nn::Conv2d conv(
      nn::Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 3,
                        .padding = 1},
      rng);
  const Tensor x = Tensor::rand({1, 2, 5, 5}, rng, -1.0f, 1.0f);
  const Tensor y0 = conv(x).clone();
  const Tensor y0_again = conv(x).clone();  // served from the cached pack
  EXPECT_TRUE(bit_equal(y0, y0_again));

  Tensor alias = conv.weight().value;  // shared storage, like the injector
  const float golden = alias[0];
  alias[0] = 42.0f;  // no invalidate() on purpose
  const Tensor y_mut = conv(x).clone();
  EXPECT_FALSE(bit_equal(y0, y_mut))
      << "stale pack served after aliased weight mutation";

  alias[0] = golden;
  const Tensor y_back = conv(x).clone();
  EXPECT_TRUE(bit_equal(y0, y_back))
      << "restoring the weight bits must restore the output bits";
}

TEST_F(KernelsCache, InvalidateDropsThePack) {
  Rng rng(32);
  nn::Linear fc(6, 5, rng);
  const Tensor x = Tensor::rand({2, 6}, rng, -1.0f, 1.0f);
  const Tensor y0 = fc(x).clone();
  fc.invalidate_weight_packs();
  const Tensor y1 = fc(x).clone();  // repacked from scratch
  EXPECT_TRUE(bit_equal(y0, y1));
}

TEST_F(KernelsCache, FingerprintDetectsSingleBitFlips) {
  std::vector<float> w(64, 1.5f);
  const auto fp0 = fingerprint(w.data(), 64);
  for (const int bit : {0, 11, 22, 31}) {
    for (const std::size_t at : {std::size_t{0}, std::size_t{63}}) {
      auto bits = float_to_bits(w[at]);
      bits ^= (1u << bit);
      const float saved = w[at];
      w[at] = bits_to_float(bits);
      EXPECT_NE(fingerprint(w.data(), 64), fp0)
          << "bit " << bit << " at element " << at << " not detected";
      w[at] = saved;
    }
  }
  EXPECT_EQ(fingerprint(w.data(), 64), fp0);
}

}  // namespace
}  // namespace pfi::kernels
