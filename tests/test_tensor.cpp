// Unit tests for the tensor library.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "util/error.hpp"

namespace pfi {
namespace {

TEST(Tensor, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(Tensor, ZerosShapeAndContents) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 120);
  EXPECT_EQ(t.dim(), 4);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 5);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndOnes) {
  EXPECT_EQ(Tensor::full({3}, 2.5f)[1], 2.5f);
  EXPECT_EQ(Tensor::ones({3})[2], 1.0f);
}

TEST(Tensor, ArangeValues) {
  const Tensor t = Tensor::arange(5);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], static_cast<float>(i));
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  Tensor a({4});
  Tensor b = a;        // shares (torch semantics)
  Tensor c = a.clone();
  b[0] = 42.0f;
  EXPECT_EQ(a[0], 42.0f);
  EXPECT_EQ(c[0], 0.0f);
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_FALSE(a.shares_storage_with(c));
}

TEST(Tensor, NchwAccessorRoundTrip) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t.at(1, 2, 3, 4), 7.0f);
  EXPECT_EQ(t[t.offset_of(1, 2, 3, 4)], 7.0f);
  // Last element of the buffer.
  EXPECT_EQ(t.offset_of(1, 2, 3, 4), t.numel() - 1);
}

TEST(Tensor, AccessorBoundsChecked) {
  Tensor t({2, 3, 4, 5});
  EXPECT_THROW(t.at(2, 0, 0, 0), Error);
  EXPECT_THROW(t.at(0, 3, 0, 0), Error);
  EXPECT_THROW(t.at(0, 0, 4, 0), Error);
  EXPECT_THROW(t.at(0, 0, 0, 5), Error);
  EXPECT_THROW(t.at(-1, 0, 0, 0), Error);
  EXPECT_THROW(t[120], Error);
}

TEST(Tensor, ReshapeSharesAndValidates) {
  Tensor t({2, 6});
  Tensor r = t.reshape({3, 4});
  EXPECT_TRUE(t.shares_storage_with(r));
  r.at(0, 0) = 9.0f;
  EXPECT_EQ(t.at(0, 0), 9.0f);
  EXPECT_THROW(t.reshape({5, 5}), Error);
}

TEST(Tensor, FillCopyFromAdd) {
  Tensor a({3}), b({3});
  a.fill(2.0f);
  b.fill(3.0f);
  a.add_(b, 2.0f);
  EXPECT_EQ(a[0], 8.0f);
  a.copy_from(b);
  EXPECT_EQ(a[1], 3.0f);
  Tensor c({4});
  EXPECT_THROW(a.copy_from(c), Error);
  EXPECT_THROW(a.add_(c), Error);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{1.0f, -2.0f, 3.0f, 0.5f});
  EXPECT_FLOAT_EQ(t.sum(), 2.5f);
  EXPECT_FLOAT_EQ(t.mean(), 0.625f);
  EXPECT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.min(), -2.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_FLOAT_EQ(t.squared_norm(), 1.0f + 4.0f + 9.0f + 0.25f);
}

TEST(Tensor, ApplyAndScale) {
  Tensor t({3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  t.apply_([](float v) { return v * v; });
  EXPECT_EQ(t[2], 9.0f);
  t.scale_(0.5f);
  EXPECT_EQ(t[2], 4.5f);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Tensor, MatmulValidatesShapes) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Tensor, MatmulIdentity) {
  Rng rng(1);
  Tensor a = Tensor::rand({5, 5}, rng, -1.0f, 1.0f);
  Tensor eye({5, 5});
  for (int i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  EXPECT_TRUE(allclose(matmul(a, eye), a));
  EXPECT_TRUE(allclose(matmul(eye, a), a));
}

TEST(Tensor, AddMulFreeFunctions) {
  Tensor a({2}, std::vector<float>{1.0f, 2.0f});
  Tensor b({2}, std::vector<float>{3.0f, 4.0f});
  EXPECT_EQ(add(a, b)[1], 6.0f);
  EXPECT_EQ(mul(a, b)[1], 8.0f);
  // Inputs unchanged.
  EXPECT_EQ(a[1], 2.0f);
}

TEST(Tensor, AllcloseRespectsShapeAndTolerance) {
  Tensor a({2}), b({2}), c({3});
  b[0] = 1e-6f;
  EXPECT_TRUE(allclose(a, b, 1e-5f));
  EXPECT_FALSE(allclose(a, b, 1e-7f));
  EXPECT_FALSE(allclose(a, c));
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  Tensor b({3}, std::vector<float>{1.5f, 2.0f, 2.0f});
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 1.0f);
}

TEST(Tensor, RandWithinBoundsAndSeeded) {
  Rng r1(42), r2(42);
  Tensor a = Tensor::rand({100}, r1, -2.0f, 2.0f);
  Tensor b = Tensor::rand({100}, r2, -2.0f, 2.0f);
  EXPECT_TRUE(allclose(a, b, 0.0f));
  for (float v : a.data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 2.0f);
  }
}

TEST(Tensor, ShapeToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(Tensor({2, 3}).to_string(), "Tensor[2, 3]");
}

TEST(Tensor, NegativeDimensionRejected) {
  EXPECT_THROW(Tensor({-1, 3}), Error);
}

}  // namespace
}  // namespace pfi
