// Unit tests for pfi_cli's argument parser (core/cli.hpp). The parser is a
// pure function from argv to CliParse, so every usage error — unknown
// flags, missing values, out-of-range integers, conflicting flag
// combinations, and the shard-mode validation rules — can be pinned
// without spawning the binary.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cli.hpp"

namespace pfi::core {
namespace {

/// Parse a brace-list of flags as pfi_cli would see them (argv[0] is the
/// program name and is skipped).
CliParse parse(std::vector<std::string> args) {
  std::vector<const char*> argv = {"pfi_cli"};
  for (const std::string& a : args) argv.push_back(a.c_str());
  return parse_cli_args(static_cast<int>(argv.size()), argv.data());
}

void expect_error(std::vector<std::string> args, const std::string& needle) {
  const CliParse p = parse(std::move(args));
  EXPECT_FALSE(p.ok());
  EXPECT_NE(p.error.find(needle), std::string::npos)
      << "error was: " << p.error;
}

// ----------------------------------------------------------- happy path ----

TEST(Cli, DefaultsWhenNoFlags) {
  const CliParse p = parse({});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.options.model, "resnet18");
  EXPECT_EQ(p.options.dataset, "cifar10");
  EXPECT_EQ(p.options.dtype, "fp32");
  EXPECT_EQ(p.options.error, "random");  // filled in during validation
  EXPECT_EQ(p.options.trials, 500);
  EXPECT_EQ(p.options.seed, 1u);
  EXPECT_EQ(p.options.shards, 1);
  EXPECT_EQ(p.options.shard_index, -1);
  EXPECT_FALSE(p.options.shard_mode());
}

TEST(Cli, ParsesTypicalCampaignInvocation) {
  const CliParse p =
      parse({"--model", "alexnet", "--trials", "1000", "--error",
             "bitflip:31", "--layer", "3", "--threads", "8", "--seed", "42",
             "--trace", "/tmp/t.jsonl", "--no-prefix-cache"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.options.model, "alexnet");
  EXPECT_EQ(p.options.trials, 1000);
  EXPECT_EQ(p.options.error, "bitflip:31");
  EXPECT_EQ(p.options.layer, 3);
  EXPECT_EQ(p.options.threads, 8);
  EXPECT_EQ(p.options.seed, 42u);
  EXPECT_EQ(p.options.trace_path, "/tmp/t.jsonl");
  EXPECT_FALSE(p.options.prefix_cache);
}

TEST(Cli, HelpAndListModelsShortCircuit) {
  EXPECT_TRUE(parse({"--help"}).show_help);
  EXPECT_TRUE(parse({"-h"}).show_help);
  EXPECT_TRUE(parse({"--list-models"}).list_models);
  // Short-circuits even if later flags are nonsense.
  EXPECT_TRUE(parse({"--help", "--bogus"}).show_help);
  EXPECT_FALSE(parse({"--help"}).ok());
  EXPECT_NE(cli_usage().find("--shard-dir"), std::string::npos);
}

TEST(Cli, ShardWorkerInvocation) {
  const CliParse p = parse({"--shard-dir", "/tmp/shards", "--shards", "4",
                            "--shard-index", "2", "--shard-horizon", "512"});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.options.shard_mode());
  EXPECT_EQ(p.options.shards, 4);
  EXPECT_EQ(p.options.shard_index, 2);
  EXPECT_EQ(p.options.shard_horizon, 512);
}

TEST(Cli, ShardDriverInvocationWithoutIndex) {
  const CliParse p = parse({"--shard-dir", "/tmp/shards", "--shards", "3"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.options.shard_index, -1);  // run all shards + merge
}

// --------------------------------------------------------- usage errors ----

TEST(Cli, UnknownFlagIsNamed) {
  expect_error({"--bogus"}, "unknown flag '--bogus'");
  expect_error({"--trials", "10", "--frobnicate"},
               "unknown flag '--frobnicate'");
}

TEST(Cli, MissingValueIsNamed) {
  expect_error({"--trials"}, "flag '--trials' is missing its value");
  expect_error({"--model"}, "flag '--model' is missing its value");
  expect_error({"--shard-dir"}, "flag '--shard-dir' is missing its value");
}

TEST(Cli, OutOfRangeIntegersAreRejectedWithRange) {
  expect_error({"--trials", "0"}, "--trials expects an integer in [1, ");
  expect_error({"--trials", "-5"}, "--trials expects an integer");
  expect_error({"--trials", "12banana"}, "got '12banana'");
  expect_error({"--threads", "5000"}, "--threads expects an integer");
  expect_error({"--epochs", "x"}, "--epochs expects an integer");
  expect_error({"--seed", "-1"}, "--seed expects an unsigned integer");
  expect_error({"--ci-target", "1.5"},
               "--ci-target expects a half-width in [0, 1)");
  expect_error({"--ci-target", "abc"}, "got 'abc'");
}

TEST(Cli, BadErrorModelAndDtypeSpecs) {
  expect_error({"--error", "frob"}, "unknown error model 'frob'");
  expect_error({"--error", "random:1"}, "random takes 0 or 2 arguments");
  expect_error({"--error", "const:x"}, "'x' is not a number");
  expect_error({"--dtype", "fp64"}, "unknown dtype 'fp64'");
  expect_error({"--sampler", "quantum"}, "unknown sampler 'quantum'");
}

TEST(Cli, ErrorModelSpecParser) {
  EXPECT_TRUE(parse_error_model_spec("bitflip").has_value());
  EXPECT_TRUE(parse_error_model_spec("bitflip:31").has_value());
  EXPECT_TRUE(parse_error_model_spec("random:0:1").has_value());
  EXPECT_TRUE(parse_error_model_spec("noise:0.5").has_value());
  std::string why;
  EXPECT_FALSE(parse_error_model_spec("bitflip:1:2", &why).has_value());
  EXPECT_NE(why.find("at most one argument"), std::string::npos);
}

TEST(Cli, DtypeNameParser) {
  EXPECT_TRUE(parse_dtype_name("fp32").has_value());
  EXPECT_TRUE(parse_dtype_name("fp16").has_value());
  EXPECT_TRUE(parse_dtype_name("int8").has_value());
  EXPECT_TRUE(parse_dtype_name("bf16").has_value());
  EXPECT_FALSE(parse_dtype_name("int4").has_value());
  EXPECT_FALSE(parse_dtype_name("fp32-native").has_value());  // spec syntax
}

TEST(Cli, DtypeSpecParser) {
  const auto plain = parse_dtype_spec("int8");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->dtype, DType::kInt8);
  EXPECT_FALSE(plain->native);
  const auto native = parse_dtype_spec("int8-native");
  ASSERT_TRUE(native.has_value());
  EXPECT_EQ(native->dtype, DType::kInt8);
  EXPECT_TRUE(native->native);
  EXPECT_TRUE(parse_dtype_spec("bf16-native").has_value());
  EXPECT_TRUE(parse_dtype_spec("fp16-native").has_value());
  EXPECT_FALSE(parse_dtype_spec("-native").has_value());
  EXPECT_FALSE(parse_dtype_spec("int8-nativ").has_value());
}

TEST(Cli, PerLayerDtypeParser) {
  std::string error;
  const auto one = parse_per_layer_dtype("features.3=int8-native", &error);
  ASSERT_TRUE(one.has_value()) << error;
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].layer, "features.3");
  EXPECT_EQ((*one)[0].dtype, DType::kInt8);
  EXPECT_TRUE((*one)[0].native);
  const auto two =
      parse_per_layer_dtype("features.0=fp16,classifier.1=bf16-native", &error);
  ASSERT_TRUE(two.has_value()) << error;
  ASSERT_EQ(two->size(), 2u);
  EXPECT_EQ((*two)[1].layer, "classifier.1");
  EXPECT_EQ((*two)[1].dtype, DType::kBFloat16);
  EXPECT_TRUE((*two)[1].native);
  EXPECT_FALSE(parse_per_layer_dtype("", &error).has_value());
  EXPECT_FALSE(parse_per_layer_dtype("features.3", &error).has_value());
  EXPECT_FALSE(parse_per_layer_dtype("=int8", &error).has_value());
  EXPECT_FALSE(parse_per_layer_dtype("features.3=", &error).has_value());
  EXPECT_FALSE(parse_per_layer_dtype("features.3=int9", &error).has_value());
}

TEST(Cli, NativeFlagAndSuffix) {
  const auto flag = parse({"--dtype", "int8", "--native"});
  ASSERT_TRUE(flag.ok()) << flag.error;
  EXPECT_TRUE(flag.options.native);
  EXPECT_EQ(flag.options.dtype, "int8");
  // A -native dtype suffix folds into the flag and strips from the token.
  const auto suffix = parse({"--dtype", "bf16-native"});
  ASSERT_TRUE(suffix.ok()) << suffix.error;
  EXPECT_TRUE(suffix.options.native);
  EXPECT_EQ(suffix.options.dtype, "bf16");
  expect_error({"--dtype", "int8-nativ"}, "unknown dtype");
  expect_error({"--per-layer-dtype", "features.3"}, "not PATH=DTYPE");
}

// ---------------------------------------------------- shard validation ----

TEST(Cli, ShardFlagsRequireShardDir) {
  expect_error({"--shards", "4"}, "need --shard-dir");
  expect_error({"--shard-index", "0"}, "need --shard-dir");
  expect_error({"--shard-horizon", "100"}, "--shard-horizon needs --shard-dir");
}

TEST(Cli, ShardIndexMustBeBelowShardCount) {
  expect_error({"--shard-dir", "/tmp/s", "--shards", "4", "--shard-index",
                "4"},
               "--shard-index 4 must be < --shards 4");
  expect_error({"--shard-dir", "/tmp/s", "--shard-index", "1"},
               "--shard-index 1 must be < --shards 1");
}

TEST(Cli, ShardRangesEnforced) {
  expect_error({"--shards", "0"}, "--shards expects an integer in [1, ");
  expect_error({"--shard-index", "-1"}, "--shard-index expects an integer");
  expect_error({"--shard-horizon", "0"},
               "--shard-horizon expects an integer");
}

TEST(Cli, ShardModeConflicts) {
  expect_error({"--shard-dir", "/tmp/s", "--checkpoint", "/tmp/c.json"},
               "--checkpoint conflicts with sharding");
  expect_error({"--shard-dir", "/tmp/s", "--resume"},
               "--resume is implicit in shard mode");
  expect_error({"--shard-dir", "/tmp/s", "--per-layer"},
               "--per-layer campaigns cannot be sharded");
  expect_error({"--shard-dir", "/tmp/s", "--sampler", "stratified",
                "--ci-target", "0.01"},
               "cannot be sharded");
}

TEST(Cli, ShardedStratifiedBudgetModeIsAllowed) {
  const CliParse p = parse({"--shard-dir", "/tmp/s", "--shards", "2",
                            "--sampler", "stratified"});
  EXPECT_TRUE(p.ok()) << p.error;
}

// ----------------------------------------------- non-shard cross checks ----

TEST(Cli, ResumeRequiresCheckpoint) {
  expect_error({"--resume"}, "--resume requires --checkpoint");
  EXPECT_TRUE(
      parse({"--checkpoint", "/tmp/c.json", "--resume"}).ok());
}

TEST(Cli, StratifiedRules) {
  expect_error({"--sampler", "stratified", "--error", "zero"},
               "--error does not apply");
  expect_error({"--sampler", "stratified", "--per-layer"},
               "--per-layer is the uniform sampler's mode");
  expect_error({"--ci-target", "0.01"},
               "--ci-target requires --sampler stratified");
  EXPECT_TRUE(parse({"--sampler", "stratified", "--ci-target", "0.01"}).ok());
}

}  // namespace
}  // namespace pfi::core
