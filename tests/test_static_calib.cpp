// Static activation calibration + INT8-resident boundaries test harness.
//
// Covers the statically-calibrated native INT8 path end to end:
//  1. the SIMD activation quantize / static pack / streaming pack /
//     requantize-to-grid kernels, bit-identical across every INT8 ISA the
//     host supports (scalar always; AVX2 madd / VNNI when present),
//  2. the fused ReLU epilogues (fp32 kReluZero/kReluBiasRow and the grid
//     epilogue's relu-on-codes), bit-equal to unfused GEMM + ReLU,
//  3. nn::fuse_relu / unfuse_relu wiring and the ReLU passthrough,
//  4. core::calibrate_static_act round-tripping through the persisted JSON
//     bit-exactly, and the stale-calibration refusal when the model's
//     weights no longer match the calibration's fingerprint,
//  5. campaign byte-identity under static calibration across thread counts
//     and prefix-cache settings, with static-on and static-off runs pinned
//     as DISTINCT experiment fingerprints.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/calibrate.hpp"
#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fault_injector.hpp"
#include "core/sampling.hpp"
#include "core/trace.hpp"
#include "data/synthetic.hpp"
#include "kernels/kernels.hpp"
#include "kernels/lowp.hpp"
#include "nn/nn.hpp"
#include "quant/static_act.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pfi::kernels {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kQNaN = std::numeric_limits<float>::quiet_NaN();

/// Restores the kernel configuration (including the pinned INT8 ISA) after
/// every test.
class StaticCalibKernels : public ::testing::Test {
 protected:
  void TearDown() override {
    set_block_config(BlockConfig{});
    set_threads(1);
    set_i8_isa(I8Isa::kAuto);
  }
};
using StaticCalibFusion = StaticCalibKernels;
using StaticCalibInjector = StaticCalibKernels;
using StaticCalibCampaign = StaticCalibKernels;

/// Every INT8 ISA the host supports (kScalar always; kMadd/kVnni probed).
std::vector<I8Isa> supported_i8_isas() {
  std::vector<I8Isa> isas{I8Isa::kScalar};
  for (const I8Isa isa : {I8Isa::kMadd, I8Isa::kVnni}) {
    try {
      set_i8_isa(isa);
      isas.push_back(isa);
    } catch (const Error&) {
    }
  }
  set_i8_isa(I8Isa::kAuto);
  return isas;
}

std::vector<float> random_buffer(std::int64_t n, Rng& rng, float lo = -2.0f,
                                 float hi = 2.0f) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

bool same_panels(const PackedPanelsI8& a, const PackedPanelsI8& b) {
  return a.k == b.k && a.kp == b.kp && a.span == b.span && a.panel == b.panel &&
         a.data == b.data && a.scale == b.scale;
}

// -------------------------------------------- cross-ISA kernel identity ----

TEST_F(StaticCalibKernels, QuantizeRowI16MatchesScalarQuantizerAcrossIsa) {
  Rng rng(0xca11b);
  std::vector<float> src = random_buffer(131, rng, -5.0f, 5.0f);
  // Saturating, non-finite, and exactly-representable inputs: the vector
  // path must reproduce quantize_unit's NaN/Inf mapping and its
  // round-nearest-even ties bit for bit.
  src.insert(src.end(), {kQNaN, kInf, -kInf, 0.0f, -0.0f, 1e30f, -1e30f,
                         0.5f, -0.5f, 1.5f, 2.5f, -2.5f});
  const float scale = 1.0f / 127.0f;

  std::vector<std::int16_t> want(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    want[i] = quantize_unit(src[i], scale);
  }
  for (const I8Isa isa : supported_i8_isas()) {
    set_i8_isa(isa);
    std::vector<std::int16_t> got(src.size(), 9999);
    quantize_row_i16(src.data(), static_cast<std::int64_t>(src.size()), scale,
                     got.data());
    EXPECT_EQ(got, want) << "isa=" << static_cast<int>(isa);

    const float am =
        finite_absmax_i8(src.data(), static_cast<std::int64_t>(src.size()));
    float ref = 0.0f;
    for (const float v : src) {
      if (std::isfinite(v)) ref = std::max(ref, std::fabs(v));
    }
    EXPECT_EQ(am, ref) << "finite_absmax isa=" << static_cast<int>(isa);
  }
}

TEST_F(StaticCalibKernels, StaticPacksMatchDynamicPacksAtTheDynamicScale) {
  // A static pack at exactly the scale the dynamic pack would derive must
  // produce the identical panel bytes — the static path drops the absmax
  // pass, not a single bit of the representation.
  Rng rng(0x57a71c);
  const std::int64_t m = 23, k = 37, n = 29;
  const auto a = random_buffer(m * k, rng);
  const auto b = random_buffer(k * n, rng);
  const float a_scale =
      scale_from_absmax(finite_absmax_i8(a.data(), m * k));
  const float b_scale =
      scale_from_absmax(finite_absmax_i8(b.data(), k * n));

  for (const I8Isa isa : supported_i8_isas()) {
    set_i8_isa(isa);
    PackedPanelsI8 pa_dyn, pa_st, pb_dyn, pb_st;
    quantize_pack_a_i8_tensor(m, k, a.data(), k, false, block_config().mr,
                              pa_dyn);
    quantize_pack_a_i8_static(m, k, a.data(), k, false, block_config().mr,
                              a_scale, pa_st);
    quantize_pack_b_i8_tensor(k, n, b.data(), n, false, pb_dyn);
    quantize_pack_b_i8_static(k, n, b.data(), n, false, b_scale, pb_st);
    EXPECT_TRUE(same_panels(pa_dyn, pa_st))
        << "A-side static pack diverged, isa=" << static_cast<int>(isa);
    EXPECT_TRUE(same_panels(pb_dyn, pb_st))
        << "B-side static pack diverged, isa=" << static_cast<int>(isa);
  }
}

TEST_F(StaticCalibKernels, StreamedPackAndAbsmaxBitEqualMaterialized) {
  Rng rng(0x57e4);
  const std::int64_t k = 41, n = 53;
  auto b = random_buffer(k * n, rng);
  b[7] = kQNaN;  // the streaming absmax must skip non-finite values too
  b[11] = kInf;
  const BTileFn tile = [&](std::int64_t col0, int w, float* dst) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (int c = 0; c < w; ++c) {
        dst[kk * w + c] = b[static_cast<std::size_t>(kk * n + col0 + c)];
      }
    }
  };
  for (const I8Isa isa : supported_i8_isas()) {
    set_i8_isa(isa);
    EXPECT_EQ(finite_absmax_stream(k, n, tile),
              finite_absmax_i8(b.data(), k * n))
        << "isa=" << static_cast<int>(isa);
    const float scale = scale_from_absmax(finite_absmax_i8(b.data(), k * n));
    PackedPanelsI8 pb_mat, pb_stream;
    quantize_pack_b_i8_static(k, n, b.data(), n, false, scale, pb_mat);
    quantize_pack_b_i8_stream(k, n, scale, tile, pb_stream);
    EXPECT_TRUE(same_panels(pb_mat, pb_stream))
        << "streamed pack diverged from materialized, isa="
        << static_cast<int>(isa);
  }
}

TEST_F(StaticCalibKernels, RequantizeGridMatchesScalarOracleAcrossIsa) {
  Rng rng(0x9e1d);
  const std::int64_t m = 9, n = 21;
  std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(rng.uniform(-40000.0f, 40000.0f));
  }
  const auto row_scale = random_buffer(m, rng, 0.001f, 0.05f);
  const auto col_scale = random_buffer(n, rng, 0.001f, 0.05f);
  const auto bias_r = random_buffer(m, rng, -1.0f, 1.0f);
  const auto bias_c = random_buffer(n, rng, -1.0f, 1.0f);
  const float b_scale = 0.013f, a_scale = 0.017f, out_scale = 0.021f;

  const auto grid_oracle = [&](float v, bool relu) {
    int code = quantize_unit(v, out_scale);
    if (relu && code < 0) code = 0;
    return static_cast<float>(code) * out_scale;
  };

  for (const I8Isa isa : supported_i8_isas()) {
    set_i8_isa(isa);
    for (const bool relu : {false, true}) {
      std::vector<float> rows(static_cast<std::size_t>(m * n));
      requantize_rows_grid(m, n, acc.data(), n, row_scale.data(), b_scale,
                           bias_r.data(), out_scale, relu, rows.data(), n);
      std::vector<float> cols(static_cast<std::size_t>(m * n));
      requantize_cols_grid(m, n, acc.data(), n, a_scale, col_scale.data(),
                           bias_c.data(), out_scale, relu, cols.data(), n);
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          const float acc_f =
              static_cast<float>(acc[static_cast<std::size_t>(i * n + j)]);
          const float want_r = grid_oracle(
              std::fma(row_scale[static_cast<std::size_t>(i)] * b_scale, acc_f,
                       bias_r[static_cast<std::size_t>(i)]),
              relu);
          const float want_c = grid_oracle(
              std::fma(a_scale * col_scale[static_cast<std::size_t>(j)], acc_f,
                       bias_c[static_cast<std::size_t>(j)]),
              relu);
          ASSERT_EQ(rows[static_cast<std::size_t>(i * n + j)], want_r)
              << "rows_grid isa=" << static_cast<int>(isa) << " relu=" << relu
              << " at (" << i << "," << j << ")";
          ASSERT_EQ(cols[static_cast<std::size_t>(i * n + j)], want_c)
              << "cols_grid isa=" << static_cast<int>(isa) << " relu=" << relu
              << " at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST_F(StaticCalibKernels, ReluEpilogueBitEqualsUnfusedGemmThenRelu) {
  // The fused rectification runs per macro-tile after the full K sweep, so
  // it must be BIT-EQUAL to the unfused kernel followed by a ReLU pass —
  // same summation chains, rectification commutes with nothing.
  Rng rng(0xf00d);
  const std::int64_t m = 33, n = 47, k = 65;
  const auto a = random_buffer(m * k, rng);
  const auto b = random_buffer(k * n, rng);
  const auto bias = random_buffer(m, rng);
  std::vector<float> fused(static_cast<std::size_t>(m * n));
  std::vector<float> plain(static_cast<std::size_t>(m * n));

  struct EpiCase {
    Epilogue fused, base;
    const float* bias;
  };
  const EpiCase cases[] = {
      {Epilogue::kReluZero, Epilogue::kZero, nullptr},
      {Epilogue::kReluBiasRow, Epilogue::kBiasRow, bias.data()},
  };
  for (const auto& ec : cases) {
    for (const BlockConfig& cfg :
         {BlockConfig{}, BlockConfig{.mc = 16, .nc = 16, .kc = 16, .mr = 4}}) {
      set_block_config(cfg);
      gemm_blocked(m, n, k, a.data(), k, false, b.data(), n, false,
                   fused.data(), n, ec.fused, ec.bias);
      gemm_blocked(m, n, k, a.data(), k, false, b.data(), n, false,
                   plain.data(), n, ec.base, ec.bias);
      for (auto& v : plain) v = std::max(v, 0.0f);
      EXPECT_EQ(std::memcmp(fused.data(), plain.data(),
                            plain.size() * sizeof(float)),
                0)
          << "blocked fused-ReLU epilogue diverged, mr=" << cfg.mr;
    }
    set_block_config(BlockConfig{});
    naive_gemm(m, n, k, a.data(), k, false, b.data(), n, false, fused.data(),
               n, ec.fused, ec.bias);
    naive_gemm(m, n, k, a.data(), k, false, b.data(), n, false, plain.data(),
               n, ec.base, ec.bias);
    for (auto& v : plain) v = std::max(v, 0.0f);
    EXPECT_EQ(std::memcmp(fused.data(), plain.data(),
                          plain.size() * sizeof(float)),
              0)
        << "naive fused-ReLU epilogue diverged";
  }
}

// ------------------------------------------------ nn-level ReLU fusion ----

std::shared_ptr<nn::Sequential> fusion_model(std::uint64_t seed) {
  Rng rng(seed);
  auto m = std::make_shared<nn::Sequential>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3,
                        .padding = 1},
      rng);
  m->emplace<nn::ReLU>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 4, .out_channels = 4, .kernel = 3,
                        .stride = 2, .padding = 1},
      rng);
  m->emplace<nn::GlobalAvgPool>();
  m->emplace<nn::Flatten>();
  m->emplace<nn::Linear>(4, 3, rng);
  m->eval();
  return m;
}

TEST_F(StaticCalibFusion, Fp32FusionIsBitIdenticalAndReversible) {
  auto model = fusion_model(21);
  Rng rng(22);
  const Tensor x = Tensor::rand({2, 3, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor y0 = (*model)(x).clone();

  EXPECT_EQ(nn::fuse_relu(*model), 1);  // the conv->ReLU pair
  auto* conv0 = dynamic_cast<nn::Conv2d*>(model->children()[0]);
  ASSERT_NE(conv0, nullptr);
  EXPECT_TRUE(conv0->relu_fused_output());
  EXPECT_TRUE(bit_equal(y0, (*model)(x).clone()))
      << "fp32 fused-ReLU forward changed bits";

  // Training re-enables the unfused path (backward needs the real mask),
  // and the ReLU passthrough must follow the producer's gate per forward.
  model->train();
  EXPECT_FALSE(conv0->relu_fused_output());
  EXPECT_TRUE(bit_equal(y0, (*model)(x).clone()));
  model->eval();

  EXPECT_EQ(nn::unfuse_relu(*model), 1);
  EXPECT_FALSE(conv0->relu_fused_output());
  EXPECT_TRUE(bit_equal(y0, (*model)(x).clone()));
}

TEST_F(StaticCalibFusion, StaticConvOutputsLieOnTheFrozenGrid) {
  Rng rng(23);
  nn::Conv2d conv(
      nn::Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 3,
                        .padding = 1},
      rng);
  conv.eval();
  const Tensor x = Tensor::rand({2, 2, 7, 7}, rng, -1.0f, 1.0f);
  const float in_scale =
      scale_from_absmax(finite_absmax_i8(x.data().data(), x.numel()));
  const float out_scale = 0.01f;
  conv.set_native_dtype(LowPrec::kInt8);
  conv.set_static_act(in_scale, out_scale);

  for (const bool fuse : {false, true}) {
    conv.set_fuse_relu(fuse);
    EXPECT_EQ(conv.relu_fused_output(), fuse);
    const Tensor y = conv(x).clone();
    for (const float v : y.data()) {
      // The boundary holds exact fp32 images code * out_scale. Recover the
      // code by rounding the (inexact) float division — the reconstructed
      // product must be bit-equal to the stored value.
      const float code = std::nearbyint(v / out_scale);
      ASSERT_EQ(v, code * out_scale)
          << "static conv output " << v << " is not on the frozen grid";
      ASSERT_LE(std::fabs(code), 127.0f);
      if (fuse) {
        ASSERT_GE(code, 0.0f) << "fused ReLU left a negative code";
      }
    }
  }
  conv.clear_static_act();
  conv.set_native_dtype(LowPrec::kNone);
}

TEST_F(StaticCalibFusion, StaticLinearMatchesInt64Oracle) {
  Rng rng(24);
  nn::Linear fc(11, 5, rng);
  fc.eval();
  const Tensor x = Tensor::rand({3, 11}, rng, -1.5f, 1.5f);
  const float in_scale =
      scale_from_absmax(finite_absmax_i8(x.data().data(), x.numel()));
  const float out_scale = 0.02f;
  fc.set_native_dtype(LowPrec::kInt8);
  fc.set_static_act(in_scale, out_scale);

  for (const bool fuse : {false, true}) {
    fc.set_fuse_relu(fuse);
    EXPECT_EQ(fc.relu_fused_output(), fuse);
    const Tensor y = fc(x).clone();
    const auto& sw = fc.native_scales();
    ASSERT_EQ(sw.size(), 5u);
    for (std::int64_t i = 0; i < 3; ++i) {
      for (std::int64_t o = 0; o < 5; ++o) {
        std::int64_t acc = 0;
        for (std::int64_t j = 0; j < 11; ++j) {
          acc += static_cast<std::int64_t>(
                     quantize_unit(x.at(i, j), in_scale)) *
                 quantize_unit(fc.weight().value.at(o, j),
                               sw[static_cast<std::size_t>(o)]);
        }
        const float v =
            std::fma(in_scale * sw[static_cast<std::size_t>(o)],
                     static_cast<float>(acc), fc.bias().value[o]);
        int code = quantize_unit(v, out_scale);
        if (fuse && code < 0) code = 0;
        ASSERT_EQ(y.at(i, o), static_cast<float>(code) * out_scale)
            << "fuse=" << fuse << " at (" << i << "," << o << ")";
      }
    }
  }
  fc.clear_static_act();
  fc.set_native_dtype(LowPrec::kNone);
}

// ---------------------------------------- calibration + injector wiring ----

core::FiConfig plain_config() {
  return core::FiConfig{.input_shape = {3, 8, 8}, .batch_size = 2};
}

std::vector<Tensor> calib_batches(std::uint64_t seed, int count = 3) {
  Rng rng(seed);
  std::vector<Tensor> batches;
  for (int i = 0; i < count; ++i) {
    batches.push_back(Tensor::rand({2, 3, 8, 8}, rng, -1.0f, 1.0f));
  }
  return batches;
}

TEST_F(StaticCalibInjector, CalibrationRoundTripsThroughJsonBitExactly) {
  auto model = fusion_model(31);
  const auto batches = calib_batches(32);
  quant::StaticActQuant calib;
  {
    core::FaultInjector fi(model, plain_config());
    calib = core::calibrate_static_act(fi, batches);
    ASSERT_EQ(calib.layers.size(),
              static_cast<std::size_t>(fi.num_layers()));
    for (std::int64_t i = 0; i < fi.num_layers(); ++i) {
      const auto& l = calib.layers[static_cast<std::size_t>(i)];
      EXPECT_EQ(l.path, fi.layer_path(i));
      EXPECT_TRUE(std::isfinite(l.in_scale) && l.in_scale > 0.0f);
      EXPECT_TRUE(std::isfinite(l.out_scale) && l.out_scale > 0.0f);
      EXPECT_NE(calib.find(l.path), nullptr);
    }
  }
  EXPECT_EQ(calib.find("no.such.layer"), nullptr);

  const std::string path = ::testing::TempDir() + "pfi_static_calib.json";
  std::remove(path.c_str());
  calib.save(path);
  const quant::StaticActQuant loaded = quant::StaticActQuant::load(path);
  EXPECT_EQ(loaded.to_json(), calib.to_json())
      << "persisted calibration must reload bit-exactly";
  EXPECT_EQ(loaded.fingerprint(), calib.fingerprint());
  EXPECT_EQ(loaded.weight_fingerprint, calib.weight_fingerprint);
  std::remove(path.c_str());

  try {
    quant::StaticActQuant::load(path);
    FAIL() << "loading a deleted calibration file must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("does not exist"), std::string::npos);
  }
}

TEST_F(StaticCalibInjector, CalibrationRequiresAFaultFreeFp32Injector) {
  auto model = fusion_model(33);
  const auto batches = calib_batches(34);
  {
    core::FiConfig cfg = plain_config();
    cfg.dtype = core::DType::kInt8;
    cfg.native = true;
    core::FaultInjector fi(model, cfg);
    EXPECT_THROW(core::calibrate_static_act(fi, batches), Error)
        << "calibration must reject a non-fp32 (native) injector";
  }
  {
    core::FaultInjector fi(model, plain_config());
    fi.declare_weight_fault({.layer = 0}, core::zero_value());
    EXPECT_THROW(core::calibrate_static_act(fi, batches), Error)
        << "calibration must reject an injector with armed faults";
    fi.clear();
    EXPECT_NO_THROW(core::calibrate_static_act(fi, batches));
  }
}

TEST_F(StaticCalibInjector, StaleCalibrationIsRefusedWithAClearMessage) {
  auto model = fusion_model(35);
  auto static_act = std::make_shared<quant::StaticActQuant>();
  {
    core::FaultInjector fi(model, plain_config());
    *static_act = core::calibrate_static_act(fi, calib_batches(36));
  }
  // A single-weight perturbation must flip model_weight_fingerprint and
  // make the frozen scales unusable.
  model->parameters()[0]->value[0] += 0.25f;
  core::FiConfig cfg = plain_config();
  cfg.dtype = core::DType::kInt8;
  cfg.native = true;
  cfg.static_act = static_act;
  try {
    core::FaultInjector fi(model, cfg);
    FAIL() << "stale calibration must be refused at injector construction";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to run stale scales"),
              std::string::npos)
        << "actual message: " << e.what();
  }
  // Restoring the weight restores the fingerprint: construction succeeds.
  model->parameters()[0]->value[0] -= 0.25f;
  EXPECT_NO_THROW(core::FaultInjector(model, cfg));
}

TEST_F(StaticCalibInjector, StaticInjectorWiresFusionAndInjectionDomain) {
  auto model = fusion_model(37);
  auto static_act = std::make_shared<quant::StaticActQuant>();
  {
    core::FaultInjector fi(model, plain_config());
    *static_act = core::calibrate_static_act(fi, calib_batches(38));
    // Without static calibration the pruner sees the conv->ReLU pair.
    const auto adjacent = core::relu_adjacent_layers(fi);
    EXPECT_TRUE(adjacent[0]);
  }
  core::FiConfig cfg = plain_config();
  cfg.dtype = core::DType::kInt8;
  cfg.native = true;
  cfg.static_act = static_act;
  {
    core::FaultInjector fi(model, cfg);
    EXPECT_NE(fi.calibration_fingerprint(), 0u);
    for (std::int64_t i = 0; i < fi.num_layers(); ++i) {
      EXPECT_TRUE(fi.layer_static(i)) << "layer " << i;
    }
    auto* conv0 = dynamic_cast<nn::Conv2d*>(model->children()[0]);
    ASSERT_NE(conv0, nullptr);
    EXPECT_TRUE(conv0->relu_fused_output())
        << "static injector must wire conv->ReLU fusion";
    // Fused producers lose downstream ReLU masking, so the pruner must NOT
    // treat them as relu-adjacent.
    const auto adjacent = core::relu_adjacent_layers(fi);
    EXPECT_FALSE(adjacent[0]);

    // Faults still inject into the resident codes under the frozen scales.
    Rng rng(39);
    const Tensor x = Tensor::rand({2, 3, 8, 8}, rng, -1.0f, 1.0f);
    const Tensor golden = fi.forward(x).clone();
    fi.declare_neuron_fault({.layer = 0, .c = 1, .h = 2, .w = 2},
                            core::single_bit_flip(6));
    EXPECT_FALSE(bit_equal(golden, fi.forward(x).clone()))
        << "a code flip under static scales must perturb the output";
    fi.clear();
    EXPECT_TRUE(bit_equal(golden, fi.forward(x).clone()));
  }
  // Injector destruction unwires fusion and the static scales.
  auto* conv0 = dynamic_cast<nn::Conv2d*>(model->children()[0]);
  EXPECT_FALSE(conv0->relu_fused_output());
  EXPECT_FALSE(conv0->has_static_act());
}

TEST_F(StaticCalibInjector, StaticForwardBitIdenticalAcrossIsaThreadsCache) {
  auto model = fusion_model(41);
  auto static_act = std::make_shared<quant::StaticActQuant>();
  {
    core::FaultInjector fi(model, plain_config());
    *static_act = core::calibrate_static_act(fi, calib_batches(42));
  }
  core::FiConfig cfg = plain_config();
  cfg.dtype = core::DType::kInt8;
  cfg.native = true;
  cfg.static_act = static_act;

  Rng rng(43);
  const Tensor x = Tensor::rand({2, 3, 8, 8}, rng, -1.0f, 1.0f);
  Tensor baseline;
  {
    core::FaultInjector fi(model, cfg);
    baseline = fi.forward(x).clone();
  }
  for (const I8Isa isa : supported_i8_isas()) {
    set_i8_isa(isa);
    for (const int threads : {1, 4}) {
      set_threads(threads);
      for (const bool cache : {true, false}) {
        core::FiConfig c = cfg;
        c.prefix_cache = cache;
        core::FaultInjector fi(model, c);
        EXPECT_TRUE(bit_equal(baseline, fi.forward(x).clone()))
            << "isa=" << static_cast<int>(isa) << " threads=" << threads
            << " cache=" << cache;
      }
    }
    set_threads(1);
  }
}

// ------------------------------------------- campaign byte-identity ----

struct CampaignRef {
  core::CampaignResult result;
  std::string jsonl;
};

bool same_result(const core::CampaignResult& a, const core::CampaignResult& b) {
  return a.trials == b.trials && a.skipped == b.skipped &&
         a.corruptions == b.corruptions && a.non_finite == b.non_finite;
}

CampaignRef run_static_campaign(std::int64_t threads, bool prefix_cache,
                                I8Isa isa) {
  auto model = fusion_model(51);
  auto static_act = std::make_shared<quant::StaticActQuant>();
  {
    core::FaultInjector fi(model, plain_config());
    *static_act = core::calibrate_static_act(fi, calib_batches(52));
  }
  set_i8_isa(isa);
  core::FiConfig cfg = plain_config();
  cfg.batch_size = 1;
  cfg.dtype = core::DType::kInt8;
  cfg.native = true;
  cfg.static_act = static_act;
  cfg.prefix_cache = prefix_cache;
  data::SyntheticDataset ds({.classes = 3, .channels = 3, .height = 8,
                             .width = 8});
  core::FaultInjector fi(model, cfg);
  trace::TraceSink sink(false);
  core::CampaignConfig ccfg;
  ccfg.trials = 16;
  ccfg.error_model = core::single_bit_flip();
  ccfg.seed = 53;
  ccfg.injections_per_image = 2;
  ccfg.threads = threads;
  ccfg.trace = &sink;
  CampaignRef ref;
  ref.result = core::run_classification_campaign(fi, ds, ccfg);
  ref.jsonl = trace::trace_to_jsonl(sink.take_events());
  set_i8_isa(I8Isa::kAuto);
  return ref;
}

TEST_F(StaticCalibCampaign, ByteIdenticalAcrossThreadsCacheAndIsa) {
  const CampaignRef ref = run_static_campaign(1, true, I8Isa::kAuto);
  EXPECT_EQ(ref.result.trials, 16u);
  for (const I8Isa isa : supported_i8_isas()) {
    for (const std::int64_t threads : {std::int64_t{1}, std::int64_t{4}}) {
      for (const bool cache : {true, false}) {
        const CampaignRef got = run_static_campaign(threads, cache, isa);
        EXPECT_TRUE(same_result(ref.result, got.result))
            << "isa=" << static_cast<int>(isa) << " threads=" << threads
            << " cache=" << cache;
        EXPECT_EQ(ref.jsonl, got.jsonl)
            << "trace bytes diverged: isa=" << static_cast<int>(isa)
            << " threads=" << threads << " cache=" << cache;
      }
    }
  }
}

TEST_F(StaticCalibCampaign, StaticOnAndOffAreDistinctExperiments) {
  auto model = fusion_model(61);
  auto static_act = std::make_shared<quant::StaticActQuant>();
  {
    core::FaultInjector fi(model, plain_config());
    *static_act = core::calibrate_static_act(fi, calib_batches(62));
    EXPECT_EQ(fi.calibration_fingerprint(), 0u)
        << "a dynamic injector has no calibration fingerprint";
  }
  core::FiConfig cfg = plain_config();
  cfg.dtype = core::DType::kInt8;
  cfg.native = true;
  cfg.static_act = static_act;
  core::FaultInjector fi(model, cfg);
  EXPECT_EQ(fi.calibration_fingerprint(), static_act->fingerprint());

  // The CLI folds "|static=<fingerprint>" into the campaign context, so a
  // static checkpoint can never resume a dynamic campaign (or one frozen
  // from different calibration data).
  core::CampaignConfig ccfg;
  ccfg.trials = 16;
  ccfg.error_model = core::single_bit_flip();
  const std::string base = "m|ds|int8-native|bitflip|epochs=1|load=";
  const std::string with_static =
      base + "|static=" + std::to_string(fi.calibration_fingerprint());
  EXPECT_NE(core::campaign_fingerprint(ccfg, base),
            core::campaign_fingerprint(ccfg, with_static));
}

}  // namespace
}  // namespace pfi::kernels
