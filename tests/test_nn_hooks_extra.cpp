// Tests for backward hooks, run_backward propagation, gradient clipping,
// hook interactions added for Grad-CAM / IBP support, and the FaultInjector
// hook/weight lifecycle (instrumentation must leave no trace behind).
#include <gtest/gtest.h>

#include <limits>

#include "core/fault_injector.hpp"
#include "nn/nn.hpp"
#include "util/bits.hpp"

namespace pfi::nn {
namespace {

TEST(BackwardHooks, FireOnRunBackward) {
  ReLU relu;
  relu(Tensor({3}, std::vector<float>{1.0f, -1.0f, 2.0f}));
  bool fired = false;
  relu.register_backward_hook([&](Module& m, Tensor& g) {
    fired = true;
    EXPECT_EQ(m.kind(), "ReLU");
    EXPECT_EQ(g.numel(), 3);
  });
  relu.run_backward(Tensor::ones({3}));
  EXPECT_TRUE(fired);
}

TEST(BackwardHooks, DoNotFireOnPlainBackward) {
  ReLU relu;
  relu(Tensor({2}));
  int count = 0;
  relu.register_backward_hook([&](Module&, Tensor&) { ++count; });
  relu.backward(Tensor::ones({2}));
  EXPECT_EQ(count, 0);
}

TEST(BackwardHooks, FireOnNestedChildrenThroughContainers) {
  Rng rng(1);
  auto seq = std::make_shared<Sequential>();
  auto conv = seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 1}, rng);
  seq->emplace<ReLU>();
  (*seq)(Tensor({1, 1, 2, 2}, 1.0f));
  int fired = 0;
  conv->register_backward_hook([&](Module&, Tensor&) { ++fired; });
  seq->run_backward(Tensor::ones({1, 2, 2, 2}));
  EXPECT_EQ(fired, 1);
}

TEST(BackwardHooks, CanMutateGradient) {
  // A backward hook that zeroes the gradient stops learning signal — the
  // mutation contract mirrors forward hooks.
  Rng rng(2);
  Linear fc(2, 2, rng);
  fc(Tensor({1, 2}, 1.0f));
  fc.register_backward_hook([](Module&, Tensor& g) { g.fill(0.0f); });
  fc.zero_grad();
  const Tensor gin = fc.run_backward(Tensor::ones({1, 2}));
  EXPECT_EQ(gin.squared_norm(), 0.0f);
  EXPECT_EQ(fc.weight().grad.squared_norm(), 0.0f);
}

TEST(BackwardHooks, RemovableByHandle) {
  Identity id;
  id(Tensor({1}));
  int count = 0;
  const auto h = id.register_backward_hook([&](Module&, Tensor&) { ++count; });
  id.run_backward(Tensor({1}));
  EXPECT_TRUE(id.remove_hook(h));
  id.run_backward(Tensor({1}));
  EXPECT_EQ(count, 1);
}

TEST(BackwardHooks, ResidualPropagatesToBothBranches) {
  Rng rng(3);
  auto main = std::make_shared<ReLU>();
  auto shortcut = std::make_shared<Identity>();
  Residual res(main, shortcut);
  res(Tensor({1, 1, 1, 1}, 1.0f));
  int main_fired = 0, sc_fired = 0;
  main->register_backward_hook([&](Module&, Tensor&) { ++main_fired; });
  shortcut->register_backward_hook([&](Module&, Tensor&) { ++sc_fired; });
  res.run_backward(Tensor::ones({1, 1, 1, 1}));
  EXPECT_EQ(main_fired, 1);
  EXPECT_EQ(sc_fired, 1);
}

// ------------------------------------------------------------ grad clip ----

TEST(ClipGradNorm, NoopBelowThreshold) {
  Rng rng(4);
  Linear fc(2, 2, rng);
  fc.weight().grad.fill(0.1f);
  const float norm = clip_grad_norm({&fc.weight()}, 10.0f);
  EXPECT_NEAR(norm, std::sqrt(4 * 0.01f), 1e-5f);
  EXPECT_FLOAT_EQ(fc.weight().grad[0], 0.1f);
}

TEST(ClipGradNorm, ScalesDownAboveThreshold) {
  Rng rng(5);
  Linear fc(2, 2, rng);
  fc.weight().grad.fill(3.0f);  // norm = 6
  const float norm = clip_grad_norm({&fc.weight()}, 1.5f);
  EXPECT_NEAR(norm, 6.0f, 1e-4f);
  // After clipping, norm == 1.5.
  EXPECT_NEAR(std::sqrt(fc.weight().grad.squared_norm()), 1.5f, 1e-4f);
}

TEST(ClipGradNorm, GlobalAcrossParams) {
  Rng rng(6);
  Linear a(1, 1, rng, false), b(1, 1, rng, false);
  a.weight().grad.fill(3.0f);
  b.weight().grad.fill(4.0f);  // global norm = 5
  clip_grad_norm({&a.weight(), &b.weight()}, 1.0f);
  const float ga = a.weight().grad[0], gb = b.weight().grad[0];
  EXPECT_NEAR(std::sqrt(ga * ga + gb * gb), 1.0f, 1e-5f);
  // Direction preserved.
  EXPECT_NEAR(gb / ga, 4.0f / 3.0f, 1e-4f);
}

TEST(ClipGradNorm, Validation) {
  Rng rng(7);
  Linear fc(1, 1, rng, false);
  EXPECT_THROW(clip_grad_norm({&fc.weight()}, 0.0f), Error);
}

// --------------------------------------------------- injector lifecycle ----

std::shared_ptr<Sequential> two_conv_model(Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 3,
                    .padding = 1},
      rng);
  seq->emplace<ReLU>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 2, .out_channels = 2, .kernel = 1}, rng);
  return seq;
}

std::size_t total_forward_hooks(Module& model) {
  std::size_t n = 0;
  for (Module* m : model.modules()) n += m->forward_hook_count();
  return n;
}

/// Order-sensitive digest of every parameter's exact bit pattern.
std::uint64_t parameter_checksum(Module& model) {
  std::uint64_t h = 1469598103934665603ull;
  for (Parameter* p : model.parameters()) {
    for (const float v : p->value.data()) {
      h = (h ^ float_to_bits(v)) * 1099511628211ull;
    }
  }
  return h;
}

TEST(InjectorLifecycle, DestructionRemovesEveryHook) {
  Rng rng(8);
  auto model = two_conv_model(rng);
  ASSERT_EQ(total_forward_hooks(*model), 0u);
  {
    core::FaultInjector fi(model, {.input_shape = {1, 4, 4}, .batch_size = 1});
    EXPECT_GT(total_forward_hooks(*model), 0u)
        << "construction must instrument the model";
  }
  EXPECT_EQ(total_forward_hooks(*model), 0u)
      << "destruction must leave the model un-instrumented";
  // The de-instrumented model still runs.
  EXPECT_NO_THROW((*model)(Tensor({1, 1, 4, 4}, 1.0f)));
}

TEST(InjectorLifecycle, ClearRestoresWeightsBitExactly) {
  Rng rng(9);
  auto model = two_conv_model(rng);
  core::FaultInjector fi(model, {.input_shape = {1, 4, 4}, .batch_size = 1});
  const std::uint64_t golden = parameter_checksum(*model);

  Rng pick(10);
  fi.declare_weight_fault(fi.random_weight_location(pick),
                          core::constant_value(123.0f));
  EXPECT_NE(parameter_checksum(*model), golden)
      << "weight fault must perturb the stored parameter";
  fi.clear();
  EXPECT_EQ(parameter_checksum(*model), golden)
      << "clear() must restore every parameter bit";

  // Several stacked faults, then a single clear().
  for (int i = 0; i < 4; ++i) {
    fi.declare_weight_fault(fi.random_weight_location(pick),
                            core::constant_value(-7.0f + i));
  }
  fi.clear();
  EXPECT_EQ(parameter_checksum(*model), golden);
}

TEST(InjectorLifecycle, WeightFaultsInvalidatePackedWeightCaches) {
  // The blocked GEMM caches packed weight panels on each Conv2d. A weight
  // fault mutates the parameter through an alias, so a stale pack would
  // make the faulty forward silently compute with GOLDEN weights. The
  // sequence golden -> inject -> faulty -> clear -> golden must show the
  // corruption and then restore the golden output bit-for-bit.
  Rng rng(13);
  auto model = two_conv_model(rng);
  core::FaultInjector fi(model, {.input_shape = {1, 4, 4}, .batch_size = 1});
  Rng drng(14);
  const Tensor x = Tensor::rand({1, 1, 4, 4}, drng, -1.0f, 1.0f);
  const Tensor y_golden = fi.forward(x).clone();
  // Warm the pack caches again so the injection below hits a cached state.
  fi.forward(x);

  fi.declare_weight_fault({.layer = 0, .out_c = 0, .in_c = 0, .kh = 1,
                           .kw = 1},
                          core::constant_value(40.0f));
  const Tensor y_faulty = fi.forward(x).clone();
  EXPECT_GT(y_faulty.max_abs_diff(y_golden), 0.0f)
      << "stale packed panels: faulty forward reproduced the golden output";

  fi.clear();
  const Tensor y_restored = fi.forward(x).clone();
  EXPECT_EQ(y_restored.max_abs_diff(y_golden), 0.0f)
      << "clear() must restore the golden output bit-for-bit";
}

TEST(InjectorIeee, StuckAtZeroWeightTimesInfActivationYieldsNaN) {
  // Regression for the zero-skip bug: a weight stuck at exactly 0.0
  // multiplying an Inf activation must produce NaN (0 x Inf), not be
  // skipped. Layer 0 injects Inf into channel 0; layer 2 (the 1x1 conv)
  // has its weight connecting channel 0 stuck at zero.
  Rng rng(15);
  auto model = two_conv_model(rng);
  core::FaultInjector fi(model, {.input_shape = {1, 4, 4}, .batch_size = 1});
  fi.declare_neuron_fault({.layer = 0, .batch = 0, .c = 0, .h = 2, .w = 2},
                          core::constant_value(
                              std::numeric_limits<float>::infinity()));
  fi.declare_weight_fault({.layer = 1, .out_c = 0, .in_c = 0, .kh = 0,
                           .kw = 0},
                          core::constant_value(0.0f));
  Rng drng(16);
  const Tensor y = fi.forward(Tensor::rand({1, 1, 4, 4}, drng, 0.1f, 1.0f));
  // ReLU passes +Inf through; the zeroed 1x1 weight must turn it into NaN.
  EXPECT_TRUE(std::isnan(y.at(0, 0, 2, 2)))
      << "zero weight x Inf activation was skipped instead of producing NaN";
}

TEST(InjectorLifecycle, DestructionRestoresPerturbedWeights) {
  Rng rng(11);
  auto model = two_conv_model(rng);
  const std::uint64_t golden = parameter_checksum(*model);
  {
    core::FaultInjector fi(model,
                           {.input_shape = {1, 4, 4}, .batch_size = 1});
    Rng pick(12);
    fi.declare_weight_fault(fi.random_weight_location(pick),
                            core::constant_value(1e5f));
    EXPECT_NE(parameter_checksum(*model), golden);
  }
  EXPECT_EQ(parameter_checksum(*model), golden)
      << "injector destruction must undo weight perturbations";
}

}  // namespace
}  // namespace pfi::nn
