// Tests for golden-prefix activation reuse (core/prefix_cache.hpp): leaf
// execution-order recording, cached-replay bit-identity on branching
// topologies (DenseNet / GoogLeNet / PreResNet), resume AT the injection
// site (the injected layer's snapshot is served with its faults applied on
// a clone — including the INT8 quantized domain), multi-injection resume
// from the EARLIEST injected layer, weight-fault prefixes, byte-budget
// exhaustion fallback, profiler auto-disable, strict env parsing, and the
// headline guarantee — campaign counts, CSV, trace JSONL, and checkpoints
// are byte-identical with the cache on or off, at 1 and 4 threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fault_injector.hpp"
#include "core/perturbation_layer.hpp"
#include "core/prefix_cache.hpp"
#include "core/profile.hpp"
#include "core/report.hpp"
#include "models/zoo.hpp"
#include "util/fileio.hpp"

namespace pfi::core {
namespace {

using models::make_model;

FiConfig small_config() { return {.input_shape = {3, 32, 32}, .batch_size = 4}; }

Tensor small_input(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand({4, 3, 32, 32}, rng, -1.0f, 1.0f);
}

/// Fresh injector over a zoo model built from a fixed weight seed, so two
/// calls produce bit-identical networks.
struct Rig {
  std::shared_ptr<nn::Module> model;
  std::unique_ptr<FaultInjector> fi;

  explicit Rig(const std::string& net, FiConfig cfg = small_config(),
               std::uint64_t weight_seed = 90) {
    Rng rng(weight_seed);
    model = make_model(net, {.num_classes = 10}, rng);
    model->eval();
    fi = std::make_unique<FaultInjector>(model, cfg);
  }
};

// -------------------------------------------------------------- recording ----

TEST(PrefixCache, RecordsLeafExecutionOrderForBranchingTopologies) {
  for (const std::string net : {"densenet", "googlenet", "preresnet110"}) {
    Rig rig(net);
    PrefixCache* cache = rig.fi->prefix_cache();
    ASSERT_NE(cache, nullptr) << net;
    EXPECT_FALSE(cache->recorded()) << net;

    const Tensor in = small_input(7);
    (void)rig.fi->forward(in, ForwardMode::kRecordGolden);
    EXPECT_TRUE(cache->recorded()) << net;
    EXPECT_GT(cache->num_events(), 0u) << net;
    EXPECT_GT(cache->snapshot_bytes(), 0u) << net;

    // Every instrumented conv executed and was indexed; indices are unique
    // per module (the FIRST execution) and inside the event list.
    std::vector<std::size_t> seen;
    for (std::int64_t l = 0; l < rig.fi->num_layers(); ++l) {
      const std::size_t idx =
          cache->first_execution_index(&rig.fi->layer(l));
      ASSERT_NE(idx, PrefixCache::kNoEvent) << net << " layer " << l;
      ASSERT_LT(idx, cache->num_events()) << net << " layer " << l;
      for (const std::size_t other : seen) EXPECT_NE(idx, other) << net;
      seen.push_back(idx);
    }
    EXPECT_EQ(cache->first_execution_index(rig.model.get()),
              PrefixCache::kNoEvent)
        << "a container is not a leaf event";
  }
}

TEST(PrefixCache, HooksAreLazyAndLeaveNoResidue) {
  Rig rig("squeezenet");
  nn::Module& first = rig.fi->layer(0);
  const std::size_t idle_hooks = first.forward_hook_count();

  const Tensor in = small_input(8);
  (void)rig.fi->forward(in, ForwardMode::kRecordGolden);
  // Record hooks are removed the moment the golden pass ends; a plain
  // forward afterwards pays nothing (the Fig. 3 idle-overhead property).
  EXPECT_EQ(first.forward_hook_count(), idle_hooks);

  rig.fi->declare_neuron_fault({.layer = 2, .c = 0, .h = 0, .w = 0},
                               constant_value(3.0f));
  (void)rig.fi->forward(in, ForwardMode::kReusePrefix);
  rig.fi->clear();
  EXPECT_EQ(first.forward_hook_count(), idle_hooks);
}

// ------------------------------------------------------- replay bit-identity ----

/// Golden-record, arm one deterministic fault mid-network, and check the
/// reuse pass is bit-identical to a full recompute of the same faulty
/// forward. constant_value keeps the injection itself deterministic so the
/// two passes are comparable.
TEST(PrefixReplay, CachedReplayBitIdenticalOnBranchingTopologies) {
  for (const std::string net : {"densenet", "googlenet", "preresnet110"}) {
    Rig rig(net);
    const Tensor in = small_input(11);
    (void)rig.fi->forward(in, ForwardMode::kRecordGolden);

    const std::int64_t mid = rig.fi->num_layers() / 2;
    rig.fi->declare_neuron_fault({.layer = mid, .c = 0, .h = 0, .w = 0},
                                 constant_value(1e4f));

    const PrefixCacheStats before = rig.fi->prefix_cache()->stats();
    const Tensor reused = rig.fi->forward(in, ForwardMode::kReusePrefix);
    const PrefixCacheStats after = rig.fi->prefix_cache()->stats();
    const Tensor recomputed = rig.fi->forward(in, ForwardMode::kPlain);
    rig.fi->clear();

    EXPECT_TRUE(allclose(reused, recomputed, 0.0f)) << net;
    EXPECT_EQ(after.reuse_passes, before.reuse_passes + 1) << net;
    const std::uint64_t reused_layers =
        after.layers_reused - before.layers_reused;
    // Reuse extends THROUGH the injected layer: its event is served as a
    // snapshot clone with the fault applied, so the prefix is one longer
    // than the events strictly before it.
    EXPECT_EQ(reused_layers,
              rig.fi->prefix_cache()->first_execution_index(
                  &rig.fi->layer(mid)) +
                  1)
        << net << ": events up to AND INCLUDING the injected layer replay";
    EXPECT_EQ(after.injection_site_serves, before.injection_site_serves + 1)
        << net;
    EXPECT_GT(reused_layers, 0u) << net;
  }
}

TEST(PrefixReplay, MultiInjectionResumesFromEarliestInjectedLayer) {
  Rig rig("densenet");
  const Tensor in = small_input(13);
  (void)rig.fi->forward(in, ForwardMode::kRecordGolden);
  PrefixCache* cache = rig.fi->prefix_cache();

  const std::int64_t lo = rig.fi->num_layers() / 3;
  const std::int64_t hi = (2 * rig.fi->num_layers()) / 3;
  ASSERT_NE(lo, hi);
  rig.fi->declare_neuron_fault({.layer = hi, .c = 0, .h = 0, .w = 0},
                               constant_value(50.0f));
  rig.fi->declare_neuron_fault({.layer = lo, .c = 0, .h = 1, .w = 1},
                               constant_value(-50.0f));

  // The EARLIEST injected layer is the resume site (served mutated); the
  // later one recomputes and its real hook applies the second fault.
  const std::size_t expected =
      std::min(cache->first_execution_index(&rig.fi->layer(lo)),
               cache->first_execution_index(&rig.fi->layer(hi))) +
      1;
  const PrefixCacheStats before = cache->stats();
  const Tensor reused = rig.fi->forward(in, ForwardMode::kReusePrefix);
  const std::uint64_t reused_layers =
      cache->stats().layers_reused - before.layers_reused;
  const Tensor recomputed = rig.fi->forward(in, ForwardMode::kPlain);
  rig.fi->clear();

  EXPECT_TRUE(allclose(reused, recomputed, 0.0f));
  EXPECT_EQ(reused_layers, expected)
      << "reuse must resume AT the EARLIEST injected layer";
}

/// The fig4 configuration end-to-end at the forward level: INT8 emulation +
/// random single-bit flips, where resume-at-injection must reproduce the
/// cache-off pass BIT-identically — same quantization params (recorded, not
/// recalibrated), same RNG draw order, same injection count.
TEST(PrefixReplay, Int8BitFlipResumeAtInjectionMatchesCacheOffBitExactly) {
  FiConfig cfg = small_config();
  cfg.dtype = DType::kInt8;
  Rig on("squeezenet", cfg);
  FiConfig off_cfg = cfg;
  off_cfg.prefix_cache = false;
  Rig off("squeezenet", off_cfg);
  ASSERT_EQ(off.fi->prefix_cache(), nullptr);

  const Tensor in = small_input(47);
  (void)on.fi->forward(in, ForwardMode::kRecordGolden);

  const std::int64_t n = on.fi->num_layers();
  for (std::int64_t trial = 0; trial < 10; ++trial) {
    // First three trials pin the layer-0 / mid / last boundaries (layer 0
    // was a guaranteed full recompute before resume-at-injection); the rest
    // sample neurons uniformly like the fig4 campaign does.
    NeuronLocation loc{.layer = trial < 3 ? (trial * (n - 1)) / 2 : 0,
                       .c = 0, .h = 0, .w = 0};
    if (trial >= 3) {
      Rng pick(static_cast<std::uint64_t>(100 + trial));
      loc = on.fi->random_neuron_location(pick);
    }
    on.fi->reseed(static_cast<std::uint64_t>(trial));
    off.fi->reseed(static_cast<std::uint64_t>(trial));
    on.fi->declare_neuron_fault(loc, single_bit_flip());
    off.fi->declare_neuron_fault(loc, single_bit_flip());
    const Tensor a = on.fi->forward(in, ForwardMode::kReusePrefix);
    const Tensor b = off.fi->forward(in, ForwardMode::kPlain);
    on.fi->clear();
    off.fi->clear();
    EXPECT_TRUE(allclose(a, b, 0.0f)) << "trial " << trial;
  }
  // Coarser scopes share the same application path; pin one fmap fault.
  on.fi->reseed(99);
  off.fi->reseed(99);
  on.fi->declare_fmap_fault(0, 0, kAllBatchElements, single_bit_flip());
  off.fi->declare_fmap_fault(0, 0, kAllBatchElements, single_bit_flip());
  const Tensor a = on.fi->forward(in, ForwardMode::kReusePrefix);
  const Tensor b = off.fi->forward(in, ForwardMode::kPlain);
  on.fi->clear();
  off.fi->clear();
  EXPECT_TRUE(allclose(a, b, 0.0f));

  const PrefixCacheStats& s = on.fi->prefix_cache()->stats();
  EXPECT_GT(s.injection_site_serves, 0u);
  EXPECT_EQ(s.fallback_passes, 0u)
      << "every neuron injection resumes at its site — even layer 0";
  EXPECT_EQ(on.fi->injections_performed(), off.fi->injections_performed());
}

TEST(PrefixReplay, WeightFaultReusesOnlyLayersStrictlyBeforePerturbedConv) {
  Rig rig("preresnet110");
  const Tensor in = small_input(17);
  (void)rig.fi->forward(in, ForwardMode::kRecordGolden);
  PrefixCache* cache = rig.fi->prefix_cache();

  const std::int64_t target = rig.fi->num_layers() / 2;
  rig.fi->declare_weight_fault(
      {.layer = target, .out_c = 0, .in_c = 0, .kh = 0, .kw = 0},
      constant_value(4.0f));

  const PrefixCacheStats before = cache->stats();
  const Tensor reused = rig.fi->forward(in, ForwardMode::kReusePrefix);
  const std::uint64_t reused_layers =
      cache->stats().layers_reused - before.layers_reused;
  const Tensor recomputed = rig.fi->forward(in, ForwardMode::kPlain);
  rig.fi->clear();

  EXPECT_TRUE(allclose(reused, recomputed, 0.0f));
  // The perturbed conv itself recomputes (its forward changed), so the
  // prefix is exactly the events before its first execution.
  EXPECT_EQ(reused_layers,
            cache->first_execution_index(&rig.fi->layer(target)));
  EXPECT_GT(reused_layers, 0u);
}

TEST(PrefixReplay, ForwardOutputsNeverAlias) {
  // The safety claim behind both the zero-copy snapshot hand-out and the
  // weight campaign dropping its golden .clone(): a later forward never
  // mutates an earlier forward's output storage.
  for (const bool cache_on : {true, false}) {
    FiConfig cfg = small_config();
    cfg.prefix_cache = cache_on;
    Rig rig("googlenet", cfg);
    const Tensor in = small_input(19);
    const Tensor golden = rig.fi->forward(
        in, cache_on ? ForwardMode::kRecordGolden : ForwardMode::kPlain);
    const Tensor pinned = golden.clone();

    rig.fi->declare_weight_fault({.layer = 1, .out_c = 0, .in_c = 0},
                                 constant_value(1e6f));
    (void)rig.fi->forward(
        in, cache_on ? ForwardMode::kReusePrefix : ForwardMode::kPlain);
    rig.fi->clear();
    EXPECT_TRUE(allclose(golden, pinned, 0.0f)) << "cache_on=" << cache_on;
  }
}

TEST(PrefixReplay, NonDeterministicLeafTruncatesThePrefix) {
  // An armed PerturbationLayer reports deterministic_forward() == false, so
  // its snapshot must never be replayed: the reusable prefix ends at its
  // execution slot even when the injected conv sits later.
  auto seq = std::make_shared<nn::Sequential>();
  Rng rng(23);
  seq->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .padding = 1},
      rng);
  auto perturb = seq->emplace<PerturbationLayer>();
  seq->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 4, .out_channels = 4, .padding = 1},
      rng);
  seq->eval();
  perturb->arm(0, 0, 0, 0, constant_value(2.5f));

  FaultInjector fi(seq, {.input_shape = {3, 8, 8}, .batch_size = 1});
  Rng in_rng(24);
  const Tensor in = Tensor::rand({1, 3, 8, 8}, in_rng, -1.0f, 1.0f);
  (void)fi.forward(in, ForwardMode::kRecordGolden);

  fi.declare_neuron_fault({.layer = 1, .c = 0, .h = 0, .w = 0},
                          constant_value(9.0f));
  const PrefixCacheStats before = fi.prefix_cache()->stats();
  const Tensor reused = fi.forward(in, ForwardMode::kReusePrefix);
  const std::uint64_t reused_layers =
      fi.prefix_cache()->stats().layers_reused - before.layers_reused;
  const Tensor recomputed = fi.forward(in, ForwardMode::kPlain);
  fi.clear();

  EXPECT_TRUE(allclose(reused, recomputed, 0.0f));
  // Without the barrier this would be 2 (conv0 + perturbation layer).
  EXPECT_EQ(reused_layers, 1u)
      << "only the conv before the non-deterministic leaf may replay";
}

// ------------------------------------------------------- budget exhaustion ----

TEST(PrefixCache, ZeroBudgetFallsBackToFullRecompute) {
  FiConfig cfg = small_config();
  cfg.prefix_cache_mb = 0;
  Rig rig("squeezenet", cfg);
  const Tensor in = small_input(29);
  (void)rig.fi->forward(in, ForwardMode::kRecordGolden);

  rig.fi->declare_neuron_fault({.layer = 3, .c = 0, .h = 0, .w = 0},
                               constant_value(7.0f));
  const Tensor reused = rig.fi->forward(in, ForwardMode::kReusePrefix);
  const Tensor recomputed = rig.fi->forward(in, ForwardMode::kPlain);
  rig.fi->clear();

  const PrefixCacheStats& s = rig.fi->prefix_cache()->stats();
  EXPECT_TRUE(allclose(reused, recomputed, 0.0f));
  EXPECT_EQ(s.layers_reused, 0u);
  EXPECT_GE(s.fallback_passes, 1u);
  EXPECT_GE(s.budget_truncations, 1u);
  EXPECT_EQ(rig.fi->prefix_cache()->snapshot_bytes(), 0u);
}

TEST(PrefixCache, SmallBudgetTruncatesPrefixButStaysBitIdentical) {
  FiConfig cfg = small_config();
  cfg.prefix_cache_mb = 1;  // enough for the first few activations only
  Rig rig("densenet", cfg);
  const Tensor in = small_input(31);
  (void)rig.fi->forward(in, ForwardMode::kRecordGolden);
  PrefixCache* cache = rig.fi->prefix_cache();
  EXPECT_GE(cache->stats().budget_truncations, 1u);
  EXPECT_LE(cache->snapshot_bytes(), 1u << 20);

  const std::int64_t last = rig.fi->num_layers() - 1;
  rig.fi->declare_neuron_fault({.layer = last, .c = 0, .h = 0, .w = 0},
                               constant_value(-3.0f));
  const PrefixCacheStats before = cache->stats();
  const Tensor reused = rig.fi->forward(in, ForwardMode::kReusePrefix);
  const std::uint64_t reused_layers =
      cache->stats().layers_reused - before.layers_reused;
  const Tensor recomputed = rig.fi->forward(in, ForwardMode::kPlain);
  rig.fi->clear();

  EXPECT_TRUE(allclose(reused, recomputed, 0.0f));
  // Partial reuse: more than nothing, less than the full prefix the budget
  // would otherwise allow.
  EXPECT_GT(reused_layers, 0u);
  EXPECT_LT(reused_layers,
            cache->first_execution_index(&rig.fi->layer(last)));
}

TEST(PrefixCache, DifferentInputFallsBackInsteadOfReplayingWrongActivations) {
  Rig rig("squeezenet");
  (void)rig.fi->forward(small_input(37), ForwardMode::kRecordGolden);

  rig.fi->declare_neuron_fault({.layer = 4, .c = 0, .h = 0, .w = 0},
                               constant_value(5.0f));
  const Tensor other = small_input(38);
  const Tensor reused = rig.fi->forward(other, ForwardMode::kReusePrefix);
  const Tensor recomputed = rig.fi->forward(other, ForwardMode::kPlain);
  rig.fi->clear();

  EXPECT_TRUE(allclose(reused, recomputed, 0.0f));
  const PrefixCacheStats& s = rig.fi->prefix_cache()->stats();
  EXPECT_GE(s.input_mismatches, 1u);
  EXPECT_EQ(s.layers_reused, 0u);
}

// -------------------------------------------------- campaign byte-identity ----

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

bool same_bits(const CampaignResult& a, const CampaignResult& b) {
  return std::memcmp(&a, &b, sizeof(CampaignResult)) == 0;
}

/// One full checkpointed+traced neuron campaign; returns the folded result
/// and leaves the checkpoint / streamed trace / CSV files behind for byte
/// comparison.
CampaignResult run_neuron_campaign(bool cache_on, std::int64_t threads,
                                   const std::string& ckpt_path,
                                   const std::string& trace_path,
                                   const std::string& csv_path,
                                   PrefixCacheStats* stats_out = nullptr) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FiConfig fi_cfg = small_config();
  fi_cfg.prefix_cache = cache_on;
  FaultInjector fi(model, fi_cfg);

  trace::TraceSink sink;
  CampaignConfig cfg;
  cfg.trials = 24;
  cfg.error_model = single_bit_flip();
  cfg.seed = 91;
  cfg.batch_size = 4;
  cfg.injections_per_image = 2;
  cfg.threads = threads;
  cfg.trace = &sink;
  CampaignCheckpointer ckpt(ckpt_path, trace_path);
  ckpt.begin(campaign_fingerprint(cfg, "prefix-identity"));
  cfg.checkpoint = &ckpt;

  const CampaignResult r = run_classification_campaign(fi, ds, cfg);
  write_campaign_csv(csv_path, {{"squeezenet", r}});
  if (stats_out != nullptr && fi.prefix_cache() != nullptr) {
    *stats_out = fi.prefix_cache()->stats();
  }
  return r;
}

TEST(PrefixCampaign, CsvTraceCheckpointByteIdenticalCacheOnOffAt1And4Threads) {
  struct Run {
    bool cache;
    std::int64_t threads;
  };
  const std::vector<Run> runs{{true, 1}, {false, 1}, {true, 4}, {false, 4}};

  CampaignResult reference{};
  std::string trace_bytes, csv_bytes;
  // Checkpoint bytes are compared within a thread count: the final
  // next_unit in the file depends on wave sizing (waves scale with worker
  // count — pre-existing, cache-independent), while counters, CSV, and
  // trace are pinned across ALL four runs.
  std::map<std::int64_t, std::string> ckpt_bytes_by_threads;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const std::string tag = std::to_string(i);
    TempFile ck("/tmp/pfi_prefix_ck_" + tag + ".ckpt");
    TempFile tr("/tmp/pfi_prefix_tr_" + tag + ".jsonl");
    TempFile csv("/tmp/pfi_prefix_csv_" + tag + ".csv");
    PrefixCacheStats stats;
    const CampaignResult r = run_neuron_campaign(
        runs[i].cache, runs[i].threads, ck.path, tr.path, csv.path, &stats);
    if (runs[i].cache) {
      EXPECT_GT(stats.golden_records, 0u) << "run " << i;
      EXPECT_GT(stats.layers_reused, 0u)
          << "run " << i << ": the cache must actually engage";
    }
    const auto [it, fresh] =
        ckpt_bytes_by_threads.emplace(runs[i].threads, util::read_file(ck.path));
    if (!fresh) {
      EXPECT_EQ(it->second, util::read_file(ck.path))
          << "run " << i << " (threads=" << runs[i].threads << ")";
    }
    if (i == 0) {
      reference = r;
      trace_bytes = util::read_file(tr.path);
      csv_bytes = util::read_file(csv.path);
      EXPECT_FALSE(trace_bytes.empty());
      continue;
    }
    EXPECT_TRUE(same_bits(reference, r))
        << "run " << i << " (cache=" << runs[i].cache
        << ", threads=" << runs[i].threads << ")";
    EXPECT_EQ(trace_bytes, util::read_file(tr.path)) << "run " << i;
    EXPECT_EQ(csv_bytes, util::read_file(csv.path)) << "run " << i;
  }
}

TEST(PrefixCampaign, WeightCampaignIdenticalCacheOnOffAt1And4Threads) {
  auto run = [](bool cache_on, std::int64_t threads) {
    Rng rng(92);
    data::SyntheticDataset ds(data::cifar10_like());
    auto model = make_model("squeezenet", {.num_classes = 10}, rng);
    FiConfig fi_cfg = small_config();
    fi_cfg.prefix_cache = cache_on;
    FaultInjector fi(model, fi_cfg);
    WeightCampaignConfig cfg;
    cfg.faults = 24;
    cfg.images_per_fault = 4;
    cfg.error_model = single_bit_flip();
    cfg.seed = 93;
    cfg.threads = threads;
    return run_weight_campaign(fi, ds, cfg);
  };
  const CampaignResult reference = run(true, 1);
  EXPECT_TRUE(same_bits(reference, run(false, 1)));
  EXPECT_TRUE(same_bits(reference, run(true, 4)));
  EXPECT_TRUE(same_bits(reference, run(false, 4)));
}

TEST(PrefixCampaign, WorkerStatsFoldIntoPrimaryInjector) {
  Rig rig("squeezenet");
  auto replica = rig.fi->replicate();
  const Tensor in = small_input(41);
  (void)replica->forward(in, ForwardMode::kRecordGolden);
  replica->declare_neuron_fault({.layer = 3, .c = 0, .h = 0, .w = 0},
                                constant_value(2.0f));
  (void)replica->forward(in, ForwardMode::kReusePrefix);
  replica->clear();

  EXPECT_EQ(rig.fi->prefix_cache()->stats().golden_records, 0u);
  rig.fi->absorb_prefix_stats(*replica);
  const PrefixCacheStats& s = rig.fi->prefix_cache()->stats();
  EXPECT_EQ(s.golden_records, 1u);
  EXPECT_EQ(s.reuse_passes, 1u);
  EXPECT_GT(s.layers_reused, 0u);
  EXPECT_EQ(s.injection_site_serves, 1u)
      << "resume-at-injection tallies must fold across workers too";
}

// -------------------------------------------------------- profiler gating ----

TEST(PrefixProfiler, AttachedProfilerDisablesReuseAndMatchesCacheOff) {
  auto run = [](bool cache_on, trace::Profiler& profiler) {
    FiConfig cfg = small_config();
    cfg.prefix_cache = cache_on;
    Rig rig("squeezenet", cfg);
    rig.fi->set_profiler(&profiler);
    const Tensor in = small_input(43);
    (void)rig.fi->forward(in, ForwardMode::kRecordGolden);
    rig.fi->declare_neuron_fault({.layer = 2, .c = 1, .h = 1, .w = 1},
                                 constant_value(11.0f));
    const Tensor faulty = rig.fi->forward(in, ForwardMode::kReusePrefix);
    rig.fi->clear();
    if (cache_on) {
      // Reuse never engaged: the profiler's numbers describe full passes.
      const PrefixCacheStats& s = rig.fi->prefix_cache()->stats();
      EXPECT_EQ(s.golden_records, 0u);
      EXPECT_EQ(s.reuse_passes, 0u);
      EXPECT_EQ(s.layers_reused, 0u);
    }
    rig.fi->set_profiler(nullptr);
    return faulty.clone();
  };

  trace::Profiler with_cache, without_cache;
  const Tensor a = run(true, with_cache);
  const Tensor b = run(false, without_cache);
  EXPECT_TRUE(allclose(a, b, 0.0f));

  // Activation statistics (everything deterministic — hook wall time is
  // not) must be equal: with a profiler attached the cache-on injector
  // executed exactly what the cache-off one did.
  ASSERT_EQ(with_cache.layers().size(), without_cache.layers().size());
  for (std::size_t i = 0; i < with_cache.layers().size(); ++i) {
    const auto& p = with_cache.layers()[i];
    const auto& q = without_cache.layers()[i];
    EXPECT_EQ(p.forwards, q.forwards) << i;
    EXPECT_EQ(p.count, q.count) << i;
    EXPECT_EQ(p.non_finite, q.non_finite) << i;
    EXPECT_EQ(p.min, q.min) << i;
    EXPECT_EQ(p.max, q.max) << i;
    EXPECT_EQ(p.sum, q.sum) << i;
  }
  // The cache-on profile announces why it can trust its own numbers.
  EXPECT_NE(with_cache.table().find("prefix-cache reuse disabled"),
            std::string::npos);
}

// ------------------------------------------------------ env knob parsing ----

struct ScopedEnv {
  explicit ScopedEnv(const char* n) : name(n) { ::unsetenv(name); }
  ~ScopedEnv() { ::unsetenv(name); }
  void set(const char* value) { ::setenv(name, value, 1); }
  const char* name;
};

TEST(PrefixEnv, ToggleParsesStrictly) {
  ScopedEnv env("PFI_PREFIX_CACHE");
  EXPECT_TRUE(prefix_cache_env_enabled(true));
  EXPECT_FALSE(prefix_cache_env_enabled(false));
  env.set("1");
  EXPECT_TRUE(prefix_cache_env_enabled(false));
  env.set("0");
  EXPECT_FALSE(prefix_cache_env_enabled(true));
  for (const char* bad : {"2", "yes", "on", " 1", "01", "true"}) {
    env.set(bad);
    EXPECT_THROW(prefix_cache_env_enabled(true), Error) << bad;
  }
}

TEST(PrefixEnv, BudgetParsesStrictly) {
  ScopedEnv env("PFI_PREFIX_CACHE_MB");
  EXPECT_EQ(prefix_cache_default_budget(), 256u * 1024u * 1024u);
  env.set("64");
  EXPECT_EQ(prefix_cache_default_budget(), 64u * 1024u * 1024u);
  env.set("0");
  EXPECT_EQ(prefix_cache_default_budget(), 0u);
  for (const char* bad : {"-1", "abc", "64MB", "1e3", "9999999999"}) {
    env.set(bad);
    EXPECT_THROW(prefix_cache_default_budget(), Error) << bad;
  }
}

TEST(PrefixEnv, SummaryLineMentionsHitRateAndBudget) {
  PrefixCacheStats s;
  s.golden_records = 3;
  s.layers_reused = 75;
  s.layers_recomputed = 25;
  s.fallback_passes = 2;
  const std::string line = prefix_cache_summary(s, 256u << 20);
  EXPECT_NE(line.find("75/100"), std::string::npos) << line;
  EXPECT_NE(line.find("75.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("256 MB"), std::string::npos) << line;
}

}  // namespace
}  // namespace pfi::core
