// Unit and property tests for symmetric INT8 quantization + the Fig. 4
// single-bit-flip error model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "quant/quant.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pfi::quant {
namespace {

TEST(Quant, CalibrateUsesAbsMax) {
  Tensor t({4}, std::vector<float>{-5.0f, 1.0f, 2.0f, 4.0f});
  const auto qp = calibrate(t);
  EXPECT_FLOAT_EQ(qp.scale, 5.0f / 127.0f);
  EXPECT_FLOAT_EQ(qp.max_representable(), 5.0f);
}

TEST(Quant, CalibrateZeroTensorFallsBack) {
  Tensor t({3});
  const auto qp = calibrate(t);
  EXPECT_GT(qp.scale, 0.0f);
  EXPECT_EQ(quantize_value(0.0f, qp), 0);
}

TEST(Quant, RoundTripExactAtGridPoints) {
  const auto qp = calibrate_absmax(127.0f);  // scale = 1
  for (int q = -127; q <= 127; ++q) {
    const float v = static_cast<float>(q);
    EXPECT_EQ(quantize_value(v, qp), q);
    EXPECT_FLOAT_EQ(fake_quantize_value(v, qp), v);
  }
}

TEST(Quant, QuantizationErrorBoundedByHalfScale) {
  Rng rng(1);
  const auto qp = calibrate_absmax(3.0f);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-3.0f, 3.0f);
    EXPECT_LE(std::abs(fake_quantize_value(v, qp) - v), qp.scale * 0.5f + 1e-6f);
  }
}

TEST(Quant, OutOfRangeClamps) {
  const auto qp = calibrate_absmax(1.0f);
  EXPECT_EQ(quantize_value(100.0f, qp), 127);
  EXPECT_EQ(quantize_value(-100.0f, qp), -127);
}

TEST(Quant, FakeQuantizeTensorInPlace) {
  Tensor t({3}, std::vector<float>{0.1f, -0.5f, 0.951f});
  const auto qp = calibrate(t);
  fake_quantize_(t, qp);
  for (float v : t.data()) {
    const float q = v / qp.scale;
    EXPECT_NEAR(q, std::nearbyint(q), 1e-3f);
  }
}

TEST(Quant, BitFlipStaysRepresentable) {
  // Whatever bit flips, the corrupted value must remain on the INT8 grid —
  // the defining property of the paper's quantized error model (unlike FP32
  // flips, no flip can produce a huge out-of-range value).
  Rng rng(2);
  const auto qp = calibrate_absmax(6.0f);
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.uniform(-6.0f, 6.0f);
    const int bit = static_cast<int>(rng.next_below(8));
    const float corrupted = flip_bit_int8(v, bit, qp);
    EXPECT_LE(std::abs(corrupted), 128.0f * qp.scale + 1e-5f);
    const float q = corrupted / qp.scale;
    EXPECT_NEAR(q, std::nearbyint(q), 1e-3f);
  }
}

TEST(Quant, SignBitFlipNegates) {
  const auto qp = calibrate_absmax(127.0f);  // scale = 1
  // +3 (0b00000011) with sign bit flipped -> -125 in two's complement.
  EXPECT_FLOAT_EQ(flip_bit_int8(3.0f, 7, qp), -125.0f);
}

TEST(Quant, LowBitFlipIsSmallPerturbation) {
  const auto qp = calibrate_absmax(127.0f);
  const float corrupted = flip_bit_int8(64.0f, 0, qp);
  EXPECT_NEAR(corrupted, 64.0f, 1.0f + 1e-6f);
  EXPECT_NE(corrupted, 64.0f);
}

TEST(Quant, HighMagnitudeBitFlipIsLargePerturbation) {
  const auto qp = calibrate_absmax(127.0f);
  // Bit 6 carries 64 levels.
  EXPECT_NEAR(std::abs(flip_bit_int8(1.0f, 6, qp) - 1.0f), 64.0f, 1e-5f);
}

TEST(Quant, CalibratePerChannelScalesEachRowIndependently) {
  // [3, 2] tensor: channel c is row c; each gets its own absmax scale.
  Tensor t({3, 2},
           std::vector<float>{1.0f, -4.0f, 0.5f, 0.25f, -127.0f, 3.0f});
  const auto qps = calibrate_per_channel(t);
  ASSERT_EQ(qps.size(), 3u);
  EXPECT_FLOAT_EQ(qps[0].scale, 4.0f / 127.0f);
  EXPECT_FLOAT_EQ(qps[1].scale, 0.5f / 127.0f);
  EXPECT_FLOAT_EQ(qps[2].scale, 1.0f);
  // Each channel's absmax sits exactly on its grid endpoint.
  EXPECT_EQ(quantize_value(-4.0f, qps[0]), -127);
  EXPECT_EQ(quantize_value(0.5f, qps[1]), 127);
}

TEST(Quant, CalibratePerChannelAllZeroChannelFallsBack) {
  // Zero is a valid (degenerate) calibration: the standard 1/127 fallback,
  // not a refusal.
  Tensor t({2, 3},
           std::vector<float>{0.0f, 0.0f, 0.0f, 1.0f, -2.0f, 0.5f});
  const auto qps = calibrate_per_channel(t);
  ASSERT_EQ(qps.size(), 2u);
  EXPECT_FLOAT_EQ(qps[0].scale, 1.0f / 127.0f);
  EXPECT_FLOAT_EQ(qps[1].scale, 2.0f / 127.0f);
}

TEST(Quant, CalibratePerChannelIgnoresNonFiniteOutliers) {
  // A NaN or Inf entry must not poison the channel's absmax as long as at
  // least one finite value remains.
  Tensor t({1, 3},
           std::vector<float>{std::numeric_limits<float>::quiet_NaN(), 2.0f,
                              std::numeric_limits<float>::infinity()});
  const auto qps = calibrate_per_channel(t);
  ASSERT_EQ(qps.size(), 1u);
  EXPECT_FLOAT_EQ(qps[0].scale, 2.0f / 127.0f);
}

TEST(Quant, CalibratePerChannelRefusesDegenerateInputs) {
  // Undefined tensor / scalar-with-no-channel-dim.
  EXPECT_THROW(calibrate_per_channel(Tensor()), Error);
  // A channel whose every entry is non-finite has no meaningful scale.
  Tensor all_bad({2, 2},
                 std::vector<float>{1.0f, 2.0f,
                                    std::numeric_limits<float>::quiet_NaN(),
                                    -std::numeric_limits<float>::infinity()});
  try {
    calibrate_per_channel(all_bad);
    ADD_FAILURE() << "expected a refusal for the all-non-finite channel";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("channel 1 has no finite values"),
              std::string::npos)
        << e.what();
  }
}

struct BitSweepParam {
  int bit;
};

class QuantBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantBitSweep, FlipIsDeterministicAndNontrivial) {
  const int bit = GetParam();
  const auto qp = calibrate_absmax(2.0f);
  const float v = 1.0f;
  const float a = flip_bit_int8(v, bit, qp);
  const float b = flip_bit_int8(v, bit, qp);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, fake_quantize_value(v, qp))
      << "flipping bit " << bit << " must change the value";
}

INSTANTIATE_TEST_SUITE_P(AllBits, QuantBitSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace pfi::quant
