// Tests for the fault-injection core: error models, FaultInjector semantics
// (hooks, profiling, validation, weight undo, dtype emulation), and the
// campaign runner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/campaign.hpp"
#include "core/fault_injector.hpp"
#include "models/zoo.hpp"
#include "core/perturbation_layer.hpp"
#include "core/report.hpp"
#include "util/bits.hpp"

namespace pfi::core {
namespace {

using models::make_model;

InjectionContext make_ctx(Rng& rng, DType dtype = DType::kFloat32) {
  InjectionContext ctx;
  ctx.dtype = dtype;
  ctx.rng = &rng;
  ctx.qparams = quant::calibrate_absmax(2.0f);
  return ctx;
}

// ------------------------------------------------------------ error models ----

TEST(ErrorModels, RandomValueStaysInRange) {
  Rng rng(1);
  const auto ctx = make_ctx(rng);
  const auto m = random_value(-1.0f, 1.0f);
  for (int i = 0; i < 1000; ++i) {
    const float v = m.apply(123.0f, ctx);
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ErrorModels, ZeroAndConstant) {
  Rng rng(1);
  const auto ctx = make_ctx(rng);
  EXPECT_EQ(zero_value().apply(5.0f, ctx), 0.0f);
  EXPECT_EQ(constant_value(10000.0f).apply(5.0f, ctx), 10000.0f);
}

TEST(ErrorModels, ScaleAndNoise) {
  Rng rng(1);
  const auto ctx = make_ctx(rng);
  EXPECT_FLOAT_EQ(scale_value(2.0f).apply(3.0f, ctx), 6.0f);
  const float noisy = additive_noise(0.5f).apply(3.0f, ctx);
  EXPECT_GE(noisy, 2.5f);
  EXPECT_LE(noisy, 3.5f);
}

TEST(ErrorModels, BitFlipFp32FixedBitIsDeterministic) {
  Rng rng(1);
  const auto ctx = make_ctx(rng);
  const auto m = single_bit_flip(31);
  EXPECT_EQ(m.apply(1.5f, ctx), -1.5f);
}

TEST(ErrorModels, BitFlipDispatchesOnDtype) {
  Rng rng(1);
  const auto m = single_bit_flip(7);
  // INT8: bit 7 is the sign bit of the quantized code.
  const auto ctx8 = make_ctx(rng, DType::kInt8);
  const float v8 = m.apply(1.0f, ctx8);
  const float grid = ctx8.qparams.scale;
  EXPECT_NEAR(std::remainder(v8, grid), 0.0f, grid * 1e-3f);
  EXPECT_LT(v8, 0.0f);
  // FP16: bit 7 is a mantissa bit — small change, still finite.
  const auto ctx16 = make_ctx(rng, DType::kFloat16);
  const float v16 = m.apply(1.0f, ctx16);
  EXPECT_TRUE(std::isfinite(v16));
  EXPECT_NE(v16, 1.0f);
  EXPECT_NEAR(v16, 1.0f, 0.2f);
}

TEST(ErrorModels, RandomBitFlipCoversHighBits) {
  Rng rng(2);
  auto ctx = make_ctx(rng);
  const auto m = single_bit_flip();
  bool saw_large = false;
  for (int i = 0; i < 200; ++i) {
    const float v = m.apply(1.0f, ctx);
    if (!std::isfinite(v) || std::abs(v) > 1e10f) saw_large = true;
  }
  EXPECT_TRUE(saw_large) << "random fp32 flips should sometimes hit exponent";
}

TEST(ErrorModels, GoldenFp32BitPatterns) {
  // Pin the exact IEEE-754 bit patterns bit flips must produce, so a broken
  // bit index convention (LSB-0 vs MSB-0) cannot pass silently.
  Rng rng(2);
  const auto ctx = make_ctx(rng);
  ASSERT_EQ(float_to_bits(1.0f), 0x3f800000u);
  ASSERT_EQ(float_to_bits(-2.5f), 0xc0200000u);
  // 1.0f, top exponent bit (30): exponent becomes all-ones -> +Inf.
  EXPECT_EQ(float_to_bits(single_bit_flip(30).apply(1.0f, ctx)), 0x7f800000u);
  // 1.0f, exponent LSB (23): exponent 127 -> 126, i.e. exactly 0.5f.
  EXPECT_EQ(float_to_bits(single_bit_flip(23).apply(1.0f, ctx)), 0x3f000000u);
  EXPECT_EQ(single_bit_flip(23).apply(1.0f, ctx), 0.5f);
  // -2.5f, sign bit (31): exactly +2.5f.
  EXPECT_EQ(float_to_bits(single_bit_flip(31).apply(-2.5f, ctx)), 0x40200000u);
  EXPECT_EQ(single_bit_flip(31).apply(-2.5f, ctx), 2.5f);
  // -2.5f, exponent bit 24: exponent 128 -> 130, value * 2^2 -> -10.0f.
  EXPECT_EQ(float_to_bits(single_bit_flip(24).apply(-2.5f, ctx)), 0xc1200000u);
  EXPECT_EQ(single_bit_flip(24).apply(-2.5f, ctx), -10.0f);
}

TEST(ErrorModels, GoldenInt8QuantizedBitPatterns) {
  // INT8 flips happen in the fake-quantized domain: quantize, flip the code,
  // dequantize. With absmax 2.0 the scale is 2/127 and every expected value
  // is an exact multiple of it.
  Rng rng(3);
  const auto ctx = make_ctx(rng, DType::kInt8);
  const float scale = 2.0f / 127.0f;
  ASSERT_FLOAT_EQ(ctx.qparams.scale, scale);
  // 1.0f / scale = 63.5, round-to-even -> code 64 (0x40).
  ASSERT_EQ(quant::quantize_value(1.0f, ctx.qparams), 64);
  // Sign bit (7): 0x40 ^ 0x80 = 0xc0 = -64.
  EXPECT_EQ(single_bit_flip(7).apply(1.0f, ctx), -64.0f * scale);
  // LSB (0): 0x40 ^ 0x01 = 0x41 = 65.
  EXPECT_EQ(single_bit_flip(0).apply(1.0f, ctx), 65.0f * scale);
  // -2.5f saturates to code -127 (0x81); bit 6: 0x81 ^ 0x40 = 0xc1 = -63.
  ASSERT_EQ(quant::quantize_value(-2.5f, ctx.qparams), -127);
  EXPECT_EQ(single_bit_flip(6).apply(-2.5f, ctx), -63.0f * scale);
}

TEST(ErrorModels, MultiBitFlipIsInvolutionForEvenApplication) {
  // Flipping the same k distinct bits twice restores the value; flipping
  // once must change it.
  Rng rng(50);
  auto ctx = make_ctx(rng);
  const auto m = multi_bit_flip(3);
  for (int trial = 0; trial < 100; ++trial) {
    const float v = rng.uniform(-10.0f, 10.0f);
    const float once = m.apply(v, ctx);
    EXPECT_NE(once, v);
  }
}

TEST(ErrorModels, MultiBitFlipRespectsDtypeWidth) {
  Rng rng(51);
  const auto ctx8 = make_ctx(rng, DType::kInt8);
  const auto m = multi_bit_flip(8);  // exactly the int8 width: legal
  EXPECT_NO_THROW(m.apply(1.0f, ctx8));
  const auto too_many = multi_bit_flip(9);
  EXPECT_THROW(too_many.apply(1.0f, ctx8), Error);
  EXPECT_THROW(multi_bit_flip(0), Error);
  EXPECT_THROW(multi_bit_flip(33), Error);
}

TEST(ErrorModels, SignFlipAndSaturate) {
  Rng rng(52);
  const auto ctx = make_ctx(rng);
  EXPECT_EQ(sign_flip().apply(3.0f, ctx), -3.0f);
  EXPECT_EQ(sign_flip().apply(-2.0f, ctx), 2.0f);
  const auto sat = saturate(1.5f);
  EXPECT_EQ(sat.apply(10.0f, ctx), 1.5f);
  EXPECT_EQ(sat.apply(-10.0f, ctx), -1.5f);
  EXPECT_EQ(sat.apply(0.5f, ctx), 0.5f);
  EXPECT_THROW(saturate(-1.0f), Error);
}

TEST(ErrorModels, Validation) {
  EXPECT_THROW(random_value(1.0f, -1.0f), Error);
  EXPECT_THROW(single_bit_flip(32), Error);
  EXPECT_THROW(additive_noise(0.0f), Error);
}

TEST(ErrorModels, DtypeNames) {
  EXPECT_EQ(dtype_name(DType::kFloat32), "fp32");
  EXPECT_EQ(dtype_name(DType::kFloat16), "fp16");
  EXPECT_EQ(dtype_name(DType::kInt8), "int8");
}

// ---------------------------------------------------------- FaultInjector ----

std::shared_ptr<nn::Sequential> small_model(Rng& rng) {
  return make_model("squeezenet", {.num_classes = 10}, rng);
}

FiConfig small_config() {
  return {.input_shape = {3, 32, 32}, .batch_size = 2};
}

TEST(Injector, ProfilingDiscoversLayers) {
  Rng rng(1);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  EXPECT_GE(fi.num_layers(), 7);  // squeezenet-mini has 8 convs
  EXPECT_GT(fi.total_neurons(), 0);
  for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
    const Shape& s = fi.layer_shape(l);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0], 2);  // profiled at configured batch size
    EXPECT_EQ(fi.layer(l).kind(), "Conv2d");
  }
}

TEST(Injector, GoldenRunUnchangedWhenNoFaults) {
  Rng rng(2);
  auto model = small_model(rng);
  model->eval();
  Rng drng(3);
  const Tensor x = Tensor::rand({2, 3, 32, 32}, drng, -1.0f, 1.0f);
  const Tensor before = (*model)(x).clone();
  FaultInjector fi(model, small_config());
  const Tensor after = fi.forward(x);
  EXPECT_TRUE(allclose(before, after, 0.0f))
      << "installing an injector with no faults must not change outputs";
  EXPECT_EQ(fi.injections_performed(), 0u);
}

TEST(Injector, HooksRemovedOnDestruction) {
  Rng rng(4);
  auto model = small_model(rng);
  std::size_t hooks_before = 0;
  for (auto* m : model->modules()) hooks_before += m->forward_hook_count();
  EXPECT_EQ(hooks_before, 0u);
  {
    FaultInjector fi(model, small_config());
    std::size_t hooks_during = 0;
    for (auto* m : model->modules()) hooks_during += m->forward_hook_count();
    EXPECT_EQ(hooks_during, static_cast<std::size_t>(fi.num_layers()));
  }
  std::size_t hooks_after = 0;
  for (auto* m : model->modules()) hooks_after += m->forward_hook_count();
  EXPECT_EQ(hooks_after, 0u);
}

TEST(Injector, NeuronFaultChangesExactlyThatNeuron) {
  Rng rng(5);
  auto model = small_model(rng);
  model->eval();
  FaultInjector fi(model, small_config());
  Rng drng(6);
  const Tensor x = Tensor::rand({2, 3, 32, 32}, drng, -1.0f, 1.0f);

  // Capture layer 0's output with a probe hook.
  Tensor probe;
  const auto h = fi.layer(0).register_forward_hook(
      [&](nn::Module&, const Tensor&, Tensor& out) { probe = out.clone(); });

  fi.forward(x);
  const Tensor golden_probe = probe;

  const NeuronLocation loc{.layer = 0, .batch = 1, .c = 0, .h = 2, .w = 3};
  fi.declare_neuron_fault(loc, constant_value(77.0f));
  fi.forward(x);
  fi.layer(0).remove_hook(h);

  // NOTE: probe hook was registered after the injector's hook, so it sees
  // the corrupted tensor.
  std::int64_t diffs = 0;
  for (std::int64_t i = 0; i < probe.numel(); ++i) {
    if (probe[i] != golden_probe[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
  EXPECT_EQ(probe.at(1, 0, 2, 3), 77.0f);
  EXPECT_EQ(fi.injections_performed(), 1u);
}

TEST(Injector, BatchWideFaultHitsAllElements) {
  Rng rng(7);
  auto model = small_model(rng);
  model->eval();
  FaultInjector fi(model, small_config());
  Tensor probe;
  fi.layer(0).register_forward_hook(
      [&](nn::Module&, const Tensor&, Tensor& out) { probe = out.clone(); });
  const NeuronLocation loc{
      .layer = 0, .batch = kAllBatchElements, .c = 1, .h = 0, .w = 0};
  fi.declare_neuron_fault(loc, constant_value(55.0f));
  Rng drng(8);
  fi.forward(Tensor::rand({2, 3, 32, 32}, drng, -1.0f, 1.0f));
  EXPECT_EQ(probe.at(0, 1, 0, 0), 55.0f);
  EXPECT_EQ(probe.at(1, 1, 0, 0), 55.0f);
  EXPECT_EQ(fi.injections_performed(), 2u);
}

TEST(Injector, DeclarationValidatesCoordinates) {
  Rng rng(9);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  const Shape s = fi.layer_shape(0);
  EXPECT_THROW(
      fi.declare_neuron_fault({.layer = fi.num_layers()}, zero_value()),
      Error);
  EXPECT_THROW(fi.declare_neuron_fault({.layer = 0, .c = s[1]}, zero_value()),
               Error);
  EXPECT_THROW(fi.declare_neuron_fault({.layer = 0, .h = s[2]}, zero_value()),
               Error);
  EXPECT_THROW(
      fi.declare_neuron_fault({.layer = 0, .batch = 5, .c = 0}, zero_value()),
      Error);
  // Error messages carry context for debugging (paper Sec. III-B step 2).
  try {
    fi.declare_neuron_fault({.layer = 0, .c = s[1]}, zero_value());
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fmap"), std::string::npos);
  }
}

TEST(Injector, ClearRemovesNeuronFaults) {
  Rng rng(10);
  auto model = small_model(rng);
  model->eval();
  FaultInjector fi(model, small_config());
  fi.declare_neuron_fault({.layer = 0, .c = 0, .h = 0, .w = 0},
                          constant_value(9.0f));
  EXPECT_EQ(fi.active_neuron_faults(), 1u);
  fi.clear();
  EXPECT_EQ(fi.active_neuron_faults(), 0u);
  Rng drng(11);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const Tensor a = fi.forward(x).clone();
  const Tensor b = fi.forward(x);
  EXPECT_TRUE(allclose(a, b, 0.0f));
}

TEST(Injector, WeightFaultAppliedOfflineAndRestored) {
  Rng rng(12);
  auto model = small_model(rng);
  model->eval();
  FaultInjector fi(model, small_config());
  auto& conv = static_cast<nn::Conv2d&>(fi.layer(0));
  const float original = conv.weight().value.at(0, 0, 0, 0);

  fi.declare_weight_fault({.layer = 0, .out_c = 0, .in_c = 0, .kh = 0, .kw = 0},
                          constant_value(5.0f));
  EXPECT_EQ(conv.weight().value.at(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(fi.injections_performed(), 1u);

  fi.clear();
  EXPECT_EQ(conv.weight().value.at(0, 0, 0, 0), original);
}

TEST(Injector, OverlappingWeightFaultsRestoreGolden) {
  Rng rng(13);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  auto& conv = static_cast<nn::Conv2d&>(fi.layer(0));
  const float original = conv.weight().value.at(0, 0, 0, 0);
  const WeightLocation loc{.layer = 0};
  fi.declare_weight_fault(loc, constant_value(1.0f));
  fi.declare_weight_fault(loc, constant_value(2.0f));
  EXPECT_EQ(conv.weight().value.at(0, 0, 0, 0), 2.0f);
  fi.clear();
  EXPECT_EQ(conv.weight().value.at(0, 0, 0, 0), original);
}

TEST(Injector, WeightFaultValidation) {
  Rng rng(14);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  EXPECT_THROW(
      fi.declare_weight_fault({.layer = 0, .out_c = 10000}, zero_value()),
      Error);
}

TEST(Injector, RandomNeuronLocationsAreValidAndSpread) {
  Rng rng(15);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  Rng lrng(16);
  std::vector<int> layer_hits(static_cast<std::size_t>(fi.num_layers()), 0);
  for (int i = 0; i < 500; ++i) {
    const auto loc = fi.random_neuron_location(lrng);
    ASSERT_GE(loc.layer, 0);
    ASSERT_LT(loc.layer, fi.num_layers());
    ++layer_hits[static_cast<std::size_t>(loc.layer)];
    EXPECT_NO_THROW(fi.declare_neuron_fault(loc, zero_value()));
  }
  fi.clear();
  // Early (large) layers must receive more samples than the 1x1 head.
  int populated = 0;
  for (int hits : layer_hits) populated += hits > 0 ? 1 : 0;
  EXPECT_GE(populated, fi.num_layers() / 2);
}

TEST(Injector, RandomWeightLocationsValid) {
  Rng rng(17);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  Rng lrng(18);
  for (int i = 0; i < 100; ++i) {
    const auto loc = fi.random_weight_location(lrng);
    EXPECT_NO_THROW(fi.declare_weight_fault(loc, scale_value(1.0f)));
  }
  fi.clear();
}

TEST(Injector, InputShapeValidated) {
  Rng rng(19);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  EXPECT_THROW(fi.forward(Tensor({1, 3, 16, 16})), Error);
  EXPECT_THROW(fi.forward(Tensor({5, 3, 32, 32})), Error);  // batch too big
}

TEST(Injector, Int8DtypeQuantizesActivations) {
  Rng rng(20);
  auto model = small_model(rng);
  model->eval();
  FiConfig cfg = small_config();
  cfg.dtype = DType::kInt8;
  FaultInjector fi(model, cfg);
  Tensor probe;
  fi.layer(1).register_forward_hook(
      [&](nn::Module&, const Tensor&, Tensor& out) { probe = out.clone(); });
  Rng drng(21);
  fi.forward(Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f));
  // Every activation must lie on a 255-level grid.
  const auto qp = quant::calibrate(probe);
  for (std::int64_t i = 0; i < probe.numel(); ++i) {
    const float q = probe[i] / qp.scale;
    EXPECT_NEAR(q, std::nearbyint(q), 1e-2f) << "activation " << i;
  }
}

TEST(Injector, Fp16DtypeRoundsActivations) {
  Rng rng(22);
  auto model = small_model(rng);
  model->eval();
  FiConfig cfg = small_config();
  cfg.dtype = DType::kFloat16;
  FaultInjector fi(model, cfg);
  Tensor probe;
  fi.layer(0).register_forward_hook(
      [&](nn::Module&, const Tensor&, Tensor& out) { probe = out.clone(); });
  Rng drng(23);
  fi.forward(Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f));
  for (std::int64_t i = 0; i < probe.numel(); ++i) {
    EXPECT_EQ(probe[i], round_to_fp16(probe[i]));
  }
}

TEST(Injector, OneFaultPerLayerHelper) {
  Rng rng(24);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  Rng lrng(25);
  declare_one_fault_per_layer(fi, random_value(), lrng);
  EXPECT_EQ(fi.active_neuron_faults(),
            static_cast<std::size_t>(fi.num_layers()));
}

TEST(Injector, FmapFaultCorruptsWholeFeatureMap) {
  Rng rng(40);
  auto model = small_model(rng);
  model->eval();
  FaultInjector fi(model, small_config());
  Tensor probe;
  fi.layer(0).register_forward_hook(
      [&](nn::Module&, const Tensor&, Tensor& out) { probe = out.clone(); });
  fi.declare_fmap_fault(0, 1, 0, constant_value(3.5f));
  Rng drng(41);
  fi.forward(Tensor::rand({2, 3, 32, 32}, drng, -1.0f, 1.0f));
  const Shape s = fi.layer_shape(0);
  // Every neuron of fmap 1 in batch element 0 corrupted; fmap 0 untouched;
  // batch element 1 untouched.
  for (std::int64_t h = 0; h < s[2]; ++h) {
    for (std::int64_t w = 0; w < s[3]; ++w) {
      ASSERT_EQ(probe.at(0, 1, h, w), 3.5f);
    }
  }
  EXPECT_NE(probe.at(1, 1, 0, 0), 3.5f);
  EXPECT_EQ(fi.injections_performed(),
            static_cast<std::uint64_t>(s[2] * s[3]));
}

TEST(Injector, LayerFaultCorruptsEverything) {
  Rng rng(42);
  auto model = small_model(rng);
  model->eval();
  FaultInjector fi(model, small_config());
  Tensor probe;
  fi.layer(0).register_forward_hook(
      [&](nn::Module&, const Tensor&, Tensor& out) { probe = out.clone(); });
  fi.declare_layer_fault(0, kAllBatchElements, zero_value());
  Rng drng(43);
  fi.forward(Tensor::rand({2, 3, 32, 32}, drng, -1.0f, 1.0f));
  EXPECT_EQ(probe.squared_norm(), 0.0f);
}

TEST(Injector, FmapFaultValidation) {
  Rng rng(44);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  const Shape s = fi.layer_shape(0);
  EXPECT_THROW(fi.declare_fmap_fault(0, s[1], 0, zero_value()), Error);
  EXPECT_THROW(fi.declare_fmap_fault(0, 0, 9, zero_value()), Error);
  EXPECT_THROW(fi.declare_layer_fault(fi.num_layers(), 0, zero_value()),
               Error);
}

TEST(Campaign, InjectionsPerImageAmortizes) {
  Rng rng(46);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  CampaignConfig cfg;
  cfg.trials = 40;
  cfg.error_model = zero_value();
  cfg.injections_per_image = 8;
  cfg.seed = 47;
  const auto r = run_classification_campaign(fi, ds, cfg);
  EXPECT_EQ(r.trials, 40u);
  cfg.injections_per_image = 0;
  EXPECT_THROW(run_classification_campaign(fi, ds, cfg), Error);
}

TEST(Injector, RequiresConvLayers) {
  auto mlp = std::make_shared<nn::Sequential>();
  Rng rng(26);
  mlp->emplace<nn::Linear>(4, 2, rng);
  EXPECT_THROW(FaultInjector(mlp, {.input_shape = {4}, .batch_size = 1}),
               Error);
}

TEST(Injector, InstrumentLinearExtension) {
  Rng rng(27);
  auto model = small_model(rng);
  FiConfig cfg = small_config();
  FaultInjector conv_only(model, cfg);
  // squeezenet head is conv-based; use alexnet which has Linear layers.
  auto alex = make_model("alexnet", {.num_classes = 10}, rng);
  cfg.instrument_linear = true;
  FaultInjector fi(alex, cfg);
  bool saw_linear = false;
  for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
    saw_linear |= fi.layer(l).kind() == "Linear";
  }
  EXPECT_TRUE(saw_linear);
}

// ---------------------------------------------------------------- campaign ----

TEST(Campaign, ZeroValueFaultsRarelyCorrupt) {
  // Injecting zeros is nearly always masked — corruption rate should be low,
  // reproducing the paper's core masking observation.
  Rng rng(30);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, small_config());
  CampaignConfig cfg;
  cfg.trials = 60;
  cfg.error_model = zero_value();
  cfg.seed = 31;
  const CampaignResult r = run_classification_campaign(fi, ds, cfg);
  EXPECT_EQ(r.trials, 60u);
  // Untrained net rarely classifies "correctly", but those runs are skipped,
  // not counted: trials only counts injected, correctly-classified runs.
  EXPECT_LE(r.corruptions, r.trials);
}

TEST(Campaign, LargeConstantCorruptsMoreThanZero) {
  Rng rng(32);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, small_config());

  CampaignConfig zero_cfg;
  zero_cfg.trials = 80;
  zero_cfg.error_model = zero_value();
  zero_cfg.seed = 33;
  const auto zero_result = run_classification_campaign(fi, ds, zero_cfg);

  CampaignConfig big_cfg;
  big_cfg.trials = 80;
  big_cfg.error_model = constant_value(1e6f);
  big_cfg.seed = 33;
  const auto big_result = run_classification_campaign(fi, ds, big_cfg);

  EXPECT_GE(big_result.corruptions, zero_result.corruptions);
}

TEST(Campaign, PerLayerProducesOneResultPerLayer) {
  Rng rng(34);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, small_config());
  CampaignConfig cfg;
  cfg.trials = 10;
  cfg.error_model = random_value();
  const auto results = run_per_layer_campaign(fi, ds, cfg);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(fi.num_layers()));
  for (const auto& r : results) EXPECT_EQ(r.trials, 10u);
}

TEST(Campaign, ResultProportionUsesWilson) {
  CampaignResult r;
  r.trials = 1000;
  r.corruptions = 10;
  const auto p = r.corruption_probability();
  EXPECT_NEAR(p.value, 0.01, 1e-9);
  EXPECT_GT(p.hi, p.value);
  EXPECT_LT(p.lo, p.value);
}

TEST(Campaign, ConfigValidated) {
  Rng rng(35);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  CampaignConfig cfg;
  cfg.trials = 0;
  cfg.error_model = zero_value();
  EXPECT_THROW(run_classification_campaign(fi, ds, cfg), Error);
  cfg.trials = 10;
  cfg.error_model = {};
  EXPECT_THROW(run_classification_campaign(fi, ds, cfg), Error);
}

TEST(Campaign, WeightCampaignScoresAndRestores) {
  Rng rng(70);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  auto& conv = static_cast<nn::Conv2d&>(fi.layer(0));
  const Tensor golden_weights = conv.weight().value.clone();

  WeightCampaignConfig cfg;
  cfg.faults = 20;
  cfg.images_per_fault = 2;
  cfg.error_model = constant_value(100.0f);
  cfg.seed = 71;
  const auto r = run_weight_campaign(fi, ds, cfg);
  // Every drawn image is either scored or skipped.
  EXPECT_EQ(r.trials + r.skipped, 40u);
  // Weights restored after the campaign.
  EXPECT_TRUE(allclose(conv.weight().value, golden_weights, 0.0f));
}

TEST(Campaign, WeightCampaignValidation) {
  Rng rng(72);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  WeightCampaignConfig cfg;
  cfg.faults = 0;
  cfg.error_model = zero_value();
  EXPECT_THROW(run_weight_campaign(fi, ds, cfg), Error);
  cfg.faults = 1;
  cfg.error_model = {};
  EXPECT_THROW(run_weight_campaign(fi, ds, cfg), Error);
}

// ------------------------------------------------------ PerturbationLayer ----

TEST(PerturbationLayer, IdleIsIdentityWithFreshStorage) {
  PerturbationLayer p;
  Rng rng(73);
  const Tensor x = Tensor::rand({1, 2, 3, 3}, rng, -1.0f, 1.0f);
  const Tensor y = p(x);
  EXPECT_TRUE(allclose(x, y, 0.0f));
  EXPECT_FALSE(x.shares_storage_with(y));  // the design's inherent copy
}

TEST(PerturbationLayer, ArmedCorruptsDeclaredPosition) {
  PerturbationLayer p;
  p.arm(0, 1, 2, 2, constant_value(42.0f));
  EXPECT_EQ(p.armed(), 1u);
  Tensor x({1, 2, 3, 3});
  const Tensor y = p(x);
  EXPECT_EQ(y.at(0, 1, 2, 2), 42.0f);
  EXPECT_EQ(x.at(0, 1, 2, 2), 0.0f);  // input untouched
  p.disarm();
  EXPECT_EQ(p.armed(), 0u);
  EXPECT_TRUE(allclose(p(x), x, 0.0f));
}

TEST(PerturbationLayer, BatchWideAndValidation) {
  PerturbationLayer p;
  p.arm(kAllBatchElements, 0, 0, 0, constant_value(7.0f));
  const Tensor y = p(Tensor({3, 1, 2, 2}));
  EXPECT_EQ(y.at(0, 0, 0, 0), 7.0f);
  EXPECT_EQ(y.at(2, 0, 0, 0), 7.0f);
  EXPECT_THROW(p.arm(0, -1, 0, 0, zero_value()), Error);
  PerturbationLayer bad;
  bad.arm(0, 99, 0, 0, zero_value());
  EXPECT_THROW(bad(Tensor({1, 2, 2, 2})), Error);
}

TEST(PerturbationLayer, BackwardIsIdentity) {
  PerturbationLayer p;
  p.arm(0, 0, 0, 0, constant_value(1.0f));
  p(Tensor({1, 1, 2, 2}));
  const Tensor g = Tensor::full({1, 1, 2, 2}, 3.0f);
  EXPECT_TRUE(allclose(p.backward(g), g, 0.0f));
}

// ----------------------------------------------------------------- report ----

TEST(Report, CsvRoundTripParses) {
  std::vector<CampaignRow> rows;
  CampaignResult a;
  a.trials = 1000;
  a.corruptions = 10;
  a.skipped = 5;
  rows.push_back({"alexnet", a});
  CampaignResult b;
  b.trials = 2000;
  b.corruptions = 0;
  b.non_finite = 3;
  rows.push_back({"vgg19", b});

  const std::string path = "/tmp/pfi_test_report.csv";
  write_campaign_csv(path, rows);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, line1, line2;
  std::getline(in, header);
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(header,
            "label,trials,skipped,corruptions,non_finite,gave_up,p,ci_lo,"
            "ci_hi");
  EXPECT_EQ(line1.substr(0, 18), "alexnet,1000,5,10,");
  EXPECT_EQ(line2.substr(0, 15), "vgg19,2000,0,0,");
  std::remove(path.c_str());
}

TEST(Report, CsvQuotesHostileLabels) {
  // Labels with CSV metacharacters must come out RFC 4180-quoted, one field
  // wide, instead of corrupting the row structure.
  std::vector<CampaignRow> rows{{"bad,label \"x\"\nstill bad", CampaignResult{}}};
  rows[0].result.trials = 1;
  const std::string path = "/tmp/pfi_test_hostile.csv";
  write_campaign_csv(path, rows);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"bad,label \"\"x\"\"\nstill bad\",1,0,0,0,"),
            std::string::npos)
      << content;
  std::remove(path.c_str());
}

TEST(Report, TableContainsRowsAndPercentages) {
  CampaignResult r;
  r.trials = 200;
  r.corruptions = 2;
  const std::string table = campaign_table({{"resnet18", r}});
  EXPECT_NE(table.find("resnet18"), std::string::npos);
  EXPECT_NE(table.find("1.000%"), std::string::npos);  // 2/200
}

TEST(Injector, DescribeListsLayers) {
  Rng rng(60);
  auto model = small_model(rng);
  FaultInjector fi(model, small_config());
  fi.declare_neuron_fault({.layer = 2, .c = 0, .h = 0, .w = 0}, zero_value());
  const std::string desc = fi.describe();
  EXPECT_NE(desc.find("instrumented layers"), std::string::npos);
  EXPECT_NE(desc.find("[2] Conv2d"), std::string::npos);
  EXPECT_NE(desc.find("(1 faults armed)"), std::string::npos);
  fi.clear();
}

}  // namespace
}  // namespace pfi::core
