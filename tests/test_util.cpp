// Unit tests for src/util: RNG, bit manipulation, statistics, error macro.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <string>

#include <unistd.h>

#include "util/bits.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace pfi {
namespace {

// ------------------------------------------------------------- PFI_CHECK ----

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(PFI_CHECK(1 + 1 == 2) << "never shown");
}

TEST(Check, FailingConditionThrowsWithContext) {
  try {
    const int x = 41;
    PFI_CHECK(x == 42) << "x was " << x;
    FAIL() << "expected pfi::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("x == 42"), std::string::npos) << msg;
    EXPECT_NE(msg.find("x was 41"), std::string::npos) << msg;
  }
}

// ------------------------------------------------------------------- Rng ----

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(-1.0f, 1.0f);
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  RunningStat st;
  for (int i = 0; i < 100000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(21);
  Rng a = parent.split();
  Rng b = parent.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ------------------------------------------------------------------ bits ----

TEST(Bits, FloatRoundTrip) {
  for (float v : {0.0f, 1.0f, -2.5f, 3.14159f, 1e-30f}) {
    EXPECT_EQ(bits_to_float(float_to_bits(v)), v);
  }
}

TEST(Bits, FlipSignBit) {
  EXPECT_EQ(flip_float_bit(1.5f, 31), -1.5f);
  EXPECT_EQ(flip_float_bit(-2.0f, 31), 2.0f);
}

TEST(Bits, FlipIsInvolution) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const float v = rng.uniform(-100.0f, 100.0f);
    const int bit = static_cast<int>(rng.next_below(32));
    EXPECT_EQ(flip_float_bit(flip_float_bit(v, bit), bit), v);
  }
}

TEST(Bits, HighExponentFlipIsLargeOrNonFinite) {
  // Flipping the MSB of the exponent produces the classic "egregious"
  // hardware error: for values >= 1.0 the exponent saturates to NaN/inf;
  // for small values the magnitude explodes to ~2^96 x.
  EXPECT_TRUE(is_non_finite(flip_float_bit(1.5f, 30)));
  const float corrupted = flip_float_bit(1e-5f, 30);
  EXPECT_GT(std::abs(corrupted), 1e25f);
}

TEST(Bits, Int8FlipInvolutionAndRange) {
  for (int v = -128; v <= 127; ++v) {
    for (int bit = 0; bit < 8; ++bit) {
      const auto x = static_cast<std::int8_t>(v);
      EXPECT_EQ(flip_int8_bit(flip_int8_bit(x, bit), bit), x);
    }
  }
}

TEST(Bits, Int8SignBitFlip) {
  EXPECT_EQ(flip_int8_bit(int8_t{1}, 7), int8_t{-127});
  EXPECT_EQ(flip_int8_bit(int8_t{-128}, 7), int8_t{0});
}

TEST(Bits, BitIndexValidated) {
  EXPECT_THROW(flip_float_bit(1.0f, 32), Error);
  EXPECT_THROW(flip_float_bit(1.0f, -1), Error);
  EXPECT_THROW(flip_int8_bit(int8_t{0}, 8), Error);
}

TEST(Bits, NonFiniteDetection) {
  EXPECT_TRUE(is_non_finite(std::numeric_limits<float>::infinity()));
  EXPECT_TRUE(is_non_finite(std::numeric_limits<float>::quiet_NaN()));
  EXPECT_FALSE(is_non_finite(0.0f));
  EXPECT_FALSE(is_non_finite(std::numeric_limits<float>::max()));
}

TEST(Bits, Fp16RoundingIsIdempotent) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const float v = rng.uniform(-100.0f, 100.0f);
    const float h = round_to_fp16(v);
    EXPECT_EQ(round_to_fp16(h), h);
    EXPECT_NEAR(h, v, std::abs(v) * 1e-3f + 1e-4f);
  }
}

TEST(Bits, Fp16FlipInvolution) {
  for (int bit = 0; bit < kHalfBits; ++bit) {
    const float v = round_to_fp16(0.375f);
    const float flipped = flip_fp16_bit(v, bit);
    EXPECT_EQ(flip_fp16_bit(flipped, bit), v) << "bit " << bit;
  }
}

// ----------------------------------------------------------------- stats ----

TEST(Stats, WilsonKnownValue) {
  // 50/100 at 95%: interval approx [0.404, 0.596].
  const auto p = wilson_interval(50, 100, 1.959964);
  EXPECT_NEAR(p.value, 0.5, 1e-9);
  EXPECT_NEAR(p.lo, 0.404, 0.002);
  EXPECT_NEAR(p.hi, 0.596, 0.002);
}

TEST(Stats, WilsonZeroSuccesses) {
  const auto p = wilson_interval(0, 1000);
  EXPECT_EQ(p.value, 0.0);
  EXPECT_EQ(p.lo, 0.0);
  EXPECT_GT(p.hi, 0.0);
  EXPECT_LT(p.hi, 0.02);
}

TEST(Stats, WilsonNarrowsWithSamples) {
  const auto small = wilson_interval(10, 1000);
  const auto large = wilson_interval(10000, 1000000);
  EXPECT_LT(large.half_width(), small.half_width());
}

TEST(Stats, WilsonPaperScaleErrorBar) {
  // Paper Sec. IV-A: ~10^7 injections per network with <0.2% error bars at
  // 99% confidence on a ~1% proportion. Verify the claim's arithmetic.
  const auto p = wilson_interval(178333, 17833333);  // 1% of 17.8M trials
  EXPECT_LT(p.half_width(), 0.002);
}

TEST(Stats, WilsonValidation) {
  EXPECT_THROW(wilson_interval(1, 0), Error);
  EXPECT_THROW(wilson_interval(5, 4), Error);
}

// Property: at a fixed success ratio, the interval narrows strictly as the
// trial count grows (more evidence can only tighten the error bar).
TEST(Stats, WilsonWidthMonotoneInTrials) {
  for (const double z : {1.959964, kZ99}) {
    double prev = 1.0;
    for (std::uint64_t n : {10u, 100u, 1000u, 10000u, 100000u}) {
      const auto p = wilson_interval(n / 5, n, z);
      EXPECT_LT(p.half_width(), prev) << "n=" << n << " z=" << z;
      prev = p.half_width();
    }
  }
}

// Property: success/failure symmetry. Counting failures instead of
// successes mirrors the interval around 1/2: lo(k, n) == 1 - hi(n-k, n).
TEST(Stats, WilsonSuccessFailureSymmetry) {
  for (std::uint64_t n : {1u, 2u, 7u, 64u, 1000u}) {
    for (std::uint64_t k = 0; k <= n; k = k * 2 + 1) {
      const auto p = wilson_interval(k, n);
      const auto q = wilson_interval(n - k, n);
      EXPECT_NEAR(p.lo, 1.0 - q.hi, 1e-12) << "k=" << k << " n=" << n;
      EXPECT_NEAR(p.hi, 1.0 - q.lo, 1e-12) << "k=" << k << " n=" << n;
    }
  }
}

// Property: the interval always contains the point estimate k/n and stays
// inside [0, 1].
TEST(Stats, WilsonContainsPointEstimate) {
  for (std::uint64_t n : {1u, 3u, 12u, 64u, 4096u}) {
    for (std::uint64_t k = 0; k <= n; k += std::max<std::uint64_t>(1, n / 7)) {
      const auto p = wilson_interval(k, n);
      EXPECT_LE(p.lo, p.value) << "k=" << k << " n=" << n;
      EXPECT_GE(p.hi, p.value) << "k=" << k << " n=" << n;
      EXPECT_GE(p.lo, 0.0);
      EXPECT_LE(p.hi, 1.0);
    }
  }
}

// Edges: k = 0 pins the lower bound to exactly 0, k = n pins the upper
// bound to exactly 1, and the degenerate n = 1 interval is near-vacuous but
// still ordered.
TEST(Stats, WilsonEdgeCases) {
  for (std::uint64_t n : {1u, 10u, 1000u}) {
    const auto zero = wilson_interval(0, n);
    EXPECT_EQ(zero.lo, 0.0) << "n=" << n;
    EXPECT_GT(zero.hi, 0.0) << "n=" << n;
    const auto all = wilson_interval(n, n);
    EXPECT_EQ(all.hi, 1.0) << "n=" << n;
    EXPECT_LT(all.lo, 1.0) << "n=" << n;
  }
  const auto single = wilson_interval(1, 1);
  EXPECT_EQ(single.value, 1.0);
  EXPECT_GT(single.hi - single.lo, 0.5);  // one trial proves almost nothing
}

// A single full-weight stratum must agree with the plain Wilson interval on
// the point estimate, and its pooled interval must CONTAIN the Wilson one
// (the pooled margin is the larger Wilson half applied to both sides).
TEST(Stats, StratifiedSingleStratumContainsWilson) {
  const StratumEstimate s{.weight = 1.0, .corruptions = 3, .trials = 40};
  const auto pooled = stratified_interval({&s, 1});
  const auto w = wilson_interval(3, 40);
  EXPECT_DOUBLE_EQ(pooled.value, w.value);
  EXPECT_LE(pooled.lo, w.lo);
  EXPECT_GE(pooled.hi, w.hi);
}

// Regression: a stratum with zero sampled trials contributes the vacuous
// [0, 1] interval, not a silent nothing — a lone unsampled stratum yields
// exactly [0, 1].
TEST(Stats, StratifiedZeroTrialStratumIsVacuous) {
  const StratumEstimate s{.weight = 1.0, .corruptions = 0, .trials = 0};
  const auto pooled = stratified_interval({&s, 1});
  EXPECT_EQ(pooled.value, 0.0);
  EXPECT_EQ(pooled.lo, 0.0);
  EXPECT_EQ(pooled.hi, 1.0);
}

// Regression: unsampled mass widens the UPPER bound only (its point
// contribution is 0 and the true mean cannot sit below that), and widens it
// strictly more than a well-sampled all-clear stratum would.
TEST(Stats, StratifiedZeroTrialWidensUpperBoundOnly) {
  const StratumEstimate sampled{.weight = 0.5, .corruptions = 5, .trials = 100};
  const StratumEstimate unsampled{.weight = 0.5, .corruptions = 0, .trials = 0};
  const StratumEstimate clear{.weight = 0.5, .corruptions = 0, .trials = 1000};
  const StratumEstimate with_hole[] = {sampled, unsampled};
  const StratumEstimate without[] = {sampled, clear};
  const auto hole = stratified_interval(with_hole);
  const auto full = stratified_interval(without);
  EXPECT_DOUBLE_EQ(hole.value, full.value);  // both contribute 0 to the mean
  EXPECT_GT(hole.hi, full.hi);               // missing evidence costs upside
  EXPECT_GE(hole.lo, full.lo);               // but never fakes a lower bound
  EXPECT_THROW(stratified_interval({}), Error);
}

TEST(Stats, RunningStatMatchesClosedForm) {
  RunningStat st;
  for (double v : {1.0, 2.0, 3.0, 4.0}) st.add(v);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(st.min(), 1.0);
  EXPECT_EQ(st.max(), 4.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

// ---------------------------------------------------------- strict parse ----

TEST(Parse, IntAcceptsPlainDecimals) {
  EXPECT_EQ(util::parse_int("0"), 0);
  EXPECT_EQ(util::parse_int("1200"), 1200);
  EXPECT_EQ(util::parse_int("-42"), -42);
  EXPECT_EQ(util::parse_int("7", 1, 10), 7);
}

TEST(Parse, IntRejectsGarbageThatAtollAcceptsAsZero) {
  // The regression: atoll("abc") == 0, so "--trials abc" silently ran a
  // zero-trial campaign. Strict parsing must refuse all of these.
  EXPECT_FALSE(util::parse_int("abc").has_value());
  EXPECT_FALSE(util::parse_int("").has_value());
  EXPECT_FALSE(util::parse_int("12x").has_value());
  EXPECT_FALSE(util::parse_int("1 2").has_value());
  EXPECT_FALSE(util::parse_int("12.5").has_value());
  EXPECT_FALSE(util::parse_int("99999999999999999999").has_value());
}

TEST(Parse, IntEnforcesRange) {
  EXPECT_FALSE(util::parse_int("0", 1, 10).has_value());
  EXPECT_FALSE(util::parse_int("11", 1, 10).has_value());
  EXPECT_EQ(util::parse_int("10", 1, 10), 10);
}

TEST(Parse, UintRejectsNegativeInsteadOfWrapping) {
  // strtoull("-1") silently wraps to 2^64-1; parse_uint must refuse.
  EXPECT_FALSE(util::parse_uint("-1").has_value());
  EXPECT_FALSE(util::parse_uint("+1").has_value());
  EXPECT_FALSE(util::parse_uint("abc").has_value());
  EXPECT_FALSE(util::parse_uint("").has_value());
  EXPECT_EQ(util::parse_uint("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(util::parse_uint("18446744073709551616").has_value());
}

// --------------------------------------------------------------- file io ----

TEST(FileIo, AtomicWriteReplacesContentAndLeavesNoTemp) {
  const std::string path = "/tmp/pfi_test_fileio_atomic.bin";
  std::remove(path.c_str());
  util::atomic_write_file(path, "first");
  EXPECT_EQ(util::read_file(path), "first");
  util::atomic_write_file(path, "second, longer payload");
  EXPECT_EQ(util::read_file(path), "second, longer payload");
  EXPECT_FALSE(util::file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FileIo, AppendSyncGrowsAndReportsSize) {
  const std::string path = "/tmp/pfi_test_fileio_append.bin";
  std::remove(path.c_str());
  EXPECT_EQ(util::file_size(path), -1);
  EXPECT_EQ(util::append_file_sync(path, "abc"), 3u);
  EXPECT_EQ(util::append_file_sync(path, "defgh"), 8u);
  EXPECT_EQ(util::file_size(path), 8);
  EXPECT_EQ(util::read_file(path), "abcdefgh");
  std::remove(path.c_str());
}

TEST(FileIo, TruncateDropsTornTail) {
  const std::string path = "/tmp/pfi_test_fileio_trunc.bin";
  std::remove(path.c_str());
  util::append_file_sync(path, "committed\n{torn");
  util::truncate_file(path, 10);
  EXPECT_EQ(util::read_file(path), "committed\n");
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileThrows) {
  EXPECT_THROW(util::read_file("/tmp/pfi_test_fileio_missing.bin"), Error);
  EXPECT_FALSE(util::file_exists("/tmp/pfi_test_fileio_missing.bin"));
}

TEST(FileIo, EnsureDirCreatesNestedAndIsIdempotent) {
  const std::string parent = "/tmp/pfi_test_ensure_dir";
  const std::string nested = parent + "/a/b";
  ::rmdir(nested.c_str());
  ::rmdir((parent + "/a").c_str());
  ::rmdir(parent.c_str());
  util::ensure_dir(nested);
  EXPECT_NO_THROW(util::ensure_dir(nested));  // already exists: fine
  const std::string probe = nested + "/probe";
  util::atomic_write_file(probe, "x");
  EXPECT_EQ(util::read_file(probe), "x");
  std::remove(probe.c_str());
  ::rmdir(nested.c_str());
  ::rmdir((parent + "/a").c_str());
  ::rmdir(parent.c_str());
}

// --------------------------------------------------------------- strings ----

TEST(JsonEscape, RoundTripsEveryByteClass) {
  std::string all;
  for (int c = 1; c < 128; ++c) all.push_back(static_cast<char>(c));
  EXPECT_EQ(util::json_unescape(util::json_escape(all)), all);
}

TEST(JsonEscape, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(util::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::json_escape("line\nfeed\ttab\rcr"),
            "line\\nfeed\\ttab\\rcr");
  EXPECT_EQ(util::json_escape(std::string(1, '\x01')), "\\u0001");
  // The escaped form has no control bytes and no unescaped quote — i.e. it
  // is always safe inside a JSON string literal.
  std::string hostile = "\"\\\n\r\t\x02\x1f";
  const std::string esc = util::json_escape(hostile);
  for (std::size_t i = 0; i < esc.size(); ++i) {
    EXPECT_GE(static_cast<unsigned char>(esc[i]), 0x20u);
    if (esc[i] == '"') {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(esc[i - 1], '\\');
    }
  }
  EXPECT_EQ(util::json_unescape(esc), hostile);
}

TEST(JsonEscape, UnescapeRejectsMalformedInput) {
  EXPECT_THROW(util::json_unescape("dangling\\"), Error);
  EXPECT_THROW(util::json_unescape("\\q"), Error);
  EXPECT_THROW(util::json_unescape("\\u00"), Error);
  EXPECT_THROW(util::json_unescape("\\u0080"), Error);  // non-ASCII refused
}

TEST(Fnv1a, MatchesReferenceVectorsAndChains) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(util::fnv1a(""), 14695981039346656037ull);
  EXPECT_EQ(util::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::fnv1a("foobar"), 0x85944171f73967e8ull);
  // Incremental chaining equals one-shot hashing — the property the shard
  // log digest relies on (one wave appended per commit).
  const std::string a = "first wave\n", b = "second wave\n";
  EXPECT_EQ(util::fnv1a(b, util::fnv1a(a)), util::fnv1a(a + b));
  EXPECT_NE(util::fnv1a(a + b), util::fnv1a(b + a));
}

TEST(Fnv1a, SensitiveToEveryByte) {
  const std::string base(64, 'x');
  const std::uint64_t h = util::fnv1a(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string mutated = base;
    mutated[i] ^= 1;
    EXPECT_NE(util::fnv1a(mutated), h) << "byte " << i;
  }
}

// ------------------------------------------------------- env knobs ----------
// The bench/example front ends read their PFI_* parameters through
// util/env.hpp. The regression pinned here: atoll-era parsing read
// PFI_SHARDS=4x as 4 and PFI_TRIALS=abc as 0; the strict helpers must throw
// instead, naming the variable.

TEST(ParseEnv, FallsBackWhenUnset) {
  unsetenv("PFI_TEST_KNOB");
  EXPECT_EQ(util::env_int("PFI_TEST_KNOB", 7), 7);
  EXPECT_EQ(util::env_uint("PFI_TEST_KNOB", 9u), 9u);
  EXPECT_DOUBLE_EQ(util::env_double("PFI_TEST_KNOB", 0.5), 0.5);
  EXPECT_EQ(util::env_str("PFI_TEST_KNOB", "dflt"), "dflt");
}

TEST(ParseEnv, ParsesWellFormedValues) {
  setenv("PFI_TEST_KNOB", "42", 1);
  EXPECT_EQ(util::env_int("PFI_TEST_KNOB", 0), 42);
  EXPECT_EQ(util::env_uint("PFI_TEST_KNOB", 0), 42u);
  setenv("PFI_TEST_KNOB", "-3", 1);
  EXPECT_EQ(util::env_int("PFI_TEST_KNOB", 0), -3);
  setenv("PFI_TEST_KNOB", "1e-3", 1);
  EXPECT_DOUBLE_EQ(util::env_double("PFI_TEST_KNOB", 0.0), 1e-3);
  unsetenv("PFI_TEST_KNOB");
}

TEST(ParseEnv, RejectsTrailingJunkLoudly) {
  setenv("PFI_TEST_KNOB", "4x", 1);
  EXPECT_THROW(util::env_int("PFI_TEST_KNOB", 0), Error);  // atoll read 4
  EXPECT_THROW(util::env_uint("PFI_TEST_KNOB", 0), Error);
  setenv("PFI_TEST_KNOB", "abc", 1);
  EXPECT_THROW(util::env_int("PFI_TEST_KNOB", 0), Error);  // atoll read 0
  setenv("PFI_TEST_KNOB", "1.5.2", 1);
  EXPECT_THROW(util::env_double("PFI_TEST_KNOB", 0.0), Error);
  setenv("PFI_TEST_KNOB", "nan", 1);
  EXPECT_THROW(util::env_double("PFI_TEST_KNOB", 0.0), Error);
  unsetenv("PFI_TEST_KNOB");
}

TEST(ParseEnv, RejectsOutOfRangeAndNamesTheVariable) {
  setenv("PFI_TEST_KNOB", "99", 1);
  EXPECT_THROW(util::env_int("PFI_TEST_KNOB", 0, 0, 10), Error);
  try {
    util::env_int("PFI_TEST_KNOB", 0, 0, 10);
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("PFI_TEST_KNOB"), std::string::npos);
  }
  setenv("PFI_TEST_KNOB", "0.5", 1);
  EXPECT_THROW(util::env_double("PFI_TEST_KNOB", 0.6, 0.6, 1.0), Error);
  unsetenv("PFI_TEST_KNOB");
}

}  // namespace
}  // namespace pfi
