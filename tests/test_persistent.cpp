// Tests for the persistent-fault subsystem (core/persistent.hpp): the
// FaultInjector's persistent write/stuck-bit/heal API, golden checked-in
// traces for each fault process across all four dtypes, fleet-campaign
// determinism (thread count x prefix cache x kill/resume), native-int8
// deployed-code corruption, and bit-exact trace replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/persistent.hpp"
#include "models/zoo.hpp"
#include "nn/conv2d.hpp"
#include "util/bits.hpp"
#include "util/fileio.hpp"

namespace pfi::core {
namespace {

using models::make_model;

FiConfig persist_config(DType dtype = DType::kFloat32, bool native = false,
                        bool prefix_cache = true) {
  FiConfig cfg{.input_shape = {3, 32, 32}, .batch_size = 4, .dtype = dtype};
  cfg.native = native;
  cfg.prefix_cache = prefix_cache;
  return cfg;
}

// ------------------------------------------------- injector primitives ----

TEST(PersistInjector, WriteSurvivesClearAndHealsBitExact) {
  Rng rng(90);
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config());
  auto& conv = static_cast<nn::Conv2d&>(fi.layer(2));
  const float golden = conv.weight().value.data()[7];

  const auto w = fi.write_persistent_bit(2, 7, 30, -1, 0, "test");
  EXPECT_EQ(w.pre, golden);
  EXPECT_EQ(float_to_bits(w.post), float_to_bits(flip_float_bit(golden, 30)));
  EXPECT_EQ(conv.weight().value.data()[7], w.post);
  EXPECT_EQ(fi.active_persistent_faults(), 1u);

  // clear() removes transient faults only: the persistent write stays.
  fi.clear();
  EXPECT_EQ(conv.weight().value.data()[7], w.post);
  EXPECT_EQ(fi.active_persistent_faults(), 1u);

  fi.heal_persistent_faults();
  EXPECT_EQ(float_to_bits(conv.weight().value.data()[7]),
            float_to_bits(golden));
  EXPECT_EQ(fi.active_persistent_faults(), 0u);
}

TEST(PersistInjector, StuckBitReassertsAfterOverwrite) {
  Rng rng(90);
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config());
  auto& conv = static_cast<nn::Conv2d&>(fi.layer(2));
  float& cell = conv.weight().value.data()[11];

  fi.register_stuck_bit(2, 11, 21, 1);
  fi.write_persistent_bit(2, 11, 21, 1, 0, "stuck_at_bit[21=1]");
  const float stuck = cell;
  EXPECT_NE(float_to_bits(stuck) & (1u << 21), 0u);

  // A later write to the same cell cannot release the stuck bit: the next
  // re-assertion (clear() runs one) forces it back.
  cell = bits_to_float(float_to_bits(stuck) & ~(1u << 21));
  fi.clear();
  EXPECT_NE(float_to_bits(cell) & (1u << 21), 0u);

  fi.heal_persistent_faults();
  EXPECT_EQ(fi.active_persistent_faults(), 0u);
}

TEST(PersistInjector, RejectsOutOfRangeCellsAndBits) {
  Rng rng(90);
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi16(net, persist_config(DType::kFloat16));
  EXPECT_THROW(fi16.write_persistent_bit(2, 0, 28, -1, 0, "t"), Error);
  EXPECT_THROW(fi16.write_persistent_bit(2, -1, 0, -1, 0, "t"), Error);
  EXPECT_THROW(fi16.write_persistent_bit(99, 0, 0, -1, 0, "t"), Error);
  EXPECT_THROW(fi16.register_stuck_bit(2, 0, 16, 1), Error);
  EXPECT_NO_THROW(fi16.write_persistent_bit(2, 0, 15, -1, 0, "t"));
  fi16.heal_persistent_faults();
}

TEST(PersistScenarioValidation, RejectsMalformedProcesses) {
  Rng rng(90);
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config());
  PersistScenario bad;
  bad.ber = 1.0;
  EXPECT_THROW(PersistentFaultSet(fi, bad), Error);
  bad = PersistScenario{};
  bad.stuck_value = 2;
  EXPECT_THROW(PersistentFaultSet(fi, bad), Error);
  bad = PersistScenario{};
  bad.layer = 99;
  EXPECT_THROW(PersistentFaultSet(fi, bad), Error);
}

// ---------------------------------------------------------- golden traces ----

/// Advance one persistent scenario through three events on a fixed
/// squeezenet and return the emitted trace; each process x dtype is pinned
/// byte-for-byte below. Regenerate with PFI_PERSIST_PRINT_GOLDEN=1 after an
/// intentional change (the test prints paste-ready table entries).
std::string persist_trace(const PersistScenario& scenario, DType dtype) {
  Rng rng(90);
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config(dtype));
  trace::TraceSink sink;
  fi.set_trace_sink(&sink);
  {
    PersistentFaultSet faults(fi, scenario);
    faults.advance_to(3);
  }
  fi.set_trace_sink(nullptr);
  return trace::trace_to_jsonl(sink.events());
}

PersistScenario scenario_by_id(const std::string& id) {
  PersistScenario sc;
  if (id == "ber") {
    // Layer 9 is squeezenet's largest conv (3456 weights): the rate is
    // tuned so every dtype's bit space (int8's is 4x smaller than fp32's)
    // draws at least one upset within the three pinned events.
    sc.layer = 9;
    sc.ber = 1.5e-5;
  } else if (id == "stuck_at") {
    sc.layer = 9;
    sc.stuck_bits = 2;
    sc.stuck_value = 1;
  } else if (id == "distance") {
    // The byte walk needs a stride well under the smallest container
    // (layer 2 holds 128 weights = 128 bytes at int8).
    sc.layer = 2;
    sc.distance_mean = 100.0;
    sc.distance_stddev = 10.0;
  } else {
    PFI_CHECK(false) << "unknown golden scenario id '" << id << "'";
  }
  return sc;
}

struct PersistGoldenCase {
  const char* id;
  DType dtype;
  const char* jsonl;
};

const PersistGoldenCase kPersistGolden[] = {
    // PERSIST_GOLDEN_BEGIN
    {"ber", DType::kFloat32,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[5,0,2,0],"flat":726,"bit":30,"pre":0.0797340497,"pre_bits":"3da34b9b","post":2.71320912e+37,"post_bits":"7da34b9b","model":"ber[1.5e-05]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[13,13,0,2],"flat":1991,"bit":19,"pre":0.0908016488,"pre_bits":"3db9f637","post":0.0868953988,"post_bits":"3db1f637","model":"ber[1.5e-05]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[19,7,1,1],"flat":2803,"bit":6,"pre":0.0397302955,"pre_bits":"3d22bc3c","post":0.039730534,"post_bits":"3d22bc7c","model":"ber[1.5e-05]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[4,11,0,0],"flat":675,"bit":17,"pre":0.00781282783,"pre_bits":"3c000160","post":0.00793489814,"post_bits":"3c020160","model":"ber[1.5e-05]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[6,1,2,1],"flat":880,"bit":28,"pre":0.119710945,"pre_bits":"3df52b03","post":2.78723763e-11,"post_bits":"2df52b03","model":"ber[1.5e-05]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[11,11,1,0],"flat":1686,"bit":0,"pre":0.0913104713,"pre_bits":"3dbb00fc","post":0.0913104787,"post_bits":"3dbb00fd","model":"ber[1.5e-05]","time":2}
)json"},
    {"ber", DType::kInt8,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"int8","coords":[20,3,0,0],"flat":2907,"bit":6,"pre":0.0876563862,"pre_bits":"3db38531","post":0.292346686,"post_bits":"3e95ae77","model":"ber[1.5e-05]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"int8","coords":[18,12,0,2],"flat":2702,"bit":1,"pre":-0.0395705998,"pre_bits":"bd2214c8","post":-0.0317768119,"post_bits":"bd022867","model":"ber[1.5e-05]","time":2}
)json"},
    {"ber", DType::kFloat16,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp16","coords":[10,1,1,1],"flat":1453,"bit":14,"pre":-0.273232967,"pre_bits":"be8be531","post":-17904,"post_bits":"c68be000","model":"ber[1.5e-05]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp16","coords":[9,6,0,1],"flat":1351,"bit":1,"pre":-0.03556858,"pre_bits":"bd11b05c","post":-0.0355224609,"post_bits":"bd118000","model":"ber[1.5e-05]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp16","coords":[12,3,2,0],"flat":1761,"bit":12,"pre":-0.0546324737,"pre_bits":"bd5fc64d","post":-0.874023438,"post_bits":"bf5fc000","model":"ber[1.5e-05]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp16","coords":[23,6,2,0],"flat":3372,"bit":0,"pre":-0.269329011,"pre_bits":"be89e57e","post":-0.269042969,"post_bits":"be89c000","model":"ber[1.5e-05]","time":2}
)json"},
    {"ber", DType::kBFloat16,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"bf16","coords":[10,1,1,1],"flat":1453,"bit":14,"pre":-0.273232967,"pre_bits":"be8be531","post":-9.30459597e+37,"post_bits":"fe8c0000","model":"ber[1.5e-05]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"bf16","coords":[9,6,0,1],"flat":1351,"bit":1,"pre":-0.03556858,"pre_bits":"bd11b05c","post":-0.03515625,"post_bits":"bd100000","model":"ber[1.5e-05]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"bf16","coords":[12,3,2,0],"flat":1761,"bit":12,"pre":-0.0546324737,"pre_bits":"bd5fc64d","post":-1.27329258e-11,"post_bits":"ad600000","model":"ber[1.5e-05]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"bf16","coords":[23,6,2,0],"flat":3372,"bit":0,"pre":-0.269329011,"pre_bits":"be89e57e","post":-0.271484375,"post_bits":"be8b0000","model":"ber[1.5e-05]","time":2}
)json"},
    {"stuck_at", DType::kFloat32,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[13,1,2,2],"flat":1889,"bit":-1,"pre":0.0421249457,"pre_bits":"3d2c8b35","post":0.0421249457,"post_bits":"3d2c8b35","model":"stuck_at_bit[8=1]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp32","coords":[10,6,0,0],"flat":1494,"bit":10,"pre":-0.0326853357,"pre_bits":"bd05e10f","post":-0.0326891504,"post_bits":"bd05e50f","model":"stuck_at_bit[10=1]","time":0}
)json"},
    {"stuck_at", DType::kInt8,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"int8","coords":[13,1,2,2],"flat":1889,"bit":-1,"pre":0.0421249457,"pre_bits":"3d2c8b35","post":0.0413098559,"post_bits":"3d293486","model":"stuck_at_bit[2=1]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"int8","coords":[10,6,0,0],"flat":1494,"bit":-1,"pre":-0.0326853357,"pre_bits":"bd05e10f","post":-0.0317768119,"post_bits":"bd022867","model":"stuck_at_bit[2=1]","time":0}
)json"},
    {"stuck_at", DType::kFloat16,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp16","coords":[13,1,2,2],"flat":1889,"bit":4,"pre":0.0421249457,"pre_bits":"3d2c8b35","post":0.0426025391,"post_bits":"3d2e8000","model":"stuck_at_bit[4=1]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"fp16","coords":[10,6,0,0],"flat":1494,"bit":-1,"pre":-0.0326853357,"pre_bits":"bd05e10f","post":-0.0326843262,"post_bits":"bd05e000","model":"stuck_at_bit[5=1]","time":0}
)json"},
    {"stuck_at", DType::kBFloat16,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"bf16","coords":[13,1,2,2],"flat":1889,"bit":4,"pre":0.0421249457,"pre_bits":"3d2c8b35","post":0.0461425781,"post_bits":"3d3d0000","model":"stuck_at_bit[4=1]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":9,"layer_name":"squeezenet.5.1.branch1.0","layer_kind":"Conv2d","dtype":"bf16","coords":[10,6,0,0],"flat":1494,"bit":5,"pre":-0.0326853357,"pre_bits":"bd05e10f","post":-0.0405273438,"post_bits":"bd260000","model":"stuck_at_bit[5=1]","time":0}
)json"},
    {"distance", DType::kFloat32,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[2,7,0,0],"flat":23,"bit":8,"pre":0.0504487753,"pre_bits":"3d4ea360","post":0.0504478216,"post_bits":"3d4ea260","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[6,0,0,0],"flat":48,"bit":21,"pre":0.0835203901,"pre_bits":"3dab0cbd","post":0.0678953901,"post_bits":"3d8b0cbd","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[8,6,0,0],"flat":70,"bit":10,"pre":1.22735608,"pre_bits":"3f9d1a01","post":1.22747815,"post_bits":"3f9d1e01","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[11,6,0,0],"flat":94,"bit":12,"pre":-0.130988479,"pre_bits":"be0621d8","post":-0.131049514,"post_bits":"be0631d8","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[14,6,0,0],"flat":118,"bit":11,"pre":-0.0666128471,"pre_bits":"bd886c51","post":-0.0665975884,"post_bits":"bd886451","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[3,0,0,0],"flat":24,"bit":20,"pre":-0.485734493,"pre_bits":"bef8b231","post":-0.454484493,"post_bits":"bee8b231","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[6,2,0,0],"flat":50,"bit":19,"pre":-0.682308912,"pre_bits":"bf2eabcc","post":-0.651058912,"post_bits":"bf26abcc","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[9,0,0,0],"flat":72,"bit":7,"pre":-0.224440277,"pre_bits":"be65d3ac","post":-0.224438369,"post_bits":"be65d32c","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[12,2,0,0],"flat":98,"bit":10,"pre":-1.1320678,"pre_bits":"bf90e799","post":-1.13194573,"post_bits":"bf90e399","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[15,4,0,0],"flat":124,"bit":14,"pre":0.773067653,"pre_bits":"3f45e7c3","post":0.772091091,"post_bits":"3f45a7c3","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[2,6,0,0],"flat":22,"bit":13,"pre":0.613343477,"pre_bits":"3f1d0414","post":0.613831758,"post_bits":"3f1d2414","model":"distance[100,10]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[5,6,0,0],"flat":46,"bit":11,"pre":0.273706049,"pre_bits":"3e8c2333","post":0.273767084,"post_bits":"3e8c2b33","model":"distance[100,10]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[8,6,0,0],"flat":70,"bit":12,"pre":1.22747815,"pre_bits":"3f9d1e01","post":1.22698987,"post_bits":"3f9d0e01","model":"distance[100,10]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[11,7,0,0],"flat":95,"bit":29,"pre":-0.262469709,"pre_bits":"be86626e","post":-1.42285114e-20,"post_bits":"9e86626e","model":"distance[100,10]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[15,1,0,0],"flat":121,"bit":11,"pre":-0.32304126,"pre_bits":"bea565aa","post":-0.323102295,"post_bits":"bea56daa","model":"distance[100,10]","time":2}
)json"},
    {"distance", DType::kInt8,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[11,5,0,0],"flat":93,"bit":0,"pre":1.22491276,"pre_bits":"3f9cc9f1","post":1.21057916,"post_bits":"3f9af442","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[12,2,0,0],"flat":98,"bit":4,"pre":-1.1320678,"pre_bits":"bf90e799","post":-1.30785787,"post_bits":"bfa767e3","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[11,1,0,0],"flat":89,"bit":5,"pre":-0.173251942,"pre_bits":"be3168f5","post":-0.51881963,"post_bits":"bf04d15d","model":"distance[100,10]","time":2}
)json"},
    {"distance", DType::kFloat16,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[5,6,0,0],"flat":46,"bit":8,"pre":0.273706049,"pre_bits":"3e8c2333","post":0.336181641,"post_bits":"3eac2000","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[12,1,0,0],"flat":97,"bit":5,"pre":-0.424591184,"pre_bits":"bed96404","post":-0.432373047,"post_bits":"bedd6000","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[6,1,0,0],"flat":49,"bit":4,"pre":0.00853983872,"pre_bits":"3c0beaae","post":0.00841522217,"post_bits":"3c09e000","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[12,5,0,0],"flat":101,"bit":3,"pre":-0.873783588,"pre_bits":"bf5fb048","post":-0.870117188,"post_bits":"bf5ec000","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[5,4,0,0],"flat":44,"bit":13,"pre":-0.420602232,"pre_bits":"bed7592d","post":-0.00164318085,"post_bits":"bad76000","model":"distance[100,10]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[11,4,0,0],"flat":92,"bit":11,"pre":0.664188385,"pre_bits":"3f2a0840","post":0.166015625,"post_bits":"3e2a0000","model":"distance[100,10]","time":2}
)json"},
    {"distance", DType::kBFloat16,
     R"json({"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[5,6,0,0],"flat":46,"bit":8,"pre":0.273706049,"pre_bits":"3e8c2333","post":1.09375,"post_bits":"3f8c0000","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[12,1,0,0],"flat":97,"bit":5,"pre":-0.424591184,"pre_bits":"bed96404","post":-0.486328125,"post_bits":"bef90000","model":"distance[100,10]","time":0}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[6,1,0,0],"flat":49,"bit":4,"pre":0.00853983872,"pre_bits":"3c0beaae","post":0.00952148438,"post_bits":"3c1c0000","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[12,5,0,0],"flat":101,"bit":3,"pre":-0.873783588,"pre_bits":"bf5fb048","post":-0.90625,"post_bits":"bf680000","model":"distance[100,10]","time":1}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[5,4,0,0],"flat":44,"bit":13,"pre":-0.420602232,"pre_bits":"bed7592d","post":-2.27640105e-20,"post_bits":"9ed70000","model":"distance[100,10]","time":2}
{"trial":0,"attempt":0,"rep":0,"kind":"persist","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[11,4,0,0],"flat":92,"bit":11,"pre":0.664188385,"pre_bits":"3f2a0840","post":1.01327896e-05,"post_bits":"372a0000","model":"distance[100,10]","time":2}
)json"},
    // PERSIST_GOLDEN_END
};

TEST(PersistGolden, EveryFaultProcessMatchesItsCheckedInTrace) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  ASSERT_EQ(std::size(kPersistGolden), 12u)
      << "expected 3 fault processes x {fp32, int8, fp16, bf16}";
  const bool print = std::getenv("PFI_PERSIST_PRINT_GOLDEN") != nullptr;
  for (const auto& c : kPersistGolden) {
    const std::string got = persist_trace(scenario_by_id(c.id), c.dtype);
    EXPECT_FALSE(got.empty()) << c.id << " @ " << dtype_name(c.dtype);
    if (print) {
      std::printf("    {\"%s\", DType::k%s,\n     R\"json(%s)json\"},\n",
                  c.id,
                  c.dtype == DType::kFloat32   ? "Float32"
                  : c.dtype == DType::kInt8    ? "Int8"
                  : c.dtype == DType::kFloat16 ? "Float16"
                                               : "BFloat16",
                  got.c_str());
      continue;
    }
    EXPECT_EQ(got, c.jsonl) << c.id << " @ " << dtype_name(c.dtype);
  }
}

// The same scenario advanced twice from a healed injector reproduces the
// same trace: every fault is a pure function of (seed, event index), not of
// accumulated generator state.
TEST(PersistGolden, AdvanceIsAPureFunctionOfSeedAndEvent) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  const auto sc = scenario_by_id("ber");
  EXPECT_EQ(persist_trace(sc, DType::kFloat32),
            persist_trace(sc, DType::kFloat32));
}

// ------------------------------------------------------ fleet determinism ----

struct FleetRun {
  FleetResult result;
  std::string jsonl;
};

FleetRun fleet_run(std::int64_t threads, bool prefix_cache,
                   CampaignCheckpointer* ckpt = nullptr,
                   trace::TraceSink* sink = nullptr) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net,
                   persist_config(DType::kFloat32, false, prefix_cache));
  trace::TraceSink local;
  if (sink == nullptr) sink = &local;
  FleetCampaignConfig cfg;
  cfg.horizon = 20;
  cfg.scenario.ber = 2e-5;
  cfg.scenario.stuck_bits = 2;
  cfg.batch_size = 4;
  cfg.seed = 91;
  cfg.threads = threads;
  cfg.trace = sink;
  cfg.checkpoint = ckpt;
  FleetRun run;
  run.result = run_fleet_campaign(fi, ds, cfg);
  run.jsonl = trace::trace_to_jsonl(sink->events());
  return run;
}

void expect_same_fleet_result(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.non_finite, b.non_finite);
  EXPECT_EQ(a.total_faults, b.total_faults);
  EXPECT_EQ(a.first_sdc, b.first_sdc);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].event, b.timeline[i].event) << "event " << i;
    EXPECT_EQ(a.timeline[i].faults, b.timeline[i].faults) << "event " << i;
    EXPECT_EQ(a.timeline[i].correct, b.timeline[i].correct) << "event " << i;
    EXPECT_EQ(a.timeline[i].rows, b.timeline[i].rows) << "event " << i;
  }
}

TEST(PersistFleet, ByteIdenticalAcrossThreadsAndPrefixCache) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  const FleetRun reference = fleet_run(1, true);
  EXPECT_GT(reference.result.total_faults, 0u);
  EXPECT_FALSE(reference.jsonl.empty());
  for (const auto& [threads, prefix] :
       {std::pair<std::int64_t, bool>{1, false},
        std::pair<std::int64_t, bool>{4, true},
        std::pair<std::int64_t, bool>{4, false}}) {
    const FleetRun run = fleet_run(threads, prefix);
    EXPECT_EQ(run.jsonl, reference.jsonl)
        << "threads=" << threads << " prefix=" << prefix;
    expect_same_fleet_result(run.result, reference.result);
  }
}

TEST(PersistFleet, TimelineAccountsEveryEventAndFault) {
  const FleetRun run = fleet_run(2, true);
  ASSERT_EQ(run.result.timeline.size(), 20u);
  std::uint64_t prev_faults = 0;
  for (std::size_t i = 0; i < run.result.timeline.size(); ++i) {
    const FleetEvent& ev = run.result.timeline[i];
    EXPECT_EQ(ev.event, i);
    EXPECT_EQ(ev.rows, 4u);
    EXPECT_LE(ev.correct, ev.rows);
    EXPECT_GE(ev.faults, prev_faults) << "faults only accumulate";
    prev_faults = ev.faults;
  }
  EXPECT_EQ(run.result.total_faults, prev_faults);
  EXPECT_EQ(run.result.rows, 80u);
}

TEST(PersistFleet, KillAndResumeReproducesByteIdenticalTrace) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  const std::string dir = "/tmp/pfi_test_persist_ckpt";
  const std::string ref_ckpt = dir + "-ref.ckpt";
  const std::string ref_trace = dir + "-ref.jsonl";
  const std::string ckpt = dir + ".ckpt";
  const std::string trace_path = dir + ".jsonl";
  for (const auto& p : {ref_ckpt, ref_trace, ckpt, trace_path}) {
    std::remove(p.c_str());
  }

  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config());
  FleetCampaignConfig cfg;
  cfg.horizon = 20;
  cfg.scenario.ber = 2e-5;
  cfg.scenario.stuck_bits = 2;
  cfg.batch_size = 4;
  cfg.seed = 91;
  cfg.threads = 1;  // wave = 8 events -> 3 commits over the horizon
  const std::uint64_t fp = fleet_campaign_fingerprint(cfg, "test");

  // Uninterrupted reference.
  trace::TraceSink ref_sink;
  CampaignCheckpointer ref(ref_ckpt, ref_trace);
  ref.begin(fp);
  cfg.trace = &ref_sink;
  cfg.checkpoint = &ref;
  const FleetResult ref_result = run_fleet_campaign(fi, ds, cfg);
  const std::string ref_bytes = util::read_file(ref_trace);
  EXPECT_FALSE(ref_bytes.empty());

  // Killed after the first committed wave, then resumed to completion.
  {
    trace::TraceSink sink;
    CampaignCheckpointer interrupted(ckpt, trace_path);
    interrupted.begin(fp);
    interrupted.fail_after_commits(1);
    cfg.trace = &sink;
    cfg.checkpoint = &interrupted;
    EXPECT_THROW(run_fleet_campaign(fi, ds, cfg), CampaignAborted);
  }
  trace::TraceSink sink;
  CampaignCheckpointer resumed(ckpt, trace_path);
  ASSERT_TRUE(resumed.resume(fp));
  EXPECT_GT(resumed.next_unit(), 0u);
  EXPECT_FALSE(resumed.done());
  cfg.trace = &sink;
  cfg.checkpoint = &resumed;
  const FleetResult res_result = run_fleet_campaign(fi, ds, cfg);

  expect_same_fleet_result(res_result, ref_result);
  EXPECT_EQ(util::read_file(trace_path), ref_bytes);

  for (const auto& p : {ref_ckpt, ref_trace, ckpt, trace_path}) {
    std::remove(p.c_str());
  }
}

// ------------------------------------------------------- native deployment ----

// Persistent faults must land in the DEPLOYED weight codes: under native
// INT8 execution the packed GEMM operands are rebuilt from the corrupted
// weights (cache invalidation), so the faulty logits differ from golden —
// and healing restores golden bit-exactly.
TEST(PersistNative, FaultsCorruptNativeInt8CodesAndHealRestores) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config(DType::kInt8, /*native=*/true));
  Rng batch_rng(7);
  const auto batch = ds.sample_batch(4, batch_rng);

  const Tensor golden = fi.forward(batch.images);

  PersistScenario sc;
  sc.ber = 2e-4;  // dense enough to guarantee visible corruption
  PersistentFaultSet faults(fi, sc);
  faults.advance_to(2);
  EXPECT_GT(faults.faults_applied(), 0u);

  const Tensor faulty = fi.forward(batch.images);
  bool differs = false;
  for (std::int64_t i = 0; i < golden.numel(); ++i) {
    if (float_to_bits(golden.data()[i]) != float_to_bits(faulty.data()[i])) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs)
      << "persistent faults did not reach the native INT8 weight codes";

  faults.heal();
  const Tensor healed = fi.forward(batch.images);
  for (std::int64_t i = 0; i < golden.numel(); ++i) {
    ASSERT_EQ(float_to_bits(golden.data()[i]),
              float_to_bits(healed.data()[i]))
        << "heal left residue at logit " << i;
  }
}

// Same property for the 16-bit native storage paths.
TEST(PersistNative, FaultsCorruptNativeFp16PathAndHealRestores) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config(DType::kFloat16, /*native=*/true));
  Rng batch_rng(7);
  const auto batch = ds.sample_batch(4, batch_rng);
  const Tensor golden = fi.forward(batch.images);

  PersistScenario sc;
  sc.ber = 2e-4;
  PersistentFaultSet faults(fi, sc);
  faults.advance_to(2);
  const Tensor faulty = fi.forward(batch.images);
  bool differs = false;
  for (std::int64_t i = 0; i < golden.numel(); ++i) {
    differs |= float_to_bits(golden.data()[i]) !=
               float_to_bits(faulty.data()[i]);
  }
  EXPECT_TRUE(differs);
  faults.heal();
  const Tensor healed = fi.forward(batch.images);
  for (std::int64_t i = 0; i < golden.numel(); ++i) {
    ASSERT_EQ(float_to_bits(golden.data()[i]),
              float_to_bits(healed.data()[i]));
  }
}

// ----------------------------------------------------------------- replay ----

// A recorded persistent trace re-asserts to the same corrupted weights: the
// replayed logits match the live run's bit-for-bit.
TEST(PersistReplay, TraceReplayReproducesCorruptedLogitsBitExactly) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config());
  Rng batch_rng(7);
  const auto batch = ds.sample_batch(4, batch_rng);

  trace::TraceSink sink;
  fi.set_trace_sink(&sink);
  Tensor live;
  {
    PersistentFaultSet faults(fi, scenario_by_id("ber"));
    faults.advance_to(3);
    live = fi.forward(batch.images).clone();
  }  // heals
  fi.set_trace_sink(nullptr);
  ASSERT_FALSE(sink.events().empty());

  trace::TraceReplayer replayer(fi);
  const Tensor replayed = replayer.replay(batch.images, sink.events());
  ASSERT_EQ(replayed.numel(), live.numel());
  for (std::int64_t i = 0; i < live.numel(); ++i) {
    ASSERT_EQ(float_to_bits(live.data()[i]), float_to_bits(replayed.data()[i]))
        << "logit " << i;
  }
  EXPECT_EQ(fi.active_persistent_faults(), 0u) << "replay must heal";
}

// The fleet campaign's merged trace carries every fault event exactly once
// (each event is traced by its one assigned worker): re-asserting the
// events with time < T reconstructs the weight state at event T.
TEST(PersistReplay, FleetTraceReconstructsMidHorizonWeightState) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, persist_config());
  trace::TraceSink sink;
  FleetCampaignConfig cfg;
  cfg.horizon = 12;
  cfg.scenario.ber = 2e-5;
  cfg.batch_size = 4;
  cfg.seed = 91;
  cfg.threads = 3;
  cfg.trace = &sink;
  run_fleet_campaign(fi, ds, cfg);

  const std::uint64_t T = 7;
  const auto batch = fleet_campaign_event_batch(ds, cfg, T);

  // Reference: a fresh scenario advanced to just past event T.
  Tensor ref;
  {
    PersistentFaultSet faults(fi, cfg.scenario);
    faults.advance_to(T + 1);
    ref = fi.forward(batch.images).clone();
  }

  // Replay: arm the merged trace's persist events with time <= T.
  std::vector<trace::InjectionEvent> upto;
  for (const auto& ev : sink.events()) {
    if (ev.kind == trace::FaultKind::kPersist && ev.time <= T) {
      upto.push_back(ev);
    }
  }
  ASSERT_FALSE(upto.empty());
  trace::TraceReplayer replayer(fi);
  const Tensor replayed = replayer.replay(batch.images, upto);
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    ASSERT_EQ(float_to_bits(ref.data()[i]), float_to_bits(replayed.data()[i]))
        << "logit " << i;
  }
}

}  // namespace
}  // namespace pfi::core
