// Tests for the pfi::trace observability layer: InjectionEvent emission,
// JSONL serialization (bit-faithful, hostile-name-proof), the golden traces
// every error model must reproduce, thread-count invariance of campaign
// traces, trace replay (the differential oracle for the hook mechanism),
// the hook-vs-PerturbationLayer differential, and the Profiler/HookTimer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/fault_injector.hpp"
#include "core/perturbation_layer.hpp"
#include "core/report.hpp"
#include "models/zoo.hpp"
#include "util/bits.hpp"
#include "util/strings.hpp"

namespace pfi::core {
namespace {

using models::make_model;

FiConfig trace_config(DType dtype = DType::kFloat32) {
  return {.input_shape = {3, 32, 32}, .batch_size = 4, .dtype = dtype};
}

// --------------------------------------------------------------- diff_bit ----

TEST(TraceDiffBit, Fp32AttributionFollowsTheWordXor) {
  const quant::QuantParams qp;
  EXPECT_EQ(trace::diff_bit(1.0f, flip_float_bit(1.0f, 30), DType::kFloat32, qp),
            30);
  EXPECT_EQ(trace::diff_bit(-2.5f, flip_float_bit(-2.5f, 0), DType::kFloat32, qp),
            0);
  // Identical values and multi-bit deltas have no single-bit attribution.
  EXPECT_EQ(trace::diff_bit(1.0f, 1.0f, DType::kFloat32, qp), -1);
  EXPECT_EQ(trace::diff_bit(
                1.0f, flip_float_bit(flip_float_bit(1.0f, 3), 17),
                DType::kFloat32, qp),
            -1);
}

TEST(TraceDiffBit, Fp16AttributionUsesTheHalfWord) {
  const quant::QuantParams qp;
  EXPECT_EQ(trace::diff_bit(1.0f, flip_fp16_bit(1.0f, 9), DType::kFloat16, qp),
            9);
  EXPECT_EQ(trace::diff_bit(1.0f, flip_fp16_bit(1.0f, 15), DType::kFloat16, qp),
            15);
}

TEST(TraceDiffBit, Bf16AttributionUsesTheBf16Word) {
  const quant::QuantParams qp;
  EXPECT_EQ(
      trace::diff_bit(1.0f, flip_bf16_bit(1.0f, 6), DType::kBFloat16, qp), 6);
  EXPECT_EQ(
      trace::diff_bit(1.0f, flip_bf16_bit(1.0f, 15), DType::kBFloat16, qp),
      15);
  // A delta below bf16 resolution collapses under rounding: no attribution.
  EXPECT_EQ(trace::diff_bit(1.0f, 1.0000001f, DType::kBFloat16, qp), -1);
}

TEST(TraceDiffBit, Int8AttributionLivesInTheQuantizedCodes) {
  const auto qp = quant::calibrate_absmax(2.0f);
  const float pre = quant::dequantize_value(64, qp);
  // Flipping code bit 5 turns 64 (0b01000000) into 96 (0b01100000).
  const float post = quant::flip_bit_int8(pre, 5, qp);
  EXPECT_EQ(trace::diff_bit(pre, post, DType::kInt8, qp), 5);
  // In the FP32 domain the same pair differs in many bits.
  EXPECT_EQ(trace::diff_bit(pre, post, DType::kFloat32, qp), -1);
}

// -------------------------------------------------------------- TraceSink ----

TEST(TraceSink, RecordStampsContextAndRespectsCompileSwitch) {
  trace::TraceSink sink;
  sink.set_context(5, 2);
  trace::InjectionEvent ev;
  ev.layer = 3;
  sink.record(ev);
  if constexpr (trace::kEnabled) {
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.events()[0].attempt, 5u);
    EXPECT_EQ(sink.events()[0].rep, 2);
    EXPECT_EQ(sink.events()[0].layer, 3);
  } else {
    // -DPFI_TRACE=OFF build: recording compiles to nothing.
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_TRUE(sink.empty());
  }
}

TEST(TraceSink, InjectorEmitsExactlyWhenTraceIsCompiledIn) {
  Rng rng(90);
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config());
  trace::TraceSink sink;
  fi.set_trace_sink(&sink);

  Rng pick(17);
  fi.declare_weight_fault(fi.random_weight_location(pick), zero_value());
  const NeuronLocation loc = fi.random_neuron_location(pick);
  fi.declare_neuron_fault(
      {.layer = loc.layer, .batch = 0, .c = loc.c, .h = loc.h, .w = loc.w},
      constant_value(3.0f));
  Rng drng(18);
  fi.forward(Tensor::rand({4, 3, 32, 32}, drng, -1.0f, 1.0f));
  fi.clear();
  fi.set_trace_sink(nullptr);

  const std::size_t expected = trace::kEnabled ? 2u : 0u;
  EXPECT_EQ(sink.size(), expected);
  if constexpr (trace::kEnabled) {
    EXPECT_EQ(sink.events()[0].kind, trace::FaultKind::kWeight);
    EXPECT_EQ(sink.events()[1].kind, trace::FaultKind::kNeuron);
    EXPECT_EQ(sink.events()[1].post, 3.0f);
    EXPECT_EQ(sink.events()[1].layer_name, fi.layer_path(sink.events()[1].layer));
  }
}

TEST(TraceSink, SplitRepsGroupsRunsByAttemptAndRep) {
  auto ev = [](std::uint64_t attempt, std::int32_t rep) {
    trace::InjectionEvent e;
    e.attempt = attempt;
    e.rep = rep;
    return e;
  };
  const std::vector<trace::InjectionEvent> stream{
      ev(0, 0), ev(0, 0), ev(0, 1), ev(2, 0), ev(2, 0), ev(3, 0)};
  const auto reps = trace::split_reps(stream);
  ASSERT_EQ(reps.size(), 4u);
  EXPECT_EQ(reps[0].size(), 2u);
  EXPECT_EQ(reps[1].size(), 1u);
  EXPECT_EQ(reps[2].size(), 2u);
  EXPECT_EQ(reps[3].size(), 1u);
}

// ------------------------------------------------------------------ JSONL ----

trace::InjectionEvent sample_event() {
  trace::InjectionEvent ev;
  ev.trial = 12;
  ev.attempt = 34;
  ev.rep = 1;
  ev.kind = trace::FaultKind::kNeuron;
  ev.layer = 5;
  ev.layer_name = "features.3";
  ev.layer_kind = "Conv2d";
  ev.dtype = DType::kFloat32;
  ev.coords[0] = 0;
  ev.coords[1] = 7;
  ev.coords[2] = 2;
  ev.coords[3] = 9;
  ev.flat = 1234;
  ev.bit = 30;
  ev.pre = 0.5f;
  ev.post = flip_float_bit(0.5f, 30);
  ev.model = "single_bit_flip[30]";
  return ev;
}

void expect_same_event(const trace::InjectionEvent& a,
                       const trace::InjectionEvent& b) {
  EXPECT_EQ(a.trial, b.trial);
  EXPECT_EQ(a.attempt, b.attempt);
  EXPECT_EQ(a.rep, b.rep);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.layer, b.layer);
  EXPECT_EQ(a.layer_name, b.layer_name);
  EXPECT_EQ(a.layer_kind, b.layer_kind);
  EXPECT_EQ(a.dtype, b.dtype);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.coords[i], b.coords[i]);
  EXPECT_EQ(a.flat, b.flat);
  EXPECT_EQ(a.bit, b.bit);
  // Bit-exact, so NaN payloads compare too.
  EXPECT_EQ(float_to_bits(a.pre), float_to_bits(b.pre));
  EXPECT_EQ(float_to_bits(a.post), float_to_bits(b.post));
  EXPECT_EQ(a.model, b.model);
}

TEST(TraceJsonl, EventRoundTripsThroughJson) {
  const auto ev = sample_event();
  expect_same_event(ev, trace::event_from_json(trace::event_to_json(ev)));
}

TEST(TraceJsonl, NonFiniteValuesSurviveBitExactly) {
  auto ev = sample_event();
  ev.pre = std::numeric_limits<float>::infinity();
  ev.post = bits_to_float(0x7fc00123u);  // NaN with a payload
  const std::string line = trace::event_to_json(ev);
  // JSON has no Inf/NaN literal: the decimal fields go null, the
  // authoritative bits fields carry the exact pattern.
  EXPECT_NE(line.find("\"pre\":null"), std::string::npos);
  EXPECT_NE(line.find("\"post\":null"), std::string::npos);
  expect_same_event(ev, trace::event_from_json(line));
}

TEST(TraceJsonl, HalfPrecisionNanPayloadsSurviveBitExactly) {
  // fp16/bf16 events store the fp32 widening of the 16-bit pattern; a NaN
  // produced by an exponent-field flip must round-trip through the
  // null-decimal / hex-bits JSONL encoding with its payload intact.
  auto ev = sample_event();
  ev.dtype = DType::kFloat16;
  ev.bit = 14;
  ev.pre = float_from_f16_bits(0x3c01);  // 1 + 2^-10
  ev.post = flip_fp16_bit(ev.pre, 14);   // exponent msb -> NaN, payload 1
  ASSERT_TRUE(std::isnan(ev.post));
  const std::string fp16_line = trace::event_to_json(ev);
  EXPECT_NE(fp16_line.find("\"post\":null"), std::string::npos);
  expect_same_event(ev, trace::event_from_json(fp16_line));
  EXPECT_EQ(f16_bits_from_float(trace::event_from_json(fp16_line).post),
            0x7c01);

  ev.dtype = DType::kBFloat16;
  ev.pre = float_from_bf16_bits(0x3f81);  // 1 + 2^-7
  ev.post = flip_bf16_bit(ev.pre, 14);
  ASSERT_TRUE(std::isnan(ev.post));
  const std::string bf16_line = trace::event_to_json(ev);
  expect_same_event(ev, trace::event_from_json(bf16_line));
  EXPECT_EQ(bf16_bits_from_float(trace::event_from_json(bf16_line).post),
            0x7f81);
}

// The regression pinned here: the parser used to accept any diff_bit the
// line claimed, so a trace asserting diff_bit=28 on an fp16 event — a bit
// that cannot exist in a 16-bit container — replayed as if it were valid.
// dtype and diff_bit must agree or the line is rejected.
TEST(TraceJsonl, RejectsDiffBitWiderThanTheDtype) {
  auto ev = sample_event();
  ev.dtype = DType::kFloat16;
  ev.bit = 28;  // valid for fp32, impossible on fp16
  EXPECT_THROW(trace::event_from_json(trace::event_to_json(ev)), Error);
  ev.bit = 16;  // first bit past the fp16 container
  EXPECT_THROW(trace::event_from_json(trace::event_to_json(ev)), Error);
  ev.dtype = DType::kBFloat16;
  EXPECT_THROW(trace::event_from_json(trace::event_to_json(ev)), Error);
  ev.dtype = DType::kInt8;
  ev.bit = 9;
  EXPECT_THROW(trace::event_from_json(trace::event_to_json(ev)), Error);
  // The same indices are fine where the container is wide enough, and the
  // no-bit-diff sentinel (-1, value faults) is always legal.
  ev.dtype = DType::kFloat32;
  ev.bit = 28;
  EXPECT_NO_THROW(trace::event_from_json(trace::event_to_json(ev)));
  ev.dtype = DType::kFloat16;
  ev.bit = -1;
  EXPECT_NO_THROW(trace::event_from_json(trace::event_to_json(ev)));
}

TEST(TraceJsonl, HostileLayerNameCannotShadowFieldsOrBreakParsing) {
  auto ev = sample_event();
  // Quotes, a comma, a newline, and text that looks like a JSON field.
  ev.layer_name = "evil\"name,\n\"flat\":999,\"post_bits\":\"00000000";
  ev.model = "model\"with\\escapes\t";
  expect_same_event(ev, trace::event_from_json(trace::event_to_json(ev)));
}

TEST(TraceJsonl, FileRoundTripPreservesTheByteStream) {
  std::vector<trace::InjectionEvent> events{sample_event(), sample_event()};
  events[1].attempt = 35;
  events[1].kind = trace::FaultKind::kWeight;
  events[1].post = -std::numeric_limits<float>::infinity();
  const std::string path = "/tmp/pfi_test_trace_roundtrip.jsonl";
  trace::write_trace_jsonl(path, events);
  const auto back = trace::read_trace_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    expect_same_event(events[i], back[i]);
  }
  EXPECT_EQ(trace::trace_to_jsonl(events), trace::trace_to_jsonl(back));
}

// A model whose conv carries a hostile name must flow through the whole
// observability stack — trace JSONL and campaign CSV — without corrupting
// either format (the regression for the old delimiter-rejecting CSV writer).
TEST(TraceJsonl, HostileModuleNameSurvivesTraceAndCsvExport) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(21);
  auto seq = std::make_shared<nn::Sequential>();
  seq->push(std::make_shared<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3,
                        .padding = 1, .bias = false},
      rng));
  seq->children()[0]->set_name("bad,\"name\"\nwith:everything");
  seq->eval();
  FaultInjector fi(seq, {.input_shape = {3, 8, 8}, .batch_size = 1});

  trace::TraceSink sink;
  fi.set_trace_sink(&sink);
  fi.declare_neuron_fault({.layer = 0, .batch = 0, .c = 1, .h = 2, .w = 3},
                          constant_value(9.0f));
  Rng drng(22);
  fi.forward(Tensor::rand({1, 3, 8, 8}, drng, -1.0f, 1.0f));
  fi.clear();
  fi.set_trace_sink(nullptr);

  ASSERT_EQ(sink.size(), 1u);
  const auto& ev = sink.events()[0];
  EXPECT_EQ(ev.layer_name, "bad,\"name\"\nwith:everything");
  expect_same_event(ev, trace::event_from_json(trace::event_to_json(ev)));

  // The same hostile name as a campaign CSV label: quoted, not rejected.
  CampaignResult r;
  r.trials = 1;
  const std::string path = "/tmp/pfi_test_trace_hostile.csv";
  write_campaign_csv(path, {{ev.layer_name, r}});
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"bad,\"\"name\"\"\nwith:everything\",1,"),
            std::string::npos)
      << content;
}

// ---------------------------------------------------------- golden traces ----

/// One-trial campaign with a fixed seed: the entire emitted trace for each
/// error model is pinned byte-for-byte below. Regenerate by printing this
/// function's return value after an intentional change.
std::string golden_trace(const ErrorModel& model, DType dtype) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto net = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(net, trace_config(dtype));
  trace::TraceSink sink;
  CampaignConfig cfg;
  cfg.trials = 1;
  cfg.error_model = model;
  cfg.seed = 91;
  cfg.batch_size = 4;
  cfg.threads = 1;
  cfg.trace = &sink;
  run_classification_campaign(fi, ds, cfg);
  return trace::trace_to_jsonl(sink.events());
}

ErrorModel model_by_id(const std::string& id) {
  if (id == "random_value") return random_value();
  if (id == "zero_value") return zero_value();
  if (id == "constant_value") return constant_value(10000.0f);
  if (id == "single_bit_flip") return single_bit_flip();
  if (id == "scale_value") return scale_value(2.0f);
  if (id == "additive_noise") return additive_noise(0.5f);
  if (id == "multi_bit_flip") return multi_bit_flip(2);
  if (id == "sign_flip") return sign_flip();
  if (id == "saturate") return saturate(0.5f);
  PFI_CHECK(false) << "unknown golden error model id '" << id << "'";
}

struct GoldenCase {
  const char* id;
  DType dtype;
  const char* jsonl;
};

const GoldenCase kGoldenTraces[] = {
    {"random_value", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15632296,"pre_bits":"3f940264","post":-0.157927275,"post_bits":"be21b7b0","model":"random_value[-1.000000,1.000000]"})json" "\n"},
    {"random_value", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.13058972,"pre_bits":"3f90b72a","post":-0.157927275,"post_bits":"be21b7b0","model":"random_value[-1.000000,1.000000]"})json" "\n"},
    {"random_value", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":-0.157927275,"post_bits":"be21b7b0","model":"random_value[-1.000000,1.000000]"})json" "\n"},
    {"random_value", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":-0.157927275,"post_bits":"be21b7b0","model":"random_value[-1.000000,1.000000]"})json" "\n"},
    {"zero_value", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15632296,"pre_bits":"3f940264","post":0,"post_bits":"00000000","model":"zero_value"})json" "\n"},
    {"zero_value", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.13058972,"pre_bits":"3f90b72a","post":0,"post_bits":"00000000","model":"zero_value"})json" "\n"},
    {"zero_value", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":0,"post_bits":"00000000","model":"zero_value"})json" "\n"},
    {"zero_value", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":0,"post_bits":"00000000","model":"zero_value"})json" "\n"},
    {"constant_value", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15632296,"pre_bits":"3f940264","post":10000,"post_bits":"461c4000","model":"constant_value[10000.000000]"})json" "\n"},
    {"constant_value", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.13058972,"pre_bits":"3f90b72a","post":10000,"post_bits":"461c4000","model":"constant_value[10000.000000]"})json" "\n"},
    {"constant_value", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":10000,"post_bits":"461c4000","model":"constant_value[10000.000000]"})json" "\n"},
    {"constant_value", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":10000,"post_bits":"461c4000","model":"constant_value[10000.000000]"})json" "\n"},
    {"single_bit_flip", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":13,"pre":1.15632296,"pre_bits":"3f940264","post":1.15729952,"post_bits":"3f942264","model":"single_bit_flip[random]"})json" "\n"},
    {"single_bit_flip", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":3,"pre":1.13058972,"pre_bits":"3f90b72a","post":1.60662746,"post_bits":"3fcda5f8","model":"single_bit_flip[random]"})json" "\n"},
    {"single_bit_flip", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":6,"pre":1.15625,"pre_bits":"3f940000","post":1.21875,"post_bits":"3f9c0000","model":"single_bit_flip[random]"})json" "\n"},
    {"single_bit_flip", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":6,"pre":1.15625,"pre_bits":"3f940000","post":1.65625,"post_bits":"3fd40000","model":"single_bit_flip[random]"})json" "\n"},
    {"scale_value", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15632296,"pre_bits":"3f940264","post":2.31264591,"post_bits":"40140264","model":"scale_value[2.000000]"})json" "\n"},
    {"scale_value", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.13058972,"pre_bits":"3f90b72a","post":2.26117945,"post_bits":"4010b72a","model":"scale_value[2.000000]"})json" "\n"},
    {"scale_value", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":2.3125,"post_bits":"40140000","model":"scale_value[2.000000]"})json" "\n"},
    {"scale_value", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":2.3125,"post_bits":"40140000","model":"scale_value[2.000000]"})json" "\n"},
    {"additive_noise", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15632296,"pre_bits":"3f940264","post":1.07735932,"post_bits":"3f89e6e9","model":"additive_noise[0.500000]"})json" "\n"},
    {"additive_noise", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":0,"pre":1.13058972,"pre_bits":"3f90b72a","post":1.05162609,"post_bits":"3f869baf","model":"additive_noise[0.500000]"})json" "\n"},
    {"additive_noise", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":1.07728636,"post_bits":"3f89e485","model":"additive_noise[0.500000]"})json" "\n"},
    {"additive_noise", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":1.07728636,"post_bits":"3f89e485","model":"additive_noise[0.500000]"})json" "\n"},
    {"multi_bit_flip", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15632296,"pre_bits":"3f940264","post":1.17292452,"post_bits":"3f962264","model":"multi_bit_flip[2]"})json" "\n"},
    {"multi_bit_flip", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.13058972,"pre_bits":"3f90b72a","post":0.654551923,"post_bits":"3f2790b7","model":"multi_bit_flip[2]"})json" "\n"},
    {"multi_bit_flip", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":1.46875,"post_bits":"3fbc0000","model":"multi_bit_flip[2]"})json" "\n"},
    {"multi_bit_flip", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":0.4140625,"post_bits":"3ed40000","model":"multi_bit_flip[2]"})json" "\n"},
    {"sign_flip", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":31,"pre":1.15632296,"pre_bits":"3f940264","post":-1.15632296,"post_bits":"bf940264","model":"sign_flip"})json" "\n"},
    {"sign_flip", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.13058972,"pre_bits":"3f90b72a","post":-1.13058972,"post_bits":"bf90b72a","model":"sign_flip"})json" "\n"},
    {"sign_flip", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":15,"pre":1.15625,"pre_bits":"3f940000","post":-1.15625,"post_bits":"bf940000","model":"sign_flip"})json" "\n"},
    {"sign_flip", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":15,"pre":1.15625,"pre_bits":"3f940000","post":-1.15625,"post_bits":"bf940000","model":"sign_flip"})json" "\n"},
    {"saturate", DType::kFloat32,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp32","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15632296,"pre_bits":"3f940264","post":0.5,"post_bits":"3f000000","model":"saturate[0.500000]"})json" "\n"},
    {"saturate", DType::kInt8,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"int8","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.13058972,"pre_bits":"3f90b72a","post":0.5,"post_bits":"3f000000","model":"saturate[0.500000]"})json" "\n"},
    {"saturate", DType::kFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"fp16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":0.5,"post_bits":"3f000000","model":"saturate[0.500000]"})json" "\n"},
    {"saturate", DType::kBFloat16,
     R"json({"trial":0,"attempt":4,"rep":0,"kind":"neuron","layer":2,"layer_name":"squeezenet.2.1.branch0.0","layer_kind":"Conv2d","dtype":"bf16","coords":[0,2,12,11],"flat":715,"bit":-1,"pre":1.15625,"pre_bits":"3f940000","post":0.5,"post_bits":"3f000000","model":"saturate[0.500000]"})json" "\n"},
};

TEST(TraceGolden, EveryErrorModelMatchesItsCheckedInTrace) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  ASSERT_EQ(std::size(kGoldenTraces), 36u)
      << "expected 9 error models x {fp32, int8, fp16, bf16}";
  for (const auto& c : kGoldenTraces) {
    EXPECT_EQ(golden_trace(model_by_id(c.id), c.dtype), c.jsonl)
        << c.id << " @ " << dtype_name(c.dtype);
  }
}

// --------------------------------------------- campaign trace invariance ----

std::string neuron_trace_jsonl(std::int64_t threads) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config());
  trace::TraceSink sink;
  CampaignConfig cfg;
  cfg.trials = 24;
  cfg.error_model = single_bit_flip();
  cfg.seed = 91;
  cfg.batch_size = 4;
  cfg.injections_per_image = 2;
  cfg.threads = threads;
  cfg.trace = &sink;
  run_classification_campaign(fi, ds, cfg);
  return trace::trace_to_jsonl(sink.events());
}

TEST(TraceCampaign, NeuronJsonlByteIdenticalForOneAndFourThreads) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  const std::string serial = neuron_trace_jsonl(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, neuron_trace_jsonl(4));
}

std::string weight_trace_jsonl(std::int64_t threads) {
  Rng rng(92);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config());
  trace::TraceSink sink;
  WeightCampaignConfig cfg;
  cfg.faults = 24;
  cfg.images_per_fault = 4;
  cfg.error_model = single_bit_flip();
  cfg.seed = 93;
  cfg.threads = threads;
  cfg.trace = &sink;
  run_weight_campaign(fi, ds, cfg);
  return trace::trace_to_jsonl(sink.events());
}

TEST(TraceCampaign, WeightJsonlByteIdenticalForOneAndFourThreads) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  const std::string serial = weight_trace_jsonl(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, weight_trace_jsonl(4));
}

TEST(TraceCampaign, EventsCarryMergedTrialOrderAndLayerPaths) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config());
  trace::TraceSink sink;
  CampaignConfig cfg;
  cfg.trials = 12;
  cfg.error_model = random_value();
  cfg.seed = 91;
  cfg.batch_size = 4;
  cfg.threads = 2;
  cfg.trace = &sink;
  const auto result = run_classification_campaign(fi, ds, cfg);
  EXPECT_EQ(result.trials, 12u);
  ASSERT_FALSE(sink.empty());
  std::uint64_t last_trial = 0;
  for (const auto& ev : sink.events()) {
    EXPECT_GE(ev.trial, last_trial);        // merge order is trial order
    EXPECT_LT(ev.trial, result.trials);     // discarded reps left no events
    EXPECT_EQ(ev.layer_name, fi.layer_path(ev.layer));
    EXPECT_EQ(ev.model, "random_value[-1.000000,1.000000]");
    last_trial = ev.trial;
  }
}

// ------------------------------------------------------------------ replay ----

TEST(TraceReplay, NeuronCampaignLogitsReproduceBitExactly) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config());
  trace::TraceSink sink(/*capture_logits=*/true);
  CampaignConfig cfg;
  cfg.trials = 6;
  cfg.error_model = single_bit_flip();
  cfg.seed = 91;
  cfg.batch_size = 4;
  cfg.injections_per_image = 2;
  cfg.threads = 1;
  cfg.trace = &sink;
  run_classification_campaign(fi, ds, cfg);

  const auto reps = trace::split_reps(sink.events());
  ASSERT_FALSE(reps.empty());
  ASSERT_EQ(reps.size(), sink.logits().size());
  trace::TraceReplayer replayer(fi);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& rl = sink.logits()[i];
    ASSERT_EQ(reps[i].front().attempt, rl.attempt);
    ASSERT_EQ(reps[i].front().rep, rl.rep);
    const auto batch = campaign_attempt_batch(ds, cfg, rl.attempt);
    const Tensor replayed = replayer.replay(batch.images, reps[i]);
    EXPECT_TRUE(allclose(rl.logits, replayed, 0.0f)) << "rep " << i;
  }
}

TEST(TraceReplay, Int8CampaignReplaysThroughDtypeEmulation) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config(DType::kInt8));
  trace::TraceSink sink(/*capture_logits=*/true);
  CampaignConfig cfg;
  cfg.trials = 4;
  cfg.error_model = single_bit_flip();
  cfg.seed = 95;
  cfg.batch_size = 4;
  cfg.threads = 1;
  cfg.trace = &sink;
  run_classification_campaign(fi, ds, cfg);

  const auto reps = trace::split_reps(sink.events());
  ASSERT_EQ(reps.size(), sink.logits().size());
  trace::TraceReplayer replayer(fi);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto batch = campaign_attempt_batch(ds, cfg, sink.logits()[i].attempt);
    const Tensor replayed = replayer.replay(batch.images, reps[i]);
    EXPECT_TRUE(allclose(sink.logits()[i].logits, replayed, 0.0f)) << "rep "
                                                                   << i;
  }
}

TEST(TraceReplay, WeightCampaignLogitsReproduceBitExactly) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(92);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config());
  trace::TraceSink sink(/*capture_logits=*/true);
  WeightCampaignConfig cfg;
  cfg.faults = 6;
  cfg.images_per_fault = 4;
  cfg.error_model = single_bit_flip();
  cfg.seed = 93;
  cfg.threads = 1;
  cfg.trace = &sink;
  run_weight_campaign(fi, ds, cfg);

  const auto reps = trace::split_reps(sink.events());
  ASSERT_EQ(reps.size(), 6u);  // one weight fault per fault index
  ASSERT_EQ(reps.size(), sink.logits().size());
  trace::TraceReplayer replayer(fi);
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& rl = sink.logits()[i];
    const auto batch = weight_campaign_fault_batch(ds, cfg, rl.attempt);
    const Tensor replayed = replayer.replay(batch.images, reps[i]);
    EXPECT_TRUE(allclose(rl.logits, replayed, 0.0f)) << "fault " << i;
  }
}

TEST(TraceReplay, ReplayerRejectsDtypeMismatch) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(90);
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config(DType::kFloat32));
  auto ev = sample_event();
  ev.dtype = DType::kInt8;
  ev.layer = 0;
  trace::TraceReplayer replayer(fi);
  const std::vector<trace::InjectionEvent> events{ev};
  EXPECT_THROW(replayer.arm(events), Error);
  fi.clear();
}

TEST(TraceReplay, ReplayerChecksDtypePerLayerUnderResolutionConfigs) {
  // With a per-layer resolution config, dtype is a layer property: an event
  // recorded at the GLOBAL dtype must be rejected on an overridden layer,
  // and one recorded at the layer's resolved dtype must arm cleanly.
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(90);
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  std::string path0;
  {
    FaultInjector probe(model, trace_config());
    path0 = probe.layer_path(0);
  }
  FiConfig cfg = trace_config();  // global fp32
  cfg.per_layer = {{.layer = path0, .dtype = DType::kFloat16, .native = false}};
  FaultInjector fi(model, cfg);
  trace::TraceReplayer replayer(fi);

  auto ev = sample_event();
  ev.layer = 0;
  for (int i = 0; i < 4; ++i) ev.coords[i] = 0;
  ev.dtype = DType::kFloat32;  // global dtype, but not layer 0's resolution
  EXPECT_THROW(replayer.arm(std::vector<trace::InjectionEvent>{ev}), Error);
  fi.clear();
  ev.dtype = DType::kFloat16;
  EXPECT_NO_THROW(replayer.arm(std::vector<trace::InjectionEvent>{ev}));
  fi.clear();
}

// ------------------------------------- hook vs PerturbationLayer differential ----

// The design-alternative differential: the same conv trunk wired once bare
// (hook injection via FaultInjector) and once with PerturbationLayers after
// every conv. Injecting with hooks, recording the trace, then arming the
// perturbation layers at the RECORDED coordinates with the RECORDED values
// must produce bit-identical outputs — the trace is a complete description
// of what the hooks did.
TEST(TraceDifferential, PerturbationLayerReproducesRecordedHookInjections) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  Rng rng(3);
  auto plain = std::make_shared<nn::Sequential>();
  auto layered = std::make_shared<nn::Sequential>();
  std::vector<std::shared_ptr<PerturbationLayer>> perturbers;
  std::int64_t ch = 3;
  for (const std::int64_t out : {8, 16, 16}) {
    // Leaf convs are SHARED between the wirings (same weights; only one
    // model runs at a time), mirroring bench/ablation_hook_vs_layer.
    auto conv = std::make_shared<nn::Conv2d>(
        nn::Conv2dOptions{.in_channels = ch, .out_channels = out, .kernel = 3,
                          .padding = 1, .bias = false},
        rng);
    plain->push(conv);
    plain->emplace<nn::ReLU>();
    layered->push(conv);
    auto p = std::make_shared<PerturbationLayer>(9);
    perturbers.push_back(p);
    layered->push(p);
    layered->emplace<nn::ReLU>();
    ch = out;
  }
  plain->eval();
  layered->eval();
  FaultInjector fi(plain, {.input_shape = {3, 16, 16}, .batch_size = 2});
  Rng drng(4);
  const Tensor input = Tensor::rand({2, 3, 16, 16}, drng, -1.0f, 1.0f);

  // Hook injection with a stochastic model, traced.
  trace::TraceSink sink;
  fi.set_trace_sink(&sink);
  Rng pick(5);
  for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
    NeuronLocation loc = fi.random_neuron_location(pick, l);
    loc.batch = 1;
    fi.declare_neuron_fault(loc, random_value(-4.0f, 4.0f));
  }
  const Tensor via_hooks = fi.forward(input).clone();
  fi.clear();
  fi.set_trace_sink(nullptr);
  ASSERT_EQ(sink.size(), 3u);

  // Equivalent PerturbationLayer injection at the recorded coordinates.
  for (const auto& ev : sink.events()) {
    ASSERT_EQ(ev.kind, trace::FaultKind::kNeuron);
    perturbers[static_cast<std::size_t>(ev.layer)]->arm(
        ev.coords[0], ev.coords[1], ev.coords[2], ev.coords[3],
        constant_value(ev.post));
  }
  const Tensor via_layers = (*layered)(input);
  EXPECT_TRUE(allclose(via_hooks, via_layers, 0.0f));
}

// ---------------------------------------------------------------- profiler ----

TEST(TraceProfiler, RecordsActivationStatsAndHookTime) {
  Rng rng(90);
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, trace_config());
  trace::Profiler prof;
  fi.set_profiler(&prof);
  Rng drng(7);
  const Tensor in = Tensor::rand({4, 3, 32, 32}, drng, -1.0f, 1.0f);
  fi.forward(in);
  fi.forward(in);
  fi.set_profiler(nullptr);

  ASSERT_EQ(prof.layers().size(), static_cast<std::size_t>(fi.num_layers()));
  for (std::size_t i = 0; i < prof.layers().size(); ++i) {
    const auto& p = prof.layers()[i];
    EXPECT_EQ(p.name, fi.layer_path(static_cast<std::int64_t>(i)));
    EXPECT_EQ(p.forwards, 2u);
    EXPECT_EQ(p.hook_calls, 2u);
    const Shape& s = fi.layer_shape(static_cast<std::int64_t>(i));
    const auto numel =
        static_cast<std::uint64_t>(s[0] * s[1] * s[2] * s[3]);
    EXPECT_EQ(p.count, 2u * numel) << "layer " << i;
    EXPECT_LE(p.min, p.mean());
    EXPECT_GE(p.max, p.mean());
  }
  const std::string table = prof.table();
  EXPECT_NE(table.find("hook us/call"), std::string::npos);
  EXPECT_NE(table.find(prof.layers()[0].name), std::string::npos);
}

TEST(TraceProfiler, NonFiniteActivationsDoNotPoisonStats) {
  // Regression: observe() used to fold NaN/Inf into `sum`, so one exponent
  // flip turned every later mean into NaN. Non-finite values must be counted
  // separately and excluded from min/max/mean.
  trace::Profiler prof;
  prof.init({{.name = "features.0", .kind = "Conv2d"}});
  const float acts[6] = {1.0f, std::numeric_limits<float>::quiet_NaN(), 3.0f,
                         std::numeric_limits<float>::infinity(),
                         -std::numeric_limits<float>::infinity(), 2.0f};
  prof.observe(0, std::span<const float>(acts, 6));

  const auto& p = prof.layers()[0];
  EXPECT_EQ(p.count, 3u);       // finite values only
  EXPECT_EQ(p.non_finite, 3u);  // NaN, +Inf, -Inf
  EXPECT_EQ(p.min, 1.0);
  EXPECT_EQ(p.max, 3.0);
  EXPECT_DOUBLE_EQ(p.mean(), 2.0);
  EXPECT_TRUE(std::isfinite(p.mean()));
  EXPECT_NE(prof.table().find("nonfinite"), std::string::npos);
}

TEST(TraceProfiler, AllNonFiniteLayerHasVacuousMean) {
  trace::Profiler prof;
  prof.init({{.name = "features.0", .kind = "Conv2d"}});
  const float acts[2] = {std::numeric_limits<float>::quiet_NaN(),
                         std::numeric_limits<float>::infinity()};
  prof.observe(0, std::span<const float>(acts, 2));
  EXPECT_EQ(prof.layers()[0].count, 0u);
  EXPECT_EQ(prof.layers()[0].non_finite, 2u);
  EXPECT_TRUE(std::isfinite(prof.layers()[0].mean()));
}

// The regression pinned here: a layer whose every activation went non-finite
// used to print an innocuous-looking "0.0000  0.0000  0.0000" min/max/mean
// row — indistinguishable from a healthy all-zero layer. The table must
// show "-" for stats that have no finite samples behind them.
TEST(TraceProfiler, AllNonFiniteLayerTableShowsDashNotZero) {
  trace::Profiler prof;
  prof.init({{.name = "features.0", .kind = "Conv2d"},
             {.name = "features.3", .kind = "Conv2d"}});
  const float bad[2] = {std::numeric_limits<float>::quiet_NaN(),
                        std::numeric_limits<float>::infinity()};
  const float good[2] = {1.0f, 3.0f};
  prof.observe(0, std::span<const float>(bad, 2));
  prof.observe(1, std::span<const float>(good, 2));
  const std::string table = prof.table();
  std::istringstream lines(table);
  std::string line, bad_row, good_row;
  while (std::getline(lines, line)) {
    if (line.find("features.0") != std::string::npos) bad_row = line;
    if (line.find("features.3") != std::string::npos) good_row = line;
  }
  ASSERT_FALSE(bad_row.empty());
  ASSERT_FALSE(good_row.empty());
  EXPECT_EQ(bad_row.find("0.0000"), std::string::npos) << bad_row;
  EXPECT_NE(bad_row.find('-'), std::string::npos) << bad_row;
  EXPECT_NE(good_row.find("1.0000"), std::string::npos) << good_row;
  EXPECT_NE(good_row.find("3.0000"), std::string::npos) << good_row;
  EXPECT_NE(good_row.find("2.0000"), std::string::npos) << good_row;
}

TEST(TraceProfiler, ResetKeepsTheLayerTable) {
  trace::Profiler prof;
  prof.init({{.name = "features.0", .kind = "Conv2d"}});
  const float acts[3] = {1.0f, -2.0f, 4.0f};
  prof.observe(0, std::span<const float>(acts, 3));
  prof.add_hook_time(0, 1500);
  EXPECT_EQ(prof.layers()[0].count, 3u);
  EXPECT_EQ(prof.layers()[0].min, -2.0);
  EXPECT_EQ(prof.layers()[0].max, 4.0);
  EXPECT_DOUBLE_EQ(prof.layers()[0].mean(), 1.0);
  EXPECT_GT(prof.layers()[0].hook_us_per_call(), 0.0);
  prof.reset_stats();
  EXPECT_EQ(prof.layers()[0].name, "features.0");
  EXPECT_EQ(prof.layers()[0].kind, "Conv2d");
  EXPECT_EQ(prof.layers()[0].count, 0u);
  EXPECT_EQ(prof.layers()[0].hook_calls, 0u);
}

}  // namespace
}  // namespace pfi::core
