// Tests for the crash-safe campaign checkpoint subsystem: the on-disk JSON
// round trip, config fingerprinting, torn-tail trace recovery, and the
// headline guarantee — kill-at-any-wave + resume produces byte-identical
// campaign counts, CSV, and streaming trace JSONL to an uninterrupted run,
// at any thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fault_injector.hpp"
#include "core/report.hpp"
#include "models/zoo.hpp"
#include "util/fileio.hpp"

namespace pfi::core {
namespace {

using models::make_model;

/// Removes the file (and the atomic-write temp sibling) on both ends of the
/// test so reruns never see stale state.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

// CampaignResult is a flat struct of uint64 counters precisely so resume
// correctness can be pinned bit-for-bit.
bool same_bits(const CampaignResult& a, const CampaignResult& b) {
  return std::memcmp(&a, &b, sizeof(CampaignResult)) == 0;
}

CampaignConfig neuron_config(std::int64_t threads) {
  CampaignConfig cfg;
  cfg.trials = 24;
  cfg.error_model = single_bit_flip();
  cfg.seed = 91;
  cfg.batch_size = 4;
  cfg.injections_per_image = 2;
  cfg.threads = threads;
  return cfg;
}

/// Fresh model + injector every call (seeds shared with the parallel-engine
/// tests; see test_campaign_parallel.cpp on why seed 90 matters), so crashed
/// and resumed runs start from bit-identical weights.
CampaignResult run_checkpointed(std::int64_t threads,
                                CampaignCheckpointer* ckpt,
                                trace::TraceSink* sink,
                                std::int64_t attempt_cap = 0,
                                std::int64_t trials = 24) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, {.input_shape = {3, 32, 32}, .batch_size = 4});
  CampaignConfig cfg = neuron_config(threads);
  cfg.trials = trials;
  cfg.attempt_cap = attempt_cap;
  cfg.trace = sink;
  cfg.checkpoint = ckpt;
  return run_classification_campaign(fi, ds, cfg);
}

// ---------------------------------------------------------- JSON format ----

TEST(CheckpointJson, RoundTripIsLossless) {
  CheckpointState a;
  a.fingerprint = 0xdeadbeefcafebabeull;
  a.result.trials = 123456789;
  a.result.skipped = 42;
  a.result.corruptions = 999;
  a.result.non_finite = 7;
  a.result.gave_up = 1;
  a.next_unit = 0xffffffffffffffffull;  // full uint64 range survives
  a.trace_bytes = 1ull << 40;
  a.done = 1;

  const CheckpointState b = checkpoint_from_json(checkpoint_to_json(a));
  EXPECT_EQ(b.version, kCheckpointVersion);
  EXPECT_EQ(b.fingerprint, a.fingerprint);
  EXPECT_TRUE(same_bits(a.result, b.result));
  EXPECT_EQ(b.next_unit, a.next_unit);
  EXPECT_EQ(b.trace_bytes, a.trace_bytes);
  EXPECT_EQ(b.done, a.done);
}

TEST(CheckpointJson, RejectsMalformedInput) {
  EXPECT_THROW(checkpoint_from_json(""), Error);
  EXPECT_THROW(checkpoint_from_json("not json at all"), Error);
  EXPECT_THROW(checkpoint_from_json("{\"version\":1}"), Error);
}

TEST(CheckpointJson, RejectsUnknownVersion) {
  CheckpointState a;
  std::string json = checkpoint_to_json(a);
  const auto pos = json.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos) << json;
  json.replace(pos, 11, "\"version\":99");
  EXPECT_THROW(checkpoint_from_json(json), Error);
}

// ---------------------------------------------------------- fingerprint ----

TEST(CheckpointFingerprint, SensitiveToOutcomeShapingFields) {
  const CampaignConfig base = neuron_config(1);
  const std::uint64_t fp = campaign_fingerprint(base, "ctx");

  CampaignConfig c = base;
  c.seed += 1;
  EXPECT_NE(campaign_fingerprint(c, "ctx"), fp);

  c = base;
  c.trials += 1;
  EXPECT_NE(campaign_fingerprint(c, "ctx"), fp);

  c = base;
  c.injections_per_image += 1;
  EXPECT_NE(campaign_fingerprint(c, "ctx"), fp);

  EXPECT_NE(campaign_fingerprint(base, "other-model"), fp);
}

TEST(CheckpointFingerprint, ThreadCountDeliberatelyExcluded) {
  // Results are bit-identical at any thread count, so resuming with a
  // different worker count must be allowed.
  EXPECT_EQ(campaign_fingerprint(neuron_config(1), "ctx"),
            campaign_fingerprint(neuron_config(4), "ctx"));
}

// -------------------------------------------------- checkpointer basics ----

TEST(Checkpointer, ResumeWithoutFileFallsBackToBegin) {
  TempFile ck("/tmp/pfi_ckpt_nofile.json");
  CampaignCheckpointer c(ck.path);
  EXPECT_FALSE(c.resume(7));
  EXPECT_EQ(c.next_unit(), 0u);
  EXPECT_FALSE(c.done());
}

TEST(Checkpointer, ResumeRefusesWrongFingerprint) {
  TempFile ck("/tmp/pfi_ckpt_wrongfp.json");
  {
    CampaignCheckpointer a(ck.path);
    a.begin(7);
    CampaignResult folded;
    folded.trials = 5;
    a.commit(folded, 3, false, {});
  }
  CampaignCheckpointer b(ck.path);
  EXPECT_THROW(b.resume(8), Error);
  EXPECT_NO_THROW(b.resume(7));
  EXPECT_EQ(b.next_unit(), 3u);
  EXPECT_EQ(b.result().trials, 5u);
}

TEST(Checkpointer, TruncatesTornTraceTailOnResume) {
  TempFile ck("/tmp/pfi_ckpt_torn.json");
  TempFile tr("/tmp/pfi_trace_torn.jsonl");

  std::vector<trace::InjectionEvent> events(2);
  events[0].layer_name = "features.0";
  events[1].layer_name = "features.3";
  CampaignResult folded;
  folded.trials = 2;
  {
    CampaignCheckpointer a(ck.path, tr.path);
    a.begin(11);
    a.commit(folded, 2, false, events);
  }
  const std::int64_t committed = util::file_size(tr.path);
  ASSERT_GT(committed, 0);

  // A kill mid-append leaves a torn, non-JSON tail past the committed size.
  util::append_file_sync(tr.path, "{\"torn\":tru");
  CampaignCheckpointer b(ck.path, tr.path);
  ASSERT_TRUE(b.resume(11));
  EXPECT_EQ(util::file_size(tr.path), committed);
  EXPECT_EQ(b.next_unit(), 2u);
  EXPECT_TRUE(same_bits(b.result(), folded));
}

TEST(Checkpointer, ResumeRefusesShrunkenTraceFile) {
  TempFile ck("/tmp/pfi_ckpt_shrunk.json");
  TempFile tr("/tmp/pfi_trace_shrunk.jsonl");
  std::vector<trace::InjectionEvent> events(1);
  {
    CampaignCheckpointer a(ck.path, tr.path);
    a.begin(13);
    a.commit({}, 1, false, events);
  }
  // Committed trace bytes that vanished mean the trace is unrecoverable.
  util::truncate_file(tr.path, 0);
  CampaignCheckpointer b(ck.path, tr.path);
  EXPECT_THROW(b.resume(13), Error);
}

// ------------------------------------------------- kill-and-resume runs ----

void kill_and_resume_case(std::int64_t threads) {
  // Enough trials that the serial path crosses several 32-attempt commit
  // intervals (and the parallel path several waves) before finishing, so
  // the crash below genuinely lands mid-run, not on the final commit.
  constexpr std::int64_t kKillTrials = 48;
  const std::string tag = "t" + std::to_string(threads);
  TempFile ck_ref("/tmp/pfi_ckpt_ref_" + tag + ".json");
  TempFile tr_ref("/tmp/pfi_trace_ref_" + tag + ".jsonl");
  TempFile ck_crash("/tmp/pfi_ckpt_crash_" + tag + ".json");
  TempFile tr_crash("/tmp/pfi_trace_crash_" + tag + ".jsonl");
  CampaignConfig fp_cfg = neuron_config(threads);
  fp_cfg.trials = kKillTrials;
  const std::uint64_t fp = campaign_fingerprint(fp_cfg, "kill-test");

  // Uninterrupted reference run, streaming its trace.
  CampaignCheckpointer ref(ck_ref.path, tr_ref.path);
  ref.begin(fp);
  trace::TraceSink ref_sink;
  const CampaignResult ref_result =
      run_checkpointed(threads, &ref, &ref_sink, 0, kKillTrials);

  // Crashed run: the hook makes the first commit durable, then aborts — the
  // on-disk state is exactly a kill immediately after that commit.
  CampaignCheckpointer crash(ck_crash.path, tr_crash.path);
  crash.begin(fp);
  crash.fail_after_commits(1);
  trace::TraceSink crash_sink;
  EXPECT_THROW(run_checkpointed(threads, &crash, &crash_sink, 0, kKillTrials),
               CampaignAborted);

  // Worst case: the kill also tore a trace line mid-append.
  util::append_file_sync(tr_crash.path, "{\"attempt\":9999,\"tor");

  CampaignCheckpointer resumed(ck_crash.path, tr_crash.path);
  ASSERT_TRUE(resumed.resume(fp));
  EXPECT_GT(resumed.next_unit(), 0u);
  EXPECT_FALSE(resumed.done());
  EXPECT_LT(resumed.result().trials, ref_result.trials);
  trace::TraceSink resume_sink;
  const CampaignResult resumed_result =
      run_checkpointed(threads, &resumed, &resume_sink, 0, kKillTrials);

  // The headline guarantee: counts, CSV, and trace bytes all identical.
  EXPECT_TRUE(same_bits(ref_result, resumed_result));
  EXPECT_EQ(util::read_file(tr_ref.path), util::read_file(tr_crash.path));

  TempFile csv_ref("/tmp/pfi_csv_ref_" + tag + ".csv");
  TempFile csv_res("/tmp/pfi_csv_res_" + tag + ".csv");
  write_campaign_csv(csv_ref.path, {{"squeezenet", ref_result}});
  write_campaign_csv(csv_res.path, {{"squeezenet", resumed_result}});
  EXPECT_EQ(util::read_file(csv_ref.path), util::read_file(csv_res.path));
}

TEST(CheckpointResume, KillAndResumeByteIdenticalSerial) {
  kill_and_resume_case(1);
}

TEST(CheckpointResume, KillAndResumeByteIdenticalFourThreads) {
  kill_and_resume_case(4);
}

TEST(CheckpointResume, StreamedTraceIdenticalAcrossThreadCounts) {
  TempFile ck1("/tmp/pfi_ckpt_x1.json");
  TempFile tr1("/tmp/pfi_trace_x1.jsonl");
  TempFile ck4("/tmp/pfi_ckpt_x4.json");
  TempFile tr4("/tmp/pfi_trace_x4.jsonl");
  const std::uint64_t fp =
      campaign_fingerprint(neuron_config(1), "thread-invariance");

  CampaignCheckpointer c1(ck1.path, tr1.path);
  c1.begin(fp);
  trace::TraceSink s1;
  const auto r1 = run_checkpointed(1, &c1, &s1);

  CampaignCheckpointer c4(ck4.path, tr4.path);
  c4.begin(fp);
  trace::TraceSink s4;
  const auto r4 = run_checkpointed(4, &c4, &s4);

  EXPECT_TRUE(same_bits(r1, r4));
  const std::string bytes = util::read_file(tr1.path);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, util::read_file(tr4.path));
  // The streamed file is exactly the in-memory sink's JSONL.
  EXPECT_EQ(bytes, trace::trace_to_jsonl(s1.events()));
}

TEST(CheckpointResume, ResumeOfFinishedRunReturnsWithoutWork) {
  TempFile ck("/tmp/pfi_ckpt_done.json");
  const std::uint64_t fp = campaign_fingerprint(neuron_config(1), "done");

  CampaignCheckpointer first(ck.path);
  first.begin(fp);
  const auto full = run_checkpointed(1, &first, nullptr);

  CampaignCheckpointer again(ck.path);
  ASSERT_TRUE(again.resume(fp));
  EXPECT_TRUE(again.done());
  const auto replay = run_checkpointed(1, &again, nullptr);
  EXPECT_TRUE(same_bits(full, replay));
  EXPECT_EQ(again.commits(), 0u);  // no new work, no new writes
}

// --------------------------------------------------------------- give-up ----

TEST(CampaignGiveUp, ReturnsPartialResultAndSurfacesInReports) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, {.input_shape = {3, 32, 32}, .batch_size = 4});
  CampaignConfig cfg = neuron_config(1);
  cfg.trials = 1'000'000;  // unreachable before the cap
  cfg.attempt_cap = 6;

  const CampaignResult r = run_classification_campaign(fi, ds, cfg);
  EXPECT_EQ(r.gave_up, 1u);
  EXPECT_LT(r.trials, 1'000'000u);

  const std::string table = campaign_table({{"squeezenet", r}});
  EXPECT_NE(table.find("GAVE UP"), std::string::npos) << table;

  TempFile csv("/tmp/pfi_csv_gaveup.csv");
  write_campaign_csv(csv.path, {{"squeezenet", r}});
  const std::string text = util::read_file(csv.path);
  const std::string row_prefix =
      "squeezenet," + std::to_string(r.trials) + "," +
      std::to_string(r.skipped) + "," + std::to_string(r.corruptions) + "," +
      std::to_string(r.non_finite) + ",1,";
  EXPECT_NE(text.find(row_prefix), std::string::npos) << text;
}

TEST(CampaignGiveUp, GiveUpCheckpointIsFinal) {
  TempFile ck("/tmp/pfi_ckpt_gaveup.json");
  CampaignConfig cfg = neuron_config(1);
  cfg.trials = 1'000'000;
  cfg.attempt_cap = 6;
  const std::uint64_t fp = campaign_fingerprint(cfg, "gave-up");

  CampaignCheckpointer first(ck.path);
  first.begin(fp);
  const auto partial =
      run_checkpointed(1, &first, nullptr, cfg.attempt_cap, cfg.trials);
  EXPECT_EQ(partial.gave_up, 1u);

  // The give-up checkpoint is marked done: resuming returns the partial
  // result instead of spinning against the cap again.
  CampaignCheckpointer again(ck.path);
  ASSERT_TRUE(again.resume(fp));
  EXPECT_TRUE(again.done());
  const auto replay =
      run_checkpointed(1, &again, nullptr, cfg.attempt_cap, cfg.trials);
  EXPECT_TRUE(same_bits(partial, replay));
}

// ------------------------------------------------------- weight campaign ----

// 40 faults so every thread count needs more than one wave (a 4-thread wave
// covers 32 faults) — otherwise the first commit is already the final one
// and there is nothing to resume.
constexpr std::int64_t kWeightFaults = 40;

CampaignResult run_weight_checkpointed(std::int64_t threads,
                                       CampaignCheckpointer* ckpt) {
  Rng rng(92);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, {.input_shape = {3, 32, 32}, .batch_size = 4});
  WeightCampaignConfig cfg;
  cfg.faults = kWeightFaults;
  cfg.images_per_fault = 4;
  cfg.error_model = single_bit_flip();
  cfg.seed = 93;
  cfg.threads = threads;
  cfg.checkpoint = ckpt;
  return run_weight_campaign(fi, ds, cfg);
}

TEST(CheckpointResume, WeightCampaignKillAndResume) {
  for (const std::int64_t threads : {std::int64_t{1}, std::int64_t{4}}) {
    TempFile ck_ref("/tmp/pfi_wckpt_ref.json");
    TempFile ck_crash("/tmp/pfi_wckpt_crash.json");
    WeightCampaignConfig fp_cfg;
    fp_cfg.faults = kWeightFaults;
    fp_cfg.images_per_fault = 4;
    fp_cfg.error_model = single_bit_flip();
    fp_cfg.seed = 93;
    const std::uint64_t fp = weight_campaign_fingerprint(fp_cfg, "w-kill");

    CampaignCheckpointer ref(ck_ref.path);
    ref.begin(fp);
    const auto full = run_weight_checkpointed(threads, &ref);

    CampaignCheckpointer crash(ck_crash.path);
    crash.begin(fp);
    crash.fail_after_commits(1);
    EXPECT_THROW(run_weight_checkpointed(threads, &crash), CampaignAborted);

    CampaignCheckpointer resumed(ck_crash.path);
    ASSERT_TRUE(resumed.resume(fp));
    EXPECT_GT(resumed.next_unit(), 0u);
    EXPECT_LT(resumed.next_unit(), static_cast<std::uint64_t>(kWeightFaults));
    const auto recovered = run_weight_checkpointed(threads, &resumed);
    EXPECT_TRUE(same_bits(full, recovered)) << "threads=" << threads;
  }
}

TEST(CheckpointResume, PerLayerCampaignRefusesSharedCheckpoint) {
  Rng rng(90);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = make_model("squeezenet", {.num_classes = 10}, rng);
  FaultInjector fi(model, {.input_shape = {3, 32, 32}, .batch_size = 4});
  TempFile ck("/tmp/pfi_ckpt_perlayer.json");
  CampaignCheckpointer c(ck.path);
  c.begin(1);
  CampaignConfig cfg = neuron_config(1);
  cfg.checkpoint = &c;
  EXPECT_THROW(run_per_layer_campaign(fi, ds, cfg), Error);
}

}  // namespace
}  // namespace pfi::core
