// Tests for the synthetic classification datasets and detection scenes.
#include <gtest/gtest.h>

#include <cmath>

#include "data/detection_scenes.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace pfi::data {
namespace {

TEST(Synthetic, PresetGeometry) {
  EXPECT_EQ(cifar10_like().classes, 10);
  EXPECT_EQ(cifar10_like().height, 32);
  EXPECT_EQ(cifar100_like().classes, 20);
  EXPECT_EQ(imagenet_like().height, 64);
  EXPECT_EQ(imagenet_like().classes, 16);
}

TEST(Synthetic, RenderShapeAndFiniteness) {
  SyntheticDataset ds(cifar10_like());
  Rng rng(1);
  const Tensor img = ds.render(3, rng);
  EXPECT_EQ(img.shape(), (Shape{1, 3, 32, 32}));
  for (float v : img.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Synthetic, LabelValidated) {
  SyntheticDataset ds(cifar10_like());
  Rng rng(1);
  EXPECT_THROW(ds.render(10, rng), Error);
  EXPECT_THROW(ds.render(-1, rng), Error);
}

TEST(Synthetic, ClassStylesAreDeterministic) {
  SyntheticDataset a(cifar10_like()), b(cifar10_like());
  Rng r1(5), r2(5);
  EXPECT_TRUE(allclose(a.render(2, r1), b.render(2, r2), 0.0f));
}

TEST(Synthetic, SamplesOfSameClassDiffer) {
  // Jitter and noise must make samples distinct or the task is trivial.
  SyntheticDataset ds(cifar10_like());
  Rng rng(2);
  const Tensor a = ds.render(0, rng);
  const Tensor b = ds.render(0, rng);
  EXPECT_GT(a.max_abs_diff(b), 0.1f);
}

TEST(Synthetic, ClassesAreSeparated) {
  // Mean images of different classes must differ far more than samples of
  // the same class (signal >> noise), or no model could learn the task.
  SyntheticDataset ds(cifar10_like());
  Rng rng(3);
  auto mean_image = [&](std::int64_t cls) {
    Tensor acc({1, 3, 32, 32});
    for (int i = 0; i < 16; ++i) acc.add_(ds.render(cls, rng));
    acc.scale_(1.0f / 16.0f);
    return acc;
  };
  const Tensor m0 = mean_image(0);
  const Tensor m1 = mean_image(5);
  const Tensor m0b = mean_image(0);
  const float between = std::sqrt(add(m0, m1).squared_norm() -
                                  4.0f * mul(m0, m1).sum());  // ||m0-m1||
  Tensor diff_same = m0.clone();
  diff_same.add_(m0b, -1.0f);
  const float within = std::sqrt(diff_same.squared_norm());
  EXPECT_GT(between, 3.0f * within);
}

TEST(Synthetic, BatchShapesAndLabels) {
  SyntheticDataset ds(cifar100_like());
  Rng rng(4);
  const Batch b = ds.sample_batch(8, rng);
  EXPECT_EQ(b.images.shape(), (Shape{8, 3, 32, 32}));
  ASSERT_EQ(b.labels.size(), 8u);
  for (auto l : b.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 20);
  }
}

TEST(Synthetic, RenderBatchHonorsLabels) {
  SyntheticDataset ds(cifar10_like());
  Rng rng(5);
  const std::vector<std::int64_t> labels{1, 1, 7};
  const Batch b = ds.render_batch(labels, rng);
  EXPECT_EQ(b.labels, labels);
  EXPECT_EQ(b.images.size(0), 3);
}

TEST(Synthetic, SpecValidation) {
  SyntheticSpec bad = cifar10_like();
  bad.classes = 1;
  EXPECT_THROW(SyntheticDataset{bad}, Error);
  bad = cifar10_like();
  bad.height = 4;
  EXPECT_THROW(SyntheticDataset{bad}, Error);
}

// ---------------------------------------------------------------- scenes ----

TEST(Scenes, SceneHasObjectsWithinBounds) {
  SceneSpec spec;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const DetectionScene s = make_scene(spec, rng);
    EXPECT_EQ(s.image.shape(), (Shape{1, 3, 48, 48}));
    EXPECT_GE(s.boxes.size(), 1u);
    EXPECT_LE(s.boxes.size(), 3u);
    for (const auto& b : s.boxes) {
      EXPECT_GE(b.cx - b.w / 2, -1e-5f);
      EXPECT_LE(b.cx + b.w / 2, 1.0f + 1e-5f);
      EXPECT_GE(b.cy - b.h / 2, -1e-5f);
      EXPECT_LE(b.cy + b.h / 2, 1.0f + 1e-5f);
      EXPECT_GE(b.cls, 0);
      EXPECT_LT(b.cls, 2);
    }
  }
}

TEST(Scenes, ObjectsAreBrighterThanBackground) {
  SceneSpec spec;
  spec.noise_stddev = 0.0f;
  Rng rng(2);
  const DetectionScene s = make_scene(spec, rng);
  ASSERT_FALSE(s.boxes.empty());
  const auto& b = s.boxes.front();
  const auto size = spec.size;
  const auto cx = static_cast<std::int64_t>(b.cx * static_cast<float>(size));
  const auto cy = static_cast<std::int64_t>(b.cy * static_cast<float>(size));
  // Center pixel of the object in its class channel is bright; the image
  // corner (object-free by construction margins, usually) is dark.
  const float center = s.image.at(0, b.cls == 0 ? 0 : 1, cy, cx);
  EXPECT_GT(center, 0.5f);
}

TEST(Scenes, SceneBatchStacks) {
  SceneSpec spec;
  Rng rng(3);
  const SceneBatch batch = make_scene_batch(spec, 4, rng);
  EXPECT_EQ(batch.images.shape(), (Shape{4, 3, 48, 48}));
  EXPECT_EQ(batch.boxes.size(), 4u);
}

TEST(Scenes, GeneratorIsDeterministic) {
  SceneSpec spec;
  Rng r1(9), r2(9);
  const DetectionScene a = make_scene(spec, r1);
  const DetectionScene b = make_scene(spec, r2);
  EXPECT_TRUE(allclose(a.image, b.image, 0.0f));
  EXPECT_EQ(a.boxes.size(), b.boxes.size());
}

}  // namespace
}  // namespace pfi::data
