// Unit tests for nn forward semantics, the module tree, and — centrally for
// this paper — forward hooks.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/nn.hpp"

namespace pfi::nn {
namespace {

Rng& test_rng() {
  static Rng rng(1234);
  return rng;
}

// ----------------------------------------------------------------- hooks ----

TEST(Hooks, ForwardHookSeesAndMutatesOutput) {
  ReLU relu;
  bool called = false;
  relu.register_forward_hook([&](Module& m, const Tensor& in, Tensor& out) {
    called = true;
    EXPECT_EQ(m.kind(), "ReLU");
    EXPECT_EQ(in.numel(), 4);
    out[0] = 99.0f;  // the paper's injection mechanism: mutate in place
  });
  Tensor x({4}, std::vector<float>{-1.0f, 1.0f, 2.0f, -3.0f});
  Tensor y = relu(x);
  EXPECT_TRUE(called);
  EXPECT_EQ(y[0], 99.0f);   // corrupted by hook
  EXPECT_EQ(y[1], 1.0f);    // untouched
  EXPECT_EQ(y[3], 0.0f);    // normal ReLU masking
}

TEST(Hooks, PreHookMutatesInputBeforeForward) {
  ReLU relu;
  relu.register_forward_pre_hook([](Module&, Tensor& in) { in[0] = 5.0f; });
  Tensor x({2}, std::vector<float>{-1.0f, -1.0f});
  Tensor y = relu(x);
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 0.0f);
}

TEST(Hooks, MultipleHooksRunInRegistrationOrder) {
  Identity id;
  std::vector<int> order;
  id.register_forward_hook(
      [&](Module&, const Tensor&, Tensor&) { order.push_back(1); });
  id.register_forward_hook(
      [&](Module&, const Tensor&, Tensor&) { order.push_back(2); });
  id(Tensor({1}));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Hooks, RemoveHookStopsFiring) {
  Identity id;
  int count = 0;
  const auto h = id.register_forward_hook(
      [&](Module&, const Tensor&, Tensor&) { ++count; });
  id(Tensor({1}));
  EXPECT_TRUE(id.remove_hook(h));
  EXPECT_FALSE(id.remove_hook(h));  // already gone
  id(Tensor({1}));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(id.forward_hook_count(), 0u);
}

TEST(Hooks, HooksFireOnNestedChildren) {
  // The injector instruments convs buried inside containers; hook dispatch
  // must happen when the container invokes the child.
  auto seq = std::make_shared<Sequential>();
  auto conv = seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 1, .kernel = 1},
      test_rng());
  seq->emplace<ReLU>();
  int fired = 0;
  conv->register_forward_hook(
      [&](Module&, const Tensor&, Tensor&) { ++fired; });
  (*seq)(Tensor({1, 1, 2, 2}, 1.0f));
  EXPECT_EQ(fired, 1);
}

TEST(Hooks, NoHooksMeansIdenticalOutput) {
  // Overhead / semantics sanity: an inactive module behaves identically
  // before and after registering-then-removing a hook.
  Rng rng(7);
  Conv2d conv(
      Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 3,
                    .padding = 1},
      rng);
  Tensor x = Tensor::rand({1, 2, 5, 5}, rng, -1.0f, 1.0f);
  const Tensor y0 = conv(x);
  const auto h = conv.register_forward_hook(
      [](Module&, const Tensor&, Tensor& out) { out[0] += 1.0f; });
  conv.remove_hook(h);
  const Tensor y1 = conv(x);
  EXPECT_TRUE(allclose(y0, y1, 0.0f));
}

TEST(Hooks, LastOutputShapeRecordedForProfiling) {
  ReLU relu;
  EXPECT_TRUE(relu.last_output_shape().empty());
  relu(Tensor({2, 3, 4, 4}));
  EXPECT_EQ(relu.last_output_shape(), (Shape{2, 3, 4, 4}));
}

// ------------------------------------------------------------ module tree ----

TEST(ModuleTree, ModulesIsPreOrder) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 3},
      test_rng());
  auto inner = std::make_shared<Sequential>();
  inner->emplace<ReLU>();
  seq->push(inner);
  const auto mods = seq->modules();
  ASSERT_EQ(mods.size(), 4u);
  EXPECT_EQ(mods[0]->kind(), "Sequential");
  EXPECT_EQ(mods[1]->kind(), "Conv2d");
  EXPECT_EQ(mods[2]->kind(), "Sequential");
  EXPECT_EQ(mods[3]->kind(), "ReLU");
}

TEST(ModuleTree, ParameterNamesAreDottedPaths) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 3},
      test_rng());
  seq->emplace<Linear>(4, 2, test_rng());
  const auto params = seq->parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->name, "0.weight");
  EXPECT_EQ(params[1]->name, "0.bias");
  EXPECT_EQ(params[2]->name, "1.weight");
  EXPECT_EQ(params[3]->name, "1.bias");
}

TEST(ModuleTree, ParameterCountConv) {
  Conv2d conv(
      Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3},
      test_rng());
  EXPECT_EQ(conv.parameter_count(), 8 * 3 * 3 * 3 + 8);
}

TEST(ModuleTree, TrainEvalPropagates) {
  auto seq = std::make_shared<Sequential>();
  auto bn = seq->emplace<BatchNorm2d>(4);
  seq->eval();
  EXPECT_FALSE(bn->is_training());
  seq->train();
  EXPECT_TRUE(bn->is_training());
}

// ----------------------------------------------------------------- layers ----

TEST(Layers, ReLUMasksNegative) {
  ReLU relu;
  Tensor y = relu(Tensor({3}, std::vector<float>{-1.0f, 0.0f, 2.0f}));
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
}

TEST(Layers, LeakyReLUSlope) {
  LeakyReLU lr(0.1f);
  Tensor y = lr(Tensor({2}, std::vector<float>{-10.0f, 10.0f}));
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(Layers, SigmoidRangeAndCenter) {
  Sigmoid s;
  Tensor y = s(Tensor({3}, std::vector<float>{-100.0f, 0.0f, 100.0f}));
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_NEAR(y[2], 1.0f, 1e-6f);
}

TEST(Layers, SoftmaxRowsSumToOne) {
  Softmax sm;
  Rng rng(3);
  Tensor y = sm(Tensor::rand({4, 7}, rng, -5.0f, 5.0f));
  for (std::int64_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (std::int64_t j = 0; j < 7; ++j) sum += y.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Layers, SoftmaxInvariantToShift) {
  Softmax sm;
  Tensor a({1, 3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  Tensor b({1, 3}, std::vector<float>{101.0f, 102.0f, 103.0f});
  EXPECT_TRUE(allclose(sm(a), sm(b), 1e-6f));
}

TEST(Layers, MaxPoolPicksWindowMax) {
  MaxPool2d mp(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1.0f, 5.0f, 3.0f, 2.0f});
  Tensor y = mp(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(y[0], 5.0f);
}

TEST(Layers, MaxPoolPropagatesNaN) {
  MaxPool2d mp(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1.0f, NAN, 3.0f, 2.0f});
  Tensor y = mp(x);
  EXPECT_TRUE(std::isnan(y[0]));
}

TEST(Layers, MaxPoolStrideAndPadding) {
  MaxPool2d mp(3, 2, 1);
  Tensor x = Tensor::ones({1, 1, 5, 5});
  Tensor y = mp(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
}

TEST(Layers, AvgPoolAverages) {
  AvgPool2d ap(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f, 6.0f});
  EXPECT_FLOAT_EQ(ap(x)[0], 3.0f);
}

TEST(Layers, GlobalAvgPoolShapeAndValue) {
  GlobalAvgPool gap;
  Tensor x = Tensor::full({2, 3, 4, 4}, 2.0f);
  Tensor y = gap(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
}

TEST(Layers, FlattenShape) {
  Flatten f;
  Tensor y = f(Tensor({2, 3, 4, 5}));
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
}

TEST(Layers, DropoutEvalIsIdentityTrainScales) {
  Rng rng(5);
  Dropout d(0.5f, rng);
  Tensor x = Tensor::ones({10000});
  d.eval();
  EXPECT_TRUE(allclose(d(x), x, 0.0f));
  d.train();
  Tensor y = d(x);
  // Inverted dropout: survivors are scaled by 1/keep, mean stays ~1.
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);
  int zeros = 0;
  for (float v : y.data()) zeros += v == 0.0f ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.05);
}

TEST(Layers, ChannelShuffleInterleaves) {
  ChannelShuffle cs(2);
  // 4 channels, 1x1 spatial: [c0 c1 | c2 c3] -> [c0 c2 c1 c3].
  Tensor x({1, 4, 1, 1}, std::vector<float>{0.0f, 1.0f, 2.0f, 3.0f});
  Tensor y = cs(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  EXPECT_EQ(y[2], 1.0f);
  EXPECT_EQ(y[3], 3.0f);
}

TEST(Layers, ChannelShuffleBackwardIsInverse) {
  ChannelShuffle cs(3);
  Rng rng(8);
  Tensor x = Tensor::rand({2, 6, 2, 2}, rng);
  Tensor y = cs(x);
  Tensor back = cs.backward(y);
  EXPECT_TRUE(allclose(back, x, 0.0f));
}

// ------------------------------------------------------------------ conv ----

TEST(Conv, IdentityKernelReproducesInput) {
  Rng rng(2);
  Conv2d conv(
      Conv2dOptions{.in_channels = 1, .out_channels = 1, .kernel = 3,
                    .padding = 1},
      rng);
  conv.weight().value.fill(0.0f);
  conv.weight().value.at(0, 0, 1, 1) = 1.0f;  // center tap
  conv.bias().value.fill(0.0f);
  Tensor x = Tensor::rand({1, 1, 6, 6}, rng, -1.0f, 1.0f);
  EXPECT_TRUE(allclose(conv(x), x, 1e-6f));
}

TEST(Conv, KnownConvolution) {
  Rng rng(2);
  Conv2d conv(
      Conv2dOptions{.in_channels = 1, .out_channels = 1, .kernel = 2,
                    .bias = false},
      rng);
  conv.weight().value =
      Tensor({1, 1, 2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  Tensor x({1, 1, 3, 3},
           std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  // Cross-correlation: w00*x(i,j) + w01*x(i,j+1) + w10*x(i+1,j) + w11*x(i+1,j+1)
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1 * 1 + 2 * 2 + 3 * 4 + 4 * 5);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1 * 5 + 2 * 6 + 3 * 8 + 4 * 9);
}

TEST(Conv, StrideHalvesSpatial) {
  Rng rng(3);
  Conv2d conv(
      Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 3,
                    .stride = 2, .padding = 1},
      rng);
  Tensor y = conv(Tensor({2, 3, 8, 8}));
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
}

TEST(Conv, GroupedConvIsBlockDiagonal) {
  // With groups=2, output channel 0 must not depend on input channel 1.
  Rng rng(4);
  Conv2d conv(
      Conv2dOptions{.in_channels = 2, .out_channels = 2, .kernel = 1,
                    .groups = 2, .bias = false},
      rng);
  Tensor x({1, 2, 1, 1}, std::vector<float>{1.0f, 1.0f});
  Tensor y0 = conv(x);
  x.at(0, 1, 0, 0) = 100.0f;  // perturb the other group's input
  Tensor y1 = conv(x);
  EXPECT_EQ(y0.at(0, 0, 0, 0), y1.at(0, 0, 0, 0));
  EXPECT_NE(y0.at(0, 1, 0, 0), y1.at(0, 1, 0, 0));
}

TEST(Conv, DepthwiseMatchesManual) {
  Rng rng(5);
  Conv2d conv(
      Conv2dOptions{.in_channels = 2, .out_channels = 2, .kernel = 1,
                    .groups = 2, .bias = false},
      rng);
  conv.weight().value = Tensor({2, 1, 1, 1}, std::vector<float>{2.0f, 3.0f});
  Tensor x({1, 2, 1, 1}, std::vector<float>{10.0f, 10.0f});
  Tensor y = conv(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 20.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 30.0f);
}

TEST(Conv, ValidatesInput) {
  Rng rng(6);
  Conv2d conv(
      Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3}, rng);
  EXPECT_THROW(conv(Tensor({1, 2, 8, 8})), Error);  // wrong channels
  EXPECT_THROW(conv(Tensor({3, 8, 8})), Error);     // wrong rank
  EXPECT_THROW(conv(Tensor({1, 3, 2, 2})), Error);  // output would be empty
}

TEST(Conv, ValidatesConstruction) {
  Rng rng(6);
  EXPECT_THROW(Conv2d(Conv2dOptions{.in_channels = 3, .out_channels = 4,
                                    .kernel = 3, .groups = 2},
                      rng),
               Error);
}

// ---------------------------------------------------------------- linear ----

TEST(Linear, KnownValues) {
  Rng rng(7);
  Linear fc(2, 2, rng);
  fc.weight().value = Tensor({2, 2}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  fc.bias().value = Tensor({2}, std::vector<float>{0.5f, -0.5f});
  Tensor x({1, 2}, std::vector<float>{10.0f, 20.0f});
  Tensor y = fc(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 10.0f + 40.0f + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 30.0f + 80.0f - 0.5f);
}

TEST(Linear, ValidatesInput) {
  Rng rng(7);
  Linear fc(4, 2, rng);
  EXPECT_THROW(fc(Tensor({1, 3})), Error);
}

// ------------------------------------------------------------- batchnorm ----

TEST(BatchNorm, TrainingNormalizesBatch) {
  Rng rng(9);
  BatchNorm2d bn(3);
  bn.train();
  Tensor x = Tensor::rand({8, 3, 4, 4}, rng, 5.0f, 9.0f);
  Tensor y = bn(x);
  // Per channel: mean ~0, var ~1 after normalization with gamma=1, beta=0.
  for (std::int64_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    const std::int64_t cnt = 8 * 4 * 4;
    for (std::int64_t n = 0; n < 8; ++n)
      for (std::int64_t h = 0; h < 4; ++h)
        for (std::int64_t w = 0; w < 4; ++w) mean += y.at(n, c, h, w);
    mean /= cnt;
    for (std::int64_t n = 0; n < 8; ++n)
      for (std::int64_t h = 0; h < 4; ++h)
        for (std::int64_t w = 0; w < 4; ++w) {
          const double d = y.at(n, c, h, w) - mean;
          var += d * d;
        }
    var /= cnt;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.eval();
  bn.running_mean()[0] = 2.0f;
  bn.running_var()[0] = 4.0f;
  Tensor x = Tensor::full({1, 1, 1, 1}, 6.0f);
  // (6 - 2) / sqrt(4 + eps) ~ 2.
  EXPECT_NEAR(bn(x)[0], 2.0f, 1e-3f);
}

TEST(BatchNorm, RunningStatsUpdateTowardBatch) {
  Rng rng(10);
  BatchNorm2d bn(1, 1e-5f, 0.5f);
  bn.train();
  Tensor x = Tensor::full({4, 1, 2, 2}, 10.0f);
  bn(x);
  // mean moves half-way from 0 to 10.
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 1e-5f);
}

// -------------------------------------------------------------- containers ----

TEST(Containers, SequentialChains) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<ReLU>();
  seq->emplace<Flatten>();
  Tensor y = (*seq)(Tensor({2, 3, 2, 2}, -1.0f));
  EXPECT_EQ(y.shape(), (Shape{2, 12}));
  EXPECT_EQ(y[0], 0.0f);
}

TEST(Containers, ResidualAddsBranches) {
  auto main = std::make_shared<Identity>();
  auto sc = std::make_shared<Identity>();
  Residual res(main, sc);
  Tensor x = Tensor::full({1, 2, 2, 2}, 3.0f);
  EXPECT_FLOAT_EQ(res(x)[0], 6.0f);
}

TEST(Containers, ResidualShapeMismatchThrows) {
  Rng rng(11);
  auto main = std::make_shared<Conv2d>(
      Conv2dOptions{.in_channels = 2, .out_channels = 4, .kernel = 1}, rng);
  auto sc = std::make_shared<Identity>();
  Residual res(main, sc);
  EXPECT_THROW(res(Tensor({1, 2, 2, 2})), Error);
}

TEST(Containers, ConcatStacksChannels) {
  auto b0 = std::make_shared<Identity>();
  auto b1 = std::make_shared<Identity>();
  Concat cat({b0, b1});
  Tensor x({1, 2, 1, 1}, std::vector<float>{1.0f, 2.0f});
  Tensor y = cat(x);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 1, 1}));
  EXPECT_EQ(y[0], 1.0f);
  EXPECT_EQ(y[2], 1.0f);
}

TEST(Containers, DenseStyleConcatGrowsChannels) {
  // DenseNet connectivity: out = concat(x, f(x)).
  Rng rng(12);
  auto growth = std::make_shared<Conv2d>(
      Conv2dOptions{.in_channels = 4, .out_channels = 2, .kernel = 3,
                    .padding = 1},
      rng);
  Concat cat({std::make_shared<Identity>(), growth});
  Tensor y = cat(Tensor({1, 4, 4, 4}));
  EXPECT_EQ(y.shape(), (Shape{1, 6, 4, 4}));
}

// ------------------------------------------------------------------ loss ----

TEST(Loss, CrossEntropyUniformLogits) {
  CrossEntropyLoss ce;
  Tensor logits({2, 4});
  const std::vector<std::int64_t> t{0, 3};
  EXPECT_NEAR(ce.forward(logits, t), std::log(4.0f), 1e-5f);
}

TEST(Loss, CrossEntropyConfidentCorrectIsSmall) {
  CrossEntropyLoss ce;
  Tensor logits({1, 3}, std::vector<float>{100.0f, 0.0f, 0.0f});
  const std::vector<std::int64_t> t{0};
  EXPECT_LT(ce.forward(logits, t), 1e-4f);
}

TEST(Loss, CrossEntropyGradientSignsPushTowardTarget) {
  CrossEntropyLoss ce;
  Tensor logits({1, 3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  const std::vector<std::int64_t> t{0};
  ce.forward(logits, t);
  Tensor g = ce.backward();
  EXPECT_LT(g.at(0, 0), 0.0f);  // increase target logit
  EXPECT_GT(g.at(0, 1), 0.0f);
  EXPECT_GT(g.at(0, 2), 0.0f);
}

TEST(Loss, CrossEntropyValidatesTargets) {
  CrossEntropyLoss ce;
  Tensor logits({1, 3});
  const std::vector<std::int64_t> bad{5};
  EXPECT_THROW(ce.forward(logits, bad), Error);
}

TEST(Loss, MSEKnownValue) {
  MSELoss mse;
  Tensor a({2}, std::vector<float>{1.0f, 3.0f});
  Tensor b({2}, std::vector<float>{0.0f, 0.0f});
  EXPECT_FLOAT_EQ(mse.forward(a, b), (1.0f + 9.0f) / 2.0f);
}

TEST(Loss, Metrics) {
  Tensor logits({2, 3},
                std::vector<float>{0.1f, 0.9f, 0.0f, 0.8f, 0.1f, 0.1f});
  const std::vector<std::int64_t> t{1, 2};
  EXPECT_EQ(argmax_rows(logits), (std::vector<std::int64_t>{1, 0}));
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, t), 0.5);
  EXPECT_TRUE(in_top_k(logits, 1, 2, 3));
  EXPECT_FALSE(in_top_k(logits, 1, 2, 1));
}

// ------------------------------------------------------------------- sgd ----

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Rng rng(13);
  Linear fc(2, 1, rng, /*bias=*/false);
  fc.weight().value.fill(1.0f);
  fc.weight().grad.fill(0.5f);
  Sgd opt({&fc.weight()}, {.lr = 0.1f, .momentum = 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(fc.weight().value[0], 1.0f - 0.05f);
}

TEST(Sgd, MomentumAccumulates) {
  Rng rng(13);
  Linear fc(1, 1, rng, false);
  fc.weight().value.fill(0.0f);
  Sgd opt({&fc.weight()}, {.lr = 1.0f, .momentum = 0.5f});
  fc.weight().grad.fill(1.0f);
  opt.step();  // v=1, w=-1
  fc.weight().grad.fill(1.0f);
  opt.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(fc.weight().value[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Rng rng(13);
  Linear fc(1, 1, rng, false);
  fc.weight().value.fill(2.0f);
  fc.weight().grad.fill(0.0f);
  Sgd opt({&fc.weight()}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.5f});
  opt.step();
  EXPECT_FLOAT_EQ(fc.weight().value[0], 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(Sgd, TrainsLinearRegression) {
  // End-to-end sanity: fit y = 2x with MSE.
  Rng rng(14);
  Linear fc(1, 1, rng, false);
  Sgd opt({&fc.weight()}, {.lr = 0.05f, .momentum = 0.9f});
  MSELoss mse;
  for (int epoch = 0; epoch < 200; ++epoch) {
    Tensor x = Tensor::rand({8, 1}, rng, -1.0f, 1.0f);
    Tensor target = x.clone();
    target.scale_(2.0f);
    Tensor y = fc(x);
    mse.forward(y, target);
    opt.zero_grad();
    fc.backward(mse.backward());
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value[0], 2.0f, 1e-2f);
}

}  // namespace
}  // namespace pfi::nn
