// Tests for the multi-process sharded campaign fabric (core/shard.hpp).
// The headline guarantee: merging S shards is byte-identical to the
// single-process run — counts, CSV, and trace JSONL — for S in {1,2,3,7},
// at 1 and 4 worker threads, for both the uniform and the stratified
// fixed-budget samplers, with the prefix cache on or off, and after any
// shard crashes mid-wave and resumes from its checkpoint. The merge must
// also refuse incomplete or mismatched shard sets with distinct,
// actionable error messages.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/fault_injector.hpp"
#include "core/report.hpp"
#include "core/sampling.hpp"
#include "core/shard.hpp"
#include "core/trace.hpp"
#include "data/synthetic.hpp"
#include "models/trainer.hpp"
#include "nn/container.hpp"
#include "nn/layers.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace pfi::core {
namespace {

// ------------------------------------------------------------- fixture ----

/// Jitter- and noise-free dataset: exactly 3 distinct images, one per
/// class (same fixture as test_sampling.cpp), so campaigns are fast and
/// every run is a pure function of (seed, attempt index).
data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 3;
  spec.channels = 1;
  spec.height = 8;
  spec.width = 8;
  spec.noise_stddev = 0.0f;
  spec.jitter = 0.0f;
  spec.seed = 11;
  return spec;
}

std::shared_ptr<nn::Sequential> tiny_model() {
  Rng rng(42);
  auto m = std::make_shared<nn::Sequential>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 1, .out_channels = 3, .kernel = 3,
                        .padding = 1},
      rng);
  m->emplace<nn::ReLU>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3,
                        .stride = 2, .padding = 1},
      rng);
  m->emplace<nn::ReLU>();
  m->emplace<nn::GlobalAvgPool>();
  m->emplace<nn::Flatten>();
  m->emplace<nn::Linear>(4, 3, rng);
  return m;
}

struct TinyFixture {
  data::SyntheticDataset ds;
  std::shared_ptr<nn::Sequential> model;
};

/// Train once per process; campaigns never mutate parameters, so every
/// test shares the weights and builds its own (cheap) FaultInjector.
const TinyFixture& tiny() {
  static const TinyFixture* fx = [] {
    auto* f = new TinyFixture{data::SyntheticDataset(tiny_spec()),
                              tiny_model()};
    models::train_classifier(*f->model, f->ds,
                             {.epochs = 25,
                              .batches_per_epoch = 10,
                              .batch_size = 9,
                              .lr = 0.05f,
                              .seed = 7});
    f->model->eval();
    return f;
  }();
  return *fx;
}

FiConfig tiny_fi_config(bool prefix_cache = true) {
  FiConfig cfg{.input_shape = {1, 8, 8}, .batch_size = 1};
  cfg.prefix_cache = prefix_cache;
  return cfg;
}

/// Native-int8 variant: faults land in the deployed quantized codes, so
/// sharded runs must reproduce the native single-process bytes exactly.
FiConfig tiny_native_fi_config(bool prefix_cache = true) {
  FiConfig cfg = tiny_fi_config(prefix_cache);
  cfg.dtype = DType::kInt8;
  cfg.native = true;
  return cfg;
}

CampaignConfig uniform_config(std::int64_t threads = 1,
                              std::int64_t trials = 24) {
  CampaignConfig cfg;
  cfg.trials = trials;
  cfg.error_model = single_bit_flip();
  cfg.seed = 91;
  cfg.batch_size = 1;
  cfg.injections_per_image = 4;
  cfg.threads = threads;
  return cfg;
}

StratifiedCampaignConfig stratified_config(std::int64_t threads = 1,
                                           std::int64_t trials = 48) {
  StratifiedCampaignConfig scfg;
  scfg.base.trials = trials;
  scfg.base.seed = 91;
  scfg.base.batch_size = 1;
  scfg.base.injections_per_image = 4;
  scfg.base.threads = threads;
  return scfg;
}

bool same_bits(const CampaignResult& a, const CampaignResult& b) {
  return std::memcmp(&a, &b, sizeof(CampaignResult)) == 0;
}

/// A shard directory under /tmp, wiped of every shard file (for any shard
/// count the tests use) on both ends so reruns never see stale state.
struct ShardDir {
  explicit ShardDir(std::string p) : path(std::move(p)) { wipe(); }
  ~ShardDir() {
    wipe();
    ::rmdir(path.c_str());
  }
  void wipe() {
    for (std::int64_t s = 1; s <= 8; ++s) {
      for (std::int64_t k = 0; k < s; ++k) {
        const ShardPaths sp = shard_paths(path, k, s);
        std::remove(sp.checkpoint.c_str());
        std::remove((sp.checkpoint + ".tmp").c_str());
        std::remove(sp.log.c_str());
        std::remove(sp.manifest.c_str());
        std::remove((sp.manifest + ".tmp").c_str());
      }
    }
  }
  std::vector<std::string> manifests(std::int64_t shards) const {
    std::vector<std::string> out;
    for (std::int64_t k = 0; k < shards; ++k) {
      out.push_back(shard_paths(path, k, shards).manifest);
    }
    return out;
  }
  std::string path;
};

/// Run `fn`, expect a pfi::Error whose message mentions `needle`. The
/// refusal taxonomy promises DISTINCT messages, so each test pins the
/// phrase that makes its failure actionable.
void expect_refusal(const std::function<void()>& fn,
                    const std::string& needle) {
  try {
    fn();
    ADD_FAILURE() << "expected an error mentioning '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error did not mention '" << needle << "'; got: " << e.what();
  }
}

/// Single-process reference run with an event trace: what every sharded
/// configuration must reproduce byte-for-byte.
struct Reference {
  CampaignResult result;
  std::string jsonl;
  std::string csv;
};

std::string csv_bytes(const CampaignResult& r) {
  static int n = 0;
  const std::string path = "/tmp/pfi_shard_csv_" + std::to_string(n++);
  write_campaign_csv(path, {{"tiny", r}});
  std::string text = util::read_file(path);
  std::remove(path.c_str());
  return text;
}

Reference uniform_reference(std::int64_t threads = 1) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  trace::TraceSink sink(false);
  CampaignConfig cfg = uniform_config(threads);
  cfg.trace = &sink;
  Reference ref;
  ref.result = run_classification_campaign(fi, fx.ds, cfg);
  ref.jsonl = trace::trace_to_jsonl(sink.take_events());
  ref.csv = csv_bytes(ref.result);
  return ref;
}

// -------------------------------------------------- paths and manifest ----

TEST(ShardPathsTest, FilesAreDistinctAndNameIndexAndCount) {
  const ShardPaths p = shard_paths("/tmp/dir", 2, 7);
  EXPECT_NE(p.checkpoint, p.log);
  EXPECT_NE(p.log, p.manifest);
  for (const std::string& f : {p.checkpoint, p.log, p.manifest}) {
    EXPECT_EQ(f.find("/tmp/dir/"), 0u) << f;
    EXPECT_NE(f.find('2'), std::string::npos) << f;
    EXPECT_NE(f.find('7'), std::string::npos) << f;
  }
}

TEST(ShardManifestTest, UniformJsonRoundTrip) {
  ShardManifest m;
  m.kind = "classification";
  m.fingerprint = 0xdeadbeefcafef00dull;
  m.shards = 7;
  m.shard_index = 3;
  m.records = 41;
  m.horizon = 96;
  m.log_bytes = 12345;
  m.log_digest = 0x123456789abcdef0ull;
  m.done = 1;
  m.record_events = true;
  m.log = "shard \"quoted\".log";  // name survives JSON escaping
  m.trials_target = 500;
  m.attempt_cap = 10'500;
  m.max_yield = 4;

  const ShardManifest r = shard_manifest_from_json(shard_manifest_to_json(m));
  EXPECT_EQ(r.version, kShardManifestVersion);
  EXPECT_EQ(r.kind, m.kind);
  EXPECT_EQ(r.fingerprint, m.fingerprint);
  EXPECT_EQ(r.shards, m.shards);
  EXPECT_EQ(r.shard_index, m.shard_index);
  EXPECT_EQ(r.records, m.records);
  EXPECT_EQ(r.horizon, m.horizon);
  EXPECT_EQ(r.log_bytes, m.log_bytes);
  EXPECT_EQ(r.log_digest, m.log_digest);
  EXPECT_EQ(r.done, m.done);
  EXPECT_EQ(r.record_events, m.record_events);
  EXPECT_EQ(r.log, m.log);
  EXPECT_EQ(r.trials_target, m.trials_target);
  EXPECT_EQ(r.attempt_cap, m.attempt_cap);
  EXPECT_EQ(r.max_yield, m.max_yield);
  EXPECT_TRUE(r.strata.empty());
}

TEST(ShardManifestTest, StratifiedJsonRoundTrip) {
  ShardManifest m;
  m.kind = "stratified";
  m.fingerprint = 99;
  m.shards = 2;
  m.shard_index = 1;
  m.done = 0;
  m.log = "s.log";
  m.trials_budget = 64;
  m.max_yield = 4;
  m.strata = {
      {.layer = 0, .bit_class = 0, .bit_lo = 31, .bit_hi = 31, .weight = 0.5},
      {.layer = 2, .bit_class = 1, .bit_lo = 23, .bit_hi = 30,
       .weight = 0.25}};
  m.stratum_caps.assign(m.strata.size(), 5);
  m.stratum_attempt_caps.assign(m.strata.size(), 5'100);

  const ShardManifest r = shard_manifest_from_json(shard_manifest_to_json(m));
  EXPECT_EQ(r.kind, "stratified");
  EXPECT_EQ(r.trials_budget, m.trials_budget);
  ASSERT_EQ(r.strata.size(), m.strata.size());
  for (std::size_t s = 0; s < m.strata.size(); ++s) {
    EXPECT_EQ(r.strata[s].layer, m.strata[s].layer);
    EXPECT_EQ(r.strata[s].bit_class, m.strata[s].bit_class);
    EXPECT_EQ(r.strata[s].bit_lo, m.strata[s].bit_lo);
    EXPECT_EQ(r.strata[s].bit_hi, m.strata[s].bit_hi);
    // Weights round-trip through hex bit patterns, so equality is exact.
    EXPECT_EQ(r.strata[s].weight, m.strata[s].weight);
  }
  EXPECT_EQ(r.stratum_caps, m.stratum_caps);
  EXPECT_EQ(r.stratum_attempt_caps, m.stratum_attempt_caps);
}

TEST(ShardManifestTest, RejectsUnsupportedVersion) {
  ShardManifest m;
  m.version = kShardManifestVersion + 1;
  m.kind = "classification";
  m.log = "x.log";
  expect_refusal([&] { shard_manifest_from_json(shard_manifest_to_json(m)); },
                 "unsupported shard manifest version");
}

TEST(ShardManifestTest, RejectsMalformedJson) {
  EXPECT_THROW(shard_manifest_from_json("{\"version\":1"), Error);
  EXPECT_THROW(shard_manifest_from_json("not json at all"), Error);
}

// ------------------------------------------------ uniform equivalence ----

TEST(ShardEquivalence, UniformMergedMatchesSingleProcessAtAnyShardCount) {
  const Reference ref = uniform_reference();
  for (const std::int64_t shards : {1, 2, 3, 7}) {
    for (const std::int64_t threads : {1, 4}) {
      const TinyFixture& fx = tiny();
      FaultInjector fi(fx.model, tiny_fi_config());
      ShardDir dir("/tmp/pfi_shard_u" + std::to_string(shards) + "_t" +
                   std::to_string(threads));
      trace::TraceSink sink(false);
      const CampaignResult merged = run_sharded_classification(
          fi, fx.ds, uniform_config(threads), shards, dir.path, &sink);
      EXPECT_TRUE(same_bits(merged, ref.result))
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(trace::trace_to_jsonl(sink.take_events()), ref.jsonl)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(csv_bytes(merged), ref.csv)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardEquivalence, UniformMatchesWithPrefixCacheOff) {
  // The cache is a pure optimization; merged bytes must not depend on it.
  const Reference ref = uniform_reference();
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config(/*prefix_cache=*/false));
  ShardDir dir("/tmp/pfi_shard_u_nocache");
  trace::TraceSink sink(false);
  const CampaignResult merged = run_sharded_classification(
      fi, fx.ds, uniform_config(), 3, dir.path, &sink);
  EXPECT_TRUE(same_bits(merged, ref.result));
  EXPECT_EQ(trace::trace_to_jsonl(sink.take_events()), ref.jsonl);
}

TEST(ShardEquivalence, NativeInt8MergedMatchesSingleProcessAcrossCaches) {
  // Native-dtype campaigns inherit the full shard contract: merged counts,
  // trace JSONL, and CSV equal the single-process native run for any shard
  // count, with the prefix cache on or off. The reference events must carry
  // the deployed representation, not fp32.
  const TinyFixture& fx = tiny();
  Reference ref;
  {
    FaultInjector fi(fx.model, tiny_native_fi_config());
    trace::TraceSink sink(false);
    CampaignConfig cfg = uniform_config();
    cfg.trace = &sink;
    ref.result = run_classification_campaign(fi, fx.ds, cfg);
    const auto events = sink.take_events();
    ASSERT_FALSE(events.empty());
    for (const auto& ev : events) EXPECT_EQ(ev.dtype, DType::kInt8);
    ref.jsonl = trace::trace_to_jsonl(events);
    ref.csv = csv_bytes(ref.result);
  }

  for (const bool cache : {true, false}) {
    for (const std::int64_t shards : {1, 3}) {
      FaultInjector fi(fx.model, tiny_native_fi_config(cache));
      ShardDir dir("/tmp/pfi_shard_n" + std::to_string(shards) +
                   (cache ? "_c1" : "_c0"));
      trace::TraceSink sink(false);
      const CampaignResult merged = run_sharded_classification(
          fi, fx.ds, uniform_config(), shards, dir.path, &sink);
      const std::string tag = "shards=" + std::to_string(shards) +
                              " cache=" + (cache ? "on" : "off");
      EXPECT_TRUE(same_bits(merged, ref.result)) << tag;
      EXPECT_EQ(trace::trace_to_jsonl(sink.take_events()), ref.jsonl) << tag;
      EXPECT_EQ(csv_bytes(merged), ref.csv) << tag;
    }
  }
}

TEST(ShardEquivalence, UniformCountsOnlyMergeNeedsNoEvents) {
  // Without a merge sink, shards may skip event recording entirely.
  const Reference ref = uniform_reference();
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_u_noevents");
  const CampaignResult merged =
      run_sharded_classification(fi, fx.ds, uniform_config(), 2, dir.path);
  EXPECT_TRUE(same_bits(merged, ref.result));
}

TEST(ShardEquivalence, UniformAttemptCapGivesUpIdentically) {
  // A cap too small for the trial target: the single-process engine folds
  // cap attempts and returns a partial result with gave_up set. The merge
  // must reproduce that, not throw ShardHorizonExhausted.
  const TinyFixture& fx = tiny();
  CampaignConfig cfg = uniform_config(1, /*trials=*/1000);
  cfg.attempt_cap = 4;
  CampaignResult single;
  {
    FaultInjector fi(fx.model, tiny_fi_config());
    single = run_classification_campaign(fi, fx.ds, cfg);
  }
  ASSERT_EQ(single.gave_up, 1u);

  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_u_cap");
  const CampaignResult merged =
      run_sharded_classification(fi, fx.ds, cfg, 3, dir.path);
  EXPECT_TRUE(same_bits(merged, single));
}

// ---------------------------------------------- stratified equivalence ----

TEST(ShardEquivalence, StratifiedMergedMatchesSingleProcessAtAnyShardCount) {
  const TinyFixture& fx = tiny();
  StratifiedResult ref;
  std::string ref_jsonl;
  {
    FaultInjector fi(fx.model, tiny_fi_config());
    trace::TraceSink sink(false);
    StratifiedCampaignConfig scfg = stratified_config();
    scfg.base.trace = &sink;
    ref = run_stratified_campaign(fi, fx.ds, scfg);
    ref_jsonl = trace::trace_to_jsonl(sink.take_events());
  }
  std::string ref_csv;
  {
    static const std::string path = "/tmp/pfi_shard_sref.csv";
    write_stratified_csv(path, {{"tiny", ref}});
    ref_csv = util::read_file(path);
    std::remove(path.c_str());
  }

  for (const std::int64_t shards : {1, 2, 3, 7}) {
    for (const std::int64_t threads : {1, 4}) {
      FaultInjector fi(fx.model, tiny_fi_config());
      ShardDir dir("/tmp/pfi_shard_s" + std::to_string(shards) + "_t" +
                   std::to_string(threads));
      trace::TraceSink sink(false);
      const StratifiedResult merged = run_sharded_stratified(
          fi, fx.ds, stratified_config(threads), shards, dir.path, &sink);

      const std::string tag = "shards=" + std::to_string(shards) +
                              " threads=" + std::to_string(threads);
      EXPECT_TRUE(same_bits(merged.totals, ref.totals)) << tag;
      EXPECT_EQ(merged.pruned, ref.pruned) << tag;
      EXPECT_EQ(merged.golden_passes, ref.golden_passes) << tag;
      EXPECT_EQ(merged.faulty_passes, ref.faulty_passes) << tag;
      ASSERT_EQ(merged.strata.size(), ref.strata.size()) << tag;
      for (std::size_t s = 0; s < ref.strata.size(); ++s) {
        EXPECT_TRUE(same_bits(merged.strata[s].counts, ref.strata[s].counts))
            << tag << " stratum " << s;
        EXPECT_EQ(merged.strata[s].pruned, ref.strata[s].pruned)
            << tag << " stratum " << s;
        EXPECT_EQ(merged.strata[s].executed, ref.strata[s].executed)
            << tag << " stratum " << s;
        EXPECT_EQ(merged.strata[s].attempts, ref.strata[s].attempts)
            << tag << " stratum " << s;
        EXPECT_EQ(merged.strata[s].stopped_early, ref.strata[s].stopped_early)
            << tag << " stratum " << s;
        EXPECT_EQ(merged.strata[s].gave_up, ref.strata[s].gave_up)
            << tag << " stratum " << s;
      }
      EXPECT_EQ(trace::trace_to_jsonl(sink.take_events()), ref_jsonl) << tag;

      const std::string path = "/tmp/pfi_shard_smerged.csv";
      write_stratified_csv(path, {{"tiny", merged}});
      EXPECT_EQ(util::read_file(path), ref_csv) << tag;
      std::remove(path.c_str());
    }
  }
}

// ----------------------------------------------------- crash recovery ----

TEST(ShardCrash, KilledShardResumesToIdenticalMerge) {
  const Reference ref = uniform_reference();
  const TinyFixture& fx = tiny();
  const std::int64_t S = 2;
  ShardDir dir("/tmp/pfi_shard_crash");
  CampaignConfig cfg = uniform_config();

  // Shard 1 completes; shard 0 "dies" right after its first durable commit
  // (exactly the on-disk state of a kill -9 mid-run).
  {
    FaultInjector fi(fx.model, tiny_fi_config());
    ShardPlan p1{.shards = S, .shard_index = 1, .record_events = true};
    EXPECT_EQ(run_classification_shard(fi, fx.ds, cfg, p1, dir.path)
                  .manifest.done,
              1u);
    ShardPlan p0{.shards = S, .shard_index = 0, .record_events = true,
                 .fail_after_commits = 1};
    EXPECT_THROW(run_classification_shard(fi, fx.ds, cfg, p0, dir.path),
                 CampaignAborted);
  }

  // Restart shard 0: it resumes from its checkpoint and finishes.
  {
    FaultInjector fi(fx.model, tiny_fi_config());
    ShardPlan p0{.shards = S, .shard_index = 0, .record_events = true};
    EXPECT_EQ(run_classification_shard(fi, fx.ds, cfg, p0, dir.path)
                  .manifest.done,
              1u);
  }

  trace::TraceSink sink(false);
  const ShardMerge merged = merge_shards(dir.manifests(S), &sink);
  EXPECT_EQ(merged.kind, "classification");
  EXPECT_TRUE(same_bits(merged.classification, ref.result));
  EXPECT_EQ(trace::trace_to_jsonl(sink.take_events()), ref.jsonl);
}

TEST(ShardCrash, TornLogTailIsIgnored) {
  const Reference ref = uniform_reference();
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_torn");
  CampaignConfig cfg = uniform_config();
  for (std::int64_t k = 0; k < 2; ++k) {
    ShardPlan p{.shards = 2, .shard_index = k, .record_events = true};
    run_classification_shard(fi, fx.ds, cfg, p, dir.path);
  }
  // A kill mid-append leaves a torn, non-JSON tail past the committed size;
  // the digest covers only the committed prefix, so the merge ignores it.
  util::append_file_sync(shard_paths(dir.path, 0, 2).log, "{\"rec\":1,\"at");
  const ShardMerge merged = merge_shards(dir.manifests(2));
  EXPECT_TRUE(same_bits(merged.classification, ref.result));
}

TEST(ShardCrash, HorizonExhaustionResumesAndMergesIdentically) {
  // A deliberately tiny horizon: 4 attempts cannot yield 24 trials, so the
  // merge demands a resume round — after which the bytes match anyway.
  const Reference ref = uniform_reference();
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_horizon");
  CampaignConfig cfg = uniform_config();
  const auto run_all = [&](std::int64_t horizon) {
    for (std::int64_t k = 0; k < 2; ++k) {
      ShardPlan p{.shards = 2, .shard_index = k, .horizon = horizon,
                  .record_events = true};
      run_classification_shard(fi, fx.ds, cfg, p, dir.path);
    }
  };
  run_all(4);
  expect_refusal([&] { merge_shards(dir.manifests(2)); },
                 "resume the shards with a larger horizon");
  EXPECT_THROW(merge_shards(dir.manifests(2)), ShardHorizonExhausted);

  run_all(16);  // same checkpoints — only the new attempts are computed
  trace::TraceSink sink(false);
  const ShardMerge merged = merge_shards(dir.manifests(2), &sink);
  EXPECT_TRUE(same_bits(merged.classification, ref.result));
  EXPECT_EQ(trace::trace_to_jsonl(sink.take_events()), ref.jsonl);
}

// ----------------------------------------------------- merge refusals ----

/// A complete, healthy 2-shard uniform campaign to perturb.
struct HealthySet {
  explicit HealthySet(const std::string& dir_path) : dir(dir_path) {
    const TinyFixture& fx = tiny();
    FaultInjector fi(fx.model, tiny_fi_config());
    const CampaignConfig cfg = uniform_config();
    for (std::int64_t k = 0; k < 2; ++k) {
      ShardPlan p{.shards = 2, .shard_index = k, .record_events = true};
      run_classification_shard(fi, fx.ds, cfg, p, dir.path);
    }
  }
  ShardDir dir;
};

TEST(ShardMergeRefusal, EmptyManifestSet) {
  expect_refusal([] { merge_shards({}); }, "at least one shard manifest");
}

TEST(ShardMergeRefusal, SinkMustNotCaptureLogits) {
  HealthySet set("/tmp/pfi_shard_ref_logits");
  trace::TraceSink sink(true);
  expect_refusal([&] { merge_shards(set.dir.manifests(2), &sink); },
                 "must not capture logits");
}

TEST(ShardMergeRefusal, FingerprintMismatch) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir a("/tmp/pfi_shard_ref_fpa");
  ShardDir b("/tmp/pfi_shard_ref_fpb");
  CampaignConfig cfg = uniform_config();
  run_classification_shard(fi, fx.ds, cfg,
                           ShardPlan{.shards = 2, .shard_index = 0}, a.path);
  cfg.seed += 1;  // a different campaign entirely
  run_classification_shard(fi, fx.ds, cfg,
                           ShardPlan{.shards = 2, .shard_index = 1}, b.path);
  expect_refusal(
      [&] {
        merge_shards({shard_paths(a.path, 0, 2).manifest,
                      shard_paths(b.path, 1, 2).manifest});
      },
      "disagree on the campaign fingerprint");
}

TEST(ShardMergeRefusal, KindMix) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir a("/tmp/pfi_shard_ref_kinda");
  ShardDir b("/tmp/pfi_shard_ref_kindb");
  run_classification_shard(fi, fx.ds, uniform_config(),
                           ShardPlan{.shards = 2, .shard_index = 0}, a.path);
  run_stratified_shard(fi, fx.ds, stratified_config(),
                       ShardPlan{.shards = 2, .shard_index = 1}, b.path);
  expect_refusal(
      [&] {
        merge_shards({shard_paths(a.path, 0, 2).manifest,
                      shard_paths(b.path, 1, 2).manifest});
      },
      "mix campaign kinds");
}

TEST(ShardMergeRefusal, ShardCountMismatch) {
  HealthySet set("/tmp/pfi_shard_ref_count");
  const std::string path = shard_paths(set.dir.path, 1, 2).manifest;
  ShardManifest m = read_shard_manifest(path);
  m.shards = 3;
  util::atomic_write_file(path, shard_manifest_to_json(m));
  expect_refusal([&] { merge_shards(set.dir.manifests(2)); },
                 "disagree on the shard count");
}

TEST(ShardMergeRefusal, HorizonMismatch) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_ref_horizon");
  const CampaignConfig cfg = uniform_config();
  run_classification_shard(
      fi, fx.ds, cfg,
      ShardPlan{.shards = 2, .shard_index = 0, .horizon = 64}, dir.path);
  run_classification_shard(
      fi, fx.ds, cfg,
      ShardPlan{.shards = 2, .shard_index = 1, .horizon = 128}, dir.path);
  expect_refusal([&] { merge_shards(dir.manifests(2)); },
                 "disagree on the attempt horizon");
}

TEST(ShardMergeRefusal, OutOfRangeShardIndex) {
  HealthySet set("/tmp/pfi_shard_ref_range");
  const std::string path = shard_paths(set.dir.path, 1, 2).manifest;
  ShardManifest m = read_shard_manifest(path);
  m.shard_index = 5;
  util::atomic_write_file(path, shard_manifest_to_json(m));
  expect_refusal(
      [&] {
        merge_shards({shard_paths(set.dir.path, 0, 2).manifest, path});
      },
      "is out of range");
}

TEST(ShardMergeRefusal, DuplicateShardIndex) {
  HealthySet set("/tmp/pfi_shard_ref_dup");
  const std::string m0 = shard_paths(set.dir.path, 0, 2).manifest;
  expect_refusal([&] { merge_shards({m0, m0}); }, "duplicate shard index 0");
}

TEST(ShardMergeRefusal, MissingShard) {
  HealthySet set("/tmp/pfi_shard_ref_missing");
  expect_refusal(
      [&] { merge_shards({shard_paths(set.dir.path, 0, 2).manifest}); },
      "missing shard 1 of 2");
}

TEST(ShardMergeRefusal, UnfinishedShard) {
  const TinyFixture& fx = tiny();
  ShardDir dir("/tmp/pfi_shard_ref_undone");
  const CampaignConfig cfg = uniform_config();
  {
    FaultInjector fi(fx.model, tiny_fi_config());
    run_classification_shard(fi, fx.ds, cfg,
                             ShardPlan{.shards = 2, .shard_index = 1},
                             dir.path);
    // Crash after the SECOND durable commit: the manifest on disk is wave
    // one's, honestly reporting done=0.
    ShardPlan p0{.shards = 2, .shard_index = 0, .fail_after_commits = 2};
    EXPECT_THROW(run_classification_shard(fi, fx.ds, cfg, p0, dir.path),
                 CampaignAborted);
  }
  ASSERT_EQ(read_shard_manifest(shard_paths(dir.path, 0, 2).manifest).done,
            0u);
  expect_refusal([&] { merge_shards(dir.manifests(2)); },
                 "has not finished");
}

TEST(ShardMergeRefusal, TruncatedLog) {
  HealthySet set("/tmp/pfi_shard_ref_trunc");
  const std::string log = shard_paths(set.dir.path, 0, 2).log;
  std::string text = util::read_file(log);
  ASSERT_GT(text.size(), 10u);
  text.resize(text.size() - 10);
  util::atomic_write_file(log, text);
  expect_refusal([&] { merge_shards(set.dir.manifests(2)); },
                 "is truncated");
}

TEST(ShardMergeRefusal, CorruptedLog) {
  HealthySet set("/tmp/pfi_shard_ref_corrupt");
  const std::string log = shard_paths(set.dir.path, 0, 2).log;
  std::string text = util::read_file(log);
  ASSERT_GT(text.size(), 20u);
  text[text.size() / 2] ^= 1;  // same length, different bytes
  util::atomic_write_file(log, text);
  expect_refusal([&] { merge_shards(set.dir.manifests(2)); },
                 "log digest mismatch");
}

TEST(ShardMergeRefusal, TraceRequestedButEventsNotRecorded) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_ref_noev");
  const CampaignConfig cfg = uniform_config();
  for (std::int64_t k = 0; k < 2; ++k) {
    ShardPlan p{.shards = 2, .shard_index = k};  // record_events = false
    run_classification_shard(fi, fx.ds, cfg, p, dir.path);
  }
  trace::TraceSink sink(false);
  expect_refusal([&] { merge_shards(dir.manifests(2), &sink); },
                 "recorded no events");
}

// ------------------------------------------------------ shard refusals ----

TEST(ShardRun, RefusesExternalCheckpoint) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_ref_ckpt");
  CampaignCheckpointer ckpt("/tmp/pfi_shard_ref_ckpt_external.json");
  CampaignConfig cfg = uniform_config();
  cfg.checkpoint = &ckpt;
  expect_refusal(
      [&] {
        run_classification_shard(fi, fx.ds, cfg,
                                 ShardPlan{.shards = 2, .shard_index = 0},
                                 dir.path);
      },
      "manage their own checkpoint");
  std::remove("/tmp/pfi_shard_ref_ckpt_external.json");
}

TEST(ShardRun, RefusesCiTargetStratified) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_ref_ci");
  StratifiedCampaignConfig scfg = stratified_config();
  scfg.target_half_width = 0.05;
  expect_refusal(
      [&] {
        run_stratified_shard(fi, fx.ds, scfg,
                             ShardPlan{.shards = 2, .shard_index = 0},
                             dir.path);
      },
      "cannot be sharded");
}

TEST(ShardRun, RefusesInvalidPlan) {
  const TinyFixture& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  ShardDir dir("/tmp/pfi_shard_ref_plan");
  EXPECT_THROW(run_classification_shard(
                   fi, fx.ds, uniform_config(),
                   ShardPlan{.shards = 2, .shard_index = 2}, dir.path),
               Error);
  EXPECT_THROW(run_classification_shard(
                   fi, fx.ds, uniform_config(),
                   ShardPlan{.shards = 0, .shard_index = 0}, dir.path),
               Error);
}

}  // namespace
}  // namespace pfi::core
