// Differential correctness harness for the native low-precision inference
// paths (kernels/lowp.hpp + the Conv2d/Linear dtype dispatch).
//
// The INT8 GEMM is integer arithmetic end to end, so unlike the fp32
// kernel it can be validated EXACTLY:
//  1. gemm_i8 against an int64-accumulator scalar oracle over a 1..67
//     shape sweep (no error bounds — the i32 result must match to the bit),
//  2. memcmp bit-identity across block configurations x thread counts x
//     ISAs (scalar / AVX2 madd / VNNI, whichever the host supports),
//  3. the full Conv2d/Linear forward_int8 path against a from-scratch
//     oracle that re-derives im2col, the quantizers, and the fma
//     requantize epilogue — bit-equal, including grouped/strided convs,
//  4. native vs fp32 execution within the analytic quantization-error
//     bound (the "one quantization ULP" differential), and native
//     single-bit code flips round-tripping bit-identically through the
//     deployed representation (the emulated injector's flip semantics).
// The fp16/bf16 storage path widens exactly, so its forward must be
// BIT-EQUAL to the fp32 forward over pre-narrowed operands.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/fault_injector.hpp"
#include "kernels/kernels.hpp"
#include "kernels/lowp.hpp"
#include "nn/nn.hpp"
#include "quant/quant.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pfi::kernels {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kQNaN = std::numeric_limits<float>::quiet_NaN();

/// Restores the kernel configuration (including the pinned INT8 ISA) after
/// every test.
class NativeGemmI8 : public ::testing::Test {
 protected:
  void TearDown() override {
    set_block_config(BlockConfig{});
    set_threads(1);
    set_i8_isa(I8Isa::kAuto);
  }
};
using NativeConvInt8 = NativeGemmI8;
using NativeLinearInt8 = NativeGemmI8;
using NativeStorage16 = NativeGemmI8;
using NativeCache = NativeGemmI8;
using NativeInjector = NativeGemmI8;

/// Every INT8 ISA the host supports (kScalar always; kMadd/kVnni probed —
/// set_i8_isa throws on unsupported hardware).
std::vector<I8Isa> supported_i8_isas() {
  std::vector<I8Isa> isas{I8Isa::kScalar};
  for (const I8Isa isa : {I8Isa::kMadd, I8Isa::kVnni}) {
    try {
      set_i8_isa(isa);
      isas.push_back(isa);
    } catch (const Error&) {
    }
  }
  set_i8_isa(I8Isa::kAuto);
  return isas;
}

std::vector<float> random_matrix(std::int64_t n, Rng& rng, float lo = -2.0f,
                                 float hi = 2.0f) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

float logical(const std::vector<float>& m, std::int64_t ld, bool trans,
              std::int64_t r, std::int64_t c) {
  return trans ? m[static_cast<std::size_t>(c * ld + r)]
               : m[static_cast<std::size_t>(r * ld + c)];
}

float absmax_of(const std::vector<float>& v) {
  float a = 0.0f;
  for (const float x : v) a = std::max(a, std::abs(x));
  return a;
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

// ----------------------------------------------- int64 oracle shape sweep ----

TEST_F(NativeGemmI8, MatchesInt64OracleOnShapeSweep) {
  Rng rng(0x17e8);
  const std::int64_t dims[] = {1, 2, 3, 5, 8, 13, 31, 67};
  int case_index = 0;
  for (const auto m : dims) {
    for (const auto n : dims) {
      for (const auto k : dims) {
        const bool ta = (case_index & 1) != 0;
        const bool tb = (case_index & 2) != 0;
        ++case_index;
        const std::int64_t lda = ta ? m : k;
        const std::int64_t ldb = tb ? k : n;
        const auto a = random_matrix(m * k, rng);
        const auto b = random_matrix(k * n, rng);

        // Per-row weight scales for A, one dynamic tensor scale for B —
        // the conv operand roles.
        const auto row_scales = per_row_scales_i8(m, k, a.data(), lda, ta);
        ASSERT_EQ(row_scales.size(), static_cast<std::size_t>(m));
        const float b_scale = scale_from_absmax(absmax_of(b));

        PackedPanelsI8 pa, pb;
        quantize_pack_a_i8(m, k, a.data(), lda, ta, block_config().mr,
                           row_scales.data(), pa);
        quantize_pack_b_i8_tensor(k, n, b.data(), ldb, tb, pb);
        ASSERT_EQ(pb.scale.size(), 1u);
        EXPECT_EQ(pb.scale[0], b_scale)
            << "per-tensor pack scale drifted from scale_from_absmax";

        std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
        gemm_i8(m, n, k, pa, pb, c.data(), n);

        // The oracle re-quantizes every element independently with the
        // same scalar quantizer and accumulates in int64; the kernel's
        // i32 result must match exactly.
        for (std::int64_t i = 0; i < m; ++i) {
          for (std::int64_t j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (std::int64_t kk = 0; kk < k; ++kk) {
              const std::int64_t qa =
                  quantize_unit(logical(a, lda, ta, i, kk), row_scales[i]);
              const std::int64_t qb =
                  quantize_unit(logical(b, ldb, tb, kk, j), b_scale);
              acc += qa * qb;
            }
            ASSERT_EQ(static_cast<std::int64_t>(
                          c[static_cast<std::size_t>(i * n + j)]),
                      acc)
                << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
                << " tb=" << tb << " at (" << i << "," << j << ")";
          }
        }
      }
    }
  }
}

TEST_F(NativeGemmI8, BitIdenticalAcrossBlockConfigsThreadsAndIsa) {
  Rng rng(0x5ca1e);
  const std::int64_t m = 67, n = 45, k = 129;
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const auto row_scales = per_row_scales_i8(m, k, a.data(), k, false);

  const auto run = [&](int mr) {
    PackedPanelsI8 pa, pb;
    quantize_pack_a_i8(m, k, a.data(), k, false, mr, row_scales.data(), pa);
    quantize_pack_b_i8_tensor(k, n, b.data(), n, false, pb);
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
    gemm_i8(m, n, k, pa, pb, c.data(), n);
    return c;
  };

  set_i8_isa(I8Isa::kScalar);
  const auto baseline = run(block_config().mr);

  const BlockConfig configs[] = {
      {.mc = 8, .nc = 8, .kc = 8, .mr = 4},
      {.mc = 8, .nc = 16, .kc = 1, .mr = 8},
      {.mc = 16, .nc = 8, .kc = 7, .mr = 4},
      {.mc = 32, .nc = 24, .kc = 64, .mr = 6},
      {.mc = 256, .nc = 512, .kc = 1024, .mr = 8},  // one tile, one panel
      {.mc = 40, .nc = 40, .kc = 33, .mr = 4},
  };
  for (const I8Isa isa : supported_i8_isas()) {
    set_i8_isa(isa);
    for (const auto& cfg : configs) {
      set_block_config(cfg);
      for (const int t : {1, 2, 4}) {
        set_threads(t);
        const auto c = run(cfg.mr);
        EXPECT_EQ(std::memcmp(baseline.data(), c.data(),
                              c.size() * sizeof(std::int32_t)),
                  0)
            << "isa=" << static_cast<int>(isa) << " mc=" << cfg.mc
            << " nc=" << cfg.nc << " kc=" << cfg.kc << " mr=" << cfg.mr
            << " threads=" << t << " changed INT8 GEMM bits";
      }
    }
    set_block_config(BlockConfig{});
    set_threads(1);
  }
}

// --------------------------------------------------- quantizer semantics ----

TEST_F(NativeGemmI8, QuantizeUnitDeterministicSaturation) {
  // Non-finite activations must map to fixed codes, never abort: NaN is
  // "unknown magnitude" -> most-negative code, +-Inf saturate the grid.
  EXPECT_EQ(quantize_unit(kQNaN, 0.5f), -127);
  EXPECT_EQ(quantize_unit(kInf, 0.5f), 127);
  EXPECT_EQ(quantize_unit(-kInf, 0.5f), -127);
  EXPECT_EQ(quantize_unit(1e30f, 0.5f), 127);
  EXPECT_EQ(quantize_unit(-1e30f, 0.5f), -127);
  // Round-to-nearest-even at scale 1: halfway cases break to even.
  EXPECT_EQ(quantize_unit(0.5f, 1.0f), 0);
  EXPECT_EQ(quantize_unit(1.5f, 1.0f), 2);
  EXPECT_EQ(quantize_unit(2.5f, 1.0f), 2);
  EXPECT_EQ(quantize_unit(-0.5f, 1.0f), 0);
  EXPECT_EQ(quantize_unit(-1.5f, 1.0f), -2);
}

TEST_F(NativeGemmI8, PerRowScalesRejectNonFiniteWeights) {
  std::vector<float> w(3 * 4, 0.25f);
  const auto ok = per_row_scales_i8(3, 4, w.data(), 4, false);
  ASSERT_EQ(ok.size(), 3u);
  for (const float s : ok) EXPECT_FLOAT_EQ(s, 0.25f / 127.0f);

  // An all-zero row is a valid (degenerate) calibration: 1/127 fallback.
  std::fill(w.begin() + 4, w.begin() + 8, 0.0f);
  const auto with_zero = per_row_scales_i8(3, 4, w.data(), 4, false);
  EXPECT_FLOAT_EQ(with_zero[1], 1.0f / 127.0f);

  // A NaN/Inf weight has no INT8 code; silent saturation would deploy
  // garbage, so the calibration must refuse.
  w[5] = kQNaN;
  EXPECT_THROW(per_row_scales_i8(3, 4, w.data(), 4, false), Error);
  w[5] = kInf;
  EXPECT_THROW(per_row_scales_i8(3, 4, w.data(), 4, false), Error);
}

TEST_F(NativeGemmI8, CodeGridFlipRoundTripsBitIdentically) {
  // The property that makes native weight faults equal the emulated
  // injector's flip semantics: dequantize(flip(q)) re-quantizes to exactly
  // flip(q) under the frozen scale, so the mutated float weight deploys as
  // precisely the flipped code on repack.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const float scale = rng.uniform(1e-4f, 3.0f);
    for (int q = -127; q <= 127; ++q) {
      for (int bit = 0; bit < 7; ++bit) {  // sign bit handled below
        const auto flipped = static_cast<std::int8_t>(
            static_cast<std::int8_t>(q) ^ static_cast<std::int8_t>(1 << bit));
        if (flipped == -128) continue;  // not on the symmetric grid
        const float deployed = static_cast<float>(flipped) * scale;
        EXPECT_EQ(quantize_unit(deployed, scale), flipped)
            << "q=" << q << " bit=" << bit << " scale=" << scale;
      }
    }
  }
  // Sign-bit flip of code 0 lands on -128, which the symmetric [-127, 127]
  // grid cannot hold: the deployed code saturates to -127. Pin that
  // decision so a change to it is deliberate.
  const float s = 0.5f;
  EXPECT_EQ(quantize_unit(-128.0f * s, s), -127);
}

// ---------------------------------------- module forward: exact oracles ----

struct ConvCase {
  std::int64_t cin, cout, kernel, stride, padding, groups, h;
  bool bias;
};
constexpr ConvCase kConvCases[] = {
    {2, 3, 1, 1, 0, 1, 5, true},    // 1x1
    {3, 4, 3, 1, 1, 1, 7, true},    // the workhorse 3x3
    {3, 2, 3, 2, 1, 1, 9, false},   // strided
    {4, 4, 2, 2, 0, 1, 8, true},    // even kernel, no pad
    {4, 6, 3, 1, 1, 2, 6, true},    // grouped
    {3, 3, 3, 1, 1, 3, 6, false},   // depthwise
    {4, 8, 5, 2, 2, 2, 11, true},   // grouped + strided + k=5
};

/// From-scratch oracle of Conv2d::forward_int8: re-derives im2col, the
/// per-output-channel weight scales, the per-(sample, group) activation
/// scale, int64 accumulation, and the fma requantize epilogue. Everything
/// is recomputed independently, so agreement pins the whole pipeline.
Tensor conv_int8_oracle(const nn::Conv2d& conv_const, const Tensor& x,
                        const std::vector<float>& w_scales) {
  auto& conv = const_cast<nn::Conv2d&>(conv_const);
  const auto& o = conv.options();
  const std::int64_t n_batch = x.size(0);
  const std::int64_t cin_g = o.in_channels / o.groups;
  const std::int64_t cout_g = o.out_channels / o.groups;
  const std::int64_t col_rows = cin_g * o.kernel * o.kernel;
  const std::int64_t h_out = conv.out_size(x.size(2));
  const std::int64_t w_out = conv.out_size(x.size(3));
  Tensor y({n_batch, o.out_channels, h_out, w_out});

  const auto col_value = [&](std::int64_t n, std::int64_t grp,
                             std::int64_t row, std::int64_t oh,
                             std::int64_t ow) {
    const std::int64_t ic = row / (o.kernel * o.kernel);
    const std::int64_t kh = (row / o.kernel) % o.kernel;
    const std::int64_t kw = row % o.kernel;
    const std::int64_t ih = oh * o.stride - o.padding + kh;
    const std::int64_t iw = ow * o.stride - o.padding + kw;
    if (ih < 0 || ih >= x.size(2) || iw < 0 || iw >= x.size(3)) return 0.0f;
    return x.at(n, grp * cin_g + ic, ih, iw);
  };

  const auto& w = conv.weight().value;
  for (std::int64_t grp = 0; grp < o.groups; ++grp) {
    for (std::int64_t n = 0; n < n_batch; ++n) {
      // Per-tensor dynamic activation scale over this (sample, group)'s
      // im2col matrix — padding zeros included, as the kernel sees it.
      float absmax = 0.0f;
      for (std::int64_t row = 0; row < col_rows; ++row) {
        for (std::int64_t oh = 0; oh < h_out; ++oh) {
          for (std::int64_t ow = 0; ow < w_out; ++ow) {
            const float v = col_value(n, grp, row, oh, ow);
            if (std::isfinite(v)) absmax = std::max(absmax, std::abs(v));
          }
        }
      }
      const float sa = scale_from_absmax(absmax);
      for (std::int64_t oc_g = 0; oc_g < cout_g; ++oc_g) {
        const std::int64_t oc = grp * cout_g + oc_g;
        const float sw = w_scales[static_cast<std::size_t>(oc)];
        const float bias_v = o.bias ? conv.bias().value[oc] : 0.0f;
        for (std::int64_t oh = 0; oh < h_out; ++oh) {
          for (std::int64_t ow = 0; ow < w_out; ++ow) {
            std::int64_t acc = 0;
            for (std::int64_t row = 0; row < col_rows; ++row) {
              const std::int64_t ic = row / (o.kernel * o.kernel);
              const std::int64_t kh = (row / o.kernel) % o.kernel;
              const std::int64_t kw = row % o.kernel;
              const std::int64_t qw =
                  quantize_unit(w.at(oc, ic, kh, kw), sw);
              const std::int64_t qa =
                  quantize_unit(col_value(n, grp, row, oh, ow), sa);
              acc += qw * qa;
            }
            y.at(n, oc, oh, ow) = std::fma(
                sw * sa, static_cast<float>(acc), bias_v);
          }
        }
      }
    }
  }
  return y;
}

TEST_F(NativeConvInt8, ForwardMatchesExactOracleAcrossConfigSweep) {
  Rng rng(91);
  for (const auto& cs : kConvCases) {
    nn::Conv2d conv(
        nn::Conv2dOptions{.in_channels = cs.cin, .out_channels = cs.cout,
                          .kernel = cs.kernel, .stride = cs.stride,
                          .padding = cs.padding, .groups = cs.groups,
                          .bias = cs.bias},
        rng);
    const Tensor x = Tensor::rand({2, cs.cin, cs.h, cs.h}, rng, -1.0f, 1.0f);
    conv.set_native_dtype(LowPrec::kInt8);
    const Tensor y = conv(x).clone();
    ASSERT_EQ(conv.native_scales().size(),
              static_cast<std::size_t>(cs.cout));
    const Tensor ref = conv_int8_oracle(conv, x, conv.native_scales());
    EXPECT_TRUE(bit_equal(y, ref))
        << "native INT8 conv k=" << cs.kernel << " s=" << cs.stride
        << " p=" << cs.padding << " g=" << cs.groups
        << " diverged from the int64 oracle (max diff "
        << y.max_abs_diff(ref) << ")";
  }
}

TEST_F(NativeConvInt8, BitIdenticalAcrossThreadsBlocksAndIsa) {
  Rng rng(92);
  nn::Conv2d conv(
      nn::Conv2dOptions{.in_channels = 4, .out_channels = 6, .kernel = 3,
                        .stride = 2, .padding = 1, .groups = 2},
      rng);
  const Tensor x = Tensor::rand({2, 4, 11, 11}, rng, -1.0f, 1.0f);
  conv.set_native_dtype(LowPrec::kInt8);
  const Tensor baseline = conv(x).clone();
  for (const I8Isa isa : supported_i8_isas()) {
    set_i8_isa(isa);
    for (const BlockConfig& cfg :
         {BlockConfig{.mc = 8, .nc = 8, .kc = 8, .mr = 4},
          BlockConfig{.mc = 16, .nc = 32, .kc = 16, .mr = 6},
          BlockConfig{.mc = 64, .nc = 64, .kc = 128, .mr = 8}}) {
      set_block_config(cfg);
      for (const int t : {1, 2, 4}) {
        set_threads(t);
        conv.invalidate_weight_packs();  // force a repack under this config
        const Tensor y = conv(x).clone();
        EXPECT_TRUE(bit_equal(baseline, y))
            << "isa=" << static_cast<int>(isa) << " mr=" << cfg.mr
            << " threads=" << t << " changed native conv bits";
      }
    }
    set_block_config(BlockConfig{});
    set_threads(1);
  }
}

TEST_F(NativeLinearInt8, ForwardMatchesExactOracle) {
  Rng rng(93);
  for (const bool bias : {true, false}) {
    nn::Linear fc(13, 9, rng, bias);
    const Tensor x = Tensor::rand({4, 13}, rng, -1.5f, 1.5f);
    fc.set_native_dtype(LowPrec::kInt8);
    const Tensor y = fc(x).clone();
    const auto& sw = fc.native_scales();
    ASSERT_EQ(sw.size(), 9u);

    float absmax = 0.0f;
    for (const float v : x.data()) absmax = std::max(absmax, std::abs(v));
    const float sa = scale_from_absmax(absmax);
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t o = 0; o < 9; ++o) {
        std::int64_t acc = 0;
        for (std::int64_t j = 0; j < 13; ++j) {
          acc += static_cast<std::int64_t>(quantize_unit(x.at(i, j), sa)) *
                 quantize_unit(fc.weight().value.at(o, j),
                               sw[static_cast<std::size_t>(o)]);
        }
        const float b = bias ? fc.bias().value[o] : 0.0f;
        EXPECT_EQ(y.at(i, o),
                  std::fma(sa * sw[static_cast<std::size_t>(o)],
                           static_cast<float>(acc), b))
            << "bias=" << bias << " at (" << i << "," << o << ")";
      }
    }
  }
}

// ------------------------------- native vs fp32: quantization ULP bound ----

TEST_F(NativeLinearInt8, WithinQuantizationErrorBoundOfFp32) {
  // The differential the harness is named for: native INT8 execution must
  // sit within the analytic quantization-error envelope of the fp32
  // forward. With |x_q - x| <= sa/2 and |w_q - w| <= sw/2 per element, the
  // per-output bound is sw/2 * sum|x| + sa/2 * sum|w| + K/4 * sa * sw,
  // plus fp32 accumulation slop.
  Rng rng(94);
  nn::Linear fc(31, 7, rng);
  const Tensor x = Tensor::rand({3, 31}, rng, -2.0f, 2.0f);
  const Tensor y_fp32 = fc(x).clone();
  fc.set_native_dtype(LowPrec::kInt8);
  const Tensor y_i8 = fc(x).clone();
  const auto& sw = fc.native_scales();

  float absmax = 0.0f;
  for (const float v : x.data()) absmax = std::max(absmax, std::abs(v));
  const float sa = scale_from_absmax(absmax);
  for (std::int64_t i = 0; i < 3; ++i) {
    float sum_ax = 0.0f;
    for (std::int64_t j = 0; j < 31; ++j) sum_ax += std::abs(x.at(i, j));
    for (std::int64_t o = 0; o < 7; ++o) {
      float sum_aw = 0.0f;
      for (std::int64_t j = 0; j < 31; ++j) {
        sum_aw += std::abs(fc.weight().value.at(o, j));
      }
      const float so = sw[static_cast<std::size_t>(o)];
      const float bound = 0.5f * so * sum_ax + 0.5f * sa * sum_aw +
                          0.25f * 31.0f * sa * so + 1e-4f;
      EXPECT_LE(std::abs(y_i8.at(i, o) - y_fp32.at(i, o)), bound)
          << "native INT8 linear exceeded its quantization-error envelope "
          << "at (" << i << "," << o << ")";
    }
  }
}

// ------------------------------------------ fp16/bf16 storage bit-equality ----

TEST_F(NativeStorage16, LinearForwardBitEqualsPreNarrowedFp32) {
  // Widening 16-bit codes is exact, so the native forward must be
  // BIT-EQUAL to the fp32 forward over operands pre-rounded through the
  // storage format — no tolerance.
  Rng rng(95);
  for (const LowPrec native : {LowPrec::kFp16, LowPrec::kBf16}) {
    const Storage16 fmt =
        native == LowPrec::kFp16 ? Storage16::kFp16 : Storage16::kBf16;
    nn::Linear fc(11, 6, rng);
    nn::Linear ref(11, 6, rng);
    for (std::int64_t i = 0; i < 6 * 11; ++i) {
      ref.weight().value[i] = widen16(narrow16(fc.weight().value[i], fmt),
                                      fmt);
    }
    for (std::int64_t o = 0; o < 6; ++o) {
      ref.bias().value[o] = widen16(narrow16(fc.bias().value[o], fmt), fmt);
    }
    const Tensor x = Tensor::rand({3, 11}, rng, -2.0f, 2.0f);
    Tensor xr = x.clone();
    for (auto& v : xr.data()) v = widen16(narrow16(v, fmt), fmt);

    fc.set_native_dtype(native);
    const Tensor y_native = fc(x).clone();
    const Tensor y_ref = ref(xr).clone();
    EXPECT_TRUE(bit_equal(y_native, y_ref))
        << (native == LowPrec::kFp16 ? "fp16" : "bf16")
        << " storage path diverged from pre-narrowed fp32 (max diff "
        << y_native.max_abs_diff(y_ref) << ")";
  }
}

TEST_F(NativeStorage16, ConvForwardBitEqualsPreNarrowedFp32) {
  Rng rng(96);
  for (const LowPrec native : {LowPrec::kFp16, LowPrec::kBf16}) {
    const Storage16 fmt =
        native == LowPrec::kFp16 ? Storage16::kFp16 : Storage16::kBf16;
    const nn::Conv2dOptions opts{.in_channels = 3, .out_channels = 4,
                                 .kernel = 3, .stride = 2, .padding = 1};
    nn::Conv2d conv(opts, rng);
    nn::Conv2d ref(opts, rng);
    auto& wr = ref.weight().value;
    const auto& w = conv.weight().value;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      wr[i] = widen16(narrow16(w[i], fmt), fmt);
    }
    for (std::int64_t o = 0; o < 4; ++o) {
      ref.bias().value[o] =
          widen16(narrow16(conv.bias().value[o], fmt), fmt);
    }
    const Tensor x = Tensor::rand({2, 3, 9, 9}, rng, -1.0f, 1.0f);
    Tensor xr = x.clone();
    for (auto& v : xr.data()) v = widen16(narrow16(v, fmt), fmt);

    conv.set_native_dtype(native);
    const Tensor y_native = conv(x).clone();
    const Tensor y_ref = ref(xr).clone();
    EXPECT_TRUE(bit_equal(y_native, y_ref))
        << (native == LowPrec::kFp16 ? "fp16" : "bf16")
        << " conv storage path diverged from pre-narrowed fp32";
  }
}

// ----------------------------------------------- quantized pack coherence ----

TEST_F(NativeCache, AliasedWeightMutationIsNeverServedStaleQuantizedPack) {
  // The injector mutates weights through tensor aliases; the quantized
  // pack's own fingerprint must catch it even without invalidate().
  Rng rng(97);
  nn::Conv2d conv(
      nn::Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 3,
                        .padding = 1},
      rng);
  conv.set_native_dtype(LowPrec::kInt8);
  const Tensor x = Tensor::rand({1, 2, 5, 5}, rng, -1.0f, 1.0f);
  const Tensor y0 = conv(x).clone();
  EXPECT_TRUE(bit_equal(y0, conv(x).clone()));  // cached pack reused

  Tensor alias = conv.weight().value;
  const float golden = alias[0];
  // A mutation large enough to change the deployed code under the frozen
  // channel scale.
  alias[0] = golden + 64.0f * conv.native_scales()[0];
  const Tensor y_mut = conv(x).clone();
  EXPECT_FALSE(bit_equal(y0, y_mut))
      << "stale quantized pack served after aliased weight mutation";

  alias[0] = golden;
  EXPECT_TRUE(bit_equal(y0, conv(x).clone()))
      << "restoring the weight bits must restore the native output bits";
}

TEST_F(NativeCache, InvalidateDropsQuantizedAndStoragePacks) {
  Rng rng(98);
  nn::Linear fc(6, 5, rng);
  const Tensor x = Tensor::rand({2, 6}, rng, -1.0f, 1.0f);
  for (const LowPrec native :
       {LowPrec::kInt8, LowPrec::kFp16, LowPrec::kBf16}) {
    fc.set_native_dtype(native);
    const Tensor y0 = fc(x).clone();
    fc.invalidate_weight_packs();
    EXPECT_TRUE(bit_equal(y0, fc(x).clone()))
        << "repack after invalidate changed bits, native="
        << static_cast<int>(native);
  }
  fc.set_native_dtype(LowPrec::kNone);
}

// --------------------------------------------- FaultInjector integration ----

std::shared_ptr<nn::Sequential> small_conv_model(std::uint64_t seed) {
  Rng rng(seed);
  auto m = std::make_shared<nn::Sequential>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 1, .out_channels = 3, .kernel = 3,
                        .padding = 1},
      rng);
  m->emplace<nn::ReLU>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3,
                        .stride = 2, .padding = 1},
      rng);
  m->emplace<nn::GlobalAvgPool>();
  m->emplace<nn::Flatten>();
  m->emplace<nn::Linear>(4, 3, rng);
  m->eval();
  return m;
}

TEST_F(NativeInjector, NativeModeAppliedAndResetOnDestruction) {
  auto model = small_conv_model(5);
  auto* conv0 = dynamic_cast<nn::Conv2d*>(model->children()[0]);
  ASSERT_NE(conv0, nullptr);
  {
    core::FiConfig cfg{.input_shape = {1, 8, 8}, .batch_size = 1};
    cfg.dtype = core::DType::kInt8;
    cfg.native = true;
    core::FaultInjector fi(model, cfg);
    EXPECT_EQ(conv0->native_dtype(), LowPrec::kInt8);
    EXPECT_FALSE(conv0->native_scales().empty());
    for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
      EXPECT_EQ(fi.layer_dtype(l), core::DType::kInt8);
      EXPECT_TRUE(fi.layer_native(l));
    }
    EXPECT_NE(fi.describe().find("[int8-native]"), std::string::npos);
  }
  // The injector borrows the model; destruction returns it to fp32.
  EXPECT_EQ(conv0->native_dtype(), LowPrec::kNone);
}

TEST_F(NativeInjector, WeightFaultFlipsDeployedCodeAndRestores) {
  auto model = small_conv_model(6);
  core::FiConfig cfg{.input_shape = {1, 8, 8}, .batch_size = 1};
  cfg.dtype = core::DType::kInt8;
  cfg.native = true;
  core::FaultInjector fi(model, cfg);
  auto* conv0 = dynamic_cast<nn::Conv2d*>(model->children()[0]);
  ASSERT_NE(conv0, nullptr);
  const std::vector<float> golden_scales = conv0->native_scales();

  Rng rng(13);
  const Tensor x = Tensor::rand({1, 1, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor golden = fi.forward(x).clone();

  fi.declare_weight_fault({.layer = 0, .out_c = 1, .in_c = 0, .kh = 1,
                           .kw = 1},
                          core::single_bit_flip(6));
  const Tensor faulty = fi.forward(x).clone();
  EXPECT_FALSE(bit_equal(golden, faulty))
      << "a bit-6 code flip in a native INT8 conv must perturb the output";
  // Frozen golden scales: the fault must not re-calibrate the channel.
  EXPECT_EQ(conv0->native_scales(), golden_scales);

  fi.clear();
  EXPECT_TRUE(bit_equal(golden, fi.forward(x).clone()))
      << "clear() must restore the native output bits exactly";
}

TEST_F(NativeInjector, PerLayerResolutionOverrides) {
  auto model = small_conv_model(7);
  core::FiConfig cfg{.input_shape = {1, 8, 8}, .batch_size = 1};
  // Global fp32; one conv runs native INT8 and the other emulated fp16.
  core::FaultInjector probe(model, cfg);
  ASSERT_EQ(probe.num_layers(), 2);
  const std::string p0 = probe.layer_path(0);
  const std::string p1 = probe.layer_path(1);

  cfg.per_layer = {
      {.layer = p0, .dtype = core::DType::kInt8, .native = true},
      {.layer = p1, .dtype = core::DType::kFloat16, .native = false}};
  core::FaultInjector fi(model, cfg);
  EXPECT_EQ(fi.layer_dtype(0), core::DType::kInt8);
  EXPECT_TRUE(fi.layer_native(0));
  EXPECT_EQ(fi.layer_dtype(1), core::DType::kFloat16);
  EXPECT_FALSE(fi.layer_native(1));
  auto* conv0 = dynamic_cast<nn::Conv2d*>(model->children()[0]);
  auto* conv1 = dynamic_cast<nn::Conv2d*>(model->children()[2]);
  ASSERT_NE(conv0, nullptr);
  ASSERT_NE(conv1, nullptr);
  EXPECT_EQ(conv0->native_dtype(), LowPrec::kInt8);
  EXPECT_EQ(conv1->native_dtype(), LowPrec::kNone);  // emulated only

  core::FiConfig bad = cfg;
  bad.per_layer = {{.layer = "no.such.layer", .dtype = core::DType::kInt8}};
  EXPECT_THROW(core::FaultInjector(model, bad), Error);
}

TEST_F(NativeInjector, ReplicaReproducesNativeForwardBits) {
  auto model = small_conv_model(8);
  core::FiConfig cfg{.input_shape = {1, 8, 8}, .batch_size = 1};
  cfg.dtype = core::DType::kInt8;
  cfg.native = true;
  core::FaultInjector fi(model, cfg);
  const auto replica = fi.replicate();
  Rng rng(17);
  const Tensor x = Tensor::rand({1, 1, 8, 8}, rng, -1.0f, 1.0f);
  EXPECT_TRUE(bit_equal(fi.forward(x).clone(),
                        replica->forward(x).clone()))
      << "replicated native injector must reproduce forward bits";
}

}  // namespace
}  // namespace pfi::kernels
