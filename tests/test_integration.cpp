// Cross-module integration tests: the full paper workflows end-to-end at
// miniature scale. These are the closest in spirit to the paper's use-case
// sections (train -> inject -> measure).
#include <gtest/gtest.h>

#include <cmath>

#include "core/campaign.hpp"
#include "detect/yolo.hpp"
#include "interpret/gradcam.hpp"
#include "models/trainer.hpp"
#include "models/zoo.hpp"

namespace pfi {
namespace {

/// Shared trained model for the integration tests (expensive to train).
struct TrainedFixture {
  data::SyntheticDataset ds{data::cifar10_like()};
  std::shared_ptr<nn::Sequential> model;
  double accuracy = 0.0;

  TrainedFixture() {
    Rng rng(7);
    model = models::make_model("resnet18", {.num_classes = 10}, rng);
    models::train_classifier(*model, ds,
                             {.epochs = 2,
                              .batches_per_epoch = 30,
                              .batch_size = 16,
                              .lr = 0.05f,
                              .seed = 3});
    Rng eval_rng(5);
    accuracy = models::evaluate_accuracy(*model, ds, 8, 16, eval_rng);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

TEST(Integration, TrainedModelIsAccurate) {
  EXPECT_GT(fixture().accuracy, 0.7);
}

TEST(Integration, GoldenFaultyGoldenRoundTrip) {
  // Arm -> corrupt -> clear must return to bit-identical golden outputs,
  // across neuron AND weight faults.
  auto& f = fixture();
  f.model->eval();
  core::FaultInjector fi(f.model, {.input_shape = {3, 32, 32}, .batch_size = 1});
  Rng rng(9);
  const auto batch = f.ds.sample_batch(1, rng);
  const Tensor golden = fi.forward(batch.images).clone();

  fi.declare_neuron_fault(fi.random_neuron_location(rng),
                          core::constant_value(1e6f));
  fi.declare_weight_fault(fi.random_weight_location(rng),
                          core::constant_value(-1e6f));
  const Tensor faulty = fi.forward(batch.images).clone();
  EXPECT_GT(golden.max_abs_diff(faulty), 0.0f);

  fi.clear();
  const Tensor restored = fi.forward(batch.images);
  EXPECT_TRUE(allclose(golden, restored, 0.0f));
}

TEST(Integration, WeightFaultCorruptsEveryInference) {
  // Unlike neuron faults (runtime), weight faults persist across inferences
  // until cleared — the paper's offline model.
  auto& f = fixture();
  f.model->eval();
  core::FaultInjector fi(f.model, {.input_shape = {3, 32, 32}, .batch_size = 1});
  Rng rng(11);
  const auto batch = f.ds.sample_batch(1, rng);
  const Tensor golden = fi.forward(batch.images).clone();
  fi.declare_weight_fault({.layer = 0, .out_c = 0, .in_c = 0, .kh = 1, .kw = 1},
                          core::constant_value(50.0f));
  const Tensor a = fi.forward(batch.images).clone();
  const Tensor b = fi.forward(batch.images).clone();
  EXPECT_GT(golden.max_abs_diff(a), 0.0f);
  EXPECT_TRUE(allclose(a, b, 0.0f));
  fi.clear();
}

TEST(Integration, ExponentBitFlipsAreMoreSevereThanMantissa) {
  // Fp32 sign/exponent flips (bits 23..31) must corrupt more often than
  // low mantissa flips (bits 0..7) — the bit-position criticality result
  // every FI paper reports.
  auto& f = fixture();
  core::FaultInjector fi(f.model, {.input_shape = {3, 32, 32}, .batch_size = 1});

  auto campaign_with_bit = [&](int bit, std::uint64_t seed) {
    core::CampaignConfig cfg;
    cfg.trials = 120;
    cfg.error_model = core::single_bit_flip(bit);
    cfg.seed = seed;
    return core::run_classification_campaign(fi, f.ds, cfg).corruptions;
  };
  const auto high = campaign_with_bit(30, 13);  // exponent MSB
  const auto low = campaign_with_bit(2, 13);    // mantissa LSB area
  EXPECT_GE(high, low);
  EXPECT_GT(high, 0u) << "exponent-MSB flips should corrupt at least once";
}

TEST(Integration, Int8CampaignNeverProducesNonFinite) {
  // INT8's bounded domain cannot create NaN/Inf — a structural property
  // distinguishing it from FP32 injection (paper Sec. IV-A model).
  auto& f = fixture();
  core::FaultInjector fi(f.model, {.input_shape = {3, 32, 32},
                                   .batch_size = 1,
                                   .dtype = core::DType::kInt8});
  core::CampaignConfig cfg;
  cfg.trials = 150;
  cfg.error_model = core::single_bit_flip();
  cfg.seed = 15;
  const auto r = core::run_classification_campaign(fi, f.ds, cfg);
  EXPECT_EQ(r.non_finite, 0u);
}

TEST(Integration, Fp16DtypeCampaignRuns) {
  auto& f = fixture();
  core::FaultInjector fi(f.model, {.input_shape = {3, 32, 32},
                                   .batch_size = 1,
                                   .dtype = core::DType::kFloat16});
  core::CampaignConfig cfg;
  cfg.trials = 60;
  cfg.error_model = core::single_bit_flip();
  cfg.seed = 17;
  const auto r = core::run_classification_campaign(fi, f.ds, cfg);
  EXPECT_EQ(r.trials, 60u);
}

TEST(Integration, BatchedCampaignSameFaultAcrossBatch) {
  auto& f = fixture();
  core::FaultInjector fi(f.model, {.input_shape = {3, 32, 32}, .batch_size = 4});
  core::CampaignConfig cfg;
  cfg.trials = 40;
  cfg.batch_size = 4;
  cfg.same_fault_across_batch = true;
  cfg.error_model = core::random_value(-4.0f, 4.0f);
  cfg.seed = 19;
  const auto r = core::run_classification_campaign(fi, f.ds, cfg);
  EXPECT_GE(r.trials, 40u);
}

TEST(Integration, Top1NotInTop5CriterionIsLessSensitive) {
  // Top-1-not-in-Top-5 is a strictly weaker corruption condition than
  // Top-1 mismatch, so it can never fire more often (paper Sec. IV-A lists
  // these alternative criteria).
  auto& f = fixture();
  core::FaultInjector fi(f.model, {.input_shape = {3, 32, 32}, .batch_size = 1});
  core::CampaignConfig cfg;
  cfg.trials = 150;
  cfg.error_model = core::random_value(-512.0f, 512.0f);
  cfg.seed = 23;
  const auto top1 = core::run_classification_campaign(fi, f.ds, cfg);
  cfg.criterion = core::CorruptionCriterion::kTop1NotInTop5;
  const auto top5 = core::run_classification_campaign(fi, f.ds, cfg);
  EXPECT_LE(top5.corruptions, top1.corruptions);
}

TEST(Integration, GradCamOnTrainedModelHighlightsConsistently) {
  auto& f = fixture();
  f.model->eval();
  nn::Module* target = nullptr;
  for (nn::Module* m : f.model->modules()) {
    if (m->kind() == "Conv2d") target = m;
  }
  interpret::GradCam cam(f.model, *target);
  Rng rng(25);
  const auto batch = f.ds.sample_batch(1, rng);
  const auto r = cam.compute(batch.images);
  EXPECT_GT(r.heatmap.max(), 0.0f);
  // Explaining the predicted class again must be identical.
  const auto r2 = cam.compute(batch.images, r.top1);
  EXPECT_EQ(interpret::heatmap_distance(r.heatmap, r2.heatmap), 0.0);
}

TEST(Integration, InjectorComposesWithTraining) {
  // FI-during-training must leave the model trainable (Table I workflow) —
  // hooks stay armed across forward/backward.
  data::SyntheticDataset ds(data::cifar10_like());
  Rng rng(27);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  core::FaultInjector fi(model, {.input_shape = {3, 32, 32}, .batch_size = 8});
  Rng fault_rng(29);
  std::uint64_t before = fi.injections_performed();
  const auto result = models::train_classifier(
      *model, ds,
      {.epochs = 1, .batches_per_epoch = 10, .batch_size = 8, .lr = 0.02f},
      [&](std::int64_t) {
        core::declare_one_fault_per_layer(fi, core::random_value(), fault_rng);
      },
      [&](std::int64_t) { fi.clear(); });
  EXPECT_GT(fi.injections_performed(), before);
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

}  // namespace
}  // namespace pfi
