// Parameterized property sweeps (TEST_P) across module configurations:
// conv geometry, injector dtypes, pooling geometry, and error-model
// invariants. Each suite states an invariant and sweeps it over a grid.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "core/campaign.hpp"
#include "models/zoo.hpp"
#include "nn/nn.hpp"
#include "util/bits.hpp"

namespace pfi {
namespace {

using namespace pfi::nn;

// ---------------------------------------------------- conv geometry sweep ----

struct ConvCase {
  std::int64_t kernel, stride, padding, groups;
};

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, OutputShapeMatchesFormulaAndGradChecks) {
  const auto p = GetParam();
  Rng rng(1);
  const std::int64_t cin = 4, cout = 4, size = 9;
  Conv2d conv(
      Conv2dOptions{.in_channels = cin, .out_channels = cout,
                    .kernel = p.kernel, .stride = p.stride,
                    .padding = p.padding, .groups = p.groups},
      rng);
  Tensor x = Tensor::rand({2, cin, size, size}, rng, -1.0f, 1.0f);
  const Tensor y = conv(x);
  const std::int64_t expect =
      (size + 2 * p.padding - p.kernel) / p.stride + 1;
  ASSERT_EQ(y.shape(), (Shape{2, cout, expect, expect}));

  // Backward smoke: gradient shapes must match and be finite.
  conv.zero_grad();
  const Tensor gx = conv.backward(Tensor::ones(y.shape()));
  ASSERT_EQ(gx.shape(), x.shape());
  for (const float v : gx.data()) ASSERT_TRUE(std::isfinite(v));
  for (const float v : conv.weight().grad.data()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(ConvGeometry, LinearityInInput) {
  // Convolution (with bias b): f(2x) - f(x) == f(x) - f(0). Holds for any
  // geometry — a strong algebraic property of the im2col path.
  const auto p = GetParam();
  Rng rng(2);
  Conv2d conv(
      Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = p.kernel,
                    .stride = p.stride, .padding = p.padding,
                    .groups = 1},
      rng);
  Tensor x = Tensor::rand({1, 2, 9, 9}, rng, -1.0f, 1.0f);
  Tensor x2 = x.clone();
  x2.scale_(2.0f);
  const Tensor f0 = conv(Tensor({1, 2, 9, 9})).clone();
  const Tensor f1 = conv(x).clone();
  const Tensor f2 = conv(x2).clone();
  Tensor lhs = f2.clone();
  lhs.add_(f1, -1.0f);
  Tensor rhs = f1.clone();
  rhs.add_(f0, -1.0f);
  EXPECT_TRUE(allclose(lhs, rhs, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvGeometry,
    ::testing::Values(ConvCase{1, 1, 0, 1}, ConvCase{3, 1, 1, 1},
                      ConvCase{3, 2, 1, 1}, ConvCase{5, 1, 2, 1},
                      ConvCase{5, 2, 2, 1}, ConvCase{3, 1, 0, 1},
                      ConvCase{3, 1, 1, 2}, ConvCase{3, 1, 1, 4},
                      ConvCase{1, 1, 0, 4}, ConvCase{7, 3, 3, 1}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.kernel) + "s" +
             std::to_string(info.param.stride) + "p" +
             std::to_string(info.param.padding) + "g" +
             std::to_string(info.param.groups);
    });

// ------------------------------------------------------ pooling geometry ----

class PoolGeometry
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(PoolGeometry, MaxPoolNeverInventsValues) {
  // Every output of max pooling must be an element of the input.
  const auto [kernel, stride] = GetParam();
  Rng rng(3);
  MaxPool2d mp(kernel, stride);
  const Tensor x = Tensor::rand({1, 2, 12, 12}, rng, -1.0f, 1.0f);
  const Tensor y = mp(x);
  for (const float v : y.data()) {
    bool found = false;
    for (const float xv : x.data()) found |= xv == v;
    ASSERT_TRUE(found);
  }
}

TEST_P(PoolGeometry, AvgPoolBoundedByExtremes) {
  const auto [kernel, stride] = GetParam();
  Rng rng(4);
  AvgPool2d ap(kernel, stride);
  const Tensor x = Tensor::rand({1, 2, 12, 12}, rng, -1.0f, 1.0f);
  const Tensor y = ap(x);
  EXPECT_GE(y.min(), x.min() - 1e-6f);
  EXPECT_LE(y.max(), x.max() + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Grid, PoolGeometry,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 3)),
                         [](const auto& info) {
                           return "k" + std::to_string(std::get<0>(info.param)) +
                                  "s" + std::to_string(std::get<1>(info.param));
                         });

// --------------------------------------------------------- injector dtype ----

class InjectorDtype : public ::testing::TestWithParam<core::DType> {};

TEST_P(InjectorDtype, GoldenRunsAreDeterministic) {
  Rng rng(5);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  model->eval();
  core::FiConfig cfg{.input_shape = {3, 32, 32}, .batch_size = 1};
  cfg.dtype = GetParam();
  core::FaultInjector fi(model, cfg);
  Rng drng(6);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const Tensor a = fi.forward(x).clone();
  const Tensor b = fi.forward(x);
  EXPECT_TRUE(allclose(a, b, 0.0f));
}

TEST_P(InjectorDtype, BitFlipAlwaysChangesTheTargetNeuron) {
  // Whatever the dtype, a declared single-bit flip must change the value of
  // the target neuron (a flip is never the identity).
  Rng rng(7);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  model->eval();
  core::FiConfig cfg{.input_shape = {3, 32, 32}, .batch_size = 1};
  cfg.dtype = GetParam();
  core::FaultInjector fi(model, cfg);

  Tensor golden_probe, faulty_probe;
  Tensor* sink = &golden_probe;
  fi.layer(0).register_forward_hook(
      [&](nn::Module&, const Tensor&, Tensor& out) { *sink = out.clone(); });

  Rng drng(8);
  const Tensor x = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  fi.forward(x);
  sink = &faulty_probe;
  // Flip the most-significant magnitude bit for a guaranteed visible change
  // (bit 6 for int8; bit 30 for fp32; bit 14 for fp16 exponent MSB).
  const int bit = GetParam() == core::DType::kInt8
                      ? 6
                      : GetParam() == core::DType::kFloat16 ? 13 : 29;
  fi.declare_neuron_fault({.layer = 0, .batch = 0, .c = 0, .h = 3, .w = 3},
                          core::single_bit_flip(bit));
  fi.forward(x);
  fi.clear();
  EXPECT_NE(golden_probe.at(0, 0, 3, 3), faulty_probe.at(0, 0, 3, 3));
}

INSTANTIATE_TEST_SUITE_P(AllDtypes, InjectorDtype,
                         ::testing::Values(core::DType::kFloat32,
                                           core::DType::kFloat16,
                                           core::DType::kInt8),
                         [](const auto& info) {
                           return core::dtype_name(info.param);
                         });

// ------------------------------------------------------ error model sweep ----

class ErrorModelSweep : public ::testing::TestWithParam<int> {};

TEST_P(ErrorModelSweep, Fp32FlipIsInvolutionThroughTheModelContext) {
  const int bit = GetParam();
  Rng rng(9);
  core::InjectionContext ctx;
  ctx.dtype = core::DType::kFloat32;
  ctx.rng = &rng;
  const auto m = core::single_bit_flip(bit);
  for (float v : {0.0f, 1.0f, -3.25f, 100.0f, 1e-10f}) {
    const float once = m.apply(v, ctx);
    const float twice = m.apply(once, ctx);
    EXPECT_EQ(float_to_bits(twice), float_to_bits(v)) << "bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, ErrorModelSweep,
                         ::testing::Values(0, 5, 10, 15, 20, 23, 26, 29, 31));

// ----------------------------------------------------- trace replay sweep ----

// Property: for random (model, seed, dtype) campaigns, (a) the merged trace
// JSONL is byte-identical at 1 and 4 threads, and (b) replaying every
// recorded rep with TraceReplayer reproduces the recorded faulty logits
// bit-for-bit — the trace is a complete record of what the campaign did.

struct ReplaySweepCase {
  const char* model;
  std::uint64_t seed;  ///< model seed; campaign seed is seed + 1
  core::DType dtype;
};

struct TracedRun {
  std::shared_ptr<nn::Sequential> model;
  std::unique_ptr<core::FaultInjector> fi;
  trace::TraceSink sink;
  core::CampaignConfig cfg;
  TracedRun() : sink(/*capture_logits=*/true) {}
};

std::unique_ptr<TracedRun> traced_campaign(const ReplaySweepCase& c,
                                           std::int64_t threads) {
  auto run = std::make_unique<TracedRun>();
  Rng rng(c.seed);
  run->model = models::make_model(c.model, {.num_classes = 10}, rng);
  run->fi = std::make_unique<core::FaultInjector>(
      run->model, core::FiConfig{.input_shape = {3, 32, 32}, .batch_size = 4,
                                 .dtype = c.dtype});
  run->cfg.trials = 8;
  run->cfg.error_model = core::single_bit_flip();
  run->cfg.seed = c.seed + 1;
  run->cfg.batch_size = 4;
  run->cfg.injections_per_image = 2;
  run->cfg.threads = threads;
  run->cfg.trace = &run->sink;
  data::SyntheticDataset ds(data::cifar10_like());
  core::run_classification_campaign(*run->fi, ds, run->cfg);
  return run;
}

class TraceReplaySweep : public ::testing::TestWithParam<ReplaySweepCase> {};

TEST_P(TraceReplaySweep, JsonlThreadInvariantAndReplayBitExact) {
  if constexpr (!trace::kEnabled) GTEST_SKIP() << "trace compiled out";
  const auto c = GetParam();
  auto serial = traced_campaign(c, 1);
  auto parallel = traced_campaign(c, 4);

  const std::string jsonl = trace::trace_to_jsonl(serial->sink.events());
  EXPECT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl, trace::trace_to_jsonl(parallel->sink.events()));

  data::SyntheticDataset ds(data::cifar10_like());
  for (TracedRun* run : {serial.get(), parallel.get()}) {
    const auto reps = trace::split_reps(run->sink.events());
    ASSERT_EQ(reps.size(), run->sink.logits().size());
    trace::TraceReplayer replayer(*run->fi);
    for (std::size_t i = 0; i < reps.size(); ++i) {
      const auto& rl = run->sink.logits()[i];
      const auto batch = core::campaign_attempt_batch(ds, run->cfg, rl.attempt);
      const Tensor replayed = replayer.replay(batch.images, reps[i]);
      EXPECT_TRUE(allclose(rl.logits, replayed, 0.0f))
          << c.model << " threads=" << run->cfg.threads << " rep " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TraceReplaySweep,
    ::testing::Values(ReplaySweepCase{"squeezenet", 90, core::DType::kFloat32},
                      ReplaySweepCase{"squeezenet", 123, core::DType::kInt8},
                      ReplaySweepCase{"alexnet", 55, core::DType::kFloat32},
                      ReplaySweepCase{"mobilenet", 77, core::DType::kFloat32}),
    [](const auto& info) {
      return std::string(info.param.model) + "_s" +
             std::to_string(info.param.seed) + "_" +
             core::dtype_name(info.param.dtype);
    });

}  // namespace
}  // namespace pfi
