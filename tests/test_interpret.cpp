// Tests for Grad-CAM: hook-based capture, heatmap math, sensitivity
// selection, and the interaction with fault injection (paper Sec. IV-E).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/fault_injector.hpp"
#include "interpret/gradcam.hpp"
#include "models/zoo.hpp"

namespace pfi::interpret {
namespace {

using namespace pfi::nn;

/// First Conv2d inside a model (a typical Grad-CAM target is the last conv;
/// tests use whichever is convenient).
Module& find_conv(Module& model, int index = 0) {
  int seen = 0;
  for (Module* m : model.modules()) {
    if (m->kind() == "Conv2d" && seen++ == index) return *m;
  }
  throw Error("no conv at index");
}

Module& last_conv(Module& model) {
  Module* last = nullptr;
  for (Module* m : model.modules()) {
    if (m->kind() == "Conv2d") last = m;
  }
  if (last == nullptr) throw Error("no conv");
  return *last;
}

TEST(GradCam, ComputesNormalizedHeatmap) {
  Rng rng(1);
  auto model = models::make_model("densenet", {.num_classes = 10}, rng);
  model->eval();
  GradCam cam(model, last_conv(*model));
  Rng drng(2);
  const Tensor img = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const auto r = cam.compute(img);
  ASSERT_EQ(r.heatmap.dim(), 2);
  EXPECT_GE(r.heatmap.min(), 0.0f);
  EXPECT_LE(r.heatmap.max(), 1.0f + 1e-6f);
  EXPECT_EQ(r.activations.size(0),
            static_cast<std::int64_t>(r.fmap_weights.size()));
  EXPECT_GE(r.top1, 0);
  EXPECT_LT(r.top1, 10);
}

TEST(GradCam, TargetMustBelongToModel) {
  Rng rng(3);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  auto other = models::make_model("squeezenet", {.num_classes = 10}, rng);
  EXPECT_THROW(GradCam(model, find_conv(*other)), Error);
}

TEST(GradCam, SingleImageValidated) {
  Rng rng(4);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  model->eval();
  GradCam cam(model, find_conv(*model));
  EXPECT_THROW(cam.compute(Tensor({2, 3, 32, 32})), Error);
}

TEST(GradCam, HooksRemovedOnDestruction) {
  Rng rng(5);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  Module& target = find_conv(*model);
  {
    GradCam cam(model, target);
    EXPECT_EQ(target.forward_hook_count(), 1u);
  }
  EXPECT_EQ(target.forward_hook_count(), 0u);
}

TEST(GradCam, ExplainsRequestedClass) {
  Rng rng(6);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  model->eval();
  GradCam cam(model, find_conv(*model));
  Rng drng(7);
  const Tensor img = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const auto a = cam.compute(img, 0);
  const auto b = cam.compute(img, 5);
  // Different classes have different gradients, hence different heatmaps.
  EXPECT_GT(heatmap_distance(a.heatmap, b.heatmap), 0.0);
  EXPECT_THROW(cam.compute(img, 99), Error);
}

TEST(GradCam, DeterministicForSameInput) {
  Rng rng(8);
  auto model = models::make_model("densenet", {.num_classes = 10}, rng);
  model->eval();
  GradCam cam(model, last_conv(*model));
  Rng drng(9);
  const Tensor img = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const auto a = cam.compute(img);
  const auto b = cam.compute(img);
  EXPECT_EQ(heatmap_distance(a.heatmap, b.heatmap), 0.0);
  EXPECT_EQ(a.top1, b.top1);
}

TEST(GradCam, SensitivitySelection) {
  Rng rng(10);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  model->eval();
  GradCam cam(model, find_conv(*model, 1));
  Rng drng(11);
  const auto r = cam.compute(Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f));
  const auto hi = most_sensitive_fmap(r);
  const auto lo = least_sensitive_fmap(r);
  EXPECT_GE(hi, 0);
  EXPECT_LT(hi, r.activations.size(0));
  EXPECT_GE(lo, 0);
  EXPECT_NE(hi, lo);
}

TEST(GradCam, FaultInMostSensitiveFmapMovesHeatmapMore) {
  // The Fig. 7 effect, quantified: a 10,000-value injection in the most
  // sensitive fmap must disturb the heatmap at least as much as the same
  // injection in the least sensitive fmap.
  Rng rng(12);
  auto model = models::make_model("densenet", {.num_classes = 10}, rng);
  model->eval();
  Module& target = last_conv(*model);
  // Injector before GradCam: hooks fire in registration order, and the
  // capture must see the perturbed activations.
  core::FaultInjector fi(model, {.input_shape = {3, 32, 32}, .batch_size = 1});
  GradCam cam(model, target);
  // The injector indexes instrumented layers; find the target conv's index.
  std::int64_t target_layer = -1;
  for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
    if (&fi.layer(l) == &target) target_layer = l;
  }
  ASSERT_GE(target_layer, 0);
  const Shape s = fi.layer_shape(target_layer);

  // On an untrained net a single-sign injection can be fully masked by the
  // downstream BN+ReLU, so probe both signs over several images and sum.
  // Magnitude is moderate: saturating values (e.g. the paper's 10,000 on
  // this 60-channel miniature) flood the GAP head and wash the contrast out.
  Rng drng(13);
  double d_hi = 0.0, d_lo = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    const Tensor img = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
    const auto golden = cam.compute(img);
    // Rank by aggregate all-class sensitivity (see channel_sensitivity
    // doc): the single-class Grad-CAM gradient can rank a Top-1-flipping
    // fmap as "least sensitive".
    const auto sens = cam.channel_sensitivity(img);
    const auto hi_fmap = argmax_sensitivity(sens);
    const auto lo_fmap = argmin_sensitivity(sens);

    auto perturbed_distance = [&](std::int64_t fmap) {
      double worst = 0.0;
      for (const float magnitude : {100.0f, -100.0f}) {
        fi.clear();
        fi.declare_neuron_fault({.layer = target_layer,
                                 .batch = 0,
                                 .c = fmap,
                                 .h = s[2] / 2,
                                 .w = s[3] / 2},
                                core::constant_value(magnitude));
        const auto r = cam.compute(img);
        fi.clear();
        worst = std::max(worst, heatmap_distance(golden.heatmap, r.heatmap));
      }
      return worst;
    };
    d_hi += perturbed_distance(hi_fmap);
    d_lo += perturbed_distance(lo_fmap);
  }
  EXPECT_GE(d_hi, d_lo);
  EXPECT_GT(d_hi, 0.0);
}

TEST(GradCam, ChannelSensitivityShapeAndPositivity) {
  Rng rng(20);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  model->eval();
  GradCam cam(model, find_conv(*model, 1));
  Rng drng(21);
  const Tensor img = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const auto sens = cam.channel_sensitivity(img);
  const auto golden = cam.compute(img);
  EXPECT_EQ(sens.size(), static_cast<std::size_t>(golden.activations.size(0)));
  float total = 0.0f;
  for (float v : sens) {
    EXPECT_GE(v, 0.0f);
    total += v;
  }
  EXPECT_GT(total, 0.0f);
  EXPECT_GE(argmax_sensitivity(sens), 0);
  EXPECT_NE(argmax_sensitivity(sens), argmin_sensitivity(sens));
}

TEST(GradCam, AggregateSensitivityDominatesSingleClassRanking) {
  // The aggregate metric must be >= the predicted-class-only gradient mean
  // for every channel (it sums one extra non-negative term per class).
  Rng rng(22);
  auto model = models::make_model("squeezenet", {.num_classes = 10}, rng);
  model->eval();
  GradCam cam(model, find_conv(*model, 1));
  Rng drng(23);
  const Tensor img = Tensor::rand({1, 3, 32, 32}, drng, -1.0f, 1.0f);
  const auto golden = cam.compute(img);
  const auto sens = cam.channel_sensitivity(img);
  const auto c = golden.gradients.size(0);
  const auto hw = golden.gradients.size(1) * golden.gradients.size(2);
  const auto* g = golden.gradients.data().data();
  for (std::int64_t k = 0; k < c; ++k) {
    float single = 0.0f;
    for (std::int64_t j = 0; j < hw; ++j) single += std::abs(g[k * hw + j]);
    single /= static_cast<float>(hw);
    EXPECT_GE(sens[static_cast<std::size_t>(k)], single - 1e-5f)
        << "channel " << k;
  }
}

TEST(GradCam, WritePgmRoundTrip) {
  Tensor hm({2, 3}, std::vector<float>{0.0f, 0.5f, 1.0f, 0.25f, 0.75f, 1.0f});
  const std::string path = "/tmp/pfi_test_heatmap.pgm";
  write_pgm(hm, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  in.get();  // single whitespace after header
  unsigned char px[6];
  in.read(reinterpret_cast<char*>(px), 6);
  EXPECT_EQ(px[0], 0);
  EXPECT_EQ(px[2], 255);
  std::remove(path.c_str());
}

TEST(GradCam, AsciiRendering) {
  Tensor hm({1, 3}, std::vector<float>{0.0f, 0.5f, 1.0f});
  const std::string art = render_ascii(hm);
  EXPECT_EQ(art, " =@\n");
}

TEST(GradCam, HeatmapDistanceValidatesShapes) {
  EXPECT_THROW(heatmap_distance(Tensor({2, 2}), Tensor({3, 3})), Error);
  EXPECT_EQ(heatmap_distance(Tensor({2, 2}), Tensor({2, 2})), 0.0);
}

}  // namespace
}  // namespace pfi::interpret
