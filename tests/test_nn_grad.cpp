// Numerical gradient checks for every differentiable module.
//
// Strategy: define L = sum(R .* module(x)) for a fixed random tensor R.
// Then dL/d(output) = R, and analytic input/parameter gradients from
// backward() must match central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "kernels/kernels.hpp"
#include "nn/nn.hpp"

namespace pfi::nn {
namespace {

/// Central-difference gradient of L(x) = sum(R .* f(x)) wrt tensor `t`.
Tensor numeric_grad(const std::function<Tensor()>& run, Tensor& t,
                    const Tensor& r, float eps = 1e-3f) {
  Tensor grad(t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float orig = t[i];
    t[i] = orig + eps;
    const Tensor yp = run().clone();  // clone: output may alias the input
    t[i] = orig - eps;
    const Tensor ym = run().clone();
    t[i] = orig;
    double acc = 0.0;
    auto p = yp.data();
    auto m = ym.data();
    auto rr = r.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      acc += static_cast<double>(rr[j]) * (p[j] - m[j]);
    }
    grad[i] = static_cast<float>(acc / (2.0 * eps));
  }
  return grad;
}

/// Check input + parameter gradients of `m` at input `x`.
void check_gradients(Module& m, Tensor x, float tol = 2e-2f,
                     std::uint64_t seed = 99) {
  Rng rng(seed);
  // Forward once to learn the output shape.
  const Tensor y0 = m(x);
  const Tensor r = Tensor::rand(y0.shape(), rng, -1.0f, 1.0f);

  auto run = [&]() { return m(x); };

  // Analytic gradients.
  m.zero_grad();
  m(x);
  const Tensor gx = m.backward(r);

  // Input gradient.
  const Tensor gx_num = numeric_grad(run, x, r);
  EXPECT_LE(gx.max_abs_diff(gx_num), tol)
      << m.kind() << " input gradient mismatch";

  // Parameter gradients. backward() above accumulated them once.
  for (Parameter* p : m.parameters()) {
    const Tensor gp_num = numeric_grad(run, p->value, r);
    EXPECT_LE(p->grad.max_abs_diff(gp_num), tol)
        << m.kind() << " gradient mismatch for parameter " << p->name;
  }
}

TEST(Grad, Linear) {
  Rng rng(1);
  Linear fc(5, 3, rng);
  check_gradients(fc, Tensor::rand({2, 5}, rng, -1.0f, 1.0f));
}

TEST(Grad, LinearNoBias) {
  Rng rng(2);
  Linear fc(4, 4, rng, false);
  check_gradients(fc, Tensor::rand({3, 4}, rng, -1.0f, 1.0f));
}

TEST(Grad, Conv2dBasic) {
  Rng rng(3);
  Conv2d conv(
      Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 3,
                    .padding = 1},
      rng);
  check_gradients(conv, Tensor::rand({2, 2, 4, 4}, rng, -1.0f, 1.0f));
}

TEST(Grad, Conv2dStridedNoPad) {
  Rng rng(4);
  Conv2d conv(
      Conv2dOptions{.in_channels = 3, .out_channels = 2, .kernel = 2,
                    .stride = 2},
      rng);
  check_gradients(conv, Tensor::rand({1, 3, 6, 6}, rng, -1.0f, 1.0f));
}

TEST(Grad, Conv2dGrouped) {
  Rng rng(5);
  Conv2d conv(
      Conv2dOptions{.in_channels = 4, .out_channels = 4, .kernel = 3,
                    .padding = 1, .groups = 2},
      rng);
  check_gradients(conv, Tensor::rand({2, 4, 3, 3}, rng, -1.0f, 1.0f));
}

TEST(Grad, Conv2dDepthwise) {
  Rng rng(6);
  Conv2d conv(
      Conv2dOptions{.in_channels = 3, .out_channels = 3, .kernel = 3,
                    .padding = 1, .groups = 3, .bias = false},
      rng);
  check_gradients(conv, Tensor::rand({1, 3, 4, 4}, rng, -1.0f, 1.0f));
}

// --- kernel-routed backward coverage (PR 3) -------------------------------
// Conv2d/Linear backward now runs through pfi::kernels GEMMs; these cases
// exercise every routing: grad-weight GEMM-T, accumulate epilogue, the k=7
// and 1x1 im2col shapes, and stride+groups combined.

TEST(Grad, Conv2dKernel7WidePadding) {
  Rng rng(31);
  Conv2d conv(
      Conv2dOptions{.in_channels = 2, .out_channels = 2, .kernel = 7,
                    .padding = 3},
      rng);
  check_gradients(conv, Tensor::rand({1, 2, 8, 8}, rng, -1.0f, 1.0f));
}

TEST(Grad, Conv2dOneByOne) {
  Rng rng(32);
  Conv2d conv(
      Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 1}, rng);
  check_gradients(conv, Tensor::rand({2, 3, 3, 3}, rng, -1.0f, 1.0f));
}

TEST(Grad, Conv2dStridedGrouped) {
  Rng rng(33);
  Conv2d conv(
      Conv2dOptions{.in_channels = 4, .out_channels = 6, .kernel = 3,
                    .stride = 2, .padding = 1, .groups = 2},
      rng);
  check_gradients(conv, Tensor::rand({2, 4, 5, 5}, rng, -1.0f, 1.0f));
}

TEST(Grad, LinearWide) {
  Rng rng(34);
  Linear fc(17, 11, rng);
  check_gradients(fc, Tensor::rand({4, 17}, rng, -1.0f, 1.0f));
}

TEST(Grad, KernelImplsAgreeOnGradients) {
  // The analytic gradients must agree whichever kernel computes them: run
  // the same backward under PFI_KERNEL=naive and the blocked path.
  Rng rng(35);
  Conv2d conv(
      Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3,
                    .padding = 1, .groups = 1},
      rng);
  const Tensor x = Tensor::rand({2, 3, 5, 5}, rng, -1.0f, 1.0f);
  const Tensor y0 = conv(x);
  const Tensor r = Tensor::rand(y0.shape(), rng, -1.0f, 1.0f);

  const auto prev = kernels::active_impl();
  kernels::set_impl(kernels::Impl::kNaive);
  conv.zero_grad();
  conv(x);
  const Tensor gx_naive = conv.backward(r).clone();
  const Tensor gw_naive = conv.weight().grad.clone();

  kernels::set_impl(kernels::Impl::kBlocked);
  conv.zero_grad();
  conv(x);
  const Tensor gx_blocked = conv.backward(r).clone();
  const Tensor gw_blocked = conv.weight().grad.clone();
  kernels::set_impl(prev);

  EXPECT_LE(gx_naive.max_abs_diff(gx_blocked), 1e-5f);
  EXPECT_LE(gw_naive.max_abs_diff(gw_blocked), 1e-5f);
}

TEST(Grad, ReLUAwayFromKink) {
  Rng rng(7);
  ReLU relu;
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor x = Tensor::rand({2, 3, 3, 3}, rng, 0.2f, 1.0f);
  for (std::int64_t i = 0; i < x.numel(); i += 2) x[i] = -x[i];
  check_gradients(relu, x);
}

TEST(Grad, LeakyReLU) {
  Rng rng(8);
  LeakyReLU lr(0.2f);
  Tensor x = Tensor::rand({2, 8}, rng, 0.2f, 1.0f);
  for (std::int64_t i = 0; i < x.numel(); i += 2) x[i] = -x[i];
  check_gradients(lr, x);
}

TEST(Grad, Sigmoid) {
  Rng rng(9);
  Sigmoid s;
  check_gradients(s, Tensor::rand({3, 4}, rng, -2.0f, 2.0f));
}

TEST(Grad, Softmax) {
  Rng rng(10);
  Softmax sm;
  check_gradients(sm, Tensor::rand({2, 5}, rng, -1.0f, 1.0f));
}

TEST(Grad, MaxPool) {
  Rng rng(11);
  MaxPool2d mp(2);
  // Distinct values so the argmax is stable under +-eps.
  Tensor x({1, 2, 4, 4});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>((i * 7919) % 97) * 0.1f;
  }
  check_gradients(mp, x);
}

TEST(Grad, AvgPool) {
  Rng rng(12);
  AvgPool2d ap(2);
  check_gradients(ap, Tensor::rand({2, 2, 4, 4}, rng, -1.0f, 1.0f));
}

TEST(Grad, GlobalAvgPool) {
  Rng rng(13);
  GlobalAvgPool gap;
  check_gradients(gap, Tensor::rand({2, 3, 4, 4}, rng, -1.0f, 1.0f));
}

TEST(Grad, Flatten) {
  Rng rng(14);
  Flatten f;
  check_gradients(f, Tensor::rand({2, 3, 2, 2}, rng, -1.0f, 1.0f));
}

TEST(Grad, BatchNormTraining) {
  Rng rng(15);
  BatchNorm2d bn(3);
  bn.train();
  check_gradients(bn, Tensor::rand({4, 3, 3, 3}, rng, -1.0f, 1.0f), 3e-2f);
}

TEST(Grad, BatchNormEvalInputGradient) {
  // Eval mode is a per-channel affine map with running statistics; the
  // eval backward (used by Grad-CAM on deployed models) must match the
  // numeric input gradient. Parameter gradients are intentionally not
  // accumulated in eval mode.
  Rng rng(21);
  BatchNorm2d bn(2);
  bn.running_mean()[0] = 0.5f;
  bn.running_mean()[1] = -1.0f;
  bn.running_var()[0] = 4.0f;
  bn.running_var()[1] = 0.25f;
  bn.gamma().value[0] = 2.0f;
  bn.gamma().value[1] = -0.5f;
  bn.eval();

  Tensor x = Tensor::rand({2, 2, 3, 3}, rng, -1.0f, 1.0f);
  const Tensor y0 = bn(x);
  const Tensor r = Tensor::rand(y0.shape(), rng, -1.0f, 1.0f);
  const Tensor gx = bn.backward(r);
  auto run = [&]() { return bn(x); };
  const Tensor gx_num = numeric_grad(run, x, r);
  EXPECT_LE(gx.max_abs_diff(gx_num), 2e-2f);
  // Parameter grads untouched.
  EXPECT_EQ(bn.gamma().grad.squared_norm(), 0.0f);
  EXPECT_EQ(bn.beta().grad.squared_norm(), 0.0f);
}

TEST(Grad, SequentialConvReluPoolLinear) {
  Rng rng(16);
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 3,
                    .padding = 1},
      rng);
  seq->emplace<ReLU>();
  seq->emplace<MaxPool2d>(2);
  seq->emplace<Flatten>();
  seq->emplace<Linear>(2 * 2 * 2, 3, rng);
  check_gradients(*seq, Tensor::rand({2, 1, 4, 4}, rng, -1.0f, 1.0f), 3e-2f);
}

TEST(Grad, ResidualBlock) {
  Rng rng(17);
  auto main = std::make_shared<Sequential>();
  main->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 2, .out_channels = 2, .kernel = 3,
                    .padding = 1},
      rng);
  main->emplace<Sigmoid>();
  auto res = std::make_shared<Residual>(main, std::make_shared<Identity>());
  check_gradients(*res, Tensor::rand({1, 2, 3, 3}, rng, -1.0f, 1.0f));
}

TEST(Grad, ConcatBranches) {
  Rng rng(18);
  auto b0 = std::make_shared<Conv2d>(
      Conv2dOptions{.in_channels = 2, .out_channels = 2, .kernel = 1}, rng);
  auto b1 = std::make_shared<Conv2d>(
      Conv2dOptions{.in_channels = 2, .out_channels = 3, .kernel = 1}, rng);
  Concat cat({b0, b1});
  check_gradients(cat, Tensor::rand({2, 2, 2, 2}, rng, -1.0f, 1.0f));
}

TEST(Grad, ChannelShuffle) {
  Rng rng(19);
  ChannelShuffle cs(2);
  check_gradients(cs, Tensor::rand({1, 4, 2, 2}, rng, -1.0f, 1.0f));
}

TEST(Grad, CrossEntropyMatchesNumeric) {
  Rng rng(20);
  Tensor logits = Tensor::rand({3, 4}, rng, -1.0f, 1.0f);
  const std::vector<std::int64_t> targets{0, 2, 3};
  CrossEntropyLoss ce;
  ce.forward(logits, targets);
  const Tensor g = ce.backward();

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    CrossEntropyLoss probe;
    logits[i] = orig + eps;
    const float lp = probe.forward(logits, targets);
    logits[i] = orig - eps;
    const float lm = probe.forward(logits, targets);
    logits[i] = orig;
    EXPECT_NEAR(g[i], (lp - lm) / (2.0f * eps), 1e-2f) << "logit " << i;
  }
}

}  // namespace
}  // namespace pfi::nn
