// Statistical test harness for the stratified adaptive campaign layer
// (core/sampling.hpp). The headline tests treat the sampler as a black-box
// estimator and check it against EXHAUSTIVE ground truth: on a jitter-free,
// noise-free dataset every image is a pure function of its label, so the
// fault space (label x neuron x bit) is finite and the true uniform
// corruption probability can be computed by sweeping every single fault.
// Against that truth we pin:
//
//  * coverage    — across 200 seeded replications, the pooled 99% CI
//                  contains the exhaustive truth at least the nominal
//                  fraction of the time, and the replication mean is
//                  unbiased;
//  * agreement   — the stratified and uniform samplers' CIs overlap;
//  * determinism — counts, CSV, and trace JSONL are byte-identical at 1 vs
//                  4 threads, under kill/resume at a wave boundary, and
//                  with the prefix cache on or off;
//  * pruning     — analytic masked-fault pruning never changes any counter
//                  (pure execution knob), and in PFI_PRUNE_VERIFY mode
//                  every pruned injection is re-executed and confirmed
//                  masked, across fp32 / fp16 / int8;
//  * degeneracy  — a stratum closed with zero trials contributes the
//                  vacuous [0, 1] interval to the pooled estimate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/report.hpp"
#include "core/sampling.hpp"
#include "models/trainer.hpp"
#include "nn/nn.hpp"
#include "util/fileio.hpp"

namespace pfi::core {
namespace {

// ------------------------------------------------------------- fixture ----

/// Jitter- and noise-free dataset: exactly 3 distinct images, one per
/// class, so the fault space is finite and exhaustively sweepable.
data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 3;
  spec.channels = 1;
  spec.height = 8;
  spec.width = 8;
  spec.noise_stddev = 0.0f;
  spec.jitter = 0.0f;
  spec.seed = 11;
  return spec;
}

/// Two instrumented convs (192 + 64 = 256 neurons), each feeding a ReLU so
/// the masked-fault pruner has something to prove. Small enough that the
/// exhaustive sweep (3 labels x 256 neurons x 32 bits) runs in seconds.
std::shared_ptr<nn::Sequential> tiny_model() {
  Rng rng(42);
  auto m = std::make_shared<nn::Sequential>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 1, .out_channels = 3, .kernel = 3,
                        .padding = 1},
      rng);
  m->emplace<nn::ReLU>();
  m->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 3, .out_channels = 4, .kernel = 3,
                        .stride = 2, .padding = 1},
      rng);
  m->emplace<nn::ReLU>();
  m->emplace<nn::GlobalAvgPool>();
  m->emplace<nn::Flatten>();
  m->emplace<nn::Linear>(4, 3, rng);
  return m;
}

struct TinyFixture {
  data::SyntheticDataset ds;
  std::shared_ptr<nn::Sequential> model;
};

/// Train once per process; every test shares the same weights. Campaigns
/// never mutate model parameters (neuron faults are forward-hook only), so
/// sharing is safe and keeps the whole file fast.
const TinyFixture& tiny() {
  static const TinyFixture* fx = [] {
    auto* f = new TinyFixture{data::SyntheticDataset(tiny_spec()),
                              tiny_model()};
    models::train_classifier(*f->model, f->ds,
                             {.epochs = 25,
                              .batches_per_epoch = 10,
                              .batch_size = 9,
                              .lr = 0.05f,
                              .seed = 7});
    f->model->eval();
    return f;
  }();
  return *fx;
}

FiConfig tiny_fi_config(DType dtype = DType::kFloat32) {
  FiConfig cfg{.input_shape = {1, 8, 8}, .batch_size = 1};
  cfg.dtype = dtype;
  return cfg;
}

/// Native INT8 execution: the convs run the integer GEMM path, faults land
/// in the deployed codes. Every determinism matrix below must hold
/// unchanged.
FiConfig tiny_native_config() {
  FiConfig cfg = tiny_fi_config(DType::kInt8);
  cfg.native = true;
  return cfg;
}

bool logits_finite(const Tensor& t) {
  for (const float v : t.data()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// The campaign's per-row verdict (RepScorer, kTop1Mismatch) for a
/// batch-of-one faulty pass whose golden top-1 equals `label`.
bool corrupts(const Tensor& faulty, std::int64_t label) {
  return nn::argmax_rows(faulty)[0] != label || !logits_finite(faulty);
}

/// Exhaustive per-stratum truth: sweep EVERY (label, neuron, bit) fault in
/// the stratum and count corruptions. The campaign draws labels, neurons,
/// and bits uniformly within a stratum, so each sampled trial is a
/// Bernoulli draw with exactly this success probability.
struct ExhaustiveTruth {
  std::vector<double> per_stratum;
  double pooled = 0.0;  ///< sum of weight * per-stratum truth
};

ExhaustiveTruth exhaustive_truth(FaultInjector& fi,
                                 const data::SyntheticDataset& ds,
                                 const std::vector<Stratum>& strata) {
  ExhaustiveTruth truth;
  truth.per_stratum.resize(strata.size(), 0.0);
  const std::int64_t classes = ds.spec().classes;
  Rng render_rng(1);  // jitter and noise are zero: any rng renders the same
  for (std::int64_t label = 0; label < classes; ++label) {
    const auto batch = ds.render_batch({label}, render_rng);
    fi.clear();
    const Tensor golden =
        fi.forward(batch.images, ForwardMode::kRecordGolden);
    // The campaign only scores correctly-classified inferences; the fixture
    // trains to 100% on the 3 canonical images, verified by CoverageVs...
    EXPECT_EQ(nn::argmax_rows(golden)[0], label);
    for (std::size_t s = 0; s < strata.size(); ++s) {
      const Stratum& st = strata[s];
      const Shape& shape = fi.layer_shape(st.layer);
      std::uint64_t hits = 0;
      for (std::int64_t c = 0; c < shape[1]; ++c) {
        for (std::int64_t h = 0; h < shape[2]; ++h) {
          for (std::int64_t w = 0; w < shape[3]; ++w) {
            for (int bit = st.bit_lo; bit <= st.bit_hi; ++bit) {
              fi.declare_neuron_fault(
                  {.layer = st.layer, .batch = 0, .c = c, .h = h, .w = w},
                  single_bit_flip(bit));
              const Tensor faulty =
                  fi.forward(batch.images, ForwardMode::kReusePrefix);
              fi.clear();
              if (corrupts(faulty, label)) ++hits;
            }
          }
        }
      }
      const double space =
          static_cast<double>(shape[1] * shape[2] * shape[3]) *
          static_cast<double>(st.bit_hi - st.bit_lo + 1);
      truth.per_stratum[s] += static_cast<double>(hits) /
                              (space * static_cast<double>(classes));
    }
  }
  for (std::size_t s = 0; s < strata.size(); ++s) {
    truth.pooled += strata[s].weight * truth.per_stratum[s];
  }
  return truth;
}

StratifiedCampaignConfig tiny_campaign(std::uint64_t seed,
                                       std::int64_t threads = 1,
                                       std::int64_t trials = 64) {
  StratifiedCampaignConfig scfg;
  scfg.base.trials = trials;
  scfg.base.seed = seed;
  scfg.base.batch_size = 1;
  scfg.base.injections_per_image = 4;
  scfg.base.threads = threads;
  return scfg;
}

bool same_bits(const CampaignResult& a, const CampaignResult& b) {
  return std::memcmp(&a, &b, sizeof(CampaignResult)) == 0;
}

/// Removes the file (and the atomic-write temp sibling) on both ends of the
/// test so reruns never see stale state.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

std::string csv_bytes(const StratifiedResult& r, const std::string& tag) {
  TempFile f("/tmp/pfi_sampling_csv_" + tag + ".csv");
  write_stratified_csv(f.path, {{"tiny", r}});
  return util::read_file(f.path);
}

// ----------------------------------------------- strata enumeration ----

TEST(Sampling, StrataWeightsPartitionUnity) {
  const auto& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  for (const DType dtype :
       {DType::kFloat32, DType::kFloat16, DType::kInt8}) {
    const auto strata = make_strata(fi, -1, dtype);
    EXPECT_EQ(strata.size(), 2 * bit_classes(dtype).size());
    double sum = 0.0;
    for (const Stratum& s : strata) {
      EXPECT_GT(s.weight, 0.0);
      EXPECT_LE(s.bit_lo, s.bit_hi);
      sum += s.weight;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Restricted to one layer the weights still partition unity.
  const auto one = make_strata(fi, 1, DType::kFloat32);
  double sum = 0.0;
  for (const Stratum& s : one) {
    EXPECT_EQ(s.layer, 1);
    sum += s.weight;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Sampling, ReluAdjacencyDetection) {
  const auto& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  const auto adj = relu_adjacent_layers(fi);
  ASSERT_EQ(adj.size(), 2u);
  EXPECT_TRUE(adj[0]);
  EXPECT_TRUE(adj[1]);

  // A conv NOT followed by a ReLU must not be pruned against.
  Rng rng(9);
  auto bare = std::make_shared<nn::Sequential>();
  bare->emplace<nn::Conv2d>(
      nn::Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 3,
                        .padding = 1},
      rng);
  bare->emplace<nn::GlobalAvgPool>();
  bare->emplace<nn::Flatten>();
  bare->emplace<nn::Linear>(2, 3, rng);
  FaultInjector bare_fi(bare, tiny_fi_config());
  const auto bare_adj = relu_adjacent_layers(bare_fi);
  ASSERT_EQ(bare_adj.size(), 1u);
  EXPECT_FALSE(bare_adj[0]);
}

TEST(Sampling, RejectsUnsupportedModes) {
  const auto& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  StratifiedCampaignConfig scfg = tiny_campaign(1);
  scfg.base.one_fault_per_layer = true;
  EXPECT_THROW(run_stratified_campaign(fi, fx.ds, scfg), Error);
  scfg = tiny_campaign(1);
  scfg.target_half_width = 1.0;
  EXPECT_THROW(run_stratified_campaign(fi, fx.ds, scfg), Error);
  scfg = tiny_campaign(1);
  scfg.base.trials = 0;
  EXPECT_THROW(run_stratified_campaign(fi, fx.ds, scfg), Error);
}

// -------------------------------------- coverage vs exhaustive truth ----

// The headline statistical guarantee. 200 seeded replications of a
// 64-trial stratified campaign; the pooled 99% CI must contain the
// exhaustively computed truth at least the nominal fraction of the time
// (Wilson intervals are conservative, so the realized coverage should sit
// at or above 99%; we assert >= 97.5% to absorb the finite replication
// count), and the replication mean must be unbiased.
TEST(Sampling, CoverageVsExhaustiveTruth) {
  const auto& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());

  // Precondition for ground truth: the model classifies every canonical
  // image correctly (campaigns skip wrong-golden rows, which would change
  // the sampled measure).
  Rng render_rng(2);
  for (std::int64_t label = 0; label < 3; ++label) {
    const auto b = fx.ds.render_batch({label}, render_rng);
    ASSERT_EQ(nn::argmax_rows(fi.forward(b.images))[0], label)
        << "fixture model failed to learn class " << label;
  }

  const auto strata = make_strata(fi, -1, DType::kFloat32);
  const ExhaustiveTruth truth = exhaustive_truth(fi, fx.ds, strata);
  ASSERT_GT(truth.pooled, 0.0) << "degenerate fixture: no fault corrupts";
  ASSERT_LT(truth.pooled, 0.5);

  constexpr int kReps = 200;
  int contained = 0;
  double mean = 0.0;
  Proportion last{};
  for (int i = 0; i < kReps; ++i) {
    // injections_per_image = 1: each trial draws its own label, so
    // per-stratum counts are independent Bernoulli draws — the regime the
    // Wilson interval models. (Golden-pass amortization deliberately
    // correlates same-attempt trials; that is an orthogonal speed knob.)
    StratifiedCampaignConfig scfg =
        tiny_campaign(5000 + static_cast<std::uint64_t>(i));
    scfg.base.injections_per_image = 1;
    const StratifiedResult r = run_stratified_campaign(fi, fx.ds, scfg);
    EXPECT_EQ(r.totals.trials, 64u);
    last = r.estimate();
    if (last.lo <= truth.pooled && truth.pooled <= last.hi) ++contained;
    mean += last.value / kReps;
  }
  EXPECT_GE(contained, 195)
      << "99% CI coverage collapsed: " << contained << "/" << kReps
      << " contained truth " << truth.pooled;
  // Unbiasedness: the replication mean of the stratified point estimate
  // must sit within ~3 standard errors of the truth. With p ~ truth and
  // 200 x 64 effective trials the SE is a few parts in a thousand.
  const double se =
      std::sqrt(truth.pooled * (1.0 - truth.pooled) / (64.0 * kReps));
  EXPECT_NEAR(mean, truth.pooled, 3.5 * se)
      << "stratified estimator is biased";

  // Agreement with the uniform sampler: the two estimators target the same
  // quantity, so their 99% intervals must overlap.
  CampaignConfig ucfg;
  ucfg.trials = 256;
  ucfg.error_model = single_bit_flip();
  ucfg.seed = 9001;
  ucfg.batch_size = 1;
  ucfg.injections_per_image = 4;
  ucfg.threads = 1;
  const CampaignResult ur = run_classification_campaign(fi, fx.ds, ucfg);
  const Proportion up = ur.corruption_probability();
  EXPECT_LE(up.lo, last.hi);
  EXPECT_LE(last.lo, up.hi);
  // And the uniform CI itself contains the truth (sanity on the oracle).
  EXPECT_LE(up.lo, truth.pooled);
  EXPECT_GE(up.hi, truth.pooled);
}

// ----------------------------------------------------- determinism ----

StratifiedResult run_tiny(FaultInjector& fi, std::uint64_t seed,
                          std::int64_t threads, trace::TraceSink* sink,
                          CampaignCheckpointer* ckpt = nullptr) {
  const auto& fx = tiny();
  StratifiedCampaignConfig scfg = tiny_campaign(seed, threads);
  scfg.base.injections_per_image = 2;  // several waves before completion
  scfg.base.trace = sink;
  scfg.base.checkpoint = ckpt;
  return run_stratified_campaign(fi, fx.ds, scfg);
}

TEST(Sampling, ThreadCountInvariantCsvAndTrace) {
  const auto& fx = tiny();
  FaultInjector fi1(fx.model, tiny_fi_config());
  FaultInjector fi4(fx.model, tiny_fi_config());
  trace::TraceSink sink1;
  trace::TraceSink sink4;
  const StratifiedResult a = run_tiny(fi1, 31, 1, &sink1);
  const StratifiedResult b = run_tiny(fi4, 31, 4, &sink4);

  EXPECT_TRUE(same_bits(a.totals, b.totals));
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.golden_passes, b.golden_passes);
  EXPECT_EQ(a.faulty_passes, b.faulty_passes);
  ASSERT_EQ(a.strata.size(), b.strata.size());
  for (std::size_t s = 0; s < a.strata.size(); ++s) {
    EXPECT_TRUE(same_bits(a.strata[s].counts, b.strata[s].counts))
        << "stratum " << s;
    EXPECT_EQ(a.strata[s].attempts, b.strata[s].attempts) << "stratum " << s;
  }
  EXPECT_EQ(csv_bytes(a, "t1"), csv_bytes(b, "t4"));
  if constexpr (trace::kEnabled) {
    ASSERT_FALSE(sink1.events().empty());
    EXPECT_EQ(trace::trace_to_jsonl(sink1.events()),
              trace::trace_to_jsonl(sink4.events()));
  }
}

TEST(Sampling, PrefixCacheDoesNotChangeResults) {
  const auto& fx = tiny();
  FiConfig off = tiny_fi_config();
  off.prefix_cache = false;
  FaultInjector fi_on(fx.model, tiny_fi_config());
  FaultInjector fi_off(fx.model, off);
  trace::TraceSink sink_on;
  trace::TraceSink sink_off;
  const StratifiedResult a = run_tiny(fi_on, 33, 1, &sink_on);
  const StratifiedResult b = run_tiny(fi_off, 33, 1, &sink_off);
  EXPECT_TRUE(same_bits(a.totals, b.totals));
  EXPECT_EQ(csv_bytes(a, "cache_on"), csv_bytes(b, "cache_off"));
  if constexpr (trace::kEnabled) {
    EXPECT_EQ(trace::trace_to_jsonl(sink_on.events()),
              trace::trace_to_jsonl(sink_off.events()));
  }
}

void kill_and_resume_case(std::int64_t threads,
                          const FiConfig& fi_cfg = tiny_fi_config(),
                          const std::string& suffix = "") {
  const auto& fx = tiny();
  const std::string tag = "t" + std::to_string(threads) + suffix;
  TempFile ck_ref("/tmp/pfi_sampling_ck_ref_" + tag + ".json");
  TempFile tr_ref("/tmp/pfi_sampling_tr_ref_" + tag + ".jsonl");
  TempFile ck_crash("/tmp/pfi_sampling_ck_crash_" + tag + ".json");
  TempFile tr_crash("/tmp/pfi_sampling_tr_crash_" + tag + ".jsonl");
  StratifiedCampaignConfig fp_cfg = tiny_campaign(37, threads);
  fp_cfg.base.injections_per_image = 2;
  const std::uint64_t fp = stratified_fingerprint(fp_cfg, "kill-test");

  // Uninterrupted reference.
  CampaignCheckpointer ref(ck_ref.path, tr_ref.path);
  ref.begin(fp);
  trace::TraceSink ref_sink;
  FaultInjector ref_fi(fx.model, fi_cfg);
  const StratifiedResult ref_result =
      run_tiny(ref_fi, 37, threads, &ref_sink, &ref);

  // Crash exactly after the first committed wave.
  CampaignCheckpointer crash(ck_crash.path, tr_crash.path);
  crash.begin(fp);
  crash.fail_after_commits(1);
  trace::TraceSink crash_sink;
  FaultInjector crash_fi(fx.model, fi_cfg);
  EXPECT_THROW(run_tiny(crash_fi, 37, threads, &crash_sink, &crash),
               CampaignAborted);

  // Worst case: the kill also tore a trace line mid-append.
  util::append_file_sync(tr_crash.path, "{\"attempt\":9999,\"tor");

  CampaignCheckpointer resumed(ck_crash.path, tr_crash.path);
  ASSERT_TRUE(resumed.resume(fp));
  EXPECT_FALSE(resumed.done());
  EXPECT_FALSE(resumed.strata().empty());
  EXPECT_LT(resumed.result().trials, ref_result.totals.trials);
  trace::TraceSink resume_sink;
  FaultInjector resume_fi(fx.model, fi_cfg);
  const StratifiedResult resumed_result =
      run_tiny(resume_fi, 37, threads, &resume_sink, &resumed);

  EXPECT_TRUE(same_bits(ref_result.totals, resumed_result.totals));
  EXPECT_EQ(ref_result.pruned, resumed_result.pruned);
  EXPECT_EQ(ref_result.golden_passes, resumed_result.golden_passes);
  EXPECT_EQ(ref_result.faulty_passes, resumed_result.faulty_passes);
  EXPECT_EQ(csv_bytes(ref_result, "ref_" + tag),
            csv_bytes(resumed_result, "res_" + tag));
  EXPECT_EQ(util::read_file(tr_ref.path), util::read_file(tr_crash.path));

  // Resuming a finished campaign re-executes nothing and reassembles the
  // identical result (including per-stratum flags) from the checkpoint.
  CampaignCheckpointer finished(ck_crash.path, tr_crash.path);
  ASSERT_TRUE(finished.resume(fp));
  EXPECT_TRUE(finished.done());
  FaultInjector replay_fi(fx.model, fi_cfg);
  trace::TraceSink replay_sink;
  const StratifiedResult replayed =
      run_tiny(replay_fi, 37, threads, &replay_sink, &finished);
  EXPECT_TRUE(same_bits(ref_result.totals, replayed.totals));
  EXPECT_EQ(csv_bytes(ref_result, "ref2_" + tag),
            csv_bytes(replayed, "rep_" + tag));
  EXPECT_TRUE(replay_sink.events().empty());
}

TEST(Sampling, KillAndResumeByteIdenticalSerial) { kill_and_resume_case(1); }
TEST(Sampling, KillAndResumeByteIdenticalParallel) { kill_and_resume_case(4); }

// ------------------------------------- native-dtype campaign equivalence ----

// The same determinism matrix with the convs EXECUTING in native INT8
// (integer GEMM over deployed codes) instead of fp32-with-emulation: the
// campaign counters, CSV, and trace JSONL must stay byte-identical at any
// thread count, under kill/resume, and with the prefix cache on or off.

TEST(Sampling, NativeInt8ThreadCountInvariantCsvAndTrace) {
  const auto& fx = tiny();
  FaultInjector fi1(fx.model, tiny_native_config());
  FaultInjector fi4(fx.model, tiny_native_config());
  trace::TraceSink sink1;
  trace::TraceSink sink4;
  const StratifiedResult a = run_tiny(fi1, 61, 1, &sink1);
  const StratifiedResult b = run_tiny(fi4, 61, 4, &sink4);
  EXPECT_TRUE(same_bits(a.totals, b.totals));
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.faulty_passes, b.faulty_passes);
  EXPECT_EQ(csv_bytes(a, "ni8_t1"), csv_bytes(b, "ni8_t4"));
  if constexpr (trace::kEnabled) {
    ASSERT_FALSE(sink1.events().empty());
    // Events must record the deployed representation, not fp32.
    for (const auto& ev : sink1.events()) {
      EXPECT_EQ(ev.dtype, DType::kInt8);
    }
    EXPECT_EQ(trace::trace_to_jsonl(sink1.events()),
              trace::trace_to_jsonl(sink4.events()));
  }
}

TEST(Sampling, NativeInt8PrefixCacheDoesNotChangeResults) {
  const auto& fx = tiny();
  FiConfig off = tiny_native_config();
  off.prefix_cache = false;
  FaultInjector fi_on(fx.model, tiny_native_config());
  FaultInjector fi_off(fx.model, off);
  trace::TraceSink sink_on;
  trace::TraceSink sink_off;
  const StratifiedResult a = run_tiny(fi_on, 63, 1, &sink_on);
  const StratifiedResult b = run_tiny(fi_off, 63, 1, &sink_off);
  EXPECT_TRUE(same_bits(a.totals, b.totals));
  EXPECT_EQ(csv_bytes(a, "ni8_cache_on"), csv_bytes(b, "ni8_cache_off"));
  if constexpr (trace::kEnabled) {
    EXPECT_EQ(trace::trace_to_jsonl(sink_on.events()),
              trace::trace_to_jsonl(sink_off.events()));
  }
}

TEST(Sampling, NativeKillAndResumeByteIdenticalSerial) {
  kill_and_resume_case(1, tiny_native_config(), "_native");
}
TEST(Sampling, NativeKillAndResumeByteIdenticalParallel) {
  kill_and_resume_case(4, tiny_native_config(), "_native");
}

TEST(Sampling, UniformCheckpointCannotResumeStratifiedRun) {
  const StratifiedCampaignConfig scfg = tiny_campaign(37);
  // Same base config, same context: the fingerprints must still differ so
  // a uniform checkpoint can never silently resume a stratified campaign.
  EXPECT_NE(stratified_fingerprint(scfg, "ctx"),
            campaign_fingerprint(scfg.base, "ctx"));
}

// --------------------------------------------------------- pruning ----

TEST(Sampling, PruningIsPureExecutionKnob) {
  const auto& fx = tiny();
  FaultInjector fi_on(fx.model, tiny_fi_config());
  FaultInjector fi_off(fx.model, tiny_fi_config());
  trace::TraceSink sink_on;
  trace::TraceSink sink_off;
  StratifiedCampaignConfig on = tiny_campaign(41);
  on.base.trace = &sink_on;
  StratifiedCampaignConfig off = tiny_campaign(41);
  off.prune = false;
  off.base.trace = &sink_off;
  const StratifiedResult a = run_stratified_campaign(fi_on, fx.ds, on);
  const StratifiedResult b = run_stratified_campaign(fi_off, fx.ds, off);

  EXPECT_GT(a.pruned, 0u) << "fixture produced no prunable injections";
  EXPECT_EQ(b.pruned, 0u);
  EXPECT_LT(a.faulty_passes, b.faulty_passes);
  EXPECT_TRUE(same_bits(a.totals, b.totals));
  const Proportion pa = a.estimate();
  const Proportion pb = b.estimate();
  EXPECT_EQ(pa.value, pb.value);
  EXPECT_EQ(pa.lo, pb.lo);
  EXPECT_EQ(pa.hi, pb.hi);
  EXPECT_EQ(csv_bytes(a, "prune_on"), csv_bytes(b, "prune_off"));
  if constexpr (trace::kEnabled) {
    // Pruned injections synthesize their trace events analytically; the
    // stream must be byte-identical to real execution.
    ASSERT_FALSE(sink_on.events().empty());
    EXPECT_EQ(trace::trace_to_jsonl(sink_on.events()),
              trace::trace_to_jsonl(sink_off.events()));
  }
}

// PFI_PRUNE_VERIFY mode re-executes every pruned injection and PFI_CHECKs
// the logits are bit-identical to the golden pass — run across all three
// emulated dtypes, where the analytic model must reproduce the injector's
// quantize/dequantize arithmetic exactly. A pruner false-positive aborts.
TEST(Sampling, PruneVerifySoundAcrossDtypes) {
  const auto& fx = tiny();
  for (const DType dtype :
       {DType::kFloat32, DType::kFloat16, DType::kInt8}) {
    FaultInjector fi(fx.model, tiny_fi_config(dtype));
    StratifiedCampaignConfig scfg = tiny_campaign(43);
    scfg.base.trials = 96;
    scfg.prune_verify = true;
    const StratifiedResult verified = run_stratified_campaign(fi, fx.ds, scfg);
    EXPECT_GT(verified.pruned, 0u)
        << "dtype " << static_cast<int>(dtype)
        << " pruned nothing - verification vacuous";

    // Verification mode must not perturb any counter.
    FaultInjector fi2(fx.model, tiny_fi_config(dtype));
    scfg.prune_verify = false;
    const StratifiedResult plain = run_stratified_campaign(fi2, fx.ds, scfg);
    EXPECT_TRUE(same_bits(verified.totals, plain.totals));
    EXPECT_EQ(verified.pruned, plain.pruned);
    EXPECT_EQ(verified.faulty_passes, plain.faulty_passes);
  }
}

TEST(Sampling, PruneVerifyEnvStrictParse) {
  // Helper is env-driven; exercise the strict tri-state contract.
  ASSERT_EQ(setenv("PFI_PRUNE_VERIFY", "1", 1), 0);
  EXPECT_TRUE(prune_verify_env_enabled());
  ASSERT_EQ(setenv("PFI_PRUNE_VERIFY", "0", 1), 0);
  EXPECT_FALSE(prune_verify_env_enabled());
  ASSERT_EQ(setenv("PFI_PRUNE_VERIFY", "yes", 1), 0);
  EXPECT_THROW(prune_verify_env_enabled(), Error);
  ASSERT_EQ(unsetenv("PFI_PRUNE_VERIFY"), 0);
  EXPECT_FALSE(prune_verify_env_enabled());
}

// ------------------------------------------- adaptive early stopping ----

TEST(Sampling, CiTargetStopsEarlyAndZeroTrialStratumIsVacuous) {
  const auto& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  StratifiedCampaignConfig scfg = tiny_campaign(47);
  scfg.base.trials = 4000;  // budget backstop far beyond what the CI needs
  scfg.target_half_width = 0.05;
  const StratifiedResult r = run_stratified_campaign(fi, fx.ds, scfg);

  // The layer-1 sign stratum's weight (0.25 * 1/32) is below the
  // per-stratum budget share sqrt(target^2 / 8), so the CI rule closes it
  // before its first attempt: zero trials, vacuous [0, 1] interval.
  bool saw_zero_trial = false;
  std::size_t stopped = 0;
  for (const StratumOutcome& s : r.strata) {
    if (s.stopped_early) ++stopped;
    if (s.counts.trials == 0) {
      saw_zero_trial = true;
      EXPECT_TRUE(s.stopped_early);
      const Proportion v = s.interval();
      EXPECT_EQ(v.value, 0.0);
      EXPECT_EQ(v.lo, 0.0);
      EXPECT_EQ(v.hi, 1.0);
    }
  }
  EXPECT_TRUE(saw_zero_trial);
  EXPECT_GT(stopped, 0u);
  EXPECT_LT(r.totals.trials, 4000u) << "CI rule never engaged";

  // The pooled interval meets the requested half-width even though some
  // strata carry only their vacuous contribution, and the unsampled mass
  // widens the upper bound only.
  const Proportion est = r.estimate();
  EXPECT_LE((est.hi - est.lo) / 2.0, scfg.target_half_width);
  EXPECT_GE(est.hi, est.value);
  EXPECT_LE(est.lo, est.value);
}

TEST(Sampling, BudgetModeSpendsExactlyTheTrialBudget) {
  const auto& fx = tiny();
  FaultInjector fi(fx.model, tiny_fi_config());
  // 67 does not divide evenly across 8 strata: the largest-remainder
  // allocation must still land exactly on the budget.
  const StratifiedResult r =
      run_stratified_campaign(fi, fx.ds, tiny_campaign(53, 1, 67));
  EXPECT_EQ(r.totals.trials, 67u);
  std::uint64_t sum = 0;
  for (const StratumOutcome& s : r.strata) sum += s.counts.trials;
  EXPECT_EQ(sum, 67u);
}

// ------------------------------------------------ checkpoint format ----

TEST(Sampling, CheckpointStrataRoundTrip) {
  CheckpointState a;
  a.fingerprint = 0x5117e5;
  a.result.trials = 12;
  a.next_unit = 3;
  a.strata.push_back({.trials = 5,
                      .corruptions = 2,
                      .skipped = 1,
                      .non_finite = 1,
                      .pruned = 3,
                      .executed = 2,
                      .attempts = 4,
                      .flags = 1});
  a.strata.push_back({.trials = 7, .attempts = 2, .flags = 2});
  const CheckpointState b = checkpoint_from_json(checkpoint_to_json(a));
  ASSERT_EQ(b.strata.size(), 2u);
  EXPECT_EQ(std::memcmp(&a.strata[0], &b.strata[0],
                        sizeof(StratumCheckpoint)),
            0);
  EXPECT_EQ(std::memcmp(&a.strata[1], &b.strata[1],
                        sizeof(StratumCheckpoint)),
            0);
  EXPECT_EQ(b.result.trials, 12u);
  EXPECT_EQ(b.next_unit, 3u);
}

}  // namespace
}  // namespace pfi::core
