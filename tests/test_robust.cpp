// Tests for interval arithmetic and IBP: soundness of the propagated bounds,
// gradient correctness of the interval backward pass, and the training loop.
#include <gtest/gtest.h>

#include <cmath>

#include "models/zoo.hpp"
#include "robust/ibp.hpp"

namespace pfi::robust {
namespace {

using namespace pfi::nn;

// ---------------------------------------------------------------- interval ----

TEST(Interval, AroundAndExactly) {
  Tensor x({2}, std::vector<float>{1.0f, -1.0f});
  const auto iv = IntervalTensor::around(x, 0.5f);
  EXPECT_FLOAT_EQ(iv.lo[0], 0.5f);
  EXPECT_FLOAT_EQ(iv.hi[0], 1.5f);
  const auto ex = IntervalTensor::exactly(x);
  EXPECT_TRUE(allclose(ex.lo, ex.hi, 0.0f));
  iv.validate();
}

TEST(Interval, ValidateCatchesInversion) {
  IntervalTensor iv{Tensor({2}, 1.0f), Tensor({2}, 0.0f)};
  EXPECT_THROW(iv.validate(), Error);
}

TEST(Interval, Width) {
  const auto iv = IntervalTensor::around(Tensor({3}), 0.25f);
  EXPECT_FLOAT_EQ(iv.width()[0], 0.5f);
}

// ------------------------------------------------------------- IbpNetwork ----

std::shared_ptr<Sequential> tiny_net(Rng& rng) {
  auto net = std::make_shared<Sequential>();
  net->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 4, .kernel = 3,
                    .padding = 1},
      rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Flatten>();
  net->emplace<Linear>(4 * 4 * 4, 3, rng);
  return net;
}

TEST(Ibp, RejectsResidualModels) {
  Rng rng(1);
  auto model = models::make_model("resnet18", {.num_classes = 10}, rng);
  EXPECT_THROW(IbpNetwork{model}, Error);
}

TEST(Ibp, RejectsUnsupportedLeaves) {
  Rng rng(1);
  auto net = std::make_shared<Sequential>();
  net->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 1}, rng);
  net->emplace<BatchNorm2d>(2);
  EXPECT_THROW(IbpNetwork{net}, Error);
}

TEST(Ibp, AcceptsAlexNet) {
  Rng rng(2);
  auto model = models::make_model("alexnet", {.num_classes = 10}, rng);
  EXPECT_NO_THROW(IbpNetwork{model});
}

TEST(Ibp, ZeroRadiusMatchesPointForward) {
  Rng rng(3);
  auto net = tiny_net(rng);
  net->eval();
  IbpNetwork ibp(net);
  Rng drng(4);
  const Tensor x = Tensor::rand({2, 1, 8, 8}, drng, -1.0f, 1.0f);
  const Tensor y = (*net)(x);
  const auto bounds = ibp.forward(IntervalTensor::exactly(x));
  EXPECT_TRUE(allclose(bounds.lo, y, 1e-4f));
  EXPECT_TRUE(allclose(bounds.hi, y, 1e-4f));
}

TEST(Ibp, BoundsAreSound) {
  // Property: for any perturbation with |d|_inf <= eps, the true output must
  // lie inside the propagated bounds. Check with random perturbations.
  Rng rng(5);
  auto net = tiny_net(rng);
  net->eval();
  IbpNetwork ibp(net);
  Rng drng(6);
  const Tensor x = Tensor::rand({1, 1, 8, 8}, drng, -1.0f, 1.0f);
  const float eps = 0.1f;
  const auto bounds = ibp.forward(IntervalTensor::around(x, eps));
  bounds.validate();
  for (int trial = 0; trial < 50; ++trial) {
    Tensor xp = x.clone();
    for (auto& v : xp.data()) v += drng.uniform(-eps, eps);
    const Tensor y = (*net)(xp);
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      ASSERT_GE(y[i], bounds.lo[i] - 1e-4f) << "trial " << trial;
      ASSERT_LE(y[i], bounds.hi[i] + 1e-4f) << "trial " << trial;
    }
  }
}

TEST(Ibp, BoundsWidenWithEps) {
  Rng rng(7);
  auto net = tiny_net(rng);
  net->eval();
  IbpNetwork ibp(net);
  Rng drng(8);
  const Tensor x = Tensor::rand({1, 1, 8, 8}, drng, -1.0f, 1.0f);
  const auto narrow = ibp.forward(IntervalTensor::around(x, 0.05f));
  const auto wide = ibp.forward(IntervalTensor::around(x, 0.2f));
  EXPECT_GT(wide.width().mean(), narrow.width().mean());
}

TEST(Ibp, BackwardGradientsMatchNumeric) {
  // L = sum(Rl .* lo) + sum(Rh .* hi); check dL/dW numerically.
  Rng rng(9);
  auto net = std::make_shared<Sequential>();
  auto conv = net->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 1, .out_channels = 2, .kernel = 3},
      rng);
  net->emplace<ReLU>();
  net->emplace<Flatten>();
  auto fc = net->emplace<Linear>(2 * 2 * 2, 2, rng);
  net->eval();
  IbpNetwork ibp(net);

  Rng drng(10);
  const Tensor x = Tensor::rand({1, 1, 4, 4}, drng, -1.0f, 1.0f);
  const float eps = 0.15f;
  const auto iv = IntervalTensor::around(x, eps);

  const auto bounds0 = ibp.forward(iv);
  const Tensor rl = Tensor::rand(bounds0.lo.shape(), drng, -1.0f, 1.0f);
  const Tensor rh = Tensor::rand(bounds0.hi.shape(), drng, -1.0f, 1.0f);

  net->zero_grad();
  ibp.forward(iv);
  ibp.backward(rl, rh);

  auto loss_at = [&]() {
    const auto b = ibp.forward(iv);
    double acc = 0.0;
    for (std::int64_t i = 0; i < b.lo.numel(); ++i) {
      acc += rl[i] * b.lo[i] + rh[i] * b.hi[i];
    }
    return acc;
  };

  const float fd_eps = 1e-3f;
  for (Parameter* p : {&conv->weight(), &conv->bias(), &fc->weight()}) {
    for (std::int64_t i = 0; i < std::min<std::int64_t>(p->value.numel(), 10);
         ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + fd_eps;
      const double lp = loss_at();
      p->value[i] = orig - fd_eps;
      const double lm = loss_at();
      p->value[i] = orig;
      const double expected = (lp - lm) / (2.0 * fd_eps);
      EXPECT_NEAR(p->grad[i], expected, 2e-2)
          << "param " << p->name << " index " << i;
    }
  }
}

TEST(Ibp, WorstCaseLogits) {
  IntervalTensor b{Tensor({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5}),
                   Tensor({2, 3}, std::vector<float>{10, 11, 12, 13, 14, 15})};
  const std::vector<std::int64_t> y{0, 2};
  const Tensor z = worst_case_logits(b, y);
  EXPECT_FLOAT_EQ(z.at(0, 0), 0.0f);   // lo for target
  EXPECT_FLOAT_EQ(z.at(0, 1), 11.0f);  // hi elsewhere
  EXPECT_FLOAT_EQ(z.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(z.at(1, 0), 13.0f);
}

TEST(Ibp, TrainingKeepsNaturalAccuracyStable) {
  // End-to-end on AlexNet: the worst-case term must not destroy natural
  // training (the separate-clip stabilizer at work). Verified robustness of
  // a deep no-BN net at this scale is near zero — that is checked on a
  // shallow net below.
  Rng rng(11);
  data::SyntheticSpec spec = data::cifar10_like();
  spec.classes = 4;
  spec.noise_stddev = 0.15f;
  data::SyntheticDataset ds(spec);
  auto model = models::make_model("alexnet", {.num_classes = 4}, rng);
  const IbpTrainConfig cfg{.alpha_max = 0.2f,
                           .eps_max = 0.02f,
                           .epochs = 4,
                           .batches_per_epoch = 25,
                           .batch_size = 12,
                           .lr = 0.002f,
                           .ramp_start_step = 30,
                           .ramp_end_step = 70,
                           .seed = 12};
  const auto result = train_ibp(model, ds, cfg);
  EXPECT_GT(result.natural_accuracy, 0.8);
  EXPECT_TRUE(std::isfinite(result.final_loss));
  EXPECT_EQ(result.steps, 100);
}

TEST(Ibp, ShallowNetReachesVerifiedRobustness) {
  // On a one-conv network with a 2-class easy task and a small radius, IBP
  // training should certify a nontrivial fraction of inputs.
  Rng rng(21);
  data::SyntheticSpec spec = data::cifar10_like();
  spec.classes = 2;
  spec.noise_stddev = 0.10f;
  data::SyntheticDataset ds(spec);

  auto net = std::make_shared<Sequential>();
  net->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 3, .out_channels = 8, .kernel = 5,
                    .stride = 2, .padding = 2},
      rng);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(4);
  net->emplace<Flatten>();
  net->emplace<Linear>(8 * 4 * 4, 2, rng);

  const IbpTrainConfig cfg{.alpha_max = 0.5f,
                           .eps_max = 0.03f,
                           .epochs = 4,
                           .batches_per_epoch = 25,
                           .batch_size = 12,
                           .lr = 0.01f,
                           .ramp_start_step = 25,
                           .ramp_end_step = 60,
                           .seed = 22};
  const auto result = train_ibp(net, ds, cfg);
  EXPECT_GT(result.natural_accuracy, 0.85);
  EXPECT_GT(result.verified_fraction, 0.3);
}

TEST(Ibp, ConfigValidated) {
  Rng rng(13);
  data::SyntheticDataset ds(data::cifar10_like());
  auto model = models::make_model("alexnet", {.num_classes = 10}, rng);
  IbpTrainConfig cfg;
  cfg.alpha_max = 2.0f;
  EXPECT_THROW(train_ibp(model, ds, cfg), Error);
  cfg = IbpTrainConfig{};
  cfg.ramp_start_step = 100;
  cfg.ramp_end_step = 50;
  EXPECT_THROW(train_ibp(model, ds, cfg), Error);
}

}  // namespace
}  // namespace pfi::robust
