#include "nn/optim.hpp"

#include <cmath>

namespace pfi::nn {

Sgd::Sgd(std::vector<Parameter*> params, SgdOptions opts)
    : params_(std::move(params)), opts_(opts) {
  PFI_CHECK(!params_.empty()) << "Sgd constructed with no parameters";
  PFI_CHECK(opts_.lr > 0.0f) << "Sgd lr=" << opts_.lr;
  PFI_CHECK(opts_.momentum >= 0.0f && opts_.momentum < 1.0f)
      << "Sgd momentum=" << opts_.momentum;
}

void Sgd::step() {
  for (Parameter* p : params_) {
    auto v = p->value.data();
    auto g = p->grad.data();
    if (opts_.momentum > 0.0f) {
      auto [it, inserted] = velocity_.try_emplace(p, Tensor(p->value.shape()));
      auto vel = it->second.data();
      for (std::size_t i = 0; i < v.size(); ++i) {
        const float grad = g[i] + opts_.weight_decay * v[i];
        vel[i] = opts_.momentum * vel[i] + grad;
        v[i] -= opts_.lr * vel[i];
      }
    } else {
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] -= opts_.lr * (g[i] + opts_.weight_decay * v[i]);
      }
    }
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Adam::Adam(std::vector<Parameter*> params, AdamOptions opts)
    : params_(std::move(params)), opts_(opts) {
  PFI_CHECK(!params_.empty()) << "Adam constructed with no parameters";
  PFI_CHECK(opts_.lr > 0.0f) << "Adam lr=" << opts_.lr;
  PFI_CHECK(opts_.beta1 >= 0.0f && opts_.beta1 < 1.0f)
      << "Adam beta1=" << opts_.beta1;
  PFI_CHECK(opts_.beta2 >= 0.0f && opts_.beta2 < 1.0f)
      << "Adam beta2=" << opts_.beta2;
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (Parameter* p : params_) {
    auto [it, inserted] = moments_.try_emplace(
        p, Moments{Tensor(p->value.shape()), Tensor(p->value.shape())});
    auto m = it->second.m.data();
    auto v = it->second.v.data();
    auto w = p->value.data();
    auto g = p->grad.data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float grad = g[i] + opts_.weight_decay * w[i];
      m[i] = opts_.beta1 * m[i] + (1.0f - opts_.beta1) * grad;
      v[i] = opts_.beta2 * v[i] + (1.0f - opts_.beta2) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  PFI_CHECK(max_norm > 0.0f) << "clip_grad_norm max_norm=" << max_norm;
  double total = 0.0;
  for (const Parameter* p : params) total += p->grad.squared_norm();
  const auto norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) p->grad.scale_(scale);
  }
  return norm;
}

}  // namespace pfi::nn
