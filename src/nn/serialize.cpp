#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "nn/batchnorm.hpp"

namespace pfi::nn {

namespace {

constexpr char kMagic[4] = {'P', 'F', 'I', 'W'};
constexpr std::uint32_t kVersion = 1;

/// Every named tensor in the module tree: parameters plus batch-norm
/// running statistics (which are state, not parameters, but must round-trip
/// for eval-mode models to reproduce).
std::map<std::string, Tensor> named_tensors(Module& model) {
  std::map<std::string, Tensor> out;
  for (Parameter* p : model.parameters()) {
    PFI_CHECK(out.emplace(p->name, p->value).second)
        << "duplicate parameter name '" << p->name << "'";
  }
  // Batch-norm statistics: keyed by a stable per-instance counter (module
  // name paths for non-parameter state are not dotted by parameters()).
  std::int64_t bn_index = 0;
  for (Module* m : model.modules()) {
    if (m->kind() == "BatchNorm2d") {
      auto& bn = static_cast<BatchNorm2d&>(*m);
      const std::string base = "bn" + std::to_string(bn_index++);
      out.emplace(base + "#running_mean", bn.running_mean());
      out.emplace(base + "#running_var", bn.running_var());
    }
  }
  return out;
}

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

}  // namespace

void save_parameters(Module& model, const std::string& path) {
  const auto tensors = named_tensors(model);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PFI_CHECK(out.good()) << "cannot open '" << path << "' for writing";

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_pod(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint64_t>(tensor.numel()));
    const auto d = tensor.data();
    out.write(reinterpret_cast<const char*>(d.data()),
              static_cast<std::streamsize>(d.size() * sizeof(float)));
  }
  PFI_CHECK(out.good()) << "write to '" << path << "' failed";
}

void load_parameters(Module& model, const std::string& path) {
  auto tensors = named_tensors(model);
  std::ifstream in(path, std::ios::binary);
  PFI_CHECK(in.good()) << "cannot open '" << path << "' for reading";

  char magic[4];
  in.read(magic, sizeof(magic));
  PFI_CHECK(in.good() && std::equal(magic, magic + 4, kMagic))
      << "'" << path << "' is not a pfi weight file";
  const auto version = read_pod<std::uint32_t>(in);
  PFI_CHECK(version == kVersion)
      << "'" << path << "' has version " << version << ", expected "
      << kVersion;
  const auto count = read_pod<std::uint64_t>(in);
  PFI_CHECK(count == tensors.size())
      << "'" << path << "' holds " << count << " tensors but the model has "
      << tensors.size();

  std::size_t restored = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    PFI_CHECK(in.good() && name_len < 4096) << "corrupt entry in '" << path
                                            << "'";
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto numel = read_pod<std::uint64_t>(in);

    const auto it = tensors.find(name);
    PFI_CHECK(it != tensors.end())
        << "'" << path << "' contains tensor '" << name
        << "' which the model does not have";
    PFI_CHECK(static_cast<std::uint64_t>(it->second.numel()) == numel)
        << "tensor '" << name << "' has " << numel << " elements in '" << path
        << "' but " << it->second.numel() << " in the model";
    auto d = it->second.data();
    in.read(reinterpret_cast<char*>(d.data()),
            static_cast<std::streamsize>(d.size() * sizeof(float)));
    PFI_CHECK(in.good()) << "truncated tensor '" << name << "' in '" << path
                         << "'";
    ++restored;
  }
  PFI_CHECK(restored == tensors.size())
      << "restored " << restored << " of " << tensors.size() << " tensors";
}

std::shared_ptr<Module> clone_model(Module& src) {
  auto copy = src.clone_structure();
  // Identical structure => identical pre-order traversal; carry over any
  // names assigned by hand (containers already re-derive positional names).
  const auto src_modules = src.modules();
  const auto dst_modules = copy->modules();
  PFI_CHECK(src_modules.size() == dst_modules.size())
      << "clone_model: clone_structure produced " << dst_modules.size()
      << " modules for a source with " << src_modules.size();
  for (std::size_t i = 0; i < src_modules.size(); ++i) {
    dst_modules[i]->set_name(src_modules[i]->name());
  }
  copy->train(src.is_training());
  copy_parameters(src, *copy);
  return copy;
}

void copy_parameters(Module& src, Module& dst) {
  const auto from = named_tensors(src);
  auto to = named_tensors(dst);
  PFI_CHECK(from.size() == to.size())
      << "copy_parameters: structure mismatch (" << from.size() << " vs "
      << to.size() << " tensors)";
  for (const auto& [name, tensor] : from) {
    const auto it = to.find(name);
    PFI_CHECK(it != to.end()) << "copy_parameters: destination lacks '"
                              << name << "'";
    it->second.copy_from(tensor);
  }
}

}  // namespace pfi::nn
