// Loss functions and classification metrics.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace pfi::nn {

/// Softmax cross-entropy over logits, mean-reduced across the batch.
class CrossEntropyLoss {
 public:
  /// Compute mean loss for logits [N, C] and integer targets (size N).
  float forward(const Tensor& logits, std::span<const std::int64_t> targets);

  /// dL/dlogits for the last forward call.
  Tensor backward() const;

 private:
  Tensor probs_;
  std::vector<std::int64_t> targets_;
};

/// Mean-squared-error loss (used by the detector's regression head).
class MSELoss {
 public:
  /// Mean of (pred - target)^2 over all elements; optional per-element mask.
  float forward(const Tensor& pred, const Tensor& target,
                const Tensor* mask = nullptr);

  Tensor backward() const;

 private:
  Tensor pred_;
  Tensor target_;
  Tensor mask_;
};

/// Per-row argmax of a [N, C] tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// Fraction of rows whose argmax equals the target (Top-1 accuracy).
double top1_accuracy(const Tensor& logits,
                     std::span<const std::int64_t> targets);

/// True when `target` is among the k largest entries of row `row`.
bool in_top_k(const Tensor& logits, std::int64_t row, std::int64_t target,
              std::int64_t k);

}  // namespace pfi::nn
