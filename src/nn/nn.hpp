// Umbrella header for the pfi neural-network substrate.
#pragma once

#include "nn/batchnorm.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
