#include "nn/module.hpp"

#include "util/error.hpp"

namespace pfi::nn {

std::shared_ptr<Module> Module::clone_structure() const {
  PFI_CHECK(false) << "module kind '" << kind()
                   << "' does not implement clone_structure()";
}

Tensor Module::operator()(const Tensor& input) {
  Tensor in = input;  // shares storage; pre-hooks mutate elements in place
  for (auto& [handle, hook] : pre_hooks_) hook(*this, in);
  // A bypass hook may serve the output itself (prefix-reuse replay); the
  // module's own forward AND its post-forward hooks are then skipped — the
  // served tensor already carries every post-hook effect (dtype emulation,
  // injection) it had when it was recorded.
  if (!bypass_hooks_.empty()) {
    for (auto& [handle, hook] : bypass_hooks_) {
      Tensor out;
      if (hook(*this, in, out)) {
        last_output_shape_ = out.shape();
        return out;
      }
    }
  }
  Tensor out = forward(in);
  for (auto& [handle, hook] : forward_hooks_) hook(*this, in, out);
  last_output_shape_ = out.shape();
  return out;
}

HookHandle Module::register_forward_hook(ForwardHook hook) {
  const HookHandle h = next_handle_++;
  forward_hooks_.emplace_back(h, std::move(hook));
  return h;
}

HookHandle Module::register_forward_pre_hook(ForwardPreHook hook) {
  const HookHandle h = next_handle_++;
  pre_hooks_.emplace_back(h, std::move(hook));
  return h;
}

HookHandle Module::register_backward_hook(BackwardHook hook) {
  const HookHandle h = next_handle_++;
  backward_hooks_.emplace_back(h, std::move(hook));
  return h;
}

HookHandle Module::register_bypass_hook(BypassHook hook) {
  const HookHandle h = next_handle_++;
  bypass_hooks_.emplace_back(h, std::move(hook));
  return h;
}

Tensor Module::run_backward(const Tensor& grad_output) {
  Tensor g = grad_output;  // shares storage; hooks mutate elements in place
  for (auto& [handle, hook] : backward_hooks_) hook(*this, g);
  return backward(g);
}

bool Module::remove_hook(HookHandle handle) {
  for (auto it = forward_hooks_.begin(); it != forward_hooks_.end(); ++it) {
    if (it->first == handle) {
      forward_hooks_.erase(it);
      return true;
    }
  }
  for (auto it = pre_hooks_.begin(); it != pre_hooks_.end(); ++it) {
    if (it->first == handle) {
      pre_hooks_.erase(it);
      return true;
    }
  }
  for (auto it = backward_hooks_.begin(); it != backward_hooks_.end(); ++it) {
    if (it->first == handle) {
      backward_hooks_.erase(it);
      return true;
    }
  }
  for (auto it = bypass_hooks_.begin(); it != bypass_hooks_.end(); ++it) {
    if (it->first == handle) {
      bypass_hooks_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<Module*> Module::modules() {
  std::vector<Module*> out;
  out.push_back(this);
  for (Module* child : children()) {
    for (Module* m : child->modules()) out.push_back(m);
  }
  return out;
}

namespace {

void collect_named(Module& m, const std::string& prefix,
                   std::vector<std::pair<std::string, Module*>>& out) {
  const std::string base =
      prefix.empty() ? m.name()
                     : (m.name().empty() ? prefix : prefix + "." + m.name());
  out.emplace_back(base, &m);
  for (Module* child : m.children()) collect_named(*child, base, out);
}

}  // namespace

std::vector<std::pair<std::string, Module*>> Module::named_modules() {
  std::vector<std::pair<std::string, Module*>> out;
  collect_named(*this, "", out);
  return out;
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters("", out);
  return out;
}

void Module::collect_parameters(const std::string& prefix,
                                std::vector<Parameter*>& out) {
  const std::string base =
      prefix.empty() ? name() : (name().empty() ? prefix : prefix + "." + name());
  for (Parameter* p : local_parameters()) {
    // Refresh the dotted path from the current tree position. The leaf part
    // of the name ("weight" / "bias") is everything after the last dot.
    const auto dot = p->name.rfind('.');
    const std::string leaf =
        dot == std::string::npos ? p->name : p->name.substr(dot + 1);
    p->name = base.empty() ? leaf : base + "." + leaf;
    out.push_back(p);
  }
  for (Module* child : children()) child->collect_parameters(base, out);
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::int64_t Module::parameter_count() {
  std::int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

void Module::train(bool on) {
  training_ = on;
  for (Module* child : children()) child->train(on);
}

}  // namespace pfi::nn
