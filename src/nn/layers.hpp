// Small stateless / lightly-stateful layers: activations, pooling, flatten,
// dropout, channel shuffle, softmax.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace pfi::nn {

/// Rectified linear unit. The paper highlights ReLU as the main source of
/// error masking ("it either gets masked out entirely, e.g., due to
/// activation functions such as ReLU layers", Sec. I).
class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "ReLU"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<ReLU>();
  }

  /// nn::fuse_relu wires the immediately-preceding module here. When that
  /// producer reports relu_fused_output() — its GEMM epilogue already
  /// applied the rectification — forward passes the input through unchanged
  /// (Identity-style aliasing). The producer re-evaluates its fusion gate
  /// every forward, so a hooked or training-mode producer falls back to the
  /// real rectification automatically.
  void set_producer(Module* producer) { producer_ = producer; }
  Module* producer() const { return producer_; }

 private:
  Module* producer_ = nullptr;
  Tensor cached_input_;
};

/// Leaky ReLU (used by the YOLO-style detector backbone).
class LeakyReLU final : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.1f) : slope_(negative_slope) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "LeakyReLU"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<LeakyReLU>(slope_);
  }

 private:
  float slope_;
  Tensor cached_input_;
};

/// Logistic sigmoid.
class Sigmoid final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "Sigmoid"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<Sigmoid>();
  }

 private:
  Tensor cached_output_;
};

/// Row-wise softmax over a [N, C] tensor (the classification head's final
/// probability distribution, paper Sec. II-A).
class Softmax final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "Softmax"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<Softmax>();
  }

 private:
  Tensor cached_output_;
};

/// Max pooling with cached argmax indices for backward.
class MaxPool2d final : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride = 0,
            std::int64_t padding = 0);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "MaxPool2d"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<MaxPool2d>(kernel_, stride_, padding_);
  }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }

 private:
  std::int64_t kernel_, stride_, padding_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Average pooling.
class AvgPool2d final : public Module {
 public:
  AvgPool2d(std::int64_t kernel, std::int64_t stride = 0);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "AvgPool2d"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<AvgPool2d>(kernel_, stride_);
  }

 private:
  std::int64_t kernel_, stride_;
  Shape input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C, 1, 1].
class GlobalAvgPool final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "GlobalAvgPool"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<GlobalAvgPool>();
  }

 private:
  Shape input_shape_;
};

/// Collapse [N, C, H, W] -> [N, C*H*W] between conv features and FC head.
class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "Flatten"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<Flatten>();
  }

 private:
  Shape input_shape_;
};

/// Inverted dropout; identity in eval mode.
class Dropout final : public Module {
 public:
  Dropout(float p, Rng& rng);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "Dropout"; }
  /// Draws a fresh mask per training forward; identity (pure) in eval.
  bool deterministic_forward() const override {
    return !is_training() || p_ == 0.0f;
  }
  std::shared_ptr<Module> clone_structure() const override {
    Rng rng = rng_;  // same stream state as the source
    return std::make_shared<Dropout>(p_, rng);
  }

 private:
  float p_;
  Rng rng_;
  Tensor mask_;
};

/// ShuffleNet channel shuffle: regroup channels across group convolutions.
class ChannelShuffle final : public Module {
 public:
  explicit ChannelShuffle(std::int64_t groups);
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "ChannelShuffle"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<ChannelShuffle>(groups_);
  }

 private:
  Tensor shuffle(const Tensor& x, std::int64_t groups) const;
  std::int64_t groups_;
};

/// Identity layer (useful as a no-op shortcut branch).
class Identity final : public Module {
 public:
  Tensor forward(const Tensor& input) override { return input; }
  Tensor backward(const Tensor& grad_output) override { return grad_output; }
  std::string kind() const override { return "Identity"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<Identity>();
  }
};

}  // namespace pfi::nn
