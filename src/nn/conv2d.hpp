// 2-D convolution with stride, zero padding, and groups.
//
// Convolutions are the layer class the paper instruments: "PyTorchFI allows
// users to perform neural network perturbations in weights and/or neurons in
// convolutional operations of DNNs during execution" (Sec. I). Groups are
// supported because the Fig. 3 model zoo includes grouped (ResNeXt) and
// depthwise (MobileNet) convolutions.
//
// Implementation: im2col + GEMM per (sample, group), routed through
// pfi::kernels (cache-blocked, register-tiled, deterministic at any thread
// count; see kernels/kernels.hpp). The packed weight panels the blocked GEMM
// consumes are cached per group and invalidated on weight mutation — the
// FaultInjector's weight injection/restore paths call
// invalidate_weight_packs(), and a bit-pattern fingerprint re-checked on
// every forward catches mutation through tensor aliases. Backward recomputes
// the column matrix rather than caching it, trading FLOPs for memory.
#pragma once

#include "kernels/kernels.hpp"
#include "kernels/lowp.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace pfi::nn {

/// Convolution hyperparameters.
struct Conv2dOptions {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t groups = 1;
  bool bias = true;
};

class Conv2d final : public Module {
 public:
  Conv2d(Conv2dOptions opts, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::string kind() const override { return "Conv2d"; }
  std::shared_ptr<Module> clone_structure() const override {
    Rng rng(0);  // throwaway init; clone_model overwrites the parameters
    return std::make_shared<Conv2d>(opts_, rng);
  }
  std::vector<Parameter*> local_parameters() override;

  const Conv2dOptions& options() const { return opts_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return opts_.bias; }

  /// Output spatial size for a given input spatial size.
  std::int64_t out_size(std::int64_t in) const {
    return (in + 2 * opts_.padding - opts_.kernel) / opts_.stride + 1;
  }

  /// Drop the cached packed-weight panels. Call after mutating the weight
  /// tensor (weight injection, restore) so repeated forwards never consume a
  /// stale pack; forwards also verify a weight fingerprint, so this is an
  /// eager-release hook, not the only line of defense.
  void invalidate_weight_packs() {
    for (auto& p : packed_) p.invalidate();
    for (auto& p : lowp_packed_) p.invalidate();
  }

  /// Switch the forward path to a native low-precision representation.
  /// kInt8 runs im2col -> per-tensor dynamic activation quantization ->
  /// integer GEMM against per-output-channel-quantized weights -> fp32
  /// requantize; kFp16/kBf16 store weights and activations as 16-bit codes
  /// widened on the fly into the fp32 kernels. `out_channel_scales`
  /// optionally freezes the per-channel weight scales (the FaultInjector
  /// passes golden-calibrated scales so a weight fault flips exactly one
  /// deployed code without re-calibrating the channel); empty means
  /// calibrate lazily from the current weights at first pack. Backward is
  /// unchanged (fp32) — campaigns only run inference.
  void set_native_dtype(kernels::LowPrec native,
                        std::vector<float> out_channel_scales = {});
  kernels::LowPrec native_dtype() const { return native_; }
  /// Per-output-channel weight scales of the native INT8 path (empty until
  /// set or first lazily-calibrated forward).
  const std::vector<float>& native_scales() const { return native_scales_; }

  /// Freeze the INT8 activation scales (static calibration,
  /// quant::StaticActQuant): `in_scale` quantizes the im2col operand —
  /// eliminating the per-forward absmax pass — and `out_scale` is the grid
  /// the fused epilogue re-quantizes the output onto, so the boundary
  /// carries exactly int8 information (requantize_rows_grid). Scales must
  /// be finite and positive; clear_static_act() returns to dynamic
  /// per-forward calibration.
  void set_static_act(float in_scale, float out_scale);
  void clear_static_act() { static_act_ = false; }
  bool has_static_act() const { return static_act_; }
  float static_in_scale() const { return static_in_scale_; }
  float static_out_scale() const { return static_out_scale_; }

  /// nn::fuse_relu marks this conv as immediately followed by a ReLU. The
  /// rectification then runs inside the GEMM epilogue when the gate in
  /// relu_fused_output() is open; the downstream ReLU becomes a
  /// passthrough.
  void set_fuse_relu(bool on) { fuse_relu_ = on; }
  bool fuse_relu() const { return fuse_relu_; }
  /// Gate, re-evaluated per forward: fp32 fuses only when no forward hook
  /// observes the pre-activation; the static-INT8 path fuses
  /// unconditionally (the hook's injection domain IS the post-ReLU
  /// resident codes — see FaultInjector). Dynamic INT8 and fp16/bf16 never
  /// fuse.
  bool relu_fused_output() const override {
    if (!fuse_relu_ || training_) return false;
    if (native_ == kernels::LowPrec::kInt8) return static_act_;
    return native_ == kernels::LowPrec::kNone && forward_hook_count() == 0;
  }

 private:
  /// Expand one sample's group-slice of input into a column matrix of shape
  /// [cin_per_group * k * k, h_out * w_out].
  void im2col(const Tensor& input, std::int64_t n, std::int64_t group,
              std::int64_t h_out, std::int64_t w_out, Tensor& col) const;
  /// Scatter-add a column matrix back into one sample's group-slice.
  void col2im(const Tensor& col, std::int64_t n, std::int64_t group,
              std::int64_t h_out, std::int64_t w_out, Tensor& grad_input) const;

  /// Produce the `w`-column block [col0, col0+w) of the im2col matrix into
  /// `dst` (row stride w): dst[row*w + c] = col(row, col0+c). The INT8 path
  /// streams these tiles straight into packed panels
  /// (kernels::quantize_pack_b_i8_stream) so the full col_rows x spatial
  /// buffer is never materialized.
  void im2col_tile(const Tensor& input, std::int64_t n, std::int64_t group,
                   std::int64_t w_out, std::int64_t col0, int w,
                   float* dst) const;

  Tensor forward_int8(const Tensor& input, std::int64_t h_out,
                      std::int64_t w_out);
  Tensor forward_16(const Tensor& input, std::int64_t h_out,
                    std::int64_t w_out);

  Conv2dOptions opts_;
  Parameter weight_;  // [out_channels, in_channels/groups, k, k]
  Parameter bias_;    // [out_channels]
  Tensor cached_input_;
  // Packed weight panels for the blocked GEMM, one cache per group.
  std::vector<kernels::WeightPackCache> packed_;
  // Native low-precision state: quantized/16-bit pack caches (one per
  // group) and the frozen per-output-channel INT8 scales.
  kernels::LowPrec native_ = kernels::LowPrec::kNone;
  std::vector<float> native_scales_;
  std::vector<kernels::LowPrecPackCache> lowp_packed_;
  // Static activation calibration + ReLU fusion state.
  bool static_act_ = false;
  float static_in_scale_ = 0.0f;
  float static_out_scale_ = 0.0f;
  bool fuse_relu_ = false;
};

}  // namespace pfi::nn
