// Stochastic gradient descent with momentum and weight decay — the training
// algorithm named in the paper's background section (Sec. II-A) and used by
// the training-with-injection use case (Sec. IV-D).
#pragma once

#include <unordered_map>

#include "nn/module.hpp"

namespace pfi::nn {

/// SGD hyperparameters.
struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdOptions opts);

  /// Apply one update from the accumulated gradients.
  void step();

  /// Zero every parameter's gradient accumulator.
  void zero_grad();

  float lr() const { return opts_.lr; }
  void set_lr(float lr) { opts_.lr = lr; }

 private:
  std::vector<Parameter*> params_;
  SgdOptions opts_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm. Standard stabilizer for IBP training,
/// whose |W|-path backward can amplify gradients layer by layer.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

/// Adam hyperparameters.
struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam with bias correction (Kingma & Ba). Useful for the no-BN networks
/// in the zoo, whose SGD learning rates are touchy.
class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamOptions opts);

  void step();
  void zero_grad();

  float lr() const { return opts_.lr; }
  void set_lr(float lr) { opts_.lr = lr; }

 private:
  struct Moments {
    Tensor m;
    Tensor v;
  };
  std::vector<Parameter*> params_;
  AdamOptions opts_;
  std::unordered_map<Parameter*, Moments> moments_;
  std::int64_t t_ = 0;
};

}  // namespace pfi::nn
