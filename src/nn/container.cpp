#include "nn/container.hpp"

#include <algorithm>
#include <functional>

#include "nn/conv2d.hpp"
#include "nn/layers.hpp"
#include "nn/linear.hpp"

namespace pfi::nn {

// ---------------------------------------------------------- Sequential ------

ModulePtr Sequential::push(ModulePtr m) {
  PFI_CHECK(m != nullptr) << "Sequential::push(nullptr)";
  if (m->name().empty()) m->set_name(std::to_string(items_.size()));
  m->train(is_training());
  items_.push_back(m);
  return items_.back();
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& m : items_) x = (*m)(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
    g = (*it)->run_backward(g);
  }
  return g;
}

std::vector<Module*> Sequential::children() {
  std::vector<Module*> out;
  out.reserve(items_.size());
  for (auto& m : items_) out.push_back(m.get());
  return out;
}

std::shared_ptr<Module> Sequential::clone_structure() const {
  auto copy = std::make_shared<Sequential>();
  // push() re-derives the same positional child names, so a structural
  // clone's parameter paths match the source's exactly.
  for (const auto& m : items_) copy->push(m->clone_structure());
  return copy;
}

Module& Sequential::at(std::size_t i) {
  PFI_CHECK(i < items_.size())
      << "Sequential index " << i << " out of range (size " << items_.size()
      << ")";
  return *items_[i];
}

// ------------------------------------------------------------ Residual ------

Residual::Residual(ModulePtr main, ModulePtr shortcut)
    : main_(std::move(main)), shortcut_(std::move(shortcut)) {
  PFI_CHECK(main_ && shortcut_) << "Residual branches must be non-null";
  main_->set_name("main");
  shortcut_->set_name("shortcut");
}

Tensor Residual::forward(const Tensor& input) {
  Tensor a = (*main_)(input);
  Tensor b = (*shortcut_)(input);
  PFI_CHECK(a.shape() == b.shape())
      << "Residual branch shapes differ: main " << a.to_string()
      << " vs shortcut " << b.to_string();
  // Fresh storage: adding into `a` in place would corrupt activations the
  // main branch cached for backward (its output may alias a child's cache).
  Tensor out = a.clone();
  out.add_(b);
  return out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor ga = main_->run_backward(grad_output);
  Tensor gb = shortcut_->run_backward(grad_output);
  ga.add_(gb);
  return ga;
}

std::vector<Module*> Residual::children() {
  return {main_.get(), shortcut_.get()};
}

std::shared_ptr<Module> Residual::clone_structure() const {
  return std::make_shared<Residual>(main_->clone_structure(),
                                    shortcut_->clone_structure());
}

// -------------------------------------------------------------- Concat ------

Concat::Concat(std::vector<ModulePtr> branches)
    : branches_(std::move(branches)) {
  PFI_CHECK(!branches_.empty()) << "Concat needs at least one branch";
  for (std::size_t i = 0; i < branches_.size(); ++i) {
    PFI_CHECK(branches_[i] != nullptr) << "Concat branch " << i << " is null";
    branches_[i]->set_name("branch" + std::to_string(i));
  }
}

Tensor Concat::forward(const Tensor& input) {
  std::vector<Tensor> outs;
  outs.reserve(branches_.size());
  branch_channels_.clear();
  std::int64_t total_c = 0;
  for (auto& b : branches_) {
    Tensor o = (*b)(input);
    PFI_CHECK(o.dim() == 4) << "Concat branches must produce NCHW, got "
                            << o.to_string();
    if (!outs.empty()) {
      PFI_CHECK(o.size(0) == outs[0].size(0) && o.size(2) == outs[0].size(2) &&
                o.size(3) == outs[0].size(3))
          << "Concat branch shape mismatch: " << o.to_string() << " vs "
          << outs[0].to_string();
    }
    total_c += o.size(1);
    branch_channels_.push_back(o.size(1));
    outs.push_back(std::move(o));
  }
  const auto n = outs[0].size(0), h = outs[0].size(2), w = outs[0].size(3);
  const auto hw = h * w;
  Tensor out({n, total_c, h, w});
  auto* op = out.data().data();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    std::int64_t c_off = 0;
    for (const auto& o : outs) {
      const auto bc = o.size(1);
      const auto* src = o.data().data() + ni * bc * hw;
      std::copy(src, src + bc * hw, op + (ni * total_c + c_off) * hw);
      c_off += bc;
    }
  }
  return out;
}

Tensor Concat::backward(const Tensor& grad_output) {
  PFI_CHECK(!branch_channels_.empty()) << "Concat::backward before forward";
  const auto n = grad_output.size(0), total_c = grad_output.size(1),
             h = grad_output.size(2), w = grad_output.size(3);
  const auto hw = h * w;
  const auto* gp = grad_output.data().data();

  Tensor grad_input;
  std::int64_t c_off = 0;
  for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
    const auto bc = branch_channels_[bi];
    Tensor slice({n, bc, h, w});
    auto* sp = slice.data().data();
    for (std::int64_t ni = 0; ni < n; ++ni) {
      const auto* src = gp + (ni * total_c + c_off) * hw;
      std::copy(src, src + bc * hw, sp + ni * bc * hw);
    }
    Tensor gi = branches_[bi]->run_backward(slice);
    if (!grad_input.defined()) {
      grad_input = std::move(gi);
    } else {
      grad_input.add_(gi);
    }
    c_off += bc;
  }
  return grad_input;
}

std::shared_ptr<Module> Concat::clone_structure() const {
  std::vector<ModulePtr> branches;
  branches.reserve(branches_.size());
  for (const auto& b : branches_) branches.push_back(b->clone_structure());
  return std::make_shared<Concat>(std::move(branches));
}

std::vector<Module*> Concat::children() {
  std::vector<Module*> out;
  out.reserve(branches_.size());
  for (auto& b : branches_) out.push_back(b.get());
  return out;
}

// ---------------------------------------------------------- ReLU fusion ------

namespace {

/// Apply `wire` to every adjacent (Conv2d|Linear, ReLU) pair found inside
/// the tree's Sequential containers. Only Sequential expresses "runs
/// immediately after" structurally, so that is where adjacency is read.
int for_each_relu_pair(Module& root,
                       const std::function<void(Module&, ReLU&)>& wire) {
  int pairs = 0;
  for (Module* m : root.modules()) {
    auto* seq = dynamic_cast<Sequential*>(m);
    if (seq == nullptr) continue;
    const std::vector<Module*> children = seq->children();
    for (std::size_t i = 0; i + 1 < children.size(); ++i) {
      auto* relu = dynamic_cast<ReLU*>(children[i + 1]);
      if (relu == nullptr) continue;
      if (children[i]->kind() != "Conv2d" && children[i]->kind() != "Linear") {
        continue;
      }
      wire(*children[i], *relu);
      ++pairs;
    }
  }
  return pairs;
}

}  // namespace

int fuse_relu(Module& root) {
  return for_each_relu_pair(root, [](Module& producer, ReLU& relu) {
    if (auto* conv = dynamic_cast<Conv2d*>(&producer)) {
      conv->set_fuse_relu(true);
    } else if (auto* linear = dynamic_cast<Linear*>(&producer)) {
      linear->set_fuse_relu(true);
    }
    relu.set_producer(&producer);
  });
}

int unfuse_relu(Module& root) {
  return for_each_relu_pair(root, [](Module& producer, ReLU& relu) {
    if (auto* conv = dynamic_cast<Conv2d*>(&producer)) {
      conv->set_fuse_relu(false);
    } else if (auto* linear = dynamic_cast<Linear*>(&producer)) {
      linear->set_fuse_relu(false);
    }
    relu.set_producer(nullptr);
  });
}

}  // namespace pfi::nn
