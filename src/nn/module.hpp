// Module: the base class of the pfi neural-network substrate.
//
// This mirrors the slice of torch.nn.Module that the paper's mechanism
// depends on:
//
//  * forward hooks   -- called AFTER a module's forward with mutable access
//                       to the output tensor. This is how PyTorchFI corrupts
//                       neuron values at runtime (paper Sec. III-A): the tool
//                       never rewrites the graph or patches the framework.
//  * forward pre-hooks -- called BEFORE forward with mutable access to the
//                       input; provided for completeness (input perturbation
//                       use cases such as adversarial noise).
//  * module tree     -- named children, recursive traversal, so an injector
//                       can enumerate all convolution layers of any model.
//  * train/eval mode -- batch-norm and dropout behave differently per mode.
//  * parameters      -- named (value, grad) pairs for the optimizer and for
//                       offline weight perturbation.
//
// Every module also implements backward() so the library supports training
// (paper Sec. IV-D) and gradient-based interpretability (Sec. IV-E).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace pfi::nn {

/// A learnable tensor and its gradient accumulator.
struct Parameter {
  std::string name;  ///< dotted path, e.g. "features.0.weight"
  Tensor value;
  Tensor grad;

  /// Zero the gradient accumulator.
  void zero_grad() {
    if (grad.defined()) grad.fill(0.0f);
  }
};

class Module;

/// Post-forward hook: may read the (post-pre-hook) input and mutate the
/// output in place. Matches torch's module.register_forward_hook semantics.
using ForwardHook = std::function<void(Module&, const Tensor&, Tensor&)>;

/// Pre-forward hook: may mutate the input in place before forward runs.
using ForwardPreHook = std::function<void(Module&, Tensor&)>;

/// Bypass hook: consulted after pre-hooks but BEFORE forward(). Returning
/// true means the hook produced the module's output itself (into `out`);
/// forward() and the post-forward hooks are then skipped entirely. This is
/// the short-circuit the prefix-reuse cache uses to replay a recorded
/// golden activation instead of recomputing it (core/prefix_cache.hpp).
/// Modules with no bypass hooks pay one emptiness check.
using BypassHook = std::function<bool(Module&, const Tensor&, Tensor&)>;

/// Backward hook: observes (and may mutate) dL/d(output) as it arrives at a
/// module during backpropagation. Used by Grad-CAM to capture intermediate
/// gradients (paper Sec. IV-E).
using BackwardHook = std::function<void(Module&, Tensor&)>;

/// Opaque handle for removing a registered hook.
using HookHandle = std::uint64_t;

/// Base class for all layers and containers.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  // -- Execution ---------------------------------------------------------------
  /// Run pre-hooks, forward, then post-hooks. Call this, not forward(),
  /// so instrumentation fires; composite modules invoke children this way.
  Tensor operator()(const Tensor& input);

  /// The layer computation. Implementations must cache whatever backward
  /// needs. Do not call directly from user code; use operator().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Backpropagate: given dL/d(output), accumulate parameter grads and
  /// return dL/d(input). Requires a preceding forward of the same batch.
  /// Call run_backward(), not this, so backward hooks fire.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Run backward hooks, then backward(). Containers propagate through
  /// children with this so hooks fire at any depth.
  Tensor run_backward(const Tensor& grad_output);

  // -- Hooks (the paper's instrumentation point) ---------------------------------
  HookHandle register_forward_hook(ForwardHook hook);
  HookHandle register_forward_pre_hook(ForwardPreHook hook);
  HookHandle register_backward_hook(BackwardHook hook);
  HookHandle register_bypass_hook(BypassHook hook);
  /// Remove a hook by handle; returns false if not found.
  bool remove_hook(HookHandle handle);
  /// Number of currently installed forward hooks.
  std::size_t forward_hook_count() const { return forward_hooks_.size(); }

  // -- Module tree ----------------------------------------------------------------
  /// Short type tag, e.g. "Conv2d"; used by the injector to select layers.
  virtual std::string kind() const = 0;
  /// True when forward() is a pure function of the input and the module's
  /// current parameters — i.e. running it twice on the same input yields
  /// bit-identical outputs. Modules that draw randomness per call (Dropout
  /// in training mode, PerturbationLayer) override this; the prefix-reuse
  /// cache refuses to snapshot or short-circuit a non-deterministic module.
  virtual bool deterministic_forward() const { return true; }
  /// True when this module's forward ALREADY applied the rectification of
  /// the ReLU that immediately follows it (nn::fuse_relu wired the pair and
  /// the module's fusion gate is currently open). The downstream ReLU
  /// consults this per forward and passes its input through unchanged, so
  /// fused and unfused executions produce bit-identical model outputs.
  virtual bool relu_fused_output() const { return false; }
  /// Structural deep copy: a freshly-constructed module tree with identical
  /// architecture (hyperparameters, children, wiring) but independent
  /// storage and no hooks. Parameter VALUES are unspecified (layers with
  /// random init re-roll them) — use nn::clone_model() for a full replica
  /// including weights and batch-norm statistics. The default throws for
  /// kinds that do not support cloning.
  virtual std::shared_ptr<Module> clone_structure() const;
  /// Name assigned by the enclosing container ("" at the root).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  /// Direct children, in execution order where meaningful.
  virtual std::vector<Module*> children() { return {}; }
  /// This module plus all descendants, pre-order.
  std::vector<Module*> modules();

  /// (dotted path, module) for this module and all descendants, pre-order —
  /// the same dotted naming parameters() produces ("features.0", ...). The
  /// root's own name is its prefix ("" for an unnamed root). The trace
  /// subsystem uses these paths to identify instrumented layers stably in
  /// exported traces.
  std::vector<std::pair<std::string, Module*>> named_modules();

  // -- Parameters -------------------------------------------------------------------
  /// This module's own parameters (not descendants').
  virtual std::vector<Parameter*> local_parameters() { return {}; }
  /// All parameters in the subtree, pre-order, with dotted names refreshed.
  std::vector<Parameter*> parameters();
  /// Zero every gradient in the subtree.
  void zero_grad();
  /// Total learnable element count in the subtree.
  std::int64_t parameter_count();

  // -- Mode ------------------------------------------------------------------------
  /// Set training mode for this module and all descendants.
  void train(bool on = true);
  void eval() { train(false); }
  bool is_training() const { return training_; }

  /// Shape of the most recent output produced through operator(), empty if
  /// the module has not run. The fault injector's profiling pass reads this.
  const Shape& last_output_shape() const { return last_output_shape_; }

 protected:
  bool training_ = true;

 private:
  void collect_parameters(const std::string& prefix,
                          std::vector<Parameter*>& out);

  std::string name_;
  Shape last_output_shape_;
  std::vector<std::pair<HookHandle, ForwardHook>> forward_hooks_;
  std::vector<std::pair<HookHandle, ForwardPreHook>> pre_hooks_;
  std::vector<std::pair<HookHandle, BackwardHook>> backward_hooks_;
  std::vector<std::pair<HookHandle, BypassHook>> bypass_hooks_;
  HookHandle next_handle_ = 1;
};

}  // namespace pfi::nn
