#include "nn/conv2d.hpp"

#include <cmath>

#include "nn/init.hpp"

namespace pfi::nn {

Conv2d::Conv2d(Conv2dOptions opts, Rng& rng) : opts_(opts) {
  PFI_CHECK(opts_.in_channels > 0 && opts_.out_channels > 0)
      << "Conv2d channels must be positive";
  PFI_CHECK(opts_.kernel > 0 && opts_.stride > 0 && opts_.padding >= 0)
      << "Conv2d geometry invalid: k=" << opts_.kernel << " s=" << opts_.stride
      << " p=" << opts_.padding;
  PFI_CHECK(opts_.groups > 0 && opts_.in_channels % opts_.groups == 0 &&
            opts_.out_channels % opts_.groups == 0)
      << "Conv2d groups=" << opts_.groups << " must divide in="
      << opts_.in_channels << " and out=" << opts_.out_channels;

  packed_.resize(static_cast<std::size_t>(opts_.groups));
  const auto cin_g = opts_.in_channels / opts_.groups;
  weight_.name = "weight";
  weight_.value =
      Tensor({opts_.out_channels, cin_g, opts_.kernel, opts_.kernel});
  weight_.grad = Tensor(weight_.value.shape());
  kaiming_normal_(weight_.value, cin_g * opts_.kernel * opts_.kernel, rng);
  if (opts_.bias) {
    bias_.name = "bias";
    bias_.value = Tensor({opts_.out_channels});
    bias_.grad = Tensor({opts_.out_channels});
  }
}

std::vector<Parameter*> Conv2d::local_parameters() {
  std::vector<Parameter*> out{&weight_};
  if (opts_.bias) out.push_back(&bias_);
  return out;
}

void Conv2d::set_native_dtype(kernels::LowPrec native,
                              std::vector<float> out_channel_scales) {
  PFI_CHECK(out_channel_scales.empty() || native == kernels::LowPrec::kInt8)
      << kind() << "::set_native_dtype: channel scales only apply to kInt8";
  PFI_CHECK(out_channel_scales.empty() ||
            out_channel_scales.size() ==
                static_cast<std::size_t>(opts_.out_channels))
      << kind() << "::set_native_dtype: got " << out_channel_scales.size()
      << " channel scales for " << opts_.out_channels << " output channels";
  for (const float s : out_channel_scales) {
    PFI_CHECK(std::isfinite(s) && s > 0.0f)
        << kind() << "::set_native_dtype: channel scale " << s
        << " must be finite and positive";
  }
  native_ = native;
  native_scales_ = std::move(out_channel_scales);
  for (auto& p : lowp_packed_) p.invalidate();
}

void Conv2d::set_static_act(float in_scale, float out_scale) {
  PFI_CHECK(std::isfinite(in_scale) && in_scale > 0.0f &&
            std::isfinite(out_scale) && out_scale > 0.0f)
      << kind() << "::set_static_act: scales in=" << in_scale
      << " out=" << out_scale << " must be finite and positive";
  static_act_ = true;
  static_in_scale_ = in_scale;
  static_out_scale_ = out_scale;
}

void Conv2d::im2col(const Tensor& input, std::int64_t n, std::int64_t group,
                    std::int64_t h_out, std::int64_t w_out, Tensor& col) const {
  const auto k = opts_.kernel, s = opts_.stride, p = opts_.padding;
  const auto h_in = input.size(2), w_in = input.size(3);
  const auto cin_g = opts_.in_channels / opts_.groups;
  const auto c0 = group * cin_g;
  const auto* in = input.data().data();
  auto* out = col.data().data();
  const auto in_plane = h_in * w_in;
  const auto in_base = (n * input.size(1) + c0) * in_plane;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_g; ++c) {
    const float* plane = in + in_base + c * in_plane;
    for (std::int64_t kh = 0; kh < k; ++kh) {
      for (std::int64_t kw = 0; kw < k; ++kw, ++row) {
        float* dst = out + row * (h_out * w_out);
        for (std::int64_t oh = 0; oh < h_out; ++oh) {
          const std::int64_t ih = oh * s - p + kh;
          if (ih < 0 || ih >= h_in) {
            for (std::int64_t ow = 0; ow < w_out; ++ow) dst[oh * w_out + ow] = 0.0f;
            continue;
          }
          const float* src_row = plane + ih * w_in;
          for (std::int64_t ow = 0; ow < w_out; ++ow) {
            const std::int64_t iw = ow * s - p + kw;
            dst[oh * w_out + ow] =
                (iw >= 0 && iw < w_in) ? src_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::im2col_tile(const Tensor& input, std::int64_t n,
                         std::int64_t group, std::int64_t w_out,
                         std::int64_t col0, int w, float* dst) const {
  const auto k = opts_.kernel, s = opts_.stride, p = opts_.padding;
  const auto h_in = input.size(2), w_in = input.size(3);
  const auto cin_g = opts_.in_channels / opts_.groups;
  const auto c0 = group * cin_g;
  const auto* in = input.data().data();
  const auto in_plane = h_in * w_in;
  const auto in_base = (n * input.size(1) + c0) * in_plane;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_g; ++c) {
    const float* plane = in + in_base + c * in_plane;
    for (std::int64_t kh = 0; kh < k; ++kh) {
      for (std::int64_t kw = 0; kw < k; ++kw, ++row) {
        float* drow = dst + row * w;
        for (int cc = 0; cc < w; ++cc) {
          const std::int64_t j = col0 + cc;
          const std::int64_t oh = j / w_out, ow = j % w_out;
          const std::int64_t ih = oh * s - p + kh;
          const std::int64_t iw = ow * s - p + kw;
          drow[cc] = (ih >= 0 && ih < h_in && iw >= 0 && iw < w_in)
                         ? plane[ih * w_in + iw]
                         : 0.0f;
        }
      }
    }
  }
}

void Conv2d::col2im(const Tensor& col, std::int64_t n, std::int64_t group,
                    std::int64_t h_out, std::int64_t w_out,
                    Tensor& grad_input) const {
  const auto k = opts_.kernel, s = opts_.stride, p = opts_.padding;
  const auto h_in = grad_input.size(2), w_in = grad_input.size(3);
  const auto cin_g = opts_.in_channels / opts_.groups;
  const auto c0 = group * cin_g;
  const auto* src = col.data().data();
  auto* dst = grad_input.data().data();
  const auto in_plane = h_in * w_in;
  const auto in_base = (n * grad_input.size(1) + c0) * in_plane;

  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_g; ++c) {
    float* plane = dst + in_base + c * in_plane;
    for (std::int64_t kh = 0; kh < k; ++kh) {
      for (std::int64_t kw = 0; kw < k; ++kw, ++row) {
        const float* col_row = src + row * (h_out * w_out);
        for (std::int64_t oh = 0; oh < h_out; ++oh) {
          const std::int64_t ih = oh * s - p + kh;
          if (ih < 0 || ih >= h_in) continue;
          float* dst_row = plane + ih * w_in;
          for (std::int64_t ow = 0; ow < w_out; ++ow) {
            const std::int64_t iw = ow * s - p + kw;
            if (iw >= 0 && iw < w_in) dst_row[iw] += col_row[oh * w_out + ow];
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 4) << kind() << " expects NCHW, got "
                              << input.to_string();
  PFI_CHECK(input.size(1) == opts_.in_channels)
      << kind() << " expects " << opts_.in_channels << " channels, got "
      << input.to_string();
  const auto n_batch = input.size(0);
  const auto h_out = out_size(input.size(2));
  const auto w_out = out_size(input.size(3));
  PFI_CHECK(h_out > 0 && w_out > 0)
      << kind() << " output would be empty for input " << input.to_string();

  cached_input_ = input;
  if (native_ == kernels::LowPrec::kInt8) {
    return forward_int8(input, h_out, w_out);
  }
  if (native_ != kernels::LowPrec::kNone) {
    return forward_16(input, h_out, w_out);
  }
  const auto g = opts_.groups;
  const auto cin_g = opts_.in_channels / g;
  const auto cout_g = opts_.out_channels / g;
  const auto col_rows = cin_g * opts_.kernel * opts_.kernel;

  const auto spatial = h_out * w_out;
  Tensor output({n_batch, opts_.out_channels, h_out, w_out});
  Tensor col({col_rows, spatial});
  // Weight viewed per group as [cout_g, col_rows]: the GEMM's A operand.
  const Tensor w_mat = weight_.value.reshape({opts_.out_channels, col_rows});
  const bool blocked = kernels::active_impl() == kernels::Impl::kBlocked;
  // Fused conv->ReLU fast path: when the gate is open (no forward hook
  // needs the pre-activation, eval mode) the GEMM epilogue rectifies the
  // finished tiles and the downstream ReLU passes through — bit-identical
  // to the unfused pair (kernels.hpp, kReluZero).
  const bool fuse = relu_fused_output();
  const auto epilogue =
      opts_.bias
          ? (fuse ? kernels::Epilogue::kReluBiasRow : kernels::Epilogue::kBiasRow)
          : (fuse ? kernels::Epilogue::kReluZero : kernels::Epilogue::kZero);

  // Group-outer so the packed weight panels are looked up once per group
  // (cache hit: a fingerprint check; miss: one repack) and reused across the
  // batch.
  for (std::int64_t grp = 0; grp < g; ++grp) {
    const auto* wp = w_mat.data().data() + grp * cout_g * col_rows;
    const float* bp =
        opts_.bias ? bias_.value.data().data() + grp * cout_g : nullptr;
    const kernels::PackedPanels* pa = nullptr;
    if (blocked) {
      pa = &packed_[static_cast<std::size_t>(grp)].packed_a(
          cout_g, col_rows, wp, col_rows, false);
    }
    for (std::int64_t n = 0; n < n_batch; ++n) {
      im2col(input, n, grp, h_out, w_out, col);
      auto* op = output.data().data() +
                 (n * opts_.out_channels + grp * cout_g) * spatial;
      if (blocked) {
        kernels::gemm_prepacked_a(cout_g, spatial, col_rows, *pa,
                                  col.data().data(), spatial, false, op,
                                  spatial, epilogue, bp);
      } else {
        kernels::naive_gemm(cout_g, spatial, col_rows, wp, col_rows, false,
                            col.data().data(), spatial, false, op, spatial,
                            epilogue, bp);
      }
    }
  }
  return output;
}

// Native INT8 forward: weights carry frozen per-output-channel symmetric
// scales (golden-calibrated by the injector, or lazily calibrated here on
// first use); the im2col operand is quantized with either one dynamic
// per-tensor scale per (sample, group) or the frozen static input scale,
// and streamed tile-by-tile straight into the packed panels — the full
// col_rows x spatial column matrix is never materialized. The integer
// GEMM's exact i32 accumulators are requantized as fma(sw[oc] * sa, acc,
// bias[oc]); under static calibration the result is immediately re-quantized
// onto the frozen output grid (optionally rectified on codes — the fused
// conv->ReLU boundary), so chains of static layers carry exactly int8
// information. Everything downstream of the quantizers is integer
// arithmetic, so the output is bit-identical at any thread count, block
// config, or INT8 ISA.
Tensor Conv2d::forward_int8(const Tensor& input, std::int64_t h_out,
                            std::int64_t w_out) {
  const auto n_batch = input.size(0);
  const auto g = opts_.groups;
  const auto cin_g = opts_.in_channels / g;
  const auto cout_g = opts_.out_channels / g;
  const auto col_rows = cin_g * opts_.kernel * opts_.kernel;
  const auto spatial = h_out * w_out;

  Tensor output({n_batch, opts_.out_channels, h_out, w_out});
  const Tensor w_mat = weight_.value.reshape({opts_.out_channels, col_rows});
  if (lowp_packed_.size() != static_cast<std::size_t>(g)) {
    lowp_packed_.resize(static_cast<std::size_t>(g));
  }
  if (native_scales_.empty()) {
    native_scales_ = kernels::per_row_scales_i8(
        opts_.out_channels, col_rows, w_mat.data().data(), col_rows, false);
  }
  const bool fuse = relu_fused_output();

  std::vector<std::int32_t> acc(static_cast<std::size_t>(cout_g * spatial));
  kernels::PackedPanelsI8 colq;
  for (std::int64_t grp = 0; grp < g; ++grp) {
    const auto* wp = w_mat.data().data() + grp * cout_g * col_rows;
    const float* bp =
        opts_.bias ? bias_.value.data().data() + grp * cout_g : nullptr;
    const auto& pa =
        lowp_packed_[static_cast<std::size_t>(grp)].packed_a_i8(
            cout_g, col_rows, wp, col_rows, false,
            native_scales_.data() + grp * cout_g);
    for (std::int64_t n = 0; n < n_batch; ++n) {
      const kernels::BTileFn tile = [&](std::int64_t col0, int w, float* dst) {
        im2col_tile(input, n, grp, w_out, col0, w, dst);
      };
      // Dynamic calibration pays one extra streaming pass for the absmax;
      // static calibration skips it entirely — that pass is the cost the
      // frozen scales exist to eliminate.
      const float in_scale =
          static_act_
              ? static_in_scale_
              : kernels::scale_from_absmax(
                    kernels::finite_absmax_stream(col_rows, spatial, tile));
      kernels::quantize_pack_b_i8_stream(col_rows, spatial, in_scale, tile,
                                         colq);
      kernels::gemm_i8(cout_g, spatial, col_rows, pa, colq, acc.data(),
                       spatial);
      auto* op = output.data().data() +
                 (n * opts_.out_channels + grp * cout_g) * spatial;
      if (static_act_) {
        kernels::requantize_rows_grid(cout_g, spatial, acc.data(), spatial,
                                      pa.scale.data(), in_scale, bp,
                                      static_out_scale_, fuse, op, spatial);
      } else {
        kernels::requantize_rows(cout_g, spatial, acc.data(), spatial,
                                 pa.scale.data(), in_scale, bp, op, spatial);
      }
    }
  }
  return output;
}

// Native fp16/bf16 forward: weights, activations, and bias are stored as
// 16-bit codes and widened (exactly) into the fp32 blocked kernels, so the
// result equals the fp32 GEMM over pre-narrowed operands and inherits the
// fp32 determinism guarantees.
Tensor Conv2d::forward_16(const Tensor& input, std::int64_t h_out,
                          std::int64_t w_out) {
  const auto fmt = native_ == kernels::LowPrec::kFp16
                       ? kernels::Storage16::kFp16
                       : kernels::Storage16::kBf16;
  const auto n_batch = input.size(0);
  const auto g = opts_.groups;
  const auto cin_g = opts_.in_channels / g;
  const auto cout_g = opts_.out_channels / g;
  const auto col_rows = cin_g * opts_.kernel * opts_.kernel;
  const auto spatial = h_out * w_out;

  Tensor output({n_batch, opts_.out_channels, h_out, w_out});
  Tensor col({col_rows, spatial});
  const Tensor w_mat = weight_.value.reshape({opts_.out_channels, col_rows});
  if (lowp_packed_.size() != static_cast<std::size_t>(g)) {
    lowp_packed_.resize(static_cast<std::size_t>(g));
  }
  const auto epilogue =
      opts_.bias ? kernels::Epilogue::kBiasRow : kernels::Epilogue::kZero;

  kernels::PackedPanels wa;
  std::vector<std::uint16_t> codes;
  std::vector<float> colw;
  std::vector<float> bias_w(static_cast<std::size_t>(opts_.bias ? cout_g : 0));
  for (std::int64_t grp = 0; grp < g; ++grp) {
    const auto* wp = w_mat.data().data() + grp * cout_g * col_rows;
    const auto& ph = lowp_packed_[static_cast<std::size_t>(grp)].packed_a_16(
        cout_g, col_rows, wp, col_rows, false, fmt);
    kernels::widen_pack(ph, wa);
    if (opts_.bias) {
      const float* bp = bias_.value.data().data() + grp * cout_g;
      for (std::int64_t i = 0; i < cout_g; ++i) {
        bias_w[static_cast<std::size_t>(i)] =
            kernels::widen16(kernels::narrow16(bp[i], fmt), fmt);
      }
    }
    for (std::int64_t n = 0; n < n_batch; ++n) {
      im2col(input, n, grp, h_out, w_out, col);
      kernels::narrow_buffer(col.data().data(), col_rows * spatial, fmt,
                             codes);
      kernels::widen_buffer(codes.data(), col_rows * spatial, fmt, colw);
      auto* op = output.data().data() +
                 (n * opts_.out_channels + grp * cout_g) * spatial;
      kernels::gemm_prepacked_a(cout_g, spatial, col_rows, wa, colw.data(),
                                spatial, false, op, spatial, epilogue,
                                opts_.bias ? bias_w.data() : nullptr);
    }
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  PFI_CHECK(cached_input_.defined())
      << kind() << "::backward without a preceding forward";
  const Tensor& input = cached_input_;
  const auto n_batch = input.size(0);
  const auto h_out = grad_output.size(2);
  const auto w_out = grad_output.size(3);
  PFI_CHECK(grad_output.size(0) == n_batch &&
            grad_output.size(1) == opts_.out_channels)
      << kind() << "::backward grad shape " << grad_output.to_string();

  const auto g = opts_.groups;
  const auto cin_g = opts_.in_channels / g;
  const auto cout_g = opts_.out_channels / g;
  const auto col_rows = cin_g * opts_.kernel * opts_.kernel;
  const auto spatial = h_out * w_out;

  Tensor grad_input(input.shape());
  Tensor col({col_rows, spatial});
  Tensor grad_col({col_rows, spatial});
  const Tensor w_mat = weight_.value.reshape({opts_.out_channels, col_rows});
  Tensor gw_mat = weight_.grad.reshape({opts_.out_channels, col_rows});

  for (std::int64_t n = 0; n < n_batch; ++n) {
    for (std::int64_t grp = 0; grp < g; ++grp) {
      im2col(input, n, grp, h_out, w_out, col);
      const auto* go = grad_output.data().data() +
                       (n * opts_.out_channels + grp * cout_g) * spatial;
      const auto* cp = col.data().data();
      const auto* wp = w_mat.data().data() + grp * cout_g * col_rows;
      auto* gwp = gw_mat.data().data() + grp * cout_g * col_rows;

      // grad_weight += grad_out x col^T (GEMM-T: B is the transposed column
      // matrix); grad_bias += sum(grad_out).
      kernels::gemm(cout_g, col_rows, spatial, go, spatial, false, cp, spatial,
                    true, gwp, col_rows, kernels::Epilogue::kAccumulate);
      if (opts_.bias) {
        for (std::int64_t oc = 0; oc < cout_g; ++oc) {
          const float* grow = go + oc * spatial;
          float acc = 0.0f;
          for (std::int64_t j = 0; j < spatial; ++j) acc += grow[j];
          bias_.grad[grp * cout_g + oc] += acc;
        }
      }

      // grad_col = W^T x grad_out, then scatter back to grad_input.
      auto* gcp = grad_col.data().data();
      kernels::gemm(col_rows, spatial, cout_g, wp, col_rows, true, go, spatial,
                    false, gcp, spatial, kernels::Epilogue::kZero);
      col2im(grad_col, n, grp, h_out, w_out, grad_input);
    }
  }
  return grad_input;
}

}  // namespace pfi::nn
