// Model parameter serialization: save/load all parameters (plus BatchNorm
// running statistics) of a module tree to a simple binary container.
//
// Format (little-endian):
//   magic "PFIW" | u32 version | u64 entry_count
//   per entry: u32 name_len | name bytes | u64 numel | numel * f32
//
// Entries are the dotted parameter paths produced by Module::parameters()
// ("features.0.weight", ...) plus "<module path>#running_mean" /
// "#running_var" pseudo-entries for each BatchNorm2d. Loading matches by
// name and validates shapes, so a checkpoint can only be restored into a
// structurally identical model.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace pfi::nn {

/// Serialize all parameters and batch-norm statistics of `model` to `path`.
/// Throws pfi::Error on I/O failure.
void save_parameters(Module& model, const std::string& path);

/// Restore parameters saved by save_parameters. Every entry in the file
/// must match a parameter (by name and element count) in `model`, and every
/// model parameter must be present in the file.
void load_parameters(Module& model, const std::string& path);

/// Deep-copy all parameters and batch-norm statistics from `src` to `dst`
/// (both must have identical structure). Used to fork identically
/// initialized models (Table I methodology) without touching the RNG.
void copy_parameters(Module& src, Module& dst);

/// Full deep replica of a model: clone_structure() for the architecture,
/// then copy_parameters() for weights and batch-norm statistics, plus
/// module names and train/eval mode. The replica shares no storage with the
/// source, so the two can run forward passes on different threads — the
/// parallel campaign engine builds one replica per worker this way.
std::shared_ptr<Module> clone_model(Module& src);

}  // namespace pfi::nn
