#include "nn/linear.hpp"

#include "nn/init.hpp"

namespace pfi::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  PFI_CHECK(in_ > 0 && out_ > 0) << "Linear dims must be positive";
  weight_.name = "weight";
  weight_.value = Tensor({out_, in_});
  weight_.grad = Tensor({out_, in_});
  kaiming_normal_(weight_.value, in_, rng);
  if (has_bias_) {
    bias_.name = "bias";
    bias_.value = Tensor({out_});
    bias_.grad = Tensor({out_});
  }
}

std::vector<Parameter*> Linear::local_parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

Tensor Linear::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 2 && input.size(1) == in_)
      << "Linear(" << in_ << " -> " << out_ << ") got " << input.to_string();
  cached_input_ = input;
  const auto n = input.size(0);
  Tensor output({n, out_});
  const auto* x = input.data().data();
  const auto* w = weight_.value.data().data();
  auto* y = output.data().data();
  // y = x W^T + b: the GEMM's B operand is W transposed, packed once and
  // cached until the weight bits change.
  const auto epilogue =
      has_bias_ ? kernels::Epilogue::kBiasCol : kernels::Epilogue::kZero;
  const float* bp = has_bias_ ? bias_.value.data().data() : nullptr;
  if (kernels::active_impl() == kernels::Impl::kBlocked) {
    const auto& pb = packed_.packed_b(in_, out_, w, in_, true);
    kernels::gemm_prepacked_b(n, out_, in_, x, in_, false, pb, y, out_,
                              epilogue, bp);
  } else {
    kernels::naive_gemm(n, out_, in_, x, in_, false, w, in_, true, y, out_,
                        epilogue, bp);
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  PFI_CHECK(cached_input_.defined())
      << "Linear::backward without a preceding forward";
  const auto n = cached_input_.size(0);
  PFI_CHECK(grad_output.dim() == 2 && grad_output.size(0) == n &&
            grad_output.size(1) == out_)
      << "Linear::backward grad shape " << grad_output.to_string();

  Tensor grad_input({n, in_});
  const auto* x = cached_input_.data().data();
  const auto* g = grad_output.data().data();
  const auto* w = weight_.value.data().data();
  auto* gw = weight_.grad.data().data();
  auto* gx = grad_input.data().data();

  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* gr = g + i * out_;
      for (std::int64_t o = 0; o < out_; ++o) bias_.grad[o] += gr[o];
    }
  }
  // grad_W += g^T x, grad_x = g W. No zero-skip: a zero gradient against an
  // injected Inf/NaN weight must still propagate NaN, as hardware would.
  kernels::gemm(out_, in_, n, g, out_, true, x, in_, false, gw, in_,
                kernels::Epilogue::kAccumulate);
  kernels::gemm(n, in_, out_, g, out_, false, w, in_, false, gx, in_,
                kernels::Epilogue::kZero);
  return grad_input;
}

}  // namespace pfi::nn
