#include "nn/linear.hpp"

#include <cmath>

#include "nn/init.hpp"

namespace pfi::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  PFI_CHECK(in_ > 0 && out_ > 0) << "Linear dims must be positive";
  weight_.name = "weight";
  weight_.value = Tensor({out_, in_});
  weight_.grad = Tensor({out_, in_});
  kaiming_normal_(weight_.value, in_, rng);
  if (has_bias_) {
    bias_.name = "bias";
    bias_.value = Tensor({out_});
    bias_.grad = Tensor({out_});
  }
}

std::vector<Parameter*> Linear::local_parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

void Linear::set_native_dtype(kernels::LowPrec native,
                              std::vector<float> out_feature_scales) {
  PFI_CHECK(out_feature_scales.empty() || native == kernels::LowPrec::kInt8)
      << "Linear::set_native_dtype: feature scales only apply to kInt8";
  PFI_CHECK(out_feature_scales.empty() ||
            out_feature_scales.size() == static_cast<std::size_t>(out_))
      << "Linear::set_native_dtype: got " << out_feature_scales.size()
      << " feature scales for " << out_ << " output features";
  for (const float s : out_feature_scales) {
    PFI_CHECK(std::isfinite(s) && s > 0.0f)
        << "Linear::set_native_dtype: feature scale " << s
        << " must be finite and positive";
  }
  native_ = native;
  native_scales_ = std::move(out_feature_scales);
  lowp_packed_.invalidate();
}

void Linear::set_static_act(float in_scale, float out_scale) {
  PFI_CHECK(std::isfinite(in_scale) && in_scale > 0.0f &&
            std::isfinite(out_scale) && out_scale > 0.0f)
      << "Linear::set_static_act: scales in=" << in_scale
      << " out=" << out_scale << " must be finite and positive";
  static_act_ = true;
  static_in_scale_ = in_scale;
  static_out_scale_ = out_scale;
}

// Native INT8 forward: W^T is quantized per-out-feature (frozen scales as
// in Conv2d), the activation matrix gets one per-tensor scale — dynamic
// absmax, or the frozen static input scale (no absmax pass) — and the
// exact i32 GEMM is requantized as fma(sa * sw[o], acc, bias[o]); under
// static calibration the result lands directly on the frozen output grid
// (requantize_cols_grid, optionally rectified on codes).
Tensor Linear::forward_int8(const Tensor& input) {
  const auto n = input.size(0);
  Tensor output({n, out_});
  const auto* x = input.data().data();
  const auto* w = weight_.value.data().data();
  if (native_scales_.empty()) {
    native_scales_ = kernels::per_row_scales_i8(out_, in_, w, in_, false);
  }
  const auto& pb =
      lowp_packed_.packed_b_i8(in_, out_, w, in_, true, native_scales_.data());
  kernels::PackedPanelsI8 xa;
  if (static_act_) {
    kernels::quantize_pack_a_i8_static(n, in_, x, in_, false,
                                       kernels::block_config().mr,
                                       static_in_scale_, xa);
  } else {
    kernels::quantize_pack_a_i8_tensor(n, in_, x, in_, false,
                                       kernels::block_config().mr, xa);
  }
  std::vector<std::int32_t> acc(static_cast<std::size_t>(n * out_));
  kernels::gemm_i8(n, out_, in_, xa, pb, acc.data(), out_);
  const float* bp = has_bias_ ? bias_.value.data().data() : nullptr;
  if (static_act_) {
    kernels::requantize_cols_grid(n, out_, acc.data(), out_, xa.scale[0],
                                  pb.scale.data(), bp, static_out_scale_,
                                  relu_fused_output(), output.data().data(),
                                  out_);
  } else {
    kernels::requantize_cols(n, out_, acc.data(), out_, xa.scale[0],
                             pb.scale.data(), bp, output.data().data(), out_);
  }
  return output;
}

// Native fp16/bf16 forward: W^T, activations, and bias live as 16-bit codes
// widened exactly into the fp32 blocked kernel.
Tensor Linear::forward_16(const Tensor& input) {
  const auto fmt = native_ == kernels::LowPrec::kFp16
                       ? kernels::Storage16::kFp16
                       : kernels::Storage16::kBf16;
  const auto n = input.size(0);
  Tensor output({n, out_});
  const auto* x = input.data().data();
  const auto* w = weight_.value.data().data();
  const auto& ph = lowp_packed_.packed_b_16(in_, out_, w, in_, true, fmt);
  kernels::PackedPanels wb;
  kernels::widen_pack(ph, wb);
  std::vector<std::uint16_t> codes;
  std::vector<float> xw;
  kernels::narrow_buffer(x, n * in_, fmt, codes);
  kernels::widen_buffer(codes.data(), n * in_, fmt, xw);
  std::vector<float> bias_w(static_cast<std::size_t>(has_bias_ ? out_ : 0));
  if (has_bias_) {
    const float* bp = bias_.value.data().data();
    for (std::int64_t o = 0; o < out_; ++o) {
      bias_w[static_cast<std::size_t>(o)] =
          kernels::widen16(kernels::narrow16(bp[o], fmt), fmt);
    }
  }
  const auto epilogue =
      has_bias_ ? kernels::Epilogue::kBiasCol : kernels::Epilogue::kZero;
  kernels::gemm_prepacked_b(n, out_, in_, xw.data(), in_, false, wb,
                            output.data().data(), out_, epilogue,
                            has_bias_ ? bias_w.data() : nullptr);
  return output;
}

Tensor Linear::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 2 && input.size(1) == in_)
      << "Linear(" << in_ << " -> " << out_ << ") got " << input.to_string();
  cached_input_ = input;
  if (native_ == kernels::LowPrec::kInt8) return forward_int8(input);
  if (native_ != kernels::LowPrec::kNone) return forward_16(input);
  const auto n = input.size(0);
  Tensor output({n, out_});
  const auto* x = input.data().data();
  const auto* w = weight_.value.data().data();
  auto* y = output.data().data();
  // y = x W^T + b: the GEMM's B operand is W transposed, packed once and
  // cached until the weight bits change.
  const auto epilogue =
      has_bias_ ? kernels::Epilogue::kBiasCol : kernels::Epilogue::kZero;
  const float* bp = has_bias_ ? bias_.value.data().data() : nullptr;
  if (kernels::active_impl() == kernels::Impl::kBlocked) {
    const auto& pb = packed_.packed_b(in_, out_, w, in_, true);
    kernels::gemm_prepacked_b(n, out_, in_, x, in_, false, pb, y, out_,
                              epilogue, bp);
  } else {
    kernels::naive_gemm(n, out_, in_, x, in_, false, w, in_, true, y, out_,
                        epilogue, bp);
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  PFI_CHECK(cached_input_.defined())
      << "Linear::backward without a preceding forward";
  const auto n = cached_input_.size(0);
  PFI_CHECK(grad_output.dim() == 2 && grad_output.size(0) == n &&
            grad_output.size(1) == out_)
      << "Linear::backward grad shape " << grad_output.to_string();

  Tensor grad_input({n, in_});
  const auto* x = cached_input_.data().data();
  const auto* g = grad_output.data().data();
  const auto* w = weight_.value.data().data();
  auto* gw = weight_.grad.data().data();
  auto* gx = grad_input.data().data();

  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* gr = g + i * out_;
      for (std::int64_t o = 0; o < out_; ++o) bias_.grad[o] += gr[o];
    }
  }
  // grad_W += g^T x, grad_x = g W. No zero-skip: a zero gradient against an
  // injected Inf/NaN weight must still propagate NaN, as hardware would.
  kernels::gemm(out_, in_, n, g, out_, true, x, in_, false, gw, in_,
                kernels::Epilogue::kAccumulate);
  kernels::gemm(n, in_, out_, g, out_, false, w, in_, false, gx, in_,
                kernels::Epilogue::kZero);
  return grad_input;
}

}  // namespace pfi::nn
