// Batch normalization over the channel dimension of NCHW activations.
//
// Training mode normalizes with batch statistics and maintains running
// estimates; eval mode uses the running estimates, so inference is a pure
// per-channel affine transform (as in deployed models the paper perturbs).
#pragma once

#include "nn/module.hpp"

namespace pfi::nn {

class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::string kind() const override { return "BatchNorm2d"; }
  std::shared_ptr<Module> clone_structure() const override {
    return std::make_shared<BatchNorm2d>(channels_, eps_, momentum_);
  }
  std::vector<Parameter*> local_parameters() override;

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  std::int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;  // scale, [C]
  Parameter beta_;   // shift, [C]
  Tensor running_mean_;
  Tensor running_var_;

  // Cached for backward (training mode only).
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [C]
  bool cached_training_ = false;
};

}  // namespace pfi::nn
