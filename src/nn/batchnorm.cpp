#include "nn/batchnorm.hpp"

#include <cmath>

namespace pfi::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  PFI_CHECK(channels_ > 0) << "BatchNorm2d channels=" << channels_;
  gamma_.name = "weight";
  gamma_.value = Tensor({channels_}, 1.0f);
  gamma_.grad = Tensor({channels_});
  beta_.name = "bias";
  beta_.value = Tensor({channels_});
  beta_.grad = Tensor({channels_});
  running_mean_ = Tensor({channels_});
  running_var_ = Tensor({channels_}, 1.0f);
}

std::vector<Parameter*> BatchNorm2d::local_parameters() {
  return {&gamma_, &beta_};
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 4 && input.size(1) == channels_)
      << "BatchNorm2d(" << channels_ << ") got " << input.to_string();
  const auto n = input.size(0), c = channels_, h = input.size(2),
             w = input.size(3);
  const auto hw = h * w;
  const auto per_channel = n * hw;
  Tensor out(input.shape());
  cached_training_ = is_training();

  if (cached_training_) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_ = Tensor({c});
    const auto* in = input.data().data();
    auto* xhat = cached_xhat_.data().data();
    auto* o = out.data().data();
    for (std::int64_t ci = 0; ci < c; ++ci) {
      // Batch mean and (biased) variance over N*H*W for this channel.
      double mean = 0.0;
      for (std::int64_t ni = 0; ni < n; ++ni) {
        const float* plane = in + (ni * c + ci) * hw;
        for (std::int64_t j = 0; j < hw; ++j) mean += plane[j];
      }
      mean /= static_cast<double>(per_channel);
      double var = 0.0;
      for (std::int64_t ni = 0; ni < n; ++ni) {
        const float* plane = in + (ni * c + ci) * hw;
        for (std::int64_t j = 0; j < hw; ++j) {
          const double d = plane[j] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(per_channel);

      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[ci] = inv_std;
      const float g = gamma_.value[ci], b = beta_.value[ci];
      const float m = static_cast<float>(mean);
      for (std::int64_t ni = 0; ni < n; ++ni) {
        const float* plane = in + (ni * c + ci) * hw;
        float* xh = xhat + (ni * c + ci) * hw;
        float* op = o + (ni * c + ci) * hw;
        for (std::int64_t j = 0; j < hw; ++j) {
          const float v = (plane[j] - m) * inv_std;
          xh[j] = v;
          op[j] = g * v + b;
        }
      }
      running_mean_[ci] =
          (1.0f - momentum_) * running_mean_[ci] + momentum_ * m;
      running_var_[ci] = (1.0f - momentum_) * running_var_[ci] +
                         momentum_ * static_cast<float>(var);
    }
  } else {
    const auto* in = input.data().data();
    auto* o = out.data().data();
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float inv_std = 1.0f / std::sqrt(running_var_[ci] + eps_);
      const float g = gamma_.value[ci] * inv_std;
      const float b = beta_.value[ci] - running_mean_[ci] * g;
      for (std::int64_t ni = 0; ni < n; ++ni) {
        const float* plane = in + (ni * c + ci) * hw;
        float* op = o + (ni * c + ci) * hw;
        for (std::int64_t j = 0; j < hw; ++j) op[j] = g * plane[j] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (!cached_training_) {
    // Eval mode is a fixed per-channel affine map: dx = gamma * inv_std * dy.
    // Parameter gradients are not accumulated (eval backward exists for
    // gradient-based interpretability such as Grad-CAM, not training).
    Tensor grad_input = grad_output.clone();
    const auto n = grad_output.size(0), c = channels_,
               hw = grad_output.size(2) * grad_output.size(3);
    auto* gi = grad_input.data().data();
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float scale =
          gamma_.value[ci] / std::sqrt(running_var_[ci] + eps_);
      for (std::int64_t ni = 0; ni < n; ++ni) {
        float* plane = gi + (ni * c + ci) * hw;
        for (std::int64_t j = 0; j < hw; ++j) plane[j] *= scale;
      }
    }
    return grad_input;
  }
  PFI_CHECK(cached_xhat_.defined())
      << "BatchNorm2d::backward requires a preceding training-mode forward";
  const auto n = grad_output.size(0), c = channels_,
             hw = grad_output.size(2) * grad_output.size(3);
  const auto per_channel = n * hw;
  Tensor grad_input(grad_output.shape());
  const auto* go = grad_output.data().data();
  const auto* xhat = cached_xhat_.data().data();
  auto* gi = grad_input.data().data();

  for (std::int64_t ci = 0; ci < c; ++ci) {
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t ni = 0; ni < n; ++ni) {
      const float* gp = go + (ni * c + ci) * hw;
      const float* xp = xhat + (ni * c + ci) * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        sum_g += gp[j];
        sum_gx += gp[j] * xp[j];
      }
    }
    gamma_.grad[ci] += static_cast<float>(sum_gx);
    beta_.grad[ci] += static_cast<float>(sum_g);

    const float g = gamma_.value[ci];
    const float inv_std = cached_inv_std_[ci];
    const float inv_m = 1.0f / static_cast<float>(per_channel);
    const float mean_g = static_cast<float>(sum_g) * inv_m;
    const float mean_gx = static_cast<float>(sum_gx) * inv_m;
    for (std::int64_t ni = 0; ni < n; ++ni) {
      const float* gp = go + (ni * c + ci) * hw;
      const float* xp = xhat + (ni * c + ci) * hw;
      float* ip = gi + (ni * c + ci) * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        ip[j] = g * inv_std * (gp[j] - mean_g - xp[j] * mean_gx);
      }
    }
  }
  return grad_input;
}

}  // namespace pfi::nn
