// Weight initialization schemes (Kaiming/He and Xavier/Glorot).
#pragma once

#include <cmath>

#include "tensor/tensor.hpp"

namespace pfi::nn {

/// He-normal initialization: N(0, sqrt(2 / fan_in)). The default for all
/// conv and linear layers in the model zoo (all use ReLU activations).
inline void kaiming_normal_(Tensor& t, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (auto& v : t.data()) v = rng.normal(0.0f, stddev);
}

/// Xavier-uniform initialization: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
inline void xavier_uniform_(Tensor& t, std::int64_t fan_in,
                            std::int64_t fan_out, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& v : t.data()) v = rng.uniform(-a, a);
}

}  // namespace pfi::nn
