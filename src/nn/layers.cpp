#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pfi::nn {

// ---------------------------------------------------------------- ReLU ------

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  // Fused producer: the rectification already ran inside the producer's
  // GEMM epilogue, so the input IS the ReLU output. backward stays correct
  // — the cached (rectified) input has v > 0 exactly where the pre-image
  // did, so the gradient mask is unchanged.
  if (producer_ != nullptr && producer_->relu_fused_output()) return input;
  Tensor out = input.clone();
  out.apply_([](float v) { return v > 0.0f ? v : 0.0f; });
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  PFI_CHECK(cached_input_.defined()) << "ReLU::backward before forward";
  Tensor grad = grad_output.clone();
  auto g = grad.data();
  auto x = cached_input_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad;
}

// ----------------------------------------------------------- LeakyReLU ------

Tensor LeakyReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input.clone();
  const float s = slope_;
  out.apply_([s](float v) { return v > 0.0f ? v : s * v; });
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  PFI_CHECK(cached_input_.defined()) << "LeakyReLU::backward before forward";
  Tensor grad = grad_output.clone();
  auto g = grad.data();
  auto x = cached_input_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) g[i] *= slope_;
  }
  return grad;
}

// ------------------------------------------------------------- Sigmoid ------

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input.clone();
  out.apply_([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  PFI_CHECK(cached_output_.defined()) << "Sigmoid::backward before forward";
  Tensor grad = grad_output.clone();
  auto g = grad.data();
  auto y = cached_output_.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0f - y[i]);
  return grad;
}

// ------------------------------------------------------------- Softmax ------

Tensor Softmax::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 2) << "Softmax expects [N, C], got "
                              << input.to_string();
  Tensor out = input.clone();
  const auto n = input.size(0), c = input.size(1);
  auto d = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = d.data() + i * c;
    float mx = row[0];
    for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    // A fully non-finite row (e.g. after a NaN injection) sums to NaN; the
    // division then propagates NaN, which downstream Top-1 logic treats as
    // a corruption, matching the paper's observable-corruption accounting.
    for (std::int64_t j = 0; j < c; ++j) row[j] /= sum;
  }
  cached_output_ = out;
  return out;
}

Tensor Softmax::backward(const Tensor& grad_output) {
  PFI_CHECK(cached_output_.defined()) << "Softmax::backward before forward";
  const auto n = cached_output_.size(0), c = cached_output_.size(1);
  Tensor grad({n, c});
  auto y = cached_output_.data();
  auto g = grad_output.data();
  auto out = grad.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* yr = y.data() + i * c;
    const float* gr = g.data() + i * c;
    float dot = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) dot += yr[j] * gr[j];
    float* orow = out.data() + i * c;
    for (std::int64_t j = 0; j < c; ++j) orow[j] = yr[j] * (gr[j] - dot);
  }
  return grad;
}

// ----------------------------------------------------------- MaxPool2d ------

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride,
                     std::int64_t padding)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride),
      padding_(padding) {
  PFI_CHECK(kernel_ > 0 && stride_ > 0 && padding_ >= 0)
      << "MaxPool2d geometry invalid";
}

Tensor MaxPool2d::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 4) << "MaxPool2d expects NCHW, got "
                              << input.to_string();
  input_shape_ = input.shape();
  const auto n = input.size(0), c = input.size(1), h = input.size(2),
             w = input.size(3);
  const auto ho = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const auto wo = (w + 2 * padding_ - kernel_) / stride_ + 1;
  PFI_CHECK(ho > 0 && wo > 0) << "MaxPool2d output empty for "
                              << input.to_string();
  Tensor out({n, c, ho, wo});
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  const auto* in = input.data().data();
  auto* o = out.data().data();
  std::int64_t oi = 0;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* plane = in + (ni * c + ci) * h * w;
      const std::int64_t plane_base = (ni * c + ci) * h * w;
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t ih = oh * stride_ - padding_ + kh;
            if (ih < 0 || ih >= h) continue;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t iw = ow * stride_ - padding_ + kw;
              if (iw < 0 || iw >= w) continue;
              const float v = plane[ih * w + iw];
              // NaN-aware: a NaN in the window wins so that injected
              // non-finite values propagate instead of being silently
              // dropped by the comparison.
              if (v > best || best_idx < 0 || std::isnan(v)) {
                best = v;
                best_idx = plane_base + ih * w + iw;
              }
            }
          }
          o[oi] = best;
          argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  PFI_CHECK(!input_shape_.empty()) << "MaxPool2d::backward before forward";
  Tensor grad_input(input_shape_);
  auto gi = grad_input.data();
  auto go = grad_output.data();
  PFI_CHECK(go.size() == argmax_.size())
      << "MaxPool2d::backward grad shape " << grad_output.to_string();
  for (std::size_t i = 0; i < go.size(); ++i) {
    gi[static_cast<std::size_t>(argmax_[i])] += go[i];
  }
  return grad_input;
}

// ----------------------------------------------------------- AvgPool2d ------

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  PFI_CHECK(kernel_ > 0 && stride_ > 0) << "AvgPool2d geometry invalid";
}

Tensor AvgPool2d::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 4) << "AvgPool2d expects NCHW";
  input_shape_ = input.shape();
  const auto n = input.size(0), c = input.size(1), h = input.size(2),
             w = input.size(3);
  const auto ho = (h - kernel_) / stride_ + 1;
  const auto wo = (w - kernel_) / stride_ + 1;
  PFI_CHECK(ho > 0 && wo > 0) << "AvgPool2d output empty for "
                              << input.to_string();
  Tensor out({n, c, ho, wo});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const auto* in = input.data().data();
  auto* o = out.data().data();
  std::int64_t oi = 0;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* plane = in + (ni * c + ci) * h * w;
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow, ++oi) {
          float acc = 0.0f;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              acc += plane[(oh * stride_ + kh) * w + (ow * stride_ + kw)];
            }
          }
          o[oi] = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  PFI_CHECK(!input_shape_.empty()) << "AvgPool2d::backward before forward";
  Tensor grad_input(input_shape_);
  const auto n = input_shape_[0], c = input_shape_[1], h = input_shape_[2],
             w = input_shape_[3];
  const auto ho = grad_output.size(2), wo = grad_output.size(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const auto* go = grad_output.data().data();
  auto* gi = grad_input.data().data();
  std::int64_t oi = 0;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      float* plane = gi + (ni * c + ci) * h * w;
      for (std::int64_t oh = 0; oh < ho; ++oh) {
        for (std::int64_t ow = 0; ow < wo; ++ow, ++oi) {
          const float g = go[oi] * inv;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              plane[(oh * stride_ + kh) * w + (ow * stride_ + kw)] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

// ------------------------------------------------------- GlobalAvgPool ------

Tensor GlobalAvgPool::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 4) << "GlobalAvgPool expects NCHW";
  input_shape_ = input.shape();
  const auto n = input.size(0), c = input.size(1);
  const auto hw = input.size(2) * input.size(3);
  Tensor out({n, c, 1, 1});
  const auto* in = input.data().data();
  auto* o = out.data().data();
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t i = 0; i < n * c; ++i) {
    float acc = 0.0f;
    const float* plane = in + i * hw;
    for (std::int64_t j = 0; j < hw; ++j) acc += plane[j];
    o[i] = acc * inv;
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  PFI_CHECK(!input_shape_.empty()) << "GlobalAvgPool::backward before forward";
  Tensor grad_input(input_shape_);
  const auto n = input_shape_[0], c = input_shape_[1];
  const auto hw = input_shape_[2] * input_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  const auto* go = grad_output.data().data();
  auto* gi = grad_input.data().data();
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float g = go[i] * inv;
    float* plane = gi + i * hw;
    for (std::int64_t j = 0; j < hw; ++j) plane[j] = g;
  }
  return grad_input;
}

// ------------------------------------------------------------- Flatten ------

Tensor Flatten::forward(const Tensor& input) {
  PFI_CHECK(input.dim() >= 2) << "Flatten expects rank >= 2";
  input_shape_ = input.shape();
  return input.reshape({input.size(0), input.numel() / input.size(0)});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  PFI_CHECK(!input_shape_.empty()) << "Flatten::backward before forward";
  return grad_output.reshape(input_shape_);
}

// ------------------------------------------------------------- Dropout ------

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.split()) {
  PFI_CHECK(p >= 0.0f && p < 1.0f) << "Dropout p=" << p;
}

Tensor Dropout::forward(const Tensor& input) {
  if (!is_training() || p_ == 0.0f) {
    mask_ = Tensor();
    return input;
  }
  mask_ = Tensor(input.shape());
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  auto m = mask_.data();
  for (auto& v : m) v = rng_.bernoulli(keep) ? scale : 0.0f;
  return mul(input, mask_);
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!mask_.defined()) return grad_output;
  return mul(grad_output, mask_);
}

// ------------------------------------------------------ ChannelShuffle ------

ChannelShuffle::ChannelShuffle(std::int64_t groups) : groups_(groups) {
  PFI_CHECK(groups_ > 0) << "ChannelShuffle groups=" << groups_;
}

Tensor ChannelShuffle::shuffle(const Tensor& x, std::int64_t groups) const {
  const auto n = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
  PFI_CHECK(c % groups == 0)
      << "ChannelShuffle: channels " << c << " not divisible by " << groups;
  const auto per = c / groups;
  Tensor out(x.shape());
  const auto* in = x.data().data();
  auto* o = out.data().data();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t g = 0; g < groups; ++g) {
      for (std::int64_t i = 0; i < per; ++i) {
        const auto src = (ni * c + g * per + i) * hw;
        const auto dst = (ni * c + i * groups + g) * hw;
        std::copy(in + src, in + src + hw, o + dst);
      }
    }
  }
  return out;
}

Tensor ChannelShuffle::forward(const Tensor& input) {
  PFI_CHECK(input.dim() == 4) << "ChannelShuffle expects NCHW";
  return shuffle(input, groups_);
}

Tensor ChannelShuffle::backward(const Tensor& grad_output) {
  // The inverse of an (groups x per) interleave is a (per x groups) one.
  return shuffle(grad_output, grad_output.size(1) / groups_);
}

}  // namespace pfi::nn
