#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pfi::nn {

float CrossEntropyLoss::forward(const Tensor& logits,
                                std::span<const std::int64_t> targets) {
  PFI_CHECK(logits.dim() == 2) << "CrossEntropyLoss expects [N, C], got "
                               << logits.to_string();
  const auto n = logits.size(0), c = logits.size(1);
  PFI_CHECK(static_cast<std::int64_t>(targets.size()) == n)
      << "CrossEntropyLoss: " << targets.size() << " targets for batch " << n;

  probs_ = logits.clone();
  targets_.assign(targets.begin(), targets.end());
  auto d = probs_.data();
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto t = targets[static_cast<std::size_t>(i)];
    PFI_CHECK(t >= 0 && t < c) << "target " << t << " out of range [0, " << c
                               << ") at row " << i;
    float* row = d.data() + i * c;
    float mx = row[0];
    for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv;
    total += -std::log(std::max(1e-12f, row[t]));
  }
  return static_cast<float>(total / static_cast<double>(n));
}

Tensor CrossEntropyLoss::backward() const {
  PFI_CHECK(probs_.defined()) << "CrossEntropyLoss::backward before forward";
  const auto n = probs_.size(0), c = probs_.size(1);
  Tensor grad = probs_.clone();
  const float inv_n = 1.0f / static_cast<float>(n);
  auto g = grad.data();
  for (std::int64_t i = 0; i < n; ++i) {
    g[i * c + targets_[static_cast<std::size_t>(i)]] -= 1.0f;
    for (std::int64_t j = 0; j < c; ++j) g[i * c + j] *= inv_n;
  }
  return grad;
}

float MSELoss::forward(const Tensor& pred, const Tensor& target,
                       const Tensor* mask) {
  PFI_CHECK(pred.shape() == target.shape())
      << "MSELoss shape mismatch: " << pred.to_string() << " vs "
      << target.to_string();
  pred_ = pred;
  target_ = target;
  mask_ = mask ? *mask : Tensor();
  if (mask) {
    PFI_CHECK(mask->shape() == pred.shape())
        << "MSELoss mask shape " << mask->to_string();
  }
  auto p = pred.data();
  auto t = target.data();
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = p[i] - t[i];
    const double m = mask ? (*mask).data()[i] : 1.0;
    total += m * d * d;
  }
  return static_cast<float>(total / static_cast<double>(p.size()));
}

Tensor MSELoss::backward() const {
  PFI_CHECK(pred_.defined()) << "MSELoss::backward before forward";
  Tensor grad(pred_.shape());
  auto g = grad.data();
  auto p = pred_.data();
  auto t = target_.data();
  const float scale = 2.0f / static_cast<float>(pred_.numel());
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float m = mask_.defined() ? mask_.data()[i] : 1.0f;
    g[i] = scale * m * (p[i] - t[i]);
  }
  return grad;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  PFI_CHECK(logits.dim() == 2) << "argmax_rows expects [N, C]";
  const auto n = logits.size(0), c = logits.size(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  auto d = logits.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = d.data() + i * c;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

double top1_accuracy(const Tensor& logits,
                     std::span<const std::int64_t> targets) {
  const auto preds = argmax_rows(logits);
  PFI_CHECK(preds.size() == targets.size())
      << "top1_accuracy: " << targets.size() << " targets for batch "
      << preds.size();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == targets[i]) ++correct;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(preds.size());
}

bool in_top_k(const Tensor& logits, std::int64_t row, std::int64_t target,
              std::int64_t k) {
  PFI_CHECK(logits.dim() == 2) << "in_top_k expects [N, C]";
  const auto c = logits.size(1);
  PFI_CHECK(row >= 0 && row < logits.size(0)) << "in_top_k row " << row;
  PFI_CHECK(target >= 0 && target < c) << "in_top_k target " << target;
  const float* r = logits.data().data() + row * c;
  const float tv = r[target];
  std::int64_t strictly_greater = 0;
  for (std::int64_t j = 0; j < c; ++j) {
    if (r[j] > tv) ++strictly_greater;
  }
  return strictly_greater < k;
}

}  // namespace pfi::nn
