// Composite modules: Sequential chains, residual (additive skip) blocks, and
// channel-wise concatenation of parallel branches.
//
// Children are invoked through Module::operator() so that forward hooks on
// any descendant fire — this is what lets the fault injector instrument
// convolutions buried arbitrarily deep inside a model.
#pragma once

#include <memory>
#include <utility>

#include "nn/module.hpp"

namespace pfi::nn {

using ModulePtr = std::shared_ptr<Module>;

/// Run children one after another.
class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Append an already-constructed module; returns it for chaining.
  ModulePtr push(ModulePtr m);

  /// Construct a child in place.
  template <typename T, typename... Args>
  std::shared_ptr<T> emplace(Args&&... args) {
    auto m = std::make_shared<T>(std::forward<Args>(args)...);
    push(m);
    return m;
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::string kind() const override { return "Sequential"; }
  std::shared_ptr<Module> clone_structure() const override;
  std::vector<Module*> children() override;
  std::size_t size() const { return items_.size(); }
  Module& at(std::size_t i);

 private:
  std::vector<ModulePtr> items_;
};

/// y = main(x) + shortcut(x). The ResNet family's additive skip.
class Residual final : public Module {
 public:
  Residual(ModulePtr main, ModulePtr shortcut);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::string kind() const override { return "Residual"; }
  std::shared_ptr<Module> clone_structure() const override;
  std::vector<Module*> children() override;

 private:
  ModulePtr main_;
  ModulePtr shortcut_;
};

/// Run every branch on the same input and concatenate outputs along the
/// channel dimension (DenseNet dense connectivity, GoogLeNet inception).
class Concat final : public Module {
 public:
  explicit Concat(std::vector<ModulePtr> branches);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::string kind() const override { return "Concat"; }
  std::shared_ptr<Module> clone_structure() const override;
  std::vector<Module*> children() override;

 private:
  std::vector<ModulePtr> branches_;
  std::vector<std::int64_t> branch_channels_;  // from the last forward
};

/// Wire every adjacent (Conv2d|Linear, ReLU) pair inside the tree's
/// Sequential containers for fused rectification: the producer gets
/// set_fuse_relu(true) and the ReLU learns its producer. Wiring is
/// structural and cheap — whether a given forward actually fuses is decided
/// per call by the producer's relu_fused_output() gate (hooks, mode, native
/// path), and the model computes bit-identical outputs either way. Returns
/// the number of pairs wired.
int fuse_relu(Module& root);

/// Undo fuse_relu across the tree (producers unmarked, ReLUs detached).
/// Returns the number of pairs unwired.
int unfuse_relu(Module& root);

}  // namespace pfi::nn
