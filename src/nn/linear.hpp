// Fully-connected layer: y = x W^T + b.
//
// Forward and backward route through pfi::kernels (see kernels/kernels.hpp).
// The packed W^T panels the blocked GEMM consumes are cached and invalidated
// on weight mutation, mirroring Conv2d.
#pragma once

#include "kernels/kernels.hpp"
#include "kernels/lowp.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace pfi::nn {

class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  std::string kind() const override { return "Linear"; }
  std::shared_ptr<Module> clone_structure() const override {
    Rng rng(0);  // throwaway init; clone_model overwrites the parameters
    return std::make_shared<Linear>(in_, out_, rng, has_bias_);
  }
  std::vector<Parameter*> local_parameters() override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  bool has_bias() const { return has_bias_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  /// Drop the cached packed-weight panels (see Conv2d::invalidate_weight_packs).
  void invalidate_weight_packs() {
    packed_.invalidate();
    lowp_packed_.invalidate();
  }

  /// Native low-precision forward path (see Conv2d::set_native_dtype):
  /// kInt8 quantizes activations per-tensor against a per-out-feature
  /// quantized W^T; kFp16/kBf16 store both operands as 16-bit codes.
  /// `out_feature_scales` freezes the INT8 weight scales (empty = lazy).
  void set_native_dtype(kernels::LowPrec native,
                        std::vector<float> out_feature_scales = {});
  kernels::LowPrec native_dtype() const { return native_; }
  const std::vector<float>& native_scales() const { return native_scales_; }

  /// Freeze the INT8 activation scales (see Conv2d::set_static_act):
  /// `in_scale` quantizes the activation matrix without an absmax pass,
  /// `out_scale` is the grid the epilogue re-quantizes the output onto.
  void set_static_act(float in_scale, float out_scale);
  void clear_static_act() { static_act_ = false; }
  bool has_static_act() const { return static_act_; }
  float static_in_scale() const { return static_in_scale_; }
  float static_out_scale() const { return static_out_scale_; }

  /// ReLU fusion (see Conv2d::set_fuse_relu). Linear only fuses on the
  /// static-INT8 path — the fp32 epilogue set has no rectified kBiasCol,
  /// and classifier heads always carry bias.
  void set_fuse_relu(bool on) { fuse_relu_ = on; }
  bool fuse_relu() const { return fuse_relu_; }
  bool relu_fused_output() const override {
    return fuse_relu_ && !training_ && static_act_ &&
           native_ == kernels::LowPrec::kInt8;
  }

 private:
  Tensor forward_int8(const Tensor& input);
  Tensor forward_16(const Tensor& input);

  std::int64_t in_ = 0;
  std::int64_t out_ = 0;
  bool has_bias_ = true;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
  kernels::WeightPackCache packed_;  // packed panels of W^T
  kernels::LowPrec native_ = kernels::LowPrec::kNone;
  std::vector<float> native_scales_;  // frozen per-out-feature INT8 scales
  kernels::LowPrecPackCache lowp_packed_;
  // Static activation calibration + ReLU fusion state.
  bool static_act_ = false;
  float static_in_scale_ = 0.0f;
  float static_out_scale_ = 0.0f;
  bool fuse_relu_ = false;
};

}  // namespace pfi::nn
