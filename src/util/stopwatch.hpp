// Wall-clock timing used by the runtime-overhead evaluation (paper Fig. 3).
#pragma once

#include <chrono>

namespace pfi {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pfi
