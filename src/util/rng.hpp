// Deterministic, fast random number generation for the pfi library.
//
// Every campaign, dataset, and weight initializer takes an explicit Rng (or a
// seed) so that experiments are reproducible run-to-run. The generator is
// xoshiro256++, seeded via splitmix64 so that nearby integer seeds produce
// decorrelated streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

namespace pfi {

/// One splitmix64 step: a strong 64-bit mixer (also the seeding function of
/// the main generator below).
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Counter-based seed derivation: hash(seed, index[, stream]) -> child seed.
///
/// Campaigns use this to give every trial its own decorrelated RNG stream
/// instead of drawing sequentially from one generator. Because the child
/// seed depends only on (seed, index, stream) — never on execution order —
/// a campaign produces bit-identical results no matter how its trials are
/// sharded across worker threads.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index,
                                 std::uint64_t stream = 0) {
  std::uint64_t z = splitmix64(seed ^ splitmix64(index));
  if (stream != 0) z = splitmix64(z ^ splitmix64(stream));
  return z;
}

/// xoshiro256++ generator with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  std::uint64_t next_below(std::uint64_t n) {
    // Unbiased multiply-shift rejection sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Standard normal variate (Marsaglia polar method).
  float normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    float u, v, s;
    do {
      u = uniform(-1.0f, 1.0f);
      v = uniform(-1.0f, 1.0f);
      s = u * u + v * v;
    } while (s >= 1.0f || s == 0.0f);
    const float mul = std::sqrt(-2.0f * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Normal variate with given mean and standard deviation.
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return next_double() < p; }

  /// Derive an independent child generator (for parallel streams).
  Rng split() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  float spare_ = 0.0f;
  bool have_spare_ = false;
};

}  // namespace pfi
