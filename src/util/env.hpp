// Strict environment-variable knobs for the bench and example front ends.
//
// The bench binaries take their experiment parameters from PFI_* variables
// (PFI_TRIALS, PFI_SHARDS, PFI_BER, ...). Before this header each binary
// carried its own getenv + atoll/atof helper, which silently misread
// garbage: PFI_SHARDS=4x ran 4 shards (atoll stops at the 'x'),
// PFI_TRIALS=abc ran a 0-trial campaign. These helpers route every lookup
// through util/parse.hpp's strict parsers and FAIL LOUDLY — a malformed
// value throws pfi::Error naming the variable, never a silently-wrong
// experiment.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace pfi::util {

/// Integer env knob in [lo, hi]; `fallback` when the variable is unset.
/// Malformed or out-of-range values throw (strict parse, no atoll).
inline std::int64_t env_int(
    const char* name, std::int64_t fallback,
    std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
    std::int64_t hi = std::numeric_limits<std::int64_t>::max()) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_int(v, lo, hi);
  PFI_CHECK(parsed.has_value())
      << name << " expects an integer in [" << lo << ", " << hi << "], got '"
      << v << "'";
  return *parsed;
}

/// Unsigned integer env knob; `fallback` when unset. Strict: rejects signs,
/// junk, and overflow instead of wrapping.
inline std::uint64_t env_uint(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_uint(v);
  PFI_CHECK(parsed.has_value())
      << name << " expects an unsigned integer, got '" << v << "'";
  return *parsed;
}

/// Floating-point env knob in [lo, hi]; `fallback` when unset. Strict:
/// trailing junk, NaN/Inf, and out-of-range values throw (no atof).
inline double env_double(const char* name, double fallback,
                         double lo = std::numeric_limits<double>::lowest(),
                         double hi = std::numeric_limits<double>::max()) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_double(v, lo, hi);
  PFI_CHECK(parsed.has_value())
      << name << " expects a finite number in [" << lo << ", " << hi
      << "], got '" << v << "'";
  return *parsed;
}

/// String env knob; `fallback` when unset (no validation to apply).
inline std::string env_str(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string(fallback);
}

}  // namespace pfi::util
