#include "util/thread_pool.hpp"

#include <atomic>

#include "util/error.hpp"

namespace pfi::util {

ThreadPool::ThreadPool(std::size_t threads) {
  PFI_CHECK(threads >= 1) << "ThreadPool needs at least one worker";
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;

  // Per-batch completion state, shared by value so stray tasks can never
  // outlive the stack frame (they cannot here — we block — but keeping the
  // state on the heap makes the invariant local and TSan-obvious).
  struct Batch {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    PFI_CHECK(!stopping_) << "ThreadPool::run after shutdown";
    for (std::size_t i = 0; i < tasks; ++i) {
      queue_.emplace_back([batch, &fn, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> l(batch->m);
          if (!batch->error) batch->error = std::current_exception();
        }
        std::lock_guard<std::mutex> l(batch->m);
        if (--batch->remaining == 0) batch->done.notify_all();
      });
    }
  }
  work_ready_.notify_all();

  std::unique_lock<std::mutex> lock(batch->m);
  batch->done.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace pfi::util
