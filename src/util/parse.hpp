// Strict integer parsing for user-facing front ends (pfi_cli, bench env
// knobs). Unlike atoll/strtoull these reject garbage, trailing junk, empty
// strings, and out-of-range values instead of silently producing 0 — the
// regression behind "--trials abc" running a 0-trial campaign.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>

namespace pfi::util {

/// Parse a base-10 signed integer in [lo, hi]. Returns nullopt on empty
/// input, non-numeric text, trailing junk, or overflow/out-of-range.
inline std::optional<std::int64_t> parse_int(
    const std::string& text,
    std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
    std::int64_t hi = std::numeric_limits<std::int64_t>::max()) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  const auto value = static_cast<std::int64_t>(v);
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

/// Parse a finite decimal floating-point value in [lo, hi]. Returns nullopt
/// on empty input, non-numeric text, trailing junk, overflow, NaN/Inf
/// spellings, or out-of-range values — the bench-knob regression where
/// PFI_BER=1e-5x silently read as 1e-5 (or 0) with atof.
inline std::optional<double> parse_double(
    const std::string& text,
    double lo = std::numeric_limits<double>::lowest(),
    double hi = std::numeric_limits<double>::max()) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  if (!(v >= lo && v <= hi)) return std::nullopt;  // also rejects NaN
  return v;
}

/// Parse a base-10 unsigned 64-bit integer. Rejects a leading '-' (strtoull
/// would silently wrap it) along with everything parse_int rejects.
inline std::optional<std::uint64_t> parse_uint(const std::string& text) {
  if (text.empty()) return std::nullopt;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace pfi::util
