// Error-handling primitives for the pfi library.
//
// All user-facing precondition failures throw pfi::Error with a message that
// names the failing condition and its context. The paper (Sec. III-B) calls
// out "detailed debugging messages to the end user" as a design goal of the
// profiling step; PFI_CHECK is how every legality check reports.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pfi {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Accumulates a message via operator<< and throws on destruction-by-value.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* cond, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: (" << cond << ") ";
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] void raise() const { throw Error(stream_.str()); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace pfi

/// PFI_CHECK(cond) << "context"; throws pfi::Error when cond is false.
#define PFI_CHECK(cond)                                                  \
  if (cond) {                                                            \
  } else                                                                 \
    ::pfi::detail::ThrowHelper{} =                                       \
        ::pfi::detail::CheckMessageBuilder(#cond, __FILE__, __LINE__)

namespace pfi::detail {

/// Terminal of the PFI_CHECK macro chain: assigning a builder throws.
struct ThrowHelper {
  [[noreturn]] void operator=(const CheckMessageBuilder& b) const { b.raise(); }
};

}  // namespace pfi::detail
