// Bit-level manipulation of numeric values, the substrate of the paper's
// "single bit flip" error models (Sec. III-B step 3 and Sec. IV-A).
//
// Two domains are supported:
//   * IEEE-754 binary32: flip any of the 32 bits of a float in place.
//   * Symmetric INT8:    flip any of the 8 bits of a quantized activation.
#pragma once

#include <bit>
#include <cstdint>

#include "util/error.hpp"

namespace pfi {

/// Number of bits in an IEEE-754 binary32 value.
inline constexpr int kFloatBits = 32;
/// Number of bits in an INT8 quantized value.
inline constexpr int kInt8Bits = 8;

/// Reinterpret a float as its raw bit pattern.
inline std::uint32_t float_to_bits(float v) {
  return std::bit_cast<std::uint32_t>(v);
}

/// Reinterpret a 32-bit pattern as a float.
inline float bits_to_float(std::uint32_t b) { return std::bit_cast<float>(b); }

/// Flip bit `bit` (0 = LSB of mantissa, 31 = sign) of a float.
inline float flip_float_bit(float v, int bit) {
  PFI_CHECK(bit >= 0 && bit < kFloatBits) << "float bit index " << bit;
  return bits_to_float(float_to_bits(v) ^ (1u << bit));
}

/// Flip bit `bit` (0 = LSB, 7 = sign) of a two's-complement int8.
inline std::int8_t flip_int8_bit(std::int8_t v, int bit) {
  PFI_CHECK(bit >= 0 && bit < kInt8Bits) << "int8 bit index " << bit;
  return static_cast<std::int8_t>(
      static_cast<std::uint8_t>(v) ^ static_cast<std::uint8_t>(1u << bit));
}

/// True when the float is NaN or infinite (a common outcome of exponent-bit
/// flips, and an important corruption class for resiliency studies).
inline bool is_non_finite(float v) {
  const std::uint32_t b = float_to_bits(v);
  return (b & 0x7f800000u) == 0x7f800000u;
}

/// Round a float to the nearest IEEE-754 binary16 value (kept as float).
/// Used to emulate the paper's FP16 model datatype option (Sec. III-B step 2)
/// without carrying a separate half-precision tensor type.
inline float round_to_fp16(float v) {
  return static_cast<float>(static_cast<_Float16>(v));
}

/// Number of bits in an IEEE-754 binary16 value.
inline constexpr int kHalfBits = 16;

/// Flip bit `bit` (0 = LSB of mantissa, 15 = sign) of a value treated as
/// IEEE-754 binary16; returns the corrupted value widened back to float.
inline float flip_fp16_bit(float v, int bit) {
  PFI_CHECK(bit >= 0 && bit < kHalfBits) << "fp16 bit index " << bit;
  const auto h = static_cast<_Float16>(v);
  const auto raw = std::bit_cast<std::uint16_t>(h);
  return static_cast<float>(
      std::bit_cast<_Float16>(static_cast<std::uint16_t>(raw ^ (1u << bit))));
}

}  // namespace pfi
