// Bit-level manipulation of numeric values, the substrate of the paper's
// "single bit flip" error models (Sec. III-B step 3 and Sec. IV-A).
//
// Four domains are supported:
//   * IEEE-754 binary32:  flip any of the 32 bits of a float in place.
//   * IEEE-754 binary16:  software narrow/widen + bit flips (fp16 codes).
//   * bfloat16:           truncated-binary32 narrow/widen + bit flips.
//   * Symmetric INT8:     flip any of the 8 bits of a quantized activation.
//
// The 16-bit conversions are SOFTWARE implementations on raw bit patterns,
// not hardware casts: a hardware `_Float16` cast quiets signalling NaNs and
// mangles NaN payloads, which destroys single-bit attribution for
// exponent-bit flips on non-finite values (the flip is no longer the only
// differing bit after a round trip). These routines preserve payloads
// exactly; for non-NaN values the narrowing is bit-identical to the
// hardware's round-to-nearest-even.
#pragma once

#include <bit>
#include <cstdint>

#include "util/error.hpp"

namespace pfi {

/// Number of bits in an IEEE-754 binary32 value.
inline constexpr int kFloatBits = 32;
/// Number of bits in an INT8 quantized value.
inline constexpr int kInt8Bits = 8;

/// Reinterpret a float as its raw bit pattern.
inline std::uint32_t float_to_bits(float v) {
  return std::bit_cast<std::uint32_t>(v);
}

/// Reinterpret a 32-bit pattern as a float.
inline float bits_to_float(std::uint32_t b) { return std::bit_cast<float>(b); }

/// Flip bit `bit` (0 = LSB of mantissa, 31 = sign) of a float.
inline float flip_float_bit(float v, int bit) {
  PFI_CHECK(bit >= 0 && bit < kFloatBits) << "float bit index " << bit;
  return bits_to_float(float_to_bits(v) ^ (1u << bit));
}

/// Flip bit `bit` (0 = LSB, 7 = sign) of a two's-complement int8.
inline std::int8_t flip_int8_bit(std::int8_t v, int bit) {
  PFI_CHECK(bit >= 0 && bit < kInt8Bits) << "int8 bit index " << bit;
  return static_cast<std::int8_t>(
      static_cast<std::uint8_t>(v) ^ static_cast<std::uint8_t>(1u << bit));
}

/// True when the float is NaN or infinite (a common outcome of exponent-bit
/// flips, and an important corruption class for resiliency studies).
inline bool is_non_finite(float v) {
  const std::uint32_t b = float_to_bits(v);
  return (b & 0x7f800000u) == 0x7f800000u;
}

/// Round a float to the nearest IEEE-754 binary16 value (kept as float).
/// Used to emulate the paper's FP16 model datatype option (Sec. III-B step 2)
/// without carrying a separate half-precision tensor type.
inline float round_to_fp16(float v) {
  return static_cast<float>(static_cast<_Float16>(v));
}

/// Number of bits in an IEEE-754 binary16 value.
inline constexpr int kHalfBits = 16;

/// Number of bits in a bfloat16 value.
inline constexpr int kBf16Bits = 16;

/// Narrow a float to IEEE-754 binary16 bits with round-to-nearest-even.
/// NaN payloads are truncated (top 10 payload bits kept, including the
/// quiet bit) and forced nonzero so a NaN never narrows to an infinity;
/// signalling NaNs are NOT quieted.
inline std::uint16_t f16_bits_from_float(float v) {
  const std::uint32_t b = float_to_bits(v);
  const auto sign = static_cast<std::uint16_t>((b >> 16) & 0x8000u);
  const std::uint32_t mag = b & 0x7fffffffu;
  if (mag >= 0x7f800000u) {
    if (mag == 0x7f800000u) return sign | 0x7c00u;  // infinity
    auto mant = static_cast<std::uint16_t>((mag >> 13) & 0x3ffu);
    if (mant == 0) mant = 1;  // low-payload NaN must stay a NaN
    return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
  }
  const int e = static_cast<int>(mag >> 23) - 127 + 15;
  std::uint32_t mant = mag & 0x7fffffu;
  if (e >= 31) return sign | 0x7c00u;  // overflow -> infinity
  if (e <= 0) {
    // fp16-subnormal range. Magnitudes below half the smallest subnormal
    // (2^-25) round to zero; a shift of up to 24 drops the rest.
    if (e < -10) return sign;
    mant |= 0x800000u;  // make the implicit bit explicit
    const int s = 13 + (1 - e);
    const std::uint32_t kept = mant >> s;
    const std::uint32_t rem = mant & ((1u << s) - 1u);
    const std::uint32_t half = 1u << (s - 1);
    std::uint32_t r = kept;
    if (rem > half || (rem == half && (kept & 1u) != 0)) ++r;
    return static_cast<std::uint16_t>(sign | r);  // carry reaches exp=1
  }
  std::uint32_t kept =
      (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (kept & 1u) != 0)) {
    ++kept;  // mantissa carry; may roll into exp=31 = the correct infinity
  }
  return static_cast<std::uint16_t>(sign | kept);
}

/// Widen IEEE-754 binary16 bits to float, exactly. NaN payloads are shifted
/// into the high mantissa bits unchanged — signalling NaNs stay signalling.
inline float float_from_f16_bits(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  std::uint32_t e = (h >> 10) & 0x1fu;
  std::uint32_t m = h & 0x3ffu;
  if (e == 31) return bits_to_float(sign | 0x7f800000u | (m << 13));
  if (e == 0) {
    if (m == 0) return bits_to_float(sign);  // +/- zero
    int shift = 0;
    while ((m & 0x400u) == 0) {  // normalize the subnormal
      m <<= 1;
      ++shift;
    }
    m &= 0x3ffu;
    e = 127 - 15 + 1 - static_cast<std::uint32_t>(shift);
    return bits_to_float(sign | (e << 23) | (m << 13));
  }
  return bits_to_float(sign | ((e - 15 + 127) << 23) | (m << 13));
}

/// Narrow a float to bfloat16 bits (truncated binary32) with
/// round-to-nearest-even. NaN payloads are truncated to the top 7 bits and
/// forced nonzero; signalling NaNs are NOT quieted.
inline std::uint16_t bf16_bits_from_float(float v) {
  std::uint32_t b = float_to_bits(v);
  if ((b & 0x7f800000u) == 0x7f800000u && (b & 0x7fffffu) != 0) {
    auto hi = static_cast<std::uint16_t>(b >> 16);
    if ((hi & 0x7fu) == 0) hi |= 1;  // low-payload NaN must stay a NaN
    return hi;
  }
  const std::uint32_t lsb = (b >> 16) & 1u;
  b += 0x7fffu + lsb;  // RNE bias; overflow rolls into the correct infinity
  return static_cast<std::uint16_t>(b >> 16);
}

/// Widen bfloat16 bits to float (exact by construction).
inline float float_from_bf16_bits(std::uint16_t h) {
  return bits_to_float(static_cast<std::uint32_t>(h) << 16);
}

/// Round a float to the nearest bfloat16 value (kept as float).
inline float round_to_bf16(float v) {
  return float_from_bf16_bits(bf16_bits_from_float(v));
}

/// Flip bit `bit` (0 = LSB of mantissa, 15 = sign) of a value treated as
/// IEEE-754 binary16; returns the corrupted value widened back to float.
/// Software conversions keep the flipped bit the ONLY differing bit even
/// for NaN payloads (the old hardware-cast version quieted sNaNs).
inline float flip_fp16_bit(float v, int bit) {
  PFI_CHECK(bit >= 0 && bit < kHalfBits) << "fp16 bit index " << bit;
  return float_from_f16_bits(
      static_cast<std::uint16_t>(f16_bits_from_float(v) ^ (1u << bit)));
}

/// Flip bit `bit` (0 = LSB of mantissa, 15 = sign) of a value treated as
/// bfloat16; returns the corrupted value widened back to float.
inline float flip_bf16_bit(float v, int bit) {
  PFI_CHECK(bit >= 0 && bit < kBf16Bits) << "bf16 bit index " << bit;
  return float_from_bf16_bits(
      static_cast<std::uint16_t>(bf16_bits_from_float(v) ^ (1u << bit)));
}

}  // namespace pfi
