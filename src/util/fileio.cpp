#include "util/fileio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace pfi::util {

namespace {

/// Write the full buffer, retrying short writes and EINTR.
void write_all(int fd, std::string_view bytes, const std::string& path) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      PFI_CHECK(false) << "write to '" << path
                       << "' failed: " << std::strerror(err);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    PFI_CHECK(false) << "fsync of '" << what
                     << "' failed: " << std::strerror(err);
  }
}

/// fsync the directory containing `path` so a rename/creation in it is
/// durable. Best effort on filesystems that reject directory fsync.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  PFI_CHECK(fd >= 0) << "cannot create '" << tmp
                     << "': " << std::strerror(errno);
  write_all(fd, bytes, tmp);
  fsync_or_throw(fd, tmp);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    PFI_CHECK(false) << "rename '" << tmp << "' -> '" << path
                     << "' failed: " << std::strerror(err);
  }
  fsync_parent_dir(path);
}

std::uint64_t append_file_sync(const std::string& path,
                               std::string_view bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  PFI_CHECK(fd >= 0) << "cannot open '" << path
                     << "' for append: " << std::strerror(errno);
  write_all(fd, bytes, path);
  fsync_or_throw(fd, path);
  const off_t size = ::lseek(fd, 0, SEEK_END);
  ::close(fd);
  PFI_CHECK(size >= 0) << "lseek on '" << path
                       << "' failed: " << std::strerror(errno);
  return static_cast<std::uint64_t>(size);
}

void truncate_file(const std::string& path, std::uint64_t size) {
  PFI_CHECK(::truncate(path.c_str(), static_cast<off_t>(size)) == 0)
      << "truncate '" << path << "' to " << size
      << " bytes failed: " << std::strerror(errno);
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::int64_t file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_size);
}

std::string read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  PFI_CHECK(fd >= 0) << "cannot open '" << path
                     << "': " << std::strerror(errno);
  std::string out;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      PFI_CHECK(false) << "read of '" << path
                       << "' failed: " << std::strerror(err);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void ensure_dir(const std::string& path) {
  PFI_CHECK(!path.empty()) << "ensure_dir: empty path";
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/': root always exists
    if (::mkdir(prefix.c_str(), 0755) == 0) continue;
    const int err = errno;
    struct stat st{};
    PFI_CHECK(err == EEXIST && ::stat(prefix.c_str(), &st) == 0 &&
              S_ISDIR(st.st_mode))
        << "cannot create directory '" << prefix
        << "': " << std::strerror(err);
  }
}

}  // namespace pfi::util
