// Text-encoding helpers shared by the report writers: CSV field quoting
// (RFC 4180), JSON string escaping, and exact float <-> hex-bits round
// trips for the trace subsystem's bit-faithful serialization.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace pfi::util {

/// Quote a CSV field per RFC 4180: fields containing a comma, double quote,
/// CR, or LF are wrapped in double quotes with embedded quotes doubled.
/// Clean fields pass through unchanged.
inline std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Escape a string for embedding inside a JSON string literal (without the
/// surrounding quotes): backslash, double quote, and control characters.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Undo json_escape (\", \\, \n, \r, \t, \uXXXX for XXXX < 0x80).
inline std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    PFI_CHECK(i + 1 < s.size()) << "dangling escape in JSON string '" << s
                                << "'";
    const char e = s[++i];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        PFI_CHECK(i + 4 < s.size()) << "truncated \\u escape in '" << s << "'";
        const unsigned long code = std::stoul(s.substr(i + 1, 4), nullptr, 16);
        PFI_CHECK(code < 0x80) << "non-ASCII \\u escape " << code;
        out.push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default:
        PFI_CHECK(false) << "unknown escape '\\" << e << "' in '" << s << "'";
    }
  }
  return out;
}

/// FNV-1a 64-bit over a byte string. The repo's one content hash: campaign
/// config fingerprints (core/checkpoint.cpp) and shard attempt-log digests
/// (core/shard.cpp) both chain through it, so two artifacts agree on
/// identity iff their bytes agree.
inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t h = 14695981039346656037ull) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Exact 8-hex-digit encoding of a float's IEEE-754 bit pattern. The trace
/// serialization round-trips values through this, never through decimal,
/// so replay is bit-faithful even for NaN/Inf payloads.
inline std::string float_bits_hex(float v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", std::bit_cast<std::uint32_t>(v));
  return buf;
}

/// Inverse of float_bits_hex.
inline float float_from_bits_hex(const std::string& hex) {
  PFI_CHECK(hex.size() == 8) << "float bits hex '" << hex
                             << "' must be 8 digits";
  return std::bit_cast<float>(
      static_cast<std::uint32_t>(std::stoul(hex, nullptr, 16)));
}

}  // namespace pfi::util
