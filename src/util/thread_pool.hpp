// A small fixed-size thread pool for campaign-level parallelism.
//
// Campaigns are embarrassingly parallel (thousands of independent
// golden/faulty inference pairs), so the pool only needs two operations:
// submit a task, and run an indexed batch of tasks to completion. Workers
// are started once and reused across waves, so per-wave dispatch cost is a
// mutex round-trip, not a thread spawn.
//
// Exceptions thrown by tasks are captured and rethrown on the caller's
// thread from run() (first one wins), so PFI_CHECK failures inside workers
// surface with their message intact.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pfi::util {

class ThreadPool {
 public:
  /// Starts `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(0), fn(1), ..., fn(tasks - 1) on the pool and block until every
  /// call has returned. Rethrows the first task exception, after all tasks
  /// of the batch have finished.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0 when unknown).
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace pfi::util
