// Statistics helpers for fault-injection campaigns.
//
// The paper reports "99% confidence interval error bars of <0.2%" for its
// Fig. 4 campaigns (Sec. IV-A); CampaignStats computes the matching Wilson
// score interval so benches can report the same error bars.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace pfi {

/// Normal quantile for a 99% two-sided confidence interval (the level the
/// paper quotes for its Fig. 4 error bars).
inline constexpr double kZ99 = 2.5758293035489004;

/// A binomial proportion with its Wilson score confidence interval.
struct Proportion {
  double value = 0.0;  ///< point estimate k/n
  double lo = 0.0;     ///< lower bound of the CI
  double hi = 0.0;     ///< upper bound of the CI

  /// Half-width of the interval (the "error bar" the paper quotes).
  double half_width() const { return (hi - lo) / 2.0; }
};

/// Wilson score interval for k successes in n trials at confidence given by
/// normal quantile z (z = 2.5758 for 99%, 1.96 for 95%).
inline Proportion wilson_interval(std::uint64_t k, std::uint64_t n,
                                  double z = kZ99) {
  PFI_CHECK(n > 0) << "wilson_interval requires n > 0";
  PFI_CHECK(k <= n) << "successes " << k << " exceed trials " << n;
  const double p = static_cast<double>(k) / static_cast<double>(n);
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  Proportion out;
  out.value = p;
  // Pin the exact edges: zero successes prove nothing below 0 and k == n
  // nothing above 1, but center -/+ margin leaves ~1e-17 floating-point
  // residue there, which breaks lo == 0 / hi == 1 comparisons downstream.
  out.lo = k == 0 ? 0.0 : std::max(0.0, center - margin);
  out.hi = k == n ? 1.0 : std::min(1.0, center + margin);
  return out;
}

/// One stratum's evidence for the stratified estimator below: `weight` is
/// the stratum's probability mass under the uniform sampler (weights over a
/// partition sum to 1), `corruptions`/`trials` its binomial counts.
struct StratumEstimate {
  double weight = 0.0;
  std::uint64_t corruptions = 0;
  std::uint64_t trials = 0;
};

/// Stratified estimate of a proportion over a partition of the fault space:
/// point estimate sum_s w_s * k_s/n_s, with a pooled confidence interval
/// built from the per-stratum Wilson intervals (strata are independent
/// binomials). Two regimes are pooled differently:
///
/// * Strata with OBSERVED CORRUPTIONS (k > 0) combine in quadrature, each
///   contributing the LARGER half of its Wilson interval, max(value - lo,
///   hi - value), on BOTH sides. Using the raw asymmetric halves
///   under-covers: small-n binomials are skewed, so several strata
///   overshooting simultaneously (each k = 1 where E[k] < 1) is common,
///   and their small lower margins shrink further in quadrature — realized
///   coverage drops well below nominal (pinned by test_sampling.cpp's
///   exhaustive-truth coverage harness).
///
/// * ALL-CLEAR strata (k = 0) pool jointly instead of per-stratum: the
///   exact upper confidence bound for sum_{k=0} w_s p_s given zero hits in
///   every one is max_s w_s * (1 - alpha^(1/n_s)) — the joint constraint
///   prod (1-p_s)^{n_s} >= alpha is convex, so the weighted sum is
///   maximized by spending the whole tail budget on one stratum. We use
///   the slightly wider max_s w_s * wilson_hi(0, n_s) for consistency with
///   the rest of the file. This term adds LINEARLY to the upper bound and
///   does not appear in the lower bound at all (an all-clear stratum
///   contributes 0 to the point estimate and its true mean cannot sit
///   below that). Pooling k = 0 strata per-stratum in quadrature instead
///   would charge each one its own z^2/n penalty — a sqrt(S) inflation
///   that makes a stratified all-clear interval far wider than the uniform
///   Wilson interval on the same budget, which is statistically backwards:
///   proportionally-allocated all-clear strata ARE a uniform sample of
///   their union.
///
/// A stratum with ZERO sampled trials carries no evidence at all, so it
/// degenerates to the vacuous bound via the same max term (wilson_hi(0, 0)
/// is taken as 1): a lone unsampled stratum yields exactly [0, 1],
/// mirroring CampaignResult::corruption_probability()'s trials == 0
/// handling.
///
/// The adaptive stopping rule (core/sampling.cpp ci_closed) budgets these
/// same two terms, so "every stratum closed" implies a pooled half-width
/// at or under the configured target.
inline Proportion stratified_interval(std::span<const StratumEstimate> strata,
                                      double z = kZ99) {
  PFI_CHECK(!strata.empty()) << "stratified_interval over zero strata";
  double value = 0.0;
  double var = 0.0;          // quadrature over corrupting strata
  double clear_margin = 0.0; // joint bound over all-clear strata
  for (const StratumEstimate& s : strata) {
    PFI_CHECK(s.weight >= 0.0) << "stratum weight " << s.weight;
    if (s.corruptions == 0) {
      const double hi = s.trials == 0 ? 1.0 : wilson_interval(0, s.trials, z).hi;
      clear_margin = std::max(clear_margin, s.weight * hi);
      continue;
    }
    const Proportion p = wilson_interval(s.corruptions, s.trials, z);
    value += s.weight * p.value;
    const double margin = std::max(p.value - p.lo, p.hi - p.value);
    var += s.weight * s.weight * margin * margin;
  }
  Proportion out;
  out.value = value;
  out.lo = std::max(0.0, value - std::sqrt(var));
  out.hi = std::min(1.0, value + std::sqrt(var) + clear_margin);
  return out;
}

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); sorts a copy.
inline double percentile(std::vector<double> xs, double q) {
  PFI_CHECK(!xs.empty()) << "percentile of empty sample";
  PFI_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace pfi
