// Statistics helpers for fault-injection campaigns.
//
// The paper reports "99% confidence interval error bars of <0.2%" for its
// Fig. 4 campaigns (Sec. IV-A); CampaignStats computes the matching Wilson
// score interval so benches can report the same error bars.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace pfi {

/// A binomial proportion with its Wilson score confidence interval.
struct Proportion {
  double value = 0.0;  ///< point estimate k/n
  double lo = 0.0;     ///< lower bound of the CI
  double hi = 0.0;     ///< upper bound of the CI

  /// Half-width of the interval (the "error bar" the paper quotes).
  double half_width() const { return (hi - lo) / 2.0; }
};

/// Wilson score interval for k successes in n trials at confidence given by
/// normal quantile z (z = 2.5758 for 99%, 1.96 for 95%).
inline Proportion wilson_interval(std::uint64_t k, std::uint64_t n,
                                  double z = 2.5758293035489004) {
  PFI_CHECK(n > 0) << "wilson_interval requires n > 0";
  PFI_CHECK(k <= n) << "successes " << k << " exceed trials " << n;
  const double p = static_cast<double>(k) / static_cast<double>(n);
  const double nn = static_cast<double>(n);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  Proportion out;
  out.value = p;
  out.lo = std::max(0.0, center - margin);
  out.hi = std::min(1.0, center + margin);
  return out;
}

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation); sorts a copy.
inline double percentile(std::vector<double> xs, double q) {
  PFI_CHECK(!xs.empty()) << "percentile of empty sample";
  PFI_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace pfi
