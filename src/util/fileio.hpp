// Durable file primitives for the checkpoint/resume subsystem.
//
// A campaign checkpoint must never be observable half-written: a crash
// during a save has to leave either the previous checkpoint or the new one,
// byte-complete, on disk. atomic_write_file provides that via the classic
// POSIX recipe — write to a sibling temp file, fsync the data, rename over
// the target, fsync the directory so the rename itself is durable.
//
// The streaming trace uses append_file_sync instead: appends are not atomic
// (a kill can leave a torn final line), but every committed prefix is
// durable, and the checkpoint records the committed byte count so resume
// can truncate any torn tail (truncate_file).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pfi::util {

/// Atomically replace `path` with `bytes`: write `path`.tmp, fsync, rename
/// onto `path`, fsync the parent directory. After a crash at any point the
/// file holds either its previous contents or `bytes`, never a mix.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// Append `bytes` to `path` (creating it if missing) and fsync, so the new
/// tail is on disk before the caller proceeds. Returns the file size after
/// the append.
std::uint64_t append_file_sync(const std::string& path, std::string_view bytes);

/// Truncate `path` to exactly `size` bytes and fsync. Used on resume to
/// drop a torn trace tail back to the last checkpointed byte count.
void truncate_file(const std::string& path, std::uint64_t size);

/// True when `path` exists (any file type).
bool file_exists(const std::string& path);

/// Size of `path` in bytes, or -1 when it does not exist.
std::int64_t file_size(const std::string& path);

/// Whole-file read (binary). Throws pfi::Error when the file is unreadable.
std::string read_file(const std::string& path);

/// Create `path` as a directory, including missing parents (mkdir -p). A
/// path that already exists as a directory is fine; anything else throws.
/// Shard runs use this so `--shard-dir out/run1` works without ceremony.
void ensure_dir(const std::string& path);

}  // namespace pfi::util
