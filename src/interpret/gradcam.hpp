// Grad-CAM (Selvaraju et al. [39]) — the visualization technique the paper
// pairs with fault injection in its interpretability use case (Sec. IV-E):
// inject an egregious value into a feature map and observe whether the
// class-evidence heatmap (and the Top-1 class) moves.
//
// Implementation: a forward hook on the target convolution captures the
// activations A, a backward hook captures dScore/dA; the heatmap is
// ReLU(sum_k alpha_k A_k) with alpha_k the spatially-pooled gradient of
// channel k, upsampled implicitly at the target layer's resolution and
// normalized to [0, 1].
#pragma once

#include <memory>
#include <string>

#include "nn/nn.hpp"

namespace pfi::interpret {

/// Output of one Grad-CAM computation.
struct GradCamResult {
  Tensor heatmap;      ///< [H, W] at the target layer's resolution, in [0,1]
  Tensor activations;  ///< [C, H, W] captured at the target layer
  Tensor gradients;    ///< [C, H, W] dScore/dA at the target layer
  std::vector<float> fmap_weights;  ///< alpha_k per feature map
  std::int64_t top1 = 0;            ///< the model's Top-1 class
  float top1_score = 0.0f;          ///< its logit
};

/// Grad-CAM engine bound to one model and one target layer.
class GradCam {
 public:
  /// `target_layer` must be a module inside `model` producing a 4-D fmap.
  GradCam(std::shared_ptr<nn::Module> model, nn::Module& target_layer);
  ~GradCam();

  GradCam(const GradCam&) = delete;
  GradCam& operator=(const GradCam&) = delete;

  /// Compute the heatmap for a single image [1, C, H, W]. `target_class`
  /// -1 explains the model's own Top-1 prediction.
  GradCamResult compute(const Tensor& image, std::int64_t target_class = -1);

  /// Aggregate per-feature-map sensitivity: sum over ALL classes of the
  /// mean |d logit_c / dA_k|. A fmap with near-zero gradient for the
  /// predicted class can still be highly sensitive through other classes'
  /// logits (and flip the Top-1 when perturbed), so injection studies
  /// should rank by this, not by the single-class Grad-CAM gradient.
  std::vector<float> channel_sensitivity(const Tensor& image);

 private:
  std::shared_ptr<nn::Module> model_;
  nn::Module& target_;
  nn::HookHandle fwd_handle_;
  nn::HookHandle bwd_handle_;
  Tensor captured_activations_;
  Tensor captured_gradients_;
};

/// Mean absolute difference between two same-shaped heatmaps (0 = identical).
double heatmap_distance(const Tensor& a, const Tensor& b);

/// Index of the feature map with the largest / smallest mean |gradient|
/// w.r.t. the explained class (the raw Grad-CAM gradient ranking).
std::int64_t most_sensitive_fmap(const GradCamResult& r);
std::int64_t least_sensitive_fmap(const GradCamResult& r);

/// Extremes of an aggregate sensitivity vector (channel_sensitivity()).
std::int64_t argmax_sensitivity(const std::vector<float>& s);
std::int64_t argmin_sensitivity(const std::vector<float>& s);

/// Write a heatmap as a binary PGM image (values scaled to 0..255).
void write_pgm(const Tensor& heatmap, const std::string& path);

/// Render a heatmap as coarse ASCII art (for terminal demos).
std::string render_ascii(const Tensor& heatmap);

}  // namespace pfi::interpret
