#include "interpret/gradcam.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

namespace pfi::interpret {

GradCam::GradCam(std::shared_ptr<nn::Module> model, nn::Module& target_layer)
    : model_(std::move(model)), target_(target_layer) {
  PFI_CHECK(model_ != nullptr) << "GradCam needs a model";
  bool found = false;
  for (nn::Module* m : model_->modules()) found |= m == &target_;
  PFI_CHECK(found) << "target layer is not part of the model";

  fwd_handle_ = target_.register_forward_hook(
      [this](nn::Module&, const Tensor&, Tensor& out) {
        captured_activations_ = out.clone();
      });
  bwd_handle_ = target_.register_backward_hook(
      [this](nn::Module&, Tensor& grad) {
        captured_gradients_ = grad.clone();
      });
}

GradCam::~GradCam() {
  target_.remove_hook(fwd_handle_);
  target_.remove_hook(bwd_handle_);
}

GradCamResult GradCam::compute(const Tensor& image,
                               std::int64_t target_class) {
  PFI_CHECK(image.dim() == 4 && image.size(0) == 1)
      << "GradCam::compute expects a single image [1, C, H, W], got "
      << image.to_string();
  captured_activations_ = Tensor();
  captured_gradients_ = Tensor();

  const Tensor logits = (*model_)(image);
  PFI_CHECK(logits.dim() == 2) << "model output " << logits.to_string()
                               << " is not [1, classes]";
  PFI_CHECK(captured_activations_.defined() &&
            captured_activations_.dim() == 4)
      << "target layer did not produce a 4-D fmap during forward";

  GradCamResult result;
  result.top1 = logits.argmax();
  const std::int64_t cls = target_class < 0 ? result.top1 : target_class;
  PFI_CHECK(cls < logits.size(1))
      << "target class " << cls << " out of range for " << logits.to_string();
  result.top1_score = logits[result.top1];

  // Backprop d(score of cls)/d(everything); capture at the target layer.
  Tensor dlogits(logits.shape());
  dlogits[cls] = 1.0f;
  model_->run_backward(dlogits);
  PFI_CHECK(captured_gradients_.defined())
      << "backward pass did not reach the target layer";

  const auto c = captured_activations_.size(1);
  const auto h = captured_activations_.size(2);
  const auto w = captured_activations_.size(3);
  const auto hw = h * w;
  result.activations = captured_activations_.reshape({c, h, w});
  result.gradients = captured_gradients_.reshape({c, h, w});

  // alpha_k = spatial mean of the gradient of channel k.
  result.fmap_weights.resize(static_cast<std::size_t>(c));
  const auto* g = result.gradients.data().data();
  for (std::int64_t k = 0; k < c; ++k) {
    float acc = 0.0f;
    for (std::int64_t j = 0; j < hw; ++j) acc += g[k * hw + j];
    result.fmap_weights[static_cast<std::size_t>(k)] =
        acc / static_cast<float>(hw);
  }

  // heatmap = ReLU(sum_k alpha_k A_k), normalized to [0, 1].
  result.heatmap = Tensor({h, w});
  auto* hm = result.heatmap.data().data();
  const auto* a = result.activations.data().data();
  for (std::int64_t k = 0; k < c; ++k) {
    const float alpha = result.fmap_weights[static_cast<std::size_t>(k)];
    if (alpha == 0.0f) continue;
    for (std::int64_t j = 0; j < hw; ++j) hm[j] += alpha * a[k * hw + j];
  }
  float mx = 0.0f;
  for (std::int64_t j = 0; j < hw; ++j) {
    hm[j] = std::max(0.0f, hm[j]);
    if (std::isfinite(hm[j])) mx = std::max(mx, hm[j]);
  }
  if (mx > 0.0f) {
    for (std::int64_t j = 0; j < hw; ++j) {
      hm[j] = std::isfinite(hm[j]) ? hm[j] / mx : 1.0f;
    }
  }
  return result;
}

std::vector<float> GradCam::channel_sensitivity(const Tensor& image) {
  PFI_CHECK(image.dim() == 4 && image.size(0) == 1)
      << "channel_sensitivity expects a single image, got "
      << image.to_string();
  captured_activations_ = Tensor();
  const Tensor logits = (*model_)(image);
  PFI_CHECK(captured_activations_.defined() &&
            captured_activations_.dim() == 4)
      << "target layer did not produce a 4-D fmap during forward";
  const auto c = captured_activations_.size(1);
  const auto hw = captured_activations_.size(2) * captured_activations_.size(3);
  std::vector<float> sensitivity(static_cast<std::size_t>(c), 0.0f);

  for (std::int64_t cls = 0; cls < logits.size(1); ++cls) {
    captured_gradients_ = Tensor();
    Tensor dlogits(logits.shape());
    dlogits[cls] = 1.0f;
    model_->run_backward(dlogits);
    PFI_CHECK(captured_gradients_.defined())
        << "backward pass did not reach the target layer";
    const auto* g = captured_gradients_.data().data();
    for (std::int64_t k = 0; k < c; ++k) {
      float acc = 0.0f;
      for (std::int64_t j = 0; j < hw; ++j) acc += std::abs(g[k * hw + j]);
      sensitivity[static_cast<std::size_t>(k)] +=
          acc / static_cast<float>(hw);
    }
  }
  return sensitivity;
}

std::int64_t argmax_sensitivity(const std::vector<float>& s) {
  PFI_CHECK(!s.empty()) << "empty sensitivity vector";
  return static_cast<std::int64_t>(
      std::distance(s.begin(), std::max_element(s.begin(), s.end())));
}

std::int64_t argmin_sensitivity(const std::vector<float>& s) {
  PFI_CHECK(!s.empty()) << "empty sensitivity vector";
  return static_cast<std::int64_t>(
      std::distance(s.begin(), std::min_element(s.begin(), s.end())));
}

double heatmap_distance(const Tensor& a, const Tensor& b) {
  PFI_CHECK(a.shape() == b.shape())
      << "heatmap shapes differ: " << a.to_string() << " vs " << b.to_string();
  double acc = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    acc += std::abs(static_cast<double>(pa[i]) - pb[i]);
  }
  return acc / static_cast<double>(pa.size());
}

namespace {

std::int64_t extreme_fmap(const GradCamResult& r, bool largest) {
  PFI_CHECK(!r.fmap_weights.empty()) << "empty Grad-CAM result";
  const auto c = r.gradients.size(0);
  const auto hw = r.gradients.size(1) * r.gradients.size(2);
  const auto* g = r.gradients.data().data();
  std::int64_t best = 0;
  double best_v = largest ? -1.0 : std::numeric_limits<double>::max();
  for (std::int64_t k = 0; k < c; ++k) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < hw; ++j) acc += std::abs(g[k * hw + j]);
    acc /= static_cast<double>(hw);
    if (largest ? acc > best_v : acc < best_v) {
      best_v = acc;
      best = k;
    }
  }
  return best;
}

}  // namespace

std::int64_t most_sensitive_fmap(const GradCamResult& r) {
  return extreme_fmap(r, true);
}

std::int64_t least_sensitive_fmap(const GradCamResult& r) {
  return extreme_fmap(r, false);
}

void write_pgm(const Tensor& heatmap, const std::string& path) {
  PFI_CHECK(heatmap.dim() == 2) << "write_pgm expects [H, W], got "
                                << heatmap.to_string();
  std::ofstream out(path, std::ios::binary);
  PFI_CHECK(out.good()) << "cannot open '" << path << "' for writing";
  const auto h = heatmap.size(0), w = heatmap.size(1);
  out << "P5\n" << w << " " << h << "\n255\n";
  for (const float v : heatmap.data()) {
    const float clamped = std::min(1.0f, std::max(0.0f, v));
    out.put(static_cast<char>(static_cast<unsigned char>(clamped * 255.0f)));
  }
  PFI_CHECK(out.good()) << "write to '" << path << "' failed";
}

std::string render_ascii(const Tensor& heatmap) {
  PFI_CHECK(heatmap.dim() == 2) << "render_ascii expects [H, W]";
  static constexpr char kRamp[] = " .:-=+*#%@";
  const auto h = heatmap.size(0), w = heatmap.size(1);
  std::string out;
  out.reserve(static_cast<std::size_t>(h * (w + 1)));
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float v = std::min(1.0f, std::max(0.0f, heatmap.at(y, x)));
      out.push_back(kRamp[static_cast<int>(v * 9.0f)]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace pfi::interpret
