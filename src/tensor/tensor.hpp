// A minimal dense float tensor with PyTorch-like shared-storage semantics.
//
// Design notes:
//  * Row-major, always contiguous. Rank 1..4; CNN activations use NCHW.
//  * Copying a Tensor is cheap and SHARES storage (like torch.Tensor). This
//    is load-bearing for the fault injector: mutating a module's weight
//    tensor through any alias perturbs the module, exactly the mechanism the
//    paper uses for offline weight corruption (Sec. III-B).
//  * clone() deep-copies. Use it when snapshotting golden weights to undo an
//    injection.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pfi {

/// Tensor shape: sizes per dimension, outermost first.
using Shape = std::vector<std::int64_t>;

/// Render a shape as "[N, C, H, W]" for error messages.
std::string shape_to_string(const Shape& s);

/// Dense float32 tensor with shared storage.
class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Uninitialized-to-zero tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor wrapping the given values (must match the shape's element count).
  Tensor(Shape shape, std::vector<float> values);

  // -- Factories ------------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// Uniform random values in [lo, hi).
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// Normal random values with the given mean / stddev.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(std::int64_t n);

  // -- Introspection ---------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  /// Size of dimension d (supports negative indexing from the back).
  std::int64_t size(std::int64_t d) const;
  std::int64_t numel() const { return numel_; }
  bool defined() const { return storage_ != nullptr; }
  /// True when both tensors alias the same storage.
  bool shares_storage_with(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  // -- Element access ---------------------------------------------------------
  std::span<float> data() { return {storage_->data(), storage_->size()}; }
  std::span<const float> data() const {
    return {storage_->data(), storage_->size()};
  }
  float& operator[](std::int64_t i) { return (*storage_)[check_index(i)]; }
  float operator[](std::int64_t i) const { return (*storage_)[check_index(i)]; }

  /// 4-D NCHW accessor with bounds checking.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;
  /// 2-D accessor with bounds checking.
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  /// Flat offset of an NCHW coordinate (bounds-checked).
  std::int64_t offset_of(std::int64_t n, std::int64_t c, std::int64_t h,
                         std::int64_t w) const;

  // -- Whole-tensor operations -------------------------------------------------
  /// Deep copy with fresh storage.
  Tensor clone() const;
  /// Same storage, new shape (element count must match).
  Tensor reshape(Shape new_shape) const;
  /// Fill every element with v.
  void fill(float v);
  /// Overwrite this tensor's contents from another of identical shape.
  void copy_from(const Tensor& src);
  /// Add alpha * src element-wise into this tensor (same shape).
  void add_(const Tensor& src, float alpha = 1.0f);
  /// Multiply every element by s.
  void scale_(float s);
  /// Apply f element-wise in place.
  template <typename F>
  void apply_(F&& f) {
    for (auto& v : *storage_) v = f(v);
  }

  // -- Reductions ---------------------------------------------------------------
  float sum() const;
  float mean() const;
  float max() const;
  float min() const;
  /// Index of the maximum element (flat).
  std::int64_t argmax() const;
  /// Squared L2 norm of all elements.
  float squared_norm() const;
  /// Largest absolute element-wise difference vs other (same shape).
  float max_abs_diff(const Tensor& other) const;

  /// Pretty one-line description, e.g. "Tensor[2, 3, 8, 8]".
  std::string to_string() const;

 private:
  std::int64_t check_index(std::int64_t i) const {
    PFI_CHECK(storage_ && i >= 0 && i < numel_)
        << "flat index " << i << " out of range for " << to_string();
    return i;
  }

  Shape shape_;
  std::int64_t numel_ = 0;
  std::shared_ptr<std::vector<float>> storage_;
};

/// Element count implied by a shape (product of dims; 1 for rank 0).
std::int64_t shape_numel(const Shape& s);

// -- Free-function ops used across the library ---------------------------------

/// C = A(MxK) * B(KxN), row-major. Shapes validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Element-wise sum of two same-shaped tensors.
Tensor add(const Tensor& a, const Tensor& b);

/// Element-wise product of two same-shaped tensors.
Tensor mul(const Tensor& a, const Tensor& b);

/// True when shapes are identical and all elements differ by <= atol.
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace pfi
