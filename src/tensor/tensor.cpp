#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "kernels/kernels.hpp"

namespace pfi {

std::string shape_to_string(const Shape& s) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << "]";
  return os.str();
}

std::int64_t shape_numel(const Shape& s) {
  std::int64_t n = 1;
  for (const auto d : s) {
    PFI_CHECK(d >= 0) << "negative dimension in shape " << shape_to_string(s);
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, 0.0f)) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, fill)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      storage_(std::make_shared<std::vector<float>>(std::move(values))) {
  PFI_CHECK(static_cast<std::int64_t>(storage_->size()) == numel_)
      << "value count " << storage_->size() << " does not match shape "
      << shape_to_string(shape_);
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

std::int64_t Tensor::size(std::int64_t d) const {
  const auto rank = dim();
  if (d < 0) d += rank;
  PFI_CHECK(d >= 0 && d < rank)
      << "dimension " << d << " out of range for " << to_string();
  return shape_[static_cast<std::size_t>(d)];
}

std::int64_t Tensor::offset_of(std::int64_t n, std::int64_t c, std::int64_t h,
                               std::int64_t w) const {
  PFI_CHECK(dim() == 4) << "NCHW access on " << to_string();
  PFI_CHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
            h < shape_[2] && w >= 0 && w < shape_[3])
      << "index (" << n << ", " << c << ", " << h << ", " << w
      << ") out of range for " << to_string();
  return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  return (*storage_)[static_cast<std::size_t>(offset_of(n, c, h, w))];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  return (*storage_)[static_cast<std::size_t>(offset_of(n, c, h, w))];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  PFI_CHECK(dim() == 2) << "2-D access on " << to_string();
  PFI_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1])
      << "index (" << r << ", " << c << ") out of range for " << to_string();
  return (*storage_)[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

Tensor Tensor::clone() const {
  PFI_CHECK(defined()) << "clone of undefined tensor";
  Tensor out;
  out.shape_ = shape_;
  out.numel_ = numel_;
  out.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return out;
}

Tensor Tensor::reshape(Shape new_shape) const {
  PFI_CHECK(defined()) << "reshape of undefined tensor";
  PFI_CHECK(shape_numel(new_shape) == numel_)
      << "reshape " << to_string() << " -> " << shape_to_string(new_shape)
      << " changes element count";
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  out.storage_ = storage_;
  return out;
}

void Tensor::fill(float v) {
  std::fill(storage_->begin(), storage_->end(), v);
}

void Tensor::copy_from(const Tensor& src) {
  PFI_CHECK(src.shape_ == shape_)
      << "copy_from shape mismatch: " << to_string() << " vs "
      << src.to_string();
  std::copy(src.storage_->begin(), src.storage_->end(), storage_->begin());
}

void Tensor::add_(const Tensor& src, float alpha) {
  PFI_CHECK(src.shape_ == shape_)
      << "add_ shape mismatch: " << to_string() << " vs " << src.to_string();
  const auto& s = *src.storage_;
  auto& d = *storage_;
  for (std::size_t i = 0; i < d.size(); ++i) d[i] += alpha * s[i];
}

void Tensor::scale_(float s) {
  for (auto& v : *storage_) v *= s;
}

float Tensor::sum() const {
  return std::accumulate(storage_->begin(), storage_->end(), 0.0f);
}

float Tensor::mean() const {
  PFI_CHECK(numel_ > 0) << "mean of empty tensor";
  return sum() / static_cast<float>(numel_);
}

float Tensor::max() const {
  PFI_CHECK(numel_ > 0) << "max of empty tensor";
  return *std::max_element(storage_->begin(), storage_->end());
}

float Tensor::min() const {
  PFI_CHECK(numel_ > 0) << "min of empty tensor";
  return *std::min_element(storage_->begin(), storage_->end());
}

std::int64_t Tensor::argmax() const {
  PFI_CHECK(numel_ > 0) << "argmax of empty tensor";
  return static_cast<std::int64_t>(std::distance(
      storage_->begin(), std::max_element(storage_->begin(), storage_->end())));
}

float Tensor::squared_norm() const {
  float acc = 0.0f;
  for (const auto v : *storage_) acc += v * v;
  return acc;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  PFI_CHECK(other.shape_ == shape_)
      << "max_abs_diff shape mismatch: " << to_string() << " vs "
      << other.to_string();
  float m = 0.0f;
  for (std::int64_t i = 0; i < numel_; ++i) {
    m = std::max(m, std::abs((*storage_)[i] - (*other.storage_)[i]));
  }
  return m;
}

std::string Tensor::to_string() const {
  if (!defined()) return "Tensor(undefined)";
  return "Tensor" + shape_to_string(shape_);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  PFI_CHECK(a.dim() == 2 && b.dim() == 2)
      << "matmul needs 2-D operands, got " << a.to_string() << " and "
      << b.to_string();
  const auto m = a.size(0), k = a.size(1), k2 = b.size(0), n = b.size(1);
  PFI_CHECK(k == k2) << "matmul inner dims differ: " << a.to_string() << " x "
                     << b.to_string();
  Tensor c({m, n});
  // Routed through pfi::kernels (PFI_KERNEL selects the blocked or the
  // naive reference path); both are IEEE-faithful — no zero-skip — so
  // injected Inf/NaN propagate through matrix products.
  kernels::gemm(m, n, k, a.data().data(), k, false, b.data().data(), n, false,
                c.data().data(), n, kernels::Epilogue::kZero);
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  out.add_(b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  PFI_CHECK(a.shape() == b.shape())
      << "mul shape mismatch: " << a.to_string() << " vs " << b.to_string();
  Tensor out = a.clone();
  auto d = out.data();
  auto s = b.data();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= s[i];
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  return a.max_abs_diff(b) <= atol;
}

}  // namespace pfi
