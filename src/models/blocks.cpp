#include "models/blocks.hpp"

namespace pfi::models {

using namespace pfi::nn;

ModulePtr conv_bn_relu(std::int64_t in, std::int64_t out, std::int64_t k,
                       std::int64_t stride, std::int64_t pad, Rng& rng,
                       std::int64_t groups) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = in, .out_channels = out, .kernel = k,
                    .stride = stride, .padding = pad, .groups = groups,
                    .bias = false},
      rng);
  seq->emplace<BatchNorm2d>(out);
  seq->emplace<ReLU>();
  return seq;
}

ModulePtr conv_bn(std::int64_t in, std::int64_t out, std::int64_t k,
                  std::int64_t stride, std::int64_t pad, Rng& rng,
                  std::int64_t groups) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = in, .out_channels = out, .kernel = k,
                    .stride = stride, .padding = pad, .groups = groups,
                    .bias = false},
      rng);
  seq->emplace<BatchNorm2d>(out);
  return seq;
}

ModulePtr conv_relu(std::int64_t in, std::int64_t out, std::int64_t k,
                    std::int64_t stride, std::int64_t pad, Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = in, .out_channels = out, .kernel = k,
                    .stride = stride, .padding = pad},
      rng);
  seq->emplace<ReLU>();
  return seq;
}

namespace {

/// Projection shortcut (1x1 conv + BN) when shape changes, identity otherwise.
ModulePtr make_shortcut(std::int64_t in, std::int64_t out, std::int64_t stride,
                        Rng& rng) {
  if (in == out && stride == 1) return std::make_shared<Identity>();
  return conv_bn(in, out, 1, stride, 0, rng);
}

}  // namespace

ModulePtr basic_block(std::int64_t in, std::int64_t out, std::int64_t stride,
                      Rng& rng) {
  auto main = std::make_shared<Sequential>();
  main->push(conv_bn_relu(in, out, 3, stride, 1, rng));
  main->push(conv_bn(out, out, 3, 1, 1, rng));
  auto block = std::make_shared<Sequential>();
  block->emplace<Residual>(main, make_shortcut(in, out, stride, rng));
  block->emplace<ReLU>();
  return block;
}

ModulePtr bottleneck_block(std::int64_t in, std::int64_t mid, std::int64_t out,
                           std::int64_t stride, std::int64_t groups,
                           Rng& rng) {
  auto main = std::make_shared<Sequential>();
  main->push(conv_bn_relu(in, mid, 1, 1, 0, rng));
  main->push(conv_bn_relu(mid, mid, 3, stride, 1, rng, groups));
  main->push(conv_bn(mid, out, 1, 1, 0, rng));
  auto block = std::make_shared<Sequential>();
  block->emplace<Residual>(main, make_shortcut(in, out, stride, rng));
  block->emplace<ReLU>();
  return block;
}

ModulePtr preact_block(std::int64_t in, std::int64_t out, std::int64_t stride,
                       Rng& rng) {
  auto main = std::make_shared<Sequential>();
  main->emplace<BatchNorm2d>(in);
  main->emplace<ReLU>();
  main->emplace<Conv2d>(
      Conv2dOptions{.in_channels = in, .out_channels = out, .kernel = 3,
                    .stride = stride, .padding = 1, .bias = false},
      rng);
  main->emplace<BatchNorm2d>(out);
  main->emplace<ReLU>();
  main->emplace<Conv2d>(
      Conv2dOptions{.in_channels = out, .out_channels = out, .kernel = 3,
                    .stride = 1, .padding = 1, .bias = false},
      rng);
  ModulePtr shortcut;
  if (in == out && stride == 1) {
    shortcut = std::make_shared<Identity>();
  } else {
    auto sc = std::make_shared<Sequential>();
    sc->emplace<Conv2d>(
        Conv2dOptions{.in_channels = in, .out_channels = out, .kernel = 1,
                      .stride = stride, .padding = 0, .bias = false},
        rng);
    shortcut = sc;
  }
  return std::make_shared<Residual>(main, shortcut);
}

ModulePtr fire_module(std::int64_t in, std::int64_t squeeze,
                      std::int64_t expand, Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  seq->push(conv_relu(in, squeeze, 1, 1, 0, rng));
  seq->emplace<Concat>(std::vector<ModulePtr>{
      conv_relu(squeeze, expand, 1, 1, 0, rng),
      conv_relu(squeeze, expand, 3, 1, 1, rng)});
  return seq;
}

ModulePtr inception_module(std::int64_t in, std::int64_t c1, std::int64_t c3r,
                           std::int64_t c3, std::int64_t c5r, std::int64_t c5,
                           std::int64_t cp, Rng& rng) {
  auto branch1 = conv_bn_relu(in, c1, 1, 1, 0, rng);

  auto branch3 = std::make_shared<Sequential>();
  branch3->push(conv_bn_relu(in, c3r, 1, 1, 0, rng));
  branch3->push(conv_bn_relu(c3r, c3, 3, 1, 1, rng));

  auto branch5 = std::make_shared<Sequential>();
  branch5->push(conv_bn_relu(in, c5r, 1, 1, 0, rng));
  branch5->push(conv_bn_relu(c5r, c5, 5, 1, 2, rng));

  auto branchp = std::make_shared<Sequential>();
  branchp->emplace<MaxPool2d>(3, 1, 1);
  branchp->push(conv_bn_relu(in, cp, 1, 1, 0, rng));

  return std::make_shared<Concat>(
      std::vector<ModulePtr>{branch1, branch3, branch5, branchp});
}

ModulePtr dw_separable(std::int64_t in, std::int64_t out, std::int64_t stride,
                       Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  seq->push(conv_bn_relu(in, in, 3, stride, 1, rng, /*groups=*/in));
  seq->push(conv_bn_relu(in, out, 1, 1, 0, rng));
  return seq;
}

ModulePtr shuffle_unit(std::int64_t in, std::int64_t out, std::int64_t groups,
                       std::int64_t stride, Rng& rng) {
  auto main = std::make_shared<Sequential>();
  const std::int64_t mid = std::max<std::int64_t>(groups, out / 4);
  main->push(conv_bn_relu(in, mid, 1, 1, 0, rng, groups));
  main->emplace<ChannelShuffle>(groups);
  main->push(conv_bn(mid, mid, 3, stride, 1, rng, /*groups=*/mid));
  main->push(conv_bn(mid, out, 1, 1, 0, rng, groups));
  auto block = std::make_shared<Sequential>();
  block->emplace<Residual>(main, make_shortcut(in, out, stride, rng));
  block->emplace<ReLU>();
  return block;
}

ModulePtr dense_layer(std::int64_t in, std::int64_t growth, Rng& rng) {
  auto f = std::make_shared<Sequential>();
  f->emplace<BatchNorm2d>(in);
  f->emplace<ReLU>();
  f->emplace<Conv2d>(
      Conv2dOptions{.in_channels = in, .out_channels = growth, .kernel = 3,
                    .stride = 1, .padding = 1, .bias = false},
      rng);
  return std::make_shared<Concat>(
      std::vector<ModulePtr>{std::make_shared<Identity>(), f});
}

ModulePtr dense_transition(std::int64_t in, std::int64_t out, Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  seq->push(conv_bn_relu(in, out, 1, 1, 0, rng));
  seq->emplace<AvgPool2d>(2);
  return seq;
}

ModulePtr gap_classifier(std::int64_t channels, std::int64_t classes,
                         Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<GlobalAvgPool>();
  seq->emplace<Flatten>();
  seq->emplace<Linear>(channels, classes, rng);
  return seq;
}

}  // namespace pfi::models
