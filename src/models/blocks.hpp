// Reusable architecture blocks for the model zoo.
//
// Each helper returns a ready-wired ModulePtr. The blocks are structurally
// faithful to their namesake architectures (residual adds, pre-activation
// ordering, fire modules, inception branches, depthwise separability,
// channel shuffling, dense connectivity) at reduced channel counts — see
// DESIGN.md Sec. 2 for why structure, not scale, is what the paper's
// resiliency results depend on.
#pragma once

#include "nn/nn.hpp"

namespace pfi::models {

using nn::ModulePtr;

/// Conv -> BatchNorm -> ReLU.
ModulePtr conv_bn_relu(std::int64_t in, std::int64_t out, std::int64_t k,
                       std::int64_t stride, std::int64_t pad, Rng& rng,
                       std::int64_t groups = 1);

/// Conv -> BatchNorm (no activation; used before residual adds).
ModulePtr conv_bn(std::int64_t in, std::int64_t out, std::int64_t k,
                  std::int64_t stride, std::int64_t pad, Rng& rng,
                  std::int64_t groups = 1);

/// Conv -> ReLU (no batch norm; AlexNet / VGG style).
ModulePtr conv_relu(std::int64_t in, std::int64_t out, std::int64_t k,
                    std::int64_t stride, std::int64_t pad, Rng& rng);

/// ResNet basic block: two 3x3 convs with identity (or projection) skip,
/// post-add ReLU.
ModulePtr basic_block(std::int64_t in, std::int64_t out, std::int64_t stride,
                      Rng& rng);

/// ResNet bottleneck block: 1x1 reduce -> 3x3 (optionally grouped) -> 1x1
/// expand, with skip and post-add ReLU. Grouped form is the ResNeXt block.
ModulePtr bottleneck_block(std::int64_t in, std::int64_t mid, std::int64_t out,
                           std::int64_t stride, std::int64_t groups, Rng& rng);

/// Pre-activation residual block (PreResNet): BN -> ReLU -> conv, twice,
/// with skip; no post-add activation.
ModulePtr preact_block(std::int64_t in, std::int64_t out, std::int64_t stride,
                       Rng& rng);

/// SqueezeNet fire module: 1x1 squeeze then concatenated 1x1 / 3x3 expands.
ModulePtr fire_module(std::int64_t in, std::int64_t squeeze,
                      std::int64_t expand, Rng& rng);

/// GoogLeNet inception module with the canonical four branches
/// (1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1). Output channels =
/// c1 + c3 + c5 + cp.
ModulePtr inception_module(std::int64_t in, std::int64_t c1, std::int64_t c3r,
                           std::int64_t c3, std::int64_t c5r, std::int64_t c5,
                           std::int64_t cp, Rng& rng);

/// MobileNet depthwise-separable unit: 3x3 depthwise + 1x1 pointwise, each
/// with BN + ReLU.
ModulePtr dw_separable(std::int64_t in, std::int64_t out, std::int64_t stride,
                       Rng& rng);

/// ShuffleNet unit: grouped 1x1 -> channel shuffle -> 3x3 depthwise ->
/// grouped 1x1, residual add, post-add ReLU.
ModulePtr shuffle_unit(std::int64_t in, std::int64_t out, std::int64_t groups,
                       std::int64_t stride, Rng& rng);

/// DenseNet layer: out = concat(x, BN-ReLU-conv3x3(x)); grows channels by
/// `growth`.
ModulePtr dense_layer(std::int64_t in, std::int64_t growth, Rng& rng);

/// DenseNet transition: 1x1 conv halving channels + 2x2 average pool.
ModulePtr dense_transition(std::int64_t in, std::int64_t out, Rng& rng);

/// GlobalAvgPool -> Flatten -> Linear classifier head.
ModulePtr gap_classifier(std::int64_t channels, std::int64_t classes, Rng& rng);

}  // namespace pfi::models
