#include "models/zoo.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "models/blocks.hpp"

namespace pfi::models {

using namespace pfi::nn;

namespace {

/// Shared stem: 3x3 conv to `out` channels; ImageNet-scale inputs (>= 64 px)
/// get an extra 2x2 max-pool so the trunk always sees ~32x32 features.
void push_stem_bn(Sequential& net, const ModelConfig& cfg, std::int64_t out,
                  Rng& rng) {
  net.push(conv_bn_relu(cfg.in_channels, out, 3, 1, 1, rng));
  if (cfg.image_size >= 64) net.emplace<MaxPool2d>(2);
}

std::shared_ptr<Sequential> make_alexnet(const ModelConfig& cfg, Rng& rng) {
  auto net = std::make_shared<Sequential>();
  net->push(conv_relu(cfg.in_channels, 16, 5, 1, 2, rng));
  if (cfg.image_size >= 64) net->emplace<MaxPool2d>(2);
  net->emplace<MaxPool2d>(2);  // 16x16
  net->push(conv_relu(16, 32, 3, 1, 1, rng));
  net->emplace<MaxPool2d>(2);  // 8x8
  net->push(conv_relu(32, 48, 3, 1, 1, rng));
  net->push(conv_relu(48, 48, 3, 1, 1, rng));
  net->push(conv_relu(48, 32, 3, 1, 1, rng));
  net->emplace<MaxPool2d>(2);  // 4x4
  net->emplace<Flatten>();
  net->emplace<Dropout>(0.5f, rng);
  net->emplace<Linear>(32 * 4 * 4, 128, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(128, cfg.num_classes, rng);
  return net;
}

std::shared_ptr<Sequential> make_vgg19(const ModelConfig& cfg, Rng& rng) {
  // VGG19's conv arrangement [2, 2, 4, 4, 4] with a max-pool per group.
  auto net = std::make_shared<Sequential>();
  if (cfg.image_size >= 64) net->emplace<MaxPool2d>(2);
  const std::int64_t group_convs[] = {2, 2, 4, 4, 4};
  const std::int64_t group_channels[] = {16, 32, 48, 48, 48};
  std::int64_t in = cfg.in_channels;
  for (int g = 0; g < 5; ++g) {
    for (std::int64_t i = 0; i < group_convs[g]; ++i) {
      net->push(conv_relu(in, group_channels[g], 3, 1, 1, rng));
      in = group_channels[g];
    }
    net->emplace<MaxPool2d>(2);
  }
  net->emplace<Flatten>();  // 48 x 1 x 1 after five pools from 32
  net->emplace<Linear>(48, 64, rng);
  net->emplace<ReLU>();
  net->emplace<Dropout>(0.5f, rng);
  net->emplace<Linear>(64, cfg.num_classes, rng);
  return net;
}

std::shared_ptr<Sequential> make_resnet110(const ModelConfig& cfg, Rng& rng) {
  // CIFAR-style 3-stage residual net (depth reduced from 110).
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  for (int i = 0; i < 3; ++i) net->push(basic_block(16, 16, 1, rng));
  net->push(basic_block(16, 32, 2, rng));
  for (int i = 0; i < 2; ++i) net->push(basic_block(32, 32, 1, rng));
  net->push(basic_block(32, 64, 2, rng));
  for (int i = 0; i < 2; ++i) net->push(basic_block(64, 64, 1, rng));
  net->push(gap_classifier(64, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_preresnet110(const ModelConfig& cfg,
                                              Rng& rng) {
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  for (int i = 0; i < 3; ++i) net->push(preact_block(16, 16, 1, rng));
  net->push(preact_block(16, 32, 2, rng));
  for (int i = 0; i < 2; ++i) net->push(preact_block(32, 32, 1, rng));
  net->push(preact_block(32, 64, 2, rng));
  for (int i = 0; i < 2; ++i) net->push(preact_block(64, 64, 1, rng));
  net->emplace<BatchNorm2d>(64);  // final pre-activation norm
  net->emplace<ReLU>();
  net->push(gap_classifier(64, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_resnext(const ModelConfig& cfg, Rng& rng) {
  // Grouped bottlenecks, cardinality 4.
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  net->push(bottleneck_block(16, 16, 32, 1, 4, rng));
  net->push(bottleneck_block(32, 16, 32, 1, 4, rng));
  net->push(bottleneck_block(32, 32, 64, 2, 4, rng));
  net->push(bottleneck_block(64, 32, 64, 1, 4, rng));
  net->push(bottleneck_block(64, 64, 128, 2, 4, rng));
  net->push(bottleneck_block(128, 64, 128, 1, 4, rng));
  net->push(gap_classifier(128, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_densenet(const ModelConfig& cfg, Rng& rng) {
  constexpr std::int64_t kGrowth = 8;
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  std::int64_t ch = 16;
  for (int block = 0; block < 3; ++block) {
    for (int layer = 0; layer < 4; ++layer) {
      net->push(dense_layer(ch, kGrowth, rng));
      ch += kGrowth;
    }
    if (block < 2) {
      net->push(dense_transition(ch, ch / 2, rng));
      ch /= 2;
    }
  }
  net->emplace<BatchNorm2d>(ch);
  net->emplace<ReLU>();
  net->push(gap_classifier(ch, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_googlenet(const ModelConfig& cfg, Rng& rng) {
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  net->emplace<MaxPool2d>(2);  // 16x16
  net->push(inception_module(16, 8, 8, 16, 4, 8, 8, rng));     // -> 40
  net->push(inception_module(40, 16, 16, 24, 8, 12, 12, rng)); // -> 64
  net->emplace<MaxPool2d>(2);  // 8x8
  net->push(inception_module(64, 16, 16, 32, 8, 16, 16, rng)); // -> 80
  net->push(gap_classifier(80, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_mobilenet(const ModelConfig& cfg, Rng& rng) {
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  net->push(dw_separable(16, 32, 1, rng));
  net->push(dw_separable(32, 64, 2, rng));
  net->push(dw_separable(64, 64, 1, rng));
  net->push(dw_separable(64, 128, 2, rng));
  net->push(dw_separable(128, 128, 1, rng));
  net->push(gap_classifier(128, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_shufflenet(const ModelConfig& cfg, Rng& rng) {
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  net->push(shuffle_unit(16, 32, 4, 2, rng));
  net->push(shuffle_unit(32, 32, 4, 1, rng));
  net->push(shuffle_unit(32, 64, 4, 2, rng));
  net->push(shuffle_unit(64, 64, 4, 1, rng));
  net->push(gap_classifier(64, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_squeezenet(const ModelConfig& cfg, Rng& rng) {
  auto net = std::make_shared<Sequential>();
  net->push(conv_relu(cfg.in_channels, 16, 3, 1, 1, rng));
  if (cfg.image_size >= 64) net->emplace<MaxPool2d>(2);
  net->emplace<MaxPool2d>(2);
  net->push(fire_module(16, 8, 16, rng));   // -> 32
  net->push(fire_module(32, 8, 16, rng));   // -> 32
  net->emplace<MaxPool2d>(2);
  net->push(fire_module(32, 16, 24, rng));  // -> 48
  // SqueezeNet classifies with a 1x1 conv followed by global pooling.
  net->push(conv_relu(48, cfg.num_classes, 1, 1, 0, rng));
  net->emplace<GlobalAvgPool>();
  net->emplace<Flatten>();
  return net;
}

std::shared_ptr<Sequential> make_resnet50(const ModelConfig& cfg, Rng& rng) {
  // Bottleneck residual stages as in ResNet-50 (depth reduced).
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  net->push(bottleneck_block(16, 8, 32, 1, 1, rng));
  net->push(bottleneck_block(32, 8, 32, 1, 1, rng));
  net->push(bottleneck_block(32, 16, 64, 2, 1, rng));
  net->push(bottleneck_block(64, 16, 64, 1, 1, rng));
  net->push(bottleneck_block(64, 32, 128, 2, 1, rng));
  net->push(bottleneck_block(128, 32, 128, 1, 1, rng));
  net->push(gap_classifier(128, cfg.num_classes, rng));
  return net;
}

std::shared_ptr<Sequential> make_resnet18(const ModelConfig& cfg, Rng& rng) {
  auto net = std::make_shared<Sequential>();
  push_stem_bn(*net, cfg, 16, rng);
  net->push(basic_block(16, 16, 1, rng));
  net->push(basic_block(16, 16, 1, rng));
  net->push(basic_block(16, 32, 2, rng));
  net->push(basic_block(32, 32, 1, rng));
  net->push(basic_block(32, 64, 2, rng));
  net->push(basic_block(64, 64, 1, rng));
  net->push(gap_classifier(64, cfg.num_classes, rng));
  return net;
}

using Factory =
    std::function<std::shared_ptr<Sequential>(const ModelConfig&, Rng&)>;

const std::map<std::string, Factory>& registry() {
  static const std::map<std::string, Factory> reg = {
      {"alexnet", make_alexnet},         {"vgg19", make_vgg19},
      {"resnet110", make_resnet110},     {"preresnet110", make_preresnet110},
      {"resnext", make_resnext},         {"densenet", make_densenet},
      {"googlenet", make_googlenet},     {"mobilenet", make_mobilenet},
      {"shufflenet", make_shufflenet},   {"squeezenet", make_squeezenet},
      {"resnet50", make_resnet50},       {"resnet18", make_resnet18},
  };
  return reg;
}

}  // namespace

std::shared_ptr<Sequential> make_model(const std::string& name,
                                       const ModelConfig& config, Rng& rng) {
  PFI_CHECK(config.num_classes > 1)
      << "model '" << name << "' needs >= 2 classes";
  PFI_CHECK(config.image_size == 32 || config.image_size == 64)
      << "model zoo supports image_size 32 or 64, got " << config.image_size;
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& [n, f] : registry()) known += n + " ";
    PFI_CHECK(false) << "unknown model '" << name << "'; known models: "
                     << known;
  }
  auto model = it->second(config, rng);
  model->set_name(name);
  return model;
}

std::vector<std::string> model_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [n, f] : registry()) names.push_back(n);
  return names;
}

std::vector<Fig3Entry> fig3_networks() {
  // Paper Fig. 3, left to right: 6 CIFAR-10 nets, 6 CIFAR-100 nets,
  // 7 ImageNet nets.
  return {
      {"cifar10", "alexnet"},   {"cifar10", "densenet"},
      {"cifar10", "preresnet110"}, {"cifar10", "resnet110"},
      {"cifar10", "resnext"},   {"cifar10", "vgg19"},
      {"cifar100", "alexnet"},  {"cifar100", "densenet"},
      {"cifar100", "preresnet110"}, {"cifar100", "resnet110"},
      {"cifar100", "resnext"},  {"cifar100", "vgg19"},
      {"imagenet", "alexnet"},  {"imagenet", "googlenet"},
      {"imagenet", "mobilenet"}, {"imagenet", "resnet50"},
      {"imagenet", "shufflenet"}, {"imagenet", "squeezenet"},
      {"imagenet", "vgg19"},
  };
}

std::vector<std::string> fig4_networks() {
  // Paper Fig. 4: six INT8-quantized ImageNet networks.
  return {"alexnet",    "googlenet",  "resnet50",
          "shufflenet", "squeezenet", "vgg19"};
}

}  // namespace pfi::models
