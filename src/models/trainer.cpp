#include "models/trainer.hpp"

#include <algorithm>

#include "util/stopwatch.hpp"

namespace pfi::models {

TrainResult train_classifier(nn::Module& model,
                             const data::SyntheticDataset& ds,
                             const TrainConfig& config,
                             const StepHook& before_step,
                             const PostStepHook& after_step) {
  PFI_CHECK(config.epochs > 0 && config.batches_per_epoch > 0 &&
            config.batch_size > 0)
      << "degenerate TrainConfig";
  Rng rng(config.seed);
  nn::Sgd opt(model.parameters(),
              {.lr = config.lr,
               .momentum = config.momentum,
               .weight_decay = config.weight_decay});
  nn::CrossEntropyLoss ce;

  Stopwatch watch;
  TrainResult result;
  model.train();
  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    double epoch_acc = 0.0;
    for (std::int64_t b = 0; b < config.batches_per_epoch; ++b, ++step) {
      const auto batch = ds.sample_batch(config.batch_size, rng);
      if (before_step) before_step(step);
      const Tensor logits = model(batch.images);
      const float loss = ce.forward(logits, batch.labels);
      epoch_loss += loss;
      epoch_acc += nn::top1_accuracy(logits, batch.labels);
      opt.zero_grad();
      model.backward(ce.backward());
      opt.step();
      if (after_step) after_step(step);
    }
    result.final_loss = epoch_loss / static_cast<double>(config.batches_per_epoch);
    result.train_accuracy =
        epoch_acc / static_cast<double>(config.batches_per_epoch);
    opt.set_lr(opt.lr() * config.lr_decay);
  }
  result.steps = step;
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

double evaluate_accuracy(nn::Module& model, const data::SyntheticDataset& ds,
                         std::int64_t batches, std::int64_t batch_size,
                         Rng& rng) {
  PFI_CHECK(batches > 0 && batch_size > 0) << "degenerate eval config";
  const bool was_training = model.is_training();
  model.eval();
  double acc = 0.0;
  for (std::int64_t b = 0; b < batches; ++b) {
    const auto batch = ds.sample_batch(batch_size, rng);
    acc += nn::top1_accuracy(model(batch.images), batch.labels);
  }
  model.train(was_training);
  return acc / static_cast<double>(batches);
}

data::Batch make_fixed_set(const data::SyntheticDataset& ds, std::int64_t n,
                           Rng& rng) {
  PFI_CHECK(n > 0) << "make_fixed_set n=" << n;
  return ds.sample_batch(n, rng);
}

double evaluate_on(nn::Module& model, const data::Batch& set,
                   std::int64_t batch_size) {
  PFI_CHECK(batch_size > 0) << "evaluate_on batch_size=" << batch_size;
  const auto n = set.images.size(0);
  PFI_CHECK(n > 0 && static_cast<std::size_t>(n) == set.labels.size())
      << "evaluate_on: malformed fixed set (" << n << " images, "
      << set.labels.size() << " labels)";
  const bool was_training = model.is_training();
  model.eval();

  const auto c = set.images.size(1), h = set.images.size(2),
             w = set.images.size(3);
  const auto per = c * h * w;
  const auto src = set.images.data();
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const auto count = std::min(batch_size, n - start);
    Tensor chunk({count, c, h, w});
    auto dst = chunk.data();
    std::copy(src.begin() + start * per, src.begin() + (start + count) * per,
              dst.begin());
    const auto preds = nn::argmax_rows(model(chunk));
    for (std::int64_t i = 0; i < count; ++i) {
      if (preds[static_cast<std::size_t>(i)] ==
          set.labels[static_cast<std::size_t>(start + i)]) {
        ++correct;
      }
    }
  }
  model.train(was_training);
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace pfi::models
