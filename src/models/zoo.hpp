// The model zoo: miniature but structurally faithful versions of every
// network in the paper's evaluation (Fig. 3's 19 dataset/network pairs,
// Fig. 4's six ImageNet networks, Table I's ResNet18, Fig. 6's AlexNet).
//
// Channel counts are scaled down so campaigns run on a CPU in seconds, but
// each architecture keeps its defining structure: AlexNet/VGG are plain
// conv stacks with FC heads, ResNet/PreResNet/ResNeXt use (pre-activation /
// grouped) residual blocks, DenseNet uses dense concatenation, GoogLeNet
// uses four-branch inception modules, MobileNet uses depthwise-separable
// convs, ShuffleNet uses grouped 1x1 convs + channel shuffle, SqueezeNet
// uses fire modules with a conv classifier head.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/nn.hpp"

namespace pfi::models {

/// Geometry of the classification task a model is built for.
struct ModelConfig {
  std::int64_t num_classes = 10;
  std::int64_t in_channels = 3;
  std::int64_t image_size = 32;  ///< 32 (CIFAR-like) or 64 (ImageNet-like)
};

/// Build a model by registry name. Throws pfi::Error for unknown names.
/// Known names: alexnet, vgg19, resnet110, preresnet110, resnext, densenet,
/// googlenet, mobilenet, shufflenet, squeezenet, resnet50, resnet18.
std::shared_ptr<nn::Sequential> make_model(const std::string& name,
                                           const ModelConfig& config, Rng& rng);

/// All registry names, sorted.
std::vector<std::string> model_names();

/// One row of the paper's Fig. 3 sweep: a (dataset, network) pair.
struct Fig3Entry {
  std::string dataset;  ///< "cifar10" | "cifar100" | "imagenet"
  std::string model;    ///< registry name
};

/// The 19 network/dataset pairs of Fig. 3, in the paper's order.
std::vector<Fig3Entry> fig3_networks();

/// The six ImageNet networks of Fig. 4, in the paper's order.
std::vector<std::string> fig4_networks();

}  // namespace pfi::models
