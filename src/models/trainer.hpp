// Training and evaluation loops for zoo models on synthetic datasets.
//
// Used by:
//  * every bench that needs a model that genuinely classifies (the paper's
//    campaigns only inject into correctly-classified inferences);
//  * the Table I study, which trains ResNet18 with and without error
//    injection in the forward pass (via the per-step callback, which can
//    arm a FaultInjector before each training batch).
#pragma once

#include <functional>

#include "data/synthetic.hpp"
#include "nn/nn.hpp"

namespace pfi::models {

/// Training hyperparameters.
struct TrainConfig {
  std::int64_t epochs = 5;
  std::int64_t batches_per_epoch = 40;
  std::int64_t batch_size = 16;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  std::uint64_t seed = 11;
  /// Multiply lr by this factor after each epoch (simple decay schedule).
  float lr_decay = 0.9f;
};

/// Invoked before each training step with the global step index. The
/// Table I bench uses this to declare a fresh random fault per forward pass.
using StepHook = std::function<void(std::int64_t step)>;
/// Invoked after each training step (e.g. to clear faults).
using PostStepHook = std::function<void(std::int64_t step)>;

/// Outcome of a training run.
struct TrainResult {
  double final_loss = 0.0;
  double train_accuracy = 0.0;  ///< over the last epoch
  double wall_seconds = 0.0;
  std::int64_t steps = 0;
};

/// Train `model` on `ds` with SGD + cross-entropy.
TrainResult train_classifier(nn::Module& model,
                             const data::SyntheticDataset& ds,
                             const TrainConfig& config,
                             const StepHook& before_step = nullptr,
                             const PostStepHook& after_step = nullptr);

/// Top-1 accuracy over `batches` freshly drawn eval batches.
double evaluate_accuracy(nn::Module& model, const data::SyntheticDataset& ds,
                         std::int64_t batches, std::int64_t batch_size,
                         Rng& rng);

/// Pre-render a fixed evaluation set of `n` samples — the "separate test
/// set" of Table I's methodology, letting two models be scored on the very
/// same inputs.
data::Batch make_fixed_set(const data::SyntheticDataset& ds, std::int64_t n,
                           Rng& rng);

/// Top-1 accuracy of `model` over a fixed set, evaluated in chunks of
/// `batch_size` (the final chunk may be smaller).
double evaluate_on(nn::Module& model, const data::Batch& set,
                   std::int64_t batch_size);

}  // namespace pfi::models
