#include "data/detection_scenes.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pfi::data {

namespace {

/// True when two boxes overlap by more than a loose threshold; used to keep
/// generated objects separated so ground truth is unambiguous.
bool overlaps(const GroundTruthBox& a, const GroundTruthBox& b) {
  const float dx = std::abs(a.cx - b.cx);
  const float dy = std::abs(a.cy - b.cy);
  return dx < (a.w + b.w) * 0.5f && dy < (a.h + b.h) * 0.5f;
}

}  // namespace

DetectionScene make_scene(const SceneSpec& spec, Rng& rng) {
  PFI_CHECK(spec.size >= 16) << "scene size " << spec.size;
  PFI_CHECK(spec.max_objects >= 1) << "scene max_objects " << spec.max_objects;
  const auto c = spec.channels, s = spec.size;

  DetectionScene scene;
  scene.image = Tensor({1, c, s, s});

  // Low-intensity textured background.
  auto* d = scene.image.data().data();
  for (std::int64_t ci = 0; ci < c; ++ci) {
    float* plane = d + ci * s * s;
    for (std::int64_t y = 0; y < s; ++y) {
      for (std::int64_t x = 0; x < s; ++x) {
        plane[y * s + x] =
            -0.5f + 0.1f * std::sin(0.7f * static_cast<float>(x)) *
                        std::cos(0.5f * static_cast<float>(y)) +
            rng.normal(0.0f, spec.noise_stddev);
      }
    }
  }

  // Place objects with rejection sampling to avoid heavy overlap.
  const auto target = rng.next_int(1, spec.max_objects);
  for (std::int64_t obj = 0; obj < target; ++obj) {
    GroundTruthBox box;
    bool placed = false;
    for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
      const float extent = rng.uniform(spec.min_extent, spec.max_extent);
      box.w = extent;
      box.h = extent;
      box.cx = rng.uniform(extent * 0.5f, 1.0f - extent * 0.5f);
      box.cy = rng.uniform(extent * 0.5f, 1.0f - extent * 0.5f);
      box.cls = rng.next_int(0, spec.num_classes - 1);
      placed = std::none_of(scene.boxes.begin(), scene.boxes.end(),
                            [&](const auto& b) { return overlaps(box, b); });
    }
    if (!placed) continue;  // crowded scene: keep the objects we have

    // Rasterize. Class 0 = filled square, class 1 = filled disk; each class
    // has a distinct color signature so the detector can classify.
    const float x0 = (box.cx - box.w * 0.5f) * static_cast<float>(s);
    const float x1 = (box.cx + box.w * 0.5f) * static_cast<float>(s);
    const float y0 = (box.cy - box.h * 0.5f) * static_cast<float>(s);
    const float y1 = (box.cy + box.h * 0.5f) * static_cast<float>(s);
    const float rad = box.w * 0.5f * static_cast<float>(s);
    const float ccx = box.cx * static_cast<float>(s);
    const float ccy = box.cy * static_cast<float>(s);

    for (std::int64_t ci = 0; ci < c; ++ci) {
      // Squares bright in channel 0, disks bright in channel 1 (and both in
      // channel 2) — linearly separable class evidence.
      float gain = 0.4f;
      if (box.cls == 0 && ci == 0) gain = 1.2f;
      if (box.cls == 1 && ci == 1) gain = 1.2f;
      float* plane = d + ci * s * s;
      for (std::int64_t y = std::max<std::int64_t>(0, static_cast<std::int64_t>(y0));
           y < std::min<std::int64_t>(s, static_cast<std::int64_t>(y1) + 1); ++y) {
        for (std::int64_t x = std::max<std::int64_t>(0, static_cast<std::int64_t>(x0));
             x < std::min<std::int64_t>(s, static_cast<std::int64_t>(x1) + 1); ++x) {
          bool inside;
          if (box.cls == 0) {
            inside = static_cast<float>(x) >= x0 && static_cast<float>(x) <= x1 &&
                     static_cast<float>(y) >= y0 && static_cast<float>(y) <= y1;
          } else {
            const float dx = static_cast<float>(x) - ccx;
            const float dy = static_cast<float>(y) - ccy;
            inside = dx * dx + dy * dy <= rad * rad;
          }
          if (inside) plane[y * s + x] = gain + rng.normal(0.0f, 0.05f);
        }
      }
    }
    scene.boxes.push_back(box);
  }
  return scene;
}

SceneBatch make_scene_batch(const SceneSpec& spec, std::int64_t n, Rng& rng) {
  PFI_CHECK(n > 0) << "make_scene_batch n=" << n;
  SceneBatch batch;
  batch.images = Tensor({n, spec.channels, spec.size, spec.size});
  const auto per = spec.channels * spec.size * spec.size;
  auto dst = batch.images.data();
  for (std::int64_t i = 0; i < n; ++i) {
    DetectionScene scene = make_scene(spec, rng);
    auto src = scene.image.data();
    std::copy(src.begin(), src.end(), dst.begin() + i * per);
    batch.boxes.push_back(std::move(scene.boxes));
  }
  return batch;
}

}  // namespace pfi::data
