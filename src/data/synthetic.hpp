// Procedural synthetic classification datasets.
//
// Substitution (see DESIGN.md Sec. 2): the paper evaluates on CIFAR-10,
// CIFAR-100 and ImageNet. Offline we cannot ship those; instead each class k
// is a procedurally generated texture — a class-specific oriented sinusoidal
// grating plus a class-colored Gaussian blob — with per-sample phase jitter,
// blob position jitter, and additive noise. Small CNNs reach high accuracy
// on these within seconds of training, which is what the paper's campaign
// methodology needs: it only injects into inferences that are *correct*
// without perturbation (Sec. IV-A), so a model that genuinely classifies is
// a prerequisite for a faithful reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace pfi::data {

/// A labelled batch.
struct Batch {
  Tensor images;                      ///< [N, C, H, W]
  std::vector<std::int64_t> labels;   ///< size N
};

/// Dataset geometry and difficulty.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::int64_t classes = 10;
  std::int64_t channels = 3;
  std::int64_t height = 32;
  std::int64_t width = 32;
  float noise_stddev = 0.25f;  ///< additive Gaussian pixel noise
  /// Scale on the per-sample phase/blob-position jitter (1 = the standard
  /// jitter). 0 together with noise_stddev 0 makes every image a pure
  /// function of its label — a finite input space the statistical test
  /// harness can sweep exhaustively for ground truth. The generator
  /// consumes identical RNG draws for every value, so changing it never
  /// shifts any other sampled quantity.
  float jitter = 1.0f;
  std::uint64_t seed = 1;      ///< fixes the class->pattern mapping
};

/// Deterministic class-conditioned image generator.
class SyntheticDataset {
 public:
  explicit SyntheticDataset(SyntheticSpec spec);

  const SyntheticSpec& spec() const { return spec_; }

  /// Render one sample of class `label` using `rng` for jitter and noise.
  Tensor render(std::int64_t label, Rng& rng) const;

  /// Draw a batch with uniformly random labels.
  Batch sample_batch(std::int64_t n, Rng& rng) const;

  /// Draw a batch with the given labels.
  Batch render_batch(const std::vector<std::int64_t>& labels, Rng& rng) const;

 private:
  struct ClassStyle {
    float fx, fy, phase;        // grating frequency / phase
    float color[3];             // per-channel mean offset
    float blob_cx, blob_cy;     // canonical blob center (0..1)
    float blob_sigma;           // blob radius as a fraction of image size
    float blob_gain;
  };

  SyntheticSpec spec_;
  std::vector<ClassStyle> styles_;
};

/// Presets mirroring the paper's three datasets.
SyntheticSpec cifar10_like();   ///< 3x32x32, 10 classes
SyntheticSpec cifar100_like();  ///< 3x32x32, 20 classes (reduced from 100)
SyntheticSpec imagenet_like();  ///< 3x64x64, 16 classes (reduced from 1000)

}  // namespace pfi::data
