#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pfi::data {

namespace {
constexpr float kPi = 3.14159265358979323846f;
}

SyntheticDataset::SyntheticDataset(SyntheticSpec spec) : spec_(std::move(spec)) {
  PFI_CHECK(spec_.classes > 1) << "dataset needs >= 2 classes";
  PFI_CHECK(spec_.channels >= 1 && spec_.channels <= 3)
      << "dataset channels " << spec_.channels;
  PFI_CHECK(spec_.height >= 8 && spec_.width >= 8)
      << "dataset images must be at least 8x8";

  // Derive one deterministic style per class. Frequencies are spread so that
  // class gratings are mutually distinguishable; colors cycle a palette.
  Rng rng(spec_.seed);
  styles_.reserve(static_cast<std::size_t>(spec_.classes));
  for (std::int64_t k = 0; k < spec_.classes; ++k) {
    ClassStyle s{};
    const float angle = kPi * static_cast<float>(k) /
                        static_cast<float>(spec_.classes);
    const float freq = 2.0f + static_cast<float>(k % 4);
    s.fx = freq * std::cos(angle);
    s.fy = freq * std::sin(angle);
    s.phase = rng.uniform(0.0f, 2.0f * kPi);
    for (int c = 0; c < 3; ++c) {
      s.color[c] = 0.6f * std::sin(2.0f * kPi *
                                   (static_cast<float>(k) /
                                        static_cast<float>(spec_.classes) +
                                    static_cast<float>(c) / 3.0f));
    }
    s.blob_cx = 0.25f + 0.5f * rng.next_float();
    s.blob_cy = 0.25f + 0.5f * rng.next_float();
    s.blob_sigma = 0.10f + 0.08f * rng.next_float();
    s.blob_gain = 0.8f + 0.4f * rng.next_float();
    styles_.push_back(s);
  }
}

Tensor SyntheticDataset::render(std::int64_t label, Rng& rng) const {
  PFI_CHECK(label >= 0 && label < spec_.classes)
      << "label " << label << " out of range [0, " << spec_.classes << ")";
  const auto& st = styles_[static_cast<std::size_t>(label)];
  const auto c = spec_.channels, h = spec_.height, w = spec_.width;
  Tensor img({1, c, h, w});

  // Per-sample jitter keeps the task non-trivial. The draws happen
  // unconditionally so spec_.jitter never changes RNG consumption (jitter 1
  // multiplies by exactly 1.0f: bit-identical to the unscaled generator).
  const float phase = st.phase + spec_.jitter * rng.uniform(-0.8f, 0.8f);
  const float cx = st.blob_cx + spec_.jitter * rng.uniform(-0.08f, 0.08f);
  const float cy = st.blob_cy + spec_.jitter * rng.uniform(-0.08f, 0.08f);
  const float inv_sigma2 =
      1.0f / (2.0f * st.blob_sigma * st.blob_sigma + 1e-6f);

  auto* d = img.data().data();
  for (std::int64_t ci = 0; ci < c; ++ci) {
    float* plane = d + ci * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      const float fy = static_cast<float>(y) / static_cast<float>(h);
      for (std::int64_t x = 0; x < w; ++x) {
        const float fx = static_cast<float>(x) / static_cast<float>(w);
        const float grating =
            0.5f * std::sin(2.0f * kPi * (st.fx * fx + st.fy * fy) + phase);
        const float dx = fx - cx, dy = fy - cy;
        const float blob =
            st.blob_gain * std::exp(-(dx * dx + dy * dy) * inv_sigma2);
        plane[y * w + x] = grating + blob + st.color[ci] +
                           rng.normal(0.0f, spec_.noise_stddev);
      }
    }
  }
  return img;
}

Batch SyntheticDataset::sample_batch(std::int64_t n, Rng& rng) const {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (auto& l : labels) l = rng.next_int(0, spec_.classes - 1);
  return render_batch(labels, rng);
}

Batch SyntheticDataset::render_batch(const std::vector<std::int64_t>& labels,
                                     Rng& rng) const {
  const auto n = static_cast<std::int64_t>(labels.size());
  PFI_CHECK(n > 0) << "render_batch of empty label list";
  Batch b;
  b.images = Tensor({n, spec_.channels, spec_.height, spec_.width});
  b.labels = labels;
  const auto per = spec_.channels * spec_.height * spec_.width;
  auto dst = b.images.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor img = render(labels[static_cast<std::size_t>(i)], rng);
    auto src = img.data();
    std::copy(src.begin(), src.end(), dst.begin() + i * per);
  }
  return b;
}

SyntheticSpec cifar10_like() {
  return SyntheticSpec{.name = "cifar10",
                       .classes = 10,
                       .channels = 3,
                       .height = 32,
                       .width = 32,
                       .noise_stddev = 0.25f,
                       .seed = 101};
}

SyntheticSpec cifar100_like() {
  return SyntheticSpec{.name = "cifar100",
                       .classes = 20,
                       .channels = 3,
                       .height = 32,
                       .width = 32,
                       .noise_stddev = 0.22f,
                       .seed = 202};
}

SyntheticSpec imagenet_like() {
  return SyntheticSpec{.name = "imagenet",
                       .classes = 16,
                       .channels = 3,
                       .height = 64,
                       .width = 64,
                       .noise_stddev = 0.25f,
                       .seed = 303};
}

}  // namespace pfi::data
