// Synthetic object-detection scenes (COCO substitute for the Fig. 5 study).
//
// Each scene is a textured background with 1..max_objects bright geometric
// objects — filled squares ("box") and filled circles ("disk") — whose
// ground-truth bounding boxes are known exactly. The mini-YOLO detector in
// src/detect/ trains on these scenes; the Fig. 5 bench then injects faults
// and diffs detections against the fault-free output.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace pfi::data {

/// An axis-aligned ground-truth box in normalized [0,1] coordinates.
struct GroundTruthBox {
  float cx = 0.0f;  ///< center x
  float cy = 0.0f;  ///< center y
  float w = 0.0f;
  float h = 0.0f;
  std::int64_t cls = 0;  ///< 0 = square, 1 = disk
};

/// A rendered scene with its annotations.
struct DetectionScene {
  Tensor image;  ///< [1, C, H, W]
  std::vector<GroundTruthBox> boxes;
};

/// Scene generator parameters.
struct SceneSpec {
  std::int64_t channels = 3;
  std::int64_t size = 48;       ///< square images
  std::int64_t max_objects = 3;
  float min_extent = 0.18f;     ///< object size as a fraction of the image
  float max_extent = 0.38f;
  float noise_stddev = 0.08f;
  std::int64_t num_classes = 2;
};

/// Render one scene.
DetectionScene make_scene(const SceneSpec& spec, Rng& rng);

/// Render a batch of scenes stacked into one tensor.
struct SceneBatch {
  Tensor images;  ///< [N, C, H, W]
  std::vector<std::vector<GroundTruthBox>> boxes;  ///< per scene
};
SceneBatch make_scene_batch(const SceneSpec& spec, std::int64_t n, Rng& rng);

}  // namespace pfi::data
