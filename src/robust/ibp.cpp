#include "robust/ibp.hpp"

#include <algorithm>
#include <cmath>

namespace pfi::robust {

using namespace pfi::nn;

namespace {

bool is_container(const std::string& kind) {
  return kind == "Sequential" || kind == "Residual" || kind == "Concat";
}

bool is_skipped(const std::string& kind) {
  // Dropout acts as identity for bound propagation (standard IBP practice);
  // Identity contributes nothing.
  return kind == "Dropout" || kind == "Identity";
}

}  // namespace

IbpNetwork::IbpNetwork(std::shared_ptr<Sequential> model)
    : model_(std::move(model)) {
  PFI_CHECK(model_ != nullptr) << "IbpNetwork needs a model";
  Rng shadow_rng(1);  // shadow weights are overwritten on every forward

  for (Module* m : model_->modules()) {
    const std::string kind = m->kind();
    if (is_container(kind) || is_skipped(kind)) {
      PFI_CHECK(kind != "Residual" && kind != "Concat")
          << "IbpNetwork supports plain feed-forward models; found a " << kind
          << " container";
      continue;
    }
    Layer layer;
    layer.original = m;
    layer.kind = kind;
    if (kind == "Conv2d") {
      auto& conv = static_cast<Conv2d&>(*m);
      Conv2dOptions plus_opts = conv.options();
      Conv2dOptions minus_opts = conv.options();
      minus_opts.bias = false;
      layer.plus_lo = std::make_shared<Conv2d>(plus_opts, shadow_rng);
      layer.plus_hi = std::make_shared<Conv2d>(plus_opts, shadow_rng);
      layer.minus_lo = std::make_shared<Conv2d>(minus_opts, shadow_rng);
      layer.minus_hi = std::make_shared<Conv2d>(minus_opts, shadow_rng);
      // The plus shadows add the ORIGINAL bias (shared storage): the bias
      // term appears identically in both bounds.
      if (conv.has_bias()) {
        static_cast<Conv2d&>(*layer.plus_lo).bias().value = conv.bias().value;
        static_cast<Conv2d&>(*layer.plus_hi).bias().value = conv.bias().value;
      }
      // Within each sign pair the two shadows share weight storage.
      static_cast<Conv2d&>(*layer.plus_hi).weight().value =
          static_cast<Conv2d&>(*layer.plus_lo).weight().value;
      static_cast<Conv2d&>(*layer.minus_hi).weight().value =
          static_cast<Conv2d&>(*layer.minus_lo).weight().value;
    } else if (kind == "Linear") {
      auto& fc = static_cast<Linear&>(*m);
      layer.plus_lo = std::make_shared<Linear>(fc.in_features(),
                                               fc.out_features(), shadow_rng,
                                               fc.has_bias());
      layer.plus_hi = std::make_shared<Linear>(fc.in_features(),
                                               fc.out_features(), shadow_rng,
                                               fc.has_bias());
      layer.minus_lo = std::make_shared<Linear>(
          fc.in_features(), fc.out_features(), shadow_rng, false);
      layer.minus_hi = std::make_shared<Linear>(
          fc.in_features(), fc.out_features(), shadow_rng, false);
      if (fc.has_bias()) {
        static_cast<Linear&>(*layer.plus_lo).bias().value = fc.bias().value;
        static_cast<Linear&>(*layer.plus_hi).bias().value = fc.bias().value;
      }
      static_cast<Linear&>(*layer.plus_hi).weight().value =
          static_cast<Linear&>(*layer.plus_lo).weight().value;
      static_cast<Linear&>(*layer.minus_hi).weight().value =
          static_cast<Linear&>(*layer.minus_lo).weight().value;
    } else if (kind == "ReLU") {
      layer.mono_lo = std::make_shared<ReLU>();
      layer.mono_hi = std::make_shared<ReLU>();
    } else if (kind == "MaxPool2d") {
      auto& mp = static_cast<MaxPool2d&>(*m);
      layer.mono_lo = std::make_shared<MaxPool2d>(mp.kernel(), mp.stride(),
                                                  mp.padding());
      layer.mono_hi = std::make_shared<MaxPool2d>(mp.kernel(), mp.stride(),
                                                  mp.padding());
    } else if (kind == "Flatten") {
      layer.mono_lo = std::make_shared<Flatten>();
      layer.mono_hi = std::make_shared<Flatten>();
    } else {
      PFI_CHECK(false) << "IbpNetwork: unsupported layer kind '" << kind
                       << "' (supported: Conv2d, Linear, ReLU, MaxPool2d, "
                          "Flatten, Dropout)";
    }
    layers_.push_back(std::move(layer));
  }
  PFI_CHECK(!layers_.empty()) << "IbpNetwork: model has no supported layers";
}

void IbpNetwork::refresh_affine_weights(Layer& layer) {
  auto get_weight = [](Module& m) -> Parameter& {
    return m.kind() == "Conv2d" ? static_cast<Conv2d&>(m).weight()
                                : static_cast<Linear&>(m).weight();
  };
  const Tensor& w = get_weight(*layer.original).value;
  Tensor wplus = get_weight(*layer.plus_lo).value;   // shared with plus_hi
  Tensor wminus = get_weight(*layer.minus_lo).value;  // shared with minus_hi
  wplus.copy_from(w);
  wplus.apply_([](float v) { return v > 0.0f ? v : 0.0f; });
  wminus.copy_from(w);
  wminus.apply_([](float v) { return v < 0.0f ? v : 0.0f; });
}

IntervalTensor IbpNetwork::forward(const IntervalTensor& input) {
  input.validate();
  Tensor lo = input.lo;
  Tensor hi = input.hi;
  for (Layer& layer : layers_) {
    if (layer.plus_lo) {
      refresh_affine_weights(layer);
      Tensor lo_next = add((*layer.plus_lo)(lo), (*layer.minus_lo)(hi));
      Tensor hi_next = add((*layer.plus_hi)(hi), (*layer.minus_hi)(lo));
      lo = std::move(lo_next);
      hi = std::move(hi_next);
    } else {
      lo = (*layer.mono_lo)(lo);
      hi = (*layer.mono_hi)(hi);
    }
  }
  return {lo, hi};
}

void IbpNetwork::backward(const Tensor& grad_lo, const Tensor& grad_hi) {
  // Zero shadow gradients so each backward pass starts clean.
  for (Layer& layer : layers_) {
    for (auto* shadow :
         {layer.plus_lo.get(), layer.plus_hi.get(), layer.minus_lo.get(),
          layer.minus_hi.get(), layer.mono_lo.get(), layer.mono_hi.get()}) {
      if (shadow) shadow->zero_grad();
    }
  }

  Tensor dlo = grad_lo;
  Tensor dhi = grad_hi;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    Layer& layer = *it;
    if (layer.plus_lo) {
      // lo' = P(lo) + M(hi), hi' = P(hi) + M(lo)  =>
      // dlo = P^T dlo' + M^T dhi' ; dhi = M^T dlo' + P^T dhi'.
      Tensor dlo_prev = layer.plus_lo->backward(dlo);
      dlo_prev.add_(layer.minus_hi->backward(dhi));
      Tensor dhi_prev = layer.plus_hi->backward(dhi);
      dhi_prev.add_(layer.minus_lo->backward(dlo));
      dlo = std::move(dlo_prev);
      dhi = std::move(dhi_prev);
      accumulate_affine_grads(layer);
    } else {
      dlo = layer.mono_lo->backward(dlo);
      dhi = layer.mono_hi->backward(dhi);
    }
  }
}

void IbpNetwork::accumulate_affine_grads(Layer& layer) {
  auto get_weight = [](Module& m) -> Parameter& {
    return m.kind() == "Conv2d" ? static_cast<Conv2d&>(m).weight()
                                : static_cast<Linear&>(m).weight();
  };
  auto get_bias = [](Module& m) -> Parameter& {
    return m.kind() == "Conv2d" ? static_cast<Conv2d&>(m).bias()
                                : static_cast<Linear&>(m).bias();
  };

  Parameter& orig_w = get_weight(*layer.original);
  const auto w = orig_w.value.data();
  auto grad = orig_w.grad.data();
  const auto gpl = get_weight(*layer.plus_lo).grad.data();
  const auto gph = get_weight(*layer.plus_hi).grad.data();
  const auto gml = get_weight(*layer.minus_lo).grad.data();
  const auto gmh = get_weight(*layer.minus_hi).grad.data();
  for (std::size_t i = 0; i < w.size(); ++i) {
    // dW flows through W+ where W > 0 and through W- where W < 0; at
    // exactly zero both clamp masks are flat, so the subgradient is 0 —
    // except via W+ whose derivative we take as the right-sided one.
    if (w[i] > 0.0f) {
      grad[i] += gpl[i] + gph[i];
    } else if (w[i] < 0.0f) {
      grad[i] += gml[i] + gmh[i];
    }
  }

  const bool has_bias = layer.original->kind() == "Conv2d"
                            ? static_cast<Conv2d&>(*layer.original).has_bias()
                            : static_cast<Linear&>(*layer.original).has_bias();
  if (has_bias) {
    Parameter& orig_b = get_bias(*layer.original);
    orig_b.grad.add_(get_bias(*layer.plus_lo).grad);
    orig_b.grad.add_(get_bias(*layer.plus_hi).grad);
  }
}

Tensor worst_case_logits(const IntervalTensor& bounds,
                         std::span<const std::int64_t> targets) {
  const auto n = bounds.lo.size(0), c = bounds.lo.size(1);
  PFI_CHECK(static_cast<std::int64_t>(targets.size()) == n)
      << "worst_case_logits: " << targets.size() << " targets for batch " << n;
  Tensor z = bounds.hi.clone();
  for (std::int64_t i = 0; i < n; ++i) {
    const auto y = targets[static_cast<std::size_t>(i)];
    PFI_CHECK(y >= 0 && y < c) << "target " << y << " out of range";
    z.at(i, y) = bounds.lo.at(i, y);
  }
  return z;
}

IbpTrainResult train_ibp(const std::shared_ptr<Sequential>& model,
                         const data::SyntheticDataset& ds,
                         const IbpTrainConfig& config) {
  PFI_CHECK(config.alpha_max >= 0.0f && config.alpha_max <= 1.0f)
      << "alpha_max " << config.alpha_max;
  PFI_CHECK(config.eps_max >= 0.0f) << "eps_max " << config.eps_max;
  PFI_CHECK(config.ramp_start_step < config.ramp_end_step)
      << "curriculum ramp [" << config.ramp_start_step << ", "
      << config.ramp_end_step << ")";

  IbpNetwork ibp(model);
  Sgd opt(model->parameters(),
          {.lr = config.lr, .momentum = config.momentum, .weight_decay = 1e-4f});
  CrossEntropyLoss natural_ce;
  CrossEntropyLoss worst_ce;
  Rng rng(config.seed);

  // Dropout off: the natural and interval passes must see the same function.
  model->eval();

  IbpTrainResult result;
  std::int64_t step = 0;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    double loss_acc = 0.0, nat_acc = 0.0, verified_acc = 0.0;
    for (std::int64_t b = 0; b < config.batches_per_epoch; ++b, ++step) {
      // Curriculum schedule for (alpha, eps).
      float ramp = 0.0f;
      if (step >= config.ramp_end_step) {
        ramp = 1.0f;
      } else if (step > config.ramp_start_step) {
        ramp = static_cast<float>(step - config.ramp_start_step) /
               static_cast<float>(config.ramp_end_step -
                                  config.ramp_start_step);
      }
      const float alpha = config.alpha_max * ramp;
      const float eps = config.eps_max * ramp;

      const auto batch = ds.sample_batch(config.batch_size, rng);
      const auto params = model->parameters();
      opt.zero_grad();

      // Natural term.
      const Tensor logits = (*model)(batch.images);
      const float nat_loss = natural_ce.forward(logits, batch.labels);
      nat_acc += top1_accuracy(logits, batch.labels);
      Tensor gnat = natural_ce.backward();
      gnat.scale_(1.0f - alpha);
      model->run_backward(gnat);
      if (config.grad_clip > 0.0f) clip_grad_norm(params, config.grad_clip);

      float worst_loss = 0.0f;
      if (alpha > 0.0f && eps > 0.0f) {
        // The worst-case term is clipped SEPARATELY: early in the ramp its
        // raw gradient norm can exceed the natural term's by orders of
        // magnitude (the |W| backward path compounds per layer), and a joint
        // clip would let it drown the task gradient entirely.
        std::vector<Tensor> nat_grads;
        nat_grads.reserve(params.size());
        for (Parameter* p : params) {
          nat_grads.push_back(p->grad.clone());
          p->zero_grad();
        }

        const auto bounds =
            ibp.forward(IntervalTensor::around(batch.images, eps));
        const Tensor z = worst_case_logits(bounds, batch.labels);
        worst_loss = worst_ce.forward(z, batch.labels);
        verified_acc += top1_accuracy(z, batch.labels);
        Tensor gz = worst_ce.backward();
        gz.scale_(alpha);
        // Split dz into the bound gradients: the target column flows to lo,
        // every other column to hi.
        Tensor glo(gz.shape()), ghi = gz.clone();
        for (std::int64_t i = 0; i < gz.size(0); ++i) {
          const auto y = batch.labels[static_cast<std::size_t>(i)];
          glo.at(i, y) = gz.at(i, y);
          ghi.at(i, y) = 0.0f;
        }
        ibp.backward(glo, ghi);
        if (config.grad_clip > 0.0f) clip_grad_norm(params, config.grad_clip);
        for (std::size_t p = 0; p < params.size(); ++p) {
          params[p]->grad.add_(nat_grads[p]);
        }
      }

      loss_acc += (1.0f - alpha) * nat_loss + alpha * worst_loss;
      opt.step();
    }
    result.final_loss = loss_acc / static_cast<double>(config.batches_per_epoch);
    result.natural_accuracy =
        nat_acc / static_cast<double>(config.batches_per_epoch);
    result.verified_fraction =
        verified_acc / static_cast<double>(config.batches_per_epoch);
  }
  result.steps = step;
  return result;
}

}  // namespace pfi::robust
