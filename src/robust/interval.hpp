// Interval tensors: element-wise [lo, hi] bounds on activations, the
// representation underlying Interval Bound Propagation (Gowal et al. [13],
// used by the paper's Sec. IV-C adversarial-robustness study).
#pragma once

#include "tensor/tensor.hpp"

namespace pfi::robust {

/// An element-wise interval [lo, hi] over a tensor's values.
struct IntervalTensor {
  Tensor lo;
  Tensor hi;

  /// Interval around a point: [x - eps, x + eps].
  static IntervalTensor around(const Tensor& x, float eps);

  /// Degenerate interval [x, x].
  static IntervalTensor exactly(const Tensor& x);

  /// Throws unless lo <= hi element-wise and shapes match.
  void validate() const;

  /// Interval width hi - lo (a fresh tensor).
  Tensor width() const;
};

}  // namespace pfi::robust
