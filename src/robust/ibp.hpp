// Interval Bound Propagation (IBP) training — the machinery behind the
// paper's Sec. IV-C study of models robust to adversarial attacks.
//
// IbpNetwork wraps an existing feed-forward model (a Sequential of
// Conv2d / Linear / ReLU / MaxPool2d / Flatten / Dropout leaves) and
// propagates an input interval [x - eps, x + eps] to output logit bounds:
//
//   affine layers:  lo' = W+ lo + W- hi + b ,  hi' = W+ hi + W- lo + b
//                   (W+ = max(W, 0), W- = min(W, 0))
//   monotone layers (ReLU, MaxPool): applied to lo and hi independently.
//
// Implementation note: each affine layer gets four *shadow* modules (the W+
// pair and the W- pair) whose weights are refreshed from the wrapped layer
// on every forward. Backward reuses the shadows' verified backward code and
// maps their weight gradients back onto the original parameters through the
// sign masks — so IBP training trains the *original* model in place.
//
// The training loss follows the paper's Eq. (1) in its standard IBP form
// (Gowal et al. [13]):
//
//   J = (1 - alpha) * CE(z, y) + alpha * CE(z_worst, y)
//
// where z_worst picks the lower bound for the true class and upper bounds
// for all others — the worst case under any perturbation with Linf <= eps.
// Alpha and eps ramp linearly from 0 to their maxima between two training
// steps (the curriculum the paper describes: "we scale linearly both alpha
// and eps ... from iteration 41 to iteration 123").
#pragma once

#include <memory>

#include "data/synthetic.hpp"
#include "nn/nn.hpp"
#include "robust/interval.hpp"

namespace pfi::robust {

/// Interval-propagating wrapper around a feed-forward model.
class IbpNetwork {
 public:
  /// Flattens the model's leaf layers; throws on unsupported layer kinds.
  explicit IbpNetwork(std::shared_ptr<nn::Sequential> model);

  /// Propagate input bounds to output (logit) bounds.
  IntervalTensor forward(const IntervalTensor& input);

  /// Backpropagate gradients w.r.t. the output bounds and accumulate
  /// parameter gradients into the ORIGINAL model's parameters.
  void backward(const Tensor& grad_lo, const Tensor& grad_hi);

  /// Leaf layers being propagated through (after dropping Dropout).
  std::size_t num_layers() const { return layers_.size(); }

 private:
  struct Layer {
    nn::Module* original = nullptr;
    std::string kind;
    // Affine shadows (Conv2d / Linear): W+ applied to lo and hi, W- likewise.
    std::shared_ptr<nn::Module> plus_lo, plus_hi, minus_lo, minus_hi;
    // Monotone shadows (ReLU / MaxPool2d / Flatten): one per bound.
    std::shared_ptr<nn::Module> mono_lo, mono_hi;
  };

  void refresh_affine_weights(Layer& layer);
  void accumulate_affine_grads(Layer& layer);

  std::shared_ptr<nn::Sequential> model_;
  std::vector<Layer> layers_;
};

/// Training configuration for IBP (mirrors the paper's Sec. IV-C setup).
struct IbpTrainConfig {
  float alpha_max = 0.1f;   ///< weight of the worst-case CE term
  float eps_max = 0.25f;    ///< Linf perturbation radius being certified
  std::int64_t epochs = 4;
  std::int64_t batches_per_epoch = 30;
  std::int64_t batch_size = 16;
  float lr = 0.03f;
  float momentum = 0.9f;
  /// Curriculum: alpha and eps ramp linearly from 0 between these steps.
  std::int64_t ramp_start_step = 41;
  std::int64_t ramp_end_step = 123;
  std::uint64_t seed = 17;
  /// Global gradient-norm clip; IBP's |W|-path backward amplifies gradients,
  /// so training is clipped by default (0 disables).
  float grad_clip = 1.0f;
};

/// Outcome of IBP training.
struct IbpTrainResult {
  double final_loss = 0.0;
  double natural_accuracy = 0.0;   ///< clean train accuracy, last epoch
  double verified_fraction = 0.0;  ///< last-epoch lower bound on robustness:
                                   ///< fraction with z_worst still correct
  std::int64_t steps = 0;
};

/// Train `model` in place with the combined natural + worst-case loss.
IbpTrainResult train_ibp(const std::shared_ptr<nn::Sequential>& model,
                         const data::SyntheticDataset& ds,
                         const IbpTrainConfig& config);

/// Worst-case logits for targets y: z[y] = lo[y], z[k != y] = hi[k].
Tensor worst_case_logits(const IntervalTensor& bounds,
                         std::span<const std::int64_t> targets);

}  // namespace pfi::robust
