#include "robust/interval.hpp"

#include "util/error.hpp"

namespace pfi::robust {

IntervalTensor IntervalTensor::around(const Tensor& x, float eps) {
  PFI_CHECK(eps >= 0.0f) << "interval radius " << eps;
  IntervalTensor out{x.clone(), x.clone()};
  out.lo.apply_([eps](float v) { return v - eps; });
  out.hi.apply_([eps](float v) { return v + eps; });
  return out;
}

IntervalTensor IntervalTensor::exactly(const Tensor& x) {
  return {x.clone(), x.clone()};
}

void IntervalTensor::validate() const {
  PFI_CHECK(lo.defined() && hi.defined()) << "undefined interval tensor";
  PFI_CHECK(lo.shape() == hi.shape())
      << "interval bound shapes differ: " << lo.to_string() << " vs "
      << hi.to_string();
  auto l = lo.data();
  auto h = hi.data();
  for (std::size_t i = 0; i < l.size(); ++i) {
    PFI_CHECK(l[i] <= h[i]) << "interval inverted at element " << i << ": ["
                            << l[i] << ", " << h[i] << "]";
  }
}

Tensor IntervalTensor::width() const {
  Tensor w = hi.clone();
  w.add_(lo, -1.0f);
  return w;
}

}  // namespace pfi::robust
