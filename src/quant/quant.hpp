// Symmetric per-tensor INT8 quantization of activations.
//
// The paper's Fig. 4 campaign runs "six networks with INT8 neuron-
// quantization [38]" and injects single-bit flips in the quantized domain.
// This module provides:
//   * calibration  -- pick a scale from the max-abs activation value,
//   * quantize / dequantize round trips,
//   * bit-flip in the INT8 representation of a single float value, the exact
//     error model of Sec. IV-A.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace pfi::quant {

/// Scale for symmetric INT8: real = q * scale, q in [-127, 127].
struct QuantParams {
  float scale = 1.0f;

  /// Real-valued range representable at this scale.
  float max_representable() const { return scale * 127.0f; }
};

/// Calibrate from the maximum absolute value of a tensor.
QuantParams calibrate(const Tensor& t);

/// Calibrate from a known absolute bound.
QuantParams calibrate_absmax(float absmax);

/// Per-channel symmetric calibration along dim 0 (one QuantParams per
/// output channel — the native INT8 weight scheme). Unlike the per-tensor
/// calibrate, degenerate channels are REJECTED with a clear PFI_CHECK
/// rather than silently falling back: an empty channel or one with no
/// finite values (all NaN/Inf) has no meaningful scale, and emitting one
/// would let a campaign quantize garbage without noticing. An all-zero
/// channel still gets the standard 1/127 fallback scale — zero is a valid
/// calibration, just a degenerate range.
std::vector<QuantParams> calibrate_per_channel(const Tensor& t);

/// Quantize one value to INT8 (round-to-nearest, clamped to [-127, 127]).
std::int8_t quantize_value(float v, const QuantParams& qp);

/// Dequantize one INT8 code back to a float.
float dequantize_value(std::int8_t q, const QuantParams& qp);

/// Round-trip a value through INT8 (the quantization error a deployed
/// INT8 accelerator would exhibit).
float fake_quantize_value(float v, const QuantParams& qp);

/// Round-trip an entire tensor through INT8 in place.
void fake_quantize_(Tensor& t, const QuantParams& qp);

/// Flip bit `bit` (0..7, 7 = sign) of v's INT8 representation and return the
/// dequantized corrupted value — the single-bit-flip neuron error model used
/// for the paper's Fig. 4.
float flip_bit_int8(float v, int bit, const QuantParams& qp);

}  // namespace pfi::quant
