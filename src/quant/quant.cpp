#include "quant/quant.hpp"

#include <cmath>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace pfi::quant {

QuantParams calibrate(const Tensor& t) {
  PFI_CHECK(t.defined() && t.numel() > 0) << "calibrate on empty tensor";
  float absmax = 0.0f;
  for (const float v : t.data()) absmax = std::max(absmax, std::abs(v));
  return calibrate_absmax(absmax);
}

QuantParams calibrate_absmax(float absmax) {
  PFI_CHECK(absmax >= 0.0f && std::isfinite(absmax))
      << "calibrate_absmax(" << absmax << ")";
  QuantParams qp;
  // A zero range would make every scale degenerate; fall back to 1.0 so that
  // quantize(0) == 0 and bit flips still produce representable values.
  qp.scale = absmax > 0.0f ? absmax / 127.0f : 1.0f / 127.0f;
  return qp;
}

std::int8_t quantize_value(float v, const QuantParams& qp) {
  PFI_CHECK(qp.scale > 0.0f) << "quantize with scale " << qp.scale;
  const float q = std::nearbyint(v / qp.scale);
  const float clamped = std::min(127.0f, std::max(-127.0f, q));
  return static_cast<std::int8_t>(clamped);
}

float dequantize_value(std::int8_t q, const QuantParams& qp) {
  return static_cast<float>(q) * qp.scale;
}

float fake_quantize_value(float v, const QuantParams& qp) {
  return dequantize_value(quantize_value(v, qp), qp);
}

void fake_quantize_(Tensor& t, const QuantParams& qp) {
  for (auto& v : t.data()) v = fake_quantize_value(v, qp);
}

float flip_bit_int8(float v, int bit, const QuantParams& qp) {
  const std::int8_t q = quantize_value(v, qp);
  const std::int8_t corrupted = flip_int8_bit(q, bit);
  return dequantize_value(corrupted, qp);
}

}  // namespace pfi::quant
