#include "quant/quant.hpp"

#include <cmath>

#include "kernels/lowp.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace pfi::quant {

QuantParams calibrate(const Tensor& t) {
  PFI_CHECK(t.defined() && t.numel() > 0) << "calibrate on empty tensor";
  float absmax = 0.0f;
  for (const float v : t.data()) absmax = std::max(absmax, std::abs(v));
  return calibrate_absmax(absmax);
}

QuantParams calibrate_absmax(float absmax) {
  PFI_CHECK(absmax >= 0.0f && std::isfinite(absmax))
      << "calibrate_absmax(" << absmax << ")";
  QuantParams qp;
  // A zero range would make every scale degenerate; fall back to 1.0 so that
  // quantize(0) == 0 and bit flips still produce representable values.
  qp.scale = absmax > 0.0f ? absmax / 127.0f : 1.0f / 127.0f;
  return qp;
}

std::vector<QuantParams> calibrate_per_channel(const Tensor& t) {
  PFI_CHECK(t.defined() && t.dim() >= 1)
      << "calibrate_per_channel needs a tensor with a channel dimension";
  const std::int64_t channels = t.size(0);
  PFI_CHECK(channels > 0) << "calibrate_per_channel on 0 channels";
  const std::int64_t per = t.numel() / channels;
  PFI_CHECK(per > 0) << "calibrate_per_channel: channel 0 is empty (0 "
                        "values per channel) — no scale exists for an empty "
                        "channel";
  const float* p = t.data().data();
  std::vector<QuantParams> out(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    float absmax = 0.0f;
    std::int64_t finite = 0;
    for (std::int64_t i = 0; i < per; ++i) {
      const float av = std::abs(p[c * per + i]);
      if (std::isfinite(av)) {
        ++finite;
        if (av > absmax) absmax = av;
      }
    }
    PFI_CHECK(finite > 0)
        << "calibrate_per_channel: channel " << c << " has no finite values ("
        << per << " entries, all NaN/Inf) — refusing to emit a degenerate "
        << "scale";
    out[static_cast<std::size_t>(c)] = calibrate_absmax(absmax);
  }
  return out;
}

std::int8_t quantize_value(float v, const QuantParams& qp) {
  PFI_CHECK(qp.scale > 0.0f) << "quantize with scale " << qp.scale;
  // Delegates to the kernel layer's quantizer so emulated codes and native
  // packed codes are bit-identical by construction.
  return kernels::quantize_unit(v, qp.scale);
}

float dequantize_value(std::int8_t q, const QuantParams& qp) {
  return static_cast<float>(q) * qp.scale;
}

float fake_quantize_value(float v, const QuantParams& qp) {
  return dequantize_value(quantize_value(v, qp), qp);
}

void fake_quantize_(Tensor& t, const QuantParams& qp) {
  for (auto& v : t.data()) v = fake_quantize_value(v, qp);
}

float flip_bit_int8(float v, int bit, const QuantParams& qp) {
  const std::int8_t q = quantize_value(v, qp);
  const std::int8_t corrupted = flip_int8_bit(q, bit);
  return dequantize_value(corrupted, qp);
}

}  // namespace pfi::quant
