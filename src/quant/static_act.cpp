#include "quant/static_act.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace pfi::quant {

namespace {

/// Extract the integer after `"key":` in the single-line JSON written by
/// to_json (same needle-scan idiom as core/checkpoint.cpp — fixed keys,
/// unsigned integer values).
std::uint64_t json_uint_field(const std::string& text, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = text.find(needle);
  PFI_CHECK(at != std::string::npos)
      << "static calibration is missing field '" << key << "': " << text;
  std::size_t end = at + needle.size();
  while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
  const auto value =
      util::parse_uint(text.substr(at + needle.size(), end - at - needle.size()));
  PFI_CHECK(value.has_value())
      << "static calibration field '" << key << "' is not an integer: " << text;
  return *value;
}

/// Extract the JSON string value after `"key":"` starting the search at
/// `*pos`; advances *pos past the closing quote. All strings to_json writes
/// are json_escape'd, so the value ends at the first unescaped '"'.
std::string json_string_field(const std::string& text, const char* key,
                              std::size_t* pos) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = text.find(needle, *pos);
  PFI_CHECK(at != std::string::npos)
      << "static calibration layer entry is missing field '" << key
      << "': " << text;
  std::size_t end = at + needle.size();
  while (end < text.size() &&
         (text[end] != '"' || text[end - 1] == '\\')) {
    ++end;
  }
  PFI_CHECK(end < text.size())
      << "static calibration field '" << key << "' is unterminated: " << text;
  const std::string raw = text.substr(at + needle.size(), end - at - needle.size());
  *pos = end + 1;
  return util::json_unescape(raw);
}

}  // namespace

const LayerActScales* StaticActQuant::find(const std::string& path) const {
  for (const LayerActScales& l : layers) {
    if (l.path == path) return &l;
  }
  return nullptr;
}

std::uint64_t StaticActQuant::fingerprint() const {
  return util::fnv1a(to_json());
}

std::string StaticActQuant::to_json() const {
  std::ostringstream os;
  os << "{\"version\":1,\"weight_fp\":" << weight_fingerprint << ",\"layers\":[";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerActScales& l = layers[i];
    if (i != 0) os << ',';
    // Scales are serialized as exact IEEE-754 bit patterns, never decimal:
    // a loaded calibration must quantize bit-identically to the session
    // that wrote it.
    os << "{\"path\":\"" << util::json_escape(l.path) << "\",\"in_bits\":\""
       << util::float_bits_hex(l.in_scale) << "\",\"out_bits\":\""
       << util::float_bits_hex(l.out_scale) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

StaticActQuant StaticActQuant::from_json(const std::string& text) {
  StaticActQuant out;
  const std::uint64_t version = json_uint_field(text, "version");
  PFI_CHECK(version == 1) << "unsupported static calibration version "
                          << version;
  out.weight_fingerprint = json_uint_field(text, "weight_fp");
  const std::string needle = "\"layers\":[";
  const std::size_t at = text.find(needle);
  PFI_CHECK(at != std::string::npos)
      << "static calibration is missing the layers array: " << text;
  std::size_t pos = at + needle.size();
  while (pos < text.size() && text[pos] != ']') {
    if (text[pos] == ',' || text[pos] == '{') {
      ++pos;
      continue;
    }
    LayerActScales l;
    l.path = json_string_field(text, "path", &pos);
    l.in_scale = util::float_from_bits_hex(json_string_field(text, "in_bits", &pos));
    l.out_scale =
        util::float_from_bits_hex(json_string_field(text, "out_bits", &pos));
    while (pos < text.size() && text[pos] != '}') ++pos;
    PFI_CHECK(pos < text.size())
        << "static calibration layer entry is unterminated: " << text;
    ++pos;
    out.layers.push_back(std::move(l));
  }
  PFI_CHECK(pos < text.size())
      << "static calibration layers array is unterminated: " << text;
  return out;
}

void StaticActQuant::save(const std::string& path) const {
  util::atomic_write_file(path, to_json());
}

StaticActQuant StaticActQuant::load(const std::string& path) {
  PFI_CHECK(util::file_exists(path))
      << "static calibration file '" << path << "' does not exist";
  return from_json(util::read_file(path));
}

}  // namespace pfi::quant
