// quant::StaticActQuant — frozen per-layer activation scales for the
// native INT8 fast path.
//
// The dynamic native-INT8 path calibrates a fresh per-tensor activation
// scale from a finite-only absmax on EVERY forward — an O(input) sweep per
// layer per inference that dominates the end-to-end cost at campaign
// shapes (EXPERIMENTS.md's 0.20x `int8-path` entry). Static calibration
// does what deployed INT8 runtimes do: run the golden fp32 model once over
// representative inputs (core::calibrate_static_act drives trace::Profiler
// for the ranges), freeze one input scale and one output scale per
// instrumented layer, and reuse them for every subsequent inference. The
// absmax pass disappears, layer boundaries can stay INT8-resident
// (kernels::requantize_*_grid snaps outputs straight onto the consumer's
// frozen grid), and — like golden_qparams for weights — the frozen scales
// become part of the campaign's identity: the calibration fingerprint is
// folded into campaign fingerprints so a checkpoint or shard written under
// one calibration can never silently resume under another.
//
// Persistence is a single-line JSON file with every scale encoded as its
// exact IEEE-754 bit pattern (util::float_bits_hex): a save/load round
// trip is bit-faithful, so resumed campaigns quantize identically. The
// file also records a fingerprint of the model's weights at calibration
// time; FaultInjector refuses a calibration computed for different weights
// (stale-calibration refusal, tested in tests/test_native_quant.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pfi::quant {

/// Frozen symmetric activation scales of one instrumented layer.
struct LayerActScales {
  std::string path;       ///< dotted module path, e.g. "features.0"
  float in_scale = 0.0f;  ///< scale of the layer's INPUT activations
  float out_scale = 0.0f; ///< scale of the layer's OUTPUT activations
};

/// A complete static activation calibration: one LayerActScales per
/// instrumented layer, plus the fingerprint of the weights it was computed
/// against.
struct StaticActQuant {
  /// kernels::fingerprint folded over every model parameter, in
  /// named_parameters order, at calibration time.
  std::uint64_t weight_fingerprint = 0;
  std::vector<LayerActScales> layers;

  /// Scales for the layer at `path`, or nullptr when the calibration does
  /// not cover it (the layer then falls back to dynamic calibration).
  const LayerActScales* find(const std::string& path) const;

  /// FNV-1a over the exact serialized form — two calibrations agree on
  /// identity iff every scale bit and the weight fingerprint agree. Folded
  /// into campaign fingerprints (never 0 for a real calibration).
  std::uint64_t fingerprint() const;

  /// Single-line JSON with hex-encoded float bits; inverse pair.
  std::string to_json() const;
  static StaticActQuant from_json(const std::string& text);

  /// Atomic write / whole-file read of to_json()/from_json().
  void save(const std::string& path) const;
  static StaticActQuant load(const std::string& path);
};

}  // namespace pfi::quant
