#include "detect/yolo.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace pfi::detect {

using namespace pfi::nn;

namespace {

float sigmoid(float v) { return 1.0f / (1.0f + std::exp(-v)); }

/// Conv -> BatchNorm -> LeakyReLU, the Darknet building block.
ModulePtr conv_block(std::int64_t in, std::int64_t out, std::int64_t k,
                     std::int64_t stride, std::int64_t pad, Rng& rng) {
  auto seq = std::make_shared<Sequential>();
  seq->emplace<Conv2d>(
      Conv2dOptions{.in_channels = in, .out_channels = out, .kernel = k,
                    .stride = stride, .padding = pad, .bias = false},
      rng);
  seq->emplace<BatchNorm2d>(out);
  seq->emplace<LeakyReLU>(0.1f);
  return seq;
}

}  // namespace

std::shared_ptr<Sequential> make_yolo(const YoloConfig& cfg, Rng& rng) {
  PFI_CHECK(cfg.image_size % cfg.grid == 0)
      << "image size " << cfg.image_size << " not divisible by grid "
      << cfg.grid;
  const std::int64_t stride_total = cfg.image_size / cfg.grid;
  PFI_CHECK(stride_total == 8)
      << "backbone downsamples 8x; image_size/grid must be 8, got "
      << stride_total;

  auto net = std::make_shared<Sequential>();
  net->push(conv_block(cfg.channels, 16, 3, 1, 1, rng));
  net->push(conv_block(16, 32, 3, 2, 1, rng));   // S/2
  net->push(conv_block(32, 32, 3, 1, 1, rng));
  net->push(conv_block(32, 64, 3, 2, 1, rng));   // S/4
  net->push(conv_block(64, 64, 3, 1, 1, rng));
  net->push(conv_block(64, 96, 3, 2, 1, rng));   // S/8 == G
  // Raw prediction head: plain conv, no activation (decoded explicitly).
  net->emplace<Conv2d>(
      Conv2dOptions{.in_channels = 96, .out_channels = cfg.depth(),
                    .kernel = 1},
      rng);
  net->set_name("yolo");
  return net;
}

std::vector<Detection> decode(const Tensor& raw, const YoloConfig& cfg,
                              std::int64_t batch_index,
                              float confidence_threshold, float nms_iou) {
  PFI_CHECK(raw.dim() == 4 && raw.size(1) == cfg.depth() &&
            raw.size(2) == cfg.grid && raw.size(3) == cfg.grid)
      << "raw head output " << raw.to_string() << " does not match config (D="
      << cfg.depth() << ", G=" << cfg.grid << ")";
  PFI_CHECK(batch_index >= 0 && batch_index < raw.size(0))
      << "batch index " << batch_index << " for " << raw.to_string();

  const auto g = cfg.grid;
  std::vector<Detection> dets;
  for (std::int64_t gy = 0; gy < g; ++gy) {
    for (std::int64_t gx = 0; gx < g; ++gx) {
      const float conf = sigmoid(raw.at(batch_index, 4, gy, gx));
      if (!(conf >= confidence_threshold)) continue;  // NaN-safe rejection
      Detection d;
      d.confidence = conf;
      d.cx = (static_cast<float>(gx) +
              sigmoid(raw.at(batch_index, 0, gy, gx))) /
             static_cast<float>(g);
      d.cy = (static_cast<float>(gy) +
              sigmoid(raw.at(batch_index, 1, gy, gx))) /
             static_cast<float>(g);
      d.w = sigmoid(raw.at(batch_index, 2, gy, gx));
      d.h = sigmoid(raw.at(batch_index, 3, gy, gx));
      // Class: argmax over logits.
      std::int64_t best = 0;
      float best_v = raw.at(batch_index, 5, gy, gx);
      for (std::int64_t c = 1; c < cfg.num_classes; ++c) {
        const float v = raw.at(batch_index, 5 + c, gy, gx);
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      d.cls = best;
      dets.push_back(d);
    }
  }
  return nms(std::move(dets), nms_iou);
}

YoloLossResult yolo_loss(
    const Tensor& raw,
    const std::vector<std::vector<data::GroundTruthBox>>& truth,
    const YoloConfig& cfg, const YoloLossConfig& weights) {
  const auto n = raw.size(0), g = cfg.grid;
  PFI_CHECK(static_cast<std::int64_t>(truth.size()) == n)
      << "yolo_loss: " << truth.size() << " annotation sets for batch " << n;

  YoloLossResult result;
  result.grad_raw = Tensor(raw.shape());
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);

  for (std::int64_t b = 0; b < n; ++b) {
    // Cell -> ground truth assignment (first box claims the cell).
    std::vector<const data::GroundTruthBox*> cell_gt(
        static_cast<std::size_t>(g * g), nullptr);
    for (const auto& box : truth[static_cast<std::size_t>(b)]) {
      const auto gx = std::min<std::int64_t>(
          g - 1, static_cast<std::int64_t>(box.cx * static_cast<float>(g)));
      const auto gy = std::min<std::int64_t>(
          g - 1, static_cast<std::int64_t>(box.cy * static_cast<float>(g)));
      auto& slot = cell_gt[static_cast<std::size_t>(gy * g + gx)];
      if (slot == nullptr) slot = &box;
    }

    for (std::int64_t gy = 0; gy < g; ++gy) {
      for (std::int64_t gx = 0; gx < g; ++gx) {
        const auto* gt = cell_gt[static_cast<std::size_t>(gy * g + gx)];
        const float conf_raw = raw.at(b, 4, gy, gx);
        const float conf = sigmoid(conf_raw);

        if (gt == nullptr) {
          // No-object cell: push confidence toward zero, down-weighted.
          total += weights.lambda_noobj * conf * conf;
          result.grad_raw.at(b, 4, gy, gx) = inv_n * weights.lambda_noobj *
                                             2.0f * conf * conf *
                                             (1.0f - conf);
          continue;
        }

        // Geometry (sigmoid space) targets.
        const float targets[4] = {
            gt->cx * static_cast<float>(g) - static_cast<float>(gx),
            gt->cy * static_cast<float>(g) - static_cast<float>(gy),
            gt->w, gt->h};
        for (int k = 0; k < 4; ++k) {
          const float r = raw.at(b, k, gy, gx);
          const float s = sigmoid(r);
          const float err = s - targets[k];
          total += weights.lambda_coord * err * err;
          result.grad_raw.at(b, k, gy, gx) =
              inv_n * weights.lambda_coord * 2.0f * err * s * (1.0f - s);
        }

        // Confidence toward 1.
        const float cerr = conf - 1.0f;
        total += cerr * cerr;
        result.grad_raw.at(b, 4, gy, gx) =
            inv_n * 2.0f * cerr * conf * (1.0f - conf);

        // Class cross-entropy over logits.
        float mx = raw.at(b, 5, gy, gx);
        for (std::int64_t c = 1; c < cfg.num_classes; ++c) {
          mx = std::max(mx, raw.at(b, 5 + c, gy, gx));
        }
        float sum = 0.0f;
        for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
          sum += std::exp(raw.at(b, 5 + c, gy, gx) - mx);
        }
        for (std::int64_t c = 0; c < cfg.num_classes; ++c) {
          const float p = std::exp(raw.at(b, 5 + c, gy, gx) - mx) / sum;
          result.grad_raw.at(b, 5 + c, gy, gx) =
              inv_n * (p - (c == gt->cls ? 1.0f : 0.0f));
          if (c == gt->cls) total += -std::log(std::max(1e-12f, p));
        }
      }
    }
  }
  result.loss = static_cast<float>(total * inv_n);
  return result;
}

float train_yolo(nn::Module& model, const data::SceneSpec& scenes,
                 const YoloConfig& cfg, const YoloTrainConfig& train_cfg) {
  PFI_CHECK(scenes.size == cfg.image_size)
      << "scene size " << scenes.size << " != detector image size "
      << cfg.image_size;
  Rng rng(train_cfg.seed);
  Sgd opt(model.parameters(),
          {.lr = train_cfg.lr, .momentum = train_cfg.momentum,
           .weight_decay = 1e-4f});
  model.train();
  float epoch_loss = 0.0f;
  for (std::int64_t epoch = 0; epoch < train_cfg.epochs; ++epoch) {
    epoch_loss = 0.0f;
    for (std::int64_t b = 0; b < train_cfg.batches_per_epoch; ++b) {
      const auto batch =
          data::make_scene_batch(scenes, train_cfg.batch_size, rng);
      const Tensor raw = model(batch.images);
      auto res = yolo_loss(raw, batch.boxes, cfg);
      epoch_loss += res.loss;
      opt.zero_grad();
      model.run_backward(res.grad_raw);
      opt.step();
    }
    epoch_loss /= static_cast<float>(train_cfg.batches_per_epoch);
    opt.set_lr(opt.lr() * 0.9f);
  }
  return epoch_loss;
}

double evaluate_yolo(nn::Module& model, const data::SceneSpec& scenes,
                     const YoloConfig& cfg, std::int64_t num_scenes, Rng& rng,
                     float confidence_threshold) {
  PFI_CHECK(num_scenes > 0) << "evaluate_yolo num_scenes=" << num_scenes;
  const bool was_training = model.is_training();
  model.eval();
  double f1 = 0.0;
  for (std::int64_t i = 0; i < num_scenes; ++i) {
    const auto scene = data::make_scene(scenes, rng);
    const Tensor raw = model(scene.image);
    const auto dets = decode(raw, cfg, 0, confidence_threshold);
    f1 += match_against_truth(dets, scene.boxes).f1();
  }
  model.train(was_training);
  return f1 / static_cast<double>(num_scenes);
}

}  // namespace pfi::detect
