// Mini YOLO-style single-scale grid detector (the paper's Fig. 5 substrate).
//
// The network is a small conv backbone ending in a 1x1 conv that emits, for
// every cell of a GxG grid, (tx, ty, tw, th, tconf) + per-class logits.
// Decoding applies sigmoids to position/size/confidence (YOLOv1-style direct
// prediction) and argmax over the class logits, then class-agnostic NMS.
//
// Training uses the YOLOv1 recipe: squared error on the sigmoid-activated
// geometry and confidence (down-weighting no-object cells) plus softmax
// cross-entropy for the class of object cells. Gradients w.r.t. the raw
// head output are computed analytically and pushed through the backbone
// with Module::run_backward.
#pragma once

#include <memory>

#include "data/detection_scenes.hpp"
#include "detect/boxes.hpp"
#include "nn/nn.hpp"

namespace pfi::detect {

/// Detector geometry.
struct YoloConfig {
  std::int64_t image_size = 48;
  std::int64_t grid = 6;          ///< G: output is GxG cells
  std::int64_t num_classes = 2;
  std::int64_t channels = 3;

  /// Channels per cell in the raw head output: 5 geometry/confidence + C.
  std::int64_t depth() const { return 5 + num_classes; }
};

/// YOLO loss weighting (YOLOv1 defaults).
struct YoloLossConfig {
  float lambda_coord = 5.0f;   ///< weight of geometry error in object cells
  float lambda_noobj = 0.5f;   ///< weight of confidence error elsewhere
};

/// Build the detector backbone: input [N, C, S, S] -> raw [N, depth, G, G].
std::shared_ptr<nn::Sequential> make_yolo(const YoloConfig& cfg, Rng& rng);

/// Decode a raw head output into thresholded detections (with NMS).
std::vector<Detection> decode(const Tensor& raw, const YoloConfig& cfg,
                              std::int64_t batch_index,
                              float confidence_threshold = 0.5f,
                              float nms_iou = 0.45f);

/// Loss + gradient of one batch against ground truth.
struct YoloLossResult {
  float loss = 0.0f;
  Tensor grad_raw;  ///< dL/d(raw head output)
};
YoloLossResult yolo_loss(const Tensor& raw,
                         const std::vector<std::vector<data::GroundTruthBox>>& truth,
                         const YoloConfig& cfg,
                         const YoloLossConfig& weights = {});

/// Train a detector on synthetic scenes. Returns final-epoch mean loss.
struct YoloTrainConfig {
  std::int64_t epochs = 8;
  std::int64_t batches_per_epoch = 25;
  std::int64_t batch_size = 8;
  float lr = 0.02f;
  float momentum = 0.9f;
  std::uint64_t seed = 5;
};
float train_yolo(nn::Module& model, const data::SceneSpec& scenes,
                 const YoloConfig& cfg, const YoloTrainConfig& train_cfg);

/// Mean F1 of the detector over freshly generated scenes.
double evaluate_yolo(nn::Module& model, const data::SceneSpec& scenes,
                     const YoloConfig& cfg, std::int64_t num_scenes, Rng& rng,
                     float confidence_threshold = 0.5f);

}  // namespace pfi::detect
