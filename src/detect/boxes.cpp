#include "detect/boxes.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pfi::detect {

namespace {

float iou_xywh(float acx, float acy, float aw, float ah, float bcx, float bcy,
               float bw, float bh) {
  const float ax0 = acx - aw / 2, ax1 = acx + aw / 2;
  const float ay0 = acy - ah / 2, ay1 = acy + ah / 2;
  const float bx0 = bcx - bw / 2, bx1 = bcx + bw / 2;
  const float by0 = bcy - bh / 2, by1 = bcy + bh / 2;
  const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
  const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
  const float inter = ix * iy;
  const float uni = aw * ah + bw * bh - inter;
  return uni <= 0.0f ? 0.0f : inter / uni;
}

}  // namespace

float iou(const Detection& a, const Detection& b) {
  return iou_xywh(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

float iou(const Detection& a, const data::GroundTruthBox& b) {
  return iou_xywh(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

std::vector<Detection> nms(std::vector<Detection> dets, float iou_threshold) {
  PFI_CHECK(iou_threshold > 0.0f && iou_threshold <= 1.0f)
      << "nms threshold " << iou_threshold;
  std::sort(dets.begin(), dets.end(), [](const auto& a, const auto& b) {
    return a.confidence > b.confidence;
  });
  std::vector<Detection> kept;
  for (const auto& d : dets) {
    const bool suppressed =
        std::any_of(kept.begin(), kept.end(), [&](const auto& k) {
          return iou(d, k) > iou_threshold;
        });
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

DetectionDiff diff_detections(const std::vector<Detection>& golden,
                              const std::vector<Detection>& faulty,
                              float iou_threshold) {
  DetectionDiff diff;
  std::vector<bool> golden_used(golden.size(), false);
  for (const auto& f : faulty) {
    float best_iou = 0.0f;
    std::size_t best = golden.size();
    for (std::size_t i = 0; i < golden.size(); ++i) {
      if (golden_used[i]) continue;
      const float v = iou(f, golden[i]);
      if (v > best_iou) {
        best_iou = v;
        best = i;
      }
    }
    if (best < golden.size() && best_iou >= iou_threshold) {
      golden_used[best] = true;
      if (golden[best].cls == f.cls) {
        ++diff.matched;
      } else {
        ++diff.reclassified;
      }
    } else {
      ++diff.phantoms;
    }
  }
  for (const bool used : golden_used) {
    if (!used) ++diff.missed;
  }
  return diff;
}

MatchStats match_against_truth(const std::vector<Detection>& dets,
                               const std::vector<data::GroundTruthBox>& truth,
                               float iou_threshold) {
  MatchStats stats;
  std::vector<bool> truth_used(truth.size(), false);
  // Greedy: highest-confidence detections claim ground truth first.
  std::vector<Detection> sorted = dets;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.confidence > b.confidence;
  });
  for (const auto& d : sorted) {
    float best_iou = 0.0f;
    std::size_t best = truth.size();
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (truth_used[i] || truth[i].cls != d.cls) continue;
      const float v = iou(d, truth[i]);
      if (v > best_iou) {
        best_iou = v;
        best = i;
      }
    }
    if (best < truth.size() && best_iou >= iou_threshold) {
      truth_used[best] = true;
      ++stats.true_positives;
    } else {
      ++stats.false_positives;
    }
  }
  for (const bool used : truth_used) {
    if (!used) ++stats.false_negatives;
  }
  return stats;
}

double average_precision(
    const std::vector<ScoredDetection>& detections,
    const std::vector<std::vector<data::GroundTruthBox>>& truth,
    std::int64_t cls, float iou_threshold) {
  // Count ground-truth instances of this class.
  std::int64_t total_gt = 0;
  for (const auto& scene : truth) {
    for (const auto& box : scene) total_gt += box.cls == cls ? 1 : 0;
  }
  if (total_gt == 0) return 0.0;

  // Rank this class's detections by confidence.
  std::vector<ScoredDetection> ranked;
  for (const auto& d : detections) {
    PFI_CHECK(d.scene >= 0 &&
              d.scene < static_cast<std::int64_t>(truth.size()))
        << "detection references scene " << d.scene << " of " << truth.size();
    if (d.det.cls == cls) ranked.push_back(d);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.det.confidence > b.det.confidence;
  });

  // Greedy matching: each ground truth may be claimed once.
  std::vector<std::vector<bool>> claimed(truth.size());
  for (std::size_t s = 0; s < truth.size(); ++s) {
    claimed[s].assign(truth[s].size(), false);
  }
  std::vector<double> precision, recall;
  std::int64_t tp = 0, fp = 0;
  for (const auto& d : ranked) {
    const auto& scene_truth = truth[static_cast<std::size_t>(d.scene)];
    float best_iou = 0.0f;
    std::size_t best = scene_truth.size();
    for (std::size_t g = 0; g < scene_truth.size(); ++g) {
      if (scene_truth[g].cls != cls ||
          claimed[static_cast<std::size_t>(d.scene)][g]) {
        continue;
      }
      const float v = iou(d.det, scene_truth[g]);
      if (v > best_iou) {
        best_iou = v;
        best = g;
      }
    }
    if (best < scene_truth.size() && best_iou >= iou_threshold) {
      claimed[static_cast<std::size_t>(d.scene)][best] = true;
      ++tp;
    } else {
      ++fp;
    }
    precision.push_back(static_cast<double>(tp) /
                        static_cast<double>(tp + fp));
    recall.push_back(static_cast<double>(tp) / static_cast<double>(total_gt));
  }
  if (precision.empty()) return 0.0;

  // All-point interpolation: make precision monotonically non-increasing
  // from the right, then integrate over recall steps.
  for (std::size_t i = precision.size() - 1; i > 0; --i) {
    precision[i - 1] = std::max(precision[i - 1], precision[i]);
  }
  double ap = recall[0] * precision[0];
  for (std::size_t i = 1; i < precision.size(); ++i) {
    ap += (recall[i] - recall[i - 1]) * precision[i];
  }
  return ap;
}

double mean_average_precision(
    const std::vector<ScoredDetection>& detections,
    const std::vector<std::vector<data::GroundTruthBox>>& truth,
    std::int64_t num_classes, float iou_threshold) {
  PFI_CHECK(num_classes > 0) << "mean_average_precision num_classes="
                             << num_classes;
  double total = 0.0;
  std::int64_t populated = 0;
  for (std::int64_t cls = 0; cls < num_classes; ++cls) {
    std::int64_t gt = 0;
    for (const auto& scene : truth) {
      for (const auto& box : scene) gt += box.cls == cls ? 1 : 0;
    }
    if (gt == 0) continue;  // class absent from the evaluation set
    total += average_precision(detections, truth, cls, iou_threshold);
    ++populated;
  }
  return populated == 0 ? 0.0 : total / static_cast<double>(populated);
}

}  // namespace pfi::detect
