// Bounding-box utilities: IoU, non-maximum suppression, and detection
// diffing (the measurement behind the paper's Fig. 5 qualitative result —
// phantom objects appearing under perturbation).
#pragma once

#include <cstdint>
#include <vector>

#include "data/detection_scenes.hpp"

namespace pfi::detect {

/// A decoded detection in normalized [0,1] coordinates.
struct Detection {
  float cx = 0.0f;
  float cy = 0.0f;
  float w = 0.0f;
  float h = 0.0f;
  float confidence = 0.0f;
  std::int64_t cls = 0;
};

/// Intersection-over-union of two center-format boxes.
float iou(const Detection& a, const Detection& b);
float iou(const Detection& a, const data::GroundTruthBox& b);

/// Greedy class-agnostic non-maximum suppression; keeps detections sorted by
/// confidence, dropping any with IoU > threshold against a kept one.
std::vector<Detection> nms(std::vector<Detection> dets, float iou_threshold);

/// Outcome of matching a faulty detection set against the golden set.
struct DetectionDiff {
  std::int64_t matched = 0;        ///< same object, same class
  std::int64_t reclassified = 0;   ///< same object, class changed
  std::int64_t phantoms = 0;       ///< in faulty but not golden (Fig. 5b!)
  std::int64_t missed = 0;         ///< in golden but not faulty
  bool corrupted() const {
    return phantoms > 0 || missed > 0 || reclassified > 0;
  }
};

/// Greedy IoU matching (threshold 0.5 by default) of faulty vs golden
/// detections.
DetectionDiff diff_detections(const std::vector<Detection>& golden,
                              const std::vector<Detection>& faulty,
                              float iou_threshold = 0.5f);

/// Detection quality against ground truth (used to verify the detector
/// actually works before injecting).
struct MatchStats {
  std::int64_t true_positives = 0;
  std::int64_t false_positives = 0;
  std::int64_t false_negatives = 0;
  double precision() const {
    const auto d = true_positives + false_positives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
  double recall() const {
    const auto d = true_positives + false_negatives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Match detections against ground truth with class-aware greedy IoU.
MatchStats match_against_truth(const std::vector<Detection>& dets,
                               const std::vector<data::GroundTruthBox>& truth,
                               float iou_threshold = 0.5f);

/// A detection tagged with the scene it came from, for dataset-level
/// average-precision computation.
struct ScoredDetection {
  std::int64_t scene = 0;
  Detection det;
};

/// COCO/VOC-style average precision for one class: detections across all
/// scenes are ranked by confidence, matched greedily against unclaimed
/// ground truth (IoU >= threshold, same class), and AP is the area under
/// the resulting precision-recall curve (all-point interpolation).
/// Returns 0 when the class has no ground-truth instances.
double average_precision(const std::vector<ScoredDetection>& detections,
                         const std::vector<std::vector<data::GroundTruthBox>>& truth,
                         std::int64_t cls, float iou_threshold = 0.5f);

/// Mean AP over classes [0, num_classes).
double mean_average_precision(
    const std::vector<ScoredDetection>& detections,
    const std::vector<std::vector<data::GroundTruthBox>>& truth,
    std::int64_t num_classes, float iou_threshold = 0.5f);

}  // namespace pfi::detect
