// pfi::kernels — deterministic tiled compute kernels for the fp32 hot path.
//
// Every campaign the library runs is bottlenecked on GEMM: Conv2d lowers to
// im2col + GEMM per (sample, group), Linear is a GEMM against W^T, and the
// tensor-level matmul backs everything else. This layer replaces the scalar
// ikj loops with a cache-blocked, register-tiled kernel (packed A/B panels,
// MRx16 microkernel, optional AVX2+FMA path behind runtime dispatch) without
// giving up the library's core guarantee: results are a pure function of the
// operands, NOT of how the work was tiled or scheduled.
//
// Determinism by fixed-k-chain tiling
// -----------------------------------
// Each output element C[i,j] is produced by exactly one accumulation chain:
//
//     acc = init(epilogue);  for k = 0..K-1 ascending: acc = fma(a_ik, b_kj, acc)
//
// The chain is anchored to the element, not the tile. Macro tiles (mc x nc),
// the k panel size (kc), the microkernel height (mr), and the thread that
// executes a tile only change WHEN a partial chain is flushed to memory —
// fp32 stores are exact, so the value is bit-identical for every block
// configuration and every thread count. The scalar microkernel uses
// std::fma and the AVX2 path uses vfmadd, which implement the same
// correctly-rounded fused operation, so runtime dispatch does not change
// bits either. This is the same guarantee the campaign engine makes at
// trial granularity (PR 1), pushed down into the kernels.
//
// IEEE faithfulness
// -----------------
// The old loops skipped zero operands (`if (av == 0.0f) continue;`) as a
// throughput hack. That silently dropped 0 * Inf -> NaN and NaN propagation
// — exactly the values fault-injection campaigns create. No kernel in this
// layer skips any operand: an injected Inf or NaN always reaches the output
// the way real hardware would propagate it.
//
// Escape hatch: PFI_KERNEL=naive routes every GEMM through the retained
// reference kernel (same IEEE semantics, no tiling) for bisecting numerical
// differences; PFI_KERNEL_THREADS=N enables intra-op parallelism over the
// fixed tile grid (default 1 — campaign-level parallelism already saturates
// the machine, and the tile grid keeps results identical either way).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/error.hpp"

namespace pfi::kernels {

/// Microkernel width: every packed B panel is kNR columns wide (two AVX2
/// vectors per row, the register-pressure sweet spot for the 6x16 kernel).
inline constexpr int kNR = 16;

/// Kernel implementation selector (PFI_KERNEL=naive|blocked).
enum class Impl { kNaive, kBlocked };

/// Active implementation: PFI_KERNEL env var, read once, overridable for
/// tests/bisection via set_impl().
Impl active_impl();
void set_impl(Impl impl);

/// True when the CPU supports the AVX2+FMA microkernel (runtime dispatch).
bool simd_available();

/// Cache-block sizes. mc/nc are rounded up to multiples of mr/kNR so macro
/// tiles always align with packed panel boundaries; mr must be 4, 6, or 8.
struct BlockConfig {
  std::int64_t mc = 48;   ///< rows of C per macro tile (multiple of 4, 6, 8)
  std::int64_t nc = 240;  ///< cols of C per macro tile
  std::int64_t kc = 256;  ///< k-panel depth flushed to C per pass
  int mr = 6;             ///< microkernel height (4, 6, or 8; 6 saturates AVX2)
};
const BlockConfig& block_config();
void set_block_config(BlockConfig cfg);

/// Intra-op worker count for the fixed tile grid (PFI_KERNEL_THREADS,
/// default 1). Values > 1 split the tile grid over an internal pool; the
/// grid itself never depends on this, so outputs are bit-identical.
int threads();
void set_threads(int n);

namespace detail {
/// Run `tiles` independent tile tasks over the intra-op pool configured by
/// threads() — inline when single-threaded, down to one tile, or nested
/// inside another kernel region (re-entering the pool would deadlock).
/// Shared by the fp32 core and the INT8 core in lowp.cpp; callers must make
/// the task decomposition independent of the thread count.
void run_tiles(std::int64_t tiles,
               const std::function<void(std::int64_t)>& fn);
}  // namespace detail

/// How a microkernel initializes the accumulator chain of the FIRST k panel
/// (later panels always resume from the partial sums stored in C).
enum class Epilogue {
  kZero,        ///< C = A*B
  kAccumulate,  ///< C += A*B (grad accumulation)
  kBiasRow,     ///< C = bias[i] + A*B (conv bias, one value per output row)
  kBiasCol,     ///< C = bias[j] + A*B (linear bias, one value per output col)
  /// Fused ReLU variants: the base epilogue plus an elementwise
  /// rectification (v > 0 ? v : 0) over the finished tile — applied AFTER
  /// the full K sweep, inside the same macro-tile task, so the result is
  /// bit-identical to the unfused GEMM followed by nn::ReLU (max is
  /// elementwise; it cannot change any accumulation chain).
  kReluZero,     ///< C = relu(A*B)
  kReluBiasRow,  ///< C = relu(bias[i] + A*B) — the conv->ReLU fast path
};

/// A matrix packed into microkernel panels. A-side packs hold mr-row panels
/// of a logical MxK matrix; B-side packs hold kNR-column panels of a logical
/// KxN matrix. Padding rows/cols are zero-filled.
struct PackedPanels {
  std::vector<float> data;
  std::int64_t k = 0;     ///< shared (inner) dimension
  std::int64_t span = 0;  ///< M for A-side, N for B-side
  int panel = 0;          ///< mr for A-side, kNR for B-side
  bool empty() const { return data.empty(); }
};

/// Pack logical A(MxK) into mr-row panels. trans_a reads A(m,k) = a[k*lda+m].
void pack_a(std::int64_t m, std::int64_t k, const float* a, std::int64_t lda,
            bool trans_a, int mr, PackedPanels& out);

/// Pack logical B(KxN) into kNR-column panels. trans_b reads B(k,n) = b[n*ldb+k].
void pack_b(std::int64_t k, std::int64_t n, const float* b, std::int64_t ldb,
            bool trans_b, PackedPanels& out);

/// Blocked GEMM over pre-packed operands: C(MxN, ldc) = epilogue + A*B.
/// `bias` is required for the bias epilogues (length M for kBiasRow, N for
/// kBiasCol) and ignored otherwise.
void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                 const PackedPanels& a, const PackedPanels& b, float* c,
                 std::int64_t ldc, Epilogue epilogue = Epilogue::kZero,
                 const float* bias = nullptr);

/// Blocked GEMM with a cached A pack and a per-call B operand (the conv
/// forward shape: A = weights, B = im2col buffer).
void gemm_prepacked_a(std::int64_t m, std::int64_t n, std::int64_t k,
                      const PackedPanels& a, const float* b, std::int64_t ldb,
                      bool trans_b, float* c, std::int64_t ldc,
                      Epilogue epilogue = Epilogue::kZero,
                      const float* bias = nullptr);

/// Blocked GEMM with a cached B pack and a per-call A operand (the linear
/// forward shape: B = W^T, A = activations).
void gemm_prepacked_b(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, std::int64_t lda, bool trans_a,
                      const PackedPanels& b, float* c, std::int64_t ldc,
                      Epilogue epilogue = Epilogue::kZero,
                      const float* bias = nullptr);

/// Blocked GEMM over raw operands (packs into thread-local scratch).
void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, std::int64_t lda, bool trans_a,
                  const float* b, std::int64_t ldb, bool trans_b, float* c,
                  std::int64_t ldc, Epilogue epilogue = Epilogue::kZero,
                  const float* bias = nullptr);

/// Retained IEEE-faithful reference kernel (the old ikj loop minus the
/// zero-skips): differential-test oracle and the PFI_KERNEL=naive path.
void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                std::int64_t lda, bool trans_a, const float* b,
                std::int64_t ldb, bool trans_b, float* c, std::int64_t ldc,
                Epilogue epilogue = Epilogue::kZero,
                const float* bias = nullptr);

/// Dispatching GEMM: routes to naive_gemm or gemm_blocked per active_impl().
void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
          bool trans_b, float* c, std::int64_t ldc,
          Epilogue epilogue = Epilogue::kZero, const float* bias = nullptr);

/// Position-mixed FNV-1a over the exact bit patterns of n floats. A single
/// flipped bit anywhere always changes the digest — the property weight
/// injection needs.
std::uint64_t fingerprint(const float* p, std::int64_t n);

/// Cached packed panels of a module's weight matrix. The pack is reused
/// while the weight bits are unchanged (verified by fingerprint on every
/// lookup, so mutation through tensor aliases — the library's injection
/// mechanism — can never serve a stale pack) and droppable eagerly via
/// invalidate() (the FaultInjector calls this on every weight-mutation
/// path so restores free the stale pack immediately).
class WeightPackCache {
 public:
  /// Packed A-side panels of w (logical MxK), repacking when the weight
  /// bits or the configured mr changed.
  const PackedPanels& packed_a(std::int64_t m, std::int64_t k, const float* w,
                               std::int64_t lda, bool trans_a);

  /// Packed B-side panels of w (logical KxN).
  const PackedPanels& packed_b(std::int64_t k, std::int64_t n, const float* w,
                               std::int64_t ldb, bool trans_b);

  /// Drop the cached pack (weight mutated or about to be restored).
  void invalidate() { valid_ = false; }
  bool cached() const { return valid_; }

 private:
  PackedPanels packed_;
  std::uint64_t fp_ = 0;
  int mr_ = 0;
  bool valid_ = false;
};

}  // namespace pfi::kernels
