// pfi::kernels low-precision inference paths: native INT8 GEMM and an
// fp16/bf16 storage format for weights and activations.
//
// INT8 GEMM
// ---------
// Operands are symmetric signed-INT8 codes (no zero point), pre-widened to
// i16 at pack time and laid out in k-PAIR panels so the microkernel can use
// `_mm256_madd_epi16` (and, when the CPU has it, the fused VNNI form
// `_mm256_dpwssd_epi32`): each 32-bit lane accumulates a0*b0 + a1*b1 for
// one output column. Widening to i16 is what makes the dot products EXACT —
// the classic `_mm256_maddubs_epi16` u8*s8 trick saturates its intermediate
// i16 pair sums (255*127*2 > 32767) and is therefore unsound for a
// bit-deterministic tool. With |code| <= 127 the i16 pair products are at
// most 2*127^2 = 32258, so madd never saturates, and the i32 accumulator is
// exact for K <= kMaxI8Depth. Integer addition is associative, so the
// result is bit-identical for EVERY tile grid, ISA (scalar / AVX2 madd /
// VNNI), and thread count — a stronger form of the fp32 kernel's
// fixed-chain guarantee. The fixed tile grid and ascending-k chains are
// kept anyway so the execution structure mirrors kernels.cpp.
//
// Quantization
// ------------
// Weights use per-output-channel symmetric scales (one QuantParams-style
// scale per GEMM row of A, or per column of B for the linear W^T shape);
// activations use one dynamic per-tensor scale from a finite-only absmax.
// quantize_unit() is the single scalar quantizer shared with
// quant::quantize_value, so kernel codes and the injector's INT8 error
// models agree bit-for-bit: a fault that flips bit b of a code produces
// exactly the code the packed operand would hold. Non-finite activations
// saturate deterministically (+-Inf -> +-127, NaN -> -127) instead of
// aborting, because upstream fp32-layer faults can and do produce them.
//
// fp16/bf16 storage
// -----------------
// Weights and activations are stored as 16-bit codes (IEEE binary16 or
// bfloat16, via the software converters in util/bits.hpp) and widened back
// to fp32 on the fly for the existing fp32 microkernels. Widening is exact,
// so the result equals the fp32 GEMM over the pre-narrowed operands and
// inherits every fp32 determinism guarantee.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "kernels/kernels.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace pfi::kernels {

/// Native low-precision mode of a module's forward path.
enum class LowPrec { kNone, kInt8, kFp16, kBf16 };

/// 16-bit storage format selector.
enum class Storage16 { kFp16, kBf16 };

/// INT8 microkernel ISA. kAuto resolves to the best supported at first use;
/// set_i8_isa() forces a specific one (tests pin scalar-vs-SIMD
/// bit-identity with it).
enum class I8Isa { kAuto, kScalar, kMadd, kVnni };
I8Isa active_i8_isa();
void set_i8_isa(I8Isa isa);

/// Deepest K for which an i32 accumulator of 127*127 products cannot
/// overflow: floor((2^31 - 1) / 127^2).
inline constexpr std::int64_t kMaxI8Depth = 133152;

/// Symmetric scale from a (finite, non-negative) absolute maximum — the
/// same formula as quant::calibrate_absmax, duplicated here because the
/// kernel layer cannot depend on the tensor library.
inline float scale_from_absmax(float absmax) {
  return absmax > 0.0f ? absmax / 127.0f : 1.0f / 127.0f;
}

/// The single scalar quantizer: round-to-nearest-even onto the symmetric
/// INT8 grid, saturating. quant::quantize_value delegates here, so codes
/// computed by packs and by the injector's error models are bit-identical.
/// NaN deterministically maps to -127, +-Inf to +-127.
inline std::int8_t quantize_unit(float v, float scale) {
  const float q = std::nearbyint(v / scale);
  const float clamped = std::min(127.0f, std::max(-127.0f, q));
  return static_cast<std::int8_t>(clamped);
}

/// Quantize a contiguous row of n floats onto the symmetric INT8 grid,
/// widened to the i16 the packed panels hold: dst[i] = quantize_unit(src[i],
/// scale). AVX2-vectorized when the active INT8 ISA is not kScalar, and
/// BIT-IDENTICAL to the scalar loop either way: the vector path keeps the
/// IEEE division, rounds with the current (round-nearest-even) mode, and
/// clamps in the same NaN-propagation order as quantize_unit, so every
/// lane equals the scalar quantizer — pinned by the cross-ISA tests.
void quantize_row_i16(const float* src, std::int64_t n, float scale,
                      std::int16_t* dst);

/// Finite-only absolute maximum over a contiguous buffer (the dynamic
/// activation calibration pass). NaN/+-Inf contribute nothing. max() is
/// order-invariant, so the AVX2 reduction is bit-identical to the scalar
/// scan by construction.
float finite_absmax_i8(const float* p, std::int64_t n);

/// A matrix quantized to INT8 codes, pre-widened to i16 and packed into
/// k-pair microkernel panels. A-side panels hold mr rows (pair layout
/// [a(r,2q), a(r,2q+1)] per row per pair); B-side panels hold kNR columns
/// (pair layout [b(2q,c), b(2q+1,c)] per column per pair). K is zero-padded
/// to even; padding rows/cols are zero codes.
struct PackedPanelsI8 {
  std::vector<std::int16_t> data;
  std::int64_t k = 0;     ///< logical (un-padded) inner dimension
  std::int64_t kp = 0;    ///< k rounded up to even
  std::int64_t span = 0;  ///< M for A-side, N for B-side
  int panel = 0;          ///< mr for A-side, kNR for B-side
  /// Symmetric scales: one per row (A) / column (B) for per-channel packs,
  /// or a single element for per-tensor packs.
  std::vector<float> scale;
  bool empty() const { return data.empty(); }
};

/// Per-row symmetric scales of a logical MxK matrix (the per-output-channel
/// weight calibration). Rejects non-finite weights with a clear message —
/// a NaN/Inf weight has no INT8 code and must not silently saturate.
std::vector<float> per_row_scales_i8(std::int64_t m, std::int64_t k,
                                     const float* a, std::int64_t lda,
                                     bool trans_a);

/// Quantize + pack logical A(MxK) into mr-row k-pair panels with the given
/// per-row scales (size m). trans_a reads A(m,k) = a[k*lda+m].
void quantize_pack_a_i8(std::int64_t m, std::int64_t k, const float* a,
                        std::int64_t lda, bool trans_a, int mr,
                        const float* row_scales, PackedPanelsI8& out);

/// Quantize + pack logical A(MxK) with one dynamic per-tensor scale from a
/// finite-only absmax (the linear-activation operand).
void quantize_pack_a_i8_tensor(std::int64_t m, std::int64_t k, const float* a,
                               std::int64_t lda, bool trans_a, int mr,
                               PackedPanelsI8& out);

/// Quantize + pack logical B(KxN) into kNR-column k-pair panels with the
/// given per-column scales (size n). trans_b reads B(k,n) = b[n*ldb+k].
void quantize_pack_b_i8(std::int64_t k, std::int64_t n, const float* b,
                        std::int64_t ldb, bool trans_b,
                        const float* col_scales, PackedPanelsI8& out);

/// Quantize + pack logical B(KxN) with one dynamic per-tensor scale (the
/// conv im2col operand).
void quantize_pack_b_i8_tensor(std::int64_t k, std::int64_t n, const float* b,
                               std::int64_t ldb, bool trans_b,
                               PackedPanelsI8& out);

/// Quantize + pack logical A(MxK) with a FIXED per-tensor scale (static
/// activation calibration: the absmax pass is already paid for at
/// calibration time, so the pack is a single sweep).
void quantize_pack_a_i8_static(std::int64_t m, std::int64_t k, const float* a,
                               std::int64_t lda, bool trans_a, int mr,
                               float scale, PackedPanelsI8& out);

/// Quantize + pack logical B(KxN) with a fixed per-tensor scale.
void quantize_pack_b_i8_static(std::int64_t k, std::int64_t n, const float* b,
                               std::int64_t ldb, bool trans_b, float scale,
                               PackedPanelsI8& out);

/// Produces the logical KxW column block [col0, col0+w) of B into `dst`
/// with row stride `w`: dst[kk*w + c] = B(kk, col0 + c). The streaming
/// conv path implements this with a per-tile im2col so the full KxN im2col
/// buffer is never materialized.
using BTileFn = std::function<void(std::int64_t col0, int w, float* dst)>;

/// Quantize + pack a tile-streamed logical B(KxN) with a fixed per-tensor
/// scale. Each kNR-column tile is produced by `tile`, quantized, and
/// interleaved straight into its k-pair panel; peak extra memory is one
/// k x kNR tile instead of the whole K x N matrix. The packed bytes are
/// identical to quantize_pack_b_i8_static over the materialized matrix.
void quantize_pack_b_i8_stream(std::int64_t k, std::int64_t n, float scale,
                               const BTileFn& tile, PackedPanelsI8& out);

/// Finite absmax over a tile-streamed logical B(KxN) — the dynamic-scale
/// first pass of the streaming conv path. Equals finite_absmax_i8 over the
/// materialized matrix (max is order-invariant).
float finite_absmax_stream(std::int64_t k, std::int64_t n, const BTileFn& tile);

/// Exact integer GEMM over packed INT8 operands: C(i32, MxN, ldc) =
/// sum_k a_code(i,k) * b_code(k,j). Fixed tile grid from block_config(),
/// intra-op threading from threads(); every configuration produces
/// identical bits (integer adds are associative).
void gemm_i8(std::int64_t m, std::int64_t n, std::int64_t k,
             const PackedPanelsI8& a, const PackedPanelsI8& b, std::int32_t* c,
             std::int64_t ldc);

/// Dequantize i32 accumulators with per-row A scales and a scalar B scale:
/// out[i,j] = fma(row_scale[i] * b_scale, acc[i,j], bias[i]) (bias may be
/// null -> 0). The conv epilogue.
void requantize_rows(std::int64_t m, std::int64_t n, const std::int32_t* acc,
                     std::int64_t ldacc, const float* row_scale, float b_scale,
                     const float* bias, float* out, std::int64_t ldout);

/// Dequantize with a scalar A scale and per-column B scales:
/// out[i,j] = fma(a_scale * col_scale[j], acc[i,j], bias[j]). The linear
/// epilogue.
void requantize_cols(std::int64_t m, std::int64_t n, const std::int32_t* acc,
                     std::int64_t ldacc, float a_scale, const float* col_scale,
                     const float* bias, float* out, std::int64_t ldout);

/// Fused requantize-to-grid epilogue (INT8-resident layer boundary): the
/// fp32 value fma(row_scale[i]*b_scale, acc[i,j], bias[i]) is immediately
/// re-quantized onto the NEXT consumer's static activation grid
/// (`out_scale`), optionally rectified ON THE CODES (`relu`: negative codes
/// clamp to 0), and stored as code * out_scale — the exact fp32 image of
/// the INT8 code the boundary holds, so the next static layer's pack
/// recovers the identical code and a conv->ReLU->conv chain never carries
/// more information than int8. quantize_unit semantics throughout
/// (round-nearest-even, NaN -> -127 -> relu 0, +-Inf saturate).
void requantize_rows_grid(std::int64_t m, std::int64_t n,
                          const std::int32_t* acc, std::int64_t ldacc,
                          const float* row_scale, float b_scale,
                          const float* bias, float out_scale, bool relu,
                          float* out, std::int64_t ldout);

/// Column-scale variant of requantize_rows_grid (the linear epilogue):
/// value = fma(a_scale*col_scale[j], acc[i,j], bias[j]).
void requantize_cols_grid(std::int64_t m, std::int64_t n,
                          const std::int32_t* acc, std::int64_t ldacc,
                          float a_scale, const float* col_scale,
                          const float* bias, float out_scale, bool relu,
                          float* out, std::int64_t ldout);

/// Narrow one float to 16-bit storage codes / widen back (exact).
inline std::uint16_t narrow16(float v, Storage16 fmt) {
  return fmt == Storage16::kFp16 ? f16_bits_from_float(v)
                                 : bf16_bits_from_float(v);
}
inline float widen16(std::uint16_t h, Storage16 fmt) {
  return fmt == Storage16::kFp16 ? float_from_f16_bits(h)
                                 : float_from_bf16_bits(h);
}

/// A matrix stored as 16-bit codes in fp32 panel layout (same indexing as
/// PackedPanels, element type uint16).
struct PackedPanels16 {
  std::vector<std::uint16_t> data;
  std::int64_t k = 0;
  std::int64_t span = 0;
  int panel = 0;
  Storage16 fmt = Storage16::kFp16;
  bool empty() const { return data.empty(); }
};

/// Narrow + pack logical A(MxK) / B(KxN) into 16-bit panels (the layouts of
/// pack_a / pack_b with u16 elements).
void pack_a_16(std::int64_t m, std::int64_t k, const float* a,
               std::int64_t lda, bool trans_a, int mr, Storage16 fmt,
               PackedPanels16& out);
void pack_b_16(std::int64_t k, std::int64_t n, const float* b,
               std::int64_t ldb, bool trans_b, Storage16 fmt,
               PackedPanels16& out);

/// Widen a 16-bit pack back to fp32 panels (exact, layout-preserving) for
/// the existing fp32 microkernels.
void widen_pack(const PackedPanels16& in, PackedPanels& out);

/// Narrow a contiguous fp32 buffer to 16-bit storage / widen it back — the
/// activation storage path.
void narrow_buffer(const float* src, std::int64_t n, Storage16 fmt,
                   std::vector<std::uint16_t>& dst);
void widen_buffer(const std::uint16_t* src, std::int64_t n, Storage16 fmt,
                  std::vector<float>& dst);

/// Cached low-precision packs of a module's weight matrix — the quantized
/// counterpart of WeightPackCache. Each representation keeps its OWN
/// fingerprint (over the weight bits and, for INT8, the scales), so weight
/// mutation through tensor aliases can never serve a stale quantized pack,
/// and invalidate() (called by the FaultInjector on every weight-mutation
/// path) drops every representation at once.
class LowPrecPackCache {
 public:
  /// Per-row-quantized INT8 A-side panels (conv weights; row_scales size m).
  const PackedPanelsI8& packed_a_i8(std::int64_t m, std::int64_t k,
                                    const float* w, std::int64_t lda,
                                    bool trans_a, const float* row_scales);

  /// Per-column-quantized INT8 B-side panels (linear W^T; col_scales size n).
  const PackedPanelsI8& packed_b_i8(std::int64_t k, std::int64_t n,
                                    const float* w, std::int64_t ldb,
                                    bool trans_b, const float* col_scales);

  /// 16-bit-storage A-side / B-side panels.
  const PackedPanels16& packed_a_16(std::int64_t m, std::int64_t k,
                                    const float* w, std::int64_t lda,
                                    bool trans_a, Storage16 fmt);
  const PackedPanels16& packed_b_16(std::int64_t k, std::int64_t n,
                                    const float* w, std::int64_t ldb,
                                    bool trans_b, Storage16 fmt);

  void invalidate() {
    i8_valid_ = false;
    h_valid_ = false;
  }
  bool cached() const { return i8_valid_ || h_valid_; }

 private:
  PackedPanelsI8 i8_;
  std::uint64_t i8_fp_ = 0;
  int i8_mr_ = 0;  ///< 0 marks a B-side pack
  bool i8_valid_ = false;
  PackedPanels16 h_;
  std::uint64_t h_fp_ = 0;
  int h_mr_ = 0;
  bool h_valid_ = false;
};

}  // namespace pfi::kernels
