#include "kernels/lowp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PFI_KERNELS_X86 1
#endif

namespace pfi::kernels {

namespace {

std::int64_t round_up_even(std::int64_t v) { return (v + 1) & ~std::int64_t{1}; }

// ----------------------------------------------------------- isa dispatch ----

bool madd_supported() {
#ifdef PFI_KERNELS_X86
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#else
  return false;
#endif
}

bool vnni_supported() {
#ifdef PFI_KERNELS_X86
  // The EVEX-encoded 256-bit vpdpwssd needs AVX512-VNNI + AVX512-VL. (Pure
  // AVX-VNNI parts without AVX-512 fall back to the madd path.)
  static const bool available = __builtin_cpu_supports("avx512vnni") &&
                                __builtin_cpu_supports("avx512vl");
  return available;
#else
  return false;
#endif
}

bool fma_supported() {
#ifdef PFI_KERNELS_X86
  static const bool available = __builtin_cpu_supports("fma");
  return available;
#else
  return false;
#endif
}

I8Isa resolve(I8Isa isa) {
  if (isa != I8Isa::kAuto) return isa;
  if (vnni_supported()) return I8Isa::kVnni;
  if (madd_supported()) return I8Isa::kMadd;
  return I8Isa::kScalar;
}

I8Isa g_i8_isa = I8Isa::kAuto;

/// True when the resolved ISA wants the AVX2 quantize/pack kernels. kMadd
/// and kVnni both imply AVX2; kScalar keeps every loop scalar so the
/// cross-ISA bit-identity tests compare genuinely different code paths.
bool simd_quant_enabled() {
#ifdef PFI_KERNELS_X86
  return resolve(g_i8_isa) != I8Isa::kScalar;
#else
  return false;
#endif
}

// ----------------------------------------------------------- microkernels ----

// Every INT8 microkernel computes an mr x kNR tile of C = sum_k a*b over the
// FULL (padded) K in i32 registers and stores once — no partial flushes are
// needed because integer accumulation is exact, so any grouping of the adds
// yields the same bits. ap walks mr*2 i16 per k-pair (two adjacent k's per
// row, interleaved); bp walks kNR*2 i16 per k-pair (two adjacent k's per
// column).

/// One k-pair of one A row, as the 32-bit lane the SIMD kernels broadcast.
std::int32_t load_pair(const std::int16_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

template <int MR>
void micro_i8_scalar(std::int64_t kp2, const std::int16_t* ap,
                     const std::int16_t* bp, std::int32_t* c,
                     std::int64_t ldc) {
  std::int32_t acc[MR][kNR] = {};
  for (std::int64_t q = 0; q < kp2; ++q) {
    const std::int16_t* a = ap + q * MR * 2;
    const std::int16_t* b = bp + q * kNR * 2;
    for (int r = 0; r < MR; ++r) {
      const std::int32_t a0 = a[r * 2];
      const std::int32_t a1 = a[r * 2 + 1];
      for (int j = 0; j < kNR; ++j) {
        acc[r][j] += a0 * b[j * 2] + a1 * b[j * 2 + 1];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + r * ldc, acc[r], sizeof(std::int32_t) * kNR);
  }
}

#ifdef PFI_KERNELS_X86

// madd path: vpmaddwd multiplies 16 i16 pairs and adds each pair into an i32
// lane — with |code| <= 127 the pair sum is at most 2*127^2, far from i16
// saturation, so the op is exact; vpaddd folds it into the accumulator.

/// Four rows of a kNR-wide tile; `astride` is the A-panel i16 row stride per
/// k-pair (2*4 for a 4-tall panel, 2*8 for one half of the 8-row kernel).
__attribute__((target("avx2"))) inline void micro_i8_madd_half4(
    std::int64_t kp2, const std::int16_t* ap, int astride,
    const std::int16_t* bp, std::int32_t* c, std::int64_t ldc) {
  __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
  for (std::int64_t q = 0; q < kp2; ++q) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2 + 16));
    const std::int16_t* a = ap + q * astride;
    __m256i av;
    av = _mm256_set1_epi32(load_pair(a + 0));
    c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(av, b0));
    c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 2));
    c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(av, b0));
    c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 4));
    c20 = _mm256_add_epi32(c20, _mm256_madd_epi16(av, b0));
    c21 = _mm256_add_epi32(c21, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 6));
    c30 = _mm256_add_epi32(c30, _mm256_madd_epi16(av, b0));
    c31 = _mm256_add_epi32(c31, _mm256_madd_epi16(av, b1));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc), c00);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc + 8), c01);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc), c10);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc + 8), c11);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc), c20);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc + 8), c21);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc), c30);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc + 8), c31);
}

__attribute__((target("avx2"))) void micro_i8_madd_4(std::int64_t kp2,
                                                     const std::int16_t* ap,
                                                     const std::int16_t* bp,
                                                     std::int32_t* c,
                                                     std::int64_t ldc) {
  micro_i8_madd_half4(kp2, ap, 8, bp, c, ldc);
}

__attribute__((target("avx2"))) void micro_i8_madd_8(std::int64_t kp2,
                                                     const std::int16_t* ap,
                                                     const std::int16_t* bp,
                                                     std::int32_t* c,
                                                     std::int64_t ldc) {
  micro_i8_madd_half4(kp2, ap, 16, bp, c, ldc);
  micro_i8_madd_half4(kp2, ap + 8, 16, bp, c + 4 * ldc, ldc);
}

// 6x16: 12 accumulators + 2 B vectors + 1 broadcast = 15 ymm registers.
__attribute__((target("avx2"))) void micro_i8_madd_6(std::int64_t kp2,
                                                     const std::int16_t* ap,
                                                     const std::int16_t* bp,
                                                     std::int32_t* c,
                                                     std::int64_t ldc) {
  __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
  __m256i c40 = _mm256_setzero_si256(), c41 = _mm256_setzero_si256();
  __m256i c50 = _mm256_setzero_si256(), c51 = _mm256_setzero_si256();
  for (std::int64_t q = 0; q < kp2; ++q) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2 + 16));
    const std::int16_t* a = ap + q * 12;
    __m256i av;
    av = _mm256_set1_epi32(load_pair(a + 0));
    c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(av, b0));
    c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 2));
    c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(av, b0));
    c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 4));
    c20 = _mm256_add_epi32(c20, _mm256_madd_epi16(av, b0));
    c21 = _mm256_add_epi32(c21, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 6));
    c30 = _mm256_add_epi32(c30, _mm256_madd_epi16(av, b0));
    c31 = _mm256_add_epi32(c31, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 8));
    c40 = _mm256_add_epi32(c40, _mm256_madd_epi16(av, b0));
    c41 = _mm256_add_epi32(c41, _mm256_madd_epi16(av, b1));
    av = _mm256_set1_epi32(load_pair(a + 10));
    c50 = _mm256_add_epi32(c50, _mm256_madd_epi16(av, b0));
    c51 = _mm256_add_epi32(c51, _mm256_madd_epi16(av, b1));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc), c00);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc + 8), c01);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc), c10);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc + 8), c11);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc), c20);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc + 8), c21);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc), c30);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc + 8), c31);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 4 * ldc), c40);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 4 * ldc + 8), c41);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 5 * ldc), c50);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 5 * ldc + 8), c51);
}

// VNNI path: vpdpwssd fuses the madd+add pair into one op with the same
// exact i32 arithmetic (signed i16 pairs, non-saturating accumulate for our
// operand range), doubling the per-cycle MAC rate.

__attribute__((target("avx512vnni,avx512vl"))) inline void
micro_i8_vnni_half4(std::int64_t kp2, const std::int16_t* ap, int astride,
                    const std::int16_t* bp, std::int32_t* c,
                    std::int64_t ldc) {
  __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
  for (std::int64_t q = 0; q < kp2; ++q) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2 + 16));
    const std::int16_t* a = ap + q * astride;
    __m256i av;
    av = _mm256_set1_epi32(load_pair(a + 0));
    c00 = _mm256_dpwssd_epi32(c00, av, b0);
    c01 = _mm256_dpwssd_epi32(c01, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 2));
    c10 = _mm256_dpwssd_epi32(c10, av, b0);
    c11 = _mm256_dpwssd_epi32(c11, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 4));
    c20 = _mm256_dpwssd_epi32(c20, av, b0);
    c21 = _mm256_dpwssd_epi32(c21, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 6));
    c30 = _mm256_dpwssd_epi32(c30, av, b0);
    c31 = _mm256_dpwssd_epi32(c31, av, b1);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc), c00);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc + 8), c01);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc), c10);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc + 8), c11);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc), c20);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc + 8), c21);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc), c30);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc + 8), c31);
}

__attribute__((target("avx512vnni,avx512vl"))) void micro_i8_vnni_4(
    std::int64_t kp2, const std::int16_t* ap, const std::int16_t* bp,
    std::int32_t* c, std::int64_t ldc) {
  micro_i8_vnni_half4(kp2, ap, 8, bp, c, ldc);
}

__attribute__((target("avx512vnni,avx512vl"))) void micro_i8_vnni_8(
    std::int64_t kp2, const std::int16_t* ap, const std::int16_t* bp,
    std::int32_t* c, std::int64_t ldc) {
  micro_i8_vnni_half4(kp2, ap, 16, bp, c, ldc);
  micro_i8_vnni_half4(kp2, ap + 8, 16, bp, c + 4 * ldc, ldc);
}

__attribute__((target("avx512vnni,avx512vl"))) void micro_i8_vnni_6(
    std::int64_t kp2, const std::int16_t* ap, const std::int16_t* bp,
    std::int32_t* c, std::int64_t ldc) {
  __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
  __m256i c40 = _mm256_setzero_si256(), c41 = _mm256_setzero_si256();
  __m256i c50 = _mm256_setzero_si256(), c51 = _mm256_setzero_si256();
  for (std::int64_t q = 0; q < kp2; ++q) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + q * kNR * 2 + 16));
    const std::int16_t* a = ap + q * 12;
    __m256i av;
    av = _mm256_set1_epi32(load_pair(a + 0));
    c00 = _mm256_dpwssd_epi32(c00, av, b0);
    c01 = _mm256_dpwssd_epi32(c01, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 2));
    c10 = _mm256_dpwssd_epi32(c10, av, b0);
    c11 = _mm256_dpwssd_epi32(c11, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 4));
    c20 = _mm256_dpwssd_epi32(c20, av, b0);
    c21 = _mm256_dpwssd_epi32(c21, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 6));
    c30 = _mm256_dpwssd_epi32(c30, av, b0);
    c31 = _mm256_dpwssd_epi32(c31, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 8));
    c40 = _mm256_dpwssd_epi32(c40, av, b0);
    c41 = _mm256_dpwssd_epi32(c41, av, b1);
    av = _mm256_set1_epi32(load_pair(a + 10));
    c50 = _mm256_dpwssd_epi32(c50, av, b0);
    c51 = _mm256_dpwssd_epi32(c51, av, b1);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc), c00);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 0 * ldc + 8), c01);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc), c10);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 1 * ldc + 8), c11);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc), c20);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 2 * ldc + 8), c21);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc), c30);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 3 * ldc + 8), c31);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 4 * ldc), c40);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 4 * ldc + 8), c41);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 5 * ldc), c50);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + 5 * ldc + 8), c51);
}

#endif  // PFI_KERNELS_X86

using MicroI8Fn = void (*)(std::int64_t, const std::int16_t*,
                           const std::int16_t*, std::int32_t*, std::int64_t);

MicroI8Fn micro_i8_for(int mr, I8Isa isa) {
#ifdef PFI_KERNELS_X86
  if (isa == I8Isa::kVnni) {
    return mr == 8 ? micro_i8_vnni_8
                   : (mr == 6 ? micro_i8_vnni_6 : micro_i8_vnni_4);
  }
  if (isa == I8Isa::kMadd) {
    return mr == 8 ? micro_i8_madd_8
                   : (mr == 6 ? micro_i8_madd_6 : micro_i8_madd_4);
  }
#else
  (void)isa;
#endif
  return mr == 8 ? micro_i8_scalar<8>
                 : (mr == 6 ? micro_i8_scalar<6> : micro_i8_scalar<4>);
}

// --------------------------------------------------------------- packing ----

/// Shared A-side quantize+pack. `scale_of(row)` supplies the symmetric
/// scale; rows past m and k's past the logical K pack as zero codes.
template <typename ScaleOf>
void pack_a_codes(std::int64_t m, std::int64_t k, const float* a,
                  std::int64_t lda, bool trans_a, int mr, ScaleOf scale_of,
                  PackedPanelsI8& out) {
  PFI_CHECK(mr == 4 || mr == 6 || mr == 8)
      << "quantize_pack_a mr must be 4, 6, or 8, got " << mr;
  const std::int64_t kp = round_up_even(k);
  const std::int64_t panels = (m + mr - 1) / mr;
  out.data.resize(static_cast<std::size_t>(panels * mr * kp));
  out.k = k;
  out.kp = kp;
  out.span = m;
  out.panel = mr;
  std::int16_t* dst = out.data.data();
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    std::int16_t* panel = dst + ip * mr * kp;
    const std::int64_t row0 = ip * mr;
    for (int r = 0; r < mr; ++r) {
      const std::int64_t row = row0 + r;
      const bool live = row < m;
      const float scale = live ? scale_of(row) : 1.0f;
      for (std::int64_t kk = 0; kk < kp; ++kk) {
        std::int16_t code = 0;
        if (live && kk < k) {
          const float v = trans_a ? a[kk * lda + row] : a[row * lda + kk];
          code = quantize_unit(v, scale);
        }
        panel[(kk / 2) * (mr * 2) + r * 2 + (kk & 1)] = code;
      }
    }
  }
}

/// Shared B-side quantize+pack with `scale_of(col)`.
template <typename ScaleOf>
void pack_b_codes(std::int64_t k, std::int64_t n, const float* b,
                  std::int64_t ldb, bool trans_b, ScaleOf scale_of,
                  PackedPanelsI8& out) {
  const std::int64_t kp = round_up_even(k);
  const std::int64_t panels = (n + kNR - 1) / kNR;
  out.data.resize(static_cast<std::size_t>(panels * kNR * kp));
  out.k = k;
  out.kp = kp;
  out.span = n;
  out.panel = kNR;
  std::int16_t* dst = out.data.data();
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    std::int16_t* panel = dst + jp * kNR * kp;
    const std::int64_t col0 = jp * kNR;
    for (int c = 0; c < kNR; ++c) {
      const std::int64_t col = col0 + c;
      const bool live = col < n;
      const float scale = live ? scale_of(col) : 1.0f;
      for (std::int64_t kk = 0; kk < kp; ++kk) {
        std::int16_t code = 0;
        if (live && kk < k) {
          const float v = trans_b ? b[col * ldb + kk] : b[kk * ldb + col];
          code = quantize_unit(v, scale);
        }
        panel[(kk / 2) * (kNR * 2) + c * 2 + (kk & 1)] = code;
      }
    }
  }
}

/// Finite-only absolute maximum over a strided logical matrix (rows x cols,
/// row stride ld, optional transpose). NaN and +-Inf contribute nothing —
/// the per-tensor dynamic activation calibration must stay finite even when
/// an upstream fp32 fault produced non-finite activations.
float finite_absmax(std::int64_t rows, std::int64_t cols, const float* p,
                    std::int64_t ld, bool trans) {
  float absmax = 0.0f;
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      const float v = trans ? p[j * ld + i] : p[i * ld + j];
      const float av = std::fabs(v);
      if (std::isfinite(av) && av > absmax) absmax = av;
    }
  }
  return absmax;
}

// ------------------------------------------------- AVX2 quantize kernels ----
//
// The vector quantizer is BIT-IDENTICAL to quantize_unit lane for lane:
//  * vdivps is IEEE correctly rounded, exactly like the scalar `/`;
//  * vroundps with _MM_FROUND_CUR_DIRECTION matches std::nearbyint (both
//    honor the live rounding mode, round-nearest-even by default);
//  * the clamp runs max-then-min in the scalar's operand order — MAXPS/
//    MINPS return the SECOND source when the first is NaN, so a NaN
//    quotient lands on -127 exactly like std::max(-127.0f, NaN);
//  * vcvtps2dq is exact on the clamped integral values.
// So scalar and AVX2 packs hold the same codes, and the kScalar /
// kMadd / kVnni campaign byte-identity carries over to the quantize path.

#ifdef PFI_KERNELS_X86

/// 8 floats -> 8 i32 codes in [-127, 127].
__attribute__((target("avx2"))) inline __m256i quantize8_i32(__m256 v,
                                                             __m256 vscale) {
  const __m256 q = _mm256_round_ps(
      _mm256_div_ps(v, vscale), _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
  const __m256 lo = _mm256_max_ps(q, _mm256_set1_ps(-127.0f));
  const __m256 clamped = _mm256_min_ps(lo, _mm256_set1_ps(127.0f));
  return _mm256_cvtps_epi32(clamped);
}

/// 16 contiguous floats -> one vector of 16 i16 codes in source order
/// (packs interleaves 128-bit lanes; the qword permute restores order).
__attribute__((target("avx2"))) inline __m256i quantize16_i16(const float* src,
                                                              __m256 vscale) {
  const __m256i x = quantize8_i32(_mm256_loadu_ps(src), vscale);
  const __m256i y = quantize8_i32(_mm256_loadu_ps(src + 8), vscale);
  return _mm256_permute4x64_epi64(_mm256_packs_epi32(x, y), 0xD8);
}

__attribute__((target("avx2"))) void quantize_row_i16_avx2(
    const float* src, std::int64_t n, float scale, std::int16_t* dst) {
  const __m256 vscale = _mm256_set1_ps(scale);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        quantize16_i16(src + i, vscale));
  }
  for (; i < n; ++i) dst[i] = quantize_unit(src[i], scale);
}

__attribute__((target("avx2"))) float finite_absmax_avx2(const float* p,
                                                         std::int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  const __m256 inf = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  __m256 vmax = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_andnot_ps(sign, _mm256_loadu_ps(p + i));
    // Ordered < Inf: NaN and +-Inf compare false and mask to 0.0f.
    const __m256 finite = _mm256_cmp_ps(av, inf, _CMP_LT_OQ);
    vmax = _mm256_max_ps(vmax, _mm256_and_ps(av, finite));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vmax);
  float absmax = 0.0f;
  for (const float l : lanes) absmax = std::max(absmax, l);
  for (; i < n; ++i) {
    const float av = std::fabs(p[i]);
    if (std::isfinite(av) && av > absmax) absmax = av;
  }
  return absmax;
}

/// One full-width (16-column) B panel from a strided source: element
/// (kk, c) = src[kk * ld + c]. Two rows are quantized to i16 and zipped
/// into the k-pair layout [b(2q,c), b(2q+1,c)] per column — unpacklo/hi
/// produce the column-major pair stream per 128-bit lane, the cross-lane
/// permutes stitch the lanes back into panel order. An odd logical K pairs
/// its last row with zero codes, exactly like the scalar pack.
__attribute__((target("avx2"))) void pack_b_panel16_avx2(
    std::int64_t k, std::int64_t kp, const float* src, std::int64_t ld,
    float scale, std::int16_t* panel) {
  const __m256 vscale = _mm256_set1_ps(scale);
  for (std::int64_t kk = 0; kk < kp; kk += 2) {
    const __m256i v0 = quantize16_i16(src + kk * ld, vscale);
    const __m256i v1 = kk + 1 < k
                           ? quantize16_i16(src + (kk + 1) * ld, vscale)
                           : _mm256_setzero_si256();
    const __m256i lo = _mm256_unpacklo_epi16(v0, v1);
    const __m256i hi = _mm256_unpackhi_epi16(v0, v1);
    std::int16_t* out = panel + (kk / 2) * (kNR * 2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                        _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 16),
                        _mm256_permute2x128_si256(lo, hi, 0x31));
  }
}

#endif  // PFI_KERNELS_X86

/// Scalar B panel pack from a strided source (edge panels with w < kNR
/// live columns, and the kScalar ISA). Dead columns and padding k's hold
/// zero codes.
void pack_b_panel_scalar(std::int64_t k, std::int64_t kp, const float* src,
                         std::int64_t ld, int w, float scale,
                         std::int16_t* panel) {
  for (int c = 0; c < kNR; ++c) {
    const bool live = c < w;
    for (std::int64_t kk = 0; kk < kp; ++kk) {
      std::int16_t code = 0;
      if (live && kk < k) code = quantize_unit(src[kk * ld + c], scale);
      panel[(kk / 2) * (kNR * 2) + c * 2 + (kk & 1)] = code;
    }
  }
}

/// Untransposed fixed-scale B pack over a strided matrix: the SIMD fast
/// path for full panels, scalar for the edge panel / scalar ISA.
void pack_b_static_strided(std::int64_t k, std::int64_t n, const float* b,
                           std::int64_t ldb, float scale, PackedPanelsI8& out) {
  const std::int64_t kp = round_up_even(k);
  const std::int64_t panels = (n + kNR - 1) / kNR;
  out.data.resize(static_cast<std::size_t>(panels * kNR * kp));
  out.k = k;
  out.kp = kp;
  out.span = n;
  out.panel = kNR;
  const bool simd = simd_quant_enabled();
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    std::int16_t* panel = out.data.data() + jp * kNR * kp;
    const std::int64_t col0 = jp * kNR;
    const int w = static_cast<int>(std::min<std::int64_t>(kNR, n - col0));
#ifdef PFI_KERNELS_X86
    if (simd && w == kNR) {
      pack_b_panel16_avx2(k, kp, b + col0, ldb, scale, panel);
      continue;
    }
#else
    (void)simd;
#endif
    pack_b_panel_scalar(k, kp, b + col0, ldb, w, scale, panel);
  }
}

/// Untransposed fixed-scale A pack: SIMD row quantize into an i16 scratch
/// row, then a cheap scalar i16 interleave into the mr-row k-pair panels.
void pack_a_static_rows(std::int64_t m, std::int64_t k, const float* a,
                        std::int64_t lda, int mr, float scale,
                        PackedPanelsI8& out) {
  const std::int64_t kp = round_up_even(k);
  const std::int64_t panels = (m + mr - 1) / mr;
  // Zero-fill covers dead lanes and k-padding in one memset.
  out.data.assign(static_cast<std::size_t>(panels * mr * kp), 0);
  out.k = k;
  out.kp = kp;
  out.span = m;
  out.panel = mr;
  std::vector<std::int16_t> qrow(static_cast<std::size_t>(k));
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    std::int16_t* panel = out.data.data() + ip * mr * kp;
    const std::int64_t row0 = ip * mr;
    const int rows = static_cast<int>(std::min<std::int64_t>(mr, m - row0));
    for (int r = 0; r < rows; ++r) {
      quantize_row_i16(a + (row0 + r) * lda, k, scale, qrow.data());
      for (std::int64_t kk = 0; kk < k; ++kk) {
        panel[(kk / 2) * (mr * 2) + r * 2 + (kk & 1)] =
            qrow[static_cast<std::size_t>(kk)];
      }
    }
  }
}

}  // namespace

// ------------------------------------------------------------- public api ----

I8Isa active_i8_isa() { return resolve(g_i8_isa); }

void set_i8_isa(I8Isa isa) {
  if (isa == I8Isa::kMadd) {
    PFI_CHECK(madd_supported()) << "set_i8_isa: AVX2 madd not supported here";
  }
  if (isa == I8Isa::kVnni) {
    PFI_CHECK(vnni_supported()) << "set_i8_isa: VNNI not supported here";
  }
  g_i8_isa = isa;
}

std::vector<float> per_row_scales_i8(std::int64_t m, std::int64_t k,
                                     const float* a, std::int64_t lda,
                                     bool trans_a) {
  PFI_CHECK(k > 0) << "per-channel INT8 calibration over an empty channel "
                      "(0 weights per output channel)";
  std::vector<float> scales(static_cast<std::size_t>(m));
  for (std::int64_t row = 0; row < m; ++row) {
    float absmax = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float v = trans_a ? a[kk * lda + row] : a[row * lda + kk];
      PFI_CHECK(std::isfinite(v))
          << "per-channel INT8 calibration: output channel " << row
          << " contains a non-finite weight (" << v
          << ") — a NaN/Inf weight has no INT8 code";
      const float av = std::fabs(v);
      if (av > absmax) absmax = av;
    }
    scales[static_cast<std::size_t>(row)] = scale_from_absmax(absmax);
  }
  return scales;
}

void quantize_pack_a_i8(std::int64_t m, std::int64_t k, const float* a,
                        std::int64_t lda, bool trans_a, int mr,
                        const float* row_scales, PackedPanelsI8& out) {
  out.scale.assign(row_scales, row_scales + m);
  pack_a_codes(m, k, a, lda, trans_a, mr,
               [&](std::int64_t row) { return row_scales[row]; }, out);
}

void quantize_pack_a_i8_static(std::int64_t m, std::int64_t k, const float* a,
                               std::int64_t lda, bool trans_a, int mr,
                               float scale, PackedPanelsI8& out) {
  out.scale.assign(1, scale);
  if (!trans_a) {
    PFI_CHECK(mr == 4 || mr == 6 || mr == 8)
        << "quantize_pack_a mr must be 4, 6, or 8, got " << mr;
    pack_a_static_rows(m, k, a, lda, mr, scale, out);
    return;
  }
  pack_a_codes(m, k, a, lda, trans_a, mr,
               [&](std::int64_t) { return scale; }, out);
}

void quantize_pack_a_i8_tensor(std::int64_t m, std::int64_t k, const float* a,
                               std::int64_t lda, bool trans_a, int mr,
                               PackedPanelsI8& out) {
  // A contiguous untransposed operand is one flat buffer — the SIMD absmax
  // applies; max is order-invariant so the value matches the strided scan.
  const float absmax = !trans_a && lda == k
                           ? finite_absmax_i8(a, m * k)
                           : finite_absmax(m, k, a, lda, trans_a);
  quantize_pack_a_i8_static(m, k, a, lda, trans_a, mr,
                            scale_from_absmax(absmax), out);
}

void quantize_pack_b_i8(std::int64_t k, std::int64_t n, const float* b,
                        std::int64_t ldb, bool trans_b,
                        const float* col_scales, PackedPanelsI8& out) {
  out.scale.assign(col_scales, col_scales + n);
  pack_b_codes(k, n, b, ldb, trans_b,
               [&](std::int64_t col) { return col_scales[col]; }, out);
}

void quantize_pack_b_i8_static(std::int64_t k, std::int64_t n, const float* b,
                               std::int64_t ldb, bool trans_b, float scale,
                               PackedPanelsI8& out) {
  if (!trans_b) {
    pack_b_static_strided(k, n, b, ldb, scale, out);
    out.scale.assign(1, scale);
    return;
  }
  out.scale.assign(1, scale);
  pack_b_codes(k, n, b, ldb, trans_b,
               [&](std::int64_t) { return scale; }, out);
}

void quantize_pack_b_i8_tensor(std::int64_t k, std::int64_t n, const float* b,
                               std::int64_t ldb, bool trans_b,
                               PackedPanelsI8& out) {
  // The absmax walks the logical KxN matrix: a contiguous layout (either
  // orientation) collapses to one flat buffer for the SIMD reduction; the
  // strided transposed operand is NxK in memory.
  float absmax;
  if (!trans_b && ldb == n) {
    absmax = finite_absmax_i8(b, k * n);
  } else if (trans_b && ldb == k) {
    absmax = finite_absmax_i8(b, n * k);
  } else {
    absmax = trans_b ? finite_absmax(n, k, b, ldb, false)
                     : finite_absmax(k, n, b, ldb, false);
  }
  quantize_pack_b_i8_static(k, n, b, ldb, trans_b, scale_from_absmax(absmax),
                            out);
}

void quantize_pack_b_i8_stream(std::int64_t k, std::int64_t n, float scale,
                               const BTileFn& tile, PackedPanelsI8& out) {
  const std::int64_t kp = round_up_even(k);
  const std::int64_t panels = (n + kNR - 1) / kNR;
  out.data.resize(static_cast<std::size_t>(panels * kNR * kp));
  out.k = k;
  out.kp = kp;
  out.span = n;
  out.panel = kNR;
  out.scale.assign(1, scale);
  std::vector<float> buf(static_cast<std::size_t>(k * kNR));
  const bool simd = simd_quant_enabled();
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    std::int16_t* panel = out.data.data() + jp * kNR * kp;
    const std::int64_t col0 = jp * kNR;
    const int w = static_cast<int>(std::min<std::int64_t>(kNR, n - col0));
    tile(col0, w, buf.data());
#ifdef PFI_KERNELS_X86
    if (simd && w == kNR) {
      pack_b_panel16_avx2(k, kp, buf.data(), kNR, scale, panel);
      continue;
    }
#else
    (void)simd;
#endif
    pack_b_panel_scalar(k, kp, buf.data(), w, w, scale, panel);
  }
}

float finite_absmax_stream(std::int64_t k, std::int64_t n,
                           const BTileFn& tile) {
  std::vector<float> buf(static_cast<std::size_t>(k * kNR));
  float absmax = 0.0f;
  for (std::int64_t col0 = 0; col0 < n; col0 += kNR) {
    const int w = static_cast<int>(std::min<std::int64_t>(kNR, n - col0));
    tile(col0, w, buf.data());
    absmax = std::max(absmax, finite_absmax_i8(buf.data(), k * w));
  }
  return absmax;
}

void quantize_row_i16(const float* src, std::int64_t n, float scale,
                      std::int16_t* dst) {
#ifdef PFI_KERNELS_X86
  if (simd_quant_enabled()) {
    quantize_row_i16_avx2(src, n, scale, dst);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) dst[i] = quantize_unit(src[i], scale);
}

float finite_absmax_i8(const float* p, std::int64_t n) {
#ifdef PFI_KERNELS_X86
  if (simd_quant_enabled()) return finite_absmax_avx2(p, n);
#endif
  return finite_absmax(1, n, p, n, false);
}

void gemm_i8(std::int64_t m, std::int64_t n, std::int64_t k,
             const PackedPanelsI8& a, const PackedPanelsI8& b, std::int32_t* c,
             std::int64_t ldc) {
  PFI_CHECK(a.panel == 4 || a.panel == 6 || a.panel == 8)
      << "gemm_i8: A pack has panel " << a.panel;
  PFI_CHECK(b.panel == kNR) << "gemm_i8: B pack has panel " << b.panel;
  PFI_CHECK(a.k == k && b.k == k)
      << "gemm_i8: packs have K " << a.k << "/" << b.k << ", need " << k;
  PFI_CHECK(a.kp == b.kp) << "gemm_i8: pad mismatch " << a.kp << " vs "
                          << b.kp;
  PFI_CHECK(a.span >= m && b.span >= n)
      << "gemm_i8: packs cover " << a.span << "x" << b.span << ", need " << m
      << "x" << n;
  PFI_CHECK(k <= kMaxI8Depth)
      << "gemm_i8: K=" << k << " exceeds the exact-i32 depth bound "
      << kMaxI8Depth;
  if (m == 0 || n == 0) return;
  if (k == 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0);
    }
    return;
  }

  const int mr = a.panel;
  const std::int64_t kp2 = a.kp / 2;
  const BlockConfig cfg = block_config();
  // Same fixed tile grid as the fp32 core (cosmetic here — integer results
  // are grid-invariant regardless — but it keeps cache behavior and the
  // threading structure identical across dtypes).
  const std::int64_t mc = ((cfg.mc + mr - 1) / mr) * mr;
  const std::int64_t nc = ((cfg.nc + kNR - 1) / kNR) * kNR;
  const std::int64_t ti = (m + mc - 1) / mc;
  const std::int64_t tj = (n + nc - 1) / nc;
  const MicroI8Fn micro = micro_i8_for(mr, resolve(g_i8_isa));

  detail::run_tiles(ti * tj, [&](std::int64_t t) {
    const std::int64_t i0 = (t / tj) * mc;
    const std::int64_t i1 = std::min(m, i0 + mc);
    const std::int64_t j0 = (t % tj) * nc;
    const std::int64_t j1 = std::min(n, j0 + nc);
    std::int32_t scratch[8 * kNR];
    for (std::int64_t j = j0; j < j1; j += kNR) {
      const int nv = static_cast<int>(std::min<std::int64_t>(kNR, n - j));
      const std::int16_t* bp = b.data.data() + (j / kNR) * (kNR * b.kp);
      for (std::int64_t i = i0; i < i1; i += mr) {
        const int mv = static_cast<int>(std::min<std::int64_t>(mr, m - i));
        const std::int16_t* ap = a.data.data() + (i / mr) * (mr * a.kp);
        if (mv == mr && nv == kNR) {
          micro(kp2, ap, bp, c + i * ldc + j, ldc);
          continue;
        }
        micro(kp2, ap, bp, scratch, kNR);
        for (int r = 0; r < mv; ++r) {
          std::memcpy(c + (i + r) * ldc + j, scratch + r * kNR,
                      sizeof(std::int32_t) * nv);
        }
      }
    }
  });
}

void requantize_rows(std::int64_t m, std::int64_t n, const std::int32_t* acc,
                     std::int64_t ldacc, const float* row_scale, float b_scale,
                     const float* bias, float* out, std::int64_t ldout) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float s = row_scale[i] * b_scale;
    const float bi = bias != nullptr ? bias[i] : 0.0f;
    const std::int32_t* ai = acc + i * ldacc;
    float* oi = out + i * ldout;
    for (std::int64_t j = 0; j < n; ++j) {
      oi[j] = std::fma(s, static_cast<float>(ai[j]), bi);
    }
  }
}

void requantize_cols(std::int64_t m, std::int64_t n, const std::int32_t* acc,
                     std::int64_t ldacc, float a_scale, const float* col_scale,
                     const float* bias, float* out, std::int64_t ldout) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t* ai = acc + i * ldacc;
    float* oi = out + i * ldout;
    for (std::int64_t j = 0; j < n; ++j) {
      const float bj = bias != nullptr ? bias[j] : 0.0f;
      oi[j] = std::fma(a_scale * col_scale[j], static_cast<float>(ai[j]), bj);
    }
  }
}

// ------------------------------------------------- grid requantize (fused) ----
//
// The scalar epilogue element: dequantize the i32 accumulator (single-
// rounding fma, like requantize_rows), snap onto the consumer's static grid
// with the shared quantizer, rectify on the CODE, and store the code's
// exact fp32 image. The AVX2 version is lane-identical: vcvtdq2ps and the
// final multiply are the same IEEE ops, vfmadd is the same single-rounding
// fma, and the quantizer core is quantize8_i32's (see above).

namespace {

inline float grid_unit(float v, float out_scale, bool relu) {
  int code = quantize_unit(v, out_scale);
  if (relu && code < 0) code = 0;
  return static_cast<float>(code) * out_scale;
}

#ifdef PFI_KERNELS_X86

/// 8 accumulators -> 8 grid-snapped outputs; vs/vb are the broadcast
/// multiplier and addend, vos the broadcast out_scale.
__attribute__((target("avx2,fma"))) inline __m256 grid8(__m256i acc, __m256 vs,
                                                        __m256 vb, __m256 vos,
                                                        bool relu) {
  const __m256 v = _mm256_fmadd_ps(vs, _mm256_cvtepi32_ps(acc), vb);
  const __m256 q = _mm256_round_ps(
      _mm256_div_ps(v, vos), _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
  __m256 code = _mm256_min_ps(_mm256_max_ps(q, _mm256_set1_ps(-127.0f)),
                              _mm256_set1_ps(127.0f));
  if (relu) code = _mm256_max_ps(code, _mm256_setzero_ps());
  return _mm256_mul_ps(code, vos);
}

__attribute__((target("avx2,fma"))) void requantize_rows_grid_avx2(
    std::int64_t m, std::int64_t n, const std::int32_t* acc,
    std::int64_t ldacc, const float* row_scale, float b_scale,
    const float* bias, float out_scale, bool relu, float* out,
    std::int64_t ldout) {
  const __m256 vos = _mm256_set1_ps(out_scale);
  for (std::int64_t i = 0; i < m; ++i) {
    const float s = row_scale[i] * b_scale;
    const float bi = bias != nullptr ? bias[i] : 0.0f;
    const __m256 vs = _mm256_set1_ps(s);
    const __m256 vb = _mm256_set1_ps(bi);
    const std::int32_t* ai = acc + i * ldacc;
    float* oi = out + i * ldout;
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ai + j));
      _mm256_storeu_ps(oi + j, grid8(a, vs, vb, vos, relu));
    }
    for (; j < n; ++j) {
      oi[j] = grid_unit(std::fma(s, static_cast<float>(ai[j]), bi), out_scale,
                        relu);
    }
  }
}

__attribute__((target("avx2,fma"))) void requantize_cols_grid_avx2(
    std::int64_t m, std::int64_t n, const std::int32_t* acc,
    std::int64_t ldacc, float a_scale, const float* col_scale,
    const float* bias, float out_scale, bool relu, float* out,
    std::int64_t ldout) {
  const __m256 vos = _mm256_set1_ps(out_scale);
  const __m256 vas = _mm256_set1_ps(a_scale);
  const __m256 zero = _mm256_setzero_ps();
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t* ai = acc + i * ldacc;
    float* oi = out + i * ldout;
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 vs = _mm256_mul_ps(vas, _mm256_loadu_ps(col_scale + j));
      const __m256 vb = bias != nullptr ? _mm256_loadu_ps(bias + j) : zero;
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ai + j));
      _mm256_storeu_ps(oi + j, grid8(a, vs, vb, vos, relu));
    }
    for (; j < n; ++j) {
      const float bj = bias != nullptr ? bias[j] : 0.0f;
      oi[j] = grid_unit(
          std::fma(a_scale * col_scale[j], static_cast<float>(ai[j]), bj),
          out_scale, relu);
    }
  }
}

#endif  // PFI_KERNELS_X86

/// Gate for the AVX2 grid epilogue: the quantize ISA switch plus an FMA
/// probe (vfmadd must match std::fma's single rounding).
bool grid_simd_enabled() {
#ifdef PFI_KERNELS_X86
  return active_i8_isa() != I8Isa::kScalar && fma_supported();
#else
  return false;
#endif
}

}  // namespace

void requantize_rows_grid(std::int64_t m, std::int64_t n,
                          const std::int32_t* acc, std::int64_t ldacc,
                          const float* row_scale, float b_scale,
                          const float* bias, float out_scale, bool relu,
                          float* out, std::int64_t ldout) {
#ifdef PFI_KERNELS_X86
  if (grid_simd_enabled()) {
    requantize_rows_grid_avx2(m, n, acc, ldacc, row_scale, b_scale, bias,
                              out_scale, relu, out, ldout);
    return;
  }
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const float s = row_scale[i] * b_scale;
    const float bi = bias != nullptr ? bias[i] : 0.0f;
    const std::int32_t* ai = acc + i * ldacc;
    float* oi = out + i * ldout;
    for (std::int64_t j = 0; j < n; ++j) {
      oi[j] = grid_unit(std::fma(s, static_cast<float>(ai[j]), bi), out_scale,
                        relu);
    }
  }
}

void requantize_cols_grid(std::int64_t m, std::int64_t n,
                          const std::int32_t* acc, std::int64_t ldacc,
                          float a_scale, const float* col_scale,
                          const float* bias, float out_scale, bool relu,
                          float* out, std::int64_t ldout) {
#ifdef PFI_KERNELS_X86
  if (grid_simd_enabled()) {
    requantize_cols_grid_avx2(m, n, acc, ldacc, a_scale, col_scale, bias,
                              out_scale, relu, out, ldout);
    return;
  }
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t* ai = acc + i * ldacc;
    float* oi = out + i * ldout;
    for (std::int64_t j = 0; j < n; ++j) {
      const float bj = bias != nullptr ? bias[j] : 0.0f;
      oi[j] = grid_unit(
          std::fma(a_scale * col_scale[j], static_cast<float>(ai[j]), bj),
          out_scale, relu);
    }
  }
}

// ----------------------------------------------------------- 16-bit packs ----

void pack_a_16(std::int64_t m, std::int64_t k, const float* a,
               std::int64_t lda, bool trans_a, int mr, Storage16 fmt,
               PackedPanels16& out) {
  PFI_CHECK(mr == 4 || mr == 6 || mr == 8)
      << "pack_a_16 mr must be 4, 6, or 8, got " << mr;
  const std::int64_t panels = (m + mr - 1) / mr;
  out.data.resize(static_cast<std::size_t>(panels * mr * k));
  out.k = k;
  out.span = m;
  out.panel = mr;
  out.fmt = fmt;
  std::uint16_t* dst = out.data.data();
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    std::uint16_t* panel = dst + ip * mr * k;
    const std::int64_t row0 = ip * mr;
    const int rows = static_cast<int>(std::min<std::int64_t>(mr, m - row0));
    for (int r = 0; r < rows; ++r) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float v =
            trans_a ? a[kk * lda + row0 + r] : a[(row0 + r) * lda + kk];
        panel[kk * mr + r] = narrow16(v, fmt);
      }
    }
    for (int r = rows; r < mr; ++r) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        panel[kk * mr + r] = narrow16(0.0f, fmt);
      }
    }
  }
}

void pack_b_16(std::int64_t k, std::int64_t n, const float* b,
               std::int64_t ldb, bool trans_b, Storage16 fmt,
               PackedPanels16& out) {
  const std::int64_t panels = (n + kNR - 1) / kNR;
  out.data.resize(static_cast<std::size_t>(panels * kNR * k));
  out.k = k;
  out.span = n;
  out.panel = kNR;
  out.fmt = fmt;
  std::uint16_t* dst = out.data.data();
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    std::uint16_t* panel = dst + jp * kNR * k;
    const std::int64_t col0 = jp * kNR;
    const int cols = static_cast<int>(std::min<std::int64_t>(kNR, n - col0));
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (int c = 0; c < cols; ++c) {
        const float v =
            trans_b ? b[(col0 + c) * ldb + kk] : b[kk * ldb + col0 + c];
        panel[kk * kNR + c] = narrow16(v, fmt);
      }
      for (int c = cols; c < kNR; ++c) {
        panel[kk * kNR + c] = narrow16(0.0f, fmt);
      }
    }
  }
}

void widen_pack(const PackedPanels16& in, PackedPanels& out) {
  out.data.resize(in.data.size());
  out.k = in.k;
  out.span = in.span;
  out.panel = in.panel;
  for (std::size_t i = 0; i < in.data.size(); ++i) {
    out.data[i] = widen16(in.data[i], in.fmt);
  }
}

void narrow_buffer(const float* src, std::int64_t n, Storage16 fmt,
                   std::vector<std::uint16_t>& dst) {
  dst.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) dst[i] = narrow16(src[i], fmt);
}

void widen_buffer(const std::uint16_t* src, std::int64_t n, Storage16 fmt,
                  std::vector<float>& dst) {
  dst.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) dst[i] = widen16(src[i], fmt);
}

// -------------------------------------------------------------- the cache ----

namespace {

/// Fold the scale vector into the weight fingerprint: a pack quantized
/// under different (e.g. frozen-golden vs freshly computed) scales must not
/// be served for the other.
std::uint64_t fp_with_scales(const float* w, std::int64_t wn,
                             const float* scales, std::int64_t sn) {
  return fingerprint(w, wn) * 1099511628211ull ^ fingerprint(scales, sn);
}

}  // namespace

const PackedPanelsI8& LowPrecPackCache::packed_a_i8(
    std::int64_t m, std::int64_t k, const float* w, std::int64_t lda,
    bool trans_a, const float* row_scales) {
  PFI_CHECK((trans_a ? lda == m : lda == k))
      << "LowPrecPackCache::packed_a_i8 needs a contiguous weight matrix";
  const std::uint64_t fp = fp_with_scales(w, m * k, row_scales, m);
  const int mr = block_config().mr;
  if (i8_valid_ && fp == i8_fp_ && i8_mr_ == mr && i8_.span == m &&
      i8_.k == k && i8_.panel == mr) {
    return i8_;
  }
  quantize_pack_a_i8(m, k, w, lda, trans_a, mr, row_scales, i8_);
  i8_fp_ = fp;
  i8_mr_ = mr;
  i8_valid_ = true;
  return i8_;
}

const PackedPanelsI8& LowPrecPackCache::packed_b_i8(
    std::int64_t k, std::int64_t n, const float* w, std::int64_t ldb,
    bool trans_b, const float* col_scales) {
  PFI_CHECK((trans_b ? ldb == k : ldb == n))
      << "LowPrecPackCache::packed_b_i8 needs a contiguous weight matrix";
  const std::uint64_t fp = fp_with_scales(w, n * k, col_scales, n);
  if (i8_valid_ && fp == i8_fp_ && i8_mr_ == 0 && i8_.span == n &&
      i8_.k == k && i8_.panel == kNR) {
    return i8_;
  }
  quantize_pack_b_i8(k, n, w, ldb, trans_b, col_scales, i8_);
  i8_fp_ = fp;
  i8_mr_ = 0;
  i8_valid_ = true;
  return i8_;
}

const PackedPanels16& LowPrecPackCache::packed_a_16(std::int64_t m,
                                                    std::int64_t k,
                                                    const float* w,
                                                    std::int64_t lda,
                                                    bool trans_a,
                                                    Storage16 fmt) {
  PFI_CHECK((trans_a ? lda == m : lda == k))
      << "LowPrecPackCache::packed_a_16 needs a contiguous weight matrix";
  const std::uint64_t fp = fingerprint(w, m * k);
  const int mr = block_config().mr;
  if (h_valid_ && fp == h_fp_ && h_mr_ == mr && h_.span == m && h_.k == k &&
      h_.panel == mr && h_.fmt == fmt) {
    return h_;
  }
  pack_a_16(m, k, w, lda, trans_a, mr, fmt, h_);
  h_fp_ = fp;
  h_mr_ = mr;
  h_valid_ = true;
  return h_;
}

const PackedPanels16& LowPrecPackCache::packed_b_16(std::int64_t k,
                                                    std::int64_t n,
                                                    const float* w,
                                                    std::int64_t ldb,
                                                    bool trans_b,
                                                    Storage16 fmt) {
  PFI_CHECK((trans_b ? ldb == k : ldb == n))
      << "LowPrecPackCache::packed_b_16 needs a contiguous weight matrix";
  const std::uint64_t fp = fingerprint(w, n * k);
  if (h_valid_ && fp == h_fp_ && h_mr_ == 0 && h_.span == n && h_.k == k &&
      h_.panel == kNR && h_.fmt == fmt) {
    return h_;
  }
  pack_b_16(k, n, w, ldb, trans_b, fmt, h_);
  h_fp_ = fp;
  h_mr_ = 0;
  h_valid_ = true;
  return h_;
}

}  // namespace pfi::kernels
