#include "kernels/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#include "util/thread_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PFI_KERNELS_X86 1
#endif

namespace pfi::kernels {

namespace {

// ---------------------------------------------------------------- config ----

Impl read_impl_env() {
  const char* env = std::getenv("PFI_KERNEL");
  if (env == nullptr || *env == '\0') return Impl::kBlocked;
  const std::string v(env);
  if (v == "naive") return Impl::kNaive;
  if (v == "blocked") return Impl::kBlocked;
  PFI_CHECK(false) << "PFI_KERNEL must be 'naive' or 'blocked', got '" << v
                   << "'";
  return Impl::kBlocked;
}

int read_threads_env() {
  const char* env = std::getenv("PFI_KERNEL_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const int n = std::atoi(env);
  PFI_CHECK(n >= 1) << "PFI_KERNEL_THREADS must be >= 1, got '" << env << "'";
  return n;
}

std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return ((v + to - 1) / to) * to;
}

BlockConfig normalize(BlockConfig cfg) {
  PFI_CHECK(cfg.mr == 4 || cfg.mr == 6 || cfg.mr == 8)
      << "BlockConfig.mr must be 4, 6, or 8, got " << cfg.mr;
  PFI_CHECK(cfg.mc >= 1 && cfg.nc >= 1 && cfg.kc >= 1)
      << "BlockConfig sizes must be positive: mc=" << cfg.mc
      << " nc=" << cfg.nc << " kc=" << cfg.kc;
  cfg.mc = round_up(cfg.mc, cfg.mr);
  cfg.nc = round_up(cfg.nc, kNR);
  return cfg;
}

Impl g_impl = read_impl_env();
int g_threads = read_threads_env();
BlockConfig g_block = normalize(BlockConfig{});

// Intra-op pool, sized lazily to the current threads() setting. Resizing
// happens only from single-threaded control flow (tests, main), never while
// a parallel gemm is in flight.
std::unique_ptr<util::ThreadPool> g_pool;
std::mutex g_pool_mutex;

// Set while executing a tile on the intra-op pool: a nested gemm (e.g. a
// module calling matmul from inside a parallel region) runs serially instead
// of deadlocking on its own pool.
thread_local bool tls_in_kernel = false;

util::ThreadPool& intra_op_pool(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool == nullptr || g_pool->size() != n) {
    g_pool = std::make_unique<util::ThreadPool>(n);
  }
  return *g_pool;
}

// ---------------------------------------------------------- microkernels ----

// All microkernels advance the per-element chain acc = fma(a, b, acc) over
// one k panel in ascending k, reading and writing the mr x kNR output tile
// in place (row stride ldc — either C itself for full tiles or a contiguous
// scratch tile for edges). std::fma and vfmadd are both the correctly
// rounded fused operation, so the scalar and AVX2 paths produce identical
// bits — dispatch is a speed choice, never a numerics choice. Likewise the
// 8-row AVX2 kernel runs as two 4-row halves over the same k panel: rows
// are independent chains, so the split never changes bits.

// `bs` is the B row stride: kNR when B is packed into panels, the raw ldb
// when the kernel streams a row-major B in place (trans_b == false needs no
// packing — 16 consecutive columns of a row are already contiguous).

template <int MR>
void micro_scalar(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, std::int64_t bs,
                  float* __restrict c, std::int64_t ldc) {
  for (std::int64_t k = 0; k < kc; ++k) {
    const float* a = ap + k * MR;
    const float* b = bp + k * bs;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r];
      float* cr = c + r * ldc;
      for (int cc = 0; cc < kNR; ++cc) cr[cc] = std::fma(av, b[cc], cr[cc]);
    }
  }
}

#ifdef PFI_KERNELS_X86

// 6x16: 12 accumulators + 2 B vectors + 1 broadcast = 15 ymm registers;
// per k step: 2 B loads + 6 broadcasts vs 12 FMAs keeps both FMA ports fed.
__attribute__((target("avx2,fma"))) void micro_avx2_6(std::int64_t kc,
                                                      const float* ap,
                                                      const float* bp,
                                                      std::int64_t bs,
                                                      float* c,
                                                      std::int64_t ldc) {
  __m256 c00 = _mm256_loadu_ps(c + 0 * ldc), c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 c10 = _mm256_loadu_ps(c + 1 * ldc), c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 c20 = _mm256_loadu_ps(c + 2 * ldc), c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 c30 = _mm256_loadu_ps(c + 3 * ldc), c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  __m256 c40 = _mm256_loadu_ps(c + 4 * ldc), c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  __m256 c50 = _mm256_loadu_ps(c + 5 * ldc), c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  for (std::int64_t k = 0; k < kc; ++k) {
    const __m256 b0 = _mm256_loadu_ps(bp + k * bs);
    const __m256 b1 = _mm256_loadu_ps(bp + k * bs + 8);
    const float* a = ap + k * 6;
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00); c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10); c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20); c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30); c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(a + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40); c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(a + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50); c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  _mm256_storeu_ps(c + 0 * ldc, c00); _mm256_storeu_ps(c + 0 * ldc + 8, c01);
  _mm256_storeu_ps(c + 1 * ldc, c10); _mm256_storeu_ps(c + 1 * ldc + 8, c11);
  _mm256_storeu_ps(c + 2 * ldc, c20); _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  _mm256_storeu_ps(c + 3 * ldc, c30); _mm256_storeu_ps(c + 3 * ldc + 8, c31);
  _mm256_storeu_ps(c + 4 * ldc, c40); _mm256_storeu_ps(c + 4 * ldc + 8, c41);
  _mm256_storeu_ps(c + 5 * ldc, c50); _mm256_storeu_ps(c + 5 * ldc + 8, c51);
}

/// Four rows of a kNR-wide tile; `astride` is the A-panel row count (4 when
/// the panel is 4 tall, 8 when this is one half of the 8-row kernel).
__attribute__((target("avx2,fma"))) inline void micro_avx2_half4(
    std::int64_t kc, const float* ap, int astride, const float* bp,
    std::int64_t bs, float* c, std::int64_t ldc) {
  __m256 c00 = _mm256_loadu_ps(c + 0 * ldc), c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 c10 = _mm256_loadu_ps(c + 1 * ldc), c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 c20 = _mm256_loadu_ps(c + 2 * ldc), c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 c30 = _mm256_loadu_ps(c + 3 * ldc), c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  for (std::int64_t k = 0; k < kc; ++k) {
    const __m256 b0 = _mm256_loadu_ps(bp + k * bs);
    const __m256 b1 = _mm256_loadu_ps(bp + k * bs + 8);
    const float* a = ap + k * astride;
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00); c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10); c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20); c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30); c31 = _mm256_fmadd_ps(av, b1, c31);
  }
  _mm256_storeu_ps(c + 0 * ldc, c00); _mm256_storeu_ps(c + 0 * ldc + 8, c01);
  _mm256_storeu_ps(c + 1 * ldc, c10); _mm256_storeu_ps(c + 1 * ldc + 8, c11);
  _mm256_storeu_ps(c + 2 * ldc, c20); _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  _mm256_storeu_ps(c + 3 * ldc, c30); _mm256_storeu_ps(c + 3 * ldc + 8, c31);
}

__attribute__((target("avx2,fma"))) void micro_avx2_4(std::int64_t kc,
                                                      const float* ap,
                                                      const float* bp,
                                                      std::int64_t bs,
                                                      float* c,
                                                      std::int64_t ldc) {
  micro_avx2_half4(kc, ap, 4, bp, bs, c, ldc);
}

__attribute__((target("avx2,fma"))) void micro_avx2_8(std::int64_t kc,
                                                      const float* ap,
                                                      const float* bp,
                                                      std::int64_t bs,
                                                      float* c,
                                                      std::int64_t ldc) {
  micro_avx2_half4(kc, ap, 8, bp, bs, c, ldc);
  micro_avx2_half4(kc, ap + 4, 8, bp, bs, c + 4 * ldc, ldc);
}

#endif  // PFI_KERNELS_X86

using MicroFn = void (*)(std::int64_t, const float*, const float*,
                         std::int64_t, float*, std::int64_t);

MicroFn micro_for(int mr) {
#ifdef PFI_KERNELS_X86
  if (simd_available()) {
    return mr == 8 ? micro_avx2_8 : (mr == 6 ? micro_avx2_6 : micro_avx2_4);
  }
#endif
  return mr == 8 ? micro_scalar<8>
                 : (mr == 6 ? micro_scalar<6> : micro_scalar<4>);
}

// -------------------------------------------------------------- compute ----

/// B operand of the blocked core: either pre-packed kNR panels or a raw
/// row-major KxN matrix the microkernel streams in place (no packing pass —
/// the layouts coincide for full-width column tiles).
struct BView {
  const float* packed = nullptr;  ///< panel data (panel stride kNR * k)
  std::int64_t k = 0;             ///< panel depth of the packed form
  const float* raw = nullptr;     ///< row-major KxN, read in place
  std::int64_t ldb = 0;
};

thread_local std::vector<float> tls_edge_b;

/// One macro tile: rows [i0, i1) x cols [j0, j1) of C, full K sweep. The
/// k loop is outermost within the tile so each element's chain is flushed to
/// C between k panels — fp32 stores are exact, so the chain (and thus every
/// bit of C) is independent of kc, the tile bounds, and the executing thread.
void compute_tile(std::int64_t m, std::int64_t n, std::int64_t k,
                  const PackedPanels& a, const BView& b, float* c,
                  std::int64_t ldc, Epilogue epilogue, const float* bias,
                  std::int64_t kc, std::int64_t i0, std::int64_t i1,
                  std::int64_t j0, std::int64_t j1, MicroFn micro) {
  const int mr = a.panel;
  float acc[8 * kNR];
  for (std::int64_t kb = 0; kb < k; kb += kc) {
    const std::int64_t klen = std::min(kc, k - kb);
    const bool first = kb == 0;
    for (std::int64_t j = j0; j < j1; j += kNR) {
      const int nv = static_cast<int>(std::min<std::int64_t>(kNR, n - j));
      const float* bp;
      std::int64_t bs;
      if (b.packed != nullptr) {
        bp = b.packed + (j / kNR) * (kNR * b.k) + kb * kNR;
        bs = kNR;
      } else if (nv == kNR) {
        bp = b.raw + kb * b.ldb + j;  // stream B in place
        bs = b.ldb;
      } else {
        // Right-edge tile of a raw B: gather the nv live columns into a
        // zero-padded panel so the microkernel never reads past row ends.
        tls_edge_b.resize(static_cast<std::size_t>(klen * kNR));
        for (std::int64_t kk = 0; kk < klen; ++kk) {
          const float* src = b.raw + (kb + kk) * b.ldb + j;
          float* dstrow = tls_edge_b.data() + kk * kNR;
          std::memcpy(dstrow, src, sizeof(float) * nv);
          std::fill(dstrow + nv, dstrow + kNR, 0.0f);
        }
        bp = tls_edge_b.data();
        bs = kNR;
      }
      for (std::int64_t i = i0; i < i1; i += mr) {
        const int mv = static_cast<int>(std::min<std::int64_t>(mr, m - i));
        const float* ap = a.data.data() + (i / mr) * (mr * a.k) + kb * mr;
        if (mv == mr && nv == kNR) {
          // Full tile: the microkernel reads and writes C in place; only
          // the first k panel needs its epilogue init written out.
          float* ct = c + i * ldc + j;
          if (first) {
            switch (epilogue) {
              case Epilogue::kAccumulate:
                break;
              case Epilogue::kZero:
              case Epilogue::kReluZero:  // callers pass the base; same init
                for (int r = 0; r < mr; ++r) {
                  std::fill(ct + r * ldc, ct + r * ldc + kNR, 0.0f);
                }
                break;
              case Epilogue::kBiasRow:
              case Epilogue::kReluBiasRow:
                for (int r = 0; r < mr; ++r) {
                  std::fill(ct + r * ldc, ct + r * ldc + kNR, bias[i + r]);
                }
                break;
              case Epilogue::kBiasCol:
                for (int r = 0; r < mr; ++r) {
                  std::copy(bias + j, bias + j + kNR, ct + r * ldc);
                }
                break;
            }
          }
          micro(klen, ap, bp, bs, ct, ldc);
          continue;
        }
        // Edge tile: run in a zero-padded scratch tile, copy the valid
        // region back. Same chains, so same bits as the full-tile path.
        if (first && epilogue == Epilogue::kZero) {
          std::fill(acc, acc + mr * kNR, 0.0f);
        } else if (first && epilogue == Epilogue::kBiasRow) {
          for (int r = 0; r < mr; ++r) {
            const float v = r < mv ? bias[i + r] : 0.0f;
            for (int cc = 0; cc < kNR; ++cc) acc[r * kNR + cc] = v;
          }
        } else if (first && epilogue == Epilogue::kBiasCol) {
          for (int cc = 0; cc < kNR; ++cc) {
            const float v = cc < nv ? bias[j + cc] : 0.0f;
            for (int r = 0; r < mr; ++r) acc[r * kNR + cc] = v;
          }
        } else {  // resume the chain from C (or kAccumulate's initial C)
          for (int r = 0; r < mr; ++r) {
            for (int cc = 0; cc < kNR; ++cc) {
              acc[r * kNR + cc] =
                  (r < mv && cc < nv) ? c[(i + r) * ldc + j + cc] : 0.0f;
            }
          }
        }
        micro(klen, ap, bp, bs, acc, kNR);
        for (int r = 0; r < mv; ++r) {
          for (int cc = 0; cc < nv; ++cc) {
            c[(i + r) * ldc + j + cc] = acc[r * kNR + cc];
          }
        }
      }
    }
  }
}

/// Epilogue-only path for K == 0 (and the init half of naive_gemm).
void apply_epilogue_init(std::int64_t m, std::int64_t n, float* c,
                         std::int64_t ldc, Epilogue epilogue,
                         const float* bias) {
  switch (epilogue) {
    case Epilogue::kAccumulate:
      return;
    case Epilogue::kZero:
    case Epilogue::kReluZero:  // callers split off relu; same init
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
      }
      return;
    case Epilogue::kBiasRow:
    case Epilogue::kReluBiasRow:
      for (std::int64_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, bias[i]);
      }
      return;
    case Epilogue::kBiasCol:
      for (std::int64_t i = 0; i < m; ++i) {
        std::copy(bias, bias + n, c + i * ldc);
      }
      return;
  }
}

thread_local PackedPanels tls_pack_a;
thread_local PackedPanels tls_pack_b;

}  // namespace

// ----------------------------------------------------------- public api ----

Impl active_impl() { return g_impl; }
void set_impl(Impl impl) { g_impl = impl; }

bool simd_available() {
#ifdef PFI_KERNELS_X86
  static const bool available =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return available;
#else
  return false;
#endif
}

const BlockConfig& block_config() { return g_block; }
void set_block_config(BlockConfig cfg) { g_block = normalize(cfg); }

int threads() { return g_threads; }
void set_threads(int n) {
  PFI_CHECK(n >= 1) << "kernels::set_threads(" << n << ") must be >= 1";
  g_threads = n;
}

namespace detail {

void run_tiles(std::int64_t tiles,
               const std::function<void(std::int64_t)>& fn) {
  const int nthreads = g_threads;
  if (nthreads <= 1 || tiles <= 1 || tls_in_kernel) {
    for (std::int64_t t = 0; t < tiles; ++t) fn(t);
    return;
  }
  intra_op_pool(static_cast<std::size_t>(nthreads))
      .run(static_cast<std::size_t>(tiles), [&](std::size_t t) {
        tls_in_kernel = true;
        fn(static_cast<std::int64_t>(t));
        tls_in_kernel = false;
      });
}

}  // namespace detail

void pack_a(std::int64_t m, std::int64_t k, const float* a, std::int64_t lda,
            bool trans_a, int mr, PackedPanels& out) {
  PFI_CHECK(mr == 4 || mr == 6 || mr == 8)
      << "pack_a mr must be 4, 6, or 8, got " << mr;
  const std::int64_t panels = (m + mr - 1) / mr;
  // Every element is written below (padding lanes explicitly), so a plain
  // resize avoids re-zeroing the reused thread-local scratch each call.
  out.data.resize(static_cast<std::size_t>(panels * mr * k));
  out.k = k;
  out.span = m;
  out.panel = mr;
  float* dst = out.data.data();
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    float* panel = dst + ip * mr * k;
    const std::int64_t row0 = ip * mr;
    const int rows = static_cast<int>(std::min<std::int64_t>(mr, m - row0));
    if (trans_a) {
      // A is KxM: a panel row is mr contiguous floats per k.
      const float* src = a + row0;
      if (rows == mr) {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          std::memcpy(panel + kk * mr, src + kk * lda, sizeof(float) * mr);
        }
      } else {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          std::memcpy(panel + kk * mr, src + kk * lda, sizeof(float) * rows);
          std::fill(panel + kk * mr + rows, panel + (kk + 1) * mr, 0.0f);
        }
      }
    } else {
      // A is MxK: interleave one contiguous source row per panel lane.
      for (int r = 0; r < rows; ++r) {
        const float* src = a + (row0 + r) * lda;
        for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * mr + r] = src[kk];
      }
      for (int r = rows; r < mr; ++r) {
        for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * mr + r] = 0.0f;
      }
    }
  }
}

void pack_b(std::int64_t k, std::int64_t n, const float* b, std::int64_t ldb,
            bool trans_b, PackedPanels& out) {
  const std::int64_t panels = (n + kNR - 1) / kNR;
  out.data.resize(static_cast<std::size_t>(panels * kNR * k));
  out.k = k;
  out.span = n;
  out.panel = kNR;
  float* dst = out.data.data();
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    float* panel = dst + jp * kNR * k;
    const std::int64_t col0 = jp * kNR;
    const int cols = static_cast<int>(std::min<std::int64_t>(kNR, n - col0));
    if (!trans_b) {
      // B is KxN: a panel row is kNR contiguous floats per k.
      const float* src = b + col0;
      if (cols == kNR) {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          std::memcpy(panel + kk * kNR, src + kk * ldb, sizeof(float) * kNR);
        }
      } else {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          std::memcpy(panel + kk * kNR, src + kk * ldb, sizeof(float) * cols);
          std::fill(panel + kk * kNR + cols, panel + (kk + 1) * kNR, 0.0f);
        }
      }
    } else {
      // B is NxK: interleave one contiguous source row per panel lane.
      for (int c = 0; c < cols; ++c) {
        const float* src = b + (col0 + c) * ldb;
        for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * kNR + c] = src[kk];
      }
      for (int c = cols; c < kNR; ++c) {
        for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * kNR + c] = 0.0f;
      }
    }
  }
}

namespace {

/// Shared blocked core: fixed tile grid over C, optional intra-op pool.
/// relu(v) with nn::ReLU's exact semantics: negatives, -0.0, and NaN all
/// map to +0.0. The fused epilogues must match the unfused conv + ReLU
/// composition bit for bit.
float relu_unit(float v) { return v > 0.0f ? v : 0.0f; }

/// Split a (possibly relu-fused) epilogue into its accumulation base and
/// the rectification flag. compute_tile and apply_epilogue_init only ever
/// see base epilogues.
Epilogue epilogue_base(Epilogue e, bool* relu) {
  switch (e) {
    case Epilogue::kReluZero:
      *relu = true;
      return Epilogue::kZero;
    case Epilogue::kReluBiasRow:
      *relu = true;
      return Epilogue::kBiasRow;
    default:
      *relu = false;
      return e;
  }
}

void gemm_core(std::int64_t m, std::int64_t n, std::int64_t k,
               const PackedPanels& a, const BView& bv, float* c,
               std::int64_t ldc, Epilogue epilogue, const float* bias) {
  PFI_CHECK(a.panel == 4 || a.panel == 6 || a.panel == 8)
      << "blocked gemm: A pack has panel " << a.panel;
  PFI_CHECK(a.k == k) << "blocked gemm: A pack has K " << a.k << ", need "
                      << k;
  PFI_CHECK(a.span >= m)
      << "blocked gemm: A pack covers " << a.span << " rows, need " << m;
  PFI_CHECK((epilogue != Epilogue::kBiasRow && epilogue != Epilogue::kBiasCol &&
             epilogue != Epilogue::kReluBiasRow) ||
            bias != nullptr)
      << "blocked gemm: bias epilogue without a bias vector";
  if (m == 0 || n == 0) return;
  bool relu = false;
  const Epilogue base = epilogue_base(epilogue, &relu);
  if (k == 0) {
    apply_epilogue_init(m, n, c, ldc, base, bias);
    if (relu) {
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          c[i * ldc + j] = relu_unit(c[i * ldc + j]);
        }
      }
    }
    return;
  }

  const BlockConfig cfg = g_block;
  // Macro tiles must align with packed panel boundaries; the grid depends
  // only on (m, n) and the block sizes — never on the thread count.
  const std::int64_t mc = round_up(cfg.mc, a.panel);
  const std::int64_t nc = round_up(cfg.nc, kNR);
  const std::int64_t ti = (m + mc - 1) / mc;
  const std::int64_t tj = (n + nc - 1) / nc;
  const std::int64_t tiles = ti * tj;
  const MicroFn micro = micro_for(a.panel);

  detail::run_tiles(tiles, [&](std::int64_t t) {
    const std::int64_t row = t / tj;
    const std::int64_t col = t % tj;
    const std::int64_t i0 = row * mc, i1 = std::min(m, (row + 1) * mc);
    const std::int64_t j0 = col * nc, j1 = std::min(n, (col + 1) * nc);
    compute_tile(m, n, k, a, bv, c, ldc, base, bias, cfg.kc, i0, i1, j0, j1,
                 micro);
    if (relu) {
      // Each C element belongs to exactly one macro tile, so rectifying
      // here is race-free and ordering-independent.
      for (std::int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * ldc;
        for (std::int64_t j = j0; j < j1; ++j) ci[j] = relu_unit(ci[j]);
      }
    }
  });
}

BView packed_view(const PackedPanels& b) {
  PFI_CHECK(b.panel == kNR) << "blocked gemm: B pack has panel " << b.panel;
  return BView{.packed = b.data.data(), .k = b.k};
}

/// Raw B view: a non-transposed row-major B is streamed in place; a
/// transposed one is packed into thread-local scratch first.
BView raw_b_view(std::int64_t k, std::int64_t n, const float* b,
                 std::int64_t ldb, bool trans_b) {
  if (!trans_b) return BView{.raw = b, .ldb = ldb};
  pack_b(k, n, b, ldb, trans_b, tls_pack_b);
  return packed_view(tls_pack_b);
}

}  // namespace

void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k,
                 const PackedPanels& a, const PackedPanels& b, float* c,
                 std::int64_t ldc, Epilogue epilogue, const float* bias) {
  PFI_CHECK(b.k == k && b.span >= n)
      << "gemm_packed: B pack covers " << b.span << " cols at K " << b.k
      << ", need " << n << " at " << k;
  gemm_core(m, n, k, a, packed_view(b), c, ldc, epilogue, bias);
}

void gemm_prepacked_a(std::int64_t m, std::int64_t n, std::int64_t k,
                      const PackedPanels& a, const float* b, std::int64_t ldb,
                      bool trans_b, float* c, std::int64_t ldc,
                      Epilogue epilogue, const float* bias) {
  gemm_core(m, n, k, a, raw_b_view(k, n, b, ldb, trans_b), c, ldc, epilogue,
            bias);
}

void gemm_prepacked_b(std::int64_t m, std::int64_t n, std::int64_t k,
                      const float* a, std::int64_t lda, bool trans_a,
                      const PackedPanels& b, float* c, std::int64_t ldc,
                      Epilogue epilogue, const float* bias) {
  pack_a(m, k, a, lda, trans_a, g_block.mr, tls_pack_a);
  gemm_packed(m, n, k, tls_pack_a, b, c, ldc, epilogue, bias);
}

void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, std::int64_t lda, bool trans_a,
                  const float* b, std::int64_t ldb, bool trans_b, float* c,
                  std::int64_t ldc, Epilogue epilogue, const float* bias) {
  pack_a(m, k, a, lda, trans_a, g_block.mr, tls_pack_a);
  gemm_core(m, n, k, tls_pack_a, raw_b_view(k, n, b, ldb, trans_b), c, ldc,
            epilogue, bias);
}

void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                std::int64_t lda, bool trans_a, const float* b,
                std::int64_t ldb, bool trans_b, float* c, std::int64_t ldc,
                Epilogue epilogue, const float* bias) {
  PFI_CHECK((epilogue != Epilogue::kBiasRow && epilogue != Epilogue::kBiasCol &&
             epilogue != Epilogue::kReluBiasRow) ||
            bias != nullptr)
      << "naive_gemm: bias epilogue without a bias vector";
  bool relu = false;
  const Epilogue base = epilogue_base(epilogue, &relu);
  apply_epilogue_init(m, n, c, ldc, base, bias);
  // ikj with unit stride on C; every operand participates (no zero-skip),
  // so injected Inf/NaN propagate exactly as IEEE arithmetic dictates.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = trans_a ? a[kk * lda + i] : a[i * lda + kk];
      if (trans_b) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * b[j * ldb + kk];
      } else {
        const float* brow = b + kk * ldb;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
    if (relu) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] = relu_unit(crow[j]);
    }
  }
}

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
          std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
          bool trans_b, float* c, std::int64_t ldc, Epilogue epilogue,
          const float* bias) {
  if (g_impl == Impl::kNaive) {
    naive_gemm(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, epilogue,
               bias);
  } else {
    gemm_blocked(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, epilogue,
                 bias);
  }
}

std::uint64_t fingerprint(const float* p, std::int64_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, p + i, sizeof(bits));
    h = (h ^ bits) * 1099511628211ull;
  }
  return h;
}

const PackedPanels& WeightPackCache::packed_a(std::int64_t m, std::int64_t k,
                                              const float* w,
                                              std::int64_t lda, bool trans_a) {
  PFI_CHECK((trans_a ? lda == m : lda == k))
      << "WeightPackCache::packed_a needs a contiguous weight matrix";
  const std::uint64_t fp = fingerprint(w, m * k);
  const int mr = g_block.mr;
  if (valid_ && fp == fp_ && mr_ == mr && packed_.span == m &&
      packed_.k == k && packed_.panel == mr) {
    return packed_;
  }
  pack_a(m, k, w, lda, trans_a, mr, packed_);
  fp_ = fp;
  mr_ = mr;
  valid_ = true;
  return packed_;
}

const PackedPanels& WeightPackCache::packed_b(std::int64_t k, std::int64_t n,
                                              const float* w,
                                              std::int64_t ldb, bool trans_b) {
  PFI_CHECK((trans_b ? ldb == k : ldb == n))
      << "WeightPackCache::packed_b needs a contiguous weight matrix";
  const std::uint64_t fp = fingerprint(w, n * k);
  if (valid_ && fp == fp_ && packed_.span == n && packed_.k == k &&
      packed_.panel == kNR) {
    return packed_;
  }
  pack_b(k, n, w, ldb, trans_b, packed_);
  fp_ = fp;
  mr_ = 0;
  valid_ = true;
  return packed_;
}

}  // namespace pfi::kernels
