// Persistent & rate-based memory-fault scenarios.
//
// Transient campaigns (core/campaign.hpp) model soft errors in datapath
// values: one corruption, one inference, then the fault is gone. Real
// deployed accelerators also suffer MEMORY faults that do not go away —
// a stuck-at cell in a weight SRAM, an accumulating bit-error rate in DRAM
// holding the packed weights, or burst upsets spaced by a characteristic
// physical distance. Those faults persist across inferences and accumulate
// over deployment time.
//
// PersistentFaultSet owns that process on top of a FaultInjector:
//
//  * A simulated clock counts inference EVENTS (0, 1, 2, ...). advance_to(t)
//    applies every fault event with index < t, in order.
//
//  * Every fault is a pure function of (scenario.seed, event index, layer):
//    each (event, layer) pair derives its own counter-based RNG, so two
//    PersistentFaultSets with the same scenario replay byte-identical fault
//    streams — on any thread, in any process, resumed from any point.
//
//  * Three fault processes, combinable:
//      - BER: every bit of every eligible weight tensor flips independently
//        with probability `ber` per event. Sampled with geometric gap
//        skipping, so the cost is O(#flips), not O(#bits).
//      - distance: errors land on a byte-walk whose gaps are draws from
//        N(distance_mean, distance_stddev) bytes — a burst/row-hammer-style
//        spatial error model. One random bit of each landed byte flips.
//      - stuck-at: `stuck_bits` cells drawn once at event 0 and registered
//        with the injector, which re-forces them after every clear() so no
//        transient restore (or later flip) can un-stick them.
//
//  * Faults land in the DEPLOYED representation: the injector invalidates
//    the layer's packed-weight caches on every write, so native INT8 /
//    fp16 / bf16 layers re-pack the corrupted codes before the next
//    forward (FaultInjector::write_persistent_bit).
//
// The set heals its injector on destruction (and via heal()), restoring
// golden weights bit-exactly.
#pragma once

#include "core/fault_injector.hpp"

namespace pfi::core {

/// The fault process of one persistent-fault scenario. All-zero defaults
/// describe a fault-free fleet (advance_to is then a no-op).
struct PersistScenario {
  /// Per-bit upset probability per event over every eligible weight bit
  /// (in the layer's deployed representation). Must be in [0, 1).
  double ber = 0.0;
  /// Number of stuck-at cells drawn (uniformly over the eligible bit
  /// space) at event 0.
  std::int64_t stuck_bits = 0;
  /// Value the stuck cells are forced to: 0, 1, or -1 for a random value
  /// per cell.
  int stuck_value = -1;
  /// Mean byte distance between consecutive errors of the distance-based
  /// walk; 0 disables the process.
  double distance_mean = 0.0;
  double distance_stddev = 0.0;
  /// Restrict faults to one instrumented layer; -1 = all layers.
  std::int64_t layer = -1;
  /// Root seed of the fault process (independent of input-draw seeds).
  std::uint64_t seed = 0x5eedfa17ull;
};

/// Event-time persistent faults over a FaultInjector's weight memory.
class PersistentFaultSet {
 public:
  /// Validates the scenario against the injector's instrumented layers.
  /// The injector must be persistently quiescent (no prior persistent
  /// faults) — the set assumes ownership of its persistent state.
  PersistentFaultSet(FaultInjector& fi, PersistScenario scenario);

  /// Heals the injector (weights restored bit-exactly to golden).
  ~PersistentFaultSet();

  PersistentFaultSet(const PersistentFaultSet&) = delete;
  PersistentFaultSet& operator=(const PersistentFaultSet&) = delete;

  /// Apply every fault event with index in [now(), t), advancing the clock
  /// to t. Monotonic: t < now() is an error. Each event's faults emit
  /// kPersist trace events (stamped with the event index) into whatever
  /// sink is attached to the injector at the time.
  void advance_to(std::uint64_t t);

  /// The clock: number of events applied so far.
  std::uint64_t now() const { return now_; }

  /// Cumulative persistent writes performed (BER + distance + stuck
  /// births) — a pure function of (scenario, now()).
  std::uint64_t faults_applied() const { return faults_applied_; }

  /// Restore the injector to golden and reset the clock to 0.
  void heal();

  const PersistScenario& scenario() const { return scenario_; }

 private:
  void apply_event(std::uint64_t t);
  void draw_stuck_cells();

  FaultInjector& fi_;
  PersistScenario scenario_;
  std::vector<std::int64_t> layers_;  ///< eligible instrumented layer indices
  std::uint64_t now_ = 0;
  std::uint64_t faults_applied_ = 0;
  std::string ber_name_;       ///< trace model id, e.g. "ber[1e-05]"
  std::string distance_name_;  ///< e.g. "distance[64,16]"
};

}  // namespace pfi::core
