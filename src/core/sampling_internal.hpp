// Shared internals of the stratified campaign runner (core/sampling.cpp).
// Extracted so core/shard.cpp can drive the SAME schedule and fold code in
// three places — the single-process runner, a shard process executing only
// its owned strata, and the merge step replaying recorded outcomes — which
// is what makes a merged shard set byte-identical to a single-process run.
//
// The load-bearing property: in fixed-budget mode (target_half_width == 0)
// every scheduling decision for stratum s (quantum size, open/closed, caps)
// is a pure function of stratum s's own folded counters. Strata are fully
// decoupled, so a shard that owns a subset of strata runs them to their
// exact caps standalone, and the merge replays the global wave interleaving
// over the recorded outcomes. CI mode (target > 0) couples strata through
// s_pos / the pooled interval / the budget backstop, so sharding is refused
// there (core/shard.cpp enforces it with a clear error).
#pragma once

#include "core/campaign_internal.hpp"
#include "core/sampling.hpp"

namespace pfi::core::detail {

inline constexpr std::uint64_t kStratumStoppedEarlyFlag = 1;
inline constexpr std::uint64_t kStratumGaveUpFlag = 2;

/// Max attempts one stratum contributes to a single wave. Small enough that
/// early termination reacts within a wave or two of a stratum resolving,
/// large enough that the per-wave barrier stays negligible. Deliberately
/// NOT a function of the thread count: wave composition must be a pure
/// function of the folded state or stopping decisions would vary with
/// sharding.
inline constexpr std::uint64_t kMaxStratumQuantum = 8;

/// One scheduled stratum attempt: which stratum, its stratum-local attempt
/// index, and the campaign-global sequence number traces stamp as the
/// `attempt` field (stratum-local indices would collide across strata).
struct StratUnit {
  std::size_t stratum = 0;
  std::uint64_t attempt = 0;
  std::uint64_t seq = 0;
};

/// Everything one unit observed, mirroring AttemptOutcome with a per-rep
/// pruned marker.
struct StratUnitOutcome {
  std::uint64_t skipped = 0;
  struct Rep {
    bool non_finite = false;
    bool pruned = false;
    std::vector<std::uint8_t> corrupted;  // per scored row, in score order
    std::uint64_t seq = 0;
    std::int32_t rep_index = 0;
    std::vector<trace::InjectionEvent> events;
    Tensor logits;
  };
  std::vector<Rep> reps;
};

/// Largest-remainder allocation of the trial budget across strata by
/// weight: caps sum to `trials` exactly, so a budget-mode campaign scores
/// exactly `trials` trials (matching the uniform runner's contract). Ties
/// in the fractional parts break by stratum index — deterministic.
std::vector<std::uint64_t> allocate_stratum_caps(
    std::uint64_t trials, const std::vector<Stratum>& strata);

/// The frozen scheduling inputs of one stratified campaign: strata with
/// their weights, per-stratum trial and attempt caps, the budget, the CI
/// target, and the per-attempt yield bound. A pure function of (config,
/// model architecture); shard manifests embed it verbatim so the merge can
/// replay the schedule without the model.
struct StratifiedSchedule {
  std::vector<Stratum> strata;
  std::vector<std::uint64_t> caps;
  std::vector<std::uint64_t> attempt_caps;
  std::uint64_t trials_budget = 0;
  double target = 0.0;  ///< target_half_width (0 = fixed-budget mode)
  std::int64_t max_yield = 1;
};

/// Validate `config` (the run_stratified_campaign preconditions) and build
/// its schedule.
StratifiedSchedule make_stratified_schedule(
    FaultInjector& fi, const StratifiedCampaignConfig& config);

/// Run one stratum attempt on one worker. All randomness derives from
/// (config.seed, stratum index, attempt index) — never from which worker or
/// process runs it — so the outcome is a pure function of the unit.
StratUnitOutcome run_stratum_attempt(FaultInjector& fi,
                                     const data::SyntheticDataset& ds,
                                     const StratifiedCampaignConfig& config,
                                     const Stratum& st,
                                     std::size_t stratum_index, bool prunable,
                                     const StratUnit& unit);

/// The deterministic scheduler + fold of a stratified campaign: owns the
/// per-stratum counters, composes waves as a pure function of them, and
/// folds unit outcomes in strict unit order (stamping trace events with the
/// pooled trial index and global sequence number as it goes).
///
/// Three drivers share it: run_stratified_campaign (live execution, all
/// strata), run_stratified_shard (live execution restricted to an ownership
/// mask), and merge_shards (replaying recorded outcomes against the global
/// schedule). Determinism of the merged result reduces to this class being
/// the only scheduler.
class StratifiedFold {
 public:
  StratifiedFold(StratifiedSchedule schedule, trace::TraceSink* sink);

  /// Adopt previously committed per-stratum states (checkpoint resume).
  void restore(const std::vector<StratumCheckpoint>& saved);

  /// The next wave: for each open stratum (restricted to `owned` when
  /// non-null), a yield-sized quantum of consecutive attempts. Empty wave
  /// == campaign done.
  std::vector<StratUnit> compose_wave(
      const std::vector<std::uint8_t>* owned = nullptr) const;

  /// True while any (owned) stratum is still open.
  bool any_open(const std::vector<std::uint8_t>* owned = nullptr) const;

  /// Fold one unit, honouring the stratum's trial cap exactly as the
  /// uniform merge honours the campaign target. Merged strictly in unit
  /// order, so the folded state (and the trace stream) is identical however
  /// the units were computed.
  void merge_unit(const StratUnit& unit, StratUnitOutcome& out);

  /// Recompute every stratum's flags from its frozen counters (call at wave
  /// boundaries; pure, so resume and re-evaluation always agree).
  void refresh_flags();

  CampaignResult pooled() const;
  StratifiedResult assemble() const;
  const std::vector<StratumCheckpoint>& states() const { return ck_; }
  const StratifiedSchedule& schedule() const { return sched_; }

 private:
  bool open(std::size_t s, std::uint64_t pooled_trials, std::size_t s_pos,
            bool global_met) const;
  std::size_t count_positive() const;
  bool pooled_target_met() const;

  StratifiedSchedule sched_;
  trace::TraceSink* sink_;
  std::vector<StratumCheckpoint> ck_;
  std::uint64_t pooled_trials_ = 0;
};

}  // namespace pfi::core::detail
