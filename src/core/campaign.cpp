#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "core/campaign_internal.hpp"
#include "core/checkpoint.hpp"
#include "nn/loss.hpp"
#include "util/thread_pool.hpp"

namespace pfi::core {

namespace detail {

AttemptOutcome run_campaign_attempt(FaultInjector& fi,
                                    const data::SyntheticDataset& ds,
                                    const CampaignConfig& config,
                                    std::int64_t attempt) {
  const auto a = static_cast<std::uint64_t>(attempt);
  Rng rng(derive_seed(config.seed, a, kDrawStream));
  fi.reseed(derive_seed(config.seed, a, kInjectorStream));

  // Worker-local trace buffer: single-threaded, lock-free; the merge step
  // moves its contents into the caller's sink in attempt order.
  const bool tracing = config.trace != nullptr;
  trace::TraceSink local(tracing && config.trace->capture_logits());
  ScopedSink sink_guard(fi, tracing ? &local : fi.trace_sink());

  AttemptOutcome out;
  const auto batch = ds.sample_batch(config.batch_size, rng);

  // Golden run (dtype emulation still active; faults are not), recorded as
  // the attempt's reusable prefix. Argmaxed once; every rep scores against
  // these indices.
  fi.clear();
  const Tensor golden =
      fi.forward(batch.images, ForwardMode::kRecordGolden);
  const auto golden_top1 = nn::argmax_rows(golden);

  // The paper only injects into inferences that are correct to begin with.
  std::vector<std::int64_t> eligible;
  for (std::size_t i = 0; i < batch.labels.size(); ++i) {
    if (golden_top1[i] == batch.labels[i]) {
      eligible.push_back(static_cast<std::int64_t>(i));
    } else {
      ++out.skipped;
    }
  }
  if (eligible.empty()) return out;

  out.reps.reserve(static_cast<std::size_t>(config.injections_per_image));
  for (std::int64_t rep = 0; rep < config.injections_per_image; ++rep) {
    if (tracing) local.set_context(a, static_cast<std::int32_t>(rep));
    NeuronLocation loc;
    loc.batch = config.same_fault_across_batch
                    ? kAllBatchElements
                    : eligible[rng.next_below(eligible.size())];
    if (config.one_fault_per_layer) {
      for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
        NeuronLocation per = fi.random_neuron_location(rng, l);
        per.batch = loc.batch;
        fi.declare_neuron_fault(per, config.error_model);
      }
    } else {
      const NeuronLocation drawn = fi.random_neuron_location(rng, config.layer);
      loc.layer = drawn.layer;
      loc.c = drawn.c;
      loc.h = drawn.h;
      loc.w = drawn.w;
      fi.declare_neuron_fault(loc, config.error_model);
    }
    const Tensor faulty = fi.forward(batch.images, ForwardMode::kReusePrefix);
    fi.clear();

    const RepScorer scorer(golden_top1, faulty, config.criterion);
    AttemptOutcome::Rep r;
    r.non_finite = scorer.faulty_non_finite;
    if (tracing) {
      r.attempt = a;
      r.rep_index = static_cast<std::int32_t>(rep);
      r.events = local.take_events();
      if (local.capture_logits()) r.logits = faulty.clone();
    }
    // Score each eligible element the fault touched.
    for (const std::int64_t row : eligible) {
      if (loc.batch != kAllBatchElements && loc.batch != row) continue;
      r.corrupted.push_back(scorer.is_corrupted(row) ? 1 : 0);
    }
    out.reps.push_back(std::move(r));
  }
  return out;
}

bool merge_campaign_attempt(CampaignResult& acc, AttemptOutcome& outcome,
                            std::uint64_t target, trace::TraceSink* sink) {
  acc.skipped += outcome.skipped;
  for (auto& rep : outcome.reps) {
    if (acc.trials >= target) break;
    if (rep.non_finite) ++acc.non_finite;
    if (sink != nullptr) {
      // The rep made the cut, so its trace ships: its events are stamped
      // with the first trial index it feeds and appended in merge order.
      for (trace::InjectionEvent& ev : rep.events) ev.trial = acc.trials;
      sink->append(std::move(rep.events));
      if (sink->capture_logits() && rep.logits.defined()) {
        sink->append_logits(
            {rep.attempt, rep.rep_index, std::move(rep.logits)});
      }
    }
    for (const std::uint8_t corrupted : rep.corrupted) {
      ++acc.trials;
      acc.corruptions += corrupted;
      if (acc.trials >= target) break;
    }
  }
  return acc.trials >= target;
}

std::int64_t campaign_attempt_cap(const CampaignConfig& config) {
  return config.attempt_cap > 0 ? config.attempt_cap
                                : 10'000 + config.trials * 1'000;
}

}  // namespace detail

namespace {

using detail::AttemptOutcome;
using detail::campaign_attempt_cap;
using detail::has_non_finite;
using detail::kDrawStream;
using detail::kInjectorStream;
using detail::kSerialCommitEvery;
using detail::merge_campaign_attempt;
using detail::RepScorer;
using detail::resolve_threads;
using detail::run_campaign_attempt;
using detail::ScopedSink;
using detail::WaveCommitter;
using detail::WorkerSet;

}  // namespace

CampaignResult run_classification_campaign(FaultInjector& fi,
                                           const data::SyntheticDataset& ds,
                                           const CampaignConfig& config) {
  PFI_CHECK(config.trials > 0) << "campaign trials=" << config.trials;
  PFI_CHECK(config.error_model.apply != nullptr)
      << "campaign error model is unset";
  PFI_CHECK(config.batch_size >= 1 &&
            config.batch_size <= fi.config().batch_size)
      << "campaign batch_size " << config.batch_size
      << " exceeds injector batch size " << fi.config().batch_size;
  PFI_CHECK(config.injections_per_image >= 1)
      << "campaign injections_per_image " << config.injections_per_image;
  PFI_CHECK(config.threads >= 0) << "campaign threads=" << config.threads;
  PFI_CHECK(config.attempt_cap >= 0)
      << "campaign attempt_cap=" << config.attempt_cap;

  fi.model().eval();
  const auto target = static_cast<std::uint64_t>(config.trials);
  const std::int64_t max_yield =
      config.batch_size * config.injections_per_image;
  // A worker that can't fill ~4 attempts has no time to amortize its model
  // replica; don't spin one up.
  const std::int64_t threads = resolve_threads(
      config.threads, std::max<std::int64_t>(1, config.trials / 4));
  const std::int64_t cap = campaign_attempt_cap(config);

  CampaignResult result;
  std::int64_t next_attempt = 0;
  if (config.checkpoint != nullptr) {
    // Resume state is just (folded counters, next attempt): every attempt's
    // randomness derives from (config.seed, attempt), so continuing from
    // here reproduces the uninterrupted run bit-for-bit.
    result = config.checkpoint->result();
    next_attempt = static_cast<std::int64_t>(config.checkpoint->next_unit());
    if (config.checkpoint->done()) return result;
  }
  WaveCommitter committer(config.checkpoint, config.trace);

  if (threads == 1) {
    std::int64_t since_commit = 0;
    bool done = result.trials >= target;
    while (!done) {
      AttemptOutcome outcome = run_campaign_attempt(fi, ds, config, next_attempt);
      done = merge_campaign_attempt(result, outcome, target, config.trace);
      ++next_attempt;
      ++since_commit;
      if (!done && next_attempt >= cap) {
        result.gave_up = 1;
        done = true;
      }
      if (done || since_commit >= kSerialCommitEvery) {
        committer.commit(result, static_cast<std::uint64_t>(next_attempt),
                         done);
        since_commit = 0;
      }
    }
    return result;
  }

  WorkerSet set(fi, threads);
  util::ThreadPool pool(static_cast<std::size_t>(threads));
  bool done = result.trials >= target;
  while (!done) {
    // Size the wave from the observed trial yield per attempt (first wave:
    // assume the maximum, so we under- rather than over-commit).
    const std::uint64_t remaining = target - result.trials;
    const double yield =
        next_attempt > 0
            ? std::max(0.25, static_cast<double>(result.trials) /
                                 static_cast<double>(next_attempt))
            : static_cast<double>(max_yield);
    const auto estimate = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(remaining) / yield));
    // Cap waves at 8 attempts per worker: attempts past the trial target are
    // computed but discarded, so a huge final wave is pure waste, while the
    // per-wave barrier costs only microseconds.
    const std::int64_t wave =
        std::clamp<std::int64_t>(((estimate + threads - 1) / threads) * threads,
                                 threads, threads * 8);

    std::vector<AttemptOutcome> outcomes(static_cast<std::size_t>(wave));
    const std::int64_t base = next_attempt;
    pool.run(static_cast<std::size_t>(threads), [&](std::size_t g) {
      // Worker g owns replica g and the wave's attempts congruent to g, so
      // no injector is touched by two tasks.
      for (std::int64_t i = static_cast<std::int64_t>(g); i < wave;
           i += threads) {
        outcomes[static_cast<std::size_t>(i)] =
            run_campaign_attempt(*set.workers[g], ds, config, base + i);
      }
    });
    for (std::int64_t i = 0; i < wave && !done; ++i) {
      done = merge_campaign_attempt(result, outcomes[static_cast<std::size_t>(i)],
                           target, config.trace);
    }
    next_attempt += wave;
    if (!done && next_attempt >= cap) {
      result.gave_up = 1;
      done = true;
    }
    committer.commit(result, static_cast<std::uint64_t>(next_attempt), done);
  }
  return result;
}

CampaignResult run_weight_campaign(FaultInjector& fi,
                                   const data::SyntheticDataset& ds,
                                   const WeightCampaignConfig& config) {
  PFI_CHECK(config.faults > 0) << "weight campaign faults=" << config.faults;
  PFI_CHECK(config.images_per_fault > 0 &&
            config.images_per_fault <= fi.config().batch_size)
      << "weight campaign images_per_fault=" << config.images_per_fault
      << " must be in [1, injector batch size " << fi.config().batch_size
      << "]";
  PFI_CHECK(config.error_model.apply != nullptr)
      << "weight campaign error model is unset";
  PFI_CHECK(config.threads >= 0) << "weight campaign threads=" << config.threads;

  fi.model().eval();
  const bool tracing = config.trace != nullptr;

  // One fault = one independent unit: draw images, corrupt one weight,
  // score every image, restore. All randomness is derived from the fault
  // index, so the per-fault outcome is a pure function of (config, f).
  struct FaultOutcome {
    CampaignResult counts;
    std::vector<trace::InjectionEvent> events;
    Tensor logits;
  };
  auto run_fault = [&](FaultInjector& worker, std::int64_t f) {
    const auto fu = static_cast<std::uint64_t>(f);
    Rng rng(derive_seed(config.seed, fu, kDrawStream));
    worker.reseed(derive_seed(config.seed, fu, kInjectorStream));

    trace::TraceSink local(tracing && config.trace->capture_logits());
    ScopedSink sink_guard(worker, tracing ? &local : worker.trace_sink());
    if (tracing) local.set_context(fu, 0);

    FaultOutcome out;
    const auto batch = ds.sample_batch(config.images_per_fault, rng);
    worker.clear();
    // No .clone(): every layer's forward writes fresh storage, so the
    // faulty pass below cannot alias or overwrite the golden logits
    // (pinned by PrefixReplay.ForwardOutputsNeverAlias).
    const Tensor golden =
        worker.forward(batch.images, ForwardMode::kRecordGolden);
    const auto golden_top1 = nn::argmax_rows(golden);

    const WeightLocation loc = worker.random_weight_location(rng, config.layer);
    worker.declare_weight_fault(loc, config.error_model);
    const Tensor faulty =
        worker.forward(batch.images, ForwardMode::kReusePrefix);

    const RepScorer scorer(golden_top1, faulty, config.criterion);
    if (scorer.faulty_non_finite) ++out.counts.non_finite;

    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      if (golden_top1[i] != batch.labels[i]) {
        ++out.counts.skipped;  // golden already wrong: not a valid experiment
        continue;
      }
      ++out.counts.trials;
      if (scorer.is_corrupted(static_cast<std::int64_t>(i))) {
        ++out.counts.corruptions;
      }
    }
    worker.clear();  // restore the weight
    if (tracing) {
      out.events = local.take_events();
      // A weight fault is declared offline: the event stream already holds
      // it, and every image of the batch scores against the same faulty
      // forward, so one logits record per fault suffices.
      if (local.capture_logits()) out.logits = faulty.clone();
    }
    return out;
  };

  // Merged strictly in fault-index order, so the folded counts AND the
  // trace stream are identical for every thread count.
  CampaignResult result;
  std::int64_t next_fault = 0;
  if (config.checkpoint != nullptr) {
    result = config.checkpoint->result();
    next_fault = static_cast<std::int64_t>(config.checkpoint->next_unit());
    if (config.checkpoint->done() || next_fault >= config.faults) {
      return result;
    }
  }
  WaveCommitter committer(config.checkpoint, config.trace);
  auto merge_fault = [&](FaultOutcome& out, std::int64_t f) {
    result.trials += out.counts.trials;
    result.skipped += out.counts.skipped;
    result.corruptions += out.counts.corruptions;
    result.non_finite += out.counts.non_finite;
    if (tracing) {
      for (trace::InjectionEvent& ev : out.events) {
        ev.trial = static_cast<std::uint64_t>(f);
      }
      config.trace->append(std::move(out.events));
      if (config.trace->capture_logits() && out.logits.defined()) {
        config.trace->append_logits(
            {static_cast<std::uint64_t>(f), 0, std::move(out.logits)});
      }
    }
  };

  const std::int64_t threads =
      resolve_threads(config.threads,
                      std::max<std::int64_t>(1, config.faults / 4));
  if (threads == 1) {
    std::int64_t since_commit = 0;
    while (next_fault < config.faults) {
      FaultOutcome out = run_fault(fi, next_fault);
      merge_fault(out, next_fault);
      ++next_fault;
      ++since_commit;
      const bool done = next_fault >= config.faults;
      if (config.checkpoint != nullptr &&
          (done || since_commit >= kSerialCommitEvery)) {
        committer.commit(result, static_cast<std::uint64_t>(next_fault), done);
        since_commit = 0;
      }
    }
    return result;
  }

  WorkerSet set(fi, threads);
  util::ThreadPool pool(static_cast<std::size_t>(threads));
  // Faults run in waves of 8 per worker (like the classification runner):
  // per-fault outcomes are pure functions of the fault index, so the wave
  // partition changes nothing about the merged result — it only bounds the
  // outcome buffer and gives the checkpointer its commit points.
  while (next_fault < config.faults) {
    const std::int64_t wave =
        std::min<std::int64_t>(threads * 8, config.faults - next_fault);
    std::vector<FaultOutcome> outcomes(static_cast<std::size_t>(wave));
    const std::int64_t base = next_fault;
    pool.run(static_cast<std::size_t>(threads), [&](std::size_t g) {
      for (std::int64_t i = static_cast<std::int64_t>(g); i < wave;
           i += threads) {
        outcomes[static_cast<std::size_t>(i)] =
            run_fault(*set.workers[g], base + i);
      }
    });
    for (std::int64_t i = 0; i < wave; ++i) {
      merge_fault(outcomes[static_cast<std::size_t>(i)], base + i);
    }
    next_fault += wave;
    committer.commit(result, static_cast<std::uint64_t>(next_fault),
                     next_fault >= config.faults);
  }
  return result;
}

namespace {

/// Everything one fleet event produced, buffered so waves merge strictly in
/// event order (the timeline, counts, and trace stream are then identical
/// for every thread count).
struct FleetEventOutcome {
  FleetEvent ev;
  std::vector<trace::InjectionEvent> events;
  Tensor logits;
};

/// Pack the timeline into the checkpoint's per-stratum records (plain
/// integers in a fixed order); inverse of the unpack in the resume path.
std::vector<StratumCheckpoint> fleet_timeline_to_strata(
    const std::vector<FleetEvent>& timeline) {
  std::vector<StratumCheckpoint> strata;
  strata.reserve(timeline.size());
  for (const FleetEvent& ev : timeline) {
    StratumCheckpoint s;
    s.trials = ev.event;
    s.corruptions = ev.faults;
    s.skipped = ev.correct;
    s.non_finite = ev.non_finite;
    s.pruned = ev.rows;
    strata.push_back(s);
  }
  return strata;
}

}  // namespace

FleetResult run_fleet_campaign(FaultInjector& fi,
                               const data::SyntheticDataset& ds,
                               const FleetCampaignConfig& config) {
  PFI_CHECK(config.horizon > 0) << "fleet campaign horizon=" << config.horizon;
  PFI_CHECK(config.batch_size >= 1 &&
            config.batch_size <= fi.config().batch_size)
      << "fleet campaign batch_size " << config.batch_size
      << " exceeds injector batch size " << fi.config().batch_size;
  PFI_CHECK(config.threads >= 0) << "fleet campaign threads=" << config.threads;

  fi.model().eval();
  const bool tracing = config.trace != nullptr;
  const auto horizon = static_cast<std::int64_t>(config.horizon);

  FleetResult result;
  std::int64_t next_event = 0;
  if (config.checkpoint != nullptr) {
    // The folded counters and the per-event timeline both live in the
    // checkpoint; every event's inputs and faults are pure functions of
    // (seed, event), so (counters, timeline, next event) is the complete
    // resume state.
    const CampaignResult& folded = config.checkpoint->result();
    result.rows = folded.trials;
    result.mismatches = folded.corruptions;
    result.non_finite = folded.non_finite;
    next_event = static_cast<std::int64_t>(config.checkpoint->next_unit());
    for (const StratumCheckpoint& s : config.checkpoint->strata()) {
      result.timeline.push_back({.event = s.trials,
                                 .faults = s.corruptions,
                                 .correct = s.skipped,
                                 .rows = s.pruned,
                                 .non_finite = s.non_finite});
    }
  }
  const auto finalize = [&result] {
    for (const FleetEvent& ev : result.timeline) {
      if (result.first_sdc == kNoSdc && ev.correct < ev.rows) {
        result.first_sdc = ev.event;
      }
    }
    if (!result.timeline.empty()) {
      result.total_faults = result.timeline.back().faults;
    }
  };
  if (config.checkpoint != nullptr &&
      (config.checkpoint->done() || next_event >= horizon)) {
    finalize();
    return result;
  }
  WaveCommitter committer(config.checkpoint, config.trace);

  const std::int64_t threads =
      resolve_threads(config.threads,
                      std::max<std::int64_t>(1, (horizon - next_event) / 4));
  WorkerSet set(fi, threads);

  // Phase A — golden predictions. Computed on the still-quiescent workers
  // (plain forwards, fault-free weights) before any persistent fault lands;
  // each event scores its corrupted serve against these.
  std::vector<std::vector<std::int64_t>> golden_top1(
      static_cast<std::size_t>(horizon));
  {
    util::ThreadPool pool(static_cast<std::size_t>(threads));
    const std::int64_t base = next_event;
    pool.run(static_cast<std::size_t>(threads), [&](std::size_t g) {
      for (std::int64_t t = base + static_cast<std::int64_t>(g); t < horizon;
           t += threads) {
        const auto batch =
            fleet_campaign_event_batch(ds, config,
                                       static_cast<std::uint64_t>(t));
        golden_top1[static_cast<std::size_t>(t)] =
            nn::argmax_rows(set.workers[g]->forward(batch.images));
      }
    });
  }

  // Phase B — the corrupted timeline. Every worker owns a PersistentFaultSet
  // over its replica and advances it through EVERY event in order (fault
  // state is a pure function of (scenario, event), so all replicas hold
  // byte-identical weights at any event); it runs the forward — and emits
  // the trace — only for the events it is assigned. Declared after the
  // WorkerSet so the sets heal their injectors before the replicas die.
  std::vector<std::unique_ptr<PersistentFaultSet>> sets;
  for (std::int64_t g = 0; g < threads; ++g) {
    sets.push_back(std::make_unique<PersistentFaultSet>(
        *set.workers[static_cast<std::size_t>(g)], config.scenario));
  }

  auto run_event = [&](std::size_t g, std::int64_t t) {
    FaultInjector& worker = *set.workers[g];
    PersistentFaultSet& faults = *sets[g];
    const auto tu = static_cast<std::uint64_t>(t);
    // Catch up silently (events other workers own — their fault records are
    // theirs to emit), then apply THIS event's faults with the worker-local
    // sink attached so they are recorded exactly once across the fleet.
    {
      ScopedSink quiet(worker, nullptr);
      faults.advance_to(tu);
    }
    trace::TraceSink local(tracing && config.trace->capture_logits());
    {
      ScopedSink sink_guard(worker, tracing ? &local : nullptr);
      if (tracing) local.set_context(tu, 0);
      faults.advance_to(tu + 1);
    }
    const auto batch = fleet_campaign_event_batch(ds, config, tu);
    const Tensor faulty = worker.forward(batch.images);
    const std::vector<std::int64_t>& golden =
        golden_top1[static_cast<std::size_t>(t)];
    const RepScorer scorer(golden, faulty, CorruptionCriterion::kTop1Mismatch);

    FleetEventOutcome out;
    out.ev.event = tu;
    out.ev.faults = faults.faults_applied();
    out.ev.rows = static_cast<std::uint64_t>(batch.labels.size());
    out.ev.non_finite = scorer.faulty_non_finite ? 1 : 0;
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      if (!scorer.is_corrupted(static_cast<std::int64_t>(i))) ++out.ev.correct;
    }
    if (tracing) {
      out.events = local.take_events();
      if (local.capture_logits()) out.logits = faulty.clone();
    }
    return out;
  };

  auto merge_event = [&](FleetEventOutcome& out) {
    result.rows += out.ev.rows;
    result.mismatches += out.ev.rows - out.ev.correct;
    result.non_finite += out.ev.non_finite;
    if (tracing) {
      for (trace::InjectionEvent& ev : out.events) ev.trial = out.ev.event;
      config.trace->append(std::move(out.events));
      if (config.trace->capture_logits() && out.logits.defined()) {
        config.trace->append_logits({out.ev.event, 0, std::move(out.logits)});
      }
    }
    result.timeline.push_back(out.ev);
  };

  util::ThreadPool pool(static_cast<std::size_t>(threads));
  while (next_event < horizon) {
    // Waves of 8 events per worker, like the other runners: the partition
    // changes nothing about the merged result, it only bounds the outcome
    // buffer and gives the checkpointer its commit points.
    const std::int64_t wave =
        std::min<std::int64_t>(threads * 8, horizon - next_event);
    std::vector<FleetEventOutcome> outcomes(static_cast<std::size_t>(wave));
    const std::int64_t base = next_event;
    pool.run(static_cast<std::size_t>(threads), [&](std::size_t g) {
      for (std::int64_t i = static_cast<std::int64_t>(g); i < wave;
           i += threads) {
        outcomes[static_cast<std::size_t>(i)] = run_event(g, base + i);
      }
    });
    for (std::int64_t i = 0; i < wave; ++i) {
      merge_event(outcomes[static_cast<std::size_t>(i)]);
    }
    next_event += wave;
    if (config.checkpoint != nullptr) {
      CampaignResult folded;
      folded.trials = result.rows;
      folded.corruptions = result.mismatches;
      folded.non_finite = result.non_finite;
      committer.commit(folded, static_cast<std::uint64_t>(next_event),
                       next_event >= horizon,
                       fleet_timeline_to_strata(result.timeline));
    }
  }
  finalize();
  return result;
}

data::Batch fleet_campaign_event_batch(const data::SyntheticDataset& ds,
                                       const FleetCampaignConfig& config,
                                       std::uint64_t event) {
  Rng rng(derive_seed(config.seed, event, kDrawStream));
  return ds.sample_batch(config.batch_size, rng);
}

data::Batch campaign_attempt_batch(const data::SyntheticDataset& ds,
                                   const CampaignConfig& config,
                                   std::uint64_t attempt) {
  Rng rng(derive_seed(config.seed, attempt, kDrawStream));
  return ds.sample_batch(config.batch_size, rng);
}

data::Batch weight_campaign_fault_batch(const data::SyntheticDataset& ds,
                                        const WeightCampaignConfig& config,
                                        std::uint64_t fault_index) {
  Rng rng(derive_seed(config.seed, fault_index, kDrawStream));
  return ds.sample_batch(config.images_per_fault, rng);
}

std::vector<CampaignResult> run_per_layer_campaign(
    FaultInjector& fi, const data::SyntheticDataset& ds,
    CampaignConfig config) {
  // One checkpoint file cannot describe N per-layer campaigns; callers that
  // want crash safety here run one checkpointed campaign per layer.
  PFI_CHECK(config.checkpoint == nullptr)
      << "run_per_layer_campaign does not checkpoint — give each layer its "
         "own CampaignCheckpointer and call run_classification_campaign";
  std::vector<CampaignResult> out;
  out.reserve(static_cast<std::size_t>(fi.num_layers()));
  for (std::int64_t layer = 0; layer < fi.num_layers(); ++layer) {
    config.layer = layer;
    config.seed += 1;  // decorrelate layers, keep determinism
    out.push_back(run_classification_campaign(fi, ds, config));
  }
  return out;
}

}  // namespace pfi::core
