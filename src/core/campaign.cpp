#include "core/campaign.hpp"

#include <cmath>

#include "nn/loss.hpp"

namespace pfi::core {

namespace {

/// True when any logit is NaN or infinite.
bool has_non_finite(const Tensor& logits) {
  for (const float v : logits.data()) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

bool is_corrupted(const Tensor& golden, const Tensor& faulty,
                  std::int64_t row, CorruptionCriterion criterion) {
  switch (criterion) {
    case CorruptionCriterion::kTop1Mismatch: {
      const auto g = nn::argmax_rows(golden);
      const auto f = nn::argmax_rows(faulty);
      if (g[static_cast<std::size_t>(row)] != f[static_cast<std::size_t>(row)])
        return true;
      // NaN logits make argmax meaningless; count them as corruptions, as
      // the observable output is unusable.
      return has_non_finite(faulty);
    }
    case CorruptionCriterion::kTop1NotInTop5: {
      const auto g = nn::argmax_rows(golden);
      return !nn::in_top_k(faulty, row, g[static_cast<std::size_t>(row)], 5) ||
             has_non_finite(faulty);
    }
    case CorruptionCriterion::kNonFiniteOutput:
      return has_non_finite(faulty);
  }
  PFI_CHECK(false) << "unreachable criterion";
}

}  // namespace

CampaignResult run_classification_campaign(FaultInjector& fi,
                                           const data::SyntheticDataset& ds,
                                           const CampaignConfig& config) {
  PFI_CHECK(config.trials > 0) << "campaign trials=" << config.trials;
  PFI_CHECK(config.error_model.apply != nullptr)
      << "campaign error model is unset";
  PFI_CHECK(config.batch_size >= 1 &&
            config.batch_size <= fi.config().batch_size)
      << "campaign batch_size " << config.batch_size
      << " exceeds injector batch size " << fi.config().batch_size;
  PFI_CHECK(config.injections_per_image >= 1)
      << "campaign injections_per_image " << config.injections_per_image;

  Rng rng(config.seed);
  fi.model().eval();
  CampaignResult result;

  while (result.trials < static_cast<std::uint64_t>(config.trials)) {
    const auto batch = ds.sample_batch(config.batch_size, rng);

    // Golden run (dtype emulation still active; faults are not).
    fi.clear();
    const Tensor golden = fi.forward(batch.images);
    const auto golden_top1 = nn::argmax_rows(golden);

    // The paper only injects into inferences that are correct to begin with.
    std::vector<std::int64_t> eligible;
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      if (golden_top1[i] == batch.labels[i]) {
        eligible.push_back(static_cast<std::int64_t>(i));
      } else {
        ++result.skipped;
      }
    }
    if (eligible.empty()) continue;

    for (std::int64_t rep = 0; rep < config.injections_per_image; ++rep) {
      NeuronLocation loc;
      loc.batch = config.same_fault_across_batch
                      ? kAllBatchElements
                      : eligible[rng.next_below(eligible.size())];
      if (config.one_fault_per_layer) {
        for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
          NeuronLocation per = fi.random_neuron_location(rng, l);
          per.batch = loc.batch;
          fi.declare_neuron_fault(per, config.error_model);
        }
      } else {
        const NeuronLocation drawn =
            fi.random_neuron_location(rng, config.layer);
        loc.layer = drawn.layer;
        loc.c = drawn.c;
        loc.h = drawn.h;
        loc.w = drawn.w;
        fi.declare_neuron_fault(loc, config.error_model);
      }
      const Tensor faulty = fi.forward(batch.images);
      fi.clear();

      if (has_non_finite(faulty)) ++result.non_finite;

      // Score each eligible element the fault touched.
      for (const std::int64_t row : eligible) {
        if (loc.batch != kAllBatchElements && loc.batch != row) continue;
        ++result.trials;
        if (is_corrupted(golden, faulty, row, config.criterion)) {
          ++result.corruptions;
        }
        if (result.trials >= static_cast<std::uint64_t>(config.trials)) break;
      }
      if (result.trials >= static_cast<std::uint64_t>(config.trials)) break;
    }
  }
  return result;
}

CampaignResult run_weight_campaign(FaultInjector& fi,
                                   const data::SyntheticDataset& ds,
                                   const WeightCampaignConfig& config) {
  PFI_CHECK(config.faults > 0) << "weight campaign faults=" << config.faults;
  PFI_CHECK(config.images_per_fault > 0 &&
            config.images_per_fault <= fi.config().batch_size)
      << "weight campaign images_per_fault=" << config.images_per_fault
      << " must be in [1, injector batch size " << fi.config().batch_size
      << "]";
  PFI_CHECK(config.error_model.apply != nullptr)
      << "weight campaign error model is unset";

  Rng rng(config.seed);
  fi.model().eval();
  CampaignResult result;

  for (std::int64_t f = 0; f < config.faults; ++f) {
    // Draw the evaluation images first and compute golden outcomes with
    // pristine weights.
    const auto batch = ds.sample_batch(config.images_per_fault, rng);
    fi.clear();
    const Tensor golden = fi.forward(batch.images).clone();
    const auto golden_top1 = nn::argmax_rows(golden);

    const WeightLocation loc = fi.random_weight_location(rng, config.layer);
    fi.declare_weight_fault(loc, config.error_model);
    const Tensor faulty = fi.forward(batch.images);

    bool any_non_finite = false;
    for (const float v : faulty.data()) any_non_finite |= !std::isfinite(v);
    if (any_non_finite) ++result.non_finite;

    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      if (golden_top1[i] != batch.labels[i]) {
        ++result.skipped;  // golden already wrong: not a valid experiment
        continue;
      }
      ++result.trials;
      if (is_corrupted(golden, faulty, static_cast<std::int64_t>(i),
                       config.criterion)) {
        ++result.corruptions;
      }
    }
    fi.clear();  // restore the weight
  }
  return result;
}

std::vector<CampaignResult> run_per_layer_campaign(
    FaultInjector& fi, const data::SyntheticDataset& ds,
    CampaignConfig config) {
  std::vector<CampaignResult> out;
  out.reserve(static_cast<std::size_t>(fi.num_layers()));
  for (std::int64_t layer = 0; layer < fi.num_layers(); ++layer) {
    config.layer = layer;
    config.seed += 1;  // decorrelate layers, keep determinism
    out.push_back(run_classification_campaign(fi, ds, config));
  }
  return out;
}

}  // namespace pfi::core
