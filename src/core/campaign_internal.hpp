// Shared internals of the campaign runners (core/campaign.cpp and
// core/sampling.cpp). Not part of the public API: everything here exists so
// the uniform and stratified engines score, shard, trace, and checkpoint
// attempts with IDENTICAL mechanics — the stratified estimator's claim to
// measure the same quantity as the uniform sampler rests on that.
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/trace.hpp"
#include "nn/loss.hpp"
#include "util/thread_pool.hpp"

namespace pfi::core::detail {

/// Everything one attempt (batch draw + golden run + its injections)
/// observed, in execution order. Kept per-rep so the merge can reproduce
/// the sequential stopping rule exactly: a rep that would run after the
/// trial target was reached is discarded whole, and scored rows past the
/// target are discarded individually. Shard runs (core/shard.cpp) serialize
/// these records verbatim and replay the same fold at merge time — that is
/// what makes a merged shard set byte-identical to a single-process run.
struct AttemptOutcome {
  std::uint64_t skipped = 0;
  struct Rep {
    bool non_finite = false;
    std::vector<std::uint8_t> corrupted;  // per scored row, in score order
    // Trace payload (only populated when the campaign is tracing): the
    // rep's injection events and, optionally, its faulty logits. Kept on
    // the rep so the ordered merge can discard them with it.
    std::uint64_t attempt = 0;
    std::int32_t rep_index = 0;
    std::vector<trace::InjectionEvent> events;
    Tensor logits;
  };
  std::vector<Rep> reps;
};

/// One self-contained attempt. All randomness comes from seeds derived from
/// (config.seed, attempt) — no shared RNG state — so the outcome is a pure
/// function of the attempt index regardless of which worker (or which
/// process) runs it.
AttemptOutcome run_campaign_attempt(FaultInjector& fi,
                                    const data::SyntheticDataset& ds,
                                    const CampaignConfig& config,
                                    std::int64_t attempt);

/// Fold one attempt into the running result, honouring the trial target:
/// reps after the target are dropped, and a rep's scored rows are consumed
/// only up to the target. Returns true once the target is reached. Because
/// attempts are merged strictly in index order, the folded result is the
/// same whether the outcomes were computed serially, by a pool, or replayed
/// from shard records.
bool merge_campaign_attempt(CampaignResult& acc, AttemptOutcome& outcome,
                            std::uint64_t target, trace::TraceSink* sink);

/// Attempts are capped so a model that never classifies correctly stops
/// instead of looping forever. Hitting the cap is not an error: the
/// campaign returns its partial result with `gave_up` set.
std::int64_t campaign_attempt_cap(const CampaignConfig& config);

/// Commit interval for serial (threads == 1) paths, which have no natural
/// wave barrier: checkpoint every this many folded units so fsync cost
/// amortizes while a kill still loses only a few attempts. 32 matches the
/// largest parallel wave (4 threads x 8 attempts) and keeps the measured
/// overhead under 1% of campaign time (EXPERIMENTS.md).
inline constexpr std::int64_t kSerialCommitEvery = 32;

// Seed-derivation streams: every attempt gets one stream for data/location
// draws and one for the injector's internal RNG (stochastic error models),
// both functions of (campaign seed, attempt index) only. Stratified
// campaigns interpose kStratumStream so each stratum owns an independent
// attempt-indexed family: derive_seed(seed, stratum, kStratumStream) is the
// stratum's root, and the two per-attempt streams derive from that root.
inline constexpr std::uint64_t kDrawStream = 0;
inline constexpr std::uint64_t kInjectorStream = 1;
inline constexpr std::uint64_t kStratumStream = 2;

/// True when any logit is NaN or infinite.
inline bool has_non_finite(const Tensor& logits) {
  for (const float v : logits.data()) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

/// Scores one faulty forward against the attempt's golden run. Golden
/// argmaxes are computed once per attempt and faulty argmaxes / the
/// non-finite scan once per faulty pass — not once per scored row as the
/// original per-row helper did (an O(rows * classes) rescan per row).
struct RepScorer {
  const std::vector<std::int64_t>& golden_top1;
  const Tensor& faulty;
  std::vector<std::int64_t> faulty_top1;  // only for kTop1Mismatch
  bool faulty_non_finite;
  CorruptionCriterion criterion;

  RepScorer(const std::vector<std::int64_t>& golden_top1_, const Tensor& f,
            CorruptionCriterion crit)
      : golden_top1(golden_top1_),
        faulty(f),
        faulty_non_finite(has_non_finite(f)),
        criterion(crit) {
    if (criterion == CorruptionCriterion::kTop1Mismatch) {
      faulty_top1 = nn::argmax_rows(faulty);
    }
  }

  bool is_corrupted(std::int64_t row) const {
    const auto r = static_cast<std::size_t>(row);
    switch (criterion) {
      case CorruptionCriterion::kTop1Mismatch:
        // NaN logits make argmax meaningless; count them as corruptions, as
        // the observable output is unusable.
        return golden_top1[r] != faulty_top1[r] || faulty_non_finite;
      case CorruptionCriterion::kTop1NotInTop5:
        return !nn::in_top_k(faulty, row, golden_top1[r], 5) ||
               faulty_non_finite;
      case CorruptionCriterion::kNonFiniteOutput:
        return faulty_non_finite;
    }
    PFI_CHECK(false) << "unreachable criterion";
  }
};

/// Streams newly merged trace events to the checkpointer and persists the
/// folded state after each wave. Tracks how much of the caller's sink has
/// already been committed, so each commit ships exactly the wave's events.
class WaveCommitter {
 public:
  WaveCommitter(CampaignCheckpointer* ckpt, const trace::TraceSink* sink)
      : ckpt_(ckpt), sink_(sink) {
    if (ckpt_ != nullptr) {
      PFI_CHECK(!ckpt_->streams_trace() || sink_ != nullptr)
          << "checkpointer streams a trace JSONL but the campaign has no "
             "trace sink to stream from";
      // Only events merged by THIS run stream out; anything already in the
      // caller's sink predates the campaign and is not part of its trace.
      committed_ = sink_ != nullptr ? sink_->size() : 0;
    }
  }

  void commit(const CampaignResult& folded, std::uint64_t next_unit,
              bool done) {
    if (ckpt_ == nullptr) return;
    ckpt_->commit(folded, next_unit, done, fresh_events());
  }

  /// Stratified variant: also persists the per-stratum resume states.
  void commit(const CampaignResult& folded, std::uint64_t next_unit, bool done,
              std::span<const StratumCheckpoint> strata) {
    if (ckpt_ == nullptr) return;
    ckpt_->commit(folded, next_unit, done, fresh_events(), strata);
  }

 private:
  std::span<const trace::InjectionEvent> fresh_events() {
    std::span<const trace::InjectionEvent> fresh;
    if (sink_ != nullptr && ckpt_->streams_trace()) {
      fresh = std::span(sink_->events()).subspan(committed_);
      committed_ = sink_->events().size();
    }
    return fresh;
  }

  CampaignCheckpointer* ckpt_;
  const trace::TraceSink* sink_;
  std::size_t committed_ = 0;
};

/// Resolve the `threads` knob: 0 = hardware concurrency, and never more
/// workers than trial units (a replica that would run < 1 unit is pure
/// setup cost).
inline std::int64_t resolve_threads(std::int64_t requested,
                                    std::int64_t units) {
  std::int64_t t = requested == 0
                       ? static_cast<std::int64_t>(
                             util::ThreadPool::hardware_threads())
                       : requested;
  PFI_CHECK(t >= 1) << "threads=" << requested << " must be >= 0";
  return std::clamp<std::int64_t>(t, 1, std::max<std::int64_t>(1, units));
}

/// Attach a worker-local sink to an injector for one attempt, restoring
/// whatever sink was attached before (exception-safe).
class ScopedSink {
 public:
  ScopedSink(FaultInjector& fi, trace::TraceSink* sink)
      : fi_(fi), previous_(fi.trace_sink()) {
    fi_.set_trace_sink(sink);
  }
  ~ScopedSink() { fi_.set_trace_sink(previous_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  FaultInjector& fi_;
  trace::TraceSink* previous_;
};

/// Worker replicas: index 0 is the caller's injector, the rest deep clones.
struct WorkerSet {
  std::vector<FaultInjector*> workers;
  std::vector<std::unique_ptr<FaultInjector>> owned;

  WorkerSet(FaultInjector& fi, std::int64_t threads) {
    fi.clear();
    workers.push_back(&fi);
    for (std::int64_t t = 1; t < threads; ++t) {
      owned.push_back(fi.replicate());
      workers.push_back(owned.back().get());
    }
  }

  /// Replicas die with the set; fold their prefix-cache counters into the
  /// caller's injector first so the campaign report shows whole-campaign
  /// hit rates regardless of thread count.
  ~WorkerSet() {
    for (const auto& replica : owned) {
      workers.front()->absorb_prefix_stats(*replica);
    }
  }
};

}  // namespace pfi::core::detail
