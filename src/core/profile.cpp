#include "core/profile.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pfi::trace {

void Profiler::reset_stats() {
  for (LayerProfile& p : layers_) {
    const LayerProfile fresh{.name = p.name, .kind = p.kind};
    p = fresh;
  }
}

std::string Profiler::table() const {
  std::size_t name_width = 6;  // fits the "layer" header and "<root>"
  for (const LayerProfile& p : layers_) {
    name_width = std::max(name_width, p.name.size());
  }
  const int name_col = static_cast<int>(name_width) + 2;
  std::ostringstream os;
  if (!note_.empty()) os << "# " << note_ << '\n';
  os << std::left << std::setw(name_col) << "layer" << std::setw(10) << "kind"
     << std::right << std::setw(9) << "forwards" << std::setw(12) << "act min"
     << std::setw(12) << "act max" << std::setw(12) << "act mean"
     << std::setw(10) << "nonfinite" << std::setw(14) << "hook us/call"
     << '\n';
  for (const LayerProfile& p : layers_) {
    os << std::left << std::setw(name_col)
       << (p.name.empty() ? std::string("<root>") : p.name) << std::setw(10)
       << p.kind << std::right << std::setw(9) << p.forwards << std::fixed
       << std::setprecision(4);
    if (p.count == 0) {
      // No finite samples: an honest "-" instead of an innocuous-looking
      // 0.0000 (an all-non-finite layer MUST read as broken, not idle; the
      // nonfinite column holds the evidence).
      os << std::setw(12) << "-" << std::setw(12) << "-" << std::setw(12)
         << "-";
    } else {
      os << std::setw(12) << p.min << std::setw(12) << p.max << std::setw(12)
         << p.mean();
    }
    os << std::setw(10) << p.non_finite << std::setprecision(3)
       << std::setw(14) << p.hook_us_per_call() << '\n';
  }
  return os.str();
}

}  // namespace pfi::trace
