// pfi::trace — structured injection-event observability.
//
// Every injection the FaultInjector performs (neuron or weight) can emit an
// InjectionEvent into a TraceSink: which trial and attempt it belonged to,
// which layer (by index and dotted module path), the exact tensor
// coordinates, the pre- and post-injection values (bit-exact), the flipped
// bit when the corruption was a one-bit flip, and the error-model id.
//
// Design discipline, mirroring the PR 1 campaign engine:
//
//  * One sink per worker, touched by exactly one thread — no locks anywhere
//    on the injection path. The campaign runner merges worker sinks into the
//    caller's sink strictly in attempt order, so the merged event stream is
//    BIT-IDENTICAL for any thread count (pinned by tests, like the counts).
//
//  * Events are bit-faithful: pre/post values serialize as IEEE-754 hex bit
//    patterns, never decimal, so a JSONL round trip loses nothing — even
//    NaN/Inf payloads from exponent flips survive exactly.
//
//  * TraceReplayer turns a recorded rep (one corrupted forward pass) back
//    into armed faults on a fresh injector and reproduces the original
//    corrupted logits bit-exactly. A trace is therefore a complete,
//    auditable record of a campaign, and the replay path is the test oracle
//    that pins the hook mechanism against recorded reality.
//
// Compile-time kill switch: configuring with -DPFI_TRACE=OFF defines
// PFI_TRACE_DISABLED, which turns every TraceSink mutation into an inline
// no-op and compiles the event-construction code out of the injector's hook
// (kEnabled is false, the `if constexpr` around emission drops the body).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/error_models.hpp"
#include "tensor/tensor.hpp"

namespace pfi::core {
class FaultInjector;
}  // namespace pfi::core

namespace pfi::trace {

/// False when the build was configured with -DPFI_TRACE=OFF; all recording
/// compiles away to nothing in that case.
#ifdef PFI_TRACE_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// What was corrupted: a neuron in a layer's output fmap, a weight (one
/// transient offline perturbation, restored by clear()), or a persistent
/// memory fault (an event-time corruption that survives across inferences
/// until heal_persistent_faults(); see core/persistent.hpp).
enum class FaultKind { kNeuron, kWeight, kPersist };

/// "neuron" / "weight" / "persist".
std::string fault_kind_name(FaultKind kind);

/// One injection, as it actually happened.
struct InjectionEvent {
  std::uint64_t trial = 0;    ///< global trial index (assigned at merge)
  std::uint64_t attempt = 0;  ///< campaign attempt / weight-fault index
  std::int32_t rep = 0;       ///< injection rep within the attempt
  FaultKind kind = FaultKind::kNeuron;
  std::int64_t layer = 0;     ///< instrumented layer index
  std::string layer_name;     ///< dotted module path, e.g. "features.3"
  std::string layer_kind;     ///< module kind, e.g. "Conv2d"
  core::DType dtype = core::DType::kFloat32;
  /// Neuron events: (batch, c, h, w) of the corrupted activation.
  /// Weight events: (out_c, in_c, kh, kw) of the corrupted filter tap.
  std::int64_t coords[4] = {0, 0, 0, 0};
  std::int64_t flat = 0;      ///< flat index within the output/weight tensor
  /// Index of the flipped bit in the dtype's own representation (fp32 word,
  /// fp16 word, or INT8 quantized code) when pre and post differ by exactly
  /// one bit in that domain; -1 for every other corruption shape.
  std::int32_t bit = -1;
  float pre = 0.0f;           ///< value before injection (post-quantization)
  float post = 0.0f;          ///< value the error model produced
  std::string model;          ///< error-model id, e.g. "single_bit_flip[30]"
  /// Persistent faults only: the simulated inference-event index the fault
  /// was born at (PersistentFaultSet's clock). Serialized for kPersist
  /// events exclusively, so transient traces keep their exact historical
  /// byte encoding. Replaying all persist events with time <= t, in stream
  /// order, reconstructs the weight state at event t bit-for-bit.
  std::uint64_t time = 0;
};

/// The flipped-bit attribution for a (pre, post) pair in the given dtype's
/// representation domain; -1 unless exactly one bit differs.
std::int32_t diff_bit(float pre, float post, core::DType dtype,
                      const quant::QuantParams& qparams);

/// Per-worker event buffer. Single-threaded by construction (each campaign
/// worker owns one); the only cross-thread motion is the ordered merge.
class TraceSink {
 public:
  TraceSink() = default;
  /// `capture_logits` additionally records the faulty output tensor of every
  /// traced rep — the oracle TraceReplayer tests verify against.
  explicit TraceSink(bool capture_logits) : capture_logits_(capture_logits) {}

  /// Stamp subsequent events with (attempt, rep). The campaign runner calls
  /// this before every injected forward pass.
  void set_context(std::uint64_t attempt, std::int32_t rep) {
    attempt_ = attempt;
    rep_ = rep;
  }

  /// Record one injection. Compiles to nothing when tracing is disabled.
  void record(InjectionEvent ev) {
    if constexpr (!kEnabled) return;
    ev.attempt = attempt_;
    ev.rep = rep_;
    events_.push_back(std::move(ev));
  }

  /// The faulty logits of one recorded rep (kept only with capture_logits).
  struct RepLogits {
    std::uint64_t attempt = 0;
    std::int32_t rep = 0;
    Tensor logits;
  };

  /// Record the faulty output of the current (attempt, rep). No-op unless
  /// capture_logits was requested (and tracing is compiled in).
  void record_logits(const Tensor& logits) {
    if constexpr (!kEnabled) return;
    if (!capture_logits_) return;
    logits_.push_back({attempt_, rep_, logits.clone()});
  }

  bool capture_logits() const { return kEnabled && capture_logits_; }

  const std::vector<InjectionEvent>& events() const { return events_; }
  const std::vector<RepLogits>& logits() const { return logits_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Move out everything recorded since the last take/clear.
  std::vector<InjectionEvent> take_events() {
    return std::exchange(events_, {});
  }
  std::vector<RepLogits> take_logits() { return std::exchange(logits_, {}); }

  /// Ordered-merge entry points used by the campaign runner.
  void append(std::vector<InjectionEvent> events) {
    events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                   std::make_move_iterator(events.end()));
  }
  void append_logits(RepLogits rep) { logits_.push_back(std::move(rep)); }

  void clear() {
    events_.clear();
    logits_.clear();
  }

 private:
  std::uint64_t attempt_ = 0;
  std::int32_t rep_ = 0;
  bool capture_logits_ = false;
  std::vector<InjectionEvent> events_;
  std::vector<RepLogits> logits_;
};

// -- JSONL serialization --------------------------------------------------------

/// One event as a single-line JSON object. Values carry both a readable
/// decimal field and the authoritative hex bit pattern.
std::string event_to_json(const InjectionEvent& ev);

/// Parse one line produced by event_to_json.
InjectionEvent event_from_json(const std::string& line);

/// All events, one JSON object per line. This exact byte stream is what the
/// thread-count-invariance tests compare.
std::string trace_to_jsonl(const std::vector<InjectionEvent>& events);

/// Write trace_to_jsonl(events) to `path`.
void write_trace_jsonl(const std::string& path,
                       const std::vector<InjectionEvent>& events);

/// Read a JSONL trace back; inverse of write_trace_jsonl.
std::vector<InjectionEvent> read_trace_jsonl(const std::string& path);

// -- Replay --------------------------------------------------------------------

/// Split a merged event stream into reps — maximal runs of events sharing
/// (attempt, rep), in stream order. Each rep is one corrupted forward pass
/// and the unit TraceReplayer replays.
std::vector<std::vector<InjectionEvent>> split_reps(
    const std::vector<InjectionEvent>& events);

/// Re-applies a recorded trace onto a (fresh or reused) injector replica:
/// every event becomes a constant-value fault at the recorded coordinates,
/// so the replayed forward writes the exact recorded post values into the
/// exact recorded positions — reproducing the original corrupted forward
/// pass bit-for-bit, whatever error model originally produced the values.
class TraceReplayer {
 public:
  /// The injector must share the original's dtype (checked per event) and
  /// model architecture; typically FaultInjector::replicate() of the
  /// campaign injector, or the campaign injector itself after the run.
  explicit TraceReplayer(core::FaultInjector& fi) : fi_(fi) {}

  /// Arm one recorded rep's events as constant faults. Neuron/weight events
  /// become armed transient faults; kPersist events are re-asserted
  /// immediately as persistent weight writes (the recorded post value lands
  /// at the recorded position, surviving clear() until the injector's
  /// heal_persistent_faults()). The caller runs the forward and
  /// clears/heals; use replay() for the one-shot path.
  void arm(std::span<const InjectionEvent> rep_events);

  /// Arm `rep_events`, forward `input`, clear (and heal any persistent
  /// faults the rep asserted), return the corrupted logits.
  Tensor replay(const Tensor& input,
                std::span<const InjectionEvent> rep_events);

 private:
  core::FaultInjector& fi_;
};

}  // namespace pfi::trace
