#include "core/error_models.hpp"

#include <utility>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace pfi::core {

std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return "fp32";
    case DType::kFloat16: return "fp16";
    case DType::kInt8: return "int8";
    case DType::kBFloat16: return "bf16";
  }
  PFI_CHECK(false) << "unreachable dtype";
}

int dtype_bit_width(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return kFloatBits;
    case DType::kFloat16: return kHalfBits;
    case DType::kInt8: return kInt8Bits;
    case DType::kBFloat16: return kBf16Bits;
  }
  PFI_CHECK(false) << "unreachable dtype";
}

namespace {

// IEEE-754 binary32: sign 31, exponent 30..23, mantissa 22..0. The mantissa
// splits at its midpoint so "barely perceptible" and "up to ~2x relative"
// flips land in different strata.
constexpr BitClassSpec kFp32Classes[] = {
    {"mant_lo", 0, 11},
    {"mant_hi", 12, 22},
    {"exponent", 23, 30},
    {"sign", 31, 31},
};

// IEEE-754 binary16: sign 15, exponent 14..10, mantissa 9..0.
constexpr BitClassSpec kFp16Classes[] = {
    {"mant_lo", 0, 4},
    {"mant_hi", 5, 9},
    {"exponent", 10, 14},
    {"sign", 15, 15},
};

// Two's-complement INT8 codes: bit 7 decides sign, the rest is magnitude
// (split so the top magnitude bits — flips of +/- 16..64 codes — separate
// from the near-LSB ones).
constexpr BitClassSpec kInt8Classes[] = {
    {"low", 0, 3},
    {"high", 4, 6},
    {"sign", 7, 7},
};

// bfloat16: sign 15, exponent 14..7, mantissa 6..0.
constexpr BitClassSpec kBf16Classes[] = {
    {"mant_lo", 0, 3},
    {"mant_hi", 4, 6},
    {"exponent", 7, 14},
    {"sign", 15, 15},
};

}  // namespace

std::span<const BitClassSpec> bit_classes(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return kFp32Classes;
    case DType::kFloat16: return kFp16Classes;
    case DType::kInt8: return kInt8Classes;
    case DType::kBFloat16: return kBf16Classes;
  }
  PFI_CHECK(false) << "unreachable dtype";
}

int bit_class_of(DType dtype, int bit) {
  PFI_CHECK(bit >= 0 && bit < dtype_bit_width(dtype))
      << "bit " << bit << " out of range for " << dtype_name(dtype);
  const auto classes = bit_classes(dtype);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (bit >= classes[i].lo && bit <= classes[i].hi) {
      return static_cast<int>(i);
    }
  }
  PFI_CHECK(false) << "bit " << bit << " not covered by any class (bug)";
}

ErrorModel random_value(float lo, float hi) {
  PFI_CHECK(lo < hi) << "random_value range [" << lo << ", " << hi << ")";
  return {"random_value[" + std::to_string(lo) + "," + std::to_string(hi) + "]",
          [lo, hi](float, const InjectionContext& ctx) {
            return ctx.rng->uniform(lo, hi);
          }};
}

ErrorModel zero_value() {
  return {"zero_value", [](float, const InjectionContext&) { return 0.0f; }};
}

ErrorModel constant_value(float v) {
  return {"constant_value[" + std::to_string(v) + "]",
          [v](float, const InjectionContext&) { return v; }};
}

ErrorModel single_bit_flip(int bit) {
  PFI_CHECK(bit >= -1 && bit < kFloatBits) << "single_bit_flip bit=" << bit;
  const std::string name =
      bit < 0 ? "single_bit_flip[random]"
              : "single_bit_flip[" + std::to_string(bit) + "]";
  return {name, [bit](float v, const InjectionContext& ctx) {
            switch (ctx.dtype) {
              case DType::kFloat32: {
                const int b = bit >= 0
                                  ? bit
                                  : static_cast<int>(ctx.rng->next_below(
                                        kFloatBits));
                return flip_float_bit(v, b);
              }
              case DType::kFloat16: {
                const int b =
                    bit >= 0 ? bit
                             : static_cast<int>(ctx.rng->next_below(kHalfBits));
                PFI_CHECK(b < kHalfBits)
                    << "bit " << b << " out of range for fp16";
                return flip_fp16_bit(v, b);
              }
              case DType::kInt8: {
                const int b =
                    bit >= 0 ? bit
                             : static_cast<int>(ctx.rng->next_below(kInt8Bits));
                PFI_CHECK(b < kInt8Bits)
                    << "bit " << b << " out of range for int8";
                return quant::flip_bit_int8(v, b, ctx.qparams);
              }
              case DType::kBFloat16: {
                const int b =
                    bit >= 0 ? bit
                             : static_cast<int>(ctx.rng->next_below(kBf16Bits));
                PFI_CHECK(b < kBf16Bits)
                    << "bit " << b << " out of range for bf16";
                return flip_bf16_bit(v, b);
              }
            }
            PFI_CHECK(false) << "unreachable dtype";
          }};
}

ErrorModel scale_value(float gain) {
  return {"scale_value[" + std::to_string(gain) + "]",
          [gain](float v, const InjectionContext&) { return gain * v; }};
}

ErrorModel multi_bit_flip(int bits) {
  PFI_CHECK(bits >= 1 && bits <= kFloatBits) << "multi_bit_flip bits=" << bits;
  return {"multi_bit_flip[" + std::to_string(bits) + "]",
          [bits](float v, const InjectionContext& ctx) {
            const int width = dtype_bit_width(ctx.dtype);
            PFI_CHECK(bits <= width)
                << "multi_bit_flip: " << bits << " bits exceed "
                << dtype_name(ctx.dtype) << " width " << width;
            // Choose `bits` distinct positions (partial Fisher-Yates).
            int positions[kFloatBits];
            for (int i = 0; i < width; ++i) positions[i] = i;
            float out = v;
            for (int i = 0; i < bits; ++i) {
              const int j =
                  i + static_cast<int>(ctx.rng->next_below(
                          static_cast<std::uint64_t>(width - i)));
              std::swap(positions[i], positions[j]);
              switch (ctx.dtype) {
                case DType::kFloat32:
                  out = flip_float_bit(out, positions[i]);
                  break;
                case DType::kFloat16:
                  out = flip_fp16_bit(out, positions[i]);
                  break;
                case DType::kInt8:
                  out = quant::flip_bit_int8(out, positions[i], ctx.qparams);
                  break;
                case DType::kBFloat16:
                  out = flip_bf16_bit(out, positions[i]);
                  break;
              }
            }
            return out;
          }};
}

ErrorModel sign_flip() {
  return {"sign_flip", [](float v, const InjectionContext&) { return -v; }};
}

ErrorModel saturate(float limit) {
  PFI_CHECK(limit > 0.0f) << "saturate limit=" << limit;
  return {"saturate[" + std::to_string(limit) + "]",
          [limit](float v, const InjectionContext&) {
            return v > limit ? limit : (v < -limit ? -limit : v);
          }};
}

float force_bit(float v, int bit, int value, DType dtype,
                const quant::QuantParams& qparams) {
  PFI_CHECK(value >= -1 && value <= 1)
      << "force_bit value=" << value << " must be -1 (flip), 0, or 1";
  PFI_CHECK(bit >= 0 && bit < dtype_bit_width(dtype))
      << "bit " << bit << " out of range for " << dtype_name(dtype);
  const auto apply32 = [&](std::uint32_t bits) {
    const std::uint32_t mask = 1u << bit;
    if (value < 0) return bits ^ mask;
    return value != 0 ? (bits | mask) : (bits & ~mask);
  };
  switch (dtype) {
    case DType::kFloat32:
      return bits_to_float(apply32(float_to_bits(v)));
    case DType::kFloat16:
      return float_from_f16_bits(
          static_cast<std::uint16_t>(apply32(f16_bits_from_float(v))));
    case DType::kBFloat16:
      return float_from_bf16_bits(
          static_cast<std::uint16_t>(apply32(bf16_bits_from_float(v))));
    case DType::kInt8: {
      const auto code =
          static_cast<std::uint8_t>(quant::quantize_value(v, qparams));
      return quant::dequantize_value(
          static_cast<std::int8_t>(static_cast<std::uint8_t>(apply32(code))),
          qparams);
    }
  }
  PFI_CHECK(false) << "unreachable dtype";
}

ErrorModel stuck_at_bit(int bit, int value) {
  PFI_CHECK(bit >= 0 && bit < kFloatBits) << "stuck_at_bit bit=" << bit;
  PFI_CHECK(value == 0 || value == 1) << "stuck_at_bit value=" << value;
  return {"stuck_at_bit[" + std::to_string(bit) + "=" + std::to_string(value) +
              "]",
          [bit, value](float v, const InjectionContext& ctx) {
            PFI_CHECK(bit < dtype_bit_width(ctx.dtype))
                << "stuck_at_bit: bit " << bit << " out of range for "
                << dtype_name(ctx.dtype);
            return force_bit(v, bit, value, ctx.dtype, ctx.qparams);
          }};
}

ErrorModel additive_noise(float magnitude) {
  PFI_CHECK(magnitude > 0.0f) << "additive_noise magnitude=" << magnitude;
  return {"additive_noise[" + std::to_string(magnitude) + "]",
          [magnitude](float v, const InjectionContext& ctx) {
            return v + ctx.rng->uniform(-magnitude, magnitude);
          }};
}

}  // namespace pfi::core
