#include "core/sampling.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <optional>
#include <sstream>

#include "core/campaign_internal.hpp"
#include "core/checkpoint.hpp"
#include "core/sampling_internal.hpp"
#include "nn/loss.hpp"
#include "util/thread_pool.hpp"

namespace pfi::core {

namespace {

using detail::has_non_finite;
using detail::kDrawStream;
using detail::kInjectorStream;
using detail::kMaxStratumQuantum;
using detail::kStratumGaveUpFlag;
using detail::kStratumStoppedEarlyFlag;
using detail::kStratumStream;
using detail::RepScorer;
using detail::ScopedSink;
using detail::StratifiedFold;
using detail::StratifiedSchedule;
using detail::StratUnit;
using detail::StratUnitOutcome;
using detail::WaveCommitter;
using detail::WorkerSet;

/// The post-ReLU bit pattern of an activation — EXACTLY nn::ReLU's forward
/// expression (v > 0 ? v : 0), so bit-equality here is bit-equality of the
/// downstream ReLU layer's output. Maps NaN and every non-positive value
/// (including -0.0f) to +0.0f, exactly as the layer does.
std::uint32_t relu_bits(float v) {
  const float r = v > 0.0f ? v : 0.0f;
  return std::bit_cast<std::uint32_t>(r);
}

/// Captures one instrumented layer's golden output during a kRecordGolden
/// pass. Registered AFTER the injector's own hook (construction order), so
/// it observes the post-dtype-emulation activation — the exact domain the
/// injector applies faults in.
class GoldenCapture {
 public:
  GoldenCapture(FaultInjector& fi, std::int64_t layer)
      : module_(fi.layer(layer)) {
    handle_ = module_.register_forward_hook(
        [this](nn::Module&, const Tensor&, Tensor& output) {
          captured_ = output.clone();
        });
  }
  ~GoldenCapture() { module_.remove_hook(handle_); }
  GoldenCapture(const GoldenCapture&) = delete;
  GoldenCapture& operator=(const GoldenCapture&) = delete;

  const Tensor& captured() const {
    PFI_CHECK(captured_.defined())
        << "golden capture hook never fired (layer not executed?)";
    return captured_;
  }

 private:
  nn::Module& module_;
  nn::HookHandle handle_ = 0;
  Tensor captured_;
};

/// The larger half of a stratum's Wilson interval — the quantity the
/// stopping rule budgets. Zero trials -> the vacuous [0, 1] interval's
/// larger half, 1 (maximally conservative).
double stratum_half_width(const StratumCheckpoint& ck, double z) {
  if (ck.trials == 0) return 1.0;
  const Proportion p = wilson_interval(ck.corruptions, ck.trials, z);
  return std::max(p.value - p.lo, p.hi - p.value);
}

/// CI-mode closure test for one stratum, mirroring the two pooling terms
/// of util::stratified_interval so that "every stratum closed" implies a
/// pooled half-width <= target:
///
/// * all-clear strata (k = 0) enter the pooled interval only through the
///   joint upper margin max_s w_s * wilson_hi(0, n_s); close this stratum
///   once its own term fits the whole target;
/// * corrupting strata (k > 0) combine in quadrature with max-margin
///   halves on both sides; close once w^2 m^2 <= (target/2)^2 / S_pos,
///   where S_pos counts the strata with observed corruptions.
///
/// With every stratum closed, the quadrature side Q satisfies
/// Q <= sqrt(S_pos * (target/2)^2 / S_pos) = target/2 and the clear margin
/// C <= target, so the pooled half-width (2Q + C)/2 <= target.
///
/// S_pos is global but a pure function of the frozen counters, so the
/// predicate is deterministic under resume; a previously closed corrupting
/// stratum REOPENS if S_pos has since grown (its budget share shrank),
/// which keeps the guarantee above valid against the final counters.
bool ci_closed(const Stratum& st, const StratumCheckpoint& ck,
               std::size_t s_pos, double target) {
  if (ck.corruptions == 0) {
    const double hi =
        ck.trials == 0 ? 1.0 : wilson_interval(0, ck.trials, kZ99).hi;
    return st.weight * hi <= target;
  }
  const double hw = stratum_half_width(ck, kZ99);
  const double budget = 0.25 * target * target /
                        static_cast<double>(std::max<std::size_t>(1, s_pos));
  return st.weight * st.weight * hw * hw <= budget;
}

/// Recompute a stratum's flags from its frozen counters. Pure, so resume
/// and re-evaluation always agree: stopped-early iff the CI rule closed it
/// with budget to spare; gave-up iff the attempt cap did.
std::uint64_t stratum_flags(const Stratum& st, const StratumCheckpoint& ck,
                            std::uint64_t cap, std::uint64_t attempt_cap,
                            double target, std::size_t s_pos,
                            bool global_met) {
  if (target > 0.0 && (global_met || ci_closed(st, ck, s_pos, target)) &&
      ck.trials < cap) {
    return kStratumStoppedEarlyFlag;
  }
  if (ck.attempts >= attempt_cap && ck.trials < cap) return kStratumGaveUpFlag;
  return 0;
}

}  // namespace

namespace detail {

std::vector<std::uint64_t> allocate_stratum_caps(
    std::uint64_t trials, const std::vector<Stratum>& strata) {
  std::vector<std::uint64_t> caps(strata.size());
  std::vector<double> remainders(strata.size());
  std::uint64_t assigned = 0;
  for (std::size_t s = 0; s < strata.size(); ++s) {
    const double exact = static_cast<double>(trials) * strata[s].weight;
    caps[s] = static_cast<std::uint64_t>(exact);
    remainders[s] = exact - static_cast<double>(caps[s]);
    assigned += caps[s];
  }
  std::vector<std::size_t> order(strata.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainders[a] > remainders[b];
                   });
  for (std::size_t i = 0; assigned < trials; ++i) {
    ++caps[order[i % order.size()]];
    ++assigned;
  }
  return caps;
}

StratifiedSchedule make_stratified_schedule(
    FaultInjector& fi, const StratifiedCampaignConfig& config) {
  const CampaignConfig& base = config.base;
  PFI_CHECK(base.trials > 0) << "stratified campaign trials=" << base.trials;
  PFI_CHECK(base.batch_size >= 1 && base.batch_size <= fi.config().batch_size)
      << "stratified campaign batch_size " << base.batch_size
      << " exceeds injector batch size " << fi.config().batch_size;
  PFI_CHECK(base.injections_per_image >= 1)
      << "stratified campaign injections_per_image "
      << base.injections_per_image;
  PFI_CHECK(base.threads >= 0)
      << "stratified campaign threads=" << base.threads;
  PFI_CHECK(base.attempt_cap >= 0)
      << "stratified campaign attempt_cap=" << base.attempt_cap;
  PFI_CHECK(!base.one_fault_per_layer)
      << "stratified campaigns sample one fault per trial; "
         "one_fault_per_layer is the uniform runner's mode";
  PFI_CHECK(config.target_half_width >= 0.0 && config.target_half_width < 1.0)
      << "target_half_width " << config.target_half_width
      << " must be in [0, 1)";

  StratifiedSchedule sched;
  sched.strata = make_strata(fi, base.layer);
  const std::size_t S = sched.strata.size();
  sched.trials_budget = static_cast<std::uint64_t>(base.trials);
  sched.target = config.target_half_width;
  sched.max_yield = base.batch_size * base.injections_per_image;

  // Budget mode (target == 0): each stratum owns its proportional share of
  // the trial budget, allocated exactly. CI mode: any stratum may spend up
  // to the whole budget — the CI rule, not the allocation, decides where
  // trials go — with a global budget backstop at wave boundaries.
  if (sched.target > 0.0) {
    sched.caps.assign(S, sched.trials_budget);
  } else {
    sched.caps = allocate_stratum_caps(sched.trials_budget, sched.strata);
  }
  sched.attempt_caps.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    sched.attempt_caps[s] = base.attempt_cap > 0
                                ? static_cast<std::uint64_t>(base.attempt_cap)
                                : 100 + sched.caps[s] * 1000;
  }
  return sched;
}

StratUnitOutcome run_stratum_attempt(FaultInjector& fi,
                                     const data::SyntheticDataset& ds,
                                     const StratifiedCampaignConfig& config,
                                     const Stratum& st,
                                     std::size_t stratum_index, bool prunable,
                                     const StratUnit& unit) {
  const CampaignConfig& base = config.base;
  const std::uint64_t stratum_seed =
      derive_seed(base.seed, static_cast<std::uint64_t>(stratum_index),
                  kStratumStream);
  Rng rng(derive_seed(stratum_seed, unit.attempt, kDrawStream));
  fi.reseed(derive_seed(stratum_seed, unit.attempt, kInjectorStream));

  const bool tracing = base.trace != nullptr;
  trace::TraceSink local(tracing && base.trace->capture_logits());
  ScopedSink sink_guard(fi, tracing ? &local : fi.trace_sink());

  StratUnitOutcome out;
  const auto batch = ds.sample_batch(base.batch_size, rng);

  // Golden pass; the capture hook (when pruning applies) clones this
  // stratum's layer output in the injector's emulation domain.
  std::optional<GoldenCapture> capture;
  if (prunable) capture.emplace(fi, st.layer);
  fi.clear();
  const Tensor golden = fi.forward(batch.images, ForwardMode::kRecordGolden);
  const auto golden_top1 = nn::argmax_rows(golden);

  std::vector<std::int64_t> eligible;
  for (std::size_t i = 0; i < batch.labels.size(); ++i) {
    if (golden_top1[i] == batch.labels[i]) {
      eligible.push_back(static_cast<std::int64_t>(i));
    } else {
      ++out.skipped;
    }
  }
  if (eligible.empty()) return out;

  const bool golden_nf = has_non_finite(golden);
  const quant::QuantParams qp =
      prunable ? fi.golden_qparams(st.layer) : quant::QuantParams{};
  const int width = st.bit_hi - st.bit_lo + 1;
  Rng analytic_rng(0);  // never drawn from: a fixed-bit flip is deterministic

  out.reps.reserve(static_cast<std::size_t>(base.injections_per_image));
  for (std::int64_t rep = 0; rep < base.injections_per_image; ++rep) {
    if (tracing) local.set_context(unit.seq, static_cast<std::int32_t>(rep));
    NeuronLocation loc;
    loc.batch = base.same_fault_across_batch
                    ? kAllBatchElements
                    : eligible[rng.next_below(eligible.size())];
    const NeuronLocation drawn = fi.random_neuron_location(rng, st.layer);
    loc.layer = drawn.layer;
    loc.c = drawn.c;
    loc.h = drawn.h;
    loc.w = drawn.w;
    const int bit =
        st.bit_lo + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(width)));
    ErrorModel em = single_bit_flip(bit);

    // Pruning: compute the faulty value analytically for every batch row
    // the fault would touch. The injection is provably masked only if the
    // post-ReLU bits are unchanged for ALL touched rows — scoring reads
    // per-row argmaxes but the non-finite scan covers the whole tensor, so
    // an untouched-row change would be observable.
    bool masked = false;
    if (prunable) {
      const Tensor& act = capture->captured();
      const std::int64_t b0 = loc.batch == kAllBatchElements ? 0 : loc.batch;
      const std::int64_t b1 = loc.batch == kAllBatchElements
                                  ? base.batch_size
                                  : loc.batch + 1;
      masked = true;
      InjectionContext ctx;
      ctx.layer = st.layer;
      ctx.dtype = fi.layer_dtype(st.layer);
      ctx.qparams = qp;
      ctx.rng = &analytic_rng;
      for (std::int64_t b = b0; b < b1; ++b) {
        const std::int64_t flat = act.offset_of(b, loc.c, loc.h, loc.w);
        ctx.flat_index = flat;
        const float pre = act[flat];
        const float post = em.apply(pre, ctx);
        if (relu_bits(post) != relu_bits(pre)) {
          masked = false;
          break;
        }
      }
    }

    StratUnitOutcome::Rep r;
    r.pruned = masked;
    if (masked) {
      if (config.prune_verify) {
        // Soundness oracle: run the injection the pruner skipped, with the
        // sink detached so the trace stays identical to a non-verify run,
        // and demand the logits are bit-identical to the golden pass —
        // the strongest form of "top-1 unchanged".
        ScopedSink detached(fi, nullptr);
        fi.declare_neuron_fault(loc, em);
        const Tensor faulty =
            fi.forward(batch.images, ForwardMode::kReusePrefix);
        fi.clear();
        PFI_CHECK(faulty.data().size() == golden.data().size() &&
                  std::memcmp(faulty.data().data(), golden.data().data(),
                              faulty.data().size() * sizeof(float)) == 0)
            << "PRUNE VERIFY FAILED: injection at layer " << st.layer
            << " fmap " << loc.c << " (" << loc.h << ", " << loc.w
            << ") bit " << bit
            << " was pruned as masked but changed the logits";
      }
      if (tracing) {
        // Emit the events the real injection would have emitted — computed
        // from the same analytic values — so the trace stream is
        // byte-identical with pruning on or off.
        const Tensor& act = capture->captured();
        const std::int64_t b0 =
            loc.batch == kAllBatchElements ? 0 : loc.batch;
        const std::int64_t b1 = loc.batch == kAllBatchElements
                                    ? base.batch_size
                                    : loc.batch + 1;
        InjectionContext ctx;
        ctx.layer = st.layer;
        ctx.dtype = fi.layer_dtype(st.layer);
        ctx.qparams = qp;
        ctx.rng = &analytic_rng;
        for (std::int64_t b = b0; b < b1; ++b) {
          const std::int64_t flat = act.offset_of(b, loc.c, loc.h, loc.w);
          ctx.flat_index = flat;
          const float pre = act[flat];
          const float post = em.apply(pre, ctx);
          trace::InjectionEvent ev;
          ev.kind = trace::FaultKind::kNeuron;
          ev.layer = st.layer;
          ev.layer_name = fi.layer_path(st.layer);
          ev.layer_kind = fi.layer(st.layer).kind();
          ev.dtype = fi.layer_dtype(st.layer);
          ev.coords[0] = b;
          ev.coords[1] = loc.c;
          ev.coords[2] = loc.h;
          ev.coords[3] = loc.w;
          ev.flat = flat;
          ev.pre = pre;
          ev.post = post;
          ev.bit = trace::diff_bit(pre, post, fi.layer_dtype(st.layer), qp);
          ev.model = em.name;
          local.record(std::move(ev));
        }
      }
      r.non_finite = golden_nf;
      if (tracing) {
        r.seq = unit.seq;
        r.rep_index = static_cast<std::int32_t>(rep);
        r.events = local.take_events();
        // The pruned injection's faulty logits ARE the golden logits.
        if (local.capture_logits()) r.logits = golden.clone();
      }
      for (const std::int64_t row : eligible) {
        if (loc.batch != kAllBatchElements && loc.batch != row) continue;
        r.corrupted.push_back(0);
      }
    } else {
      fi.declare_neuron_fault(loc, em);
      const Tensor faulty =
          fi.forward(batch.images, ForwardMode::kReusePrefix);
      fi.clear();

      const RepScorer scorer(golden_top1, faulty, base.criterion);
      r.non_finite = scorer.faulty_non_finite;
      if (tracing) {
        r.seq = unit.seq;
        r.rep_index = static_cast<std::int32_t>(rep);
        r.events = local.take_events();
        if (local.capture_logits()) r.logits = faulty.clone();
      }
      for (const std::int64_t row : eligible) {
        if (loc.batch != kAllBatchElements && loc.batch != row) continue;
        r.corrupted.push_back(scorer.is_corrupted(row) ? 1 : 0);
      }
    }
    out.reps.push_back(std::move(r));
  }
  return out;
}

StratifiedFold::StratifiedFold(StratifiedSchedule schedule,
                               trace::TraceSink* sink)
    : sched_(std::move(schedule)), sink_(sink), ck_(sched_.strata.size()) {}

void StratifiedFold::restore(const std::vector<StratumCheckpoint>& saved) {
  PFI_CHECK(saved.size() == ck_.size())
      << "checkpoint holds " << saved.size() << " strata but this "
      << "campaign has " << ck_.size() << " — refusing to resume";
  ck_ = saved;
  pooled_trials_ = 0;
  for (const StratumCheckpoint& s : ck_) pooled_trials_ += s.trials;
}

std::size_t StratifiedFold::count_positive() const {
  std::size_t n = 0;
  for (const StratumCheckpoint& s : ck_) n += s.corruptions > 0 ? 1 : 0;
  return n;
}

// The pooled interval already meets the target: stop everything. The
// per-stratum rule splits the budget conservatively, so the pooled
// half-width usually undershoots the target well before every stratum
// closes individually; checking the pooled interval directly at wave
// boundaries (a pure function of the counters) ends the campaign at the
// requested precision instead of over-sampling to the per-stratum split.
bool StratifiedFold::pooled_target_met() const {
  if (!(sched_.target > 0.0)) return false;
  const std::size_t S = ck_.size();
  std::vector<StratumEstimate> est(S);
  for (std::size_t s = 0; s < S; ++s) {
    est[s] = {sched_.strata[s].weight, ck_[s].corruptions, ck_[s].trials};
  }
  return stratified_interval(est, kZ99).half_width() <= sched_.target;
}

// A stratum is open while every closure rule still permits more units.
// Each term is a pure function of the folded counters, so the predicate
// gives the same answer when re-evaluated after a resume.
bool StratifiedFold::open(std::size_t s, std::uint64_t pooled_trials,
                          std::size_t s_pos, bool global_met) const {
  if (ck_[s].trials >= sched_.caps[s]) return false;
  if (ck_[s].attempts >= sched_.attempt_caps[s]) return false;
  if (sched_.target > 0.0) {
    if (pooled_trials >= sched_.trials_budget) return false;  // budget backstop
    if (global_met) return false;
    if (ci_closed(sched_.strata[s], ck_[s], s_pos, sched_.target)) {
      return false;
    }
  }
  return true;
}

void StratifiedFold::refresh_flags() {
  const std::size_t s_pos = count_positive();
  const bool global_met = pooled_target_met();
  for (std::size_t s = 0; s < ck_.size(); ++s) {
    ck_[s].flags =
        stratum_flags(sched_.strata[s], ck_[s], sched_.caps[s],
                      sched_.attempt_caps[s], sched_.target, s_pos,
                      global_met);
  }
}

std::vector<StratUnit> StratifiedFold::compose_wave(
    const std::vector<std::uint8_t>* owned) const {
  const std::size_t S = ck_.size();
  std::vector<StratUnit> units;
  std::uint64_t pooled_trials = 0;
  std::uint64_t seq = 0;
  for (std::size_t s = 0; s < S; ++s) {
    pooled_trials += ck_[s].trials;
    seq += ck_[s].attempts;
  }
  const std::size_t s_pos = count_positive();
  const bool global_met = pooled_target_met();
  for (std::size_t s = 0; s < S; ++s) {
    if (owned != nullptr && (*owned)[s] == 0) continue;
    if (!open(s, pooled_trials, s_pos, global_met)) continue;
    // Size this stratum's quantum from its observed trial yield (first
    // attempt: assume the maximum, under- rather than over-committing).
    const std::uint64_t remaining = sched_.caps[s] - ck_[s].trials;
    const double yield =
        ck_[s].attempts > 0
            ? std::max(0.25, static_cast<double>(ck_[s].trials) /
                                 static_cast<double>(ck_[s].attempts))
            : static_cast<double>(sched_.max_yield);
    auto q = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(remaining) / yield));
    q = std::clamp<std::uint64_t>(q, 1, kMaxStratumQuantum);
    q = std::min(q, sched_.attempt_caps[s] - ck_[s].attempts);
    for (std::uint64_t j = 0; j < q; ++j) {
      units.push_back({s, ck_[s].attempts + j, 0});
    }
  }
  for (std::size_t i = 0; i < units.size(); ++i) {
    units[i].seq = seq + static_cast<std::uint64_t>(i);
  }
  return units;
}

bool StratifiedFold::any_open(const std::vector<std::uint8_t>* owned) const {
  std::uint64_t pooled_trials = 0;
  for (const StratumCheckpoint& s : ck_) pooled_trials += s.trials;
  const std::size_t s_pos = count_positive();
  const bool global_met = pooled_target_met();
  for (std::size_t s = 0; s < ck_.size(); ++s) {
    if (owned != nullptr && (*owned)[s] == 0) continue;
    if (open(s, pooled_trials, s_pos, global_met)) return true;
  }
  return false;
}

void StratifiedFold::merge_unit(const StratUnit& unit, StratUnitOutcome& out) {
  StratumCheckpoint& st = ck_[unit.stratum];
  st.skipped += out.skipped;
  ++st.attempts;
  for (auto& rep : out.reps) {
    if (st.trials >= sched_.caps[unit.stratum]) break;
    if (rep.non_finite) ++st.non_finite;
    if (sink_ != nullptr) {
      // Trial index stamped at merge; the `attempt` restamp is a no-op for
      // live execution (run_stratum_attempt already used unit.seq as its
      // sink context) but restores the global sequence number on shard
      // records, which were produced without knowing it.
      for (trace::InjectionEvent& ev : rep.events) {
        ev.trial = pooled_trials_;
        ev.attempt = unit.seq;
      }
      sink_->append(std::move(rep.events));
      if (sink_->capture_logits() && rep.logits.defined()) {
        sink_->append_logits(
            {rep.seq, rep.rep_index, std::move(rep.logits)});
      }
    }
    for (const std::uint8_t corrupted : rep.corrupted) {
      ++st.trials;
      ++pooled_trials_;
      st.corruptions += corrupted;
      if (st.trials >= sched_.caps[unit.stratum]) break;
    }
    if (rep.pruned) {
      ++st.pruned;
    } else {
      ++st.executed;
    }
  }
}

CampaignResult StratifiedFold::pooled() const {
  CampaignResult r;
  for (const StratumCheckpoint& s : ck_) {
    r.trials += s.trials;
    r.skipped += s.skipped;
    r.corruptions += s.corruptions;
    r.non_finite += s.non_finite;
    if ((s.flags & kStratumGaveUpFlag) != 0) r.gave_up = 1;
  }
  return r;
}

StratifiedResult StratifiedFold::assemble() const {
  StratifiedResult result;
  result.totals = pooled();
  const std::size_t S = ck_.size();
  result.strata.reserve(S);
  for (std::size_t s = 0; s < S; ++s) {
    StratumOutcome o;
    o.stratum = sched_.strata[s];
    o.counts.trials = ck_[s].trials;
    o.counts.skipped = ck_[s].skipped;
    o.counts.corruptions = ck_[s].corruptions;
    o.counts.non_finite = ck_[s].non_finite;
    o.counts.gave_up = (ck_[s].flags & kStratumGaveUpFlag) != 0 ? 1 : 0;
    o.pruned = ck_[s].pruned;
    o.executed = ck_[s].executed;
    o.attempts = ck_[s].attempts;
    o.stopped_early = (ck_[s].flags & kStratumStoppedEarlyFlag) != 0;
    o.gave_up = (ck_[s].flags & kStratumGaveUpFlag) != 0;
    result.strata.push_back(o);
    result.pruned += ck_[s].pruned;
    result.golden_passes += ck_[s].attempts;
    result.faulty_passes += ck_[s].executed;
  }
  return result;
}

}  // namespace detail

Proportion StratifiedResult::estimate() const {
  std::vector<StratumEstimate> est;
  est.reserve(strata.size());
  for (const StratumOutcome& s : strata) {
    est.push_back({s.stratum.weight, s.counts.corruptions, s.counts.trials});
  }
  return stratified_interval(est);
}

double StratifiedResult::uniform_equivalent_trials() const {
  const Proportion est = estimate();
  const double target = (est.hi - est.lo) / 2.0;
  if (!(target > 0.0)) return std::numeric_limits<double>::infinity();
  const double p = std::clamp(est.value, 0.0, 1.0);
  const double z = kZ99;
  // Wilson half-width at point estimate p as a function of n (monotone
  // decreasing); bisect for the n whose half-width matches this run's.
  const auto half_width = [&](double n) {
    return z / (1.0 + z * z / n) *
           std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n));
  };
  double lo = 1.0;
  double hi = 1.0;
  while (half_width(hi) > target && hi < 1e15) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (half_width(mid) > target ? lo : hi) = mid;
  }
  return hi;
}

namespace {

/// Shared body of the two make_strata overloads: `dtype_of(l)` supplies the
/// bit-class partition for each enumerated layer.
template <typename DTypeOf>
std::vector<Stratum> make_strata_impl(const FaultInjector& fi,
                                      std::int64_t layer, DTypeOf dtype_of) {
  PFI_CHECK(layer < fi.num_layers())
      << "stratified campaign layer " << layer << " out of range [0, "
      << fi.num_layers() << ")";

  std::vector<std::int64_t> layers;
  std::int64_t total_neurons = 0;
  for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
    if (layer >= 0 && l != layer) continue;
    const Shape& s = fi.layer_shape(l);
    if (s.size() != 4) continue;  // no neuron coordinates -> not sampled
    layers.push_back(l);
    total_neurons += s[1] * s[2] * s[3];
  }
  PFI_CHECK(!layers.empty())
      << "stratified campaign has no 4-D instrumented layers to sample"
      << (layer >= 0 ? " (layer " + std::to_string(layer) + " is not 4-D)"
                     : "");

  std::vector<Stratum> out;
  for (const std::int64_t l : layers) {
    const auto classes = bit_classes(dtype_of(l));
    const int width = dtype_bit_width(dtype_of(l));
    const Shape& s = fi.layer_shape(l);
    const double neuron_share =
        static_cast<double>(s[1] * s[2] * s[3]) /
        static_cast<double>(total_neurons);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      Stratum st;
      st.layer = l;
      st.bit_class = static_cast<int>(c);
      st.bit_lo = classes[c].lo;
      st.bit_hi = classes[c].hi;
      st.weight = neuron_share * static_cast<double>(classes[c].width()) /
                  static_cast<double>(width);
      out.push_back(st);
    }
  }
  return out;
}

}  // namespace

std::vector<Stratum> make_strata(const FaultInjector& fi, std::int64_t layer,
                                 DType dtype) {
  return make_strata_impl(fi, layer, [dtype](std::int64_t) { return dtype; });
}

std::vector<Stratum> make_strata(const FaultInjector& fi, std::int64_t layer) {
  return make_strata_impl(
      fi, layer, [&fi](std::int64_t l) { return fi.layer_dtype(l); });
}

std::vector<bool> relu_adjacent_layers(FaultInjector& fi) {
  std::vector<bool> out(static_cast<std::size_t>(fi.num_layers()), false);
  for (nn::Module* m : fi.model().modules()) {
    if (m->kind() != "Sequential") continue;
    const std::vector<nn::Module*> children = m->children();
    for (std::size_t i = 0; i + 1 < children.size(); ++i) {
      if (children[i + 1]->kind() != "ReLU") continue;
      // A fused producer rectifies INSIDE its own epilogue and the ReLU
      // passes through — the injection domain is the post-ReLU output, so
      // negative injected values are NOT masked downstream and the
      // masked-fault pruning argument does not apply.
      if (children[i]->relu_fused_output()) continue;
      for (std::int64_t l = 0; l < fi.num_layers(); ++l) {
        if (&fi.layer(l) == children[i]) {
          out[static_cast<std::size_t>(l)] = true;
        }
      }
    }
  }
  return out;
}

std::uint64_t stratified_fingerprint(const StratifiedCampaignConfig& config,
                                     std::string_view context) {
  // Reuses campaign_fingerprint for the base fields, with the stratified
  // knobs folded into the context so a uniform checkpoint (whose prefix is
  // "classification|...") can never resume a stratified run or vice versa.
  std::ostringstream os;
  os << "stratified|hw=" << config.target_half_width
     << "|prune=" << (config.prune ? 1 : 0) << "|ctx=" << context;
  CampaignConfig base = config.base;
  base.error_model = single_bit_flip(-1);  // the model the sampler imposes
  return campaign_fingerprint(base, os.str());
}

bool prune_verify_env_enabled() {
  const char* env = std::getenv("PFI_PRUNE_VERIFY");
  if (env == nullptr || *env == '\0') return false;
  const std::string text(env);
  PFI_CHECK(text == "0" || text == "1")
      << "PFI_PRUNE_VERIFY must be '0' or '1', got '" << text << "'";
  return text == "1";
}

StratifiedResult run_stratified_campaign(FaultInjector& fi,
                                         const data::SyntheticDataset& ds,
                                         const StratifiedCampaignConfig& config) {
  const CampaignConfig& base = config.base;
  fi.model().eval();
  StratifiedFold fold(detail::make_stratified_schedule(fi, config),
                      base.trace);
  const StratifiedSchedule& sched = fold.schedule();
  const std::size_t S = sched.strata.size();

  const std::vector<bool> relu_adj = relu_adjacent_layers(fi);
  std::vector<bool> prunable(S);
  for (std::size_t s = 0; s < S; ++s) {
    prunable[s] = config.prune &&
                  relu_adj[static_cast<std::size_t>(sched.strata[s].layer)];
  }

  std::uint64_t wave_index = 0;
  if (base.checkpoint != nullptr) {
    const auto& saved = base.checkpoint->strata();
    if (!saved.empty()) {
      fold.restore(saved);
    } else {
      PFI_CHECK(base.checkpoint->result().trials == 0 &&
                base.checkpoint->next_unit() == 0)
          << "checkpoint has progress but no stratum states — it was not "
             "written by a stratified campaign";
    }
    wave_index = base.checkpoint->next_unit();
    if (base.checkpoint->done()) return fold.assemble();
  }

  WaveCommitter committer(base.checkpoint, base.trace);
  fold.refresh_flags();

  const std::int64_t threads = detail::resolve_threads(
      base.threads, std::max<std::int64_t>(1, base.trials / 4));
  WorkerSet set(fi, threads);
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(static_cast<std::size_t>(threads));

  while (true) {
    const std::vector<StratUnit> units = fold.compose_wave();
    if (units.empty()) break;

    std::vector<StratUnitOutcome> outcomes(units.size());
    if (threads == 1) {
      for (std::size_t i = 0; i < units.size(); ++i) {
        const StratUnit& u = units[i];
        outcomes[i] =
            detail::run_stratum_attempt(fi, ds, config,
                                        sched.strata[u.stratum], u.stratum,
                                        prunable[u.stratum], u);
      }
    } else {
      pool->run(static_cast<std::size_t>(threads), [&](std::size_t g) {
        // Worker g owns replica g and the wave's units congruent to g, so
        // no injector is touched by two tasks.
        for (std::size_t i = g; i < units.size();
             i += static_cast<std::size_t>(threads)) {
          const StratUnit& u = units[i];
          outcomes[i] =
              detail::run_stratum_attempt(*set.workers[g], ds, config,
                                          sched.strata[u.stratum], u.stratum,
                                          prunable[u.stratum], u);
        }
      });
    }
    for (std::size_t i = 0; i < units.size(); ++i) {
      fold.merge_unit(units[i], outcomes[i]);
    }
    fold.refresh_flags();
    ++wave_index;

    const bool done = !fold.any_open();
    committer.commit(fold.pooled(), wave_index, done, fold.states());
    if (done) break;
  }
  return fold.assemble();
}

}  // namespace pfi::core
