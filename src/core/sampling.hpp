// Statistical campaign acceleration: stratified sampling, adaptive early
// termination, and analytic masked-fault pruning (ROADMAP item 2; the
// validation-efficiency direction of the Intel PyTorchFI extension and MRFI,
// see PAPERS.md).
//
// The uniform campaign runner (core/campaign.hpp) draws every fault
// uniformly over (neuron x bit), so nearly all of its forward passes land in
// strata that are almost never corrupting (low-mantissa flips, flips into
// ReLU-dead activations) while the rare high-variance strata (sign and
// exponent flips) starve. This runner partitions the same fault space into
// (layer x bit-position-class) strata — the dtype fixes the class table
// (core/error_models.hpp bit_classes()) — and estimates the SAME quantity
// the uniform sampler estimates:
//
//   p_uniform = sum_s w_s * p_s,   w_s = neuron share x bit-class share,
//
// via the pooled stratified Wilson estimator in util/stats.hpp. Three
// mechanisms cut executed forward passes at matched confidence width:
//
//  * Stratification + early termination: each stratum stops as soon as its
//    Wilson interval's pooled CONTRIBUTION (w_s^2 * halfwidth_s^2) is below
//    its share of the target half-width budget, so near-deterministic
//    strata resolve in a handful of trials and negligible-weight strata may
//    run zero trials (contributing the vacuous [0, 1] interval).
//  * Masked-fault pruning: because a stratified attempt fixes the flipped
//    bit, the corrupted value is computable analytically from the golden
//    activation (captured during the attempt's golden pass, in the exact
//    dtype-emulation domain the injector would apply the fault in). When
//    the injected layer's output feeds directly into a ReLU, an injection
//    with ReLU(corrupted) bit-identical to ReLU(golden) — e.g. any
//    non-sign flip of a ReLU-dead (<= 0) activation, including quantized
//    low-magnitude flips below the zero crossing — provably cannot change
//    any logit. It is scored as a real (non-corrupting) trial WITHOUT
//    executing the faulty forward, counted in `pruned`.
//  * Golden-pass amortization: unchanged from the uniform runner
//    (injections_per_image, prefix cache).
//
// Determinism contract (same as the uniform runner, pinned by
// tests/test_sampling.cpp): every stratum attempt's randomness is a pure
// function of (seed, stratum_id, attempt_index); stopping decisions are
// evaluated only at merged wave boundaries whose composition is itself a
// pure function of the folded state. Result counts, campaign CSV, and trace
// JSONL are bit-identical at any thread count, under kill/resume at any
// wave, and with the prefix cache on or off.
#pragma once

#include "core/campaign.hpp"

namespace pfi::core {

struct StratumCheckpoint;

/// Static identity of one stratum: a (layer, bit-class) cell of the fault
/// space with its probability mass under the uniform sampler.
struct Stratum {
  std::int64_t layer = 0;  ///< instrumented layer index
  int bit_class = 0;       ///< index into bit_classes(dtype)
  int bit_lo = 0;          ///< lowest bit position of the class (inclusive)
  int bit_hi = 0;          ///< highest bit position (inclusive)
  double weight = 0.0;     ///< neuron share x bit share; sums to 1
};

/// Sampled evidence and bookkeeping for one stratum.
struct StratumOutcome {
  Stratum stratum;
  /// Per-stratum counters; `trials` includes pruned (analytically-masked)
  /// injections — they are exact zero-corruption observations.
  CampaignResult counts;
  std::uint64_t pruned = 0;    ///< trials scored without a faulty forward
  std::uint64_t executed = 0;  ///< faulty forwards actually run
  std::uint64_t attempts = 0;  ///< stratum-local attempts consumed
  bool stopped_early = false;  ///< closed by the CI-width rule, under budget
  bool gave_up = false;        ///< hit its attempt cap before closing

  /// This stratum's Wilson interval (vacuous [0, 1] at zero trials).
  Proportion interval(double z = kZ99) const {
    if (counts.trials == 0) return Proportion{0.0, 0.0, 1.0};
    return wilson_interval(counts.corruptions, counts.trials, z);
  }
};

/// Outcome of a stratified campaign.
struct StratifiedResult {
  std::vector<StratumOutcome> strata;
  /// Pooled raw counters (sum over strata). NOTE: corruptions/trials is the
  /// SAMPLE ratio, not the estimate of the uniform corruption probability —
  /// use estimate() for that (strata are deliberately not sampled in
  /// proportion to their weights once early termination engages).
  CampaignResult totals;
  std::uint64_t pruned = 0;         ///< analytically-masked injections
  std::uint64_t golden_passes = 0;  ///< golden forwards executed
  std::uint64_t faulty_passes = 0;  ///< faulty forwards executed

  /// Weighted stratified estimate of the uniform-sampling corruption
  /// probability, with the pooled 99% Wilson interval.
  Proportion estimate() const;

  std::uint64_t executed_passes() const {
    return golden_passes + faulty_passes;
  }
  /// Trials a single pooled Wilson interval (the uniform estimator) would
  /// need to reach this run's achieved half-width at its point estimate.
  double uniform_equivalent_trials() const;
};

/// Configuration. The base campaign config supplies trials (the TOTAL trial
/// budget, allocated across strata by weight), layer restriction (-1 = all
/// instrumented layers, as in Fig. 4; >= 0 = that layer only, as in
/// Fig. 6), seed, batch/injections_per_image, criterion, threads, trace and
/// checkpoint. base.error_model is ignored: the stratified sampler IS the
/// single-bit-flip model — each attempt draws a concrete bit within its
/// stratum's class (that is what makes the corrupted value analytically
/// computable). base.one_fault_per_layer is unsupported.
struct StratifiedCampaignConfig {
  CampaignConfig base;
  /// Pooled 99% CI half-width goal. A stratum closes once its pooled
  /// contribution w^2 * hw^2 drops below target^2 / num_strata (so when all
  /// strata close, the pooled half-width is <= target). 0 disables the rule
  /// and every stratum simply spends its proportional share of
  /// base.trials.
  double target_half_width = 0.0;
  /// Analytic masked-fault pruning (see file comment). Pure execution-count
  /// knob: counters, CSV, and estimates are identical either way; only
  /// executed forwards (and the injection events of pruned trials, which
  /// never happen) differ.
  bool prune = true;
  /// Verification mode (PFI_PRUNE_VERIFY=1): execute every pruned injection
  /// anyway and abort if the top-1 outcome is NOT unchanged — the pruner's
  /// soundness oracle. Counters stay identical to a non-verify run.
  bool prune_verify = false;
};

/// Enumerate the (layer x bit-class) strata of an injector's fault space,
/// restricted to `layer` when >= 0. Weights sum to 1 over the enumerated
/// set. Layers with non-4D outputs carry no neurons and are skipped.
std::vector<Stratum> make_strata(const FaultInjector& fi, std::int64_t layer,
                                 DType dtype);

/// Per-layer-resolution variant: each layer's bit classes come from its OWN
/// resolved dtype (FaultInjector::layer_dtype), so a mixed fp32/int8 model
/// stratifies every layer in its deployed representation. Identical to the
/// uniform-dtype overload when no per-layer overrides are configured.
std::vector<Stratum> make_strata(const FaultInjector& fi, std::int64_t layer);

/// Instrumented layers whose output feeds directly (and solely) into a ReLU
/// — the structural precondition for ReLU-dead pruning. Detected by walking
/// Sequential containers: layer i qualifies iff it is some Sequential's
/// child and its immediate next sibling is a ReLU.
std::vector<bool> relu_adjacent_layers(FaultInjector& fi);

/// Run a stratified neuron-bit-flip campaign. Same call shape and
/// determinism guarantees as run_classification_campaign.
StratifiedResult run_stratified_campaign(FaultInjector& fi,
                                         const data::SyntheticDataset& ds,
                                         const StratifiedCampaignConfig& config);

/// Fingerprint of every StratifiedCampaignConfig field that shapes outcomes
/// (the stratified analogue of campaign_fingerprint; threads / trace /
/// checkpoint / prune_verify excluded — results are identical across them).
std::uint64_t stratified_fingerprint(const StratifiedCampaignConfig& config,
                                     std::string_view context = "");

/// Honor the PFI_PRUNE_VERIFY env toggle (strictly "0" or "1"; unset =
/// default off). Throws pfi::Error on anything else.
bool prune_verify_env_enabled();

}  // namespace pfi::core
