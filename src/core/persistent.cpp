#include "core/persistent.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace pfi::core {

namespace {

// Seed-derivation streams for the fault process, disjoint from the campaign
// streams (campaign_internal.hpp uses 0..2). Each (event, layer) pair gets
// Rng(derive_seed(derive_seed(seed, event, kPersistStream), layer)); the
// stuck-cell draw at event 0 has its own stream so adding stuck cells never
// shifts the BER/distance sequences.
constexpr std::uint64_t kPersistStream = 11;
constexpr std::uint64_t kStuckStream = 12;

std::string compact_double(double v) {
  std::ostringstream os;
  os << v;  // default precision: compact, stable ("1e-05", "64", "0.5")
  return os.str();
}

}  // namespace

PersistentFaultSet::PersistentFaultSet(FaultInjector& fi,
                                       PersistScenario scenario)
    : fi_(fi), scenario_(scenario) {
  PFI_CHECK(scenario_.ber >= 0.0 && scenario_.ber < 1.0)
      << "PersistScenario.ber=" << scenario_.ber << " must be in [0, 1)";
  PFI_CHECK(scenario_.stuck_bits >= 0)
      << "PersistScenario.stuck_bits=" << scenario_.stuck_bits;
  PFI_CHECK(scenario_.stuck_value >= -1 && scenario_.stuck_value <= 1)
      << "PersistScenario.stuck_value=" << scenario_.stuck_value
      << " must be -1 (random), 0, or 1";
  PFI_CHECK(scenario_.distance_mean >= 0.0)
      << "PersistScenario.distance_mean=" << scenario_.distance_mean;
  PFI_CHECK(scenario_.distance_stddev >= 0.0)
      << "PersistScenario.distance_stddev=" << scenario_.distance_stddev;
  PFI_CHECK(fi_.active_persistent_faults() == 0)
      << "PersistentFaultSet requires a persistently-quiescent injector — "
         "heal_persistent_faults() first";
  if (scenario_.layer >= 0) {
    PFI_CHECK(scenario_.layer < fi_.num_layers())
        << "PersistScenario.layer=" << scenario_.layer
        << " out of range; model has " << fi_.num_layers()
        << " instrumented layers";
    layers_.push_back(scenario_.layer);
  } else {
    for (std::int64_t l = 0; l < fi_.num_layers(); ++l) layers_.push_back(l);
  }
  ber_name_ = "ber[" + compact_double(scenario_.ber) + "]";
  distance_name_ = "distance[" + compact_double(scenario_.distance_mean) +
                   "," + compact_double(scenario_.distance_stddev) + "]";
}

PersistentFaultSet::~PersistentFaultSet() { heal(); }

void PersistentFaultSet::heal() {
  fi_.heal_persistent_faults();
  now_ = 0;
  faults_applied_ = 0;
}

void PersistentFaultSet::advance_to(std::uint64_t t) {
  PFI_CHECK(t >= now_) << "PersistentFaultSet clock runs forward only: "
                       << "advance_to(" << t << ") with now()=" << now_;
  while (now_ < t) {
    apply_event(now_);
    ++now_;
  }
}

void PersistentFaultSet::draw_stuck_cells() {
  // One draw stream for every stuck cell, uniform over the eligible bit
  // space (so dense layers absorb proportionally more stuck cells, like
  // real memory).
  Rng rng(derive_seed(scenario_.seed, 0, kStuckStream));
  std::uint64_t total_bits = 0;
  std::vector<std::uint64_t> layer_bits;
  for (const std::int64_t l : layers_) {
    nn::Module& m = fi_.layer(l);
    const Tensor& w = m.kind() == "Conv2d"
                          ? static_cast<nn::Conv2d&>(m).weight().value
                          : static_cast<nn::Linear&>(m).weight().value;
    const auto bits = static_cast<std::uint64_t>(w.numel()) *
                      static_cast<std::uint64_t>(
                          dtype_bit_width(fi_.layer_dtype(l)));
    layer_bits.push_back(bits);
    total_bits += bits;
  }
  PFI_CHECK(total_bits > 0) << "no weight bits to stick";
  for (std::int64_t i = 0; i < scenario_.stuck_bits; ++i) {
    std::uint64_t pick = rng.next_below(total_bits);
    std::size_t li = 0;
    while (pick >= layer_bits[li]) {
      pick -= layer_bits[li];
      ++li;
    }
    const std::int64_t layer = layers_[li];
    const int width = dtype_bit_width(fi_.layer_dtype(layer));
    const auto flat = static_cast<std::int64_t>(
        pick / static_cast<std::uint64_t>(width));
    const int bit = static_cast<int>(pick % static_cast<std::uint64_t>(width));
    const int value = scenario_.stuck_value >= 0
                          ? scenario_.stuck_value
                          : static_cast<int>(rng.next_below(2));
    fi_.register_stuck_bit(layer, flat, bit, value);
    fi_.write_persistent_bit(
        layer, flat, bit, value, 0,
        "stuck_at_bit[" + std::to_string(bit) + "=" + std::to_string(value) +
            "]");
    ++faults_applied_;
  }
}

void PersistentFaultSet::apply_event(std::uint64_t t) {
  if (t == 0 && scenario_.stuck_bits > 0) draw_stuck_cells();
  for (const std::int64_t l : layers_) {
    nn::Module& m = fi_.layer(l);
    const Tensor& w = m.kind() == "Conv2d"
                          ? static_cast<nn::Conv2d&>(m).weight().value
                          : static_cast<nn::Linear&>(m).weight().value;
    const int width = dtype_bit_width(fi_.layer_dtype(l));
    // Every fault of event t in layer l derives from this one generator —
    // a pure function of (seed, t, l), independent of threads or resume.
    Rng rng(derive_seed(derive_seed(scenario_.seed, t, kPersistStream),
                        static_cast<std::uint64_t>(l)));
    if (scenario_.ber > 0.0) {
      // Bernoulli(ber) over every bit, sampled by geometric gap skipping:
      // gap ~ Geometric(ber) on {1, 2, ...} via inversion, so work scales
      // with the number of flips, not the number of bits.
      const auto total_bits = static_cast<std::uint64_t>(w.numel()) *
                              static_cast<std::uint64_t>(width);
      const double denom = std::log1p(-scenario_.ber);
      std::uint64_t consumed = 0;
      while (true) {
        const double gap =
            std::floor(std::log1p(-rng.next_double()) / denom) + 1.0;
        if (!(gap <= static_cast<double>(total_bits - consumed))) break;
        consumed += static_cast<std::uint64_t>(gap);
        const std::uint64_t pos = consumed - 1;
        fi_.write_persistent_bit(
            l, static_cast<std::int64_t>(pos / static_cast<std::uint64_t>(width)),
            static_cast<int>(pos % static_cast<std::uint64_t>(width)),
            /*op=*/-1, t, ber_name_);
        ++faults_applied_;
      }
    }
    if (scenario_.distance_mean > 0.0) {
      // Byte-walk: consecutive errors are N(mean, stddev) bytes apart
      // (clamped to >= 1 byte); one random bit of each landed byte flips.
      const int bytes_per_elem = width / 8;
      const auto total_bytes = static_cast<std::uint64_t>(w.numel()) *
                               static_cast<std::uint64_t>(bytes_per_elem);
      std::uint64_t consumed = 0;
      while (true) {
        const double gap = std::max(
            1.0, std::round(static_cast<double>(rng.normal(
                     static_cast<float>(scenario_.distance_mean),
                     static_cast<float>(scenario_.distance_stddev)))));
        if (!(gap <= static_cast<double>(total_bytes - consumed))) break;
        consumed += static_cast<std::uint64_t>(gap);
        const std::uint64_t byte = consumed - 1;
        const auto flat = static_cast<std::int64_t>(
            byte / static_cast<std::uint64_t>(bytes_per_elem));
        const int bit =
            static_cast<int>(byte % static_cast<std::uint64_t>(bytes_per_elem)) *
                8 +
            static_cast<int>(rng.next_below(8));
        fi_.write_persistent_bit(l, flat, bit, /*op=*/-1, t, distance_name_);
        ++faults_applied_;
      }
    }
  }
  // A flip that landed on a stuck cell cannot actually change it: the cell
  // still reads its stuck value. Re-force after every event.
  if (scenario_.stuck_bits > 0) fi_.reassert_stuck_bits();
}

}  // namespace pfi::core
