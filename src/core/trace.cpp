#include "core/trace.hpp"

#include <bit>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/fault_injector.hpp"
#include "util/bits.hpp"
#include "util/strings.hpp"

namespace pfi::trace {

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNeuron: return "neuron";
    case FaultKind::kWeight: return "weight";
    case FaultKind::kPersist: return "persist";
  }
  PFI_CHECK(false) << "unreachable fault kind";
}

std::int32_t diff_bit(float pre, float post, core::DType dtype,
                      const quant::QuantParams& qparams) {
  std::uint32_t x = 0;
  switch (dtype) {
    case core::DType::kFloat32:
      x = float_to_bits(pre) ^ float_to_bits(post);
      break;
    case core::DType::kFloat16:
      // Software narrowing, not a _Float16 cast: the hardware cast quiets
      // signalling NaNs and canonicalizes payloads, so an exponent flip
      // that produced an sNaN would diff in more than one bit and lose its
      // attribution. f16_bits_from_float round-trips flip_fp16_bit exactly.
      x = static_cast<std::uint32_t>(f16_bits_from_float(pre) ^
                                     f16_bits_from_float(post));
      break;
    case core::DType::kInt8:
      x = static_cast<std::uint32_t>(
          static_cast<std::uint8_t>(quant::quantize_value(pre, qparams)) ^
          static_cast<std::uint8_t>(quant::quantize_value(post, qparams)));
      break;
    case core::DType::kBFloat16:
      x = static_cast<std::uint32_t>(bf16_bits_from_float(pre) ^
                                     bf16_bits_from_float(post));
      break;
  }
  return std::popcount(x) == 1 ? std::countr_zero(x) : -1;
}

namespace {

/// Decimal rendering for the human-readable value fields. Non-finite values
/// become null (JSON has no Inf/NaN literal); the hex bits field is always
/// authoritative.
std::string json_number(float v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(9);  // max_digits10 for binary32
  os << v;
  return os.str();
}

/// Find `"key":` at object level and return the raw value text after it.
/// Sufficient for the writer's own output (keys never appear inside our
/// escaped strings as `"key":` because the colon ends the match).
std::string raw_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  // Scan outside string literals so hostile layer names containing
  // "key": text cannot shadow a real field.
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') {
      if (line.compare(i, needle.size(), needle) == 0) {
        const std::size_t start = i + needle.size();
        std::size_t end = start;
        PFI_CHECK(start < line.size()) << "truncated value for key '" << key
                                       << "' in: " << line;
        if (line[start] == '"') {  // string value: scan to closing quote
          ++end;
          while (end < line.size() && line[end] != '"') {
            if (line[end] == '\\') ++end;
            ++end;
          }
          PFI_CHECK(end < line.size()) << "unterminated string for key '"
                                       << key << "' in: " << line;
          return line.substr(start, end - start + 1);
        }
        if (line[start] == '[') {  // array value: scan to the closing bracket
          while (end < line.size() && line[end] != ']') ++end;
          PFI_CHECK(end < line.size()) << "unterminated array for key '"
                                       << key << "' in: " << line;
          return line.substr(start, end - start + 1);
        }
        while (end < line.size() && line[end] != ',' && line[end] != '}') {
          ++end;
        }
        return line.substr(start, end - start);
      }
      in_string = true;
    }
  }
  PFI_CHECK(false) << "key '" << key << "' not found in trace line: " << line;
}

std::string string_field(const std::string& line, const std::string& key) {
  const std::string raw = raw_field(line, key);
  PFI_CHECK(raw.size() >= 2 && raw.front() == '"' && raw.back() == '"')
      << "key '" << key << "' is not a string in: " << line;
  return util::json_unescape(raw.substr(1, raw.size() - 2));
}

std::int64_t int_field(const std::string& line, const std::string& key) {
  return std::stoll(raw_field(line, key));
}

core::DType dtype_from_name(const std::string& name) {
  if (name == "fp32") return core::DType::kFloat32;
  if (name == "fp16") return core::DType::kFloat16;
  if (name == "int8") return core::DType::kInt8;
  if (name == "bf16") return core::DType::kBFloat16;
  PFI_CHECK(false) << "unknown dtype '" << name << "' in trace";
}

}  // namespace

std::string event_to_json(const InjectionEvent& ev) {
  std::ostringstream os;
  os << "{\"trial\":" << ev.trial << ",\"attempt\":" << ev.attempt
     << ",\"rep\":" << ev.rep << ",\"kind\":\"" << fault_kind_name(ev.kind)
     << "\",\"layer\":" << ev.layer << ",\"layer_name\":\""
     << util::json_escape(ev.layer_name) << "\",\"layer_kind\":\""
     << util::json_escape(ev.layer_kind) << "\",\"dtype\":\""
     << core::dtype_name(ev.dtype) << "\",\"coords\":[" << ev.coords[0] << ","
     << ev.coords[1] << "," << ev.coords[2] << "," << ev.coords[3]
     << "],\"flat\":" << ev.flat << ",\"bit\":" << ev.bit
     << ",\"pre\":" << json_number(ev.pre) << ",\"pre_bits\":\""
     << util::float_bits_hex(ev.pre) << "\",\"post\":" << json_number(ev.post)
     << ",\"post_bits\":\"" << util::float_bits_hex(ev.post)
     << "\",\"model\":\"" << util::json_escape(ev.model) << "\"";
  // The event-time stamp exists only for persistent faults; transient
  // events keep the exact field set (and bytes) they always serialized to.
  if (ev.kind == FaultKind::kPersist) os << ",\"time\":" << ev.time;
  os << "}";
  return os.str();
}

InjectionEvent event_from_json(const std::string& line) {
  InjectionEvent ev;
  ev.trial = static_cast<std::uint64_t>(int_field(line, "trial"));
  ev.attempt = static_cast<std::uint64_t>(int_field(line, "attempt"));
  ev.rep = static_cast<std::int32_t>(int_field(line, "rep"));
  const std::string kind = string_field(line, "kind");
  PFI_CHECK(kind == "neuron" || kind == "weight" || kind == "persist")
      << "unknown fault kind '" << kind << "' in trace";
  ev.kind = kind == "neuron"
                ? FaultKind::kNeuron
                : (kind == "weight" ? FaultKind::kWeight : FaultKind::kPersist);
  ev.layer = int_field(line, "layer");
  ev.layer_name = string_field(line, "layer_name");
  ev.layer_kind = string_field(line, "layer_kind");
  ev.dtype = dtype_from_name(string_field(line, "dtype"));
  const std::string coords = raw_field(line, "coords");
  PFI_CHECK(coords.size() >= 2 && coords.front() == '[')
      << "bad coords '" << coords << "' in trace";
  std::istringstream cs(coords.substr(1));
  char sep = ',';
  for (int i = 0; i < 4; ++i) {
    cs >> ev.coords[i] >> sep;
  }
  ev.flat = int_field(line, "flat");
  ev.bit = static_cast<std::int32_t>(int_field(line, "bit"));
  // A recorded flip attribution must fit the recorded dtype's own
  // representation: diff_bit=28 on an fp16 event can only mean a corrupted
  // or hand-edited trace, and accepting it would push an impossible flip
  // through replay. The replayer checks dtype against per-layer resolution;
  // this is the parse-time half of that contract.
  PFI_CHECK(ev.bit >= -1 && ev.bit < core::dtype_bit_width(ev.dtype))
      << "trace event records diff_bit " << ev.bit << " but dtype '"
      << core::dtype_name(ev.dtype) << "' is only "
      << core::dtype_bit_width(ev.dtype)
      << " bits wide — corrupted trace line: " << line;
  ev.pre = util::float_from_bits_hex(string_field(line, "pre_bits"));
  ev.post = util::float_from_bits_hex(string_field(line, "post_bits"));
  ev.model = string_field(line, "model");
  if (ev.kind == FaultKind::kPersist) {
    ev.time = static_cast<std::uint64_t>(int_field(line, "time"));
  }
  return ev;
}

std::string trace_to_jsonl(const std::vector<InjectionEvent>& events) {
  std::string out;
  for (const InjectionEvent& ev : events) {
    out += event_to_json(ev);
    out += '\n';
  }
  return out;
}

void write_trace_jsonl(const std::string& path,
                       const std::vector<InjectionEvent>& events) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  PFI_CHECK(out.good()) << "cannot open '" << path << "' for writing";
  out << trace_to_jsonl(events);
  PFI_CHECK(out.good()) << "write to '" << path << "' failed";
}

std::vector<InjectionEvent> read_trace_jsonl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PFI_CHECK(in.good()) << "cannot open trace '" << path << "'";
  std::vector<InjectionEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    events.push_back(event_from_json(line));
  }
  return events;
}

std::vector<std::vector<InjectionEvent>> split_reps(
    const std::vector<InjectionEvent>& events) {
  std::vector<std::vector<InjectionEvent>> reps;
  for (const InjectionEvent& ev : events) {
    if (reps.empty() || reps.back().back().attempt != ev.attempt ||
        reps.back().back().rep != ev.rep) {
      reps.emplace_back();
    }
    reps.back().push_back(ev);
  }
  return reps;
}

void TraceReplayer::arm(std::span<const InjectionEvent> rep_events) {
  for (const InjectionEvent& ev : rep_events) {
    // Per-layer resolution configs make dtype a layer property; the event's
    // recorded dtype must match the replica's resolution for THAT layer.
    PFI_CHECK(ev.dtype == fi_.layer_dtype(ev.layer))
        << "trace event on layer " << ev.layer << " recorded at dtype "
        << core::dtype_name(ev.dtype)
        << " cannot replay on an injector resolving that layer as "
        << core::dtype_name(fi_.layer_dtype(ev.layer));
    // Persistent events re-assert immediately: the recorded post value is
    // written into the weight's deployed representation right now, and it
    // stays there across clear() until heal_persistent_faults(). Replaying
    // every persist event with time <= t in stream order reconstructs the
    // exact weight state of simulated event t (later writes to the same
    // position land last, as they did live).
    if (ev.kind == FaultKind::kPersist) {
      fi_.write_persistent_value(ev.layer, ev.flat, ev.post, ev.time,
                                 ev.model);
      continue;
    }
    // A constant fault writes the recorded post value at the recorded
    // position; because the hook applies it after dtype emulation, exactly
    // where the original model ran, the corrupted tensor is reproduced
    // bit-for-bit regardless of what the original error model computed.
    if (ev.kind == FaultKind::kNeuron) {
      fi_.declare_neuron_fault({.layer = ev.layer,
                                .batch = ev.coords[0],
                                .c = ev.coords[1],
                                .h = ev.coords[2],
                                .w = ev.coords[3]},
                               core::constant_value(ev.post));
    } else {
      fi_.declare_weight_fault({.layer = ev.layer,
                                .out_c = ev.coords[0],
                                .in_c = ev.coords[1],
                                .kh = ev.coords[2],
                                .kw = ev.coords[3]},
                               core::constant_value(ev.post));
    }
  }
}

Tensor TraceReplayer::replay(const Tensor& input,
                             std::span<const InjectionEvent> rep_events) {
  fi_.clear();
  arm(rep_events);
  Tensor out = fi_.forward(input);
  fi_.clear();
  // clear() deliberately leaves persistent faults in place (that is their
  // defining property); the one-shot replay heals them so the injector
  // returns to golden like it always has. No-op for transient-only reps.
  fi_.heal_persistent_faults();
  return out;
}

}  // namespace pfi::trace
