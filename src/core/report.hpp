// Campaign result reporting: CSV export and aligned-text tables, so large
// sweeps (the Fig. 4 / Fig. 6 style studies) can be post-processed or
// plotted outside the harness.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/sampling.hpp"

namespace pfi::core {

/// One labelled campaign outcome in a sweep.
struct CampaignRow {
  std::string label;  ///< e.g. "alexnet" or "eps=0.5 alpha=0.1"
  CampaignResult result;
};

/// Write rows as CSV with header:
///   label,trials,skipped,corruptions,non_finite,gave_up,p,ci_lo,ci_hi
void write_campaign_csv(const std::string& path,
                        const std::vector<CampaignRow>& rows);

/// Render rows as an aligned text table (the bench output format).
std::string campaign_table(const std::vector<CampaignRow>& rows);

/// Footer line for bench/CLI reports: the injector's prefix-cache hit/skip
/// summary (whole-campaign — worker replica counters are folded in when
/// the campaign's worker set tears down), or "" when the cache is off.
/// Deliberately NOT part of write_campaign_csv: exported artifacts stay
/// byte-identical with the cache on or off.
std::string campaign_prefix_footer(const FaultInjector& fi);

/// One labelled stratified-campaign outcome in a sweep.
struct StratifiedRow {
  std::string label;
  StratifiedResult result;
};

/// Write stratified rows as CSV with the SAME header write_campaign_csv
/// uses, so downstream tooling reads both. `p,ci_lo,ci_hi` hold the pooled
/// stratified estimate (StratifiedResult::estimate()), which targets the
/// same quantity as the uniform sampler's Wilson interval; the raw counters
/// are the pooled sums over strata.
void write_stratified_csv(const std::string& path,
                          const std::vector<StratifiedRow>& rows);

/// Efficiency footer for bench/CLI reports: executed vs uniform-equivalent
/// forward passes, analytically-pruned count, stopped-early strata, and the
/// achieved 99% CI half-width. Like the prefix footer, deliberately NOT
/// part of the CSV: the exported artifact stays a pure function of the
/// campaign's statistical outcome.
std::string stratified_efficiency_footer(const StratifiedResult& result);

}  // namespace pfi::core
