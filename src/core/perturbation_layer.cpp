#include "core/perturbation_layer.hpp"

#include "core/fault_injector.hpp"

namespace pfi::core {

void PerturbationLayer::arm(std::int64_t batch, std::int64_t c, std::int64_t h,
                            std::int64_t w, ErrorModel model) {
  PFI_CHECK(model.apply != nullptr) << "error model '" << model.name
                                    << "' has no apply function";
  PFI_CHECK(batch >= kAllBatchElements) << "batch index " << batch;
  PFI_CHECK(c >= 0 && h >= 0 && w >= 0)
      << "negative coordinate (" << c << ", " << h << ", " << w << ")";
  faults_.push_back({batch, c, h, w, std::move(model)});
}

Tensor PerturbationLayer::forward(const Tensor& input) {
  // This is the structural cost of the transformation-layer design: the
  // node exists in the graph for EVERY inference, and to be a well-behaved
  // layer it must not mutate its input in place, so even the idle path
  // pays a full copy — unlike the hook, whose idle path is one branch.
  Tensor out = input.clone();
  if (faults_.empty()) return out;

  PFI_CHECK(out.dim() == 4)
      << "PerturbationLayer expects NCHW, got " << out.to_string();
  InjectionContext ctx;
  ctx.rng = &rng_;
  const auto batch = out.size(0);
  for (const Armed& fault : faults_) {
    PFI_CHECK(fault.c < out.size(1) && fault.h < out.size(2) &&
              fault.w < out.size(3))
        << "armed fault (" << fault.c << ", " << fault.h << ", " << fault.w
        << ") out of range for " << out.to_string();
    const std::int64_t b0 = fault.batch == kAllBatchElements ? 0 : fault.batch;
    const std::int64_t b1 =
        fault.batch == kAllBatchElements ? batch : fault.batch + 1;
    for (std::int64_t b = b0; b < b1 && b < batch; ++b) {
      const auto flat = out.offset_of(b, fault.c, fault.h, fault.w);
      ctx.flat_index = flat;
      out[flat] = fault.model.apply(out[flat], ctx);
    }
  }
  return out;
}

}  // namespace pfi::core
