#include "core/report.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/strings.hpp"

namespace pfi::core {

void write_campaign_csv(const std::string& path,
                        const std::vector<CampaignRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  PFI_CHECK(out.good()) << "cannot open '" << path << "' for writing";
  out << "label,trials,skipped,corruptions,non_finite,gave_up,p,ci_lo,ci_hi\n";
  for (const auto& row : rows) {
    // Labels come from user-chosen module names, so they can contain
    // anything; RFC 4180 quoting keeps hostile labels one field wide.
    const auto p = row.result.corruption_probability();
    out << util::csv_field(row.label) << ',' << row.result.trials << ','
        << row.result.skipped
        << ',' << row.result.corruptions << ',' << row.result.non_finite
        << ',' << row.result.gave_up
        << ',' << std::setprecision(10) << p.value << ',' << p.lo << ','
        << p.hi << '\n';
  }
  PFI_CHECK(out.good()) << "write to '" << path << "' failed";
}

std::string campaign_table(const std::vector<CampaignRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(28) << "label" << std::right << std::setw(10)
     << "trials" << std::setw(12) << "corruptions" << std::setw(12)
     << "P(corrupt)" << std::setw(22) << "99% CI" << '\n';
  for (const auto& row : rows) {
    const auto p = row.result.corruption_probability();
    std::ostringstream ci;
    ci << '[' << std::fixed << std::setprecision(3) << 100.0 * p.lo << ", "
       << 100.0 * p.hi << "]%";
    os << std::left << std::setw(28) << row.label << std::right
       << std::setw(10) << row.result.trials << std::setw(12)
       << row.result.corruptions << std::setw(11) << std::fixed
       << std::setprecision(3) << 100.0 * p.value << '%' << std::setw(22)
       << ci.str();
    // A partial (gave-up) campaign must never read as a completed one.
    if (row.result.gave_up != 0) os << "  GAVE UP (partial)";
    os << '\n';
  }
  return os.str();
}

std::string campaign_prefix_footer(const FaultInjector& fi) {
  const PrefixCache* cache = fi.prefix_cache();
  if (cache == nullptr) return "";
  return prefix_cache_summary(cache->stats(), cache->budget_bytes());
}

void write_stratified_csv(const std::string& path,
                          const std::vector<StratifiedRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  PFI_CHECK(out.good()) << "cannot open '" << path << "' for writing";
  out << "label,trials,skipped,corruptions,non_finite,gave_up,p,ci_lo,ci_hi\n";
  for (const auto& row : rows) {
    const auto p = row.result.estimate();
    const auto& t = row.result.totals;
    out << util::csv_field(row.label) << ',' << t.trials << ',' << t.skipped
        << ',' << t.corruptions << ',' << t.non_finite << ',' << t.gave_up
        << ',' << std::setprecision(10) << p.value << ',' << p.lo << ','
        << p.hi << '\n';
  }
  PFI_CHECK(out.good()) << "write to '" << path << "' failed";
}

std::string stratified_efficiency_footer(const StratifiedResult& result) {
  std::size_t stopped = 0;
  std::size_t gave_up = 0;
  for (const StratumOutcome& s : result.strata) {
    if (s.stopped_early) ++stopped;
    if (s.gave_up) ++gave_up;
  }
  const Proportion est = result.estimate();
  const double half_width = (est.hi - est.lo) / 2.0;
  const std::uint64_t executed = result.executed_passes();
  // What the same trials would have cost without pruning, per trial — the
  // uniform sampler's pass rate — times the trials a single Wilson interval
  // needs to match this run's half-width.
  const double passes_per_trial =
      result.totals.trials > 0
          ? static_cast<double>(result.golden_passes + result.faulty_passes +
                                result.pruned) /
                static_cast<double>(result.totals.trials)
          : 0.0;
  const double equivalent =
      result.uniform_equivalent_trials() * passes_per_trial;

  std::ostringstream os;
  os << "sampler: stratified over " << result.strata.size() << " strata ("
     << stopped << " stopped early";
  if (gave_up > 0) os << ", " << gave_up << " gave up";
  os << "); " << result.totals.trials << " trials, " << result.pruned
     << " pruned analytically\n";
  os << "passes: " << executed << " executed (" << result.golden_passes
     << " golden + " << result.faulty_passes << " faulty) vs "
     << std::fixed << std::setprecision(0) << equivalent
     << " uniform-equivalent";
  if (executed > 0 && std::isfinite(equivalent)) {
    os << " — " << std::setprecision(1)
       << equivalent / static_cast<double>(executed) << "x fewer";
  }
  os << " at 99% CI half-width " << std::setprecision(5) << half_width;
  return os.str();
}

}  // namespace pfi::core
