#include "core/report.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/strings.hpp"

namespace pfi::core {

void write_campaign_csv(const std::string& path,
                        const std::vector<CampaignRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  PFI_CHECK(out.good()) << "cannot open '" << path << "' for writing";
  out << "label,trials,skipped,corruptions,non_finite,gave_up,p,ci_lo,ci_hi\n";
  for (const auto& row : rows) {
    // Labels come from user-chosen module names, so they can contain
    // anything; RFC 4180 quoting keeps hostile labels one field wide.
    const auto p = row.result.corruption_probability();
    out << util::csv_field(row.label) << ',' << row.result.trials << ','
        << row.result.skipped
        << ',' << row.result.corruptions << ',' << row.result.non_finite
        << ',' << row.result.gave_up
        << ',' << std::setprecision(10) << p.value << ',' << p.lo << ','
        << p.hi << '\n';
  }
  PFI_CHECK(out.good()) << "write to '" << path << "' failed";
}

std::string campaign_table(const std::vector<CampaignRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(28) << "label" << std::right << std::setw(10)
     << "trials" << std::setw(12) << "corruptions" << std::setw(12)
     << "P(corrupt)" << std::setw(22) << "99% CI" << '\n';
  for (const auto& row : rows) {
    const auto p = row.result.corruption_probability();
    std::ostringstream ci;
    ci << '[' << std::fixed << std::setprecision(3) << 100.0 * p.lo << ", "
       << 100.0 * p.hi << "]%";
    os << std::left << std::setw(28) << row.label << std::right
       << std::setw(10) << row.result.trials << std::setw(12)
       << row.result.corruptions << std::setw(11) << std::fixed
       << std::setprecision(3) << 100.0 * p.value << '%' << std::setw(22)
       << ci.str();
    // A partial (gave-up) campaign must never read as a completed one.
    if (row.result.gave_up != 0) os << "  GAVE UP (partial)";
    os << '\n';
  }
  return os.str();
}

std::string campaign_prefix_footer(const FaultInjector& fi) {
  const PrefixCache* cache = fi.prefix_cache();
  if (cache == nullptr) return "";
  return prefix_cache_summary(cache->stats(), cache->budget_bytes());
}

}  // namespace pfi::core
