// Static activation calibration driver: one golden fp32 profiling pass over
// representative inputs, frozen into a quant::StaticActQuant.
//
// The flow mirrors deployed INT8 runtimes: run the UNquantized model under a
// trace::Profiler (the injector's hooks record each instrumented layer's
// input and output activation ranges), then freeze one symmetric input scale
// and one output scale per layer with the same scale_from_absmax formula the
// dynamic path applies per forward. A campaign then hands the result to
// FiConfig::static_act and every covered native-INT8 layer stops paying the
// per-inference absmax pass. The calibration records the model's weight
// fingerprint so stale scales are refused at injector construction.
#pragma once

#include <cstdint>
#include <span>

#include "core/fault_injector.hpp"

namespace pfi::core {

/// Order-sensitive digest of every parameter tensor in the model (dotted
/// name + exact weight bits, via kernels::fingerprint). A single flipped
/// weight bit anywhere changes the digest — the identity check between a
/// StaticActQuant and the model it was calibrated for.
std::uint64_t model_weight_fingerprint(nn::Module& model);

/// Run the golden calibration pass: forward every input through `fi` (which
/// must be a plain fp32 injector — no emulated or native dtypes, no armed
/// or persistent faults) with a profiler attached, and freeze the observed
/// per-layer activation ranges into static scales. Layers the pass reaches
/// with no finite output activations calibrate to the degenerate 1/127
/// scale, like the dynamic path on an all-zero tensor.
quant::StaticActQuant calibrate_static_act(FaultInjector& fi,
                                           std::span<const Tensor> inputs);

}  // namespace pfi::core
