// FaultInjector — the core of the library, reproducing PyTorchFI's runtime
// perturbation mechanism (paper Sec. III).
//
// Design decisions carried over from the paper:
//
//  * Hook-based neuron injection (Sec. III-A). The injector registers one
//    forward hook per instrumented layer at construction. The hook body
//    performs a single emptiness check when no faults are declared — "if
//    there are no perturbations defined, then there is no overhead"
//    (Sec. III-C). No graph rewriting, no framework patching.
//
//  * Offline weight corruption (Sec. III-B). declare_weight_fault() mutates
//    the parameter tensor immediately, before inference, so weight faults
//    add zero work on the forward path. clear() restores golden values.
//
//  * Profiling dummy pass (Sec. III-B step 2). Construction runs one dummy
//    inference to learn every instrumented layer's output shape, enabling
//    legality checks with precise error messages at declaration time.
//
//  * Batch semantics (Sec. III-B step 3). A fault can hit one batch element
//    or all of them (batch = kAllBatchElements).
//
//  * Dtype emulation. With DType::kInt8 the injector fake-quantizes every
//    instrumented output (per-tensor symmetric INT8) on every forward —
//    golden and faulty runs alike — so bit flips happen in the quantized
//    domain exactly as in the paper's Fig. 4 campaign. DType::kFloat16
//    rounds outputs to the binary16 grid.
#pragma once

#include <memory>
#include <optional>

#include "core/error_models.hpp"
#include "core/prefix_cache.hpp"
#include "core/profile.hpp"
#include "core/trace.hpp"
#include "nn/nn.hpp"
#include "quant/static_act.hpp"

namespace pfi::core {

/// Sentinel: apply the fault to every element of the batch.
inline constexpr std::int64_t kAllBatchElements = -1;

/// Per-layer numeric resolution override (an MRFI-style resolution config):
/// the named layer runs at `dtype`, natively when `native` is set. Layers
/// without an override inherit FiConfig::{dtype, native}.
struct LayerResolution {
  std::string layer;  ///< dotted module path, e.g. "features.3"
  DType dtype = DType::kFloat32;
  /// True: the layer EXECUTES in the low-precision representation (INT8
  /// GEMM over quantized codes, or fp16/bf16-stored weights/activations
  /// widened through the fp32 kernel). False: fp32 execution with the
  /// injector's output-grid emulation only.
  bool native = false;
};

/// Injector configuration (the arguments of the paper's init step).
struct FiConfig {
  Shape input_shape;             ///< per-sample shape [C, H, W]
  std::int64_t batch_size = 1;
  DType dtype = DType::kFloat32;
  /// Execute every instrumented layer natively at `dtype` (see
  /// LayerResolution::native). Ignored for kFloat32, which always runs
  /// natively by definition.
  bool native = false;
  /// Per-layer resolution overrides; each entry must name an instrumented
  /// layer's dotted path (checked at construction).
  std::vector<LayerResolution> per_layer = {};
  bool instrument_linear = false;  ///< extension: also hook Linear layers
  std::uint64_t seed = 0xf15eedull;
  /// Enable golden-prefix activation reuse (core/prefix_cache.hpp). Purely
  /// a speed knob: campaign counts, CSV, traces, and checkpoints are
  /// byte-identical either way. Callers wishing to honor the
  /// PFI_PREFIX_CACHE env toggle set this from prefix_cache_env_enabled().
  bool prefix_cache = true;
  /// Snapshot byte budget in MB; -1 reads PFI_PREFIX_CACHE_MB (default 256).
  std::int64_t prefix_cache_mb = -1;
  /// Frozen per-layer activation scales (core::calibrate_static_act). When
  /// set, every native-INT8 instrumented layer covered by the calibration
  /// quantizes its input with the frozen scale (no per-forward absmax pass)
  /// and re-quantizes its output onto the frozen grid — INT8-resident layer
  /// boundaries, with conv->ReLU pairs fused onto the codes. The injector
  /// REFUSES a calibration whose weight fingerprint does not match the
  /// model (stale calibration), and calibration_fingerprint() must be
  /// folded into campaign fingerprints by the caller so artifacts written
  /// under different calibrations can never be merged or resumed together.
  /// Null (the default) keeps dynamic per-forward calibration.
  std::shared_ptr<const quant::StaticActQuant> static_act = nullptr;
};

/// How FaultInjector::forward should interact with the prefix cache.
/// Campaign code drives these explicitly; a kPlain forward (the default,
/// and the only mode benchmarked by Fig. 3's idle-overhead claim) touches
/// no cache machinery at all.
enum class ForwardMode {
  kPlain,         ///< no cache interaction
  kRecordGolden,  ///< record this (fault-free) pass as the golden prefix
  kReusePrefix,   ///< replay cached layers before the earliest armed fault
};

/// Coordinates of a neuron in an instrumented layer's output fmap.
struct NeuronLocation {
  std::int64_t layer = 0;
  std::int64_t batch = kAllBatchElements;
  std::int64_t c = 0;
  std::int64_t h = 0;
  std::int64_t w = 0;
};

/// Coordinates of a weight in a conv layer's filter bank.
struct WeightLocation {
  std::int64_t layer = 0;
  std::int64_t out_c = 0;
  std::int64_t in_c = 0;  ///< within the layer's group slice
  std::int64_t kh = 0;
  std::int64_t kw = 0;
};

class FaultInjector {
 public:
  /// Instruments `model` (keeps it alive) and runs the profiling pass.
  FaultInjector(std::shared_ptr<nn::Module> model, FiConfig config);

  /// Removes all hooks and restores any perturbed weights.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // -- Profiling results ---------------------------------------------------------
  /// Number of instrumented layers.
  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(layers_.size());
  }
  /// Output shape [N, C, H, W] of instrumented layer i (from profiling).
  const Shape& layer_shape(std::int64_t layer) const;
  /// The instrumented module itself.
  nn::Module& layer(std::int64_t i) const;
  /// Total neuron count across all instrumented layers (one batch element).
  std::int64_t total_neurons() const { return total_neurons_; }

  // -- Fault declaration (the paper's step 3) ---------------------------------------
  /// Declare a runtime neuron fault; validates coordinates against the
  /// profiled shapes and throws pfi::Error with context when out of range.
  void declare_neuron_fault(const NeuronLocation& loc, ErrorModel model);

  /// Perturb a weight immediately (offline, zero runtime cost); restored by
  /// clear() or destruction.
  void declare_weight_fault(const WeightLocation& loc, const ErrorModel& model);

  /// Coarser-granularity injection (paper Sec. IV-A's suggested study):
  /// corrupt EVERY neuron of feature map `c` in `layer` with the model.
  void declare_fmap_fault(std::int64_t layer, std::int64_t c,
                          std::int64_t batch, ErrorModel model);

  /// Coarsest granularity: corrupt every neuron the layer produces.
  void declare_layer_fault(std::int64_t layer, std::int64_t batch,
                           ErrorModel model);

  /// Uniformly random neuron across all layers (weighted by layer size), or
  /// within the given layer.
  NeuronLocation random_neuron_location(Rng& rng, std::int64_t layer = -1) const;

  /// Uniformly random weight position, optionally within one layer.
  WeightLocation random_weight_location(Rng& rng, std::int64_t layer = -1) const;

  /// Remove all declared neuron faults and restore all perturbed weights.
  /// Persistent faults are NOT removed — stuck-at bits re-assert themselves
  /// at the end of every clear(), so a transient restore can never scrub a
  /// stuck memory cell back to golden. Use heal_persistent_faults() to
  /// actually repair the memory.
  void clear();

  // -- Persistent memory faults (event-time; driven by core/persistent.hpp) --------
  /// Result of one persistent write: the master (fp32) weight value before
  /// and after, bit-exact.
  struct PersistentWrite {
    float pre = 0.0f;
    float post = 0.0f;
  };

  /// Corrupt one bit of weight `flat` (flat index into the layer's weight
  /// tensor) in the layer's DEPLOYED representation: the fp32 word, the
  /// fp16/bf16 storage bits, or the INT8 code under the layer's deployed
  /// scale (the frozen per-channel scale for native layers, per-tensor
  /// calibration for emulated ones). `op` = -1 flips the bit, 0/1 forces
  /// it. Unlike declare_weight_fault the write SURVIVES clear(); only
  /// heal_persistent_faults() (or destruction) restores golden. The layer's
  /// packed-weight caches are invalidated so the next forward deploys the
  /// corrupted code, and a kPersist trace event stamped with `time` is
  /// emitted into the attached sink.
  PersistentWrite write_persistent_bit(std::int64_t layer, std::int64_t flat,
                                       int bit, int op, std::uint64_t time,
                                       const std::string& model_name);

  /// Replay primitive (trace::TraceReplayer): write the recorded `value` at
  /// (layer, flat) as a persistent fault — same undo/invalidation/trace
  /// semantics as write_persistent_bit, no bit arithmetic.
  void write_persistent_value(std::int64_t layer, std::int64_t flat,
                              float value, std::uint64_t time,
                              const std::string& model_name);

  /// Register a stuck-at cell: after its initial write_persistent_bit, the
  /// bit is re-forced by every clear() and by reassert_stuck_bits(), so
  /// later writes to the weight (transient-fault restores, other persistent
  /// flips) cannot un-stick it.
  void register_stuck_bit(std::int64_t layer, std::int64_t flat, int bit,
                          int value);

  /// Re-force every registered stuck bit in place (no trace, no new undo
  /// entries — the original golden value was recorded by the birth write).
  /// Invalidates packs only for cells that actually changed.
  void reassert_stuck_bits();

  /// Restore every persistently-corrupted weight to golden (reverse write
  /// order, bit-exact) and forget all stuck-bit registrations. Idempotent.
  void heal_persistent_faults();

  /// Number of persistent writes currently held in the undo log.
  std::size_t active_persistent_faults() const {
    return persist_undo_.size();
  }

  /// Reseed the injector's internal RNG (the one stochastic error models
  /// draw from via InjectionContext::rng). The campaign engine reseeds with
  /// a counter-derived per-trial seed so random error-model draws do not
  /// depend on how trials are sharded across threads.
  void reseed(std::uint64_t seed) { rng_.reseed(seed); }

  /// Build an independent deep replica: the model is cloned via
  /// nn::clone_model (fresh storage, identical weights and batch-norm
  /// statistics), then instrumented with the same FiConfig. Replicas share
  /// nothing mutable with this injector, so each can run forwards on its
  /// own thread. Requires a quiescent injector (no armed faults, no
  /// perturbed weights) so the replica is golden.
  std::unique_ptr<FaultInjector> replicate() const;

  // -- Execution ------------------------------------------------------------------
  /// Run the instrumented model; shape-checked against the config. With
  /// mode != kPlain the prefix cache records / replays this pass — unless
  /// reuse is unavailable (cache disabled, profiler attached, model in
  /// training mode, nothing recorded, different input), in which case the
  /// pass silently degrades to a full recompute with identical results.
  Tensor forward(const Tensor& input,
                 ForwardMode mode = ForwardMode::kPlain);

  /// The prefix cache, or nullptr when FiConfig::prefix_cache is off.
  PrefixCache* prefix_cache() const { return prefix_cache_.get(); }

  /// Fold a replica's prefix-cache counters into this injector's (the
  /// campaign runner calls this when tearing down its worker set so the
  /// report sees whole-campaign hit rates). No-op if either side has no
  /// cache.
  void absorb_prefix_stats(const FaultInjector& other);

  // -- Observability (the pfi::trace layer) -----------------------------------------
  /// Attach a TraceSink: every subsequent injection (neuron and weight)
  /// emits an InjectionEvent into it. Pass nullptr to detach. The sink is
  /// single-threaded — campaign workers each attach their own. With the
  /// sink detached (the default) the injection path pays one branch; in a
  /// -DPFI_TRACE=OFF build the emission code is compiled out entirely.
  void set_trace_sink(trace::TraceSink* sink) { sink_ = sink; }
  trace::TraceSink* trace_sink() const { return sink_; }

  /// Attach a Profiler: the hook then records per-layer activation
  /// min/max/mean and its own per-layer wall time (see profile.hpp). The
  /// profiler's layer table is (re)initialized from this injector's
  /// instrumented layers. Pass nullptr to detach.
  void set_profiler(trace::Profiler* profiler);
  trace::Profiler* profiler() const { return profiler_; }

  /// Dotted module path of instrumented layer i (e.g. "features.3"), the
  /// stable identifier used in exported traces.
  const std::string& layer_path(std::int64_t i) const;

  /// Dtype-emulation params the last golden (kRecordGolden) pass captured
  /// for layer i — the exact quantized domain any fault armed on that layer
  /// is applied in (see golden_qp_'s comment). The stratified sampler's
  /// masked-fault pruner (core/sampling.hpp) uses these to compute a
  /// candidate injection's corrupted value analytically, bit-identical to
  /// what executing the injection would produce. Meaningful only after a
  /// kRecordGolden forward; default-constructed before one.
  quant::QuantParams golden_qparams(std::int64_t layer) const {
    PFI_CHECK(layer >= 0 && layer < num_layers())
        << "golden_qparams layer " << layer << " out of range [0, "
        << num_layers() << ")";
    return golden_qp_[static_cast<std::size_t>(layer)];
  }

  // -- Introspection ----------------------------------------------------------------
  std::size_t active_neuron_faults() const;
  /// Declared weight corruptions currently applied (undone by clear()).
  std::size_t active_weight_faults() const { return weight_undo_.size(); }
  std::uint64_t injections_performed() const { return injections_; }

  /// Human-readable summary of the instrumented model: one line per layer
  /// with its kind, output shape, and declared fault count — the profiling
  /// report the paper's init step gathers (Sec. III-B step 2).
  std::string describe() const;
  DType dtype() const { return config_.dtype; }
  /// Resolution of instrumented layer i: its dtype and whether the layer
  /// executes natively in that representation. With no per-layer overrides
  /// these are FiConfig::{dtype, native} for every layer.
  DType layer_dtype(std::int64_t i) const;
  bool layer_native(std::int64_t i) const;
  /// True when layer i runs under frozen static activation scales.
  bool layer_static(std::int64_t i) const;
  /// Identity of the attached static calibration — StaticActQuant::
  /// fingerprint(), or 0 when running dynamic calibration. Campaign
  /// drivers fold this into their config fingerprints so CSVs, traces,
  /// checkpoints, and shards record which calibration produced them.
  std::uint64_t calibration_fingerprint() const {
    return config_.static_act == nullptr ? 0
                                         : config_.static_act->fingerprint();
  }
  const FiConfig& config() const { return config_; }
  nn::Module& model() { return *model_; }

 private:
  enum class FaultScope { kNeuron, kFmap, kLayer };

  struct ArmedFault {
    NeuronLocation loc;
    ErrorModel model;
    FaultScope scope = FaultScope::kNeuron;
  };
  struct WeightUndo {
    nn::Parameter* param;
    std::int64_t flat;
    float original;
    // The owning layer (Conv2d, or Linear for persistent writes), so restore
    // can also drop its stale packed-weight panels (the blocked-GEMM cache
    // keyed on the weight bits).
    nn::Module* owner;
  };
  struct StuckBit {
    std::int64_t layer;
    std::int64_t flat;
    int bit;
    int value;
  };

  void hook_body(std::int64_t layer_index, const Tensor& input,
                 Tensor& output);

  /// The fault-application half of hook_body: dtype emulation is assumed
  /// done (qp is the params it produced) and every armed fault on the layer
  /// is applied to `output`, with trace events and the injection counter
  /// exactly as the hook itself would produce. Shared by the hook and the
  /// prefix cache's resume-at-injection mutator so the two paths cannot
  /// drift.
  void apply_armed_faults(std::int64_t layer_index, Tensor& output,
                          const quant::QuantParams& qp);

  /// How much of the recorded golden pass the next kReusePrefix forward may
  /// replay given the currently armed faults.
  struct ReusePlan {
    /// Leading golden events to serve from snapshots. 0 when any faulted
    /// layer never ran in the recorded pass (recording is stale).
    std::size_t prefix_len = 0;
    /// When resumable AT the injection site: the injected layer's event
    /// index (== prefix_len - 1) and instrumented-layer index. The event is
    /// served as a snapshot clone with apply_armed_faults() run on it.
    std::size_t mutate_event = PrefixCache::kNoEvent;
    std::int64_t mutate_layer = -1;
  };

  /// Neuron faults resume AT the injected layer (its faulty output is the
  /// golden snapshot plus the fault — the hook only mutates a deterministic
  /// result after the fact); weight faults resume strictly BEFORE the
  /// perturbed conv (its forward itself changed). The earliest of those
  /// bounds wins; a neuron fault on or after a perturbed conv applies via
  /// its real hook during recomputation.
  ReusePlan reuse_plan() const;

  /// True when record/reuse may run: cache built, no profiler attached
  /// (per-layer timings need real execution), model in eval mode.
  bool prefix_cache_usable() const;

  /// Emit one InjectionEvent into the attached sink (trace builds only).
  /// `time` stamps kPersist events with the simulated event index; it is
  /// ignored (and unserialized) for transient kinds.
  void emit_event(trace::FaultKind kind, std::int64_t layer,
                  const std::int64_t (&coords)[4], std::int64_t flat,
                  float pre, float post, const std::string& model_name,
                  const quant::QuantParams& qparams, std::uint64_t time = 0);

  /// The weight parameter of instrumented layer i; checks the layer is
  /// weight-bearing (Conv2d, or Linear when instrumented).
  nn::Parameter& weight_param(std::int64_t layer) const;

  /// Quantization params a persistent write on (layer, flat) operates under
  /// when the layer resolves to INT8: the frozen per-channel deployed scale
  /// for native layers, per-tensor calibration of the current weights for
  /// emulated ones. Default-constructed for float dtypes.
  quant::QuantParams persistent_qparams(std::int64_t layer,
                                        std::int64_t flat) const;

  /// Drop `module`'s packed-weight caches (Conv2d or Linear dispatch).
  static void invalidate_module_packs(nn::Module& module);

  /// Shared body of the persistent-write entry points: record the undo
  /// entry, store `post`, invalidate packs, bump the counter, emit the
  /// kPersist trace event.
  void commit_persistent_write(std::int64_t layer, std::int64_t flat,
                               float pre, float post, std::uint64_t time,
                               const std::string& model_name,
                               const quant::QuantParams& qparams);

  /// Resolve config_.{dtype, native, per_layer} into layer_dtype_ /
  /// layer_native_ and switch native layers' modules into their
  /// low-precision execution mode (frozen per-channel INT8 scales computed
  /// from the CURRENT — golden — weights, so a later weight fault flips one
  /// deployed code without re-calibrating its channel).
  void apply_native_modes();
  /// Return every natively-executing module to fp32 (destructor path; the
  /// injector borrows the model, it does not own its numeric mode).
  void reset_native_modes();

  std::shared_ptr<nn::Module> model_;
  FiConfig config_;
  std::vector<nn::Module*> layers_;
  std::vector<std::string> layer_paths_;
  std::vector<DType> layer_dtype_;       // per instrumented layer
  std::vector<std::uint8_t> layer_native_;
  /// Per-layer static-calibration state: layer_static_[i] != 0 marks a
  /// native-INT8 layer running under frozen scales, and
  /// layer_static_scale_[i] is its frozen OUTPUT scale — the quantized
  /// domain the hook arms faults in (the resident codes' scale).
  std::vector<std::uint8_t> layer_static_;
  std::vector<float> layer_static_scale_;
  /// True when apply_native_modes wired conv->ReLU fusion for the static
  /// path (so reset_native_modes unwires it).
  bool fused_relu_ = false;
  std::vector<nn::HookHandle> hook_handles_;
  std::vector<Shape> layer_shapes_;
  std::vector<std::vector<ArmedFault>> faults_;  // per layer
  std::vector<WeightUndo> weight_undo_;
  /// Persistent-fault undo log, in write order. Survives clear(); unwound
  /// (in reverse) only by heal_persistent_faults() / destruction.
  std::vector<WeightUndo> persist_undo_;
  std::vector<StuckBit> stuck_bits_;
  /// Per-layer dtype-emulation params captured during the last golden
  /// (kRecordGolden) pass. A cache-off faulty pass recomputes the same
  /// params at the injection site (its raw output is bit-identical to the
  /// golden one), so resume-at-injection must reuse the RECORDED params —
  /// recalibrating on the already-quantized snapshot would drift by ULPs.
  std::vector<quant::QuantParams> golden_qp_;
  bool recording_golden_ = false;
  std::int64_t total_neurons_ = 0;
  std::uint64_t injections_ = 0;
  Rng rng_;
  trace::TraceSink* sink_ = nullptr;
  trace::Profiler* profiler_ = nullptr;
  std::unique_ptr<PrefixCache> prefix_cache_;
};

/// Convenience for the paper's Fig. 5 detection study: declare one random
/// neuron fault in every instrumented layer, all using `model`.
void declare_one_fault_per_layer(FaultInjector& fi, const ErrorModel& model,
                                 Rng& rng);

}  // namespace pfi::core
