// pfi_cli's argument parser as a library. Extracted from the binary so the
// parser is unit-testable (tests/test_cli.cpp): parsing never prints and
// never exits — every outcome, including usage errors, comes back as data.
// The binary turns CliParse::error into stderr + exit(2), show_help into
// the usage text, and list_models into the model list.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/error_models.hpp"
#include "core/fault_injector.hpp"
#include "core/persistent.hpp"

namespace pfi::core {

/// Everything pfi_cli can be told. Field defaults ARE the CLI defaults.
struct CliOptions {
  std::string model = "resnet18";
  std::string dataset = "cifar10";
  std::string dtype = "fp32";
  /// Execute instrumented layers natively at `dtype` (INT8 GEMM / 16-bit
  /// storage) rather than emulating on fp32 outputs. Also set by a
  /// "-native" dtype suffix ("int8-native").
  bool native = false;
  /// Raw --per-layer-dtype spec ("PATH=DTYPE,PATH=DTYPE,..."); empty = no
  /// per-layer overrides. Parsed/validated by parse_per_layer_dtype.
  std::string per_layer_dtype;
  std::string error;  ///< error-model spec; empty = "random" after parsing
  std::string sampler = "uniform";
  double ci_target = 0.0;
  bool prune = true;
  std::int64_t trials = 500;
  std::int64_t layer = -1;
  bool per_layer = false;
  std::int64_t epochs = 3;
  std::uint64_t seed = 1;
  std::int64_t threads = 0;  ///< 0 = hardware concurrency
  std::string save_path;
  std::string load_path;
  std::string trace_path;
  std::string checkpoint_path;
  bool resume = false;
  bool profile = false;
  bool prefix_cache = true;
  /// Static activation calibration file (--static-calib PATH): load the
  /// frozen per-layer INT8 activation scales from PATH, or — when PATH does
  /// not exist yet — run the golden fp32 calibration pass, write PATH, and
  /// then use it. Only meaningful with a native INT8 dtype. Empty = dynamic
  /// per-forward calibration.
  std::string static_calib;
  // Sharded-campaign mode (core/shard.hpp). Sharding engages when
  // --shard-dir is given: --shard-index runs this process as ONE shard
  // worker (pfi_launch spawns these); without it the process runs all
  // shards in-process and merges.
  std::int64_t shards = 1;
  std::int64_t shard_index = -1;  ///< -1 = not a worker (run all + merge)
  std::int64_t shard_horizon = 0;  ///< 0 = auto
  std::string shard_dir;
  // Fleet-degradation mode (core/persistent.hpp). Engages when --horizon is
  // given: the model serves `horizon` inference events while the persistent
  // fault process configured by --ber / --persist corrupts its weights.
  double ber = 0.0;       ///< per-bit upset probability per event
  std::string persist;    ///< raw --persist spec; see parse_persist_spec
  std::int64_t horizon = 0;  ///< 0 = no fleet mode

  bool shard_mode() const { return !shard_dir.empty(); }
  bool fleet_mode() const { return horizon > 0; }
};

/// Outcome of parsing one argv. Exactly one of these holds: ok() (run the
/// campaign), show_help / list_models (print and exit 0), or a non-empty
/// error (print usage to stderr and exit 2).
struct CliParse {
  CliOptions options;
  std::string error;
  bool show_help = false;
  bool list_models = false;

  bool ok() const { return error.empty() && !show_help && !list_models; }
};

/// Parse pfi_cli's argv (argv[0] is skipped, as usual). Pure: no I/O, no
/// exit; all validation failures land in CliParse::error with the flag
/// named.
CliParse parse_cli_args(int argc, const char* const* argv);

/// The usage text the binary prints for --help / usage errors.
std::string cli_usage();

/// Parse an error-model spec (bitflip | bitflip:BIT | random |
/// random:LO:HI | zero | const:V | noise:MAG). On failure returns nullopt
/// and, when `error` is non-null, stores an explanation.
std::optional<ErrorModel> parse_error_model_spec(const std::string& spec,
                                                 std::string* error = nullptr);

/// Parse a dtype name (fp32 | fp16 | bf16 | int8); nullopt on anything else.
std::optional<DType> parse_dtype_name(const std::string& name);

/// A dtype token with its execution mode: "int8" parses as emulated INT8,
/// "int8-native" as the native INT8 inference path (and likewise for
/// fp16/bf16; "fp32-native" is accepted and means plain fp32).
struct DtypeSpec {
  DType dtype = DType::kFloat32;
  bool native = false;
};

/// Parse a dtype spec token (DTYPE or DTYPE-native); nullopt on anything
/// else.
std::optional<DtypeSpec> parse_dtype_spec(const std::string& spec);

/// Parse a --persist spec onto `scenario`:
///   stuckat:N        N stuck-at cells, each stuck at a random value
///   stuckat:N:V      N cells stuck at V (0 or 1)
///   distance:M:S     distance-based errors, N(M, S) bytes apart
/// Returns false and (when `error` is non-null) stores an explanation on a
/// malformed spec. --ber rides in its own flag, not this spec.
bool parse_persist_spec(const std::string& spec, PersistScenario* scenario,
                        std::string* error = nullptr);

/// Parse a --per-layer-dtype value: comma-separated PATH=DTYPE[-native]
/// entries, e.g. "features.0=int8-native,features.3=fp16". Layer paths are
/// validated later, at injector construction, against the instrumented
/// model. On failure returns nullopt and, when `error` is non-null, stores
/// an explanation.
std::optional<std::vector<LayerResolution>> parse_per_layer_dtype(
    const std::string& text, std::string* error = nullptr);

}  // namespace pfi::core
