// Error-injection campaign runner — the methodology of the paper's Fig. 4
// and Fig. 6 studies (Sec. IV-A, IV-C):
//
//   1. draw an input and run a golden (fault-free) inference;
//   2. skip inputs the model misclassifies ("we only select images that are
//      correctly classified by the model without perturbations");
//   3. declare one fault at a random location, run the faulty inference;
//   4. count an output corruption when the Top-1 class changes;
//   5. report the corruption probability with its Wilson confidence interval.
//
// Execution model: trials are independent experiments, so the runner shards
// them across a thread pool (CampaignConfig::threads). Every trial draws its
// randomness from a counter-derived seed (derive_seed(seed, trial_index)),
// never from a shared sequential stream, and each worker operates on its own
// deep model replica (FaultInjector::replicate()). Consequence, guaranteed
// by tests: a campaign produces BIT-IDENTICAL CampaignResult counts for any
// thread count, including 1.
#pragma once

#include "core/fault_injector.hpp"
#include "core/persistent.hpp"
#include "core/trace.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"

namespace pfi::core {

class CampaignCheckpointer;

/// What counts as an output corruption (paper Sec. IV-A lists these as
/// alternative vulnerability criteria worth studying).
enum class CorruptionCriterion {
  kTop1Mismatch,     ///< faulty Top-1 != golden Top-1 (the paper's default)
  kTop1NotInTop5,    ///< golden Top-1 absent from faulty Top-5
  kNonFiniteOutput,  ///< any NaN/Inf logit
};

/// Campaign parameters.
struct CampaignConfig {
  std::int64_t trials = 1000;     ///< successful injection experiments
  ErrorModel error_model;
  std::int64_t layer = -1;        ///< -1: any layer, else restrict
  CorruptionCriterion criterion = CorruptionCriterion::kTop1Mismatch;
  std::uint64_t seed = 7;
  /// Faults hit one random batch element (false) or the whole batch (true).
  bool same_fault_across_batch = false;
  std::int64_t batch_size = 1;
  /// Number of independent injections performed per correctly-classified
  /// image (amortizes the golden inference; each injection is still a
  /// separate faulty inference at a fresh random location).
  std::int64_t injections_per_image = 1;
  /// When true, each trial arms one random fault in EVERY instrumented
  /// layer (the Sec. IV-B / IV-D error model) instead of a single fault at
  /// one random location. `layer` is ignored in this mode.
  bool one_fault_per_layer = false;
  /// Worker threads to shard trials across. 0 = hardware concurrency;
  /// 1 = run inline on the caller's injector. Workers beyond the first get
  /// a deep model replica each, so memory grows linearly with threads.
  /// Results are bit-identical for every value of this knob.
  std::int64_t threads = 0;
  /// Optional injection trace: when set, every injection performed by a
  /// counted trial lands here as an InjectionEvent, merged across workers
  /// strictly in attempt order — the merged stream (and its JSONL
  /// serialization) is bit-identical for every thread count, like the
  /// counts. Injections from attempts/reps beyond the trial target are
  /// discarded with them. The runner manages per-worker sinks internally;
  /// any sink already attached to the injector is saved and restored.
  trace::TraceSink* trace = nullptr;
  /// Give-up threshold: a campaign that has burned this many attempts
  /// without reaching `trials` stops and returns its partial result with
  /// `gave_up` set (see CampaignResult). 0 = the default formula
  /// (10'000 + trials * 1'000), which only a model that almost never
  /// classifies correctly can hit.
  std::int64_t attempt_cap = 0;
  /// Optional crash safety: when set, the runner folds attempts in waves
  /// and after every merged wave (a) appends the wave's trace events to the
  /// checkpointer's streaming JSONL file and (b) atomically persists a
  /// versioned checkpoint (folded result + next attempt index). A kill at
  /// any moment loses at most one in-flight wave; resuming from the
  /// checkpoint reproduces the uninterrupted run's CampaignResult, CSV, and
  /// trace JSONL byte-for-byte, at any thread count. The checkpointer must
  /// have been begin()- or resume()-initialized with this config's
  /// fingerprint; the runner starts from its result()/next_attempt().
  CampaignCheckpointer* checkpoint = nullptr;
};

/// Campaign outcome. Plain counters only (no pointers, no padding
/// surprises): the checkpoint subsystem persists this struct field-by-field
/// and the round-trip golden test memcmp's it.
struct CampaignResult {
  std::uint64_t trials = 0;       ///< injections into correctly-classified runs
  std::uint64_t skipped = 0;      ///< inputs skipped (golden run already wrong)
  std::uint64_t corruptions = 0;  ///< criterion triggered
  std::uint64_t non_finite = 0;   ///< faulty runs with NaN/Inf logits
  /// 1 when the campaign hit its attempt cap before reaching the trial
  /// target and returned this PARTIAL result instead of aborting (the
  /// counters above cover only the attempts actually folded). Surfaced by
  /// campaign_table / write_campaign_csv; uint64 so the struct stays a flat
  /// array of counters for checkpointing.
  std::uint64_t gave_up = 0;

  /// Corruption probability with 99% Wilson interval (the paper's Fig. 4
  /// error bars). With zero trials there is no evidence at all, so the
  /// result is the degenerate "know nothing" proportion: point estimate 0
  /// with the vacuous interval [0, 1] — NOT a misleading 0/1 Wilson
  /// interval that would read as a confident measurement.
  Proportion corruption_probability() const {
    if (trials == 0) return Proportion{0.0, 0.0, 1.0};
    return wilson_interval(corruptions, trials);
  }
};

/// Run a neuron-injection campaign on a classification model.
CampaignResult run_classification_campaign(FaultInjector& fi,
                                           const data::SyntheticDataset& ds,
                                           const CampaignConfig& config);

/// Per-layer vulnerability: run one campaign per instrumented layer and
/// return each layer's corruption probability (Fig. 6's measurement).
std::vector<CampaignResult> run_per_layer_campaign(
    FaultInjector& fi, const data::SyntheticDataset& ds,
    CampaignConfig config);

/// Weight-fault campaign: each trial perturbs ONE random conv weight
/// (offline, paper Sec. III-B), evaluates `images_per_fault` inputs against
/// their golden outcomes, then restores the weight. Unlike a neuron fault,
/// a weight fault corrupts every inference until repaired, so one fault is
/// scored against several inputs.
struct WeightCampaignConfig {
  std::int64_t faults = 200;            ///< distinct weight faults to draw
  std::int64_t images_per_fault = 4;
  ErrorModel error_model;
  std::int64_t layer = -1;              ///< -1: any conv layer
  CorruptionCriterion criterion = CorruptionCriterion::kTop1Mismatch;
  std::uint64_t seed = 7;
  /// Worker threads to shard faults across (same semantics and determinism
  /// guarantee as CampaignConfig::threads).
  std::int64_t threads = 0;
  /// Optional injection trace (same semantics as CampaignConfig::trace);
  /// weight-fault events merge in fault-index order.
  trace::TraceSink* trace = nullptr;
  /// Optional crash safety (same semantics as CampaignConfig::checkpoint);
  /// the checkpoint's unit counter is the next weight-fault index.
  CampaignCheckpointer* checkpoint = nullptr;
};

CampaignResult run_weight_campaign(FaultInjector& fi,
                                   const data::SyntheticDataset& ds,
                                   const WeightCampaignConfig& config);

// -- Fleet-degradation campaign (persistent faults over deployment time) --------

/// Sentinel for FleetResult::first_sdc: no event ever mismatched golden.
inline constexpr std::uint64_t kNoSdc = ~0ull;

/// A long-horizon deployment simulation: the model serves `horizon`
/// inference events while a PersistScenario's fault process (BER / stuck-at
/// / distance-based; core/persistent.hpp) corrupts its weight memory
/// between events. Each event draws a fresh input batch, runs the
/// corrupted model, and scores it against the SAME batch's fault-free
/// (golden) prediction — a mismatch is a silent data corruption (SDC).
struct FleetCampaignConfig {
  std::uint64_t horizon = 100;     ///< simulated inference events
  PersistScenario scenario;        ///< the fault process (owns its own seed)
  std::int64_t batch_size = 8;     ///< rows served per event
  std::uint64_t seed = 7;          ///< input-draw seed
  /// Worker threads (same semantics and byte-identity guarantee as
  /// CampaignConfig::threads: every thread count produces the same result,
  /// timeline, and trace stream).
  std::int64_t threads = 0;
  /// Optional trace: each event's persistent writes land as kPersist
  /// events stamped with the event index, merged strictly in event order.
  trace::TraceSink* trace = nullptr;
  /// Optional crash safety (same guarantees as CampaignConfig::checkpoint;
  /// the unit counter is the next event index, and the per-event timeline
  /// rides in the checkpoint's strata records).
  CampaignCheckpointer* checkpoint = nullptr;
};

/// One event of the timeline: the model's health at simulated time `event`.
struct FleetEvent {
  std::uint64_t event = 0;
  std::uint64_t faults = 0;      ///< cumulative persistent faults so far
  std::uint64_t correct = 0;     ///< rows matching the golden top-1
  std::uint64_t rows = 0;        ///< rows served this event
  std::uint64_t non_finite = 0;  ///< 1 when the logits held NaN/Inf
};

/// Fleet campaign outcome: the accuracy-over-time curve and its summary.
struct FleetResult {
  std::vector<FleetEvent> timeline;  ///< one entry per event, in order
  std::uint64_t rows = 0;            ///< total rows served
  std::uint64_t mismatches = 0;      ///< rows that diverged from golden
  std::uint64_t non_finite = 0;      ///< events with non-finite logits
  std::uint64_t total_faults = 0;    ///< persistent faults applied in all
  std::uint64_t first_sdc = kNoSdc;  ///< earliest event with a mismatch
};

/// Run a fleet-degradation campaign. The injector is healed (golden
/// weights restored bit-exactly) before this returns.
FleetResult run_fleet_campaign(FaultInjector& fi,
                               const data::SyntheticDataset& ds,
                               const FleetCampaignConfig& config);

/// Re-derive the exact input batch event `event` served (pure function of
/// (config.seed, event)) — the replay half of a fleet trace.
data::Batch fleet_campaign_event_batch(const data::SyntheticDataset& ds,
                                       const FleetCampaignConfig& config,
                                       std::uint64_t event);

/// Re-derive the exact input batch attempt `attempt` of a classification
/// campaign drew (all attempt randomness is a pure function of
/// (config.seed, attempt)). This is the replay half of a trace: events name
/// the injections, this names the inputs they corrupted.
data::Batch campaign_attempt_batch(const data::SyntheticDataset& ds,
                                   const CampaignConfig& config,
                                   std::uint64_t attempt);

/// Weight-campaign analogue: the batch fault `fault_index` was scored on.
data::Batch weight_campaign_fault_batch(const data::SyntheticDataset& ds,
                                        const WeightCampaignConfig& config,
                                        std::uint64_t fault_index);

}  // namespace pfi::core
